#include "parallel/executor.h"

#include <algorithm>
#include <future>
#include <string>
#include <thread>
#include <utility>

namespace vcd::parallel {

StreamExecutor::StreamExecutor(const core::DetectorConfig& config,
                               const core::ParallelConfig& parallel)
    : config_(config), pconfig_(parallel) {
  int n = parallel.num_threads;
  if (n == 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n < 1) n = 1;
  }
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, parallel.backpressure, static_cast<size_t>(parallel.queue_capacity)));
  }
}

StreamExecutor::~StreamExecutor() = default;

Result<std::unique_ptr<StreamExecutor>> StreamExecutor::Create(
    const core::DetectorConfig& config, const core::ParallelConfig& parallel) {
  VCD_RETURN_IF_ERROR(config.Validate());
  VCD_RETURN_IF_ERROR(parallel.Validate());
  return std::unique_ptr<StreamExecutor>(new StreamExecutor(config, parallel));
}

Status StreamExecutor::AddQuerySketchLocked(int id, const sketch::Sketch& sk,
                                            int length_frames,
                                            double duration_seconds) {
  if (sk.K() != config_.K) {
    return Status::InvalidArgument("sketch K does not match executor config");
  }
  for (const PortfolioEntry& e : portfolio_) {
    if (e.id == id) return Status::AlreadyExists("query id " + std::to_string(id));
  }
  portfolio_.push_back(PortfolioEntry{id, length_frames, duration_seconds, sk});
  // Fan out while still holding control_mu_, so every shard sees portfolio
  // commands and stream installs in the same relative order.
  for (auto& shard : shards_) {
    shard->SubmitCommand([id, sk, length_frames, duration_seconds](Shard* s) {
      s->ApplyAddQuery(id, sk, length_frames, duration_seconds);
    });
  }
  return Status::OK();
}

Status StreamExecutor::AddQuerySketch(int id, const sketch::Sketch& sk,
                                      int length_frames, double duration_seconds) {
  MutexLock lock(control_mu_);
  return AddQuerySketchLocked(id, sk, length_frames, duration_seconds);
}

Status StreamExecutor::AddQuery(int id,
                                const std::vector<vcd::video::DcFrame>& key_frames,
                                double duration_seconds) {
  auto prepared = core::PrepareQuery(config_, key_frames, duration_seconds);
  if (!prepared.ok()) return prepared.status();
  return AddQuerySketch(id, prepared->sketch, prepared->length_frames,
                        prepared->duration_seconds);
}

Status StreamExecutor::ImportQueries(const core::QueryDb& db) {
  if (db.k != config_.K) {
    return Status::FailedPrecondition("query db K does not match executor config");
  }
  if (db.hash_seed != config_.hash_seed) {
    return Status::FailedPrecondition("query db hash seed does not match config");
  }
  MutexLock lock(control_mu_);
  for (const core::StoredQuery& q : db.queries) {
    VCD_RETURN_IF_ERROR(
        AddQuerySketchLocked(q.id, q.sketch, q.length_frames, q.duration_seconds));
  }
  return Status::OK();
}

Status StreamExecutor::RemoveQuery(int id) {
  MutexLock lock(control_mu_);
  bool found = false;
  for (size_t i = 0; i < portfolio_.size(); ++i) {
    if (portfolio_[i].id == id) {
      portfolio_.erase(portfolio_.begin() + static_cast<long>(i));
      found = true;
      break;
    }
  }
  if (!found) return Status::NotFound("query id " + std::to_string(id));
  for (auto& shard : shards_) {
    shard->SubmitCommand([id](Shard* s) { s->ApplyRemoveQuery(id); });
  }
  return Status::OK();
}

int StreamExecutor::num_queries() const {
  MutexLock lock(control_mu_);
  return static_cast<int>(portfolio_.size());
}

Result<int> StreamExecutor::OpenStream(std::string name) {
  MutexLock lock(control_mu_);
  auto det = core::CopyDetector::Create(config_);
  if (!det.ok()) return det.status();
  std::shared_ptr<core::CopyDetector> detector = std::move(*det);
  for (const PortfolioEntry& e : portfolio_) {
    VCD_RETURN_IF_ERROR(detector->AddQuerySketch(e.id, e.sketch, e.length_frames,
                                                 e.duration_seconds));
  }
  const int id = next_stream_id_.fetch_add(1, std::memory_order_acq_rel);
  num_open_streams_.fetch_add(1, std::memory_order_relaxed);
  shard_for(id)->SubmitCommand(
      [id, name = std::move(name), detector](Shard* s) mutable {
        s->InstallStream(id, std::move(name), std::move(detector));
      });
  return id;
}

Status StreamExecutor::CloseStream(int stream_id) {
  MutexLock lock(control_mu_);
  if (stream_id <= 0 ||
      stream_id >= next_stream_id_.load(std::memory_order_acquire)) {
    return Status::NotFound("no such stream");
  }
  const uint64_t close_seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  using Reply = std::pair<Status, std::vector<SeqMatch>>;
  auto promise = std::make_shared<std::promise<Reply>>();
  auto future = promise->get_future();
  shard_for(stream_id)->SubmitCommand([stream_id, close_seq, promise](Shard* s) {
    std::vector<SeqMatch> batch;
    Status st = s->FinishStream(stream_id, close_seq, &batch);
    promise->set_value(Reply{std::move(st), std::move(batch)});
  });
  Reply reply = future.get();
  if (!reply.first.ok()) return reply.first;
  num_open_streams_.fetch_sub(1, std::memory_order_relaxed);
  FoldLocked(std::move(reply.second));
  return Status::OK();
}

int StreamExecutor::num_open_streams() const {
  return num_open_streams_.load(std::memory_order_relaxed);
}

Status StreamExecutor::ProcessKeyFrame(int stream_id, vcd::video::DcFrame frame) {
  if (stream_id <= 0 ||
      stream_id >= next_stream_id_.load(std::memory_order_acquire)) {
    return Status::NotFound("no such stream");
  }
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  frames_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (shard_for(stream_id)->SubmitFrame(seq, stream_id, std::move(frame)) ==
      Shard::Submit::kDropped) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status StreamExecutor::Drain() {
  MutexLock lock(control_mu_);
  using Reply = std::pair<Status, std::vector<SeqMatch>>;
  std::vector<std::future<Reply>> futures;
  futures.reserve(shards_.size());
  for (auto& shard : shards_) {
    auto promise = std::make_shared<std::promise<Reply>>();
    futures.push_back(promise->get_future());
    shard->SubmitCommand([promise](Shard* s) {
      std::vector<SeqMatch> batch;
      Status st = s->TakeMatches(&batch);
      promise->set_value(Reply{std::move(st), std::move(batch)});
    });
  }
  Status first;
  for (auto& f : futures) {
    Reply reply = f.get();
    if (first.ok()) first = reply.first;
    FoldLocked(std::move(reply.second));
  }
  return first;
}

void StreamExecutor::FoldLocked(std::vector<SeqMatch> batch) {
  if (batch.empty()) return;
  merged_.insert(merged_.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
  // Batches are per-shard FIFO-ordered; a stable sort by submission seq
  // restores global arrival order while keeping same-frame matches in
  // detector emission order.
  std::stable_sort(merged_.begin(), merged_.end(),
                   [](const SeqMatch& a, const SeqMatch& b) { return a.seq < b.seq; });
}

std::vector<core::StreamMatch> StreamExecutor::matches() const {
  MutexLock lock(control_mu_);
  std::vector<core::StreamMatch> out;
  out.reserve(merged_.size());
  for (const SeqMatch& m : merged_) out.push_back(m.match);
  return out;
}

Result<core::DetectorStats> StreamExecutor::StreamStats(int stream_id) {
  MutexLock lock(control_mu_);
  if (stream_id <= 0 ||
      stream_id >= next_stream_id_.load(std::memory_order_acquire)) {
    return Status::NotFound("no such stream");
  }
  auto promise = std::make_shared<std::promise<Result<core::DetectorStats>>>();
  auto future = promise->get_future();
  shard_for(stream_id)->SubmitCommand(
      [stream_id, promise](Shard* s) { promise->set_value(s->StatsOf(stream_id)); });
  return future.get();
}

ExecutorStats StreamExecutor::Stats() {
  MutexLock lock(control_mu_);
  using Reply = std::pair<ShardStats, core::DetectorStats>;
  std::vector<std::future<Reply>> futures;
  futures.reserve(shards_.size());
  for (auto& shard : shards_) {
    auto promise = std::make_shared<std::promise<Reply>>();
    futures.push_back(promise->get_future());
    shard->SubmitCommand([promise](Shard* s) {
      promise->set_value(Reply{s->Snapshot(), s->AggregateDetectorStats()});
    });
  }
  ExecutorStats stats;
  stats.frames_submitted = frames_submitted_.load(std::memory_order_relaxed);
  stats.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  for (auto& f : futures) {
    Reply reply = f.get();
    stats.shards.push_back(std::move(reply.first));
    stats.shard_detector_stats.push_back(std::move(reply.second));
  }
  return stats;
}

}  // namespace vcd::parallel
