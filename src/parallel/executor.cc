#include "parallel/executor.h"

#include <algorithm>

#include "obs/span.h"
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <utility>

namespace vcd::parallel {

namespace {

/// Points per-stream detectors at the executor's registry unless the caller
/// already wired an explicit one into the detector config.
core::DetectorConfig WithMetrics(core::DetectorConfig config,
                                 obs::MetricsRegistry* registry) {
  if (config.metrics == nullptr) config.metrics = registry;
  return config;
}

}  // namespace

StreamExecutor::StreamExecutor(const core::DetectorConfig& config,
                               const core::ParallelConfig& parallel)
    : owned_registry_(parallel.metrics ? nullptr
                                       : std::make_unique<obs::MetricsRegistry>()),
      registry_(parallel.metrics ? parallel.metrics : owned_registry_.get()),
      config_(WithMetrics(config, registry_)),
      pconfig_(parallel),
      metrics_(obs::ExecutorMetrics::Create(registry_)) {
  int n = parallel.num_threads;
  if (n == 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n < 1) n = 1;
  }
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, parallel, registry_));
  }
  qos_metrics_ = obs::QosMetrics::Create(registry_, n);
  if (pconfig_.qos.enabled) {
    MutexLock lock(qos_mu_);
    governor_ = std::make_unique<qos::Governor>(pconfig_.qos, n);
  }
  if (pconfig_.watchdog_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
  if (pconfig_.qos.enabled && pconfig_.qos.tick_ms > 0) {
    qos_thread_ = std::thread([this] { QosLoop(); });
  }
}

StreamExecutor::~StreamExecutor() {
  if (qos_thread_.joinable()) {
    {
      MutexLock lock(qos_mu_);
      qos_stop_ = true;
    }
    qos_cv_.NotifyOne();
    qos_thread_.join();
  }
  if (watchdog_.joinable()) {
    {
      MutexLock lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.NotifyOne();
    watchdog_.join();
  }
  // shards_ destruction closes the queues and joins the workers; a shard
  // that was failed over still drains everything that was queued.
}

Result<std::unique_ptr<StreamExecutor>> StreamExecutor::Create(
    const core::DetectorConfig& config, const core::ParallelConfig& parallel) {
  VCD_RETURN_IF_ERROR(config.Validate());
  VCD_RETURN_IF_ERROR(parallel.Validate());
  return std::unique_ptr<StreamExecutor>(new StreamExecutor(config, parallel));
}

void StreamExecutor::WatchdogLoop() {
  // A shard is "making progress" when any of its task-consumption counters
  // move: processed and rejected frames, health-machine discards, and
  // commands all count — a quarantined stream's discards are progress.
  const auto progress_of = [](const ShardStats& s) {
    return s.frames_processed + s.frames_rejected + s.commands_processed +
           s.frames_quarantined + s.frames_failed;
  };
  std::vector<int64_t> last_progress(shards_.size(), -1);
  std::vector<int> stale_ticks(shards_.size(), 0);
  MutexLock lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.WaitFor(watchdog_mu_,
                         std::chrono::milliseconds(pconfig_.watchdog_ms));
    if (watchdog_stop_) break;
    for (size_t i = 0; i < shards_.size(); ++i) {
      const ShardStats s = shards_[i]->Snapshot();
      const int64_t progress = progress_of(s);
      if (s.queue_depth > 0 && progress == last_progress[i]) {
        // Work is queued but nothing moved since the last tick: the worker
        // is stalled. Two consecutive stale ticks avoid failing over a
        // shard that was merely mid-task when two snapshots straddled it.
        if (++stale_ticks[i] >= 2) {
          // Count transitions, not ticks: a shard stuck for many ticks is
          // one failover until it drains and gets marked again.
          if (!shards_[i]->failed()) metrics_.watchdog_failovers_total->Inc();
          shards_[i]->MarkFailed();
        }
      } else {
        stale_ticks[i] = 0;
        if (shards_[i]->failed()) shards_[i]->ClearFailed();
      }
      last_progress[i] = progress;
    }
  }
}

void StreamExecutor::QosLoop() {
  MutexLock lock(qos_mu_);
  while (!qos_stop_) {
    qos_cv_.WaitFor(qos_mu_, std::chrono::milliseconds(pconfig_.qos.tick_ms));
    if (qos_stop_) break;
    TickQosLocked();
  }
}

void StreamExecutor::TickQos() {
  MutexLock lock(qos_mu_);
  TickQosLocked();
}

void StreamExecutor::TickQosLocked() {
  if (governor_ == nullptr) return;
  std::vector<qos::ShardSample> samples(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    samples[i].queue_depth = shards_[i]->queue_depth();
    samples[i].queue_capacity = shards_[i]->queue_capacity();
    samples[i].stream_lag_us = shards_[i]->stream_lag_us();
  }
  std::vector<qos::Transition> transitions;
  governor_->Tick(samples, &transitions);
  for (const qos::Transition& tr : transitions) {
    ApplyQosTransitionLocked(tr);
  }
}

void StreamExecutor::ApplyQosTransitionLocked(const qos::Transition& tr) {
  qos_metrics_.shard_state[static_cast<size_t>(tr.shard)]->Set(
      static_cast<int64_t>(tr.to));
  qos_metrics_.dwell_ticks[static_cast<int>(tr.from)]->Observe(tr.dwell_ticks);
  Shard* shard = shards_[static_cast<size_t>(tr.shard)].get();
  shard->SetQosState(tr.to);
  // The degrade knobs flip only when the Degraded severity line is crossed:
  // Degraded ↔ Shedding moves keep them, Recovering restores full quality.
  const bool was_degraded = tr.from >= qos::QosState::kDegraded;
  const bool now_degraded = tr.to >= qos::QosState::kDegraded;
  if (was_degraded != now_degraded) {
    const qos::DegradeKnobs knobs =
        now_degraded ? pconfig_.qos.degrade : qos::DegradeKnobs{};
    shard->SubmitCommand([knobs](Shard* s) { s->ApplyDegrade(knobs); });
  }
}

qos::QosState StreamExecutor::QosStateOf(int shard) const {
  MutexLock lock(qos_mu_);
  if (governor_ == nullptr) return qos::QosState::kNormal;
  return governor_->shard_state(shard);
}

qos::QosState StreamExecutor::QosGlobalState() const {
  MutexLock lock(qos_mu_);
  if (governor_ == nullptr) return qos::QosState::kNormal;
  return governor_->global_state();
}

template <typename T>
bool StreamExecutor::WaitOrFailover(std::future<T>& f, Shard* shard) {
  for (;;) {
    if (f.wait_for(std::chrono::milliseconds(2)) == std::future_status::ready) {
      return true;
    }
    if (shard->failed()) return false;
  }
}

void StreamExecutor::ReapOrphansLocked() {
  for (size_t i = 0; i < orphans_.size();) {
    if (orphans_[i].reply.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++i;
      continue;
    }
    auto reply = orphans_[i].reply.get();
    if (!orphans_[i].is_close || reply.first.ok()) {
      if (orphans_[i].is_close) {
        num_open_streams_.fetch_sub(1, std::memory_order_relaxed);
        VCD_OBS_SET(metrics_.streams_open,
                    num_open_streams_.load(std::memory_order_relaxed));
      }
      FoldLocked(std::move(reply.second));
    }
    orphans_.erase(orphans_.begin() + static_cast<long>(i));
  }
}

Status StreamExecutor::AddQuerySketchLocked(int id, const sketch::Sketch& sk,
                                            int length_frames,
                                            double duration_seconds) {
  if (sk.K() != config_.K) {
    return Status::InvalidArgument("sketch K does not match executor config");
  }
  for (const PortfolioEntry& e : portfolio_) {
    if (e.id == id) return Status::AlreadyExists("query id " + std::to_string(id));
  }
  portfolio_.push_back(PortfolioEntry{id, length_frames, duration_seconds, sk});
  // Fan out while still holding control_mu_, so every shard sees portfolio
  // commands and stream installs in the same relative order.
  for (auto& shard : shards_) {
    shard->SubmitCommand([id, sk, length_frames, duration_seconds](Shard* s) {
      s->ApplyAddQuery(id, sk, length_frames, duration_seconds);
    });
  }
  return Status::OK();
}

Status StreamExecutor::AddQuerySketch(int id, const sketch::Sketch& sk,
                                      int length_frames, double duration_seconds) {
  MutexLock lock(control_mu_);
  return AddQuerySketchLocked(id, sk, length_frames, duration_seconds);
}

Status StreamExecutor::AddQuery(int id,
                                const std::vector<vcd::video::DcFrame>& key_frames,
                                double duration_seconds) {
  auto prepared = core::PrepareQuery(config_, key_frames, duration_seconds);
  if (!prepared.ok()) return prepared.status();
  return AddQuerySketch(id, prepared->sketch, prepared->length_frames,
                        prepared->duration_seconds);
}

Status StreamExecutor::ImportQueries(const core::QueryDb& db) {
  if (db.k != config_.K) {
    return Status::FailedPrecondition("query db K does not match executor config");
  }
  if (db.hash_seed != config_.hash_seed) {
    return Status::FailedPrecondition("query db hash seed does not match config");
  }
  MutexLock lock(control_mu_);
  for (const core::StoredQuery& q : db.queries) {
    VCD_RETURN_IF_ERROR(
        AddQuerySketchLocked(q.id, q.sketch, q.length_frames, q.duration_seconds));
  }
  return Status::OK();
}

Status StreamExecutor::RemoveQuery(int id) {
  MutexLock lock(control_mu_);
  bool found = false;
  for (size_t i = 0; i < portfolio_.size(); ++i) {
    if (portfolio_[i].id == id) {
      portfolio_.erase(portfolio_.begin() + static_cast<long>(i));
      found = true;
      break;
    }
  }
  if (!found) return Status::NotFound("query id " + std::to_string(id));
  for (auto& shard : shards_) {
    shard->SubmitCommand([id](Shard* s) { s->ApplyRemoveQuery(id); });
  }
  return Status::OK();
}

int StreamExecutor::num_queries() const {
  MutexLock lock(control_mu_);
  return static_cast<int>(portfolio_.size());
}

Result<int> StreamExecutor::OpenStream(std::string name,
                                       qos::Priority priority) {
  MutexLock lock(control_mu_);
  ReapOrphansLocked();
  auto det = core::CopyDetector::Create(config_);
  if (!det.ok()) return det.status();
  std::shared_ptr<core::CopyDetector> detector = std::move(*det);
  for (const PortfolioEntry& e : portfolio_) {
    VCD_RETURN_IF_ERROR(detector->AddQuerySketch(e.id, e.sketch, e.length_frames,
                                                 e.duration_seconds));
  }
  const int id = next_stream_id_.fetch_add(1, std::memory_order_acq_rel);
  num_open_streams_.fetch_add(1, std::memory_order_relaxed);
  VCD_OBS_SET(metrics_.streams_open,
              num_open_streams_.load(std::memory_order_relaxed));
  priorities_[id] = priority;
  shard_for(id)->RegisterStreamQos(id, priority);
  shard_for(id)->SubmitCommand(
      [id, name = std::move(name), detector](Shard* s) mutable {
        s->InstallStream(id, std::move(name), std::move(detector));
      });
  return id;
}

Status StreamExecutor::CloseStream(int stream_id) {
  MutexLock lock(control_mu_);
  ReapOrphansLocked();
  if (stream_id <= 0 ||
      stream_id >= next_stream_id_.load(std::memory_order_acquire)) {
    return Status::NotFound("no such stream");
  }
  const uint64_t close_seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  using Reply = std::pair<Status, std::vector<SeqMatch>>;
  auto promise = std::make_shared<std::promise<Reply>>();
  auto future = promise->get_future();
  Shard* shard = shard_for(stream_id);
  // The stream stops being a shed-gate citizen the moment the close is
  // issued — even if the close reply is later orphaned on failover, no
  // frame submitted after this point is legitimate.
  priorities_.erase(stream_id);
  shard->UnregisterStreamQos(stream_id);
  shard->SubmitCommand([stream_id, close_seq, promise](Shard* s) {
    std::vector<SeqMatch> batch;
    Status st = s->FinishStream(stream_id, close_seq, &batch);
    promise->set_value(Reply{std::move(st), std::move(batch)});
  });
  if (!WaitOrFailover(future, shard)) {
    // The close command is still queued and will run when the shard drains
    // (commands use the unbounded channel, so a wedged frame queue cannot
    // block it forever). Its reply — with this stream's final matches —
    // is reaped by a later control-plane call.
    orphans_.push_back(Orphan{std::move(future), /*is_close=*/true});
    return Status::Unavailable("stream " + std::to_string(stream_id) +
                               ": shard failed over; close pending");
  }
  Reply reply = future.get();
  if (!reply.first.ok()) return reply.first;
  num_open_streams_.fetch_sub(1, std::memory_order_relaxed);
  VCD_OBS_SET(metrics_.streams_open,
              num_open_streams_.load(std::memory_order_relaxed));
  FoldLocked(std::move(reply.second));
  return Status::OK();
}

int StreamExecutor::num_open_streams() const {
  return num_open_streams_.load(std::memory_order_relaxed);
}

Status StreamExecutor::ProcessKeyFrame(int stream_id, vcd::video::DcFrame frame) {
  if (stream_id <= 0 ||
      stream_id >= next_stream_id_.load(std::memory_order_acquire)) {
    return Status::NotFound("no such stream");
  }
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  metrics_.frames_submitted_total->Inc();
  qos::Priority shed_priority = qos::Priority::kNormal;
  switch (shard_for(stream_id)->SubmitFrame(seq, stream_id, std::move(frame),
                                            &shed_priority)) {
    case Shard::Submit::kAccepted:
      break;
    case Shard::Submit::kDropped:
      metrics_.dropped_backpressure->Inc();
      break;
    case Shard::Submit::kFailedOver:
      metrics_.dropped_failover->Inc();
      break;
    case Shard::Submit::kDeadline:
      metrics_.dropped_deadline->Inc();
      break;
    case Shard::Submit::kShedded:
      metrics_.dropped_qos_shed->Inc();
      qos_metrics_.frames_shed[static_cast<int>(shed_priority)]->Inc();
      break;
  }
  return Status::OK();
}

Status StreamExecutor::Drain() {
  MutexLock lock(control_mu_);
  ReapOrphansLocked();
  using Reply = std::pair<Status, std::vector<SeqMatch>>;
  std::vector<std::future<Reply>> futures;
  futures.reserve(shards_.size());
  for (auto& shard : shards_) {
    auto promise = std::make_shared<std::promise<Reply>>();
    futures.push_back(promise->get_future());
    shard->SubmitCommand([promise](Shard* s) {
      std::vector<SeqMatch> batch;
      Status st = s->TakeMatches(&batch);
      promise->set_value(Reply{std::move(st), std::move(batch)});
    });
  }
  Status first;
  for (size_t i = 0; i < futures.size(); ++i) {
    if (!WaitOrFailover(futures[i], shards_[i].get())) {
      if (first.ok()) {
        first = Status::Unavailable("shard " + std::to_string(i) +
                                    " failed over; drain incomplete");
      }
      orphans_.push_back(Orphan{std::move(futures[i]), /*is_close=*/false});
      continue;
    }
    Reply reply = futures[i].get();
    if (first.ok()) first = reply.first;
    FoldLocked(std::move(reply.second));
  }
  return first;
}

void StreamExecutor::FoldLocked(std::vector<SeqMatch> batch) {
  if (batch.empty()) return;
  merged_.insert(merged_.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
  // Batches are per-shard FIFO-ordered; a stable sort by submission seq
  // restores global arrival order while keeping same-frame matches in
  // detector emission order.
  std::stable_sort(merged_.begin(), merged_.end(),
                   [](const SeqMatch& a, const SeqMatch& b) { return a.seq < b.seq; });
}

std::vector<core::StreamMatch> StreamExecutor::matches() const {
  MutexLock lock(control_mu_);
  std::vector<core::StreamMatch> out;
  out.reserve(merged_.size());
  for (const SeqMatch& m : merged_) out.push_back(m.match);
  return out;
}

Result<core::DetectorStats> StreamExecutor::StreamStats(int stream_id) {
  MutexLock lock(control_mu_);
  if (stream_id <= 0 ||
      stream_id >= next_stream_id_.load(std::memory_order_acquire)) {
    return Status::NotFound("no such stream");
  }
  auto promise = std::make_shared<std::promise<Result<core::DetectorStats>>>();
  auto future = promise->get_future();
  Shard* shard = shard_for(stream_id);
  shard->SubmitCommand(
      [stream_id, promise](Shard* s) { promise->set_value(s->StatsOf(stream_id)); });
  if (!WaitOrFailover(future, shard)) {
    return Status::Unavailable("stream " + std::to_string(stream_id) +
                               ": shard failed over");
  }
  return future.get();
}

Result<StreamHealth> StreamExecutor::HealthOf(int stream_id) {
  MutexLock lock(control_mu_);
  if (stream_id <= 0 ||
      stream_id >= next_stream_id_.load(std::memory_order_acquire)) {
    return Status::NotFound("no such stream");
  }
  auto promise = std::make_shared<std::promise<Result<StreamHealth>>>();
  auto future = promise->get_future();
  Shard* shard = shard_for(stream_id);
  shard->SubmitCommand(
      [stream_id, promise](Shard* s) { promise->set_value(s->HealthOf(stream_id)); });
  if (!WaitOrFailover(future, shard)) {
    return Status::Unavailable("stream " + std::to_string(stream_id) +
                               ": shard failed over");
  }
  return future.get();
}

Result<ExecutorCkpt> StreamExecutor::Checkpoint() {
  MutexLock lock(control_mu_);
  ReapOrphansLocked();
  if (!orphans_.empty()) {
    return Status::Unavailable(
        "checkpoint refused: orphaned shard replies still pending");
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->failed()) {
      return Status::Unavailable("checkpoint refused: shard " +
                                 std::to_string(i) + " is failed over");
    }
  }
  // Barrier: one export command per shard. Commands ride the FIFO behind
  // every frame submitted before this call, so by the time a shard answers,
  // its streams are at a window boundary of everything pre-barrier.
  using Reply = std::pair<std::vector<core::StreamCkpt>, std::vector<SeqMatch>>;
  std::vector<std::future<Reply>> futures;
  futures.reserve(shards_.size());
  for (auto& shard : shards_) {
    auto promise = std::make_shared<std::promise<Reply>>();
    futures.push_back(promise->get_future());
    shard->SubmitCommand([promise](Shard* s) {
      Reply reply;
      s->ExportCkpt(&reply.first, &reply.second);
      promise->set_value(std::move(reply));
    });
  }
  ExecutorCkpt ckpt;
  ckpt.next_stream_id = next_stream_id_.load(std::memory_order_acquire);
  ckpt.next_seq = next_seq_.load(std::memory_order_acquire);
  ckpt.matches = merged_;  // copy; the live merged log is not perturbed
  for (size_t i = 0; i < futures.size(); ++i) {
    if (!WaitOrFailover(futures[i], shards_[i].get())) {
      return Status::Unavailable("checkpoint abandoned: shard " +
                                 std::to_string(i) +
                                 " failed over mid-barrier");
    }
    Reply reply = futures[i].get();
    for (core::StreamCkpt& s : reply.first) {
      ckpt.streams.push_back(std::move(s));
    }
    ckpt.matches.insert(ckpt.matches.end(),
                        std::make_move_iterator(reply.second.begin()),
                        std::make_move_iterator(reply.second.end()));
  }
  std::stable_sort(
      ckpt.streams.begin(), ckpt.streams.end(),
      [](const core::StreamCkpt& a, const core::StreamCkpt& b) {
        return a.stream_id < b.stream_id;
      });
  std::stable_sort(ckpt.matches.begin(), ckpt.matches.end(),
                   [](const SeqMatch& a, const SeqMatch& b) { return a.seq < b.seq; });
  // Stamp each stream's QoS class from the control-plane priority map —
  // the shards don't know priorities (the shed gates are keyed copies).
  for (core::StreamCkpt& s : ckpt.streams) {
    auto it = priorities_.find(s.stream_id);
    if (it != priorities_.end()) s.priority = static_cast<int>(it->second);
  }
  {
    MutexLock qlock(qos_mu_);
    if (governor_ != nullptr) ckpt.qos = governor_->ExportCkpt();
  }
  return ckpt;
}

Status StreamExecutor::RestoreCkpt(const ExecutorCkpt& ckpt) {
  MutexLock lock(control_mu_);
  if (num_open_streams_.load(std::memory_order_relaxed) != 0 ||
      !merged_.empty() || !orphans_.empty()) {
    return Status::FailedPrecondition(
        "RestoreCkpt requires an executor with no open streams or matches");
  }
  if (ckpt.next_stream_id < 1 || ckpt.next_seq < 1) {
    return Status::Corruption("snapshot executor counters out of range");
  }
  int restored = 0;
  std::set<int> seen_ids;
  for (const core::StreamCkpt& s : ckpt.streams) {
    if (s.stream_id <= 0 || s.stream_id >= ckpt.next_stream_id) {
      return Status::Corruption("snapshot stream id " +
                                std::to_string(s.stream_id) +
                                " outside [1, next_stream_id)");
    }
    if (!seen_ids.insert(s.stream_id).second) {
      return Status::Corruption("duplicate stream id in snapshot");
    }
    if (s.health < 0 || s.health > static_cast<int>(StreamHealth::kFailed)) {
      return Status::Corruption("snapshot stream health out of range");
    }
    if (s.priority < 0 || s.priority > static_cast<int>(qos::Priority::kLow)) {
      return Status::Corruption("snapshot stream priority out of range");
    }
    auto det = core::CopyDetector::Create(config_);
    if (!det.ok()) return det.status();
    std::shared_ptr<core::CopyDetector> detector = std::move(*det);
    for (const PortfolioEntry& e : portfolio_) {
      VCD_RETURN_IF_ERROR(detector->AddQuerySketch(e.id, e.sketch,
                                                   e.length_frames,
                                                   e.duration_seconds));
    }
    VCD_RETURN_IF_ERROR(detector->RestoreCkptState(s.detector));
    if (static_cast<size_t>(s.matches_consumed) > detector->matches().size()) {
      return Status::Corruption(
          "snapshot matches_consumed exceeds the stream's match count");
    }
    const auto priority = static_cast<qos::Priority>(s.priority);
    priorities_[s.stream_id] = priority;
    shard_for(s.stream_id)->RegisterStreamQos(s.stream_id, priority);
    shard_for(s.stream_id)
        ->SubmitCommand([ckpt_slot = s, detector](Shard* shard) mutable {
          shard->InstallRestoredStream(ckpt_slot, std::move(detector));
        });
    ++restored;
  }
  next_stream_id_.store(ckpt.next_stream_id, std::memory_order_release);
  next_seq_.store(ckpt.next_seq, std::memory_order_release);
  num_open_streams_.store(restored, std::memory_order_relaxed);
  VCD_OBS_SET(metrics_.streams_open, restored);
  merged_ = ckpt.matches;
  {
    // Resume the governor exactly where the snapshot left it (a restore
    // mid-Degraded stays degraded), and re-apply the consequences: shed
    // gates arm and degrade knobs fan out to the restored detectors.
    MutexLock qlock(qos_mu_);
    if (governor_ != nullptr && !ckpt.qos.empty()) {
      governor_->RestoreCkpt(ckpt.qos);
      for (size_t i = 0; i < shards_.size(); ++i) {
        const qos::QosState state = governor_->shard_state(static_cast<int>(i));
        qos_metrics_.shard_state[i]->Set(static_cast<int64_t>(state));
        shards_[i]->SetQosState(state);
        if (state >= qos::QosState::kDegraded) {
          const qos::DegradeKnobs knobs = pconfig_.qos.degrade;
          shards_[i]->SubmitCommand(
              [knobs](Shard* s) { s->ApplyDegrade(knobs); });
        }
      }
    }
  }
  return Status::OK();
}

ExecutorStats StreamExecutor::Stats() {
  MutexLock lock(control_mu_);
  ReapOrphansLocked();
  using Reply = std::pair<ShardStats, core::DetectorStats>;
  std::vector<std::future<Reply>> futures;
  futures.reserve(shards_.size());
  for (auto& shard : shards_) {
    auto promise = std::make_shared<std::promise<Reply>>();
    futures.push_back(promise->get_future());
    shard->SubmitCommand([promise](Shard* s) {
      promise->set_value(Reply{s->Snapshot(), s->AggregateDetectorStats()});
    });
  }
  ExecutorStats stats;
  stats.frames_submitted = metrics_.frames_submitted_total->Value();
  stats.frames_dropped_backpressure = metrics_.dropped_backpressure->Value();
  stats.frames_dropped_failover = metrics_.dropped_failover->Value();
  stats.frames_dropped_deadline = metrics_.dropped_deadline->Value();
  for (const obs::Counter* c : qos_metrics_.frames_shed) {
    stats.frames_shed += c->Value();
  }
  stats.watchdog_failovers = metrics_.watchdog_failovers_total->Value();
  {
    MutexLock qlock(qos_mu_);
    if (governor_ != nullptr) {
      stats.qos_global_state = static_cast<int>(governor_->global_state());
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    if (!WaitOrFailover(futures[i], shards_[i].get())) {
      // Report the failed shard from its lock-free snapshot; its detector
      // stats are unknown until it drains.
      stats.shards.push_back(shards_[i]->Snapshot());
      stats.shard_detector_stats.emplace_back();
      continue;
    }
    Reply reply = futures[i].get();
    stats.shards.push_back(std::move(reply.first));
    stats.shard_detector_stats.push_back(std::move(reply.second));
  }
  return stats;
}

}  // namespace vcd::parallel
