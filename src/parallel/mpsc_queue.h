#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file mpsc_queue.h
/// Bounded multi-producer single-consumer queue — the per-shard submission
/// channel of the parallel stream executor.
///
/// Producers are the caller threads of `StreamExecutor::ProcessKeyFrame` and
/// the control plane (commands); the single consumer is the shard's worker
/// thread. Backpressure is the producer's choice per push: `Push` blocks
/// while the queue is full, `TryPush` fails immediately (the executor turns
/// that into a drop counter under `BackpressurePolicy::kDropNewest`).
///
/// The queue also keeps the occupancy gauges the executor reports
/// (`depth`, `high_water`) so backpressure tuning is observable.
///
/// All mutable state is `VCD_GUARDED_BY(mu_)`: under Clang's
/// `-Werror=thread-safety` (CMake `VCD_WERROR`/`VCD_LINT`) an access
/// without the lock is a compile error.

namespace vcd::parallel {

/// \brief Non-template state of a bounded MPSC queue: the lock, the
/// wait/wake machinery, the closed flag and the occupancy gauges.
class MpscQueueBase {
 public:
  /// Outcome of a deadline-bounded push. kTimeout is the only way a
  /// blocking producer can give up on a full queue: the executor converts
  /// it into a typed drop (`cause="deadline"`) instead of stalling the
  /// ingest thread behind a wedged consumer forever.
  enum class PushResult { kPushed, kClosed, kTimeout };

  /// Closes the queue: pending items remain poppable, further pushes fail,
  /// and a consumer blocked in Pop wakes up once the queue drains.
  void Close() VCD_EXCLUDES(mu_);

  /// True once Close() was called.
  bool closed() const VCD_EXCLUDES(mu_);

  /// Current number of queued items.
  size_t depth() const VCD_EXCLUDES(mu_);

  /// Highest occupancy ever observed (queue depth high-water mark).
  size_t high_water() const VCD_EXCLUDES(mu_);

  /// Capacity bound of the frame channel (immutable after construction).
  size_t capacity() const { return capacity_; }

 protected:
  explicit MpscQueueBase(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Updates depth/high-water after a push/pop. Requires mu_ held.
  void RecordDepthLocked(size_t depth) VCD_REQUIRES(mu_);

  const size_t capacity_;
  // kQueue: taken while the executor control mutex (command fan-out) or the
  // watchdog mutex (stall snapshots) is held; the consumer side never calls
  // out of the queue with it held (DESIGN.md §14).
  mutable Mutex mu_{LockRank::kQueue, "mpsc_queue"};
  CondVar not_full_;
  CondVar not_empty_;
  size_t depth_ VCD_GUARDED_BY(mu_) = 0;
  size_t high_water_ VCD_GUARDED_BY(mu_) = 0;
  bool closed_ VCD_GUARDED_BY(mu_) = false;
};

/// \brief Bounded blocking MPSC queue of T.
template <typename T>
class BoundedMpscQueue : public MpscQueueBase {
 public:
  explicit BoundedMpscQueue(size_t capacity) : MpscQueueBase(capacity) {}

  /// Blocking push; waits while the queue is full. Returns false iff the
  /// queue was closed (the item is then discarded).
  bool Push(T item) VCD_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      RecordDepthLocked(items_.size());
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocking push bounded by \p timeout: waits while the queue is full,
  /// but never past the deadline. On kTimeout or kClosed the item is
  /// discarded. A non-positive timeout degenerates to a TryPush-with-cause
  /// (no wait, immediate kTimeout when full).
  PushResult PushWithDeadline(T item, std::chrono::milliseconds timeout)
      VCD_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return PushResult::kTimeout;
        // Ceil to whole milliseconds so a sub-millisecond remainder still
        // waits instead of spinning on WaitFor(0).
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now) +
            std::chrono::milliseconds(1);
        not_full_.WaitFor(mu_, remaining);
      }
      if (closed_) return PushResult::kClosed;
      items_.push_back(std::move(item));
      RecordDepthLocked(items_.size());
    }
    not_empty_.NotifyOne();
    return PushResult::kPushed;
  }

  /// Push that ignores the capacity bound — the control-plane channel.
  /// Commands must reach a shard even when its frame queue is saturated or
  /// its worker is stalled; bounding them would let a wedged shard deadlock
  /// CloseStream/Drain (see DESIGN.md §12). Returns false iff closed.
  bool PushUnbounded(T item) VCD_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      RecordDepthLocked(items_.size());
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push; returns false when the queue is full or closed.
  bool TryPush(T item) VCD_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      RecordDepthLocked(items_.size());
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocking pop; waits for an item. Returns false iff the queue is closed
  /// *and* drained — the consumer's termination condition.
  bool Pop(T* out) VCD_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
      RecordDepthLocked(items_.size());
    }
    not_full_.NotifyOne();
    return true;
  }

 private:
  std::deque<T> items_ VCD_GUARDED_BY(mu_);
};

}  // namespace vcd::parallel
