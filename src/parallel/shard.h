#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/detector.h"
#include "core/monitor.h"
#include "obs/pipeline_metrics.h"
#include "parallel/mpsc_queue.h"
#include "qos/qos.h"
#include "util/mutex.h"
#include "video/partial_decoder.h"

/// \file shard.h
/// One shard of the parallel stream executor: a worker thread, its bounded
/// submission queue, and the detection state of the streams pinned to it.
///
/// Candidate lists are inherently per-stream (core/monitor.h), so shards
/// share nothing on the frame path: every stream's detector lives on exactly
/// one shard, and all mutation happens on that shard's worker thread. The
/// control plane talks to a shard only through commands enqueued into the
/// same FIFO queue as frames, which is what makes ordering deterministic:
/// a command takes effect after every frame submitted before it and before
/// every frame submitted after it — exactly the serial-monitor semantics.
///
/// ### Lock discipline
/// A shard's frame-path synchronization point is the bounded MPSC queue
/// (whose state is `VCD_GUARDED_BY` its lock, see parallel/mpsc_queue.h);
/// `streams_`, `log_` and `first_error_` are owned by the single consumer
/// thread — a confinement Clang's Thread Safety Analysis cannot express, so
/// the split below is enforced by convention: the "shard-thread side"
/// methods run only inside a queued Command, and cross-thread reads go
/// through the relaxed-atomic counters in Snapshot(). The only shard mutex
/// is the kQos-ranked shed gate (`qos_mu_`), taken briefly on the producer
/// side and only while the governor holds the shard in Shedding; it is
/// never held across a queue push (kQos < kQueue in the lock hierarchy).

namespace vcd::parallel {

/// A match tagged with the global submission sequence number of the frame
/// (or close command) that produced it — the merge key that restores
/// arrival order across shards.
struct SeqMatch {
  uint64_t seq = 0;
  core::StreamMatch match;
};

/// Per-stream ingestion health (DESIGN.md §12). Transitions happen on the
/// owning shard's worker thread as frames arrive:
/// healthy → degraded (consecutive faults) → quarantined (kQuarantine
/// policy; frames discarded for an exponentially backed-off count) →
/// degraded (readmission on probation) → healthy (consecutive clean
/// frames). Under CorruptionPolicy::kFail the first fault moves the stream
/// to kFailed permanently.
enum class StreamHealth {
  kHealthy = 0,
  kDegraded,
  kQuarantined,
  kFailed,
};

/// Human-readable health name ("healthy"/"degraded"/...).
const char* StreamHealthName(StreamHealth h);

/// Counters one shard exposes. Snapshots are cheap (relaxed atomics + queue
/// gauges) and may be taken while the shard is running.
struct ShardStats {
  int shard_id = 0;
  int num_streams = 0;             ///< streams currently pinned to this shard
  int64_t frames_processed = 0;    ///< frames run through a detector
  int64_t frames_rejected = 0;     ///< frames for unknown/closed streams
  int64_t commands_processed = 0;  ///< control commands applied
  size_t queue_depth = 0;          ///< current submission-queue occupancy
  size_t queue_high_water = 0;     ///< max occupancy ever observed
  double busy_seconds = 0.0;       ///< wall time spent processing tasks

  // Failure taxonomy (DESIGN.md §12). frames_degraded is a subset of
  // frames_processed; the discard counters are disjoint from it.
  int64_t frames_degraded = 0;     ///< processed frames that carried a fault
  int64_t frames_quarantined = 0;  ///< frames discarded while quarantined
  int64_t frames_failed = 0;       ///< frames discarded on a kFailed stream
  int64_t quarantine_events = 0;   ///< times any stream entered quarantine
  int streams_quarantined = 0;     ///< streams currently quarantined (gauge)
  int streams_failed = 0;          ///< streams currently failed (gauge)
  bool failed_over = false;        ///< watchdog has failed this shard over
  int qos_state = 0;               ///< numeric qos::QosState set by the governor
};

/// \brief Worker thread + queue + per-stream detectors of one shard.
class Shard {
 public:
  /// A control command, executed on the shard's worker thread. Commands run
  /// in FIFO order with frames and are never dropped by backpressure.
  using Command = std::function<void(Shard*)>;

  /// Result of a frame submission.
  enum class Submit {
    kAccepted,
    kDropped,     ///< kDropNewest backpressure: the queue was full
    kFailedOver,  ///< the watchdog has failed this shard over
    kShedded,     ///< QoS governor in Shedding: the priority policy dropped it
    kDeadline,    ///< kBlock + push_deadline_ms: the wait timed out
  };

  /// \p registry receives this shard's `vcd_shard_*` metric family (labeled
  /// `shard="<id>"`) and is the storage behind the frame-accounting fields
  /// of Snapshot(). Must be non-null and outlive the shard — the executor
  /// always provides one (its own private registry when the config does not
  /// name a process registry).
  Shard(int shard_id, const core::ParallelConfig& config,
        obs::MetricsRegistry* registry);

  /// Closes the queue, drains remaining tasks and joins the worker.
  ~Shard();

  // --- producer side (any thread) ---------------------------------------

  /// Enqueues one key frame of \p stream_id. Blocks when the queue is full
  /// under kBlock (bounded by `push_deadline_ms` when configured — the
  /// timeout returns kDeadline); returns kDropped under kDropNewest. While
  /// the shard is failed over (watchdog), returns kFailedOver without
  /// touching the queue — a failed shard must never block a producer. While
  /// the governor holds this shard in Shedding, the priority policy may
  /// return kShedded (filling \p shed_priority with the victim's class)
  /// before the frame reaches the queue or the lag reference point.
  Submit SubmitFrame(uint64_t seq, int stream_id, vcd::video::DcFrame frame,
                     qos::Priority* shed_priority = nullptr);

  /// Enqueues a control command. Commands bypass the capacity bound
  /// (PushUnbounded) and are never dropped, whatever the backpressure
  /// policy — a saturated or stalled frame queue cannot wedge the control
  /// plane.
  void SubmitCommand(Command cmd);

  /// Cheap counter snapshot; safe from any thread at any time.
  ShardStats Snapshot() const;

  // --- watchdog side (any thread) ----------------------------------------

  /// Marks the shard failed over: producers get kFailedOver, control-plane
  /// round trips return Unavailable instead of waiting on it.
  void MarkFailed() { failed_.store(true, std::memory_order_release); }

  /// Clears the failover mark once the shard drains again.
  void ClearFailed() { failed_.store(false, std::memory_order_release); }

  /// True while the shard is failed over.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  // --- governor side (any thread) ----------------------------------------

  /// Sets the shard's QoS state. Only the Shedding state changes producer
  /// behavior (the shed gate arms); Degraded-mode detector knobs are fanned
  /// out separately as ApplyDegrade commands so they land on window
  /// boundaries.
  void SetQosState(qos::QosState state) {
    qos_state_.store(static_cast<int>(state), std::memory_order_release);
  }

  /// Current QoS state as set by the governor.
  qos::QosState qos_state() const {
    return static_cast<qos::QosState>(
        qos_state_.load(std::memory_order_acquire));
  }

  /// Registers \p stream_id with the shed gate under \p priority. Called at
  /// stream open/restore; idempotent (re-registration updates the class).
  void RegisterStreamQos(int stream_id, qos::Priority priority);

  /// Forgets \p stream_id's shed-gate entry. Called at stream close.
  void UnregisterStreamQos(int stream_id);

  /// Stream-clock lag of the most recently processed frame, microseconds —
  /// the governor's per-shard pressure signal. Always maintained (not gated
  /// on obs::kEnabled).
  int64_t stream_lag_us() const {
    return last_lag_us_.load(std::memory_order_relaxed);
  }

  /// Frame-queue occupancy and capacity, for governor pressure sampling.
  size_t queue_depth() const { return queue_.depth(); }
  size_t queue_capacity() const { return queue_.capacity(); }

  // --- shard-thread side (call only from inside a Command) --------------

  /// Installs a stream with a pre-built detector (portfolio already applied).
  void InstallStream(int stream_id, std::string name,
                     std::shared_ptr<core::CopyDetector> detector);

  /// Installs a stream restored from a checkpoint: like InstallStream, but
  /// the detector already carries restored mid-stream state and the slot's
  /// health machine resumes from the snapshot instead of kHealthy. The
  /// quarantine gauges are re-derived from the restored health.
  void InstallRestoredStream(const core::StreamCkpt& ckpt,
                             std::shared_ptr<core::CopyDetector> detector);

  /// Exports every stream slot on this shard (health machine + detector
  /// state) plus a COPY of the pending match log into \p out. The log is
  /// not drained: matches stay queued for the next TakeMatches, so a
  /// checkpoint never perturbs what the live run reports.
  void ExportCkpt(std::vector<core::StreamCkpt>* slots,
                  std::vector<SeqMatch>* pending_log) const;

  /// Finishes a stream: flushes its trailing window, moves its final
  /// matches (tagged \p close_seq) into \p out and forgets it.
  Status FinishStream(int stream_id, uint64_t close_seq, std::vector<SeqMatch>* out);

  /// Applies a query subscription to every stream on this shard.
  void ApplyAddQuery(int id, const sketch::Sketch& sk, int length_frames,
                     double duration_seconds);

  /// Applies a query unsubscription to every stream on this shard.
  void ApplyRemoveQuery(int id);

  /// Moves the accumulated match log into \p out and returns the sticky
  /// first processing error (OK when none).
  Status TakeMatches(std::vector<SeqMatch>* out);

  /// Detector stats of one stream; NotFound if it is not on this shard.
  Result<core::DetectorStats> StatsOf(int stream_id) const;

  /// Ingestion health of one stream; NotFound if it is not on this shard.
  Result<StreamHealth> HealthOf(int stream_id) const;

  /// Aggregated detector stats over all streams currently on this shard.
  core::DetectorStats AggregateDetectorStats() const;

  /// Applies \p knobs to every detector on this shard and remembers them
  /// for streams installed later. Runs as a queued command, so the change
  /// lands on a window boundary of everything submitted before it.
  void ApplyDegrade(const qos::DegradeKnobs& knobs);

 private:
  /// One queued unit of work: a frame when `command` is empty, else a
  /// command.
  struct Task {
    uint64_t seq = 0;
    int stream_id = 0;
    vcd::video::DcFrame frame;
    Command command;
  };

  struct StreamSlot {
    std::string name;
    std::shared_ptr<core::CopyDetector> detector;
    size_t matches_consumed = 0;

    // Health state machine (worker-thread-owned, frame-count based so
    // transitions are deterministic under test).
    StreamHealth health = StreamHealth::kHealthy;
    int consecutive_faults = 0;
    int consecutive_clean = 0;
    int64_t quarantine_remaining = 0;  ///< frames left to discard
    int64_t backoff_frames = 0;        ///< next quarantine's length
    double max_timestamp = 0.0;        ///< clock-skew fault detection
    bool saw_timestamp = false;
  };

  /// Worker loop: pops tasks until the queue is closed and drained.
  void Run();

  /// Processes one frame task on the worker thread (may perturb the frame
  /// via injected faults, hence mutable).
  void ProcessFrame(Task& t);

  /// Advances \p slot's health state machine after a frame whose fault
  /// status is \p fault.
  void UpdateHealth(int stream_id, StreamSlot* slot, bool fault);

  /// Appends the not-yet-consumed matches of \p slot to log_, tagged \p seq.
  void DrainSlotMatches(int stream_id, StreamSlot* slot, uint64_t seq);

  const int shard_id_;
  const core::ParallelConfig config_;
  BoundedMpscQueue<Task> queue_;

  // Worker-thread-owned state (no locking: single consumer).
  std::map<int, StreamSlot> streams_;
  std::vector<SeqMatch> log_;
  Status first_error_;
  /// Degrade knobs currently applied to this shard's detectors; identity
  /// when the governor is Normal/Recovering. Applied to streams installed
  /// while the shard is degraded.
  qos::DegradeKnobs active_knobs_;

  /// One shed-gate entry per registered stream. `seq` is the stream's
  /// weighted-round-robin position, advanced only while the shard sheds —
  /// so a governor that never triggers leaves the gate untouched.
  struct GateEntry {
    qos::Priority priority = qos::Priority::kNormal;
    uint64_t seq = 0;
  };
  /// Shed gate (producer side). Taken only when qos_state_ says Shedding,
  /// released before any queue push — kQos < kQueue in the lock hierarchy,
  /// so holding it across a push would be a rank inversion.
  mutable Mutex qos_mu_{LockRank::kQos, "shard.qos_gate"};
  std::map<int, GateEntry> qos_gate_ VCD_GUARDED_BY(qos_mu_);

  // Counters readable from any thread. Frame accounting lives in the
  // metrics registry (metrics_ below) — Snapshot() reads those counters
  // back, so the registry is the one source of truth; only gauges that the
  // registry does not model bidirectionally (current stream census, busy
  // time) stay as member atomics.
  std::atomic<int> num_streams_{0};
  std::atomic<int64_t> commands_processed_{0};
  std::atomic<int64_t> busy_nanos_{0};
  std::atomic<int> streams_quarantined_{0};
  std::atomic<int> streams_failed_{0};
  std::atomic<bool> failed_{false};
  /// Highest frame timestamp submitted to this shard, in microseconds of
  /// stream time — the reference point of the per-stream lag signal.
  std::atomic<int64_t> newest_submitted_us_{0};
  /// Lag of the most recently processed frame against that reference.
  /// Maintained unconditionally (the governor samples it even when the
  /// observability layer is compiled out).
  std::atomic<int64_t> last_lag_us_{0};
  /// Numeric qos::QosState, written by the governor, read by producers.
  std::atomic<int> qos_state_{0};

  /// Cached `vcd_shard_*` instruments (never null; see ctor contract).
  obs::ShardMetrics metrics_;

  std::thread worker_;
};

}  // namespace vcd::parallel
