#include "parallel/mpsc_queue.h"

namespace vcd::parallel {

void MpscQueueBase::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool MpscQueueBase::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t MpscQueueBase::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

size_t MpscQueueBase::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

void MpscQueueBase::RecordDepthLocked(size_t depth) {
  depth_ = depth;
  if (depth > high_water_) high_water_ = depth;
}

}  // namespace vcd::parallel
