#include "parallel/mpsc_queue.h"

namespace vcd::parallel {

void MpscQueueBase::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
}

bool MpscQueueBase::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

size_t MpscQueueBase::depth() const {
  MutexLock lock(mu_);
  return depth_;
}

size_t MpscQueueBase::high_water() const {
  MutexLock lock(mu_);
  return high_water_;
}

void MpscQueueBase::RecordDepthLocked(size_t depth) {
  depth_ = depth;
  if (depth > high_water_) high_water_ = depth;
}

}  // namespace vcd::parallel
