#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/monitor.h"
#include "core/query_store.h"
#include "parallel/shard.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file executor.h
/// Parallel sharded stream executor — the scale-out form of
/// `core::StreamMonitor` (the paper's "many concurrent video streams"
/// deployment picture, §II/§V-C).
///
/// Open streams are sharded across N worker threads with stable per-stream
/// affinity (`shard = (stream_id - 1) % N`). Candidate lists are inherently
/// per-stream, so shards share nothing on the frame path: `ProcessKeyFrame`
/// touches only an atomic id bound check, a global sequence counter and the
/// owning shard's bounded MPSC queue — no portfolio lock, no registry lock.
///
/// Query subscribe/unsubscribe propagates through per-shard command queues:
/// commands ride the same FIFO as frames, so a portfolio change takes
/// effect after every frame submitted before it and before every frame
/// submitted after it — window-boundary-exact, and identical to the serial
/// monitor's semantics for any single-threaded submission schedule.
///
/// Matches are collected mutex-free on the frame path: each shard's worker
/// appends to a thread-local log tagged with the frame's global submission
/// sequence number; `Drain()`/`CloseStream()` hand logs over via one-shot
/// promises and merge them back into arrival order by that tag.
///
/// ### Thread safety
/// - `ProcessKeyFrame` — safe from any number of threads concurrently
///   (frames of one stream must come from one thread to have a defined
///   order, as with any FIFO).
/// - Control plane (`AddQuery*`, `ImportQueries`, `RemoveQuery`,
///   `OpenStream`, `CloseStream`, `Drain`, `Stats`, `StreamStats`) — safe
///   from any thread; serialized on an internal control mutex that the
///   frame path never takes.
/// - Accessors return snapshots by value.

namespace vcd::parallel {

/// Executor-wide counters plus one entry per shard.
struct ExecutorStats {
  int64_t frames_submitted = 0;  ///< accepted by ProcessKeyFrame
  int64_t frames_dropped = 0;    ///< discarded by kDropNewest backpressure
  std::vector<ShardStats> shards;
  /// Aggregated detector stats per shard (index-aligned with `shards`).
  std::vector<core::DetectorStats> shard_detector_stats;
};

/// \brief Worker-pool stream executor: StreamMonitor semantics, N threads.
class StreamExecutor {
 public:
  /// Creates an executor; all streams share \p config, threading per
  /// \p parallel. Fails on invalid config.
  static Result<std::unique_ptr<StreamExecutor>> Create(
      const core::DetectorConfig& config, const core::ParallelConfig& parallel);

  /// Drains nothing: closes all shard queues (pending work still runs) and
  /// joins the workers. Call Drain() first if you need the final matches.
  ~StreamExecutor();

  StreamExecutor(const StreamExecutor&) = delete;
  StreamExecutor& operator=(const StreamExecutor&) = delete;

  /// Subscribes a query (key-frame DC maps) on every stream, present and
  /// future.
  Status AddQuery(int id, const std::vector<vcd::video::DcFrame>& key_frames,
                  double duration_seconds = -1.0) VCD_EXCLUDES(control_mu_);

  /// Subscribes a pre-sketched query.
  Status AddQuerySketch(int id, const sketch::Sketch& sk, int length_frames,
                        double duration_seconds) VCD_EXCLUDES(control_mu_);

  /// Loads a persisted query database (hash family must match the config).
  Status ImportQueries(const core::QueryDb& db) VCD_EXCLUDES(control_mu_);

  /// Unsubscribes a query everywhere.
  Status RemoveQuery(int id) VCD_EXCLUDES(control_mu_);

  /// Number of active queries (snapshot).
  int num_queries() const VCD_EXCLUDES(control_mu_);

  /// Opens a new monitored stream; returns its id. The stream is pinned to
  /// shard `(id - 1) % num_threads` for its whole lifetime.
  Result<int> OpenStream(std::string name) VCD_EXCLUDES(control_mu_);

  /// Flushes and closes a stream: waits for its queued frames, runs the
  /// detector's Finish, and folds its matches into the merged log.
  Status CloseStream(int stream_id) VCD_EXCLUDES(control_mu_);

  /// Number of currently open streams (snapshot).
  int num_open_streams() const;

  /// Enqueues one key frame of stream \p stream_id on its shard.
  /// Returns NotFound for ids never issued; OK otherwise — under
  /// kDropNewest a full queue silently drops the frame and counts it in
  /// ExecutorStats::frames_dropped, and frames racing a CloseStream are
  /// counted as ShardStats::frames_rejected.
  Status ProcessKeyFrame(int stream_id, vcd::video::DcFrame frame);

  /// Barrier: waits until every frame and command submitted before this
  /// call has been processed, then folds all shard match logs into the
  /// merged log. Returns the first sticky processing error, if any.
  Status Drain() VCD_EXCLUDES(control_mu_);

  /// All matches folded so far (after Drain()/CloseStream()), merged back
  /// into global arrival order. Snapshot copy.
  std::vector<core::StreamMatch> matches() const VCD_EXCLUDES(control_mu_);

  /// Detector stats of one open stream (round-trips through its shard, so
  /// it reflects every frame submitted before this call).
  Result<core::DetectorStats> StreamStats(int stream_id) VCD_EXCLUDES(control_mu_);

  /// Executor counters plus per-shard stats and aggregated detector stats.
  /// Round-trips through every shard.
  ExecutorStats Stats() VCD_EXCLUDES(control_mu_);

  /// Number of shards (= worker threads).
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct PortfolioEntry {
    int id;
    int length_frames;
    double duration_seconds;
    sketch::Sketch sketch;
  };

  StreamExecutor(const core::DetectorConfig& config,
                 const core::ParallelConfig& parallel);

  Shard* shard_for(int stream_id) const {
    return shards_[static_cast<size_t>(stream_id - 1) % shards_.size()].get();
  }

  /// AddQuerySketch body; requires control_mu_ held.
  Status AddQuerySketchLocked(int id, const sketch::Sketch& sk, int length_frames,
                              double duration_seconds) VCD_REQUIRES(control_mu_);

  /// Folds \p batch into merged_ keeping it sorted by sequence number.
  /// Requires control_mu_ held.
  void FoldLocked(std::vector<SeqMatch> batch) VCD_REQUIRES(control_mu_);

  const core::DetectorConfig config_;
  const core::ParallelConfig pconfig_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Guards the portfolio, the merged log and control-plane ordering.
  /// Never taken by ProcessKeyFrame.
  mutable Mutex control_mu_;
  std::vector<PortfolioEntry> portfolio_ VCD_GUARDED_BY(control_mu_);
  std::vector<SeqMatch> merged_ VCD_GUARDED_BY(control_mu_);

  std::atomic<int> next_stream_id_{1};
  std::atomic<int> num_open_streams_{0};
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<int64_t> frames_submitted_{0};
  std::atomic<int64_t> frames_dropped_{0};
};

}  // namespace vcd::parallel
