#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/monitor.h"
#include "core/query_store.h"
#include "obs/pipeline_metrics.h"
#include "parallel/shard.h"
#include "qos/governor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file executor.h
/// Parallel sharded stream executor — the scale-out form of
/// `core::StreamMonitor` (the paper's "many concurrent video streams"
/// deployment picture, §II/§V-C).
///
/// Open streams are sharded across N worker threads with stable per-stream
/// affinity (`shard = (stream_id - 1) % N`). Candidate lists are inherently
/// per-stream, so shards share nothing on the frame path: `ProcessKeyFrame`
/// touches only an atomic id bound check, a global sequence counter and the
/// owning shard's bounded MPSC queue — no portfolio lock, no registry lock.
///
/// Query subscribe/unsubscribe propagates through per-shard command queues:
/// commands ride the same FIFO as frames, so a portfolio change takes
/// effect after every frame submitted before it and before every frame
/// submitted after it — window-boundary-exact, and identical to the serial
/// monitor's semantics for any single-threaded submission schedule.
///
/// Matches are collected mutex-free on the frame path: each shard's worker
/// appends to a thread-local log tagged with the frame's global submission
/// sequence number; `Drain()`/`CloseStream()` hand logs over via one-shot
/// promises and merge them back into arrival order by that tag.
///
/// ### Failure handling (DESIGN.md §12)
/// Streams carry a per-stream health state machine on their shard (see
/// shard.h `StreamHealth`), driven by `ParallelConfig::on_corruption`. When
/// `watchdog_ms > 0` a watchdog thread snapshots every shard each tick; a
/// shard whose queue is non-empty but whose progress counters have not moved
/// for two consecutive ticks is **failed over**: producers get
/// `Submit::kFailedOver` (counted in `frames_dropped_failover`), and
/// control-plane round trips against it return `Status::Unavailable`
/// instead of blocking. The watchdog clears the mark as soon as the shard
/// drains again. A `CloseStream`/`Drain` reply abandoned on failover is kept
/// as an orphan future and reaped by a later control-plane call, so the
/// matches it carried are folded in late rather than lost.
///
/// ### Thread safety
/// - `ProcessKeyFrame` — safe from any number of threads concurrently
///   (frames of one stream must come from one thread to have a defined
///   order, as with any FIFO).
/// - Control plane (`AddQuery*`, `ImportQueries`, `RemoveQuery`,
///   `OpenStream`, `CloseStream`, `Drain`, `Stats`, `StreamStats`,
///   `HealthOf`) — safe from any thread; serialized on an internal control
///   mutex that the frame path never takes.
/// - Accessors return snapshots by value.

namespace vcd::parallel {

/// Executor-wide counters plus one entry per shard.
struct ExecutorStats {
  int64_t frames_submitted = 0;  ///< accepted by ProcessKeyFrame
  /// Discarded because the shard queue was full under kDropNewest (or an
  /// injected kQueueOverflow fault simulated that condition).
  int64_t frames_dropped_backpressure = 0;
  /// Discarded because the owning shard was failed over by the watchdog.
  int64_t frames_dropped_failover = 0;
  /// Discarded because a kBlock push exceeded `push_deadline_ms`.
  int64_t frames_dropped_deadline = 0;
  /// Discarded by the QoS governor's priority-aware shed policy (all
  /// priority classes summed; the per-class split is in
  /// `vcd_qos_frames_shed_total{priority=...}`).
  int64_t frames_shed = 0;
  /// Times the watchdog failed a shard over (transitions, not ticks).
  int64_t watchdog_failovers = 0;
  /// Governor state across the fleet: the worst (max-severity) per-shard
  /// state, as a numeric qos::QosState. 0 while the governor is disabled.
  int qos_global_state = 0;
  std::vector<ShardStats> shards;
  /// Aggregated detector stats per shard (index-aligned with `shards`).
  std::vector<core::DetectorStats> shard_detector_stats;
};

/// \brief Checkpointed state of a whole executor: every shard's stream
/// slots, the merged + pending match logs, and the id/sequence counters.
///
/// Captured by StreamExecutor::Checkpoint() at a quiesced barrier, so the
/// snapshot is epoch-consistent across shards: every frame submitted before
/// the barrier is reflected, none submitted after it is.
struct ExecutorCkpt {
  int next_stream_id = 1;
  uint64_t next_seq = 1;
  std::vector<core::StreamCkpt> streams;  ///< all shards, ascending stream_id
  /// Merged log plus every shard's not-yet-drained pending matches, stable-
  /// sorted by submission seq — exactly what matches() would return after a
  /// Drain() at the barrier, without actually draining the shard logs.
  std::vector<SeqMatch> matches;
  /// Per-shard governor machines (empty when the governor is disabled), so
  /// a restore mid-Degraded resumes degraded instead of forgetting the
  /// overload and thrashing back into it.
  std::vector<qos::GovernorShardCkpt> qos;
};

/// \brief Worker-pool stream executor: StreamMonitor semantics, N threads.
class StreamExecutor {
 public:
  /// Creates an executor; all streams share \p config, threading per
  /// \p parallel. Fails on invalid config. When `parallel.watchdog_ms > 0`
  /// a shard watchdog thread is started (see file comment).
  static Result<std::unique_ptr<StreamExecutor>> Create(
      const core::DetectorConfig& config, const core::ParallelConfig& parallel);

  /// Stops the watchdog, closes all shard queues (pending work still runs)
  /// and joins the workers. Call Drain() first if you need the final
  /// matches.
  ~StreamExecutor();

  StreamExecutor(const StreamExecutor&) = delete;
  StreamExecutor& operator=(const StreamExecutor&) = delete;

  /// Subscribes a query (key-frame DC maps) on every stream, present and
  /// future.
  Status AddQuery(int id, const std::vector<vcd::video::DcFrame>& key_frames,
                  double duration_seconds = -1.0) VCD_EXCLUDES(control_mu_);

  /// Subscribes a pre-sketched query.
  Status AddQuerySketch(int id, const sketch::Sketch& sk, int length_frames,
                        double duration_seconds) VCD_EXCLUDES(control_mu_);

  /// Loads a persisted query database (hash family must match the config).
  Status ImportQueries(const core::QueryDb& db) VCD_EXCLUDES(control_mu_);

  /// Unsubscribes a query everywhere.
  Status RemoveQuery(int id) VCD_EXCLUDES(control_mu_);

  /// Number of active queries (snapshot).
  int num_queries() const VCD_EXCLUDES(control_mu_);

  /// Opens a new monitored stream; returns its id. The stream is pinned to
  /// shard `(id - 1) % num_threads` for its whole lifetime. \p priority is
  /// its QoS class: under overload shedding, kHigh streams are never shed,
  /// kNormal streams lose 1 frame in 2 and kLow streams 3 in 4 — monotone
  /// by class, and every class keeps making progress (DESIGN.md §17).
  Result<int> OpenStream(std::string name,
                         qos::Priority priority = qos::Priority::kNormal)
      VCD_EXCLUDES(control_mu_);

  /// Flushes and closes a stream: waits for its queued frames, runs the
  /// detector's Finish, and folds its matches into the merged log. If the
  /// stream's shard is failed over, returns Unavailable without blocking;
  /// the close still takes effect when the shard drains, and its matches
  /// are folded in by a later control-plane call (orphan reaping).
  Status CloseStream(int stream_id) VCD_EXCLUDES(control_mu_);

  /// Number of currently open streams (snapshot). A close abandoned on
  /// failover keeps counting until its orphaned reply is reaped.
  int num_open_streams() const;

  /// Enqueues one key frame of stream \p stream_id on its shard.
  /// Returns NotFound for ids never issued; OK otherwise. A frame can be
  /// discarded after acceptance, but is then counted in exactly one bucket
  /// of the unified `vcd_frames_dropped_total{cause=...}` family:
  /// - cause="backpressure" — kDropNewest, full queue (never enqueued);
  /// - cause="failover" — owning shard failed over (never enqueued);
  /// - cause="deadline" — kBlock push exceeded push_deadline_ms (never
  ///   enqueued);
  /// - cause="qos_shed" — shed by the governor's priority policy (never
  ///   enqueued; also counted per class in vcd_qos_frames_shed_total);
  /// - cause="quarantine" / "failed" — enqueued, but the stream's health
  ///   machine discarded it (DESIGN.md §12);
  /// - ShardStats::frames_rejected — enqueued, but raced a CloseStream and
  ///   the stream was gone when the frame ran (not a drop family member:
  ///   the frame was addressed to a stream that no longer exists).
  Status ProcessKeyFrame(int stream_id, vcd::video::DcFrame frame);

  /// Barrier: waits until every frame and command submitted before this
  /// call has been processed, then folds all shard match logs into the
  /// merged log. Returns the first sticky processing error, if any; a
  /// failed-over shard contributes Unavailable and is skipped (its log is
  /// reaped later rather than waited for).
  Status Drain() VCD_EXCLUDES(control_mu_);

  /// All matches folded so far (after Drain()/CloseStream()), merged back
  /// into global arrival order. Snapshot copy.
  std::vector<core::StreamMatch> matches() const VCD_EXCLUDES(control_mu_);

  /// Detector stats of one open stream (round-trips through its shard, so
  /// it reflects every frame submitted before this call). Unavailable if
  /// the shard is failed over.
  Result<core::DetectorStats> StreamStats(int stream_id) VCD_EXCLUDES(control_mu_);

  /// Ingestion health of one open stream (round-trips through its shard).
  /// Unavailable if the shard is failed over.
  Result<StreamHealth> HealthOf(int stream_id) VCD_EXCLUDES(control_mu_);

  /// Checkpoint barrier: quiesces every shard (a command rides the FIFO
  /// behind all previously submitted frames, so each shard's export reflects
  /// a window boundary of its own timeline) and exports the full executor
  /// state. Refuses with Unavailable while any shard is failed over or an
  /// orphaned reply is still pending — a consistent cut is impossible then.
  /// Frames submitted concurrently with the barrier land after it and are
  /// simply not part of the snapshot.
  Result<ExecutorCkpt> Checkpoint() VCD_EXCLUDES(control_mu_);

  /// Restores a checkpoint onto a fresh executor.
  ///
  /// Preconditions: the portfolio has been re-imported (ImportQueries with
  /// the snapshot's embedded QueryDb) and no stream has been opened.
  /// Rebuilds each stream's detector, re-validates it (typed errors on
  /// malformed state), and reinstalls it on its home shard
  /// (`(id - 1) % num_threads` — the same affinity the ids had before the
  /// crash, provided num_threads matches the checkpointed run).
  Status RestoreCkpt(const ExecutorCkpt& ckpt) VCD_EXCLUDES(control_mu_);

  /// Executor counters plus per-shard stats and aggregated detector stats.
  /// Round-trips through every live shard; a failed-over shard is reported
  /// from its lock-free Snapshot() with empty detector stats instead of
  /// being waited on.
  ExecutorStats Stats() VCD_EXCLUDES(control_mu_);

  /// Number of shards (= worker threads).
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Runs one governor tick synchronously: samples every shard's pressure,
  /// advances the hysteresis machines, and applies any transitions (state
  /// gauges, shard shed gates, degrade-knob fan-out). The periodic governor
  /// thread calls exactly this; tests call it directly for deterministic
  /// tick-by-tick control. No-op while the governor is disabled.
  void TickQos() VCD_EXCLUDES(qos_mu_);

  /// Governor state of one shard (kNormal while the governor is disabled).
  qos::QosState QosStateOf(int shard) const VCD_EXCLUDES(qos_mu_);

  /// Worst (max-severity) governor state across all shards.
  qos::QosState QosGlobalState() const VCD_EXCLUDES(qos_mu_);

  /// The registry backing this executor's metric families — the one named by
  /// `ParallelConfig::metrics`, or the executor's own private registry when
  /// the config left it null. Valid for the executor's lifetime; safe to
  /// Collect()/export from any thread while streams run.
  obs::MetricsRegistry& metrics_registry() const { return *registry_; }

 private:
  struct PortfolioEntry {
    int id;
    int length_frames;
    double duration_seconds;
    sketch::Sketch sketch;
  };

  /// A CloseStream/Drain reply abandoned because its shard was failed over.
  /// The promise still completes when the shard drains; ReapOrphansLocked
  /// folds the carried matches in then.
  struct Orphan {
    std::future<std::pair<Status, std::vector<SeqMatch>>> reply;
    bool is_close = false;  ///< successful close decrements num_open_streams_
  };

  StreamExecutor(const core::DetectorConfig& config,
                 const core::ParallelConfig& parallel);

  Shard* shard_for(int stream_id) const {
    return shards_[static_cast<size_t>(stream_id - 1) % shards_.size()].get();
  }

  /// AddQuerySketch body; requires control_mu_ held.
  Status AddQuerySketchLocked(int id, const sketch::Sketch& sk, int length_frames,
                              double duration_seconds) VCD_REQUIRES(control_mu_);

  /// Folds \p batch into merged_ keeping it sorted by sequence number.
  /// Requires control_mu_ held.
  void FoldLocked(std::vector<SeqMatch> batch) VCD_REQUIRES(control_mu_);

  /// Consumes every orphaned reply that has become ready (non-blocking).
  void ReapOrphansLocked() VCD_REQUIRES(control_mu_);

  /// Polls \p f until ready, or until \p shard is failed over — a failed
  /// shard must never block the control plane. True when the reply is ready.
  template <typename T>
  static bool WaitOrFailover(std::future<T>& f, Shard* shard);

  /// Watchdog thread body: ticks every watchdog_ms, fails over shards whose
  /// queue is non-empty but whose progress counters stopped moving, and
  /// clears the mark once they drain again.
  void WatchdogLoop();

  /// Governor thread body: TickQos() every qos.tick_ms.
  void QosLoop() VCD_EXCLUDES(qos_mu_);

  /// TickQos body; requires qos_mu_ held.
  void TickQosLocked() VCD_REQUIRES(qos_mu_);

  /// Pushes one governor transition out to the world: state gauge, dwell
  /// histogram, the shard's shed gate, and (when the degraded threshold was
  /// crossed in either direction) a degrade-knob command.
  void ApplyQosTransitionLocked(const qos::Transition& tr)
      VCD_REQUIRES(qos_mu_);

  /// Backing registry for the executor/shard/detector metric families. When
  /// `ParallelConfig::metrics` names one, it is used directly; otherwise the
  /// executor owns a private registry so Stats() accounting works without
  /// any observability wiring. Declared before config_/metrics_/shards_:
  /// everything downstream caches instruments out of it during construction.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* const registry_;

  const core::DetectorConfig config_;
  const core::ParallelConfig pconfig_;

  /// Cached `vcd_executor_*` instruments (never null: registry_ is not).
  obs::ExecutorMetrics metrics_;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// Guards the portfolio, the merged log, the orphan list and
  /// control-plane ordering. Never taken by ProcessKeyFrame. Outermost lock
  /// of the hierarchy (DESIGN.md §14): command fan-out takes every shard's
  /// queue lock, and detector construction takes the metrics registry lock,
  /// while this is held.
  mutable Mutex control_mu_{LockRank::kExecutorControl, "executor.control"};
  std::vector<PortfolioEntry> portfolio_ VCD_GUARDED_BY(control_mu_);
  std::vector<SeqMatch> merged_ VCD_GUARDED_BY(control_mu_);
  std::vector<Orphan> orphans_ VCD_GUARDED_BY(control_mu_);
  /// QoS class of every open stream — the control-plane source of truth
  /// (the per-shard shed gates are the producer-path copy) and what the
  /// checkpoint codec persists per stream.
  std::map<int, qos::Priority> priorities_ VCD_GUARDED_BY(control_mu_);

  std::atomic<int> next_stream_id_{1};
  std::atomic<int> num_open_streams_{0};
  std::atomic<uint64_t> next_seq_{1};

  // Watchdog machinery (thread only started when pconfig_.watchdog_ms > 0).
  // kShard: held across per-shard queue-depth snapshots (the watchdog →
  // shard → queue path), so it sits above kQueue and below the control
  // plane in the DESIGN.md §14 order — never nested with control_mu_ today,
  // but the declared order is what a future refactor is held to.
  Mutex watchdog_mu_ VCD_ACQUIRED_AFTER(control_mu_){LockRank::kShard,
                                                     "executor.watchdog"};
  CondVar watchdog_cv_;
  bool watchdog_stop_ VCD_GUARDED_BY(watchdog_mu_) = false;
  std::thread watchdog_;

  // Governor machinery (thread only started when qos.enabled && tick_ms >
  // 0; the machine itself exists whenever qos.enabled, so tests can drive
  // TickQos() by hand with tick_ms = 0). Same kShard rank and nesting story
  // as the watchdog mutex: held across per-shard pressure samples (the
  // governor → shard → queue path) and never nested with watchdog_mu_
  // (equal ranks must not nest).
  mutable Mutex qos_mu_ VCD_ACQUIRED_AFTER(control_mu_){LockRank::kShard,
                                                        "executor.qos"};
  CondVar qos_cv_;
  bool qos_stop_ VCD_GUARDED_BY(qos_mu_) = false;
  std::unique_ptr<qos::Governor> governor_ VCD_GUARDED_BY(qos_mu_);
  /// Cached `vcd_qos_*` instruments (per-shard state gauges, dwell
  /// histograms, per-priority shed counters). All-null only if the
  /// registry were null, which the ctor forbids.
  obs::QosMetrics qos_metrics_;
  std::thread qos_thread_;
};

}  // namespace vcd::parallel
