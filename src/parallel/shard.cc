#include "parallel/shard.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/span.h"
#include "util/check.h"
#include "util/faultfx.h"
#include "util/stopwatch.h"

namespace vcd::parallel {

const char* StreamHealthName(StreamHealth h) {
  switch (h) {
    case StreamHealth::kHealthy:
      return "healthy";
    case StreamHealth::kDegraded:
      return "degraded";
    case StreamHealth::kQuarantined:
      return "quarantined";
    case StreamHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

Shard::Shard(int shard_id, const core::ParallelConfig& config,
             obs::MetricsRegistry* registry)
    : shard_id_(shard_id),
      config_(config),
      queue_(static_cast<size_t>(config.queue_capacity)),
      metrics_(obs::ShardMetrics::Create(registry, shard_id)),
      worker_([this] { Run(); }) {
  // Snapshot() dereferences the counters unconditionally; a null registry
  // is a wiring bug (the executor always supplies one), not input.
  VCD_CHECK(registry != nullptr, "Shard requires a metrics registry");
}

Shard::~Shard() {
  queue_.Close();
  if (worker_.joinable()) worker_.join();
}

Shard::Submit Shard::SubmitFrame(uint64_t seq, int stream_id,
                                 vcd::video::DcFrame frame,
                                 qos::Priority* shed_priority) {
  if (failed()) return Submit::kFailedOver;
  if (faultfx::ShouldFire(faultfx::Site::kQueueOverflow,
                          static_cast<uint64_t>(stream_id))) {
    // Simulated overload: behave exactly as a full queue under kDropNewest.
    return Submit::kDropped;
  }
  if (qos_state() == qos::QosState::kShedding) {
    // Priority-aware shedding. The gate check runs BEFORE the lag-reference
    // update below: a shed frame never advances newest_submitted_us_, so
    // shedding cannot inflate the very lag signal that triggered it. The
    // gate lock is released before any queue push (kQos < kQueue).
    qos::Priority victim = qos::Priority::kNormal;
    bool shed = false;
    {
      MutexLock lock(qos_mu_);
      auto it = qos_gate_.find(stream_id);
      if (it != qos_gate_.end()) {
        victim = it->second.priority;
        shed = qos::ShouldShed(victim, it->second.seq++);
      }
    }
    if (shed) {
      if (shed_priority != nullptr) *shed_priority = victim;
      return Submit::kShedded;
    }
  }
  Task t;
  t.seq = seq;
  t.stream_id = stream_id;
  t.frame = std::move(frame);
  // Track the newest stream-clock timestamp entering this shard — the
  // reference point of the lag signal computed in ProcessFrame. Always on:
  // the QoS governor samples lag even when observability is compiled out.
  {
    const auto us = static_cast<int64_t>(t.frame.timestamp * 1e6);
    int64_t prev = newest_submitted_us_.load(std::memory_order_relaxed);
    while (us > prev && !newest_submitted_us_.compare_exchange_weak(
                            prev, us, std::memory_order_relaxed)) {
    }
  }
  if (config_.backpressure == core::BackpressurePolicy::kBlock) {
    if (config_.push_deadline_ms > 0) {
      const auto result = queue_.PushWithDeadline(
          std::move(t), std::chrono::milliseconds(config_.push_deadline_ms));
      VCD_OBS_SET(metrics_.queue_depth, static_cast<int64_t>(queue_.depth()));
      if (result == MpscQueueBase::PushResult::kTimeout) {
        return Submit::kDeadline;
      }
      // kClosed mirrors the unbounded Push path below: shutdown races are
      // benign and the frame is simply not processed.
      return Submit::kAccepted;
    }
    queue_.Push(std::move(t));
    VCD_OBS_SET(metrics_.queue_depth, static_cast<int64_t>(queue_.depth()));
    return Submit::kAccepted;
  }
  const bool accepted = queue_.TryPush(std::move(t));
  VCD_OBS_SET(metrics_.queue_depth, static_cast<int64_t>(queue_.depth()));
  return accepted ? Submit::kAccepted : Submit::kDropped;
}

void Shard::RegisterStreamQos(int stream_id, qos::Priority priority) {
  MutexLock lock(qos_mu_);
  qos_gate_[stream_id] = GateEntry{priority, 0};
}

void Shard::UnregisterStreamQos(int stream_id) {
  MutexLock lock(qos_mu_);
  qos_gate_.erase(stream_id);
}

void Shard::SubmitCommand(Command cmd) {
  Task t;
  t.command = std::move(cmd);
  queue_.PushUnbounded(std::move(t));
}

ShardStats Shard::Snapshot() const {
  ShardStats s;
  s.shard_id = shard_id_;
  s.num_streams = num_streams_.load(std::memory_order_relaxed);
  // Frame accounting reads back through the metrics registry — the same
  // counters vcdctl exports, so a snapshot can never disagree with the
  // exported metrics.
  s.frames_processed = metrics_.frames_processed_total->Value();
  s.frames_rejected = metrics_.frames_rejected_total->Value();
  s.commands_processed = commands_processed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  s.queue_high_water = queue_.high_water();
  s.busy_seconds =
      static_cast<double>(busy_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  s.frames_degraded = metrics_.frames_degraded_total->Value();
  s.frames_quarantined = metrics_.frames_quarantined_total->Value();
  s.frames_failed = metrics_.frames_failed_total->Value();
  s.quarantine_events = metrics_.quarantine_events_total->Value();
  s.streams_quarantined = streams_quarantined_.load(std::memory_order_relaxed);
  s.streams_failed = streams_failed_.load(std::memory_order_relaxed);
  s.failed_over = failed();
  s.qos_state = qos_state_.load(std::memory_order_relaxed);
  return s;
}

void Shard::Run() {
  Task t;
  while (queue_.Pop(&t)) {
    double stall_ms = 0.0;
    // Keyed shard_id + 1 so a plan can target one shard (key 0 = any).
    if (faultfx::ShouldFire(faultfx::Site::kShardStall,
                            static_cast<uint64_t>(shard_id_) + 1, &stall_ms) &&
        stall_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(stall_ms)));
    }
    Stopwatch sw;
    if (t.command) {
      t.command(this);
      commands_processed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ProcessFrame(t);
    }
    busy_nanos_.fetch_add(static_cast<int64_t>(sw.ElapsedSeconds() * 1e9),
                          std::memory_order_relaxed);
    VCD_OBS_SET(metrics_.queue_depth, static_cast<int64_t>(queue_.depth()));
  }
}

void Shard::ProcessFrame(Task& t) {
  // Stream-clock lag: how far the frame being processed trails the newest
  // timestamp submitted to this shard — the continuous-monitoring "how far
  // behind real time" signal (per shard; microseconds of stream time).
  // Maintained unconditionally: this is also the governor's lag input.
  {
    const auto us = static_cast<int64_t>(t.frame.timestamp * 1e6);
    const int64_t lag =
        newest_submitted_us_.load(std::memory_order_relaxed) - us;
    last_lag_us_.store(lag > 0 ? lag : 0, std::memory_order_relaxed);
    VCD_OBS_SET(metrics_.stream_lag_us, lag > 0 ? lag : 0);
  }
  auto it = streams_.find(t.stream_id);
  if (it == streams_.end()) {
    // The stream was closed (or never installed) before this frame ran —
    // the asynchronous analogue of the serial monitor's NotFound.
    metrics_.frames_rejected_total->Inc();
    return;
  }
  StreamSlot& slot = it->second;
  if (slot.health == StreamHealth::kFailed) {
    metrics_.frames_failed_total->Inc();
    metrics_.dropped_failed->Inc();
    return;
  }
  if (slot.health == StreamHealth::kQuarantined) {
    metrics_.frames_quarantined_total->Inc();
    metrics_.dropped_quarantine->Inc();
    if (--slot.quarantine_remaining <= 0) {
      // Backoff served: readmit on probation (kDegraded, not kHealthy —
      // it still needs recover_after_frames clean frames).
      slot.health = StreamHealth::kDegraded;
      slot.consecutive_faults = 0;
      slot.consecutive_clean = 0;
      streams_quarantined_.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  const uint64_t key = static_cast<uint64_t>(t.stream_id);
  bool fault = t.frame.degraded;
  if (faultfx::ShouldFire(faultfx::Site::kDecodeError, key)) {
    t.frame.degraded = true;
    fault = true;
  }
  double skew = 0.0;
  if (faultfx::ShouldFire(faultfx::Site::kClockSkew, key, &skew)) {
    t.frame.timestamp += skew;
  }
  Status st = slot.detector->ProcessKeyFrame(t.frame);
  if (!st.ok() && first_error_.ok()) first_error_ = st;
  DrainSlotMatches(t.stream_id, &slot, t.seq);
  metrics_.frames_processed_total->Inc();
  // Clock skew counts as a fault for the health machine: the detector
  // demoted the frame (out_of_order_frames) even though it arrived with
  // degraded = false.
  if (slot.saw_timestamp && t.frame.timestamp < slot.max_timestamp) fault = true;
  slot.max_timestamp = std::max(slot.max_timestamp, t.frame.timestamp);
  slot.saw_timestamp = true;
  if (fault) metrics_.frames_degraded_total->Inc();
  UpdateHealth(t.stream_id, &slot, fault);
}

void Shard::UpdateHealth(int stream_id, StreamSlot* slot, bool fault) {
  if (!fault) {
    slot->consecutive_faults = 0;
    if (slot->health != StreamHealth::kHealthy &&
        ++slot->consecutive_clean >= config_.recover_after_frames) {
      slot->health = StreamHealth::kHealthy;
      slot->backoff_frames = config_.quarantine_backoff_frames;
      slot->consecutive_clean = 0;
    }
    return;
  }
  slot->consecutive_clean = 0;
  ++slot->consecutive_faults;
  if (config_.on_corruption == core::CorruptionPolicy::kFail) {
    slot->health = StreamHealth::kFailed;
    streams_failed_.fetch_add(1, std::memory_order_relaxed);
    if (first_error_.ok()) {
      first_error_ = Status::Corruption(
          "stream " + std::to_string(stream_id) +
          " (" + slot->name + ") failed on corrupted input (policy fail)");
    }
    return;
  }
  if (config_.on_corruption == core::CorruptionPolicy::kQuarantine &&
      slot->consecutive_faults >= config_.quarantine_after_faults) {
    slot->health = StreamHealth::kQuarantined;
    slot->quarantine_remaining = slot->backoff_frames;
    slot->backoff_frames =
        std::min<int64_t>(slot->backoff_frames * 2,
                          config_.quarantine_backoff_max_frames);
    slot->consecutive_faults = 0;
    metrics_.quarantine_events_total->Inc();
    streams_quarantined_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (slot->consecutive_faults >= config_.degraded_after_faults) {
    slot->health = StreamHealth::kDegraded;
  }
}

void Shard::DrainSlotMatches(int stream_id, StreamSlot* slot, uint64_t seq) {
  const auto& ms = slot->detector->matches();
  for (; slot->matches_consumed < ms.size(); ++slot->matches_consumed) {
    log_.push_back(SeqMatch{
        seq, core::StreamMatch{stream_id, slot->name, ms[slot->matches_consumed]}});
  }
}

void Shard::InstallStream(int stream_id, std::string name,
                          std::shared_ptr<core::CopyDetector> detector) {
  StreamSlot slot;
  slot.name = std::move(name);
  slot.detector = std::move(detector);
  slot.backoff_frames = config_.quarantine_backoff_frames;
  // A stream opened while the shard is degraded joins at the shard's
  // current quality level, not full quality.
  slot.detector->SetDegrade(active_knobs_);
  streams_.emplace(stream_id, std::move(slot));
  num_streams_.fetch_add(1, std::memory_order_relaxed);
}

void Shard::InstallRestoredStream(const core::StreamCkpt& ckpt,
                                  std::shared_ptr<core::CopyDetector> detector) {
  StreamSlot slot;
  slot.name = ckpt.name;
  slot.detector = std::move(detector);
  slot.matches_consumed = static_cast<size_t>(ckpt.matches_consumed);
  slot.health = static_cast<StreamHealth>(ckpt.health);
  slot.consecutive_faults = ckpt.consecutive_faults;
  slot.consecutive_clean = ckpt.consecutive_clean;
  slot.quarantine_remaining = ckpt.quarantine_remaining;
  slot.backoff_frames = ckpt.backoff_frames;
  slot.max_timestamp = ckpt.max_timestamp;
  slot.saw_timestamp = ckpt.saw_timestamp;
  slot.detector->SetDegrade(active_knobs_);
  if (slot.health == StreamHealth::kQuarantined) {
    streams_quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
  if (slot.health == StreamHealth::kFailed) {
    streams_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  streams_.emplace(ckpt.stream_id, std::move(slot));
  num_streams_.fetch_add(1, std::memory_order_relaxed);
}

void Shard::ExportCkpt(std::vector<core::StreamCkpt>* slots,
                       std::vector<SeqMatch>* pending_log) const {
  for (const auto& [sid, slot] : streams_) {
    core::StreamCkpt s;
    s.stream_id = sid;
    s.name = slot.name;
    s.matches_consumed = slot.matches_consumed;
    s.health = static_cast<int>(slot.health);
    s.consecutive_faults = slot.consecutive_faults;
    s.consecutive_clean = slot.consecutive_clean;
    s.quarantine_remaining = slot.quarantine_remaining;
    s.backoff_frames = slot.backoff_frames;
    s.max_timestamp = slot.max_timestamp;
    s.saw_timestamp = slot.saw_timestamp;
    s.detector = slot.detector->ExportCkptState();
    slots->push_back(std::move(s));
  }
  pending_log->insert(pending_log->end(), log_.begin(), log_.end());
}

Status Shard::FinishStream(int stream_id, uint64_t close_seq,
                           std::vector<SeqMatch>* out) {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return Status::NotFound("no such stream");
  if (it->second.health == StreamHealth::kQuarantined) {
    streams_quarantined_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (it->second.health == StreamHealth::kFailed) {
    streams_failed_.fetch_sub(1, std::memory_order_relaxed);
  }
  Status st = it->second.detector->Finish();
  DrainSlotMatches(stream_id, &it->second, close_seq);
  out->swap(log_);
  streams_.erase(it);
  num_streams_.fetch_sub(1, std::memory_order_relaxed);
  return st;
}

void Shard::ApplyAddQuery(int id, const sketch::Sketch& sk, int length_frames,
                          double duration_seconds) {
  for (auto& [sid, slot] : streams_) {
    Status st = slot.detector->AddQuerySketch(id, sk, length_frames, duration_seconds);
    if (!st.ok() && first_error_.ok()) first_error_ = st;
  }
}

void Shard::ApplyRemoveQuery(int id) {
  for (auto& [sid, slot] : streams_) {
    Status st = slot.detector->RemoveQuery(id);
    if (!st.ok() && first_error_.ok()) first_error_ = st;
  }
}

Status Shard::TakeMatches(std::vector<SeqMatch>* out) {
  out->insert(out->end(), std::make_move_iterator(log_.begin()),
              std::make_move_iterator(log_.end()));
  log_.clear();
  return first_error_;
}

Result<core::DetectorStats> Shard::StatsOf(int stream_id) const {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return Status::NotFound("no such stream");
  return it->second.detector->stats();
}

Result<StreamHealth> Shard::HealthOf(int stream_id) const {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return Status::NotFound("no such stream");
  return it->second.health;
}

core::DetectorStats Shard::AggregateDetectorStats() const {
  core::DetectorStats agg;
  for (const auto& [sid, slot] : streams_) {
    const core::DetectorStats& s = slot.detector->stats();
    agg.key_frames += s.key_frames;
    agg.windows += s.windows;
    agg.sketch_combines += s.sketch_combines;
    agg.sketch_compares += s.sketch_compares;
    agg.bitsig_ors += s.bitsig_ors;
    agg.bitsig_builds += s.bitsig_builds;
    agg.candidates_pruned += s.candidates_pruned;
    agg.degraded_frames += s.degraded_frames;
    agg.degraded_windows += s.degraded_windows;
    agg.out_of_order_frames += s.out_of_order_frames;
    agg.qos_skipped_windows += s.qos_skipped_windows;
    agg.signatures_per_window.Merge(s.signatures_per_window);
    agg.candidates_per_window.Merge(s.candidates_per_window);
    agg.pool_slots_per_window.Merge(s.pool_slots_per_window);
  }
  return agg;
}

void Shard::ApplyDegrade(const qos::DegradeKnobs& knobs) {
  active_knobs_ = knobs;
  for (auto& [sid, slot] : streams_) {
    slot.detector->SetDegrade(knobs);
  }
}

}  // namespace vcd::parallel
