#include "parallel/shard.h"

#include <utility>

#include "util/stopwatch.h"

namespace vcd::parallel {

Shard::Shard(int shard_id, core::BackpressurePolicy backpressure,
             size_t queue_capacity)
    : shard_id_(shard_id),
      backpressure_(backpressure),
      queue_(queue_capacity),
      worker_([this] { Run(); }) {}

Shard::~Shard() {
  queue_.Close();
  if (worker_.joinable()) worker_.join();
}

Shard::Submit Shard::SubmitFrame(uint64_t seq, int stream_id,
                                 vcd::video::DcFrame frame) {
  Task t;
  t.seq = seq;
  t.stream_id = stream_id;
  t.frame = std::move(frame);
  if (backpressure_ == core::BackpressurePolicy::kBlock) {
    queue_.Push(std::move(t));
    return Submit::kAccepted;
  }
  return queue_.TryPush(std::move(t)) ? Submit::kAccepted : Submit::kDropped;
}

void Shard::SubmitCommand(Command cmd) {
  Task t;
  t.command = std::move(cmd);
  queue_.Push(std::move(t));
}

ShardStats Shard::Snapshot() const {
  ShardStats s;
  s.shard_id = shard_id_;
  s.num_streams = num_streams_.load(std::memory_order_relaxed);
  s.frames_processed = frames_processed_.load(std::memory_order_relaxed);
  s.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  s.commands_processed = commands_processed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  s.queue_high_water = queue_.high_water();
  s.busy_seconds =
      static_cast<double>(busy_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

void Shard::Run() {
  Task t;
  while (queue_.Pop(&t)) {
    Stopwatch sw;
    if (t.command) {
      t.command(this);
      commands_processed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ProcessFrame(t);
    }
    busy_nanos_.fetch_add(static_cast<int64_t>(sw.ElapsedSeconds() * 1e9),
                          std::memory_order_relaxed);
  }
}

void Shard::ProcessFrame(const Task& t) {
  auto it = streams_.find(t.stream_id);
  if (it == streams_.end()) {
    // The stream was closed (or never installed) before this frame ran —
    // the asynchronous analogue of the serial monitor's NotFound.
    frames_rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Status st = it->second.detector->ProcessKeyFrame(t.frame);
  if (!st.ok() && first_error_.ok()) first_error_ = st;
  DrainSlotMatches(t.stream_id, &it->second, t.seq);
  frames_processed_.fetch_add(1, std::memory_order_relaxed);
}

void Shard::DrainSlotMatches(int stream_id, StreamSlot* slot, uint64_t seq) {
  const auto& ms = slot->detector->matches();
  for (; slot->matches_consumed < ms.size(); ++slot->matches_consumed) {
    log_.push_back(SeqMatch{
        seq, core::StreamMatch{stream_id, slot->name, ms[slot->matches_consumed]}});
  }
}

void Shard::InstallStream(int stream_id, std::string name,
                          std::shared_ptr<core::CopyDetector> detector) {
  StreamSlot slot;
  slot.name = std::move(name);
  slot.detector = std::move(detector);
  streams_.emplace(stream_id, std::move(slot));
  num_streams_.fetch_add(1, std::memory_order_relaxed);
}

Status Shard::FinishStream(int stream_id, uint64_t close_seq,
                           std::vector<SeqMatch>* out) {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return Status::NotFound("no such stream");
  Status st = it->second.detector->Finish();
  DrainSlotMatches(stream_id, &it->second, close_seq);
  out->swap(log_);
  streams_.erase(it);
  num_streams_.fetch_sub(1, std::memory_order_relaxed);
  return st;
}

void Shard::ApplyAddQuery(int id, const sketch::Sketch& sk, int length_frames,
                          double duration_seconds) {
  for (auto& [sid, slot] : streams_) {
    Status st = slot.detector->AddQuerySketch(id, sk, length_frames, duration_seconds);
    if (!st.ok() && first_error_.ok()) first_error_ = st;
  }
}

void Shard::ApplyRemoveQuery(int id) {
  for (auto& [sid, slot] : streams_) {
    Status st = slot.detector->RemoveQuery(id);
    if (!st.ok() && first_error_.ok()) first_error_ = st;
  }
}

Status Shard::TakeMatches(std::vector<SeqMatch>* out) {
  out->insert(out->end(), std::make_move_iterator(log_.begin()),
              std::make_move_iterator(log_.end()));
  log_.clear();
  return first_error_;
}

Result<core::DetectorStats> Shard::StatsOf(int stream_id) const {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return Status::NotFound("no such stream");
  return it->second.detector->stats();
}

core::DetectorStats Shard::AggregateDetectorStats() const {
  core::DetectorStats agg;
  for (const auto& [sid, slot] : streams_) {
    const core::DetectorStats& s = slot.detector->stats();
    agg.key_frames += s.key_frames;
    agg.windows += s.windows;
    agg.sketch_combines += s.sketch_combines;
    agg.sketch_compares += s.sketch_compares;
    agg.bitsig_ors += s.bitsig_ors;
    agg.bitsig_builds += s.bitsig_builds;
    agg.candidates_pruned += s.candidates_pruned;
    agg.signatures_per_window.Merge(s.signatures_per_window);
    agg.candidates_per_window.Merge(s.candidates_per_window);
    agg.pool_slots_per_window.Merge(s.pool_slots_per_window);
  }
  return agg;
}

}  // namespace vcd::parallel
