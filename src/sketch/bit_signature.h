#pragma once

#include "sketch/minhash.h"
#include "util/bit_util.h"
#include "util/status.h"

/// \file bit_signature.h
/// The bit-vector signature of a candidate sketch against a query sketch
/// (paper §V-A, Definition 3).
///
/// For each hash function r the pair of bits (even = 2r, odd = 2r+1) encodes
/// the order relation between the candidate's and the query's r-th min-hash
/// value:
///     ">"  -> (0, 0)      "="  -> (1, 0)      "<"  -> (1, 1)
/// i.e. the even bit means `cand ≤ query` and the odd bit means
/// `cand < query`. Because combining candidates takes element-wise minima,
/// the relation of the combined value follows by bitwise OR of the pairs —
/// the lossless-merge table the paper lists below Definition 3. Lemma 1's
/// similarity and Lemma 2's pruning bound become two masked popcounts.

namespace vcd::sketch {

/// \brief A 2K-bit signature of one candidate sequence w.r.t. one query.
class BitSignature {
 public:
  BitSignature() = default;

  /// Creates the all-">" signature (the empty candidate is larger than any
  /// query value at every position).
  explicit BitSignature(int k) : k_(k), bits_(static_cast<size_t>(2 * k)) {}

  /// Builds the signature of \p cand against \p query (equal K required).
  static BitSignature FromSketches(const Sketch& cand, const Sketch& query);

  /// Builds a signature from \p nwords raw backing words (bit-faithful,
  /// including any invalid states, so Validate() can vet the source). Used
  /// to materialize SignaturePool slots on the scalar reference path.
  static BitSignature FromRawWords(int k, const uint64_t* words, size_t nwords);

  /// Number of hash functions K.
  int K() const { return k_; }

  /// Sets the relation at hash position \p r from raw values.
  void SetRelation(int r, uint64_t cand_value, uint64_t query_value) {
    if (cand_value <= query_value) bits_.Set(static_cast<size_t>(2 * r));
    if (cand_value < query_value) bits_.Set(static_cast<size_t>(2 * r + 1));
  }

  /// True if position \p r encodes "=".
  bool IsEqualAt(int r) const {
    return bits_.Get(static_cast<size_t>(2 * r)) &&
           !bits_.Get(static_cast<size_t>(2 * r + 1));
  }

  /// OR-combination (the signature of the combined candidate; §V-A).
  void OrWith(const BitSignature& other) { bits_.OrWith(other.bits_); }

  /// Number of "=" positions: popcount(even) − popcount(odd).
  int NumEqual() const {
    return bits_.CountOnesWithParity(0) - bits_.CountOnesWithParity(1);
  }

  /// Number of "<" positions (the `N_s` of Lemma 2).
  int NumLess() const { return bits_.CountOnesWithParity(1); }

  /// Lemma 1: similarity = 1 − (n0 + n1)/K = NumEqual()/K.
  double Similarity() const {
    return k_ > 0 ? static_cast<double>(NumEqual()) / k_ : 0.0;
  }

  /// Lemma 2: a candidate can still reach threshold \p delta only while the
  /// number of "<" positions is at most K(1−δ).
  bool SatisfiesLemma2(double delta) const {
    return static_cast<double>(NumLess()) <= static_cast<double>(k_) * (1.0 - delta) + 1e-9;
  }

  /// \brief Structural invariant check (debug validator).
  ///
  /// A well-formed signature has exactly 2K bits and no position in the
  /// impossible (even=0, odd=1) state — "cand < query but not cand ≤ query".
  /// That state is unreachable through SetRelation/OrWith; seeing it means
  /// memory corruption or a bad merge. The popcount bounds of Lemma 1/2
  /// (odd ≤ even ≤ K, hence NumEqual ∈ [0, K]) follow from per-position
  /// validity and are re-checked directly as a defence in depth.
  Status Validate() const {
    if (bits_.size() != static_cast<size_t>(2 * k_)) {
      return Status::Internal("BitSignature: bit count != 2K");
    }
    for (int r = 0; r < k_; ++r) {
      if (!bits_.Get(static_cast<size_t>(2 * r)) &&
          bits_.Get(static_cast<size_t>(2 * r + 1))) {
        return Status::Internal("BitSignature: impossible (0,1) relation pair");
      }
    }
    const int even = bits_.CountOnesWithParity(0);
    const int odd = bits_.CountOnesWithParity(1);
    if (odd > even || even > k_) {
      return Status::Internal("BitSignature: popcount bounds violated");
    }
    return Status::OK();
  }

  /// Raw bits (for tests).
  const BitVector& bits() const { return bits_; }

  /// Mutable raw bits — exists only so tests can corrupt a signature and
  /// assert that Validate() reports it. Library code must not call this.
  BitVector& mutable_bits_for_test() { return bits_; }

  bool operator==(const BitSignature& other) const {
    return k_ == other.k_ && bits_ == other.bits_;
  }

 private:
  int k_ = 0;
  BitVector bits_;
};

}  // namespace vcd::sketch
