#pragma once

#include <cstdint>
#include <vector>

#include "sketch/kernels/kernels.h"
#include "sketch/minhash.h"
#include "util/aligned_buffer.h"
#include "util/status.h"

/// \file sketch_pool.h
/// Flat arena storage for K-min-hash `mins` arrays (paper §IV), the
/// raw-sketch counterpart of `SignaturePool`.
///
/// Each slot is one candidate sketch: K contiguous `uint64_t` min values at
/// a fixed stride inside a single 64-byte-aligned slab. Handles are slot
/// indices, so slab growth and slot reuse never invalidate live handles,
/// and the free-list makes candidate expiry allocation-free. The combine
/// kernel is the element-wise minimum of Property 1, dispatched through the
/// SIMD backend (DESIGN.md §15).
///
/// Unlike the signature slab, sketch slots stay contiguous (AoS): every
/// sketch op touches all K words of one slot, so lane-blocking would
/// spread a single combine over K cache lines instead of K/8.

namespace vcd::sketch {

/// \brief Arena of fixed-stride min-hash sketches with a free-list.
class SketchPool {
 public:
  /// A slot index. Stable for the lifetime of the allocation.
  using Handle = uint32_t;
  static constexpr Handle kInvalidHandle = UINT32_MAX;

  /// Creates an empty pool for sketches of \p k hash functions (k ≥ 1).
  /// \p ops overrides the kernel backend (process-wide default when null).
  explicit SketchPool(int k, const kernels::KernelOps* ops = nullptr);

  /// Number of hash functions K.
  int K() const { return k_; }
  /// The kernel backend this pool dispatches to.
  const kernels::KernelOps& ops() const { return *ops_; }
  /// Total slots ever created (live + free).
  size_t capacity() const { return live_.size(); }
  /// Currently allocated slots.
  size_t live_count() const { return live_count_; }
  /// True if \p h names a currently allocated slot.
  bool IsLive(Handle h) const { return h < live_.size() && live_[h] != 0; }

  /// Allocates a slot initialized to the empty sketch (all positions +inf).
  Handle Allocate();

  /// Returns \p h to the free-list; other live handles are unaffected.
  void Free(Handle h);

  /// Slot min-value access (K words).
  uint64_t* mins(Handle h) { return slab_.data() + size_t{h} * stride_; }
  /// \copydoc mins
  const uint64_t* mins(Handle h) const {
    return slab_.data() + size_t{h} * stride_;
  }

  /// Copies scalar sketch \p sk (same K) into slot \p h.
  void Assign(Handle h, const Sketch& sk);

  /// Copies live slot \p src into live slot \p dst.
  void Copy(Handle dst, Handle src);

  /// Element-wise minimum of \p src into \p dst (Property 1 combine) —
  /// one contiguous pass through the SIMD backend.
  void CombineMin(Handle dst, Handle src) {
    kernels::Counters().combine_min_calls.fetch_add(1,
                                                    std::memory_order_relaxed);
    ops_->sketch_combine_min(mins(dst), mins(src), stride_);
  }

  /// Number of positions where slot \p h equals scalar sketch \p query
  /// (Definition 2 numerator).
  int NumEqualAgainst(Handle h, const Sketch& query) const;

  /// Definition 2 similarity of slot \p h against \p query.
  double SimilarityAgainst(Handle h, const Sketch& query) const {
    return k_ > 0 ? static_cast<double>(NumEqualAgainst(h, query)) / k_ : 0.0;
  }

  /// Materializes slot \p h as a scalar Sketch (reference/debug path).
  Sketch ToSketch(Handle h) const;

  /// \brief Structural invariant check: 64-byte slab alignment, free-list
  /// handles in range, flagged free and listed exactly once; every freed
  /// slot reachable from the free-list; live count consistent.
  Status Validate() const;

 private:
  int k_;
  size_t stride_;
  const kernels::KernelOps* ops_;
  util::AlignedWordBuf slab_;
  std::vector<Handle> free_;
  std::vector<uint8_t> live_;
  size_t live_count_ = 0;
};

}  // namespace vcd::sketch
