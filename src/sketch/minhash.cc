#include "sketch/minhash.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/logging.h"
#include "util/rng.h"

namespace vcd::sketch {

Result<MinHashFamily> MinHashFamily::Create(int k, uint64_t seed) {
  if (k < 1) return Status::InvalidArgument("K must be >= 1");
  SplitMix64 sm(seed);
  std::vector<uint64_t> seeds(static_cast<size_t>(k));
  for (auto& s : seeds) s = sm.Next();
  return MinHashFamily(std::move(seeds));
}

Sketch Sketcher::Empty() const {
  Sketch s;
  s.mins.assign(static_cast<size_t>(family_->K()),
                std::numeric_limits<uint64_t>::max());
  return s;
}

void Sketcher::Add(Sketch* sketch, features::CellId id) const {
  const int k = family_->K();
  VCD_DCHECK(sketch->K() == k, "sketch size does not match family");
  for (int fn = 0; fn < k; ++fn) {
    const uint64_t h = family_->Hash(fn, id);
    auto& slot = sketch->mins[static_cast<size_t>(fn)];
    if (h < slot) slot = h;
  }
}

Sketch Sketcher::FromSequence(const std::vector<features::CellId>& ids) const {
  Sketch s = Empty();
  for (features::CellId id : ids) Add(&s, id);
  return s;
}

void Sketcher::FromSequenceInto(const std::vector<features::CellId>& ids,
                                Sketch* out) const {
  out->mins.assign(static_cast<size_t>(family_->K()),
                   std::numeric_limits<uint64_t>::max());
  for (features::CellId id : ids) Add(out, id);
}

void Sketcher::Combine(Sketch* into, const Sketch& other) {
  VCD_DCHECK(into->K() == other.K(), "cannot combine sketches of different K");
  for (size_t i = 0; i < into->mins.size(); ++i) {
    if (other.mins[i] < into->mins[i]) into->mins[i] = other.mins[i];
  }
}

Status Sketcher::ValidateCombined(const Sketch& combined, const Sketch& a,
                                  const Sketch& b) {
  if (a.K() != b.K() || combined.K() != a.K()) {
    return Status::Internal("ValidateCombined: sketch sizes differ");
  }
  for (size_t i = 0; i < combined.mins.size(); ++i) {
    const uint64_t want = std::min(a.mins[i], b.mins[i]);
    if (combined.mins[i] != want) {
      return Status::Internal("ValidateCombined: position " + std::to_string(i) +
                              " is not the element-wise min (Property 1)");
    }
  }
  return Status::OK();
}

int Sketcher::NumEqual(const Sketch& a, const Sketch& b) {
  VCD_DCHECK(a.K() == b.K(), "cannot compare sketches of different K");
  int n = 0;
  for (size_t i = 0; i < a.mins.size(); ++i) n += (a.mins[i] == b.mins[i]);
  return n;
}

double Sketcher::Similarity(const Sketch& a, const Sketch& b) {
  if (a.mins.empty()) return 0.0;
  return static_cast<double>(NumEqual(a, b)) / static_cast<double>(a.K());
}

}  // namespace vcd::sketch
