#include "sketch/bit_signature.h"

#include "util/logging.h"

namespace vcd::sketch {

BitSignature BitSignature::FromSketches(const Sketch& cand, const Sketch& query) {
  VCD_DCHECK(cand.K() == query.K(), "sketch K mismatch");
  BitSignature sig(cand.K());
  for (int r = 0; r < cand.K(); ++r) {
    sig.SetRelation(r, cand.mins[static_cast<size_t>(r)],
                    query.mins[static_cast<size_t>(r)]);
  }
  return sig;
}

}  // namespace vcd::sketch
