#include "sketch/bit_signature.h"

#include <algorithm>

#include "util/logging.h"

namespace vcd::sketch {

BitSignature BitSignature::FromSketches(const Sketch& cand, const Sketch& query) {
  VCD_DCHECK(cand.K() == query.K(), "sketch K mismatch");
  BitSignature sig(cand.K());
  for (int r = 0; r < cand.K(); ++r) {
    sig.SetRelation(r, cand.mins[static_cast<size_t>(r)],
                    query.mins[static_cast<size_t>(r)]);
  }
  return sig;
}

BitSignature BitSignature::FromRawWords(int k, const uint64_t* words,
                                        size_t nwords) {
  BitSignature sig(k);
  VCD_DCHECK(sig.bits_.num_words() == nwords, "word count mismatch");
  std::copy_n(words, nwords, sig.bits_.mutable_words());
  return sig;
}

}  // namespace vcd::sketch
