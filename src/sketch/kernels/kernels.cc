#include "sketch/kernels/kernels.h"

#include <string>

#include "util/check.h"
#include "util/cpu.h"

namespace vcd::sketch::kernels {

namespace {

// Names indexed by Isa. Keep in sync with the enum.
constexpr const char* kIsaNames[kNumIsa] = {"scalar", "popcnt", "avx2",
                                            "avx512", "neon"};

std::string ValidIsaList() {
  std::string out;
  for (int i = 0; i < kNumIsa; ++i) {
    if (i > 0) out += "|";
    out += kIsaNames[i];
  }
  return out;
}

std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* ResolveFromEnv() {
  const auto env = util::GetEnv("VCD_KERNEL_ISA");
  if (!env.has_value()) return OpsForIsa(BestSupportedIsa());
  // A forced level must take effect or fail loudly: a CI matrix leg that
  // silently fell back to another backend would test nothing.
  Isa isa;
  VCD_CHECK(ParseIsa(*env, &isa),
            "VCD_KERNEL_ISA=\"" << *env << "\" is not a kernel ISA (want "
                                << ValidIsaList() << ")");
  const KernelOps* ops = OpsForIsa(isa);
  VCD_CHECK(ops != nullptr, "VCD_KERNEL_ISA=" << *env
                                              << " is not supported by this "
                                                 "CPU/build");
  return ops;
}

}  // namespace

const char* IsaName(Isa isa) {
  const int i = static_cast<int>(isa);
  VCD_CHECK(i >= 0 && i < kNumIsa, "bad Isa value " << i);
  return kIsaNames[i];
}

bool ParseIsa(std::string_view name, Isa* out) {
  for (int i = 0; i < kNumIsa; ++i) {
    if (name == kIsaNames[i]) {
      *out = static_cast<Isa>(i);
      return true;
    }
  }
  return false;
}

bool IsaCompiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return GetScalarOps() != nullptr;
    case Isa::kPopcnt: return GetPopcntOps() != nullptr;
    case Isa::kAvx2: return GetAvx2Ops() != nullptr;
    case Isa::kAvx512: return GetAvx512Ops() != nullptr;
    case Isa::kNeon: return GetNeonOps() != nullptr;
  }
  return false;
}

bool IsaSupported(Isa isa) {
  if (!IsaCompiled(isa)) return false;
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kPopcnt: return util::CpuHasPopcnt();
    case Isa::kAvx2: return util::CpuHasAvx2();
    case Isa::kAvx512: return util::CpuHasAvx512Kernels();
    case Isa::kNeon: return util::CpuHasNeon();
  }
  return false;
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> out;
  for (int i = 0; i < kNumIsa; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (IsaSupported(isa)) out.push_back(isa);
  }
  return out;
}

Isa BestSupportedIsa() {
  Isa best = Isa::kScalar;
  for (int i = 0; i < kNumIsa; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (IsaSupported(isa)) best = isa;
  }
  return best;
}

const KernelOps* OpsForIsa(Isa isa) {
  if (!IsaSupported(isa)) return nullptr;
  switch (isa) {
    case Isa::kScalar: return GetScalarOps();
    case Isa::kPopcnt: return GetPopcntOps();
    case Isa::kAvx2: return GetAvx2Ops();
    case Isa::kAvx512: return GetAvx512Ops();
    case Isa::kNeon: return GetNeonOps();
  }
  return nullptr;
}

const KernelOps& ActiveOps() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign race: ResolveFromEnv is deterministic, so concurrent first
    // callers store the same pointer.
    ops = ResolveFromEnv();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

Status ForceIsa(std::string_view name) {
  Isa isa;
  if (!ParseIsa(name, &isa)) {
    return Status::InvalidArgument("unknown kernel ISA \"" +
                                   std::string(name) + "\" (want " +
                                   ValidIsaList() + ")");
  }
  const KernelOps* ops = OpsForIsa(isa);
  if (ops == nullptr) {
    return Status::FailedPrecondition(
        "kernel ISA \"" + std::string(name) +
        "\" is not supported by this CPU/build");
  }
  g_active.store(ops, std::memory_order_release);
  return Status::OK();
}

KernelCounters& Counters() {
  static KernelCounters counters;
  return counters;
}

}  // namespace vcd::sketch::kernels
