// AVX-512 kernel backend: evaluates 8 signature slots per vector pass.
//
// Needs F (512-bit gathers), BW/VL/DQ (mask ops, 64-bit lane compares) and
// VPOPCNTDQ (native per-qword popcount, no LUT dance). Each batch group of
// 8 handles is first classified with LaneRunDirection: when the handles
// are one full lane block (the steady-state case — candidates allocate
// their signatures as consecutive free-list runs), the same word of all 8
// slots is ONE aligned cache line and the kernel uses direct 512-bit
// loads/stores; otherwise it falls back to VPGATHERQQ/VPSCATTERQQ over
// per-lane indices. Descending runs just reverse the per-lane outputs.
// The fused or_range ORs both operand rows, writes the result back
// (destinations inside a batch must be distinct slots — the pool
// guarantees it) and accumulates the Lemma-2 odd-bit popcount in the same
// pass.
//
// Results are bit-identical to the scalar reference: exact popcounts,
// identical per-slot accumulation.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "sketch/kernels/kernels.h"

#if defined(__x86_64__) && defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__) && defined(__AVX512DQ__) &&                       \
    defined(__AVX512VPOPCNTDQ__) && defined(__POPCNT__)
#define VCD_HAVE_AVX512_KERNELS 1
// GCC's unmasked AVX-512 intrinsics self-initialize an undefined __Y
// (PR105593), tripping -Wmaybe-uninitialized at every inline site under -O.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#include <immintrin.h>
#endif

namespace vcd::sketch::kernels {

#if defined(VCD_HAVE_AVX512_KERNELS)

namespace avx512_impl {
#define VCD_KERNEL_PREFETCH 1
#include "sketch/kernels/kernel_generic.inl"
#undef VCD_KERNEL_PREFETCH

namespace {

inline __m512i OddMask512() {
  return _mm512_set1_epi64(static_cast<long long>(0xAAAAAAAAAAAAAAAAULL));
}

// Slab element indices of word 0 of 8 slots: widen the 8 u32 handles and
// apply WordIndex vectorially: (h>>3)*stride*8 + (h&7).
inline __m512i SlotBases8(size_t stride, const uint32_t* hs) {
  const __m512i h = _mm512_cvtepu32_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hs)));
  const __m512i block = _mm512_srli_epi64(h, 3);
  const __m512i lane = _mm512_and_epi64(h, _mm512_set1_epi64(7));
  return _mm512_add_epi64(
      _mm512_mullo_epi64(block,
                         _mm512_set1_epi64(static_cast<long long>(
                             stride * kLanes))),
      lane);
}

// Reverses the 8 qword lanes (lane l <- lane 7-l): maps a descending run's
// per-lane results back to handle order.
inline __m512i Reverse8(__m512i v) {
  return _mm512_permutexvar_epi64(_mm512_set_epi64(0, 1, 2, 3, 4, 5, 6, 7),
                                  v);
}

// Word-0 row of the block holding a full-run group (aligned to 64 bytes).
inline const uint64_t* RunRow(const uint64_t* slab, size_t stride,
                              const uint32_t* hs, int dir) {
  const uint32_t low = dir > 0 ? hs[0] : hs[kLanes - 1];
  return slab + size_t{low >> 3} * stride * kLanes;
}

}  // namespace

void SigOrRangeAvx512(uint64_t* slab, size_t stride, const uint32_t* dst,
                      const uint32_t* src, size_t n, int* num_less_out) {
  const __m512i odd_mask = OddMask512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i + 8 < n) {
      __builtin_prefetch(slab + WordIndex(stride, dst[i + 8], 0), 1);
      __builtin_prefetch(slab + WordIndex(stride, src[i + 8], 0), 0);
    }
    __m512i odd = _mm512_setzero_si512();
    const int ddir = LaneRunDirection(dst + i);
    const int sdir = ddir != 0 ? LaneRunDirection(src + i) : 0;
    if (ddir != 0 && sdir != 0) {
      // Full-block runs: one aligned 512-bit load per operand row. When
      // the runs point opposite ways, reversing the src row realigns its
      // lanes with dst's (pair j sits on dst lane j or 7-j).
      uint64_t* drow = const_cast<uint64_t*>(RunRow(slab, stride, dst + i,
                                                    ddir));
      const uint64_t* srow = RunRow(slab, stride, src + i, sdir);
      for (size_t w = 0; w < stride; ++w, drow += kLanes, srow += kLanes) {
        const __m512i d = _mm512_load_si512(drow);
        __m512i s = _mm512_load_si512(srow);
        if (sdir != ddir) s = Reverse8(s);
        const __m512i v = _mm512_or_si512(d, s);
        _mm512_store_si512(drow, v);
        if (num_less_out != nullptr) {
          odd = _mm512_add_epi64(
              odd, _mm512_popcnt_epi64(_mm512_and_si512(v, odd_mask)));
        }
      }
      if (num_less_out != nullptr && ddir < 0) odd = Reverse8(odd);
    } else {
      const __m512i dbase = SlotBases8(stride, dst + i);
      const __m512i sbase = SlotBases8(stride, src + i);
      for (size_t w = 0; w < stride; ++w) {
        const __m512i off =
            _mm512_set1_epi64(static_cast<long long>(w * kLanes));
        const __m512i didx = _mm512_add_epi64(dbase, off);
        const __m512i sidx = _mm512_add_epi64(sbase, off);
        const __m512i d = _mm512_mask_i64gather_epi64(
            _mm512_setzero_si512(), 0xff, didx, slab, 8);
        const __m512i s = _mm512_mask_i64gather_epi64(
            _mm512_setzero_si512(), 0xff, sidx, slab, 8);
        const __m512i v = _mm512_or_si512(d, s);
        _mm512_i64scatter_epi64(slab, didx, v, 8);
        if (num_less_out != nullptr) {
          odd = _mm512_add_epi64(
              odd, _mm512_popcnt_epi64(_mm512_and_si512(v, odd_mask)));
        }
      }
    }
    if (num_less_out != nullptr) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(num_less_out + i),
                          _mm512_cvtepi64_epi32(odd));
    }
  }
  if (i < n) {
    SigOrRange(slab, stride, dst + i, src + i, n - i,
               num_less_out != nullptr ? num_less_out + i : nullptr);
  }
}

void SigNumEqualBatchAvx512(const uint64_t* slab, size_t stride,
                            const uint32_t* hs, size_t n, int* num_equal,
                            int* num_less) {
  const __m512i odd_mask = OddMask512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i + 16 < n) {
      __builtin_prefetch(slab + WordIndex(stride, hs[i + 8], 0), 0);
      __builtin_prefetch(slab + WordIndex(stride, hs[i + 16], 0), 0);
    }
    __m512i total = _mm512_setzero_si512();
    __m512i odd = _mm512_setzero_si512();
    const int dir = LaneRunDirection(hs + i);
    if (dir != 0) {
      const uint64_t* row = RunRow(slab, stride, hs + i, dir);
      for (size_t w = 0; w < stride; ++w, row += kLanes) {
        const __m512i v = _mm512_load_si512(row);
        total = _mm512_add_epi64(total, _mm512_popcnt_epi64(v));
        odd = _mm512_add_epi64(
            odd, _mm512_popcnt_epi64(_mm512_and_si512(v, odd_mask)));
      }
      if (dir < 0) {
        total = Reverse8(total);
        odd = Reverse8(odd);
      }
    } else {
      const __m512i base = SlotBases8(stride, hs + i);
      for (size_t w = 0; w < stride; ++w) {
        const __m512i idx = _mm512_add_epi64(
            base, _mm512_set1_epi64(static_cast<long long>(w * kLanes)));
        const __m512i v = _mm512_mask_i64gather_epi64(
            _mm512_setzero_si512(), 0xff, idx, slab, 8);
        total = _mm512_add_epi64(total, _mm512_popcnt_epi64(v));
        odd = _mm512_add_epi64(
            odd, _mm512_popcnt_epi64(_mm512_and_si512(v, odd_mask)));
      }
    }
    if (num_equal != nullptr) {
      // NumEqual = total - 2*odd, per lane.
      const __m512i eq =
          _mm512_sub_epi64(total, _mm512_add_epi64(odd, odd));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(num_equal + i),
                          _mm512_cvtepi64_epi32(eq));
    }
    if (num_less != nullptr) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(num_less + i),
                          _mm512_cvtepi64_epi32(odd));
    }
  }
  if (i < n) {
    SigNumEqualBatch(slab, stride, hs + i, n - i,
                     num_equal != nullptr ? num_equal + i : nullptr,
                     num_less != nullptr ? num_less + i : nullptr);
  }
}

size_t SigPruneScanAvx512(const uint64_t* slab, size_t stride,
                          const uint32_t* hs, size_t n, int max_less,
                          uint8_t* prune) {
  const __m512i odd_mask = OddMask512();
  const __m512i limit = _mm512_set1_epi64(static_cast<long long>(max_less));
  size_t pruned = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i + 16 < n) {
      __builtin_prefetch(slab + WordIndex(stride, hs[i + 8], 0), 0);
      __builtin_prefetch(slab + WordIndex(stride, hs[i + 16], 0), 0);
    }
    __m512i odd = _mm512_setzero_si512();
    const int dir = LaneRunDirection(hs + i);
    if (dir != 0) {
      const uint64_t* row = RunRow(slab, stride, hs + i, dir);
      for (size_t w = 0; w < stride; ++w, row += kLanes) {
        const __m512i v = _mm512_load_si512(row);
        odd = _mm512_add_epi64(
            odd, _mm512_popcnt_epi64(_mm512_and_si512(v, odd_mask)));
      }
      if (dir < 0) odd = Reverse8(odd);
    } else {
      const __m512i base = SlotBases8(stride, hs + i);
      for (size_t w = 0; w < stride; ++w) {
        const __m512i idx = _mm512_add_epi64(
            base, _mm512_set1_epi64(static_cast<long long>(w * kLanes)));
        const __m512i v = _mm512_mask_i64gather_epi64(
            _mm512_setzero_si512(), 0xff, idx, slab, 8);
        odd = _mm512_add_epi64(
            odd, _mm512_popcnt_epi64(_mm512_and_si512(v, odd_mask)));
      }
    }
    const __mmask8 gt = _mm512_cmpgt_epi64_mask(odd, limit);
    for (int j = 0; j < 8; ++j) {
      prune[i + j] = (gt >> j) & 1;
    }
    pruned += std::popcount(static_cast<unsigned>(gt));
  }
  if (i < n) {
    pruned += SigPruneScan(slab, stride, hs + i, n - i, max_less, prune + i);
  }
  return pruned;
}

}  // namespace avx512_impl

const KernelOps* GetAvx512Ops() {
  static constexpr KernelOps kOps = {
      Isa::kAvx512,
      "avx512",
      &avx512_impl::SigOrRangeAvx512,
      &avx512_impl::SigNumEqualBatchAvx512,
      &avx512_impl::SigPruneScanAvx512,
      &avx512_impl::SigBuild,
      &avx512_impl::SketchCombineMin,
      &avx512_impl::SketchNumEqual,
  };
  return &kOps;
}

#else

const KernelOps* GetAvx512Ops() { return nullptr; }

#endif

}  // namespace vcd::sketch::kernels
