// AVX2 kernel backend: evaluates 4 signature slots per vector pass.
//
// Each group of 4 handles is classified first: when it is a consecutive
// half-block run (lanes 0-3 or 4-7 of one block, ascending or descending —
// the steady-state case, since candidates allocate their signatures as
// consecutive free-list runs), the same word of all 4 slots is one aligned
// 32-byte half cache line and the kernel uses direct 256-bit loads.
// Irregular groups gather the same word of 4 slots into one ymm with
// VPGATHERQQ. Popcounts use the classic PSHUFB nibble-LUT + VPSADBW
// reduction (AVX2 has no vector popcount). The remaining entries (build,
// sketch ops) use the generic code, which this TU compiles with -mavx2
// -mpopcnt: hardware popcount plus 256-bit autovectorization.
//
// Results are bit-identical to the scalar reference: popcounts and masks
// are exact, and accumulation order per slot is the same word-major walk.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "sketch/kernels/kernels.h"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__POPCNT__)
#include <immintrin.h>
#endif

namespace vcd::sketch::kernels {

#if defined(__x86_64__) && defined(__AVX2__) && defined(__POPCNT__)

namespace avx2_impl {
#define VCD_KERNEL_PREFETCH 1
#include "sketch/kernels/kernel_generic.inl"
#undef VCD_KERNEL_PREFETCH

namespace {

// Per-64-bit-lane popcount of a ymm: PSHUFB nibble LUT, then PSADBW folds
// the 8 byte counts of each qword into that qword's low 16 bits.
inline __m256i PopCount64x4(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

// Slab element indices of word 0 of 4 slots, as a gather index vector.
inline __m256i SlotBases4(size_t stride, const uint32_t* hs) {
  return _mm256_set_epi64x(
      static_cast<long long>(WordIndex(stride, hs[3], 0)),
      static_cast<long long>(WordIndex(stride, hs[2], 0)),
      static_cast<long long>(WordIndex(stride, hs[1], 0)),
      static_cast<long long>(WordIndex(stride, hs[0], 0)));
}

// Classifies 4 handles as one aligned half block (lanes 0-3 or 4-7):
// +1 ascending (hs[0] on lane 0 or 4), -1 descending (hs[0] on lane 3 or
// 7), else 0. The half-block case makes the 4 same-index words of the
// group one aligned 32-byte load.
inline int HalfRunDirection(const uint32_t* hs) {
  const uint32_t h0 = hs[0];
  if ((h0 & 3u) == 0u) {
    for (int j = 1; j < 4; ++j) {
      if (hs[j] != h0 + static_cast<uint32_t>(j)) return 0;
    }
    return 1;
  }
  if ((h0 & 3u) == 3u) {
    for (int j = 1; j < 4; ++j) {
      if (hs[j] != h0 - static_cast<uint32_t>(j)) return 0;
    }
    return -1;
  }
  return 0;
}

// Reverses the 4 qword lanes (lane l <- lane 3-l).
inline __m256i Reverse4(__m256i v) {
  return _mm256_permute4x64_epi64(v, _MM_SHUFFLE(0, 1, 2, 3));
}

// Word-0 row of the half block holding a run group (32-byte aligned).
inline const uint64_t* HalfRunRow(const uint64_t* slab, size_t stride,
                                  const uint32_t* hs, int dir) {
  const uint32_t low = dir > 0 ? hs[0] : hs[3];
  return slab + WordIndex(stride, low, 0);
}

}  // namespace

void SigOrRangeAvx2(uint64_t* slab, size_t stride, const uint32_t* dst,
                    const uint32_t* src, size_t n, int* num_less_out) {
  const __m256i odd_mask =
      _mm256_set1_epi64x(static_cast<long long>(0xAAAAAAAAAAAAAAAAULL));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 4 < n) {
      __builtin_prefetch(slab + WordIndex(stride, dst[i + 4], 0), 1);
      __builtin_prefetch(slab + WordIndex(stride, src[i + 4], 0), 0);
    }
    const int ddir = HalfRunDirection(dst + i);
    const int sdir = ddir != 0 ? HalfRunDirection(src + i) : 0;
    if (ddir == 0 || sdir == 0) {
      // Irregular group: the scalar fused OR (this TU still has hardware
      // popcount) — gathers buy nothing without a scatter to pair them.
      SigOrRange(slab, stride, dst + i, src + i, 4,
                 num_less_out != nullptr ? num_less_out + i : nullptr);
      continue;
    }
    uint64_t* drow =
        const_cast<uint64_t*>(HalfRunRow(slab, stride, dst + i, ddir));
    const uint64_t* srow = HalfRunRow(slab, stride, src + i, sdir);
    __m256i odd = _mm256_setzero_si256();
    for (size_t w = 0; w < stride; ++w, drow += kLanes, srow += kLanes) {
      const __m256i d =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(drow));
      __m256i s = _mm256_load_si256(reinterpret_cast<const __m256i*>(srow));
      if (sdir != ddir) s = Reverse4(s);
      const __m256i v = _mm256_or_si256(d, s);
      _mm256_store_si256(reinterpret_cast<__m256i*>(drow), v);
      if (num_less_out != nullptr) {
        odd = _mm256_add_epi64(odd,
                               PopCount64x4(_mm256_and_si256(v, odd_mask)));
      }
    }
    if (num_less_out != nullptr) {
      if (ddir < 0) odd = Reverse4(odd);
      alignas(32) int64_t o[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(o), odd);
      for (int j = 0; j < 4; ++j) num_less_out[i + j] = static_cast<int>(o[j]);
    }
  }
  if (i < n) {
    SigOrRange(slab, stride, dst + i, src + i, n - i,
               num_less_out != nullptr ? num_less_out + i : nullptr);
  }
}

void SigNumEqualBatchAvx2(const uint64_t* slab, size_t stride,
                          const uint32_t* hs, size_t n, int* num_equal,
                          int* num_less) {
  const __m256i odd_mask =
      _mm256_set1_epi64x(static_cast<long long>(0xAAAAAAAAAAAAAAAAULL));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 < n) {
      __builtin_prefetch(slab + WordIndex(stride, hs[i + 8], 0), 0);
    }
    __m256i total = _mm256_setzero_si256();
    __m256i odd = _mm256_setzero_si256();
    const int dir = HalfRunDirection(hs + i);
    if (dir != 0) {
      const uint64_t* row = HalfRunRow(slab, stride, hs + i, dir);
      for (size_t w = 0; w < stride; ++w, row += kLanes) {
        const __m256i v =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(row));
        total = _mm256_add_epi64(total, PopCount64x4(v));
        odd = _mm256_add_epi64(odd,
                               PopCount64x4(_mm256_and_si256(v, odd_mask)));
      }
      if (dir < 0) {
        total = Reverse4(total);
        odd = Reverse4(odd);
      }
    } else {
      const __m256i base = SlotBases4(stride, hs + i);
      for (size_t w = 0; w < stride; ++w) {
        const __m256i idx = _mm256_add_epi64(
            base, _mm256_set1_epi64x(static_cast<long long>(w * kLanes)));
        const __m256i v = _mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(slab), idx, 8);
        total = _mm256_add_epi64(total, PopCount64x4(v));
        odd = _mm256_add_epi64(odd,
                               PopCount64x4(_mm256_and_si256(v, odd_mask)));
      }
    }
    alignas(32) int64_t t[4], o[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(t), total);
    _mm256_store_si256(reinterpret_cast<__m256i*>(o), odd);
    for (int j = 0; j < 4; ++j) {
      if (num_equal != nullptr) {
        num_equal[i + j] = static_cast<int>(t[j] - 2 * o[j]);
      }
      if (num_less != nullptr) num_less[i + j] = static_cast<int>(o[j]);
    }
  }
  if (i < n) {
    SigNumEqualBatch(slab, stride, hs + i, n - i,
                     num_equal != nullptr ? num_equal + i : nullptr,
                     num_less != nullptr ? num_less + i : nullptr);
  }
}

size_t SigPruneScanAvx2(const uint64_t* slab, size_t stride,
                        const uint32_t* hs, size_t n, int max_less,
                        uint8_t* prune) {
  const __m256i odd_mask =
      _mm256_set1_epi64x(static_cast<long long>(0xAAAAAAAAAAAAAAAAULL));
  const __m256i limit = _mm256_set1_epi64x(static_cast<long long>(max_less));
  size_t pruned = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 < n) {
      __builtin_prefetch(slab + WordIndex(stride, hs[i + 8], 0), 0);
    }
    __m256i odd = _mm256_setzero_si256();
    const int dir = HalfRunDirection(hs + i);
    if (dir != 0) {
      const uint64_t* row = HalfRunRow(slab, stride, hs + i, dir);
      for (size_t w = 0; w < stride; ++w, row += kLanes) {
        const __m256i v =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(row));
        odd = _mm256_add_epi64(odd,
                               PopCount64x4(_mm256_and_si256(v, odd_mask)));
      }
      if (dir < 0) odd = Reverse4(odd);
    } else {
      const __m256i base = SlotBases4(stride, hs + i);
      for (size_t w = 0; w < stride; ++w) {
        const __m256i idx = _mm256_add_epi64(
            base, _mm256_set1_epi64x(static_cast<long long>(w * kLanes)));
        const __m256i v = _mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(slab), idx, 8);
        odd = _mm256_add_epi64(odd,
                               PopCount64x4(_mm256_and_si256(v, odd_mask)));
      }
    }
    const __m256i gt = _mm256_cmpgt_epi64(odd, limit);
    alignas(32) int64_t g[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(g), gt);
    for (int j = 0; j < 4; ++j) {
      const uint8_t p = g[j] != 0 ? 1 : 0;
      prune[i + j] = p;
      pruned += p;
    }
  }
  if (i < n) {
    pruned += SigPruneScan(slab, stride, hs + i, n - i, max_less, prune + i);
  }
  return pruned;
}

}  // namespace avx2_impl

const KernelOps* GetAvx2Ops() {
  static constexpr KernelOps kOps = {
      Isa::kAvx2,
      "avx2",
      &avx2_impl::SigOrRangeAvx2,
      &avx2_impl::SigNumEqualBatchAvx2,
      &avx2_impl::SigPruneScanAvx2,
      &avx2_impl::SigBuild,
      &avx2_impl::SketchCombineMin,
      &avx2_impl::SketchNumEqual,
  };
  return &kOps;
}

#else

const KernelOps* GetAvx2Ops() { return nullptr; }

#endif

}  // namespace vcd::sketch::kernels
