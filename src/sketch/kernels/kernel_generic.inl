// Generic (portable C++) implementations of every KernelOps entry.
//
// This file is included INSIDE a per-ISA namespace by each kernel TU, after
// defining VCD_KERNEL_PREFETCH to 0 or 1. Each TU is compiled with its own
// ISA flags (-mpopcnt, -mavx2, …), so the same source lowers differently
// per level: std::popcount becomes the POPCNT instruction where the TU may
// assume it, and the plain word loops autovectorize to the TU's vector
// width. TUs with hand-written intrinsics (AVX2/AVX-512) override the hot
// batch entries and fall back to these for the rest — and for batch tails.
//
// The scalar TU includes this with VCD_KERNEL_PREFETCH=0 and no ISA flags:
// that instantiation is the property-tested reference every other level is
// fuzzed against (byte-identical slabs, identical counts).
//
// Expects to be included after <bit>, <algorithm>, <cstddef>, <cstdint> and
// "sketch/kernels/kernels.h".

inline constexpr uint64_t kOddMaskGeneric = 0xAAAAAAAAAAAAAAAAULL;

inline void SigOrRange(uint64_t* slab, size_t stride, const uint32_t* dst,
                       const uint32_t* src, size_t n, int* num_less_out) {
  for (size_t i = 0; i < n; ++i) {
#if VCD_KERNEL_PREFETCH
    if (i + 4 < n) {
      __builtin_prefetch(slab + WordIndex(stride, dst[i + 4], 0), 1);
      __builtin_prefetch(slab + WordIndex(stride, src[i + 4], 0), 0);
    }
#endif
    uint64_t* d = slab + WordIndex(stride, dst[i], 0);
    const uint64_t* s = slab + WordIndex(stride, src[i], 0);
    if (num_less_out == nullptr) {
      for (size_t w = 0; w < stride; ++w) {
        d[w * kLanes] |= s[w * kLanes];
      }
    } else {
      int odd = 0;
      for (size_t w = 0; w < stride; ++w) {
        const uint64_t v = d[w * kLanes] | s[w * kLanes];
        d[w * kLanes] = v;
        odd += std::popcount(v & kOddMaskGeneric);
      }
      num_less_out[i] = odd;
    }
  }
}

inline void SigNumEqualBatch(const uint64_t* slab, size_t stride,
                             const uint32_t* hs, size_t n, int* num_equal,
                             int* num_less) {
  for (size_t i = 0; i < n; ++i) {
#if VCD_KERNEL_PREFETCH
    if (i + 8 < n) {
      __builtin_prefetch(slab + WordIndex(stride, hs[i + 8], 0), 0);
    }
#endif
    const uint64_t* w = slab + WordIndex(stride, hs[i], 0);
    int total = 0, odd = 0;
    for (size_t j = 0; j < stride; ++j) {
      total += std::popcount(w[j * kLanes]);
      odd += std::popcount(w[j * kLanes] & kOddMaskGeneric);
    }
    // even = total - odd, so NumEqual = even - odd = total - 2*odd.
    if (num_equal != nullptr) num_equal[i] = total - 2 * odd;
    if (num_less != nullptr) num_less[i] = odd;
  }
}

inline size_t SigPruneScan(const uint64_t* slab, size_t stride,
                           const uint32_t* hs, size_t n, int max_less,
                           uint8_t* prune) {
  size_t pruned = 0;
  for (size_t i = 0; i < n; ++i) {
#if VCD_KERNEL_PREFETCH
    if (i + 8 < n) {
      __builtin_prefetch(slab + WordIndex(stride, hs[i + 8], 0), 0);
    }
#endif
    const uint64_t* w = slab + WordIndex(stride, hs[i], 0);
    int odd = 0;
    for (size_t j = 0; j < stride; ++j) {
      odd += std::popcount(w[j * kLanes] & kOddMaskGeneric);
    }
    const uint8_t p = odd > max_less ? 1 : 0;
    prune[i] = p;
    pruned += p;
  }
  return pruned;
}

inline void SigBuild(uint64_t* slot, const uint64_t* cand,
                     const uint64_t* query, int k) {
  const size_t nwords = (static_cast<size_t>(2 * k) + 63) / 64;
  // Accumulate each 64-bit word (32 rank pairs) in a register and store it
  // once, instead of a slab read-modify-write per rank.
  int r = 0;
  for (size_t w = 0; w < nwords; ++w) {
    uint64_t acc = 0;
    const int r_end = std::min(k, r + 32);
    for (int shift = 0; r < r_end; ++r, shift += 2) {
      const uint64_t cv = cand[r];
      const uint64_t qv = query[r];
      acc |= (static_cast<uint64_t>(cv <= qv) |
              (static_cast<uint64_t>(cv < qv) << 1))
             << shift;
    }
    slot[w * kLanes] = acc;
  }
}

inline void SketchCombineMin(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = src[i] < dst[i] ? src[i] : dst[i];
  }
}

inline int SketchNumEqual(const uint64_t* a, const uint64_t* b, size_t n) {
  int count = 0;
  for (size_t i = 0; i < n; ++i) count += (a[i] == b[i]);
  return count;
}
