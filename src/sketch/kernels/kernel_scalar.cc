// Scalar kernel backend: the portable reference every other ISA level is
// property-tested against. Compiled with no ISA flags beyond the project
// baseline, no prefetch hints — deliberately the simplest instantiation of
// the generic code.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "sketch/kernels/kernels.h"

namespace vcd::sketch::kernels {
namespace scalar_impl {
#define VCD_KERNEL_PREFETCH 0
#include "sketch/kernels/kernel_generic.inl"
#undef VCD_KERNEL_PREFETCH
}  // namespace scalar_impl

const KernelOps* GetScalarOps() {
  static constexpr KernelOps kOps = {
      Isa::kScalar,
      "scalar",
      &scalar_impl::SigOrRange,
      &scalar_impl::SigNumEqualBatch,
      &scalar_impl::SigPruneScan,
      &scalar_impl::SigBuild,
      &scalar_impl::SketchCombineMin,
      &scalar_impl::SketchNumEqual,
  };
  return &kOps;
}

}  // namespace vcd::sketch::kernels
