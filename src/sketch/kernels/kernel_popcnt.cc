// POPCNT kernel backend: the generic code compiled with -mpopcnt, so every
// std::popcount lowers to the single hardware instruction instead of the
// ~12-op SWAR sequence of the baseline target. Replaces the former
// target_clones("default","popcnt") multiversioning — plain function-pointer
// dispatch has no ifunc resolver, so it needs no sanitizer special-casing.
//
// Only built into the table on x86-64 (the -mpopcnt flag is only added
// there); elsewhere GetPopcntOps reports "not compiled".

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "sketch/kernels/kernels.h"

namespace vcd::sketch::kernels {

#if defined(__x86_64__) && defined(__POPCNT__)

namespace popcnt_impl {
#define VCD_KERNEL_PREFETCH 1
#include "sketch/kernels/kernel_generic.inl"
#undef VCD_KERNEL_PREFETCH
}  // namespace popcnt_impl

const KernelOps* GetPopcntOps() {
  static constexpr KernelOps kOps = {
      Isa::kPopcnt,
      "popcnt",
      &popcnt_impl::SigOrRange,
      &popcnt_impl::SigNumEqualBatch,
      &popcnt_impl::SigPruneScan,
      &popcnt_impl::SigBuild,
      &popcnt_impl::SketchCombineMin,
      &popcnt_impl::SketchNumEqual,
  };
  return &kOps;
}

#else

const KernelOps* GetPopcntOps() { return nullptr; }

#endif

}  // namespace vcd::sketch::kernels
