// NEON (AArch64) kernel backend stub: the generic code compiled for
// AArch64, where Advanced SIMD is baseline — GCC/Clang autovectorize the
// word loops to 128-bit NEON and lower std::popcount to CNT+ADDV. No
// hand-written intrinsics yet; this TU exists so the dispatch table has a
// named level to grow into on ARM and so x86 never even compiles it in.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "sketch/kernels/kernels.h"

namespace vcd::sketch::kernels {

#if defined(__aarch64__)

namespace neon_impl {
#define VCD_KERNEL_PREFETCH 1
#include "sketch/kernels/kernel_generic.inl"
#undef VCD_KERNEL_PREFETCH
}  // namespace neon_impl

const KernelOps* GetNeonOps() {
  static constexpr KernelOps kOps = {
      Isa::kNeon,
      "neon",
      &neon_impl::SigOrRange,
      &neon_impl::SigNumEqualBatch,
      &neon_impl::SigPruneScan,
      &neon_impl::SigBuild,
      &neon_impl::SketchCombineMin,
      &neon_impl::SketchNumEqual,
  };
  return &kOps;
}

#else

const KernelOps* GetNeonOps() { return nullptr; }

#endif

}  // namespace vcd::sketch::kernels
