#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file kernels.h
/// Runtime-dispatched SIMD kernels for the per-window probe path
/// (DESIGN.md §15).
///
/// Every hot batch operation of `SignaturePool` / `SketchPool` is a function
/// pointer in a `KernelOps` vtable. One implementation TU exists per ISA
/// level (scalar / popcnt / AVX2 / AVX-512, NEON on AArch64); the dispatcher
/// picks the widest level the CPU supports once at startup via CPUID
/// (`__builtin_cpu_supports`). The choice can be forced with the
/// `VCD_KERNEL_ISA` environment variable or `ForceIsa` (`vcdctl --kernel`).
/// The scalar level is the property-tested reference: every other level must
/// produce byte-identical slab contents and identical counts
/// (tests/sketch/kernel_equivalence_test.cc).
///
/// ## Signature slab layout (lane-blocked SoA)
///
/// Signature slots are grouped into blocks of `kLanes` (8) slots. Within a
/// block the slab stores word 0 of all 8 lanes, then word 1 of all 8 lanes,
/// …: the w-th words of slots 8b..8b+7 form one contiguous, 64-byte-aligned
/// cache line. `WordIndex` maps (handle, word) to a slab element. A vector
/// kernel that walks 8 clustered handles therefore touches `stride` full
/// cache lines per pass instead of gathering from 8 scattered slots, and a
/// scalar kernel still sees a fixed stride of 8 words between consecutive
/// words of one slot.
///
/// Sketch slots stay contiguous (AoS): every sketch op is per-slot over all
/// K words, so interleaving lanes would spread one combine over K cache
/// lines. The sketch slab is still 64-byte aligned for full-width loads.

namespace vcd::sketch::kernels {

/// Signature slots per SoA block; the w-th words of one block's lanes fill
/// exactly one 64-byte cache line.
inline constexpr size_t kLanes = 8;

/// Slab element index of word \p w of signature slot \p h at \p stride
/// words per signature.
inline constexpr size_t WordIndex(size_t stride, uint32_t h, size_t w) {
  return ((size_t{h >> 3} * stride) + w) * kLanes + (h & 7u);
}

/// \brief Classifies kLanes handles as one full lane block.
///
/// Returns +1 when hs[0..7] ascend through exactly one block's lanes
/// (hs[j] = hs[0]+j, hs[0] on lane 0), -1 when they descend through one
/// (hs[j] = hs[0]-j, hs[0] on lane 7), else 0. The detector's candidates
/// allocate their signatures as consecutive runs off the LIFO free-list
/// (alternating direction per slot generation), so at steady state nearly
/// every batch group is ±1 — and the vector kernels can then replace
/// per-lane gathers with one full-width aligned load of the block's word
/// row. Any direction works for correctness; 0 falls back to gather.
inline int LaneRunDirection(const uint32_t* hs) {
  const uint32_t h0 = hs[0];
  if ((h0 & 7u) == 0u) {
    for (size_t j = 1; j < kLanes; ++j) {
      if (hs[j] != h0 + j) return 0;
    }
    return 1;
  }
  if ((h0 & 7u) == 7u) {
    for (size_t j = 1; j < kLanes; ++j) {
      if (hs[j] != h0 - j) return 0;
    }
    return -1;
  }
  return 0;
}

/// Kernel ISA levels, narrowest first. Order is the dispatch preference.
enum class Isa : int {
  kScalar = 0,  ///< baseline C++, no ISA assumptions — the reference
  kPopcnt = 1,  ///< x86-64 + POPCNT (hardware popcount)
  kAvx2 = 2,    ///< AVX2 + POPCNT: 4 slots per vector pass
  kAvx512 = 3,  ///< AVX-512 F/BW/VL/DQ/VPOPCNTDQ: 8 slots per vector pass
  kNeon = 4,    ///< AArch64 Advanced SIMD (autovectorized generic code)
};
inline constexpr int kNumIsa = 5;

/// \brief Vtable of the slab kernels for one ISA level.
///
/// Signature ops address the lane-blocked slab through `WordIndex`; `slot`
/// pointers are `slab + WordIndex(stride, h, 0)` with consecutive words 8
/// elements apart. Handles inside one batch must be distinct live slots
/// (the AVX-512 or-range scatter requires distinct destinations).
struct KernelOps {
  Isa isa;
  const char* name;

  /// ORs slot src[i] into slot dst[i] for i in [0, n). When
  /// \p num_less_out is non-null it also receives NumLess (count of odd
  /// bits) of each combined dst[i], fused into the OR pass.
  void (*sig_or_range)(uint64_t* slab, size_t stride, const uint32_t* dst,
                       const uint32_t* src, size_t n, int* num_less_out);

  /// NumEqual / NumLess of n slots in one pass; either output may be null.
  void (*sig_num_equal_batch)(const uint64_t* slab, size_t stride,
                              const uint32_t* hs, size_t n, int* num_equal,
                              int* num_less);

  /// Lemma-2 scan: prune[i] = (NumLess(hs[i]) > max_less). Returns the
  /// number pruned. \p max_less is the pre-floored integer threshold
  /// ⌊K(1−δ)+1e-9⌋, so the comparison is exact across ISAs.
  size_t (*sig_prune_scan)(const uint64_t* slab, size_t stride,
                           const uint32_t* hs, size_t n, int max_less,
                           uint8_t* prune);

  /// Fills a freshly zeroed slot with the signature of \p cand against
  /// \p query (k min-hash values each). \p slot is the lane-strided slot
  /// base: word w lives at slot[w * kLanes].
  void (*sig_build)(uint64_t* slot, const uint64_t* cand,
                    const uint64_t* query, int k);

  /// Element-wise minimum of n contiguous words: dst[i] = min(dst, src).
  void (*sketch_combine_min)(uint64_t* dst, const uint64_t* src, size_t n);

  /// Count of equal positions between two contiguous n-word arrays.
  int (*sketch_num_equal)(const uint64_t* a, const uint64_t* b, size_t n);
};

/// Lower-case name of \p isa ("scalar", "popcnt", "avx2", "avx512", "neon").
const char* IsaName(Isa isa);

/// Parses an ISA name (as printed by IsaName). Returns false on unknown.
bool ParseIsa(std::string_view name, Isa* out);

/// True when the backend for \p isa was compiled into this binary.
bool IsaCompiled(Isa isa);

/// True when \p isa is compiled in AND the running CPU executes it.
bool IsaSupported(Isa isa);

/// Every supported level, narrowest first (always contains kScalar).
std::vector<Isa> SupportedIsas();

/// The widest supported level.
Isa BestSupportedIsa();

/// Ops table for \p isa, or nullptr when unsupported on this CPU/build.
const KernelOps* OpsForIsa(Isa isa);

/// \brief The process-wide active kernel table.
///
/// First call resolves it: `VCD_KERNEL_ISA` (if set, the named level —
/// VCD_CHECK-fails on an unknown or unsupported name so a forced CI matrix
/// leg can never silently fall back), else the widest CPUID-supported
/// level. Pools capture the table at construction; `ForceIsa` only affects
/// pools built afterwards.
const KernelOps& ActiveOps();

/// Forces the active table to the named level. Unlike the env path this
/// reports failure as a Status (InvalidArgument for an unknown name,
/// FailedPrecondition when the CPU/build lacks the level) so callers like
/// `vcdctl --kernel` can reject bad flags with usage instead of aborting.
Status ForceIsa(std::string_view name);

/// \brief Process-global per-kernel call counters (relaxed atomics).
///
/// Incremented by the pool wrappers, exported to the obs registry by
/// `obs::SyncKernelMetrics`, and recorded in BENCH_hotpath.json so a bench
/// artifact always says which backend ran and how hard each kernel was hit.
struct KernelCounters {
  std::atomic<uint64_t> or_range_calls{0};
  std::atomic<uint64_t> or_range_pairs{0};
  std::atomic<uint64_t> num_equal_batch_calls{0};
  std::atomic<uint64_t> num_equal_batch_sigs{0};
  std::atomic<uint64_t> prune_scan_calls{0};
  std::atomic<uint64_t> build_calls{0};
  std::atomic<uint64_t> combine_min_calls{0};
  std::atomic<uint64_t> sketch_num_equal_calls{0};
};

/// The global counter block.
KernelCounters& Counters();

// Internal: per-TU ops accessors (null when not compiled for this target).
const KernelOps* GetScalarOps();
const KernelOps* GetPopcntOps();
const KernelOps* GetAvx2Ops();
const KernelOps* GetAvx512Ops();
const KernelOps* GetNeonOps();

}  // namespace vcd::sketch::kernels
