#pragma once

#include <cstdint>
#include <vector>

#include "features/grid_pyramid.h"
#include "util/status.h"

/// \file minhash.h
/// Approximate min-wise hashing over cell-id sets (paper §IV).
///
/// A `MinHashFamily` holds K independently seeded 64-bit mixing functions.
/// The K-min-hash `Sketch` of a video (sub)sequence keeps, per function, the
/// minimum hash value over the sequence's set of frame cell ids. Two key
/// properties drive the whole system:
///  - `Similarity(A, B)` — the fraction of positions whose min values agree —
///    is an unbiased estimator of the Jaccard set similarity (Eq. 3);
///  - the sketch of a concatenation of two subsequences is the element-wise
///    minimum of their sketches (Property 1), which is what makes bottom-up
///    multi-length candidate construction cheap.

namespace vcd::sketch {

/// \brief K independently seeded min-wise hash functions over cell ids.
class MinHashFamily {
 public:
  /// Creates a family of \p k functions derived from \p seed.
  static Result<MinHashFamily> Create(int k, uint64_t seed = 0x5eed);

  /// Number of hash functions K.
  int K() const { return static_cast<int>(seeds_.size()); }

  /// Value of hash function \p fn on cell id \p id.
  uint64_t Hash(int fn, features::CellId id) const {
    // SplitMix64 finalizer — full avalanche, so the induced permutation per
    // seed behaves as an approximate min-wise independent family.
    uint64_t z = (static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL) ^
                 seeds_[static_cast<size_t>(fn)];
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  explicit MinHashFamily(std::vector<uint64_t> seeds) : seeds_(std::move(seeds)) {}

  std::vector<uint64_t> seeds_;
};

/// \brief A K-min-hash sketch: per function, the minimum hash value seen.
struct Sketch {
  std::vector<uint64_t> mins;

  /// Number of hash functions.
  int K() const { return static_cast<int>(mins.size()); }
  /// True if no element was ever added.
  bool empty() const { return mins.empty(); }

  bool operator==(const Sketch& other) const { return mins == other.mins; }
};

/// \brief Builds and combines sketches against a fixed family.
class Sketcher {
 public:
  /// Creates a sketcher over \p family (not owned; must outlive this).
  explicit Sketcher(const MinHashFamily* family) : family_(family) {}

  /// An "empty set" sketch (all positions at +inf).
  Sketch Empty() const;

  /// Adds one element to \p sketch.
  void Add(Sketch* sketch, features::CellId id) const;

  /// Sketch of a whole cell-id sequence (its set).
  Sketch FromSequence(const std::vector<features::CellId>& ids) const;

  /// FromSequence into a caller-owned sketch, reusing its `mins` capacity —
  /// the per-window hot path performs no heap allocation through this.
  void FromSequenceInto(const std::vector<features::CellId>& ids,
                        Sketch* out) const;

  /// The family in use.
  const MinHashFamily& family() const { return *family_; }

  /// Element-wise min combine — Property 1. Sizes must match.
  static void Combine(Sketch* into, const Sketch& other);

  /// \brief Debug validator for Property 1: \p combined must be the exact
  /// element-wise minimum of \p a and \p b (in particular, combining can
  /// never *raise* a min value — the monotonicity candidate merging relies
  /// on). Returns Internal with the offending position otherwise.
  static Status ValidateCombined(const Sketch& combined, const Sketch& a,
                                 const Sketch& b);

  /// Fraction of equal positions: the similarity estimate of Definition 2.
  static double Similarity(const Sketch& a, const Sketch& b);

  /// Number of equal positions between two sketches.
  static int NumEqual(const Sketch& a, const Sketch& b);

 private:
  const MinHashFamily* family_;
};

}  // namespace vcd::sketch
