#include "sketch/signature_pool.h"

#include <cmath>
#include <cstdint>
#include <string>

#include "util/bit_util.h"
#include "util/logging.h"

namespace vcd::sketch {

namespace {
constexpr uint64_t kEvenMask = 0x5555555555555555ULL;
constexpr uint64_t kOddMask = 0xAAAAAAAAAAAAAAAAULL;
using kernels::kLanes;
}  // namespace

SignaturePool::SignaturePool(int k, const kernels::KernelOps* ops)
    : k_(k),
      stride_((static_cast<size_t>(2 * k) + 63) / 64),
      ops_(ops != nullptr ? ops : &kernels::ActiveOps()) {
  VCD_CHECK(k >= 1, "SignaturePool needs K >= 1");
}

SignaturePool::Handle SignaturePool::Allocate() {
  Handle h;
  if (!free_.empty()) {
    h = free_.back();
    free_.pop_back();
    for (size_t w = 0; w < stride_; ++w) word(h, w) = 0;
  } else {
    h = static_cast<Handle>(live_.size());
    if (h % kLanes == 0) {
      // New lane block: one stride×8 chunk, zero-filled. Slots of a
      // partially used block stay zero until their first Allocate.
      slab_.resize(slab_.size() + stride_ * kLanes);
    }
    live_.push_back(0);
  }
  live_[h] = 1;
  ++live_count_;
  return h;
}

void SignaturePool::Free(Handle h) {
  VCD_DCHECK(IsLive(h), "SignaturePool::Free of a non-live handle");
  live_[h] = 0;
  --live_count_;
  free_.push_back(h);
}

SignaturePool::Handle SignaturePool::Clone(Handle src) {
  VCD_DCHECK(IsLive(src), "SignaturePool::Clone of a non-live handle");
  const Handle h = Allocate();
  // Allocate never moves slot contents for an existing handle, but it may
  // reallocate the slab itself — only address the slab after it.
  for (size_t w = 0; w < stride_; ++w) word(h, w) = word(src, w);
  return h;
}

void SignaturePool::BuildFromSketches(Handle h, const Sketch& cand,
                                      const Sketch& query) {
  VCD_DCHECK(cand.K() == k_ && query.K() == k_, "sketch K mismatch");
  kernels::Counters().build_calls.fetch_add(1, std::memory_order_relaxed);
  ops_->sig_build(slab_.data() + kernels::WordIndex(stride_, h, 0),
                  cand.mins.data(), query.mins.data(), k_);
}

int SignaturePool::NumEqual(Handle h) const {
  int total = 0, odd = 0;
  for (size_t w = 0; w < stride_; ++w) {
    const uint64_t v = word(h, w);
    total += PopCount64(v);
    odd += PopCount64(v & kOddMask);
  }
  return total - 2 * odd;  // even - odd, with even = total - odd
}

int SignaturePool::NumLess(Handle h) const {
  int odd = 0;
  for (size_t w = 0; w < stride_; ++w) odd += PopCount64(word(h, w) & kOddMask);
  return odd;
}

BitSignature SignaturePool::ToBitSignature(Handle h) const {
  // Gather the lane-strided words into a contiguous scratch first
  // (debug/reference path; allocation is fine here).
  std::vector<uint64_t> contiguous(stride_);
  for (size_t w = 0; w < stride_; ++w) contiguous[w] = word(h, w);
  return BitSignature::FromRawWords(k_, contiguous.data(), stride_);
}

void SignaturePool::OrRange(const Handle* dst, const Handle* src, size_t n,
                            int* num_less_out) {
  auto& counters = kernels::Counters();
  counters.or_range_calls.fetch_add(1, std::memory_order_relaxed);
  counters.or_range_pairs.fetch_add(n, std::memory_order_relaxed);
  ops_->sig_or_range(slab_.data(), stride_, dst, src, n, num_less_out);
}

void SignaturePool::NumEqualBatch(const Handle* hs, size_t n, int* num_equal,
                                  int* num_less) const {
  auto& counters = kernels::Counters();
  counters.num_equal_batch_calls.fetch_add(1, std::memory_order_relaxed);
  counters.num_equal_batch_sigs.fetch_add(n, std::memory_order_relaxed);
  ops_->sig_num_equal_batch(slab_.data(), stride_, hs, n, num_equal, num_less);
}

size_t SignaturePool::PruneScan(const Handle* hs, size_t n, double delta,
                                uint8_t* prune) const {
  kernels::Counters().prune_scan_calls.fetch_add(1, std::memory_order_relaxed);
  // Prune iff odd > K(1−δ)+1e-9. odd is integral, so the double comparison
  // is equivalent to the exact integer comparison odd > ⌊K(1−δ)+1e-9⌋ —
  // pre-flooring here keeps every ISA level bit-exact.
  const double max_less_d = static_cast<double>(k_) * (1.0 - delta) + 1e-9;
  const int max_less = static_cast<int>(std::floor(max_less_d));
  return ops_->sig_prune_scan(slab_.data(), stride_, hs, n, max_less, prune);
}

Status SignaturePool::Validate() const {
  if (reinterpret_cast<uintptr_t>(slab_.data()) %
          util::AlignedWordBuf::kAlignBytes !=
      0) {
    return Status::Internal("SignaturePool: slab not 64-byte aligned");
  }
  const size_t blocks = (live_.size() + kLanes - 1) / kLanes;
  if (slab_.size() != blocks * stride_ * kLanes) {
    return Status::Internal(
        "SignaturePool: slab size != lane blocks * stride * 8");
  }
  std::vector<uint8_t> on_free_list(live_.size(), 0);
  for (Handle h : free_) {
    if (h >= live_.size()) {
      return Status::Internal("SignaturePool: free-list handle out of range");
    }
    if (live_[h] != 0) {
      return Status::Internal("SignaturePool: free-list handle flagged live");
    }
    if (on_free_list[h] != 0) {
      return Status::Internal("SignaturePool: handle on free-list twice");
    }
    on_free_list[h] = 1;
  }
  size_t live_seen = 0;
  for (size_t h = 0; h < live_.size(); ++h) {
    if (live_[h] != 0) {
      ++live_seen;
    } else if (on_free_list[h] == 0) {
      return Status::Internal("SignaturePool: freed slot missing from free-list");
    }
  }
  if (live_seen != live_count_) {
    return Status::Internal("SignaturePool: live_count out of sync");
  }
  // Per-slot well-formedness of live signatures: no (even=0, odd=1) pair,
  // tail bits beyond 2K zero.
  const size_t tail_bits = static_cast<size_t>(2 * k_) & 63;
  const uint64_t tail_mask =
      tail_bits == 0 ? ~uint64_t{0} : (uint64_t{1} << tail_bits) - 1;
  for (size_t h = 0; h < live_.size(); ++h) {
    if (live_[h] == 0) continue;
    const Handle hh = static_cast<Handle>(h);
    for (size_t w = 0; w < stride_; ++w) {
      const uint64_t v = word(hh, w);
      // Odd (2r+1) bit set while its even (2r) partner is clear.
      if (((v >> 1) & ~v & kEvenMask) != 0) {
        return Status::Internal("SignaturePool: impossible (0,1) pair in slot " +
                                std::to_string(h));
      }
    }
    if ((word(hh, stride_ - 1) & ~tail_mask) != 0) {
      return Status::Internal("SignaturePool: nonzero tail bits in slot " +
                              std::to_string(h));
    }
  }
  return Status::OK();
}

}  // namespace vcd::sketch
