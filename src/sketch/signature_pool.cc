#include "sketch/signature_pool.h"

#include <algorithm>
#include <string>

#include "util/bit_util.h"
#include "util/logging.h"

namespace vcd::sketch {

namespace {
constexpr uint64_t kEvenMask = 0x5555555555555555ULL;
constexpr uint64_t kOddMask = 0xAAAAAAAAAAAAAAAAULL;
}  // namespace

// The popcount-heavy kernels are multiversioned: the baseline x86-64 target
// lowers std::popcount to a ~12-op SWAR sequence, while the "popcnt" clone
// uses the single hardware instruction (picked at load time via ifunc).
// This is the payoff of centralizing the kernels in the pool: one site to
// specialize instead of every per-object call.
//
// Sanitizer builds disable the clones: the ifunc resolvers target_clones
// emits run before the TSan/ASan runtime is initialized and crash at load.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define VCD_NO_TARGET_CLONES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define VCD_NO_TARGET_CLONES 1
#endif
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(VCD_NO_TARGET_CLONES)
#define VCD_POPCNT_CLONES __attribute__((target_clones("default", "popcnt")))
#else
#define VCD_POPCNT_CLONES
#endif

SignaturePool::SignaturePool(int k)
    : k_(k), stride_((static_cast<size_t>(2 * k) + 63) / 64) {
  VCD_CHECK(k >= 1, "SignaturePool needs K >= 1");
}

SignaturePool::Handle SignaturePool::Allocate() {
  Handle h;
  if (!free_.empty()) {
    h = free_.back();
    free_.pop_back();
    std::fill_n(words(h), stride_, 0);
  } else {
    h = static_cast<Handle>(live_.size());
    slab_.resize(slab_.size() + stride_, 0);
    live_.push_back(0);
  }
  live_[h] = 1;
  ++live_count_;
  return h;
}

void SignaturePool::Free(Handle h) {
  VCD_DCHECK(IsLive(h), "SignaturePool::Free of a non-live handle");
  live_[h] = 0;
  --live_count_;
  free_.push_back(h);
}

SignaturePool::Handle SignaturePool::Clone(Handle src) {
  VCD_DCHECK(IsLive(src), "SignaturePool::Clone of a non-live handle");
  const Handle h = Allocate();
  // Allocate never moves slot memory for an existing handle, but it may
  // reallocate the slab itself — re-resolve both pointers after it.
  std::copy_n(words(src), stride_, words(h));
  return h;
}

void SignaturePool::BuildFromSketches(Handle h, const Sketch& cand,
                                      const Sketch& query) {
  VCD_DCHECK(cand.K() == k_ && query.K() == k_, "sketch K mismatch");
  uint64_t* w = words(h);
  const uint64_t* cm = cand.mins.data();
  const uint64_t* qm = query.mins.data();
  // Accumulate each 64-bit word (32 rank pairs) in a register and store it
  // once, instead of a slab read-modify-write per rank.
  int r = 0;
  for (size_t wi = 0; wi < stride_; ++wi) {
    uint64_t acc = 0;
    const int r_end = std::min(k_, r + 32);
    for (int shift = 0; r < r_end; ++r, shift += 2) {
      const uint64_t cv = cm[r];
      const uint64_t qv = qm[r];
      acc |= (static_cast<uint64_t>(cv <= qv) |
              (static_cast<uint64_t>(cv < qv) << 1))
             << shift;
    }
    w[wi] = acc;
  }
}

VCD_POPCNT_CLONES
int SignaturePool::NumEqual(Handle h) const {
  const uint64_t* w = words(h);
  int total = 0, odd = 0;
  for (size_t i = 0; i < stride_; ++i) {
    total += PopCount64(w[i]);
    odd += PopCount64(w[i] & kOddMask);
  }
  return total - 2 * odd;  // even - odd, with even = total - odd
}

VCD_POPCNT_CLONES
int SignaturePool::NumLess(Handle h) const {
  const uint64_t* w = words(h);
  int odd = 0;
  for (size_t i = 0; i < stride_; ++i) odd += PopCount64(w[i] & kOddMask);
  return odd;
}

VCD_POPCNT_CLONES
void SignaturePool::OrRange(const Handle* dst, const Handle* src, size_t n,
                            int* num_less_out) {
  if (num_less_out == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      uint64_t* d = words(dst[i]);
      const uint64_t* s = words(src[i]);
      for (size_t w = 0; w < stride_; ++w) d[w] |= s[w];
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t* d = words(dst[i]);
    const uint64_t* s = words(src[i]);
    int odd = 0;
    for (size_t w = 0; w < stride_; ++w) {
      const uint64_t v = d[w] | s[w];
      d[w] = v;
      odd += PopCount64(v & kOddMask);
    }
    num_less_out[i] = odd;
  }
}

VCD_POPCNT_CLONES
void SignaturePool::NumEqualBatch(const Handle* hs, size_t n, int* num_equal,
                                  int* num_less) const {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* w = words(hs[i]);
    int total = 0, odd = 0;
    for (size_t j = 0; j < stride_; ++j) {
      total += PopCount64(w[j]);
      odd += PopCount64(w[j] & kOddMask);
    }
    // even = total - odd, so NumEqual = even - odd = total - 2*odd.
    if (num_equal != nullptr) num_equal[i] = total - 2 * odd;
    if (num_less != nullptr) num_less[i] = odd;
  }
}

VCD_POPCNT_CLONES
size_t SignaturePool::PruneScan(const Handle* hs, size_t n, double delta,
                                uint8_t* prune) const {
  const double max_less = static_cast<double>(k_) * (1.0 - delta) + 1e-9;
  size_t pruned = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* w = words(hs[i]);
    int odd = 0;
    for (size_t j = 0; j < stride_; ++j) odd += PopCount64(w[j] & kOddMask);
    const uint8_t p = static_cast<double>(odd) > max_less ? 1 : 0;
    prune[i] = p;
    pruned += p;
  }
  return pruned;
}

Status SignaturePool::Validate() const {
  if (slab_.size() != live_.size() * stride_) {
    return Status::Internal("SignaturePool: slab size != capacity * stride");
  }
  std::vector<uint8_t> on_free_list(live_.size(), 0);
  for (Handle h : free_) {
    if (h >= live_.size()) {
      return Status::Internal("SignaturePool: free-list handle out of range");
    }
    if (live_[h] != 0) {
      return Status::Internal("SignaturePool: free-list handle flagged live");
    }
    if (on_free_list[h] != 0) {
      return Status::Internal("SignaturePool: handle on free-list twice");
    }
    on_free_list[h] = 1;
  }
  size_t live_seen = 0;
  for (size_t h = 0; h < live_.size(); ++h) {
    if (live_[h] != 0) {
      ++live_seen;
    } else if (on_free_list[h] == 0) {
      return Status::Internal("SignaturePool: freed slot missing from free-list");
    }
  }
  if (live_seen != live_count_) {
    return Status::Internal("SignaturePool: live_count out of sync");
  }
  // Per-slot well-formedness of live signatures: no (even=0, odd=1) pair,
  // tail bits beyond 2K zero.
  const size_t tail_bits = static_cast<size_t>(2 * k_) & 63;
  const uint64_t tail_mask =
      tail_bits == 0 ? ~uint64_t{0} : (uint64_t{1} << tail_bits) - 1;
  for (size_t h = 0; h < live_.size(); ++h) {
    if (live_[h] == 0) continue;
    const uint64_t* w = words(static_cast<Handle>(h));
    for (size_t j = 0; j < stride_; ++j) {
      // Odd (2r+1) bit set while its even (2r) partner is clear.
      if (((w[j] >> 1) & ~w[j] & kEvenMask) != 0) {
        return Status::Internal("SignaturePool: impossible (0,1) pair in slot " +
                                std::to_string(h));
      }
    }
    if ((w[stride_ - 1] & ~tail_mask) != 0) {
      return Status::Internal("SignaturePool: nonzero tail bits in slot " +
                              std::to_string(h));
    }
  }
  return Status::OK();
}

}  // namespace vcd::sketch
