#pragma once

#include <algorithm>
#include <vector>

#include "features/grid_pyramid.h"

/// \file jaccard.h
/// Exact set similarity (paper Definition 2), used for ground truth, tests,
/// and the Table II membership-test experiment which deliberately avoids
/// min-hash approximation.

namespace vcd::sketch {

/// \brief A deduplicated, sorted set of cell ids supporting exact Jaccard.
class CellIdSet {
 public:
  CellIdSet() = default;

  /// Builds the set of a cell-id sequence (duplicates removed).
  static CellIdSet FromSequence(std::vector<features::CellId> ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    CellIdSet s;
    s.ids_ = std::move(ids);
    return s;
  }

  /// Number of distinct ids.
  size_t size() const { return ids_.size(); }
  /// True if empty.
  bool empty() const { return ids_.empty(); }
  /// Sorted distinct ids.
  const std::vector<features::CellId>& ids() const { return ids_; }

  /// Membership test.
  bool Contains(features::CellId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  /// |this ∩ other| by sorted merge.
  size_t IntersectionSize(const CellIdSet& other) const {
    size_t i = 0, j = 0, n = 0;
    while (i < ids_.size() && j < other.ids_.size()) {
      if (ids_[i] < other.ids_[j]) {
        ++i;
      } else if (ids_[i] > other.ids_[j]) {
        ++j;
      } else {
        ++n;
        ++i;
        ++j;
      }
    }
    return n;
  }

  /// Exact Jaccard similarity |A∩B| / |A∪B| (0 when both sets are empty).
  double Jaccard(const CellIdSet& other) const {
    const size_t inter = IntersectionSize(other);
    const size_t uni = ids_.size() + other.ids_.size() - inter;
    return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
  }

 private:
  std::vector<features::CellId> ids_;
};

/// Exact Jaccard similarity of two cell-id sequences (their sets).
inline double JaccardSimilarity(const std::vector<features::CellId>& a,
                                const std::vector<features::CellId>& b) {
  return CellIdSet::FromSequence(a).Jaccard(CellIdSet::FromSequence(b));
}

}  // namespace vcd::sketch
