#pragma once

#include <cstdint>
#include <vector>

#include "sketch/bit_signature.h"
#include "sketch/kernels/kernels.h"
#include "sketch/minhash.h"
#include "util/aligned_buffer.h"
#include "util/status.h"

/// \file signature_pool.h
/// Flat arena storage for 2K-bit signatures (paper §V-A) plus batched
/// slab kernels.
///
/// The per-object `BitSignature` owns a heap `std::vector<uint64_t>`, so a
/// candidate set of S signatures costs S small allocations, S pointer
/// dereferences per kernel, and malloc traffic on every candidate birth and
/// expiry. `SignaturePool` instead stores every signature of one combination
/// structure in a single 64-byte-aligned `uint64_t` slab. Callers hold
/// 32-bit slot handles:
///
///  - handles are slot *indices*, so slab growth (which may move the
///    backing memory) and slot reuse never invalidate a live handle;
///  - `Free` pushes the slot onto a free-list and never shrinks or
///    compacts the slab, so candidate expiry is O(1) and allocation-free;
///  - the batch kernels (`OrRange`, `NumEqualBatch`, `PruneScan`,
///    `BuildFromSketches`) dispatch through a `kernels::KernelOps` table —
///    the widest SIMD level the CPU supports, chosen once at startup
///    (DESIGN.md §15) — and evaluate 4–8 slots per vector pass.
///
/// ## Slab layout
///
/// Slots are lane-blocked SoA (kernels.h): groups of `kernels::kLanes` (8)
/// slots interleave word-major, so the w-th words of one block's slots form
/// a single 64-byte cache line. Word w of slot h lives at slab element
/// `kernels::WordIndex(stride, h, w)`; within one slot consecutive words
/// are 8 elements apart, so use `word(h, w)` — a slot's words are NOT
/// contiguous.
///
/// Bit layout per slot is identical to `BitSignature`: bit 2r means
/// "cand ≤ query" and bit 2r+1 means "cand < query" for hash position r.
/// Bits at positions ≥ 2K inside the last word are kept zero as an
/// invariant (slots are zeroed on Allocate and only valid positions are
/// ever set), so the kernels need no tail masking.

namespace vcd::sketch {

/// \brief Arena of fixed-stride 2K-bit signatures with a free-list and
/// SIMD-dispatched batch kernels.
class SignaturePool {
 public:
  /// A slot index. Stable for the lifetime of the allocation.
  using Handle = uint32_t;
  static constexpr Handle kInvalidHandle = UINT32_MAX;

  /// Creates an empty pool for signatures of \p k hash functions (k ≥ 1).
  /// \p ops overrides the kernel backend (tests, vcdctl --kernel takes
  /// effect via the process-wide default when null).
  explicit SignaturePool(int k, const kernels::KernelOps* ops = nullptr);

  /// Number of hash functions K.
  int K() const { return k_; }
  /// Slab stride: 64-bit words per signature slot.
  size_t words_per_sig() const { return stride_; }
  /// The kernel backend this pool dispatches to.
  const kernels::KernelOps& ops() const { return *ops_; }
  /// Total slots ever created (live + free).
  size_t capacity() const { return live_.size(); }
  /// Currently allocated slots.
  size_t live_count() const { return live_count_; }
  /// True if \p h names a currently allocated slot.
  bool IsLive(Handle h) const {
    return h < live_.size() && live_[h] != 0;
  }

  /// Allocates a zeroed slot — the all-">" signature. Reuses a freed slot
  /// when one exists; otherwise grows the slab (handles stay valid).
  Handle Allocate();

  /// Returns \p h to the free-list. The slab never shrinks, so other live
  /// handles are unaffected.
  void Free(Handle h);

  /// Allocates a slot holding a copy of live slot \p src.
  Handle Clone(Handle src);

  /// Word \p w of slot \p h. Words of one slot are 8 slab elements apart
  /// (lane-blocked layout) — there is deliberately no contiguous
  /// `words(h)` accessor.
  uint64_t& word(Handle h, size_t w) {
    return slab_.data()[kernels::WordIndex(stride_, h, w)];
  }
  /// \copydoc word
  uint64_t word(Handle h, size_t w) const {
    return slab_.data()[kernels::WordIndex(stride_, h, w)];
  }

  // --- per-slot scalar ops (mirror BitSignature) -------------------------

  /// Sets the relation pair at hash position \p r from raw min-hash values.
  void SetRelation(Handle h, int r, uint64_t cand_value, uint64_t query_value) {
    const uint64_t pair = static_cast<uint64_t>(cand_value <= query_value) |
                          (static_cast<uint64_t>(cand_value < query_value) << 1);
    word(h, static_cast<size_t>(2 * r) >> 6) |=
        pair << (static_cast<size_t>(2 * r) & 63);
  }

  /// Fills slot \p h with the signature of \p cand against \p query
  /// (BitSignature::FromSketches without the heap object). The slot must be
  /// freshly allocated (all zero).
  void BuildFromSketches(Handle h, const Sketch& cand, const Sketch& query);

  /// OR-combines live slot \p src into live slot \p dst (§V-A merge).
  void Or(Handle dst, Handle src) {
    for (size_t w = 0; w < stride_; ++w) word(dst, w) |= word(src, w);
  }

  /// Number of "=" positions of slot \p h (Lemma 1 numerator).
  int NumEqual(Handle h) const;
  /// Number of "<" positions of slot \p h (the N_s of Lemma 2).
  int NumLess(Handle h) const;
  /// Lemma 1 similarity of slot \p h.
  double Similarity(Handle h) const {
    return k_ > 0 ? static_cast<double>(NumEqual(h)) / k_ : 0.0;
  }
  /// Lemma 2 viability of slot \p h at threshold \p delta.
  bool SatisfiesLemma2(Handle h, double delta) const {
    return static_cast<double>(NumLess(h)) <=
           static_cast<double>(k_) * (1.0 - delta) + 1e-9;
  }

  /// Materializes slot \p h as a scalar BitSignature (reference/debug path;
  /// copies the raw words bit-faithfully, including any corruption, so
  /// BitSignature::Validate can vet pool contents).
  BitSignature ToBitSignature(Handle h) const;

  // --- batch kernels ------------------------------------------------------

  /// ORs `src[i]` into `dst[i]` for i in [0, n) through the SIMD backend.
  /// Handles inside the batch must name distinct dst slots. When
  /// \p num_less_out is non-null it receives NumLess of each combined
  /// `dst[i]`, computed from the words already in registers — fusing the
  /// Lemma-2 merge scan into the OR pass instead of re-reading the slab.
  void OrRange(const Handle* dst, const Handle* src, size_t n,
               int* num_less_out = nullptr);

  /// Computes NumEqual and NumLess for n slots in one pass.
  /// \p num_equal / \p num_less must hold n ints; either may be null.
  void NumEqualBatch(const Handle* hs, size_t n, int* num_equal,
                     int* num_less) const;

  /// Lemma-2 scan: sets `prune[i] = 1` when slot `hs[i]` can no longer
  /// reach threshold \p delta (N_s > K(1−δ)), else 0. Returns the number
  /// of pruned slots.
  size_t PruneScan(const Handle* hs, size_t n, double delta,
                   uint8_t* prune) const;

  /// \brief Structural invariant check (debug validator).
  ///
  /// Verifies the 64-byte slab alignment invariant, slab sizing in whole
  /// lane blocks, free-list/live-flag consistency (every free handle in
  /// range, flagged free, listed exactly once; live count = capacity − free
  /// count) and, for every live slot, the BitSignature well-formedness
  /// conditions: no impossible (even=0, odd=1) relation pair and all tail
  /// bits beyond 2K zero. Returns the first violation.
  Status Validate() const;

 private:
  int k_;
  size_t stride_;
  const kernels::KernelOps* ops_;
  util::AlignedWordBuf slab_;
  std::vector<Handle> free_;
  std::vector<uint8_t> live_;  ///< per-slot allocation flag
  size_t live_count_ = 0;
};

}  // namespace vcd::sketch
