#include "sketch/sketch_pool.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/logging.h"

namespace vcd::sketch {

SketchPool::SketchPool(int k, const kernels::KernelOps* ops)
    : k_(k),
      stride_(static_cast<size_t>(k)),
      ops_(ops != nullptr ? ops : &kernels::ActiveOps()) {
  VCD_CHECK(k >= 1, "SketchPool needs K >= 1");
}

SketchPool::Handle SketchPool::Allocate() {
  Handle h;
  if (!free_.empty()) {
    h = free_.back();
    free_.pop_back();
  } else {
    h = static_cast<Handle>(live_.size());
    slab_.resize(slab_.size() + stride_);
    live_.push_back(0);
  }
  std::fill_n(mins(h), stride_, std::numeric_limits<uint64_t>::max());
  live_[h] = 1;
  ++live_count_;
  return h;
}

void SketchPool::Free(Handle h) {
  VCD_DCHECK(IsLive(h), "SketchPool::Free of a non-live handle");
  live_[h] = 0;
  --live_count_;
  free_.push_back(h);
}

void SketchPool::Assign(Handle h, const Sketch& sk) {
  VCD_DCHECK(sk.K() == k_, "sketch K mismatch");
  std::copy_n(sk.mins.data(), stride_, mins(h));
}

void SketchPool::Copy(Handle dst, Handle src) {
  VCD_DCHECK(IsLive(dst) && IsLive(src), "SketchPool::Copy of non-live handle");
  std::copy_n(mins(src), stride_, mins(dst));
}

int SketchPool::NumEqualAgainst(Handle h, const Sketch& query) const {
  VCD_DCHECK(query.K() == k_, "sketch K mismatch");
  kernels::Counters().sketch_num_equal_calls.fetch_add(
      1, std::memory_order_relaxed);
  return ops_->sketch_num_equal(mins(h), query.mins.data(), stride_);
}

Sketch SketchPool::ToSketch(Handle h) const {
  Sketch sk;
  sk.mins.assign(mins(h), mins(h) + stride_);
  return sk;
}

Status SketchPool::Validate() const {
  if (reinterpret_cast<uintptr_t>(slab_.data()) %
          util::AlignedWordBuf::kAlignBytes !=
      0) {
    return Status::Internal("SketchPool: slab not 64-byte aligned");
  }
  if (slab_.size() != live_.size() * stride_) {
    return Status::Internal("SketchPool: slab size != capacity * stride");
  }
  std::vector<uint8_t> on_free_list(live_.size(), 0);
  for (Handle h : free_) {
    if (h >= live_.size()) {
      return Status::Internal("SketchPool: free-list handle out of range");
    }
    if (live_[h] != 0) {
      return Status::Internal("SketchPool: free-list handle flagged live");
    }
    if (on_free_list[h] != 0) {
      return Status::Internal("SketchPool: handle on free-list twice");
    }
    on_free_list[h] = 1;
  }
  size_t live_seen = 0;
  for (size_t h = 0; h < live_.size(); ++h) {
    if (live_[h] != 0) {
      ++live_seen;
    } else if (on_free_list[h] == 0) {
      return Status::Internal("SketchPool: freed slot missing from free-list");
    }
  }
  if (live_seen != live_count_) {
    return Status::Internal("SketchPool: live_count out of sync");
  }
  return Status::OK();
}

}  // namespace vcd::sketch
