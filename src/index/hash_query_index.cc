#include "index/hash_query_index.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_set>

namespace vcd::index {

Result<HashQueryIndex> HashQueryIndex::Build(const std::vector<sketch::Sketch>& sketches,
                                             const std::vector<QueryInfo>& infos) {
  if (sketches.size() != infos.size()) {
    return Status::InvalidArgument("sketches/infos size mismatch");
  }
  if (sketches.empty()) return Status::InvalidArgument("cannot build an empty index");
  const int k = sketches[0].K();
  if (k < 1) return Status::InvalidArgument("sketch K must be >= 1");
  std::unordered_set<int> ids;
  for (size_t q = 0; q < sketches.size(); ++q) {
    if (sketches[q].K() != k) return Status::InvalidArgument("inconsistent sketch K");
    if (!ids.insert(infos[q].id).second) {
      return Status::AlreadyExists("duplicate query id " + std::to_string(infos[q].id));
    }
  }
  const int m = static_cast<int>(sketches.size());
  HashQueryIndex idx;
  idx.rows_.resize(static_cast<size_t>(k));
  // pos[r][q] = position of query q in row r after sorting.
  std::vector<std::vector<int>> pos(static_cast<size_t>(k),
                                    std::vector<int>(static_cast<size_t>(m)));
  std::vector<std::vector<int>> order_of_row(static_cast<size_t>(k));
  for (int r = 0; r < k; ++r) {
    std::vector<int> order(static_cast<size_t>(m));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const uint64_t va = sketches[static_cast<size_t>(a)].mins[static_cast<size_t>(r)];
      const uint64_t vb = sketches[static_cast<size_t>(b)].mins[static_cast<size_t>(r)];
      if (va != vb) return va < vb;
      return a < b;
    });
    auto& row = idx.rows_[static_cast<size_t>(r)];
    row.resize(static_cast<size_t>(m));
    for (int j = 0; j < m; ++j) {
      const int q = order[static_cast<size_t>(j)];
      row[static_cast<size_t>(j)].value =
          sketches[static_cast<size_t>(q)].mins[static_cast<size_t>(r)];
      pos[static_cast<size_t>(r)][static_cast<size_t>(q)] = j;
    }
    order_of_row[static_cast<size_t>(r)] = std::move(order);
  }
  for (int r = 0; r < k; ++r) {
    auto& row = idx.rows_[static_cast<size_t>(r)];
    for (int j = 0; j < m; ++j) {
      const int q = order_of_row[static_cast<size_t>(r)][static_cast<size_t>(j)];
      if (r > 0) {
        row[static_cast<size_t>(j)].up = pos[static_cast<size_t>(r - 1)][static_cast<size_t>(q)];
      }
      if (r + 1 < k) {
        row[static_cast<size_t>(j)].down =
            pos[static_cast<size_t>(r + 1)][static_cast<size_t>(q)];
      }
      row[static_cast<size_t>(j)].col = pos[0][static_cast<size_t>(q)];
    }
  }
  idx.row0_info_.resize(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    idx.row0_info_[static_cast<size_t>(j)] =
        infos[static_cast<size_t>(order_of_row[0][static_cast<size_t>(j)])];
  }
  return idx;
}

std::pair<int, int> HashQueryIndex::EqualRange(int row, uint64_t v) const {
  const auto& r = rows_[static_cast<size_t>(row)];
  auto lo = std::lower_bound(r.begin(), r.end(), v,
                             [](const Entry& e, uint64_t x) { return e.value < x; });
  auto hi = std::upper_bound(r.begin(), r.end(), v,
                             [](uint64_t x, const Entry& e) { return x < e.value; });
  return {static_cast<int>(lo - r.begin()), static_cast<int>(hi - r.begin())};
}

Status HashQueryIndex::ColumnPositions(int query_id, std::vector<int>* pos) const {
  int j = -1;
  for (size_t i = 0; i < row0_info_.size(); ++i) {
    if (row0_info_[i].id == query_id) {
      j = static_cast<int>(i);
      break;
    }
  }
  if (j < 0) return Status::NotFound("query id not indexed");
  pos->resize(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    (*pos)[r] = j;
    j = rows_[r][static_cast<size_t>(j)].down;
  }
  return Status::OK();
}

Status HashQueryIndex::Insert(const sketch::Sketch& sk, const QueryInfo& info) {
  const int k = K();
  if (sk.K() != k) return Status::InvalidArgument("sketch K does not match index");
  for (const auto& qi : row0_info_) {
    if (qi.id == info.id) {
      return Status::AlreadyExists("query id " + std::to_string(info.id));
    }
  }
  // Insertion position per row, found by binary search (paper §V-C.1).
  std::vector<int> pos(static_cast<size_t>(k));
  for (int r = 0; r < k; ++r) {
    const auto& row = rows_[static_cast<size_t>(r)];
    auto it = std::upper_bound(
        row.begin(), row.end(), sk.mins[static_cast<size_t>(r)],
        [](uint64_t x, const Entry& e) { return x < e.value; });
    pos[static_cast<size_t>(r)] = static_cast<int>(it - row.begin());
  }
  // Shift the up/down pointers of entries referencing positions at or after
  // the insertion points, then splice the new column in.
  for (int r = 0; r < k; ++r) {
    for (Entry& e : rows_[static_cast<size_t>(r)]) {
      if (r > 0 && e.up >= pos[static_cast<size_t>(r - 1)]) ++e.up;
      if (r + 1 < k && e.down >= pos[static_cast<size_t>(r + 1)]) ++e.down;
      if (e.col >= pos[0]) ++e.col;
    }
  }
  for (int r = 0; r < k; ++r) {
    Entry e;
    e.value = sk.mins[static_cast<size_t>(r)];
    e.up = r > 0 ? pos[static_cast<size_t>(r - 1)] : -1;
    e.down = r + 1 < k ? pos[static_cast<size_t>(r + 1)] : -1;
    e.col = pos[0];
    auto& row = rows_[static_cast<size_t>(r)];
    row.insert(row.begin() + pos[static_cast<size_t>(r)], e);
  }
  row0_info_.insert(row0_info_.begin() + pos[0], info);
  return Status::OK();
}

Status HashQueryIndex::Remove(int query_id) {
  const int k = K();
  std::vector<int> pos;
  VCD_RETURN_IF_ERROR(ColumnPositions(query_id, &pos));
  for (int r = 0; r < k; ++r) {
    auto& row = rows_[static_cast<size_t>(r)];
    row.erase(row.begin() + pos[static_cast<size_t>(r)]);
  }
  row0_info_.erase(row0_info_.begin() + pos[0]);
  for (int r = 0; r < k; ++r) {
    for (Entry& e : rows_[static_cast<size_t>(r)]) {
      if (r > 0 && e.up > pos[static_cast<size_t>(r - 1)]) --e.up;
      if (r + 1 < k && e.down > pos[static_cast<size_t>(r + 1)]) --e.down;
      if (e.col > pos[0]) --e.col;
    }
  }
  return Status::OK();
}

std::vector<RelatedQuery> HashQueryIndex::Probe(const sketch::Sketch& window,
                                                double delta,
                                                bool enable_pruning) const {
  const int k = K();
  // Internal element: a RelatedQuery plus its current row position (the
  // paper's `lp`, advanced through the down links) and the row-0 column
  // identifying its query. Only *live* elements are advanced; queries
  // already discovered (live or pruned) are remembered in a per-probe
  // bitmap keyed by the entries' cached `col`, so a later equal hit is
  // recognized in O(1) instead of an O(row) up walk.
  struct Ele {
    RelatedQuery rq;
    int lp = -1;
    int col = -1;
    int num_less = 0;  ///< incremental N_s, so Lemma 2 is O(1) per row
  };
  // Lemma 2 bound (O(1) per row): a query stays viable while N_s ≤ K(1−δ).
  // Note a single window cannot be pruned harder: even a window disjoint
  // from the query has N_s ≈ |w|/(|w|+|q|) < 1−δ for typical sizes, and its
  // *extensions* may still match — which is exactly why R_L must keep
  // tracking weakly related queries.
  const double max_less = static_cast<double>(k) * (1.0 - delta) + 1e-9;
  std::vector<char> seen(row0_info_.size(), 0);
  std::vector<Ele> live;
  std::vector<RelatedQuery> out;
  for (int r = 0; r < k; ++r) {
    const uint64_t wv = window.mins[static_cast<size_t>(r)];
    const auto& row = rows_[static_cast<size_t>(r)];
    // (1) Advance live elements through their down links and set this
    // row's relation bits (Fig. 5 steps 3–6), pruning eagerly (steps 9–10).
    for (size_t e = 0; e < live.size();) {
      Ele& ele = live[e];
      if (r > 0) {
        ele.lp = rows_[static_cast<size_t>(r - 1)][static_cast<size_t>(ele.lp)].down;
      }
      const uint64_t qv = row[static_cast<size_t>(ele.lp)].value;
      ele.rq.bitsig.SetRelation(r, wv, qv);
      if (wv < qv) ++ele.num_less;
      if (enable_pruning && ele.num_less > max_less) {
        live[e] = std::move(live.back());  // seen[col] stays set: no revival
        live.pop_back();
      } else {
        ++e;
      }
    }
    // (2) Relevant-queries search (steps 12–16): equal positions whose
    // query is not yet in R_L start a new element, with the earlier rows'
    // bits recovered by the up walk.
    auto [lo, hi] = EqualRange(r, wv);
    for (int j = lo; j < hi; ++j) {
      const int col = row[static_cast<size_t>(j)].col;
      if (seen[static_cast<size_t>(col)]) continue;
      seen[static_cast<size_t>(col)] = 1;
      Ele ele;
      ele.lp = j;
      ele.col = col;
      ele.rq.bitsig = sketch::BitSignature(k);
      ele.rq.bitsig.SetRelation(r, wv, wv);  // "=" at the discovery row
      int p = j;
      for (int rr = r; rr > 0; --rr) {
        p = rows_[static_cast<size_t>(rr)][static_cast<size_t>(p)].up;
        const uint64_t wvr = window.mins[static_cast<size_t>(rr - 1)];
        const uint64_t qvr =
            rows_[static_cast<size_t>(rr - 1)][static_cast<size_t>(p)].value;
        ele.rq.bitsig.SetRelation(rr - 1, wvr, qvr);
        if (wvr < qvr) ++ele.num_less;
      }
      ele.rq.info = row0_info_[static_cast<size_t>(col)];
      if (enable_pruning && ele.num_less > max_less) continue;  // stays seen
      live.push_back(std::move(ele));
    }
  }
  out.reserve(live.size());
  for (Ele& e : live) out.push_back(std::move(e.rq));
  return out;
}

void HashQueryIndex::ProbeInto(const sketch::Sketch& window, double delta,
                               bool enable_pruning, sketch::SignaturePool* pool,
                               ProbeScratch* scratch,
                               std::vector<PooledRelatedQuery>* out) const {
  const int k = K();
  // Mirror of Probe() with the signature bits written into pool slots; see
  // the comments there for the algorithm. The only behavioural difference
  // is resource handling: pruned queries free their slot immediately.
  const double max_less = static_cast<double>(k) * (1.0 - delta) + 1e-9;
  scratch->seen.assign(row0_info_.size(), 0);
  scratch->live.clear();
  out->clear();
  auto& live = scratch->live;
  for (int r = 0; r < k; ++r) {
    const uint64_t wv = window.mins[static_cast<size_t>(r)];
    const auto& row = rows_[static_cast<size_t>(r)];
    for (size_t e = 0; e < live.size();) {
      ProbeScratch::Live& ele = live[e];
      if (r > 0) {
        ele.lp = rows_[static_cast<size_t>(r - 1)][static_cast<size_t>(ele.lp)].down;
      }
      const uint64_t qv = row[static_cast<size_t>(ele.lp)].value;
      pool->SetRelation(ele.sig, r, wv, qv);
      if (wv < qv) ++ele.num_less;
      if (enable_pruning && ele.num_less > max_less) {
        pool->Free(ele.sig);
        live[e] = live.back();  // seen[col] stays set: no revival
        live.pop_back();
      } else {
        ++e;
      }
    }
    auto [lo, hi] = EqualRange(r, wv);
    for (int j = lo; j < hi; ++j) {
      const int col = row[static_cast<size_t>(j)].col;
      if (scratch->seen[static_cast<size_t>(col)]) continue;
      scratch->seen[static_cast<size_t>(col)] = 1;
      ProbeScratch::Live ele;
      ele.lp = j;
      ele.col = col;
      ele.sig = pool->Allocate();
      pool->SetRelation(ele.sig, r, wv, wv);  // "=" at the discovery row
      int p = j;
      for (int rr = r; rr > 0; --rr) {
        p = rows_[static_cast<size_t>(rr)][static_cast<size_t>(p)].up;
        const uint64_t wvr = window.mins[static_cast<size_t>(rr - 1)];
        const uint64_t qvr =
            rows_[static_cast<size_t>(rr - 1)][static_cast<size_t>(p)].value;
        pool->SetRelation(ele.sig, rr - 1, wvr, qvr);
        if (wvr < qvr) ++ele.num_less;
      }
      ele.info = row0_info_[static_cast<size_t>(col)];
      if (enable_pruning && ele.num_less > max_less) {  // stays seen
        pool->Free(ele.sig);
        continue;
      }
      live.push_back(ele);
    }
  }
  out->reserve(live.size());
  for (const ProbeScratch::Live& e : live) {
    out->push_back(PooledRelatedQuery{e.info, e.sig});
  }
  live.clear();
}

void HashQueryIndex::ProbeRelatedInto(const sketch::Sketch& window,
                                      ProbeScratch* scratch,
                                      std::vector<QueryInfo>* out) const {
  const int k = K();
  scratch->seen.assign(row0_info_.size(), 0);
  scratch->row0_positions.clear();
  out->clear();
  for (int r = 0; r < k; ++r) {
    const auto& row = rows_[static_cast<size_t>(r)];
    auto [lo, hi] = EqualRange(r, window.mins[static_cast<size_t>(r)]);
    for (int j = lo; j < hi; ++j) {
      const int col = row[static_cast<size_t>(j)].col;
      if (scratch->seen[static_cast<size_t>(col)]) continue;
      scratch->seen[static_cast<size_t>(col)] = 1;
      scratch->row0_positions.push_back(col);
    }
  }
  std::sort(scratch->row0_positions.begin(), scratch->row0_positions.end());
  out->reserve(scratch->row0_positions.size());
  for (int p : scratch->row0_positions) {
    out->push_back(row0_info_[static_cast<size_t>(p)]);
  }
}

std::vector<QueryInfo> HashQueryIndex::ProbeRelated(const sketch::Sketch& window) const {
  const int k = K();
  // The cached `col` identifies each equal hit's query in O(1); a bitmap
  // dedups across rows, so the whole probe is one binary search per row.
  std::vector<char> seen(row0_info_.size(), 0);
  std::vector<int> row0_positions;
  for (int r = 0; r < k; ++r) {
    const auto& row = rows_[static_cast<size_t>(r)];
    auto [lo, hi] = EqualRange(r, window.mins[static_cast<size_t>(r)]);
    for (int j = lo; j < hi; ++j) {
      const int col = row[static_cast<size_t>(j)].col;
      if (seen[static_cast<size_t>(col)]) continue;
      seen[static_cast<size_t>(col)] = 1;
      row0_positions.push_back(col);
    }
  }
  std::sort(row0_positions.begin(), row0_positions.end());
  std::vector<QueryInfo> out;
  out.reserve(row0_positions.size());
  for (int p : row0_positions) out.push_back(row0_info_[static_cast<size_t>(p)]);
  return out;
}

Result<sketch::Sketch> HashQueryIndex::QuerySketch(int query_id) const {
  std::vector<int> pos;
  VCD_RETURN_IF_ERROR(ColumnPositions(query_id, &pos));
  sketch::Sketch sk;
  sk.mins.resize(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    sk.mins[r] = rows_[r][static_cast<size_t>(pos[r])].value;
  }
  return sk;
}

Status HashQueryIndex::Validate() const {
  const int k = K();
  const size_t m = row0_info_.size();
  for (int r = 0; r < k; ++r) {
    const auto& row = rows_[static_cast<size_t>(r)];
    if (row.size() != m) return Status::Internal("row size mismatch");
    for (size_t j = 0; j + 1 < row.size(); ++j) {
      if (row[j].value > row[j + 1].value) {
        return Status::Internal("row " + std::to_string(r) + " not sorted");
      }
    }
    for (size_t j = 0; j < row.size(); ++j) {
      const Entry& e = row[j];
      if (r > 0) {
        if (e.up < 0 || e.up >= static_cast<int>(m)) {
          return Status::Internal("up pointer out of range");
        }
        if (rows_[static_cast<size_t>(r - 1)][static_cast<size_t>(e.up)].down !=
            static_cast<int>(j)) {
          return Status::Internal("up/down pointers not reciprocal");
        }
      } else if (e.up != -1) {
        return Status::Internal("row 0 must have up == -1");
      }
      if (r + 1 < k) {
        if (e.down < 0 || e.down >= static_cast<int>(m)) {
          return Status::Internal("down pointer out of range");
        }
      } else if (e.down != -1) {
        return Status::Internal("last row must have down == -1");
      }
      // The cached column must agree along the up chain and with the
      // identity at row 0.
      if (r == 0) {
        if (e.col != static_cast<int>(j)) {
          return Status::Internal("row-0 col must equal its own position");
        }
      } else if (e.col !=
                 rows_[static_cast<size_t>(r - 1)][static_cast<size_t>(e.up)].col) {
        return Status::Internal("col cache inconsistent along up chain");
      }
    }
  }
  // Every row-0 column must reach row K-1 through distinct positions.
  for (int r = 0; r + 1 < k; ++r) {
    std::vector<bool> seen(m, false);
    for (size_t j = 0; j < m; ++j) {
      int d = rows_[static_cast<size_t>(r)][j].down;
      if (seen[static_cast<size_t>(d)]) return Status::Internal("down chain collision");
      seen[static_cast<size_t>(d)] = true;
    }
  }
  return Status::OK();
}

}  // namespace vcd::index
