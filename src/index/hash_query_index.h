#pragma once

#include <cstdint>
#include <vector>

#include "sketch/bit_signature.h"
#include "sketch/minhash.h"
#include "sketch/signature_pool.h"
#include "util/status.h"

/// \file hash_query_index.h
/// The Hash-Query index over continuous-query sketches (paper §V-C, Fig. 4).
///
/// The K min-hash values of the m subscribed queries are organized in a
/// K-row array `HQ[K][m]`. Each element is a triple `<value, up, down>`:
/// `value` is one query's min-hash value for that row's hash function, and
/// `up`/`down` are the positions of the *same query's* values in the
/// adjacent rows. Rows are kept sorted by value so a basic-window sketch can
/// be matched by one binary search per row; `up` chains recover the query id
/// (stored only at row 0), and `down` chains let already-related queries be
/// tracked in O(1) per row while their bit signatures are filled in
/// (`ProbeIndex`, Fig. 5), with Lemma-2 pruning applied as early as possible.

namespace vcd::index {

/// Query metadata kept at the row-0 column entries.
struct QueryInfo {
  int id = 0;             ///< subscriber-assigned query id (unique)
  int length_frames = 0;  ///< query length L in key frames
};

/// One element of `R_L`: a query related to the probed basic window,
/// together with the window's bit signature against it.
struct RelatedQuery {
  QueryInfo info;
  sketch::BitSignature bitsig;
};

/// `R_L` element on the pooled path: the signature lives in a
/// SignaturePool slot owned by the caller's pool.
struct PooledRelatedQuery {
  QueryInfo info;
  sketch::SignaturePool::Handle sig = sketch::SignaturePool::kInvalidHandle;
};

/// Reusable per-probe buffers for the allocation-free ProbeInto /
/// ProbeRelatedInto paths. Callers keep one instance per detector and pass
/// it to every probe; its vectors retain their capacity across windows.
struct ProbeScratch {
  /// One in-flight related query of ProbeInto (the paper's `lp` walker).
  struct Live {
    QueryInfo info;
    sketch::SignaturePool::Handle sig = sketch::SignaturePool::kInvalidHandle;
    int lp = -1;
    int col = -1;
    int num_less = 0;
  };
  std::vector<char> seen;
  std::vector<Live> live;
  std::vector<int> row0_positions;
};

/// \brief The K×m triple array with online insert/remove and ProbeIndex.
class HashQueryIndex {
 public:
  /// Builds the index from parallel vectors of query sketches and infos.
  /// All sketches must have the same K ≥ 1; ids must be unique.
  static Result<HashQueryIndex> Build(const std::vector<sketch::Sketch>& sketches,
                                      const std::vector<QueryInfo>& infos);

  /// Number of hash functions K.
  int K() const { return static_cast<int>(rows_.size()); }
  /// Number of subscribed queries m.
  int num_queries() const {
    return rows_.empty() ? 0 : static_cast<int>(rows_[0].size());
  }

  /// Subscribes a new query online. Fails if the id already exists or the
  /// sketch K does not match.
  Status Insert(const sketch::Sketch& sketch, const QueryInfo& info);

  /// Unsubscribes a query online. NotFound if the id is not indexed.
  Status Remove(int query_id);

  /// \brief ProbeIndex (paper Fig. 5): returns the related-query list `R_L`
  /// for basic-window sketch \p window.
  ///
  /// A query becomes *related* once one of its min-hash values equals the
  /// window's; from then on its bit signature is filled row by row through
  /// the `down` links. When \p enable_pruning is set, queries whose partial
  /// signature already violates Lemma 2 for threshold \p delta are dropped
  /// immediately (and their remaining rows never touched).
  std::vector<RelatedQuery> Probe(const sketch::Sketch& window, double delta,
                                  bool enable_pruning = true) const;

  /// Lighter probe for the Sketch-representation methods: just the infos of
  /// related queries (those sharing at least one min-hash value), without
  /// building bit signatures.
  std::vector<QueryInfo> ProbeRelated(const sketch::Sketch& window) const;

  /// \brief Probe (Fig. 5) writing each related query's bit signature
  /// straight into a SignaturePool slot — the allocation-free hot path.
  ///
  /// Semantically identical to Probe(): \p out receives one entry per
  /// surviving related query, with the signature bits in `pool`. Slots of
  /// queries pruned mid-probe are freed back to the pool. \p scratch holds
  /// the per-probe working set; its buffers are reused across calls.
  void ProbeInto(const sketch::Sketch& window, double delta,
                 bool enable_pruning, sketch::SignaturePool* pool,
                 ProbeScratch* scratch,
                 std::vector<PooledRelatedQuery>* out) const;

  /// ProbeRelated into caller-owned buffers (no allocation after warmup).
  void ProbeRelatedInto(const sketch::Sketch& window, ProbeScratch* scratch,
                        std::vector<QueryInfo>* out) const;

  /// Reconstructs the sketch of query \p query_id by walking the `down`
  /// chain from its row-0 entry — the reverse lookup the paper describes.
  Result<sketch::Sketch> QuerySketch(int query_id) const;

  /// Verifies all structural invariants (row sortedness, up/down chain
  /// consistency, row-0 info alignment). Exposed for tests and the
  /// detector's debug validate_state sweep.
  Status Validate() const;

  /// Overwrites the stored min-hash value at (\p row, \p pos) — exists only
  /// so tests can corrupt the array and assert Validate() reports it.
  /// Library code must not call this.
  void CorruptValueForTest(int row, int pos, uint64_t value) {
    rows_[static_cast<size_t>(row)][static_cast<size_t>(pos)].value = value;
  }

  /// Overwrites the up link at (\p row, \p pos) — test-only, as above.
  void CorruptUpLinkForTest(int row, int pos, int32_t up) {
    rows_[static_cast<size_t>(row)][static_cast<size_t>(pos)].up = up;
  }

 private:
  /// One HQ element. `up` is unused (-1) at row 0, `down` at row K-1.
  /// `col` caches the entry's query's position at row 0 (derivable from the
  /// up chain; stored so a probe can identify an equal hit's query in O(1)
  /// instead of an O(row) up walk — +4 bytes per triple).
  struct Entry {
    uint64_t value = 0;
    int32_t up = -1;
    int32_t down = -1;
    int32_t col = -1;
  };

  HashQueryIndex() = default;

  /// Positions of query \p query_id in every row, via the down chain.
  /// Returns NotFound when the id is absent.
  Status ColumnPositions(int query_id, std::vector<int>* pos) const;

  /// Range [lo, hi) of positions in \p row whose value equals \p v.
  std::pair<int, int> EqualRange(int row, uint64_t v) const;

  std::vector<std::vector<Entry>> rows_;  ///< rows_[r] sorted by value
  std::vector<QueryInfo> row0_info_;      ///< aligned with rows_[0]
};

}  // namespace vcd::index
