#include "video/synthetic.h"

#include <algorithm>
#include <cmath>

#include "video/codec_internal.h"

namespace vcd::video {

Result<VideoBuffer> RenderVideo(const SceneModel& model, double t0, double duration,
                                const RenderOptions& opts) {
  if (opts.width <= 0 || opts.height <= 0 || opts.width % 2 || opts.height % 2) {
    return Status::InvalidArgument("render dimensions must be positive and even");
  }
  if (opts.fps <= 0) return Status::InvalidArgument("fps must be positive");
  VideoBuffer out;
  out.fps = opts.fps;
  const int64_t nframes = static_cast<int64_t>(std::floor(duration * opts.fps));
  Rng noise(opts.noise_seed);
  for (int64_t i = 0; i < nframes; ++i) {
    const double t = t0 + static_cast<double>(i) / opts.fps;
    Frame f = Frame::Create(opts.width, opts.height).value();
    for (int y = 0; y < opts.height; ++y) {
      const double ny = (y + 0.5) / opts.height;
      for (int x = 0; x < opts.width; ++x) {
        const double nx = (x + 0.5) / opts.width;
        float lum = model.SampleLuma(t, nx, ny);
        if (opts.noise_sigma > 0) {
          lum += static_cast<float>(noise.Gaussian() * opts.noise_sigma);
        }
        f.SetY(x, y, static_cast<uint8_t>(std::clamp(lum, 0.0f, 255.0f) + 0.5f));
      }
    }
    for (int y = 0; y < f.chroma_height(); ++y) {
      const double ny = (2 * y + 1.0) / opts.height;
      for (int x = 0; x < f.chroma_width(); ++x) {
        const double nx = (2 * x + 1.0) / opts.width;
        float lum, cb, cr;
        model.Sample(t, nx, ny, &lum, &cb, &cr);
        f.SetCb(x, y, static_cast<uint8_t>(std::clamp(cb, 0.0f, 255.0f) + 0.5f));
        f.SetCr(x, y, static_cast<uint8_t>(std::clamp(cr, 0.0f, 255.0f) + 0.5f));
      }
    }
    out.frames.push_back(std::move(f));
  }
  return out;
}

Result<std::vector<DcFrame>> RenderDcFrames(const SceneModel& model, double t0,
                                            double duration, const RenderOptions& opts,
                                            int gop_size) {
  if (opts.width <= 0 || opts.height <= 0) {
    return Status::InvalidArgument("render dimensions must be positive");
  }
  if (opts.fps <= 0 || gop_size < 1) {
    return Status::InvalidArgument("fps and gop_size must be positive");
  }
  const int blocks_x = internal::PadTo8(opts.width) / 8;
  const int blocks_y = internal::PadTo8(opts.height) / 8;
  const int64_t nframes = static_cast<int64_t>(std::floor(duration * opts.fps));
  std::vector<DcFrame> out;
  Rng noise(opts.noise_seed);
  for (int64_t i = 0; i < nframes; i += gop_size) {
    const double t = t0 + static_cast<double>(i) / opts.fps;
    DcFrame dcf;
    dcf.frame_index = i;
    dcf.timestamp = static_cast<double>(i) / opts.fps;
    dcf.blocks_x = blocks_x;
    dcf.blocks_y = blocks_y;
    dcf.dc.resize(static_cast<size_t>(blocks_x) * blocks_y);
    for (int by = 0; by < blocks_y; ++by) {
      for (int bx = 0; bx < blocks_x; ++bx) {
        // 2×2 sample grid at the quarter points of the block approximates
        // the block mean the DCT would produce.
        float sum = 0.0f;
        for (int sy = 0; sy < 2; ++sy) {
          for (int sx = 0; sx < 2; ++sx) {
            const double px = bx * 8 + 2 + sx * 4;
            const double py = by * 8 + 2 + sy * 4;
            const double nx = std::min(px / opts.width, 1.0);
            const double ny = std::min(py / opts.height, 1.0);
            sum += model.SampleLuma(t, nx, ny);
          }
        }
        float mean = sum / 4.0f;
        if (opts.noise_sigma > 0) {
          // Noise on the block mean is attenuated by averaging over the
          // 64 block pixels.
          mean += static_cast<float>(noise.Gaussian() * opts.noise_sigma / 8.0);
        }
        // Mimic the codec: DC = 8*(mean-128), quantized to the DC step grid.
        float dc = 8.0f * (mean - 128.0f);
        dc = std::round(dc / internal::kDcQuantStep) * internal::kDcQuantStep;
        dcf.dc[static_cast<size_t>(by) * blocks_x + bx] = dc;
      }
    }
    out.push_back(std::move(dcf));
  }
  return out;
}

}  // namespace vcd::video
