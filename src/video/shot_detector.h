#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "video/partial_decoder.h"

/// \file shot_detector.h
/// Compressed-domain shot-boundary (cut) detection over key-frame DC maps.
///
/// The paper's content model is shot-structured ("videos ... could be
/// segmented based on scenes"); this utility recovers that structure from
/// the same DC coefficients the copy detector consumes, so downstream users
/// can segment, summarize, or align copies at shot granularity without any
/// extra decoding.

namespace vcd::video {

/// Shot-boundary detector configuration.
struct ShotDetectorOptions {
  /// A cut is declared when the mean absolute DC difference between
  /// consecutive key frames exceeds `threshold` luma levels (on block
  /// means) and is at least `relative_factor` times the running average
  /// difference (adaptive gate against globally dynamic content).
  double threshold = 12.0;
  double relative_factor = 3.0;
  /// Key frames over which the running average difference is tracked.
  int history = 8;

  Status Validate() const;
};

/// One detected shot: [begin, end] in key-frame indices of the fed stream.
struct DetectedShot {
  int64_t begin_key_frame = 0;
  int64_t end_key_frame = 0;      ///< inclusive
  double begin_time = 0.0;
  double end_time = 0.0;
};

/// \brief Streaming cut detector over key-frame DC maps.
class ShotDetector {
 public:
  /// Creates a detector; validates options.
  static Result<ShotDetector> Create(const ShotDetectorOptions& opts = {});

  /// Feeds the next key frame; returns true when a cut was detected
  /// *before* this frame (i.e. the previous shot just closed).
  bool ProcessKeyFrame(const DcFrame& frame);

  /// Closes the final shot. Call once at end of stream.
  void Finish();

  /// All shots detected so far (the last one only after Finish()).
  const std::vector<DetectedShot>& shots() const { return shots_; }

  /// Mean absolute block-mean difference between two DC maps of the same
  /// geometry (the change signal; exposed for tests).
  static double FrameDifference(const DcFrame& a, const DcFrame& b);

 private:
  explicit ShotDetector(const ShotDetectorOptions& opts) : opts_(opts) {}

  ShotDetectorOptions opts_;
  bool have_prev_ = false;
  DcFrame prev_;
  int64_t shot_start_index_ = 0;
  double shot_start_time_ = 0.0;
  int64_t frames_seen_ = 0;
  double diff_sum_ = 0.0;
  std::vector<double> recent_diffs_;
  std::vector<DetectedShot> shots_;
};

}  // namespace vcd::video
