#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

/// \file frame.h
/// Raw video frames in planar YCbCr 4:2:0, the pixel-domain representation
/// consumed by the toy MPEG-like codec (`vcd::video::Encoder`).

namespace vcd::video {

/// \brief One decoded video frame: full-resolution luma plane plus
/// quarter-resolution chroma planes (4:2:0 subsampling).
///
/// Dimensions are rounded up to a multiple of 16 internally by the codec;
/// `Frame` itself stores exactly `width × height` luma samples.
class Frame {
 public:
  Frame() = default;

  /// Creates a black frame of the given dimensions.
  /// Returns InvalidArgument for non-positive or odd dimensions.
  static Result<Frame> Create(int width, int height);

  /// Frame width in luma samples.
  int width() const { return width_; }
  /// Frame height in luma samples.
  int height() const { return height_; }
  /// Chroma plane width (width/2).
  int chroma_width() const { return width_ / 2; }
  /// Chroma plane height (height/2).
  int chroma_height() const { return height_ / 2; }

  /// Luma sample at (x, y).
  uint8_t Y(int x, int y) const { return y_[static_cast<size_t>(y) * width_ + x]; }
  /// Cb sample at chroma coordinates (x, y).
  uint8_t Cb(int x, int y) const {
    return cb_[static_cast<size_t>(y) * chroma_width() + x];
  }
  /// Cr sample at chroma coordinates (x, y).
  uint8_t Cr(int x, int y) const {
    return cr_[static_cast<size_t>(y) * chroma_width() + x];
  }

  /// Sets the luma sample at (x, y).
  void SetY(int x, int y, uint8_t v) { y_[static_cast<size_t>(y) * width_ + x] = v; }
  /// Sets the Cb sample at chroma coordinates (x, y).
  void SetCb(int x, int y, uint8_t v) {
    cb_[static_cast<size_t>(y) * chroma_width() + x] = v;
  }
  /// Sets the Cr sample at chroma coordinates (x, y).
  void SetCr(int x, int y, uint8_t v) {
    cr_[static_cast<size_t>(y) * chroma_width() + x] = v;
  }

  /// Whole luma plane (row-major).
  const std::vector<uint8_t>& y_plane() const { return y_; }
  /// Whole Cb plane (row-major, chroma resolution).
  const std::vector<uint8_t>& cb_plane() const { return cb_; }
  /// Whole Cr plane (row-major, chroma resolution).
  const std::vector<uint8_t>& cr_plane() const { return cr_; }
  /// Mutable luma plane.
  std::vector<uint8_t>& mutable_y_plane() { return y_; }
  /// Mutable Cb plane.
  std::vector<uint8_t>& mutable_cb_plane() { return cb_; }
  /// Mutable Cr plane.
  std::vector<uint8_t>& mutable_cr_plane() { return cr_; }

  /// True if dimensions and all three planes are identical.
  bool operator==(const Frame& other) const {
    return width_ == other.width_ && height_ == other.height_ && y_ == other.y_ &&
           cb_ == other.cb_ && cr_ == other.cr_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> y_;
  std::vector<uint8_t> cb_;
  std::vector<uint8_t> cr_;
};

/// \brief An in-memory sequence of frames with playback metadata.
struct VideoBuffer {
  std::vector<Frame> frames;
  double fps = 29.97;

  /// Number of frames.
  size_t size() const { return frames.size(); }
  /// Duration in seconds.
  double DurationSeconds() const {
    return fps > 0 ? static_cast<double>(frames.size()) / fps : 0.0;
  }
};

}  // namespace vcd::video
