#include "video/scene_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace vcd::video {
namespace {

/// A stock shot composition. Real footage reuses a common visual
/// vocabulary (anchor compositions, standard brightness levels), which is
/// why *coarse* feature-space partitions collide across unrelated videos
/// while fine ones separate them (the precision/recall trade of the paper's
/// Table II). Videos draw shots from this shared pool and individualize
/// them with small per-video jitter.
struct ShotArchetype {
  double base_y, grad_x, grad_y;
  double base_cb, base_cr;
  double tex_amp, tex_fx, tex_fy, tex_phase;
  int nblobs;
  double blob_cx[6], blob_cy[6], blob_sigma[6];
  double blob_y_amp[6], blob_cb_amp[6], blob_cr_amp[6];
};

/// Number of stock compositions in the shared pool.
constexpr int kArchetypePool = 10;
constexpr uint64_t kPoolSeed = 0x5ce7e9001ULL;

const ShotArchetype* Pool() {
  static ShotArchetype pool[kArchetypePool];
  static bool init = [] {
    Rng rng(kPoolSeed);
    for (auto& a : pool) {
      static constexpr double kBaseY[] = {85.0, 115.0, 145.0, 170.0};
      static constexpr double kGrad[] = {-45.0, 0.0, 45.0};
      static constexpr double kAnchor[] = {0.2, 0.5, 0.8};
      static constexpr double kAmp[] = {-60.0, -30.0, 30.0, 60.0};
      static constexpr double kSigma[] = {0.07, 0.12, 0.18};
      a.base_y = kBaseY[rng.Uniform(4)];
      a.grad_x = kGrad[rng.Uniform(3)];
      a.grad_y = kGrad[rng.Uniform(3)];
      a.base_cb = rng.UniformDouble(110.0, 146.0);
      a.base_cr = rng.UniformDouble(110.0, 146.0);
      a.tex_amp = rng.UniformDouble(2.0, 8.0);
      a.tex_fx = rng.UniformDouble(2.0, 12.0);
      a.tex_fy = rng.UniformDouble(2.0, 12.0);
      a.tex_phase = rng.UniformDouble(0.0, 6.28318);
      a.nblobs = static_cast<int>(rng.UniformInt(2, 5));
      for (int b = 0; b < a.nblobs; ++b) {
        a.blob_cx[b] = kAnchor[rng.Uniform(3)];
        a.blob_cy[b] = kAnchor[rng.Uniform(3)];
        a.blob_sigma[b] = kSigma[rng.Uniform(3)];
        a.blob_y_amp[b] = kAmp[rng.Uniform(4)];
        a.blob_cb_amp[b] = rng.UniformDouble(-35.0, 35.0);
        a.blob_cr_amp[b] = rng.UniformDouble(-35.0, 35.0);
      }
    }
    return true;
  }();
  (void)init;
  return pool;
}

}  // namespace

SceneModel SceneModel::Generate(uint64_t seed, double duration_seconds,
                                const SceneStyle& style) {
  VCD_CHECK(duration_seconds > 0, "scene duration must be positive");
  SceneModel m;
  m.duration_ = duration_seconds;
  Rng rng(seed);
  const ShotArchetype* pool = Pool();
  double t = 0.0;
  while (t < duration_seconds) {
    Shot shot;
    shot.start = t;
    shot.duration =
        rng.UniformDouble(style.min_shot_seconds, style.max_shot_seconds);
    // Gentle motion: within a shot the block-level ordinal structure stays
    // stable (as in real footage), which is what makes key-frame phase
    // offsets between a copy and its original survivable.
    shot.pan_x = rng.UniformDouble(-0.008, 0.008);
    shot.pan_y = rng.UniformDouble(-0.008, 0.008);
    if (style.distinct_content) {
      // Fully independent compositions: unrelated videos share almost no
      // cells at any partition granularity.
      shot.base_y = rng.UniformDouble(60.0, 180.0);
      shot.grad_x = rng.UniformDouble(-60.0, 60.0);
      shot.grad_y = rng.UniformDouble(-60.0, 60.0);
      shot.base_cb = rng.UniformDouble(100.0, 156.0);
      shot.base_cr = rng.UniformDouble(100.0, 156.0);
      shot.tex_amp = rng.UniformDouble(2.0, 8.0);
      shot.tex_fx = rng.UniformDouble(2.0, 12.0);
      shot.tex_fy = rng.UniformDouble(2.0, 12.0);
      shot.tex_phase = rng.UniformDouble(0.0, 6.28318);
      const int nblobs = static_cast<int>(rng.UniformInt(2, 5));
      for (int i = 0; i < nblobs; ++i) {
        Blob b;
        b.cx = rng.UniformDouble(0.1, 0.9);
        b.cy = rng.UniformDouble(0.1, 0.9);
        b.vx = rng.UniformDouble(-0.02, 0.02);
        b.vy = rng.UniformDouble(-0.02, 0.02);
        b.sigma = rng.UniformDouble(0.06, 0.2);
        b.y_amp = rng.UniformDouble(-70.0, 70.0);
        b.cb_amp = rng.UniformDouble(-35.0, 35.0);
        b.cr_amp = rng.UniformDouble(-35.0, 35.0);
        shot.blobs.push_back(b);
      }
    } else {
      const ShotArchetype& a = pool[rng.Uniform(kArchetypePool)];
      // Per-video jitter individualizes the stock composition: small
      // enough to stay in the same coarse cell, large enough for fine
      // partitions to separate unrelated videos.
      shot.base_y = a.base_y + rng.UniformDouble(-14.0, 14.0);
      shot.grad_x = a.grad_x + rng.UniformDouble(-14.0, 14.0);
      shot.grad_y = a.grad_y + rng.UniformDouble(-14.0, 14.0);
      shot.base_cb = a.base_cb + rng.UniformDouble(-6.0, 6.0);
      shot.base_cr = a.base_cr + rng.UniformDouble(-6.0, 6.0);
      shot.tex_amp = a.tex_amp;
      shot.tex_fx = a.tex_fx;
      shot.tex_fy = a.tex_fy;
      shot.tex_phase = a.tex_phase + rng.UniformDouble(0.0, 6.28318);
      for (int i = 0; i < a.nblobs; ++i) {
        Blob b;
        b.cx = a.blob_cx[i] + rng.UniformDouble(-0.06, 0.06);
        b.cy = a.blob_cy[i] + rng.UniformDouble(-0.06, 0.06);
        b.vx = rng.UniformDouble(-0.02, 0.02);
        b.vy = rng.UniformDouble(-0.02, 0.02);
        b.sigma = a.blob_sigma[i] + rng.UniformDouble(-0.015, 0.015);
        b.y_amp = a.blob_y_amp[i] + rng.UniformDouble(-12.0, 12.0);
        b.cb_amp = a.blob_cb_amp[i] + rng.UniformDouble(-8.0, 8.0);
        b.cr_amp = a.blob_cr_amp[i] + rng.UniformDouble(-8.0, 8.0);
        shot.blobs.push_back(b);
      }
    }
    t += shot.duration;
    m.shots_.push_back(std::move(shot));
  }
  return m;
}

const Shot& SceneModel::ShotAt(double t) const {
  // Shots are contiguous; binary search on start time.
  t = std::clamp(t, 0.0, duration_);
  auto it = std::upper_bound(shots_.begin(), shots_.end(), t,
                             [](double v, const Shot& s) { return v < s.start; });
  if (it != shots_.begin()) --it;
  return *it;
}

void SceneModel::Sample(double t, double x, double y, float* y_out, float* cb_out,
                        float* cr_out) const {
  const Shot& s = ShotAt(t);
  const double dt = t - s.start;
  // Global pan shifts the whole shot content.
  const double px = x + s.pan_x * dt;
  const double py = y + s.pan_y * dt;
  double yv = s.base_y + s.grad_x * px + s.grad_y * py;
  double cb = s.base_cb;
  double cr = s.base_cr;
  yv += s.tex_amp *
        std::sin(6.28318530718 * (s.tex_fx * px + s.tex_fy * py) + s.tex_phase);
  for (const Blob& b : s.blobs) {
    const double bx = b.cx + b.vx * dt;
    const double by = b.cy + b.vy * dt;
    const double dx = px - bx;
    const double dy = py - by;
    const double g = std::exp(-(dx * dx + dy * dy) / (2.0 * b.sigma * b.sigma));
    yv += b.y_amp * g;
    cb += b.cb_amp * g;
    cr += b.cr_amp * g;
  }
  *y_out = static_cast<float>(std::clamp(yv, 16.0, 235.0));
  *cb_out = static_cast<float>(std::clamp(cb, 16.0, 240.0));
  *cr_out = static_cast<float>(std::clamp(cr, 16.0, 240.0));
}

float SceneModel::SampleLuma(double t, double x, double y) const {
  float yv, cb, cr;
  Sample(t, x, y, &yv, &cb, &cr);
  return yv;
}

}  // namespace vcd::video
