#pragma once

#include <array>
#include <cstdint>

#include "util/status.h"
#include "video/bitstream.h"

/// \file codec_internal.h
/// Tables and block-level entropy primitives shared by the full decoder and
/// the partial (DC-only) decoder. Not part of the public API.

namespace vcd::video::internal {

/// Zig-zag scan order mapping scan position -> row-major coefficient index.
extern const int kZigZag[64];

/// JPEG-style luma base quantization matrix (row-major).
extern const int kLumaQuant[64];

/// JPEG-style chroma base quantization matrix (row-major).
extern const int kChromaQuant[64];

/// Fixed quantization step for DC coefficients (MPEG-1 intra DC style).
inline constexpr int kDcQuantStep = 8;

/// Effective AC quantization step for coefficient \p idx at quantizer scale
/// \p qscale. Never below 1.
inline float AcStep(const int* qmat, int idx, int qscale) {
  float s = static_cast<float>(qmat[idx]) * static_cast<float>(qscale) / 16.0f;
  return s < 1.0f ? 1.0f : s;
}

/// Writes one quantized block: DPCM DC then (run, level) AC pairs with the
/// end-of-block sentinel (run == 63).
void WriteBlock(const std::array<int32_t, 64>& qcoef, int32_t* prev_dc, BitWriter* bw);

/// Reads one quantized block written by WriteBlock.
Status ReadBlock(BitReader* br, int32_t* prev_dc, std::array<int32_t, 64>* qcoef);

/// Reads only the DC of one block, skimming over the AC (run, level) pairs
/// without storing them — the partial-decoding fast path.
Status ReadBlockDcOnly(BitReader* br, int32_t* prev_dc, int32_t* dc);

/// Rounds \p v up to the next multiple of 8 (plane padding for block coding).
inline int PadTo8(int v) { return (v + 7) & ~7; }

}  // namespace vcd::video::internal
