#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "video/frame.h"
#include "video/partial_decoder.h"
#include "video/scene_model.h"

/// \file synthetic.h
/// Renders `SceneModel` content to pixel frames (the realistic path feeding
/// the codec) or directly to key-frame DC maps (the fast path for very long
/// stream sweeps; see DESIGN.md §2 for the substitution argument).

namespace vcd::video {

/// Rendering parameters shared by both paths.
struct RenderOptions {
  int width = 352;
  int height = 240;
  double fps = 29.97;
  /// Extra per-pixel sensor noise (Gaussian sigma in luma levels, 0 = none).
  double noise_sigma = 0.0;
  /// Seed for the sensor noise.
  uint64_t noise_seed = 1;
};

/// Renders \p model over [t0, t0+duration) to raw pixel frames.
/// Returns InvalidArgument for bad dimensions.
Result<VideoBuffer> RenderVideo(const SceneModel& model, double t0, double duration,
                                const RenderOptions& opts);

/// Renders only the key-frame luma DC maps that `Encoder` + `PartialDecoder`
/// would produce for the same content: one DC map per GOP, block means
/// estimated from a 2×2 sample grid per 8×8 block, quantized to the codec's
/// DC step. Exercises the identical downstream pipeline at a fraction of the
/// cost.
Result<std::vector<DcFrame>> RenderDcFrames(const SceneModel& model, double t0,
                                            double duration, const RenderOptions& opts,
                                            int gop_size);

}  // namespace vcd::video
