#pragma once

#include <cstdint>
#include <vector>

#include "obs/pipeline_metrics.h"
#include "util/status.h"
#include "video/codec.h"

/// \file partial_decoder.h
/// Partial decoding of VCDS bit streams: extracts only the luma DC
/// coefficients of key (I) frames, skipping P-frames wholesale and never
/// running an inverse DCT — the compressed-domain fast path the paper relies
/// on for real-time feature extraction (§III-A).
///
/// Two error modes (see DESIGN.md §12, "Failure model"):
/// - **strict** (default): the first malformed byte fails `NextKeyFrame`
///   with `kCorruption` and the decoder stops — the right contract for
///   archival tooling that must not paper over damage.
/// - **resync** (`set_resync_on_corruption(true)`): a live-ingestion mode
///   that treats corruption as weather. A bad frame header triggers a
///   forward scan for the next plausible frame boundary; a mid-payload
///   entropy failure keeps the DC prefix already decoded, zeroes the rest
///   and emits the frame with `DcFrame::degraded = true` so downstream
///   detection can skip the affected basic window instead of killing the
///   stream.

namespace vcd::video {

/// \brief The luma DC coefficient map of one key frame.
///
/// `dc[by * blocks_x + bx]` is the dequantized DC coefficient of the 8×8
/// block at (bx, by); with the codec's orthonormal DCT this equals
/// `8 × (block mean − 128)`.
struct DcFrame {
  int64_t frame_index = 0;  ///< position among *all* frames of the stream
  double timestamp = 0.0;   ///< seconds from stream start
  int blocks_x = 0;
  int blocks_y = 0;
  /// True when the frame was recovered from a corrupt payload (resync
  /// mode): the DC map is partial and must not contribute a fingerprint.
  bool degraded = false;
  std::vector<float> dc;

  /// DC value of block (bx, by).
  float At(int bx, int by) const { return dc[static_cast<size_t>(by) * blocks_x + bx]; }

  /// Block mean luma in [0, 255] recovered from the DC coefficient.
  float BlockMean(int bx, int by) const { return At(bx, by) / 8.0f + 128.0f; }
};

/// Counters of one decoding session (reset by Open).
struct PartialDecoderStats {
  int64_t key_frames = 0;        ///< key frames emitted (incl. degraded)
  int64_t p_frames_skipped = 0;  ///< P-frames skipped via the length field
  int64_t corruption_events = 0; ///< malformed headers/payloads encountered
  int64_t resync_scans = 0;      ///< forward scans for a frame boundary
  int64_t bytes_skipped = 0;     ///< bytes discarded while resyncing
  int64_t degraded_frames = 0;   ///< key frames emitted with a partial DC map
};

/// \brief Streams key-frame DC maps out of a compressed bit stream.
class PartialDecoder {
 public:
  /// Parses the stream header of \p data (not owned; must outlive this).
  Status Open(const uint8_t* data, size_t size);

  /// Stream metadata (valid after Open).
  const StreamHeader& header() const { return header_; }

  /// Switches between strict (default, off) and resync-on-corruption error
  /// handling. May be toggled at any point between NextKeyFrame calls.
  void set_resync_on_corruption(bool on) { resync_ = on; }
  /// True when resync-on-corruption is active.
  bool resync_on_corruption() const { return resync_; }

  /// Session counters (reset by Open).
  const PartialDecoderStats& stats() const { return stats_; }

  /// Attaches observability: subsequent decoding publishes the
  /// `vcd_decoder_*` counter family and the resync-latency histogram into
  /// \p registry (not owned; must outlive this). Null detaches. The local
  /// `stats()` counters keep working either way.
  void set_metrics(obs::MetricsRegistry* registry) {
    metrics_ = obs::DecoderMetrics::Create(registry);
  }

  /// Extracts the next key frame's DC map into \p out. P-frames between key
  /// frames are skipped using the frame length fields without touching their
  /// payload. Returns NotFound at end of stream. In strict mode malformed
  /// data returns kCorruption; in resync mode the decoder scans forward
  /// for the next plausible frame and may emit `out->degraded = true`.
  Status NextKeyFrame(DcFrame* out);

  /// Convenience: extracts all key-frame DC maps in one call (strict mode).
  static Result<std::vector<DcFrame>> ExtractAll(const std::vector<uint8_t>& data);

 private:
  /// Scans forward from \p from for the next plausible frame header (a
  /// valid marker byte whose length field lands on the stream end or on
  /// another valid marker). Positions pos_ there and returns true, or
  /// exhausts the stream and returns false.
  bool ResyncFrom(size_t from);

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  int64_t frame_index_ = 0;
  bool resync_ = false;
  StreamHeader header_;
  PartialDecoderStats stats_;
  obs::DecoderMetrics metrics_;
};

}  // namespace vcd::video
