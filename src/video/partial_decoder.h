#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "video/codec.h"

/// \file partial_decoder.h
/// Partial decoding of VCDS bit streams: extracts only the luma DC
/// coefficients of key (I) frames, skipping P-frames wholesale and never
/// running an inverse DCT — the compressed-domain fast path the paper relies
/// on for real-time feature extraction (§III-A).

namespace vcd::video {

/// \brief The luma DC coefficient map of one key frame.
///
/// `dc[by * blocks_x + bx]` is the dequantized DC coefficient of the 8×8
/// block at (bx, by); with the codec's orthonormal DCT this equals
/// `8 × (block mean − 128)`.
struct DcFrame {
  int64_t frame_index = 0;  ///< position among *all* frames of the stream
  double timestamp = 0.0;   ///< seconds from stream start
  int blocks_x = 0;
  int blocks_y = 0;
  std::vector<float> dc;

  /// DC value of block (bx, by).
  float At(int bx, int by) const { return dc[static_cast<size_t>(by) * blocks_x + bx]; }

  /// Block mean luma in [0, 255] recovered from the DC coefficient.
  float BlockMean(int bx, int by) const { return At(bx, by) / 8.0f + 128.0f; }
};

/// \brief Streams key-frame DC maps out of a compressed bit stream.
class PartialDecoder {
 public:
  /// Parses the stream header of \p data (not owned; must outlive this).
  Status Open(const uint8_t* data, size_t size);

  /// Stream metadata (valid after Open).
  const StreamHeader& header() const { return header_; }

  /// Extracts the next key frame's DC map into \p out. P-frames between key
  /// frames are skipped using the frame length fields without touching their
  /// payload. Returns NotFound at end of stream.
  Status NextKeyFrame(DcFrame* out);

  /// Convenience: extracts all key-frame DC maps in one call.
  static Result<std::vector<DcFrame>> ExtractAll(const std::vector<uint8_t>& data);

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  int64_t frame_index_ = 0;
  StreamHeader header_;
};

}  // namespace vcd::video
