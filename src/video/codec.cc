#include "video/codec.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "video/codec_internal.h"
#include "video/dct.h"

namespace vcd::video {
namespace {

using internal::AcStep;
using internal::kChromaQuant;
using internal::kDcQuantStep;
using internal::kLumaQuant;
using internal::PadTo8;
using internal::ReadBlock;
using internal::WriteBlock;

constexpr uint8_t kMagic[4] = {'V', 'C', 'D', 'S'};
constexpr uint8_t kVersion = 1;
// Header: magic(4) version(1) width(2) height(2) fps_num(4) fps_den(4)
//         gop(1) quantizer(1)
constexpr size_t kHeaderSize = 4 + 1 + 2 + 2 + 4 + 4 + 1 + 1;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

uint16_t GetU16(const uint8_t* p) { return static_cast<uint16_t>((p[0] << 8) | p[1]); }

uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

uint8_t ClampPixel(float v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0f, 255.0f) + 0.5f);
}

/// Macroblock grid dimensions for motion estimation (16×16 luma).
constexpr int kMbSize = 16;

int MbCols(int width) { return (width + kMbSize - 1) / kMbSize; }
int MbRows(int height) { return (height + kMbSize - 1) / kMbSize; }

/// Sum of absolute differences between the current macroblock at (mx, my)
/// and the reference shifted by (dx, dy), with clamped reference sampling.
int64_t MbSad(const std::vector<uint8_t>& cur, const std::vector<uint8_t>& ref,
              int w, int h, int mx, int my, int dx, int dy) {
  int64_t sad = 0;
  for (int y = 0; y < kMbSize; ++y) {
    const int cy = my + y;
    if (cy >= h) break;
    const int ry = std::clamp(cy + dy, 0, h - 1);
    for (int x = 0; x < kMbSize; ++x) {
      const int cx = mx + x;
      if (cx >= w) break;
      const int rx = std::clamp(cx + dx, 0, w - 1);
      sad += std::abs(static_cast<int>(cur[static_cast<size_t>(cy) * w + cx]) -
                      static_cast<int>(ref[static_cast<size_t>(ry) * w + rx]));
    }
  }
  return sad;
}

/// Full-search motion estimation over ±range per 16×16 macroblock,
/// preferring the zero vector on ties (cheaper to code).
std::vector<MotionVector> EstimateMotion(const Frame& cur, const Frame& ref,
                                         int range) {
  const int w = cur.width(), h = cur.height();
  std::vector<MotionVector> mvs(static_cast<size_t>(MbCols(w)) * MbRows(h));
  if (range <= 0) return mvs;
  size_t mb = 0;
  for (int my = 0; my < h; my += kMbSize) {
    for (int mx = 0; mx < w; mx += kMbSize) {
      int64_t best = MbSad(cur.y_plane(), ref.y_plane(), w, h, mx, my, 0, 0);
      MotionVector best_mv;
      for (int dy = -range; dy <= range; ++dy) {
        for (int dx = -range; dx <= range; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int64_t sad = MbSad(cur.y_plane(), ref.y_plane(), w, h, mx, my, dx, dy);
          if (sad < best) {
            best = sad;
            best_mv = MotionVector{static_cast<int8_t>(dx), static_cast<int8_t>(dy)};
          }
        }
      }
      mvs[mb++] = best_mv;
    }
  }
  return mvs;
}

/// Builds the motion-compensated prediction frame from \p ref and the
/// per-macroblock vectors (chroma uses mv/2 at chroma resolution).
Frame BuildPrediction(const Frame& ref, const std::vector<MotionVector>& mvs) {
  const int w = ref.width(), h = ref.height();
  Frame pred = Frame::Create(w, h).value();
  const int cols = MbCols(w);
  for (int my = 0; my < h; ++my) {
    for (int mx = 0; mx < w; ++mx) {
      const MotionVector& mv =
          mvs[static_cast<size_t>(my / kMbSize) * cols + mx / kMbSize];
      const int ry = std::clamp(my + mv.dy, 0, h - 1);
      const int rx = std::clamp(mx + mv.dx, 0, w - 1);
      pred.SetY(mx, my, ref.Y(rx, ry));
    }
  }
  const int cw = pred.chroma_width(), ch = pred.chroma_height();
  for (int my = 0; my < ch; ++my) {
    for (int mx = 0; mx < cw; ++mx) {
      const MotionVector& mv =
          mvs[static_cast<size_t>((my * 2) / kMbSize) * cols + (mx * 2) / kMbSize];
      const int ry = std::clamp(my + mv.dy / 2, 0, ch - 1);
      const int rx = std::clamp(mx + mv.dx / 2, 0, cw - 1);
      pred.SetCb(mx, my, ref.Cb(rx, ry));
      pred.SetCr(mx, my, ref.Cr(rx, ry));
    }
  }
  return pred;
}

/// Lightweight view over one image plane with clamped sampling (edge
/// replication provides the padding for partial blocks).
struct PlaneView {
  const uint8_t* data;
  int w, h;

  float At(int x, int y) const {
    x = std::clamp(x, 0, w - 1);
    y = std::clamp(y, 0, h - 1);
    return static_cast<float>(data[static_cast<size_t>(y) * w + x]);
  }
};

/// Encodes one plane and writes its reconstruction into \p recon (same dims).
/// \p pred is the prediction plane for P coding, or nullptr for intra.
void EncodePlane(const PlaneView& src, const uint8_t* pred, const int* qmat, int qscale,
                 BitWriter* bw, uint8_t* recon) {
  const int bw_blocks = PadTo8(src.w) / 8;
  const int bh_blocks = PadTo8(src.h) / 8;
  const bool intra = pred == nullptr;
  PlaneView pred_view{pred, src.w, src.h};
  int32_t prev_dc = 0;
  std::array<float, 64> block;
  std::array<float, 64> coef;
  std::array<int32_t, 64> qcoef;
  for (int by = 0; by < bh_blocks; ++by) {
    for (int bx = 0; bx < bw_blocks; ++bx) {
      // Gather the (level-shifted or residual) spatial block.
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          float v = src.At(bx * 8 + x, by * 8 + y);
          if (intra) {
            v -= 128.0f;
          } else {
            v -= pred_view.At(bx * 8 + x, by * 8 + y);
          }
          block[y * 8 + x] = v;
        }
      }
      Dct8x8::Forward(block, &coef);
      qcoef[0] = static_cast<int32_t>(std::lround(coef[0] / kDcQuantStep));
      for (int i = 1; i < 64; ++i) {
        qcoef[i] = static_cast<int32_t>(std::lround(coef[i] / AcStep(qmat, i, qscale)));
      }
      WriteBlock(qcoef, &prev_dc, bw);
      // Reconstruct (the encoder must track what the decoder will see so
      // P-frame prediction does not drift).
      coef[0] = static_cast<float>(qcoef[0]) * kDcQuantStep;
      for (int i = 1; i < 64; ++i) {
        coef[i] = static_cast<float>(qcoef[i]) * AcStep(qmat, i, qscale);
      }
      Dct8x8::Inverse(coef, &block);
      for (int y = 0; y < 8; ++y) {
        int py = by * 8 + y;
        if (py >= src.h) break;
        for (int x = 0; x < 8; ++x) {
          int px = bx * 8 + x;
          if (px >= src.w) break;
          float v = block[y * 8 + x];
          v += intra ? 128.0f : pred_view.At(px, py);
          recon[static_cast<size_t>(py) * src.w + px] = ClampPixel(v);
        }
      }
    }
  }
}

/// Decodes one plane written by EncodePlane into \p dst (w×h).
Status DecodePlane(BitReader* br, int w, int h, const uint8_t* pred, const int* qmat,
                   int qscale, uint8_t* dst) {
  const int bw_blocks = PadTo8(w) / 8;
  const int bh_blocks = PadTo8(h) / 8;
  const bool intra = pred == nullptr;
  PlaneView pred_view{pred, w, h};
  int32_t prev_dc = 0;
  std::array<int32_t, 64> qcoef;
  std::array<float, 64> coef;
  std::array<float, 64> block;
  for (int by = 0; by < bh_blocks; ++by) {
    for (int bx = 0; bx < bw_blocks; ++bx) {
      VCD_RETURN_IF_ERROR(ReadBlock(br, &prev_dc, &qcoef));
      coef[0] = static_cast<float>(qcoef[0]) * kDcQuantStep;
      for (int i = 1; i < 64; ++i) {
        coef[i] = static_cast<float>(qcoef[i]) * AcStep(qmat, i, qscale);
      }
      Dct8x8::Inverse(coef, &block);
      for (int y = 0; y < 8; ++y) {
        int py = by * 8 + y;
        if (py >= h) break;
        for (int x = 0; x < 8; ++x) {
          int px = bx * 8 + x;
          if (px >= w) break;
          float v = block[y * 8 + x];
          v += intra ? 128.0f : pred_view.At(px, py);
          dst[static_cast<size_t>(py) * w + px] = ClampPixel(v);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status CodecParams::Validate() const {
  if (width <= 0 || height <= 0) return Status::InvalidArgument("non-positive dimensions");
  if (width % 2 != 0 || height % 2 != 0) {
    return Status::InvalidArgument("dimensions must be even for 4:2:0");
  }
  if (fps <= 0.0) return Status::InvalidArgument("fps must be positive");
  if (gop_size < 1 || gop_size > 255) {
    return Status::InvalidArgument("gop_size must be in [1, 255]");
  }
  if (quantizer < 1 || quantizer > 31) {
    return Status::InvalidArgument("quantizer must be in [1, 31]");
  }
  if (motion_search_range < 0 || motion_search_range > 15) {
    return Status::InvalidArgument("motion_search_range must be in [0, 15]");
  }
  return Status::OK();
}

size_t StreamHeaderSize() { return kHeaderSize; }

Status Encoder::Init(const CodecParams& params) {
  VCD_RETURN_IF_ERROR(params.Validate());
  params_ = params;
  out_.clear();
  // push_back rather than range-insert: GCC 12's -O2 inliner issues a bogus
  // -Warray-bounds/-Wstringop-overflow for insert() from a constexpr array.
  for (uint8_t b : kMagic) out_.push_back(b);
  out_.push_back(kVersion);
  PutU16(&out_, static_cast<uint16_t>(params.width));
  PutU16(&out_, static_cast<uint16_t>(params.height));
  // fps as a rational with denominator 1000 (29.97 -> 29970/1000).
  PutU32(&out_, static_cast<uint32_t>(std::lround(params.fps * 1000.0)));
  PutU32(&out_, 1000);
  out_.push_back(static_cast<uint8_t>(params.gop_size));
  out_.push_back(static_cast<uint8_t>(params.quantizer));
  auto frame = Frame::Create(params.width, params.height);
  recon_ = std::move(frame).value();
  frame_index_ = 0;
  initialized_ = true;
  return Status::OK();
}

Status Encoder::AddFrame(const Frame& frame) {
  if (!initialized_) return Status::FailedPrecondition("Encoder::Init not called");
  if (frame.width() != params_.width || frame.height() != params_.height) {
    return Status::InvalidArgument("frame dimensions do not match codec params");
  }
  const bool intra = (frame_index_ % params_.gop_size) == 0;
  BitWriter bw;
  Frame next_recon = recon_;
  if (next_recon.width() == 0) {
    next_recon = Frame::Create(params_.width, params_.height).value();
  }
  const int w = params_.width, h = params_.height;
  const int cw = w / 2, ch = h / 2;
  // P-frames: estimate per-macroblock motion against the reconstruction,
  // code the vector field, and predict from the motion-compensated frame.
  Frame pred;
  if (!intra) {
    std::vector<MotionVector> mvs =
        EstimateMotion(frame, recon_, params_.motion_search_range);
    for (const MotionVector& mv : mvs) {
      bw.WriteSE(mv.dx);
      bw.WriteSE(mv.dy);
    }
    pred = BuildPrediction(recon_, mvs);
  }
  EncodePlane(PlaneView{frame.y_plane().data(), w, h},
              intra ? nullptr : pred.y_plane().data(), kLumaQuant, params_.quantizer,
              &bw, next_recon.mutable_y_plane().data());
  EncodePlane(PlaneView{frame.cb_plane().data(), cw, ch},
              intra ? nullptr : pred.cb_plane().data(), kChromaQuant,
              params_.quantizer, &bw, next_recon.mutable_cb_plane().data());
  EncodePlane(PlaneView{frame.cr_plane().data(), cw, ch},
              intra ? nullptr : pred.cr_plane().data(), kChromaQuant,
              params_.quantizer, &bw, next_recon.mutable_cr_plane().data());
  std::vector<uint8_t> payload = bw.Finish();
  out_.push_back(static_cast<uint8_t>(intra ? FrameType::kIntra : FrameType::kPredicted));
  PutU32(&out_, static_cast<uint32_t>(payload.size()));
  out_.insert(out_.end(), payload.begin(), payload.end());
  recon_ = std::move(next_recon);
  ++frame_index_;
  return Status::OK();
}

std::vector<uint8_t> Encoder::Finish() {
  initialized_ = false;
  return std::move(out_);
}

Result<std::vector<uint8_t>> Encoder::EncodeVideo(const VideoBuffer& video,
                                                  const CodecParams& params) {
  Encoder enc;
  VCD_RETURN_IF_ERROR(enc.Init(params));
  for (const Frame& f : video.frames) {
    VCD_RETURN_IF_ERROR(enc.AddFrame(f));
  }
  return enc.Finish();
}

Status ParseStreamHeader(const uint8_t* data, size_t size, StreamHeader* header,
                         size_t* payload_start) {
  if (size < kHeaderSize) return Status::Corruption("stream shorter than header");
  if (std::memcmp(data, kMagic, 4) != 0) return Status::Corruption("bad magic");
  if (data[4] != kVersion) return Status::Corruption("unsupported stream version");
  header->width = GetU16(data + 5);
  header->height = GetU16(data + 7);
  uint32_t num = GetU32(data + 9);
  uint32_t den = GetU32(data + 13);
  if (den == 0) return Status::Corruption("zero fps denominator");
  header->fps = static_cast<double>(num) / den;
  header->gop_size = data[17];
  header->quantizer = data[18];
  if (header->width <= 0 || header->height <= 0 || header->gop_size < 1 ||
      header->quantizer < 1) {
    return Status::Corruption("invalid header fields");
  }
  if (header->width % 2 != 0 || header->height % 2 != 0) {
    return Status::Corruption("odd dimensions are not valid 4:2:0");
  }
  *payload_start = kHeaderSize;
  return Status::OK();
}

Status Decoder::Open(const uint8_t* data, size_t size) {
  data_ = data;
  size_ = size;
  VCD_RETURN_IF_ERROR(ParseStreamHeader(data, size, &header_, &pos_));
  recon_ = Frame::Create(header_.width, header_.height).value();
  have_recon_ = false;
  return Status::OK();
}

Status Decoder::NextFrame(Frame* frame) {
  if (pos_ >= size_) return Status::NotFound("end of stream");
  if (pos_ + 5 > size_) return Status::Corruption("truncated frame header");
  uint8_t marker = data_[pos_];
  if (marker != static_cast<uint8_t>(FrameType::kIntra) &&
      marker != static_cast<uint8_t>(FrameType::kPredicted)) {
    return Status::Corruption("bad frame marker");
  }
  const bool intra = marker == static_cast<uint8_t>(FrameType::kIntra);
  uint32_t len = GetU32(data_ + pos_ + 1);
  if (pos_ + 5 + len > size_) return Status::Corruption("frame payload overruns stream");
  if (!intra && !have_recon_) {
    return Status::Corruption("P-frame before any I-frame");
  }
  BitReader br(data_ + pos_ + 5, len);
  Frame out = Frame::Create(header_.width, header_.height).value();
  const int w = header_.width, h = header_.height;
  Frame pred;
  if (!intra) {
    std::vector<MotionVector> mvs(static_cast<size_t>(MbCols(w)) * MbRows(h));
    for (MotionVector& mv : mvs) {
      int32_t dx = 0, dy = 0;
      VCD_RETURN_IF_ERROR(br.ReadSE(&dx));
      VCD_RETURN_IF_ERROR(br.ReadSE(&dy));
      if (dx < -127 || dx > 127 || dy < -127 || dy > 127) {
        return Status::Corruption("motion vector out of range");
      }
      mv.dx = static_cast<int8_t>(dx);
      mv.dy = static_cast<int8_t>(dy);
    }
    pred = BuildPrediction(recon_, mvs);
  }
  VCD_RETURN_IF_ERROR(DecodePlane(&br, w, h, intra ? nullptr : pred.y_plane().data(),
                                  kLumaQuant, header_.quantizer,
                                  out.mutable_y_plane().data()));
  VCD_RETURN_IF_ERROR(DecodePlane(&br, w / 2, h / 2,
                                  intra ? nullptr : pred.cb_plane().data(),
                                  kChromaQuant, header_.quantizer,
                                  out.mutable_cb_plane().data()));
  VCD_RETURN_IF_ERROR(DecodePlane(&br, w / 2, h / 2,
                                  intra ? nullptr : pred.cr_plane().data(),
                                  kChromaQuant, header_.quantizer,
                                  out.mutable_cr_plane().data()));
  pos_ += 5 + len;
  recon_ = out;
  have_recon_ = true;
  *frame = std::move(out);
  return Status::OK();
}

Result<VideoBuffer> Decoder::DecodeVideo(const std::vector<uint8_t>& data) {
  Decoder dec;
  VCD_RETURN_IF_ERROR(dec.Open(data.data(), data.size()));
  VideoBuffer out;
  out.fps = dec.header().fps;
  for (;;) {
    Frame f;
    Status st = dec.NextFrame(&f);
    if (st.code() == StatusCode::kNotFound) break;
    VCD_RETURN_IF_ERROR(st);
    out.frames.push_back(std::move(f));
  }
  return out;
}

}  // namespace vcd::video
