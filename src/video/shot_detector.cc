#include "video/shot_detector.h"

#include <cmath>

namespace vcd::video {

Status ShotDetectorOptions::Validate() const {
  if (threshold <= 0) return Status::InvalidArgument("threshold must be positive");
  if (relative_factor < 1.0) {
    return Status::InvalidArgument("relative_factor must be >= 1");
  }
  if (history < 1) return Status::InvalidArgument("history must be >= 1");
  return Status::OK();
}

Result<ShotDetector> ShotDetector::Create(const ShotDetectorOptions& opts) {
  VCD_RETURN_IF_ERROR(opts.Validate());
  return ShotDetector(opts);
}

double ShotDetector::FrameDifference(const DcFrame& a, const DcFrame& b) {
  if (a.dc.size() != b.dc.size() || a.dc.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.dc.size(); ++i) {
    // DC = 8 × (mean − 128): divide by 8 to express the difference in block
    // mean luma levels.
    sum += std::fabs(a.dc[i] - b.dc[i]) / 8.0;
  }
  return sum / static_cast<double>(a.dc.size());
}

bool ShotDetector::ProcessKeyFrame(const DcFrame& frame) {
  bool cut = false;
  if (have_prev_ && frame.dc.size() == prev_.dc.size()) {
    const double diff = FrameDifference(prev_, frame);
    const double avg = recent_diffs_.empty()
                           ? 0.0
                           : diff_sum_ / static_cast<double>(recent_diffs_.size());
    if (diff > opts_.threshold &&
        (recent_diffs_.empty() || diff > opts_.relative_factor * avg)) {
      // The previous shot ends at the previous key frame.
      DetectedShot s;
      s.begin_key_frame = shot_start_index_;
      s.end_key_frame = frames_seen_ - 1;
      s.begin_time = shot_start_time_;
      s.end_time = prev_.timestamp;
      shots_.push_back(s);
      shot_start_index_ = frames_seen_;
      shot_start_time_ = frame.timestamp;
      recent_diffs_.clear();
      diff_sum_ = 0.0;
      cut = true;
    } else {
      recent_diffs_.push_back(diff);
      diff_sum_ += diff;
      if (static_cast<int>(recent_diffs_.size()) > opts_.history) {
        diff_sum_ -= recent_diffs_.front();
        recent_diffs_.erase(recent_diffs_.begin());
      }
    }
  } else if (!have_prev_) {
    shot_start_index_ = frames_seen_;
    shot_start_time_ = frame.timestamp;
  }
  prev_ = frame;
  have_prev_ = true;
  ++frames_seen_;
  return cut;
}

void ShotDetector::Finish() {
  if (!have_prev_ || frames_seen_ == 0) return;
  DetectedShot s;
  s.begin_key_frame = shot_start_index_;
  s.end_key_frame = frames_seen_ - 1;
  s.begin_time = shot_start_time_;
  s.end_time = prev_.timestamp;
  shots_.push_back(s);
  have_prev_ = false;
}

}  // namespace vcd::video
