#pragma once

#include <array>

/// \file dct.h
/// 8×8 type-II Discrete Cosine Transform and its inverse, the transform at
/// the heart of the MPEG-like codec. The DC coefficient (index 0,0) of each
/// block is what the paper's partial decoder extracts (§III-A).

namespace vcd::video {

/// Number of samples per block edge.
inline constexpr int kBlockSize = 8;

/// \brief Separable floating-point 8×8 forward/inverse DCT.
///
/// `Forward` maps 64 spatial samples (centered at 0 by subtracting 128) to 64
/// frequency coefficients with orthonormal scaling, so the DC coefficient is
/// `8 × (block mean − 128)`. `Inverse` is its exact inverse up to float
/// rounding.
class Dct8x8 {
 public:
  /// Forward DCT: \p block (row-major spatial, already level-shifted floats)
  /// to \p coef (row-major frequency).
  static void Forward(const std::array<float, 64>& block, std::array<float, 64>* coef);

  /// Inverse DCT: \p coef back to spatial samples in \p block.
  static void Inverse(const std::array<float, 64>& coef, std::array<float, 64>* block);
};

}  // namespace vcd::video
