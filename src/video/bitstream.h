#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

/// \file bitstream.h
/// Bit-level serialization used by the codec's entropy layer.

namespace vcd::video {

/// \brief Appends bits MSB-first into a growing byte buffer.
class BitWriter {
 public:
  /// Writes the low \p nbits bits of \p value (1..32 bits), MSB first.
  void WriteBits(uint32_t value, int nbits);

  /// Writes an unsigned Exp-Golomb code (efficient for small magnitudes,
  /// the dominant case for quantized AC coefficients).
  void WriteUE(uint32_t value);

  /// Writes a signed Exp-Golomb code (zig-zag mapped).
  void WriteSE(int32_t value);

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte();

  /// Finishes (byte-aligns) and returns the accumulated bytes.
  std::vector<uint8_t> Finish();

  /// Bits written so far.
  size_t bit_count() const { return bytes_.size() * 8 - (8 - used_) % 8; }

 private:
  std::vector<uint8_t> bytes_;
  int used_ = 8;  // bits used in the last byte; 8 means "no open byte"
};

/// \brief Reads bits MSB-first from a byte buffer, with bounds checking.
class BitReader {
 public:
  /// Creates a reader over \p data (not owned; must outlive the reader).
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  /// Reads \p nbits bits (1..32) into \p value. Fails with Corruption when
  /// the stream is exhausted.
  Status ReadBits(int nbits, uint32_t* value);

  /// Reads an unsigned Exp-Golomb code.
  Status ReadUE(uint32_t* value);

  /// Reads a signed Exp-Golomb code.
  Status ReadSE(int32_t* value);

  /// Skips to the next byte boundary.
  void AlignToByte();

  /// Current bit position.
  size_t bit_pos() const { return bit_pos_; }
  /// True when all bits are consumed (up to byte padding).
  bool AtEnd() const { return bit_pos_ >= size_ * 8; }

  /// Moves the cursor to absolute bit position \p pos.
  Status SeekToBit(size_t pos);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t bit_pos_ = 0;
};

}  // namespace vcd::video
