#include "video/dct.h"

#include <cmath>

namespace vcd::video {
namespace {

// Precomputed basis: cos_table[u][x] = c(u) * cos((2x+1) u pi / 16), with
// orthonormal scaling c(0)=sqrt(1/8), c(u>0)=sqrt(2/8).
struct DctTables {
  float basis[8][8];

  DctTables() {
    const double pi = std::acos(-1.0);
    for (int u = 0; u < 8; ++u) {
      double cu = (u == 0) ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        basis[u][x] = static_cast<float>(cu * std::cos((2 * x + 1) * u * pi / 16.0));
      }
    }
  }
};

const DctTables& Tables() {
  static DctTables t;
  return t;
}

// One-dimensional 8-point DCT applied to a strided vector.
void Dct1d(const float* in, int stride, float* out, int out_stride) {
  const auto& t = Tables();
  for (int u = 0; u < 8; ++u) {
    float acc = 0.0f;
    for (int x = 0; x < 8; ++x) acc += t.basis[u][x] * in[x * stride];
    out[u * out_stride] = acc;
  }
}

void Idct1d(const float* in, int stride, float* out, int out_stride) {
  const auto& t = Tables();
  for (int x = 0; x < 8; ++x) {
    float acc = 0.0f;
    for (int u = 0; u < 8; ++u) acc += t.basis[u][x] * in[u * stride];
    out[x * out_stride] = acc;
  }
}

}  // namespace

void Dct8x8::Forward(const std::array<float, 64>& block, std::array<float, 64>* coef) {
  std::array<float, 64> tmp;
  // Rows, then columns.
  for (int r = 0; r < 8; ++r) Dct1d(&block[r * 8], 1, &tmp[r * 8], 1);
  for (int c = 0; c < 8; ++c) Dct1d(&tmp[c], 8, &(*coef)[c], 8);
}

void Dct8x8::Inverse(const std::array<float, 64>& coef, std::array<float, 64>* block) {
  std::array<float, 64> tmp;
  for (int c = 0; c < 8; ++c) Idct1d(&coef[c], 8, &tmp[c], 8);
  for (int r = 0; r < 8; ++r) Idct1d(&tmp[r * 8], 1, &(*block)[r * 8], 1);
}

}  // namespace vcd::video
