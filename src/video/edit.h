#pragma once

#include <cstdint>

#include "util/status.h"
#include "video/frame.h"

/// \file edit.h
/// Pixel-domain editing operations used to doctor copies the way the paper's
/// VS2 stream is built (§VI): brightness/color alteration, additive noise,
/// resolution change, frame-rate re-encoding (NTSC→PAL) and temporal
/// segment reordering.

namespace vcd::video {

/// Adds \p delta to every luma sample (clamped). Positive = brighter.
VideoBuffer AdjustBrightness(const VideoBuffer& in, int delta);

/// Shifts chroma planes by (\p delta_cb, \p delta_cr) — a hue/color cast.
VideoBuffer AdjustColor(const VideoBuffer& in, int delta_cb, int delta_cr);

/// Scales luma contrast around 128 by \p gain (e.g. 1.2 = +20 % contrast).
VideoBuffer AdjustContrast(const VideoBuffer& in, double gain);

/// Adds zero-mean Gaussian noise with std-dev \p sigma to all planes.
VideoBuffer AddGaussianNoise(const VideoBuffer& in, double sigma, uint64_t seed);

/// Bilinear resample to \p new_width × \p new_height (both must be even).
Result<VideoBuffer> Resize(const VideoBuffer& in, int new_width, int new_height);

/// Re-times the video to \p new_fps by nearest-frame sampling on the time
/// axis (duration is preserved; frame count changes).
Result<VideoBuffer> ResampleFps(const VideoBuffer& in, double new_fps);

/// Splits the video into segments of \p segment_seconds and permutes them
/// uniformly at random (seeded) — the paper's temporal-reordering attack.
/// The permutation never maps a video to itself unless it has one segment.
VideoBuffer ReorderSegments(const VideoBuffer& in, double segment_seconds,
                            uint64_t seed);

/// Appends \p src frames to \p dst (fps metadata of dst is kept).
void AppendFrames(const VideoBuffer& src, VideoBuffer* dst);

}  // namespace vcd::video
