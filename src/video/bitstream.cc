#include "video/bitstream.h"

#include <bit>

namespace vcd::video {

void BitWriter::WriteBits(uint32_t value, int nbits) {
  for (int i = nbits - 1; i >= 0; --i) {
    if (used_ == 8) {
      bytes_.push_back(0);
      used_ = 0;
    }
    uint8_t bit = (value >> i) & 1;
    bytes_.back() |= static_cast<uint8_t>(bit << (7 - used_));
    ++used_;
  }
}

void BitWriter::WriteUE(uint32_t value) {
  // Exp-Golomb: code (value+1) with leading zeros equal to its bit length - 1.
  uint32_t v = value + 1;
  int len = 32 - std::countl_zero(v);
  for (int i = 0; i < len - 1; ++i) WriteBits(0, 1);
  WriteBits(v, len);
}

void BitWriter::WriteSE(int32_t value) {
  // Zig-zag map: 0,-1,1,-2,2... -> 0,1,2,3,4...
  uint32_t mapped =
      value <= 0 ? static_cast<uint32_t>(-2LL * value) : static_cast<uint32_t>(2LL * value - 1);
  WriteUE(mapped);
}

void BitWriter::AlignToByte() { used_ = 8; }

std::vector<uint8_t> BitWriter::Finish() {
  AlignToByte();
  return std::move(bytes_);
}

Status BitReader::ReadBits(int nbits, uint32_t* value) {
  if (bit_pos_ + static_cast<size_t>(nbits) > size_ * 8) {
    return Status::Corruption("bit stream exhausted");
  }
  uint32_t v = 0;
  for (int i = 0; i < nbits; ++i) {
    size_t byte = bit_pos_ >> 3;
    int off = static_cast<int>(bit_pos_ & 7);
    v = (v << 1) | ((data_[byte] >> (7 - off)) & 1);
    ++bit_pos_;
  }
  *value = v;
  return Status::OK();
}

Status BitReader::ReadUE(uint32_t* value) {
  int zeros = 0;
  uint32_t bit = 0;
  for (;;) {
    VCD_RETURN_IF_ERROR(ReadBits(1, &bit));
    if (bit == 1) break;
    if (++zeros > 31) return Status::Corruption("Exp-Golomb prefix too long");
  }
  uint32_t rest = 0;
  if (zeros > 0) {
    VCD_RETURN_IF_ERROR(ReadBits(zeros, &rest));
  }
  *value = ((uint32_t{1} << zeros) | rest) - 1;
  return Status::OK();
}

Status BitReader::ReadSE(int32_t* value) {
  uint32_t mapped = 0;
  VCD_RETURN_IF_ERROR(ReadUE(&mapped));
  if (mapped % 2 == 0) {
    *value = -static_cast<int32_t>(mapped / 2);
  } else {
    *value = static_cast<int32_t>((mapped + 1) / 2);
  }
  return Status::OK();
}

void BitReader::AlignToByte() { bit_pos_ = (bit_pos_ + 7) & ~size_t{7}; }

Status BitReader::SeekToBit(size_t pos) {
  if (pos > size_ * 8) return Status::OutOfRange("seek past end of bit stream");
  bit_pos_ = pos;
  return Status::OK();
}

}  // namespace vcd::video
