#include "video/frame.h"

namespace vcd::video {

Result<Frame> Frame::Create(int width, int height) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("frame dimensions must be positive");
  }
  if (width % 2 != 0 || height % 2 != 0) {
    return Status::InvalidArgument("frame dimensions must be even for 4:2:0 chroma");
  }
  Frame f;
  f.width_ = width;
  f.height_ = height;
  f.y_.assign(static_cast<size_t>(width) * height, 16);  // video black
  f.cb_.assign(static_cast<size_t>(width / 2) * (height / 2), 128);
  f.cr_.assign(static_cast<size_t>(width / 2) * (height / 2), 128);
  return f;
}

}  // namespace vcd::video
