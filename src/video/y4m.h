#pragma once

#include <string>
#include <vector>

#include "util/status.h"
#include "video/frame.h"

/// \file y4m.h
/// YUV4MPEG2 (.y4m) reading and writing — the interchange format emitted by
/// `ffmpeg -pix_fmt yuv420p out.y4m`, so real videos can be fed through the
/// codec and the copy-detection pipeline without any external library.
///
/// Supported subset: C420/C420jpeg/C420mpeg2 (all treated as 4:2:0),
/// interlacing tag ignored, arbitrary aspect tags ignored.

namespace vcd::video {

/// Writes \p video as YUV4MPEG2 into a byte buffer.
Result<std::vector<uint8_t>> WriteY4m(const VideoBuffer& video);

/// Writes \p video as a .y4m file at \p path.
Status WriteY4mFile(const VideoBuffer& video, const std::string& path);

/// Parses a YUV4MPEG2 byte buffer.
Result<VideoBuffer> ReadY4m(const uint8_t* data, size_t size);

/// Reads a .y4m file.
Result<VideoBuffer> ReadY4mFile(const std::string& path);

}  // namespace vcd::video
