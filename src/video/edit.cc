#include "video/edit.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace vcd::video {
namespace {

uint8_t ClampU8(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
}

void ShiftPlane(std::vector<uint8_t>* plane, int delta) {
  for (uint8_t& p : *plane) {
    p = static_cast<uint8_t>(std::clamp(static_cast<int>(p) + delta, 0, 255));
  }
}

/// Bilinear sample of a plane at continuous source coordinates.
float SamplePlane(const std::vector<uint8_t>& plane, int w, int h, double x, double y) {
  x = std::clamp(x, 0.0, w - 1.0);
  y = std::clamp(y, 0.0, h - 1.0);
  int x0 = static_cast<int>(x);
  int y0 = static_cast<int>(y);
  int x1 = std::min(x0 + 1, w - 1);
  int y1 = std::min(y0 + 1, h - 1);
  double fx = x - x0, fy = y - y0;
  auto at = [&](int xx, int yy) {
    return static_cast<double>(plane[static_cast<size_t>(yy) * w + xx]);
  };
  double top = at(x0, y0) * (1 - fx) + at(x1, y0) * fx;
  double bot = at(x0, y1) * (1 - fx) + at(x1, y1) * fx;
  return static_cast<float>(top * (1 - fy) + bot * fy);
}

}  // namespace

VideoBuffer AdjustBrightness(const VideoBuffer& in, int delta) {
  VideoBuffer out = in;
  for (Frame& f : out.frames) ShiftPlane(&f.mutable_y_plane(), delta);
  return out;
}

VideoBuffer AdjustColor(const VideoBuffer& in, int delta_cb, int delta_cr) {
  VideoBuffer out = in;
  for (Frame& f : out.frames) {
    ShiftPlane(&f.mutable_cb_plane(), delta_cb);
    ShiftPlane(&f.mutable_cr_plane(), delta_cr);
  }
  return out;
}

VideoBuffer AdjustContrast(const VideoBuffer& in, double gain) {
  VideoBuffer out = in;
  for (Frame& f : out.frames) {
    for (uint8_t& p : f.mutable_y_plane()) {
      p = ClampU8(128.0 + (static_cast<double>(p) - 128.0) * gain);
    }
  }
  return out;
}

VideoBuffer AddGaussianNoise(const VideoBuffer& in, double sigma, uint64_t seed) {
  VideoBuffer out = in;
  Rng rng(seed);
  auto add_noise = [&](std::vector<uint8_t>* plane) {
    for (uint8_t& p : *plane) {
      p = ClampU8(static_cast<double>(p) + rng.Gaussian() * sigma);
    }
  };
  for (Frame& f : out.frames) {
    add_noise(&f.mutable_y_plane());
    add_noise(&f.mutable_cb_plane());
    add_noise(&f.mutable_cr_plane());
  }
  return out;
}

Result<VideoBuffer> Resize(const VideoBuffer& in, int new_width, int new_height) {
  if (new_width <= 0 || new_height <= 0 || new_width % 2 || new_height % 2) {
    return Status::InvalidArgument("resize target must be positive and even");
  }
  VideoBuffer out;
  out.fps = in.fps;
  out.frames.reserve(in.frames.size());
  for (const Frame& src : in.frames) {
    Frame dst = Frame::Create(new_width, new_height).value();
    const double sx = static_cast<double>(src.width()) / new_width;
    const double sy = static_cast<double>(src.height()) / new_height;
    for (int y = 0; y < new_height; ++y) {
      for (int x = 0; x < new_width; ++x) {
        dst.SetY(x, y, ClampU8(SamplePlane(src.y_plane(), src.width(), src.height(),
                                           (x + 0.5) * sx - 0.5, (y + 0.5) * sy - 0.5)));
      }
    }
    const int scw = src.chroma_width(), sch = src.chroma_height();
    const double csx = static_cast<double>(scw) / dst.chroma_width();
    const double csy = static_cast<double>(sch) / dst.chroma_height();
    for (int y = 0; y < dst.chroma_height(); ++y) {
      for (int x = 0; x < dst.chroma_width(); ++x) {
        dst.SetCb(x, y, ClampU8(SamplePlane(src.cb_plane(), scw, sch,
                                            (x + 0.5) * csx - 0.5, (y + 0.5) * csy - 0.5)));
        dst.SetCr(x, y, ClampU8(SamplePlane(src.cr_plane(), scw, sch,
                                            (x + 0.5) * csx - 0.5, (y + 0.5) * csy - 0.5)));
      }
    }
    out.frames.push_back(std::move(dst));
  }
  return out;
}

Result<VideoBuffer> ResampleFps(const VideoBuffer& in, double new_fps) {
  if (new_fps <= 0) return Status::InvalidArgument("fps must be positive");
  if (in.fps <= 0) return Status::InvalidArgument("source fps must be positive");
  VideoBuffer out;
  out.fps = new_fps;
  const double duration = in.DurationSeconds();
  const int64_t nframes = static_cast<int64_t>(std::floor(duration * new_fps));
  out.frames.reserve(static_cast<size_t>(nframes));
  for (int64_t i = 0; i < nframes; ++i) {
    const double t = static_cast<double>(i) / new_fps;
    auto src_idx = static_cast<size_t>(std::lround(t * in.fps));
    src_idx = std::min(src_idx, in.frames.size() - 1);
    out.frames.push_back(in.frames[src_idx]);
  }
  return out;
}

VideoBuffer ReorderSegments(const VideoBuffer& in, double segment_seconds,
                            uint64_t seed) {
  VideoBuffer out;
  out.fps = in.fps;
  if (in.frames.empty() || segment_seconds <= 0 || in.fps <= 0) {
    out.frames = in.frames;
    return out;
  }
  const auto seg_frames =
      std::max<size_t>(1, static_cast<size_t>(std::lround(segment_seconds * in.fps)));
  const size_t nseg = (in.frames.size() + seg_frames - 1) / seg_frames;
  std::vector<size_t> order(nseg);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  // Fisher–Yates; retry until the permutation actually moves something, so
  // "reordered" copies are genuinely reordered.
  do {
    for (size_t i = nseg; i > 1; --i) {
      size_t j = rng.Uniform(i);
      std::swap(order[i - 1], order[j]);
    }
  } while (nseg > 1 && std::is_sorted(order.begin(), order.end()));
  out.frames.reserve(in.frames.size());
  for (size_t s : order) {
    const size_t begin = s * seg_frames;
    const size_t end = std::min(begin + seg_frames, in.frames.size());
    for (size_t i = begin; i < end; ++i) out.frames.push_back(in.frames[i]);
  }
  return out;
}

void AppendFrames(const VideoBuffer& src, VideoBuffer* dst) {
  dst->frames.insert(dst->frames.end(), src.frames.begin(), src.frames.end());
}

}  // namespace vcd::video
