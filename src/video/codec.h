#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "video/frame.h"

/// \file codec.h
/// A from-scratch MPEG-like video codec: 8×8 DCT, quantization, zig-zag +
/// (run, level) Exp-Golomb entropy coding, I/P GOP structure, 4:2:0 chroma.
///
/// The paper assumes incoming streams are compressed bit streams from which
/// DC coefficients of key (I) frames can be extracted by *partial decoding*
/// (§III-A). This codec produces such bit streams from raw frames; the
/// matching partial decoder lives in `video/partial_decoder.h`.
///
/// The bit-stream layout is:
///   stream header: magic 'VCDS', version, width, height, fps (num/den),
///                  GOP size, quantizer scale
///   per frame:     1-byte type marker (I/P), 32-bit payload byte length
///                  (allows cheap frame skipping, playing the role of MPEG
///                  start codes), then the entropy-coded payload.
/// Within a frame, planes are coded Y, Cb, Cr; blocks row-major; the DC
/// coefficient of each block is DPCM-coded against the previous block's DC,
/// AC coefficients as (zero-run, level) pairs in zig-zag order with an
/// end-of-block sentinel.

namespace vcd::video {

/// Frame type markers in the bit stream.
enum class FrameType : uint8_t { kIntra = 0xF1, kPredicted = 0xF0 };

/// Codec configuration.
struct CodecParams {
  int width = 352;
  int height = 240;
  double fps = 29.97;
  /// Number of frames per GOP; frame i is an I-frame iff i % gop_size == 0.
  int gop_size = 12;
  /// Quantizer scale in [1, 31]; larger = coarser AC quantization.
  int quantizer = 4;
  /// Motion-search range in pixels for P-frames (full search over
  /// ±range × ±range per 16×16 macroblock). 0 = zero-motion prediction.
  int motion_search_range = 7;

  /// Validates ranges; returns InvalidArgument with a reason otherwise.
  Status Validate() const;
};

/// Parsed stream header.
struct StreamHeader {
  int width = 0;
  int height = 0;
  double fps = 0.0;
  int gop_size = 0;
  int quantizer = 0;
};

/// One macroblock's motion vector (luma pixels; chroma uses mv/2).
struct MotionVector {
  int8_t dx = 0;
  int8_t dy = 0;
};

/// \brief Encodes raw frames into the VCDS bit stream.
class Encoder {
 public:
  /// Creates an encoder. Call `Init` before adding frames.
  Encoder() = default;

  /// Validates \p params and writes the stream header.
  Status Init(const CodecParams& params);

  /// Encodes one frame (I or P chosen by GOP position). The frame's
  /// dimensions must match the params.
  Status AddFrame(const Frame& frame);

  /// Finalizes and returns the complete bit stream.
  std::vector<uint8_t> Finish();

  /// Convenience: encodes a whole buffer in one call.
  static Result<std::vector<uint8_t>> EncodeVideo(const VideoBuffer& video,
                                                  const CodecParams& params);

 private:
  CodecParams params_;
  std::vector<uint8_t> out_;
  Frame recon_;       // reconstruction of the previous frame (prediction ref)
  int64_t frame_index_ = 0;
  bool initialized_ = false;
};

/// \brief Fully decodes a VCDS bit stream back to raw frames.
class Decoder {
 public:
  /// Parses the stream header of \p data. The buffer must outlive the
  /// decoder.
  Status Open(const uint8_t* data, size_t size);

  /// Stream metadata (valid after Open).
  const StreamHeader& header() const { return header_; }

  /// Decodes the next frame into \p frame. Returns NotFound at end of
  /// stream and Corruption on malformed input.
  Status NextFrame(Frame* frame);

  /// Convenience: decodes a whole stream in one call.
  static Result<VideoBuffer> DecodeVideo(const std::vector<uint8_t>& data);

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;  // byte cursor at the next frame header
  StreamHeader header_;
  Frame recon_;
  bool have_recon_ = false;
};

/// Parses only the stream header (shared by Decoder and PartialDecoder).
Status ParseStreamHeader(const uint8_t* data, size_t size, StreamHeader* header,
                         size_t* payload_start);

/// Serialized header size in bytes.
size_t StreamHeaderSize();

}  // namespace vcd::video
