#include "video/codec_internal.h"

namespace vcd::video::internal {

const int kZigZag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

const int kLumaQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

const int kChromaQuant[64] = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

namespace {
/// End-of-block sentinel; legal zero-runs within a block are at most 62.
constexpr uint32_t kEob = 63;
}  // namespace

void WriteBlock(const std::array<int32_t, 64>& qcoef, int32_t* prev_dc, BitWriter* bw) {
  bw->WriteSE(qcoef[0] - *prev_dc);
  *prev_dc = qcoef[0];
  uint32_t run = 0;
  for (int k = 1; k < 64; ++k) {
    int32_t level = qcoef[kZigZag[k]];
    if (level == 0) {
      ++run;
    } else {
      bw->WriteUE(run);
      bw->WriteSE(level);
      run = 0;
    }
  }
  bw->WriteUE(kEob);
}

Status ReadBlock(BitReader* br, int32_t* prev_dc, std::array<int32_t, 64>* qcoef) {
  qcoef->fill(0);
  int32_t diff = 0;
  VCD_RETURN_IF_ERROR(br->ReadSE(&diff));
  *prev_dc += diff;
  (*qcoef)[0] = *prev_dc;
  int k = 1;
  for (;;) {
    uint32_t run = 0;
    VCD_RETURN_IF_ERROR(br->ReadUE(&run));
    if (run == kEob) break;
    k += static_cast<int>(run);
    if (k > 63) return Status::Corruption("AC run overruns block");
    int32_t level = 0;
    VCD_RETURN_IF_ERROR(br->ReadSE(&level));
    if (level == 0) return Status::Corruption("zero AC level is not a legal code");
    (*qcoef)[kZigZag[k]] = level;
    ++k;
  }
  return Status::OK();
}

Status ReadBlockDcOnly(BitReader* br, int32_t* prev_dc, int32_t* dc) {
  int32_t diff = 0;
  VCD_RETURN_IF_ERROR(br->ReadSE(&diff));
  *prev_dc += diff;
  *dc = *prev_dc;
  int k = 1;
  for (;;) {
    uint32_t run = 0;
    VCD_RETURN_IF_ERROR(br->ReadUE(&run));
    if (run == kEob) break;
    k += static_cast<int>(run);
    if (k > 63) return Status::Corruption("AC run overruns block");
    int32_t level = 0;
    VCD_RETURN_IF_ERROR(br->ReadSE(&level));
    if (level == 0) return Status::Corruption("zero AC level is not a legal code");
    ++k;
  }
  return Status::OK();
}

}  // namespace vcd::video::internal
