#include "video/y4m.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

namespace vcd::video {
namespace {

constexpr char kMagic[] = "YUV4MPEG2";
constexpr char kFrameMagic[] = "FRAME";

/// Renders fps as a rational tag. Common broadcast rates get their exact
/// rationals; anything else uses a /1000 approximation.
std::string FpsTag(double fps) {
  if (std::fabs(fps - 29.97) < 5e-3) return "30000:1001";
  if (std::fabs(fps - 23.976) < 5e-3) return "24000:1001";
  if (std::fabs(fps - 59.94) < 5e-3) return "60000:1001";
  if (std::fabs(fps - std::lround(fps)) < 1e-9) {
    return std::to_string(static_cast<long>(std::lround(fps))) + ":1";
  }
  return std::to_string(static_cast<long>(std::lround(fps * 1000))) + ":1000";
}

}  // namespace

Result<std::vector<uint8_t>> WriteY4m(const VideoBuffer& video) {
  if (video.frames.empty()) return Status::InvalidArgument("no frames to write");
  if (video.fps <= 0) return Status::InvalidArgument("fps must be positive");
  const Frame& first = video.frames[0];
  std::string header = std::string(kMagic) + " W" + std::to_string(first.width()) +
                       " H" + std::to_string(first.height()) + " F" +
                       FpsTag(video.fps) + " Ip A1:1 C420\n";
  std::vector<uint8_t> out(header.begin(), header.end());
  const size_t ysize = static_cast<size_t>(first.width()) * first.height();
  const size_t csize = ysize / 4;
  out.reserve(out.size() + video.frames.size() * (6 + ysize + 2 * csize));
  for (const Frame& f : video.frames) {
    if (f.width() != first.width() || f.height() != first.height()) {
      return Status::InvalidArgument("all frames must share dimensions");
    }
    const char* fm = "FRAME\n";
    out.insert(out.end(), fm, fm + 6);
    out.insert(out.end(), f.y_plane().begin(), f.y_plane().end());
    out.insert(out.end(), f.cb_plane().begin(), f.cb_plane().end());
    out.insert(out.end(), f.cr_plane().begin(), f.cr_plane().end());
  }
  return out;
}

Status WriteY4mFile(const VideoBuffer& video, const std::string& path) {
  auto bytes = WriteY4m(video);
  if (!bytes.ok()) return bytes.status();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + path + " for writing");
  const size_t n = std::fwrite(bytes->data(), 1, bytes->size(), f);
  std::fclose(f);
  if (n != bytes->size()) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<VideoBuffer> ReadY4m(const uint8_t* data, size_t size) {
  // Stream header line.
  size_t eol = 0;
  while (eol < size && data[eol] != '\n') ++eol;
  if (eol >= size) return Status::Corruption("missing y4m header line");
  std::string header(reinterpret_cast<const char*>(data), eol);
  if (header.rfind(kMagic, 0) != 0) return Status::Corruption("not a YUV4MPEG2 stream");
  int w = 0, h = 0;
  long fn = 0, fd = 1;
  bool c420 = true;  // default chroma when no C tag
  size_t pos = std::strlen(kMagic);
  while (pos < header.size()) {
    while (pos < header.size() && header[pos] == ' ') ++pos;
    if (pos >= header.size()) break;
    const char tag = header[pos];
    size_t end = header.find(' ', pos);
    if (end == std::string::npos) end = header.size();
    const std::string val = header.substr(pos + 1, end - pos - 1);
    switch (tag) {
      case 'W':
        w = std::atoi(val.c_str());
        break;
      case 'H':
        h = std::atoi(val.c_str());
        break;
      case 'F': {
        if (std::sscanf(val.c_str(), "%ld:%ld", &fn, &fd) != 2 || fd == 0) {
          return Status::Corruption("bad F tag: " + val);
        }
        break;
      }
      case 'C':
        c420 = val.rfind("420", 0) == 0;
        break;
      default:
        break;  // Ip, A, X... tags are ignored
    }
    pos = end;
  }
  if (w <= 0 || h <= 0) return Status::Corruption("missing W/H tags");
  if (w % 2 || h % 2) return Status::Corruption("odd dimensions unsupported");
  if (!c420) return Status::InvalidArgument("only C420 chroma is supported");
  VideoBuffer out;
  out.fps = fn > 0 ? static_cast<double>(fn) / static_cast<double>(fd) : 25.0;
  const size_t ysize = static_cast<size_t>(w) * h;
  const size_t csize = ysize / 4;
  size_t cur = eol + 1;
  while (cur < size) {
    // FRAME line (may carry parameters after a space).
    size_t feol = cur;
    while (feol < size && data[feol] != '\n') ++feol;
    if (feol >= size) return Status::Corruption("truncated FRAME header");
    if (std::memcmp(data + cur, kFrameMagic, 5) != 0) {
      return Status::Corruption("expected FRAME marker");
    }
    cur = feol + 1;
    if (cur + ysize + 2 * csize > size) {
      return Status::Corruption("truncated frame payload");
    }
    Frame f = Frame::Create(w, h).value();
    std::memcpy(f.mutable_y_plane().data(), data + cur, ysize);
    std::memcpy(f.mutable_cb_plane().data(), data + cur + ysize, csize);
    std::memcpy(f.mutable_cr_plane().data(), data + cur + ysize + csize, csize);
    cur += ysize + 2 * csize;
    out.frames.push_back(std::move(f));
  }
  return out;
}

Result<VideoBuffer> ReadY4mFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (len < 0) {
    std::fclose(f);
    return Status::Internal("cannot stat " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(len));
  const size_t n = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) return Status::Internal("short read from " + path);
  return ReadY4m(bytes.data(), bytes.size());
}

}  // namespace vcd::video
