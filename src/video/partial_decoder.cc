#include "video/partial_decoder.h"

#include "video/codec_internal.h"

namespace vcd::video {

using internal::kDcQuantStep;
using internal::PadTo8;
using internal::ReadBlockDcOnly;

Status PartialDecoder::Open(const uint8_t* data, size_t size) {
  data_ = data;
  size_ = size;
  frame_index_ = 0;
  return ParseStreamHeader(data, size, &header_, &pos_);
}

Status PartialDecoder::NextKeyFrame(DcFrame* out) {
  while (pos_ < size_) {
    if (pos_ + 5 > size_) return Status::Corruption("truncated frame header");
    uint8_t marker = data_[pos_];
    uint32_t len = (static_cast<uint32_t>(data_[pos_ + 1]) << 24) |
                   (static_cast<uint32_t>(data_[pos_ + 2]) << 16) |
                   (static_cast<uint32_t>(data_[pos_ + 3]) << 8) | data_[pos_ + 4];
    if (pos_ + 5 + len > size_) return Status::Corruption("frame payload overruns stream");
    const bool intra = marker == static_cast<uint8_t>(FrameType::kIntra);
    if (!intra && marker != static_cast<uint8_t>(FrameType::kPredicted)) {
      return Status::Corruption("bad frame marker");
    }
    if (!intra) {
      // The cheap path: P-frames are skipped entirely via the length field.
      pos_ += 5 + len;
      ++frame_index_;
      continue;
    }
    BitReader br(data_ + pos_ + 5, len);
    out->blocks_x = PadTo8(header_.width) / 8;
    out->blocks_y = PadTo8(header_.height) / 8;
    out->frame_index = frame_index_;
    out->timestamp = header_.fps > 0 ? static_cast<double>(frame_index_) / header_.fps : 0;
    out->dc.assign(static_cast<size_t>(out->blocks_x) * out->blocks_y, 0.0f);
    int32_t prev_dc = 0;
    for (size_t b = 0; b < out->dc.size(); ++b) {
      int32_t qdc = 0;
      VCD_RETURN_IF_ERROR(ReadBlockDcOnly(&br, &prev_dc, &qdc));
      out->dc[b] = static_cast<float>(qdc) * kDcQuantStep;
    }
    // Chroma planes and the rest of the frame are skipped via the length.
    pos_ += 5 + len;
    ++frame_index_;
    return Status::OK();
  }
  return Status::NotFound("end of stream");
}

Result<std::vector<DcFrame>> PartialDecoder::ExtractAll(const std::vector<uint8_t>& data) {
  PartialDecoder pd;
  VCD_RETURN_IF_ERROR(pd.Open(data.data(), data.size()));
  std::vector<DcFrame> out;
  for (;;) {
    DcFrame f;
    Status st = pd.NextKeyFrame(&f);
    if (st.code() == StatusCode::kNotFound) break;
    VCD_RETURN_IF_ERROR(st);
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace vcd::video
