#include "video/partial_decoder.h"

#include "obs/span.h"
#include "util/faultfx.h"
#include "video/codec_internal.h"

namespace vcd::video {

using internal::kDcQuantStep;
using internal::PadTo8;
using internal::ReadBlockDcOnly;

namespace {

uint32_t ReadLen(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

bool ValidMarker(uint8_t b) {
  return b == static_cast<uint8_t>(FrameType::kIntra) ||
         b == static_cast<uint8_t>(FrameType::kPredicted);
}

}  // namespace

Status PartialDecoder::Open(const uint8_t* data, size_t size) {
  data_ = data;
  size_ = size;
  frame_index_ = 0;
  stats_ = PartialDecoderStats{};
  return ParseStreamHeader(data, size, &header_, &pos_);
}

bool PartialDecoder::ResyncFrom(size_t from) {
  VCD_OBS_SPAN(metrics_.resync_latency_ns);
  ++stats_.resync_scans;
  VCD_OBS_INC(metrics_.resync_scans_total, 1);
  const size_t start = from;
  for (size_t p = from; p + 5 <= size_; ++p) {
    if (!ValidMarker(data_[p])) continue;
    const size_t next = p + 5 + ReadLen(data_ + p + 1);
    if (next > size_) continue;
    // Accept only boundaries whose length field lands on the stream end or
    // on another plausible frame — one payload byte that happens to look
    // like a marker is not enough to resynchronize on.
    if (next != size_ && !ValidMarker(data_[next])) continue;
    stats_.bytes_skipped += static_cast<int64_t>(p - start);
    VCD_OBS_INC(metrics_.bytes_skipped_total, static_cast<int64_t>(p - start));
    pos_ = p;
    return true;
  }
  if (start < size_) {
    stats_.bytes_skipped += static_cast<int64_t>(size_ - start);
    VCD_OBS_INC(metrics_.bytes_skipped_total,
                static_cast<int64_t>(size_ - start));
  }
  pos_ = size_;
  return false;
}

Status PartialDecoder::NextKeyFrame(DcFrame* out) {
  while (pos_ < size_) {
    if (pos_ + 5 > size_) {
      ++stats_.corruption_events;
      VCD_OBS_INC(metrics_.corruption_events_total, 1);
      if (!resync_) return Status::Corruption("truncated frame header");
      // A torn tail carries no recoverable frame: treat it as end of stream.
      stats_.bytes_skipped += static_cast<int64_t>(size_ - pos_);
      pos_ = size_;
      break;
    }
    const uint8_t marker = data_[pos_];
    const uint32_t len = ReadLen(data_ + pos_ + 1);
    const bool intra = marker == static_cast<uint8_t>(FrameType::kIntra);
    const bool overrun = pos_ + 5 + len > size_;
    const bool injected =
        faultfx::ShouldFire(faultfx::Site::kBitstreamCorruption);
    if (!ValidMarker(marker) || overrun || injected) {
      ++stats_.corruption_events;
      VCD_OBS_INC(metrics_.corruption_events_total, 1);
      if (!resync_) {
        if (injected) return Status::Corruption("injected bitstream corruption");
        if (overrun) return Status::Corruption("frame payload overruns stream");
        return Status::Corruption("bad frame marker");
      }
      if (!ResyncFrom(pos_ + 1)) break;
      continue;
    }
    if (!intra) {
      // The cheap path: P-frames are skipped entirely via the length field.
      pos_ += 5 + len;
      ++frame_index_;
      ++stats_.p_frames_skipped;
      VCD_OBS_INC(metrics_.p_frames_skipped_total, 1);
      continue;
    }
    BitReader br(data_ + pos_ + 5, len);
    out->blocks_x = PadTo8(header_.width) / 8;
    out->blocks_y = PadTo8(header_.height) / 8;
    out->frame_index = frame_index_;
    out->timestamp = header_.fps > 0 ? static_cast<double>(frame_index_) / header_.fps : 0;
    out->degraded = false;
    out->dc.assign(static_cast<size_t>(out->blocks_x) * out->blocks_y, 0.0f);
    int32_t prev_dc = 0;
    Status entropy;
    for (size_t b = 0; b < out->dc.size(); ++b) {
      int32_t qdc = 0;
      if (faultfx::ShouldFire(faultfx::Site::kDecodeError)) {
        entropy = Status::Corruption("injected decode error");
      } else {
        entropy = ReadBlockDcOnly(&br, &prev_dc, &qdc);
      }
      if (!entropy.ok()) break;
      out->dc[b] = static_cast<float>(qdc) * kDcQuantStep;
    }
    if (!entropy.ok()) {
      ++stats_.corruption_events;
      VCD_OBS_INC(metrics_.corruption_events_total, 1);
      if (!resync_) return entropy;
      // Keep the DC prefix decoded so far (the rest stays zero) and flag
      // the frame so detection skips its basic window's sketch.
      out->degraded = true;
      ++stats_.degraded_frames;
      VCD_OBS_INC(metrics_.degraded_frames_total, 1);
    }
    // Chroma planes and the rest of the frame are skipped via the length.
    pos_ += 5 + len;
    ++frame_index_;
    ++stats_.key_frames;
    VCD_OBS_INC(metrics_.key_frames_total, 1);
    return Status::OK();
  }
  return Status::NotFound("end of stream");
}

Result<std::vector<DcFrame>> PartialDecoder::ExtractAll(const std::vector<uint8_t>& data) {
  PartialDecoder pd;
  VCD_RETURN_IF_ERROR(pd.Open(data.data(), data.size()));
  std::vector<DcFrame> out;
  for (;;) {
    DcFrame f;
    Status st = pd.NextKeyFrame(&f);
    if (st.code() == StatusCode::kNotFound) break;
    VCD_RETURN_IF_ERROR(st);
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace vcd::video
