#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

/// \file scene_model.h
/// Procedural scene content, the substitute for the paper's real videos.
///
/// A `SceneModel` is a deterministic function of a content seed that maps
/// (time, normalized x, normalized y) to a YCbCr color. Because content is a
/// function of *time* rather than frame index, rendering the same model at
/// different frame rates or resolutions yields visually identical copies —
/// exactly the property real transcoded copies have, and the property the
/// paper's ordinal DC features are designed to survive.

namespace vcd::video {

/// A soft moving blob contributing a Gaussian bump of color to its shot.
struct Blob {
  double cx, cy;        ///< center at shot start, normalized [0,1]
  double vx, vy;        ///< velocity in normalized units per second
  double sigma;         ///< Gaussian radius
  double y_amp;         ///< luma amplitude (may be negative)
  double cb_amp, cr_amp;///< chroma amplitudes
};

/// One camera shot: a background gradient, a texture field, moving blobs and
/// a global pan.
struct Shot {
  double start = 0.0;     ///< seconds from scene start
  double duration = 0.0;  ///< seconds
  double base_y = 0.0, grad_x = 0.0, grad_y = 0.0;
  double base_cb = 0.0, base_cr = 0.0;
  double tex_amp = 0.0, tex_fx = 0.0, tex_fy = 0.0, tex_phase = 0.0;
  double pan_x = 0.0, pan_y = 0.0;  ///< normalized units per second
  std::vector<Blob> blobs;
};

/// Tuning knobs for scene generation.
struct SceneStyle {
  double min_shot_seconds = 2.0;
  double max_shot_seconds = 8.0;
  int min_blobs = 2;
  int max_blobs = 6;
  /// By default, shots draw from a shared pool of stock compositions (the
  /// way real footage reuses a common visual vocabulary), which makes
  /// coarse feature-space partitions collide across unrelated videos.
  /// Setting this generates fully independent compositions instead — the
  /// regime where unrelated videos share almost no cells and the
  /// Hash-Query index is maximally selective.
  bool distinct_content = false;
};

/// \brief A deterministic, shot-structured video content function.
class SceneModel {
 public:
  /// Generates a scene of \p duration_seconds from \p seed.
  static SceneModel Generate(uint64_t seed, double duration_seconds,
                             const SceneStyle& style = SceneStyle());

  /// Total duration in seconds.
  double duration() const { return duration_; }
  /// The generated shots, in temporal order.
  const std::vector<Shot>& shots() const { return shots_; }

  /// Samples the color at time \p t and normalized position (\p x, \p y).
  /// Outputs are in nominal pixel ranges: Y in ~[16, 235], Cb/Cr around 128.
  void Sample(double t, double x, double y, float* y_out, float* cb_out,
              float* cr_out) const;

  /// Luma-only sampling (the feature pipeline only uses luma DC).
  float SampleLuma(double t, double x, double y) const;

 private:
  const Shot& ShotAt(double t) const;

  double duration_ = 0.0;
  std::vector<Shot> shots_;
};

}  // namespace vcd::video
