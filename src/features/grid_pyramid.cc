#include "features/grid_pyramid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace vcd::features {

Result<GridPyramidPartition> GridPyramidPartition::Create(int d, int u,
                                                          PartitionScheme scheme) {
  if (d < 1) return Status::InvalidArgument("d must be >= 1");
  if (u < 1) return Status::InvalidArgument("u must be >= 1");
  // Cell count: u^d grid cells, times 2d pyramid sub-cells for the combined
  // scheme; must fit a CellId.
  uint64_t grid_cells = 1;
  for (int i = 0; i < d; ++i) {
    if (grid_cells > std::numeric_limits<uint32_t>::max() / static_cast<uint64_t>(u)) {
      return Status::InvalidArgument("u^d overflows the cell id space");
    }
    grid_cells *= static_cast<uint64_t>(u);
  }
  uint64_t cells = grid_cells;
  switch (scheme) {
    case PartitionScheme::kGrid:
      break;
    case PartitionScheme::kPyramid:
      cells = static_cast<uint64_t>(2 * d);
      break;
    case PartitionScheme::kGridPyramid:
      if (grid_cells > std::numeric_limits<uint32_t>::max() / (2ULL * d)) {
        return Status::InvalidArgument("2*d*u^d overflows the cell id space");
      }
      cells = 2ULL * d * grid_cells;
      break;
  }
  return GridPyramidPartition(d, u, scheme, cells);
}

uint64_t GridPyramidPartition::GridOrder(const std::vector<float>& f) const {
  uint64_t idx = 0;
  for (int j = 0; j < d_; ++j) {
    const float v = std::clamp(f[static_cast<size_t>(j)], 0.0f, 1.0f);
    int slice = std::min(static_cast<int>(v * u_), u_ - 1);
    idx = idx * static_cast<uint64_t>(u_) + static_cast<uint64_t>(slice);
  }
  return idx;
}

std::vector<float> GridPyramidPartition::GridCellCenter(const std::vector<float>& f) const {
  std::vector<float> center(static_cast<size_t>(d_));
  for (int j = 0; j < d_; ++j) {
    const float v = std::clamp(f[static_cast<size_t>(j)], 0.0f, 1.0f);
    int slice = std::min(static_cast<int>(v * u_), u_ - 1);
    center[static_cast<size_t>(j)] = (static_cast<float>(slice) + 0.5f) / u_;
  }
  return center;
}

int GridPyramidPartition::PyramidOrder(const std::vector<float>& f,
                                       const std::vector<float>& center) const {
  // j_max = argmax_j |f_j - C_j|, ties resolved to the smallest j so the
  // order is deterministic.
  int j_max = 0;
  float best = -1.0f;
  for (int j = 0; j < d_; ++j) {
    const float dev = std::fabs(f[static_cast<size_t>(j)] - center[static_cast<size_t>(j)]);
    if (dev > best) {
      best = dev;
      j_max = j;
    }
  }
  const bool below = f[static_cast<size_t>(j_max)] < center[static_cast<size_t>(j_max)];
  return below ? j_max : j_max + d_;
}

CellId GridPyramidPartition::Assign(const std::vector<float>& f) const {
  VCD_DCHECK(static_cast<int>(f.size()) == d_, "feature dimension mismatch");
  switch (scheme_) {
    case PartitionScheme::kGrid:
      return static_cast<CellId>(GridOrder(f));
    case PartitionScheme::kPyramid: {
      // Pyramid over the whole [0,1]^d space: the "cell" is the space itself
      // with center 0.5^d.
      std::vector<float> center(static_cast<size_t>(d_), 0.5f);
      return static_cast<CellId>(PyramidOrder(f, center));
    }
    case PartitionScheme::kGridPyramid: {
      const uint64_t og = GridOrder(f);
      const int op = PyramidOrder(f, GridCellCenter(f));
      return static_cast<CellId>(2ULL * d_ * og + static_cast<uint64_t>(op));
    }
  }
  return 0;
}

}  // namespace vcd::features
