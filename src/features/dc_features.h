#pragma once

#include <vector>

#include "util/status.h"
#include "video/partial_decoder.h"

/// \file dc_features.h
/// Per-frame feature extraction from key-frame DC maps (paper §III-A):
/// the frame is spatially partitioned into D equal regions, the average DC
/// of each region is min-max normalized to [0,1] (Eq. 1), and `d` of the D
/// values are selected as the frame's feature vector.

namespace vcd::features {

/// Feature extraction configuration.
struct FeatureOptions {
  /// Spatial partition of the frame: grid_rows × grid_cols = D regions.
  /// The paper uses 3×3 (D = 9).
  int grid_rows = 3;
  int grid_cols = 3;
  /// Number of coefficients kept (d ≤ D). The paper sweeps d in [3, 7].
  int d = 5;

  int D() const { return grid_rows * grid_cols; }

  /// Validates ranges.
  Status Validate() const;
};

/// \brief Extracts normalized d-dimensional feature vectors from DC maps.
///
/// The d regions kept follow a fixed priority (center, then corners, then
/// edges of the 3×3 layout) so that every copy of a frame selects the same
/// regions; the paper does not specify the selection and this choice is
/// documented in DESIGN.md.
class DBlockFeatureExtractor {
 public:
  /// Creates an extractor. \p opts must validate.
  static Result<DBlockFeatureExtractor> Create(const FeatureOptions& opts);

  /// The options in effect.
  const FeatureOptions& options() const { return opts_; }

  /// Extracts the feature vector (size d, entries in [0,1]) of \p frame.
  /// A frame whose D averages are all equal maps to the all-0.5 vector.
  std::vector<float> Extract(const vcd::video::DcFrame& frame) const;

  /// Extracts the raw D region averages (un-normalized DC means), exposed
  /// for tests and the baselines' frame-distance computation.
  std::vector<float> RegionAverages(const vcd::video::DcFrame& frame) const;

 private:
  explicit DBlockFeatureExtractor(FeatureOptions opts) : opts_(opts) {}

  FeatureOptions opts_;
  std::vector<int> selection_;  ///< region indices kept, highest priority first
};

}  // namespace vcd::features
