#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

/// \file grid_pyramid.h
/// The grid–pyramid space partition (paper §III-A, Fig. 1): each of the d
/// feature dimensions is cut into u grid slices, and every grid cell is
/// further split into 2d pyramid sub-cells (Pyramid-Technique order), giving
/// `2·d·u^d` cells. A frame's signature is the id of the cell its feature
/// vector falls into: `id = 2d·O_g(f) + O_p(f)`.

namespace vcd::features {

/// A frame signature: the id of the cell containing its feature vector.
using CellId = uint32_t;

/// Which partition to use. Grid-only and pyramid-only exist for the
/// ablation the paper argues in §III-A.
enum class PartitionScheme {
  kGrid,         ///< u^d cells, id = O_g(f)
  kPyramid,      ///< 2d cells, id = O_p(f) over the whole space
  kGridPyramid,  ///< 2d·u^d cells, id = 2d·O_g(f) + O_p(f)
};

/// \brief Maps feature vectors in [0,1]^d to cell ids.
class GridPyramidPartition {
 public:
  /// Creates a partition of [0,1]^\p d with \p u slices per dimension.
  /// Fails unless d ≥ 1, u ≥ 1, and the cell count fits in CellId.
  static Result<GridPyramidPartition> Create(
      int d, int u, PartitionScheme scheme = PartitionScheme::kGridPyramid);

  /// Dimensionality d.
  int d() const { return d_; }
  /// Slices per dimension u.
  int u() const { return u_; }
  /// The scheme in use.
  PartitionScheme scheme() const { return scheme_; }
  /// Total number of cells.
  uint64_t num_cells() const { return num_cells_; }

  /// Returns the cell id of feature vector \p f (size d, entries clamped to
  /// [0,1]).
  CellId Assign(const std::vector<float>& f) const;

  /// Grid order O_g: row-major index of the grid cell of \p f.
  uint64_t GridOrder(const std::vector<float>& f) const;

  /// Pyramid order O_p of \p f within the grid cell centered at \p center:
  /// `j_max = argmax_j |f_j − C_j|`, O_p = j_max when f_{j_max} < C_{j_max},
  /// else j_max + d.
  int PyramidOrder(const std::vector<float>& f, const std::vector<float>& center) const;

  /// Center of the grid cell containing \p f.
  std::vector<float> GridCellCenter(const std::vector<float>& f) const;

 private:
  GridPyramidPartition(int d, int u, PartitionScheme scheme, uint64_t num_cells)
      : d_(d), u_(u), scheme_(scheme), num_cells_(num_cells) {}

  int d_;
  int u_;
  PartitionScheme scheme_;
  uint64_t num_cells_;
};

}  // namespace vcd::features
