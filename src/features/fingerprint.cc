#include "features/fingerprint.h"

namespace vcd::features {

Result<FrameFingerprinter> FrameFingerprinter::Create(const FingerprintOptions& opts) {
  auto ex = DBlockFeatureExtractor::Create(opts.feature);
  if (!ex.ok()) return ex.status();
  auto part = GridPyramidPartition::Create(opts.feature.d, opts.u, opts.scheme);
  if (!part.ok()) return part.status();
  return FrameFingerprinter(std::move(ex).value(), std::move(part).value());
}

CellId FrameFingerprinter::Fingerprint(const vcd::video::DcFrame& frame) const {
  return partition_.Assign(extractor_.Extract(frame));
}

std::vector<CellId> FrameFingerprinter::FingerprintSequence(
    const std::vector<vcd::video::DcFrame>& frames) const {
  std::vector<CellId> out;
  out.reserve(frames.size());
  for (const auto& f : frames) out.push_back(Fingerprint(f));
  return out;
}

}  // namespace vcd::features
