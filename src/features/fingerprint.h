#pragma once

#include <vector>

#include "features/dc_features.h"
#include "features/grid_pyramid.h"
#include "util/status.h"
#include "video/partial_decoder.h"

/// \file fingerprint.h
/// End-to-end frame fingerprinting: key-frame DC map → normalized d-dim
/// feature → grid–pyramid cell id (the 1-dimensional frame signature the
/// whole detection pipeline operates on; paper §III).

namespace vcd::features {

/// Combined configuration of the fingerprint pipeline.
struct FingerprintOptions {
  FeatureOptions feature;
  int u = 4;  ///< grid slices per dimension
  PartitionScheme scheme = PartitionScheme::kGridPyramid;
};

/// \brief Maps key frames to cell-id signatures.
class FrameFingerprinter {
 public:
  /// Creates a fingerprinter; fails on invalid options.
  static Result<FrameFingerprinter> Create(const FingerprintOptions& opts);

  /// Signature of one key frame.
  CellId Fingerprint(const vcd::video::DcFrame& frame) const;

  /// Signatures of a whole key-frame sequence.
  std::vector<CellId> FingerprintSequence(
      const std::vector<vcd::video::DcFrame>& frames) const;

  /// Number of distinct cell ids the partition can produce.
  uint64_t num_cells() const { return partition_.num_cells(); }

  /// The underlying feature extractor.
  const DBlockFeatureExtractor& extractor() const { return extractor_; }
  /// The underlying space partition.
  const GridPyramidPartition& partition() const { return partition_; }

 private:
  FrameFingerprinter(DBlockFeatureExtractor ex, GridPyramidPartition part)
      : extractor_(std::move(ex)), partition_(std::move(part)) {}

  DBlockFeatureExtractor extractor_;
  GridPyramidPartition partition_;
};

}  // namespace vcd::features
