#include "features/dc_features.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vcd::features {

Status FeatureOptions::Validate() const {
  if (grid_rows < 1 || grid_cols < 1) {
    return Status::InvalidArgument("grid must have at least one region");
  }
  if (d < 1 || d > D()) {
    return Status::InvalidArgument("d must be in [1, grid_rows*grid_cols]");
  }
  return Status::OK();
}

Result<DBlockFeatureExtractor> DBlockFeatureExtractor::Create(const FeatureOptions& opts) {
  VCD_RETURN_IF_ERROR(opts.Validate());
  DBlockFeatureExtractor ex(opts);
  // Selection priority: regions ordered by distance from the grid center
  // (center first, then corners before edge midpoints at equal ring via the
  // tie-break below), deterministic across copies.
  const int rows = opts.grid_rows, cols = opts.grid_cols;
  std::vector<int> order(static_cast<size_t>(rows * cols));
  std::iota(order.begin(), order.end(), 0);
  const double cy = (rows - 1) / 2.0, cx = (cols - 1) / 2.0;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double ay = a / cols - cy, ax = a % cols - cx;
    const double by = b / cols - cy, bx = b % cols - cx;
    const double da = ay * ay + ax * ax, db = by * by + bx * bx;
    if (da != db) return da < db;
    return a < b;
  });
  // Corners ahead of edge midpoints: for the 3x3 default the distance sort
  // already yields center < edges < corners; we want corners before edges,
  // so order the non-center ring by descending distance.
  std::stable_sort(order.begin() + 1, order.end(), [&](int a, int b) {
    const double ay = a / cols - cy, ax = a % cols - cx;
    const double by = b / cols - cy, bx = b % cols - cx;
    const double da = ay * ay + ax * ax, db = by * by + bx * bx;
    if (da != db) return da > db;
    return a < b;
  });
  ex.selection_.assign(order.begin(), order.begin() + opts.d);
  return ex;
}

std::vector<float> DBlockFeatureExtractor::RegionAverages(
    const vcd::video::DcFrame& frame) const {
  const int rows = opts_.grid_rows, cols = opts_.grid_cols;
  std::vector<float> sums(static_cast<size_t>(rows * cols), 0.0f);
  std::vector<int> counts(static_cast<size_t>(rows * cols), 0);
  for (int by = 0; by < frame.blocks_y; ++by) {
    const int r = std::min(by * rows / frame.blocks_y, rows - 1);
    for (int bx = 0; bx < frame.blocks_x; ++bx) {
      const int c = std::min(bx * cols / frame.blocks_x, cols - 1);
      sums[static_cast<size_t>(r) * cols + c] += frame.At(bx, by);
      ++counts[static_cast<size_t>(r) * cols + c];
    }
  }
  for (size_t i = 0; i < sums.size(); ++i) {
    if (counts[i] > 0) sums[i] /= static_cast<float>(counts[i]);
  }
  return sums;
}

std::vector<float> DBlockFeatureExtractor::Extract(
    const vcd::video::DcFrame& frame) const {
  std::vector<float> avg = RegionAverages(frame);
  const auto [mn_it, mx_it] = std::minmax_element(avg.begin(), avg.end());
  const float mn = *mn_it, mx = *mx_it;
  std::vector<float> out(selection_.size());
  if (mx - mn <= 1e-6f) {
    // Flat frame: Eq. 1 is undefined; map to the cell-space center so all
    // copies of a flat frame still collide.
    std::fill(out.begin(), out.end(), 0.5f);
    return out;
  }
  for (size_t i = 0; i < selection_.size(); ++i) {
    out[i] = (avg[static_cast<size_t>(selection_[i])] - mn) / (mx - mn);
  }
  return out;
}

}  // namespace vcd::features
