#pragma once

#include <cmath>
#include <vector>

#include "features/dc_features.h"
#include "video/partial_decoder.h"

/// \file feature_stream.h
/// Shared plumbing for the baseline subsequence matchers (paper §VI-E).
/// Both baselines consume the *same* compressed-domain per-key-frame feature
/// vectors as our method ("To provide a fair comparison, we also use our
/// compressed domain feature extraction method").

namespace vcd::baseline {

/// One key frame's normalized d-dimensional feature.
using FeatureVec = std::vector<float>;
/// A sequence of key-frame features.
using FeatureSeq = std::vector<FeatureVec>;

/// Mean absolute difference between two feature vectors (in [0,1] because
/// features are normalized). Sizes must match.
inline double FrameDistance(const FeatureVec& a, const FeatureVec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return a.empty() ? 0.0 : s / static_cast<double>(a.size());
}

/// Extracts the feature sequence of a key-frame stream.
inline FeatureSeq ExtractFeatureSeq(const features::DBlockFeatureExtractor& extractor,
                                    const std::vector<vcd::video::DcFrame>& frames) {
  FeatureSeq out;
  out.reserve(frames.size());
  for (const auto& f : frames) out.push_back(extractor.Extract(f));
  return out;
}

}  // namespace vcd::baseline
