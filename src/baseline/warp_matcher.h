#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "baseline/feature_stream.h"
#include "core/match.h"
#include "util/status.h"

/// \file warp_matcher.h
/// The `Warp` baseline (Chiu et al. [6] as run in paper §VI-E): dynamic time
/// warping with a Sakoe–Chiba band of width `r` between each query and the
/// stream segment ending at the current position. Warping tolerates *local*
/// temporal variation (frame-rate drift, small speed changes) at a CPU cost
/// that grows with `r`, but not wholesale segment reordering — the failure
/// mode Figures 12/15 expose.

namespace vcd::baseline {

/// Warp matcher configuration.
struct WarpMatcherOptions {
  /// Maximum normalized DTW distance for a detection.
  double distance_threshold = 0.10;
  /// Sakoe–Chiba band half-width in key frames.
  int warp_width = 5;
  /// Key frames between successive comparisons (the sliding gap).
  int slide_gap = 1;
  /// Suppress repeated reports of a query for this many seconds; negative =
  /// the query's own duration.
  double report_cooldown_seconds = -1.0;
};

/// \brief Streaming banded-DTW subsequence matcher.
class WarpMatcher {
 public:
  /// Creates a matcher; validates options.
  static Result<WarpMatcher> Create(const WarpMatcherOptions& opts);

  /// Registers a query by its feature sequence and playback duration.
  Status AddQuery(int id, FeatureSeq features, double duration_seconds);

  /// Feeds one stream key frame.
  void ProcessKeyFrame(int64_t frame_index, double timestamp, FeatureVec feature);

  /// Matches reported so far.
  const std::vector<core::Match>& matches() const { return matches_; }

  /// Total DTW cell evaluations (the cost driver; grows with r).
  int64_t cell_evaluations() const { return cell_evaluations_; }

  /// Clears stream state (queries are kept).
  void ResetStream();

  /// Banded DTW distance between two feature sequences, normalized by the
  /// warping path length. Exposed for tests and the Table-style experiment
  /// drivers. \p width is the band half-width.
  static double BandedDtw(const FeatureSeq& a, const FeatureSeq& b, int width,
                          int64_t* cells = nullptr);

 private:
  struct Query {
    int id;
    FeatureSeq features;
    double duration_seconds;
    double suppress_until = -1.0;
  };
  struct BufEntry {
    int64_t frame_index;
    double timestamp;
    FeatureVec feature;
  };

  explicit WarpMatcher(const WarpMatcherOptions& opts) : opts_(opts) {}

  void TryMatch(Query& q);

  WarpMatcherOptions opts_;
  std::vector<Query> queries_;
  size_t max_query_len_ = 0;
  std::deque<BufEntry> buffer_;
  int64_t frames_seen_ = 0;
  int64_t cell_evaluations_ = 0;
  std::vector<core::Match> matches_;
};

}  // namespace vcd::baseline
