#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "baseline/feature_stream.h"
#include "core/match.h"
#include "util/status.h"

/// \file seq_matcher.h
/// The `Seq` baseline (Hampapur et al. [1] as run in paper §VI-E): each
/// query slides over the stream with a fixed-size window; the dissimilarity
/// of a stream segment and the query is the *average frame-pair distance*
/// under rigid frame-by-frame alignment. The window advances by the sliding
/// gap (the "basic window" of the comparison), and a segment whose distance
/// falls at or below the threshold is reported as a copy.

namespace vcd::baseline {

/// Seq matcher configuration.
struct SeqMatcherOptions {
  /// Maximum average frame distance for a detection.
  double distance_threshold = 0.10;
  /// Key frames between successive comparisons (the sliding gap).
  int slide_gap = 1;
  /// Suppress repeated reports of a query for this many seconds; negative =
  /// the query's own duration.
  double report_cooldown_seconds = -1.0;
};

/// \brief Streaming rigid-alignment subsequence matcher.
class SeqMatcher {
 public:
  /// Creates a matcher. \p opts.slide_gap must be ≥ 1.
  static Result<SeqMatcher> Create(const SeqMatcherOptions& opts);

  /// Registers a query by its feature sequence and playback duration.
  Status AddQuery(int id, FeatureSeq features, double duration_seconds);

  /// Feeds one stream key frame.
  void ProcessKeyFrame(int64_t frame_index, double timestamp, FeatureVec feature);

  /// Matches reported so far.
  const std::vector<core::Match>& matches() const { return matches_; }

  /// Total frame-pair distance evaluations (the cost driver).
  int64_t frame_comparisons() const { return frame_comparisons_; }

  /// Clears stream state (queries are kept).
  void ResetStream();

 private:
  struct Query {
    int id;
    FeatureSeq features;
    double duration_seconds;
    double suppress_until = -1.0;
  };
  struct BufEntry {
    int64_t frame_index;
    double timestamp;
    FeatureVec feature;
  };

  explicit SeqMatcher(const SeqMatcherOptions& opts) : opts_(opts) {}

  void TryMatch(Query& q);

  SeqMatcherOptions opts_;
  std::vector<Query> queries_;
  size_t max_query_len_ = 0;
  std::deque<BufEntry> buffer_;
  int64_t frames_seen_ = 0;
  int64_t frame_comparisons_ = 0;
  std::vector<core::Match> matches_;
};

}  // namespace vcd::baseline
