#include "baseline/seq_matcher.h"

namespace vcd::baseline {

Result<SeqMatcher> SeqMatcher::Create(const SeqMatcherOptions& opts) {
  if (opts.slide_gap < 1) return Status::InvalidArgument("slide_gap must be >= 1");
  if (opts.distance_threshold < 0) {
    return Status::InvalidArgument("distance threshold must be non-negative");
  }
  return SeqMatcher(opts);
}

Status SeqMatcher::AddQuery(int id, FeatureSeq features, double duration_seconds) {
  if (features.empty()) return Status::InvalidArgument("query has no frames");
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("query duration must be positive");
  }
  for (const Query& q : queries_) {
    if (q.id == id) return Status::AlreadyExists("query id already registered");
  }
  max_query_len_ = std::max(max_query_len_, features.size());
  queries_.push_back(Query{id, std::move(features), duration_seconds, -1.0});
  return Status::OK();
}

void SeqMatcher::TryMatch(Query& q) {
  const size_t L = q.features.size();
  if (buffer_.size() < L) return;
  const size_t off = buffer_.size() - L;
  double total = 0.0;
  for (size_t i = 0; i < L; ++i) {
    total += FrameDistance(buffer_[off + i].feature, q.features[i]);
    ++frame_comparisons_;
  }
  const double dist = total / static_cast<double>(L);
  if (dist > opts_.distance_threshold) return;
  const BufEntry& first = buffer_[off];
  const BufEntry& last = buffer_.back();
  const double cooldown = opts_.report_cooldown_seconds < 0 ? q.duration_seconds
                                                            : opts_.report_cooldown_seconds;
  if (cooldown > 0 && last.timestamp < q.suppress_until) return;
  q.suppress_until = last.timestamp + cooldown;
  core::Match m;
  m.query_id = q.id;
  m.start_frame = first.frame_index;
  m.end_frame = last.frame_index;
  m.start_time = first.timestamp;
  m.end_time = last.timestamp;
  m.similarity = 1.0 - dist;
  matches_.push_back(m);
}

void SeqMatcher::ProcessKeyFrame(int64_t frame_index, double timestamp,
                                 FeatureVec feature) {
  buffer_.push_back(BufEntry{frame_index, timestamp, std::move(feature)});
  while (buffer_.size() > max_query_len_ && max_query_len_ > 0) buffer_.pop_front();
  ++frames_seen_;
  if (frames_seen_ % opts_.slide_gap != 0) return;
  for (Query& q : queries_) TryMatch(q);
}

void SeqMatcher::ResetStream() {
  buffer_.clear();
  frames_seen_ = 0;
  frame_comparisons_ = 0;
  matches_.clear();
  for (Query& q : queries_) q.suppress_until = -1.0;
}

}  // namespace vcd::baseline
