#include "baseline/warp_matcher.h"

#include <algorithm>
#include <limits>

namespace vcd::baseline {

Result<WarpMatcher> WarpMatcher::Create(const WarpMatcherOptions& opts) {
  if (opts.slide_gap < 1) return Status::InvalidArgument("slide_gap must be >= 1");
  if (opts.warp_width < 0) return Status::InvalidArgument("warp_width must be >= 0");
  if (opts.distance_threshold < 0) {
    return Status::InvalidArgument("distance threshold must be non-negative");
  }
  return WarpMatcher(opts);
}

Status WarpMatcher::AddQuery(int id, FeatureSeq features, double duration_seconds) {
  if (features.empty()) return Status::InvalidArgument("query has no frames");
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("query duration must be positive");
  }
  for (const Query& q : queries_) {
    if (q.id == id) return Status::AlreadyExists("query id already registered");
  }
  max_query_len_ = std::max(max_query_len_, features.size());
  queries_.push_back(Query{id, std::move(features), duration_seconds, -1.0});
  return Status::OK();
}

double WarpMatcher::BandedDtw(const FeatureSeq& a, const FeatureSeq& b, int width,
                              int64_t* cells) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0 || m == 0) return std::numeric_limits<double>::infinity();
  // Band must at least cover the length difference or no path exists.
  const int w = std::max(width, std::abs(n - m));
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Two-row rolling DP over cumulative cost; steps counted to normalize by
  // the warping path length.
  std::vector<double> prev(static_cast<size_t>(m) + 1, kInf);
  std::vector<double> cur(static_cast<size_t>(m) + 1, kInf);
  std::vector<int32_t> prev_len(static_cast<size_t>(m) + 1, 0);
  std::vector<int32_t> cur_len(static_cast<size_t>(m) + 1, 0);
  prev[0] = 0.0;
  int64_t evals = 0;
  for (int i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    cur[0] = kInf;
    const int jlo = std::max(1, i - w);
    const int jhi = std::min(m, i + w);
    for (int j = jlo; j <= jhi; ++j) {
      const double d = FrameDistance(a[static_cast<size_t>(i - 1)],
                                     b[static_cast<size_t>(j - 1)]);
      ++evals;
      double best = prev[static_cast<size_t>(j - 1)];  // diagonal
      int32_t len = prev_len[static_cast<size_t>(j - 1)];
      if (prev[static_cast<size_t>(j)] < best) {  // insertion
        best = prev[static_cast<size_t>(j)];
        len = prev_len[static_cast<size_t>(j)];
      }
      if (cur[static_cast<size_t>(j - 1)] < best) {  // deletion
        best = cur[static_cast<size_t>(j - 1)];
        len = cur_len[static_cast<size_t>(j - 1)];
      }
      if (best < kInf) {
        cur[static_cast<size_t>(j)] = best + d;
        cur_len[static_cast<size_t>(j)] = len + 1;
      }
    }
    std::swap(prev, cur);
    std::swap(prev_len, cur_len);
  }
  if (cells != nullptr) *cells += evals;
  const double total = prev[static_cast<size_t>(m)];
  const int32_t len = prev_len[static_cast<size_t>(m)];
  if (total >= kInf || len == 0) return kInf;
  return total / static_cast<double>(len);
}

void WarpMatcher::TryMatch(Query& q) {
  const size_t L = q.features.size();
  if (buffer_.size() < L) return;
  const size_t off = buffer_.size() - L;
  FeatureSeq segment;
  segment.reserve(L);
  for (size_t i = 0; i < L; ++i) segment.push_back(buffer_[off + i].feature);
  const double dist =
      BandedDtw(segment, q.features, opts_.warp_width, &cell_evaluations_);
  if (dist > opts_.distance_threshold) return;
  const BufEntry& first = buffer_[off];
  const BufEntry& last = buffer_.back();
  const double cooldown = opts_.report_cooldown_seconds < 0 ? q.duration_seconds
                                                            : opts_.report_cooldown_seconds;
  if (cooldown > 0 && last.timestamp < q.suppress_until) return;
  q.suppress_until = last.timestamp + cooldown;
  core::Match m;
  m.query_id = q.id;
  m.start_frame = first.frame_index;
  m.end_frame = last.frame_index;
  m.start_time = first.timestamp;
  m.end_time = last.timestamp;
  m.similarity = 1.0 - dist;
  matches_.push_back(m);
}

void WarpMatcher::ProcessKeyFrame(int64_t frame_index, double timestamp,
                                  FeatureVec feature) {
  buffer_.push_back(BufEntry{frame_index, timestamp, std::move(feature)});
  while (buffer_.size() > max_query_len_ && max_query_len_ > 0) buffer_.pop_front();
  ++frames_seen_;
  if (frames_seen_ % opts_.slide_gap != 0) return;
  for (Query& q : queries_) TryMatch(q);
}

void WarpMatcher::ResetStream() {
  buffer_.clear();
  frames_seen_ = 0;
  cell_evaluations_ = 0;
  matches_.clear();
  for (Query& q : queries_) q.suppress_until = -1.0;
}

}  // namespace vcd::baseline
