#include "workload/experiment.h"

#include <cmath>

#include "util/stopwatch.h"

namespace vcd::workload {

int64_t WindowFrames(double window_seconds, double fps) {
  return static_cast<int64_t>(std::lround(window_seconds * fps));
}

Status SubscribeQueries(const Dataset& ds, core::CopyDetector* detector, int m) {
  const int n = m < 0 ? ds.num_queries() : std::min(m, ds.num_queries());
  for (int qi = 0; qi < n; ++qi) {
    const ShortVideoSpec& spec = ds.query_spec(qi);
    VCD_RETURN_IF_ERROR(detector->AddQuery(spec.id, ds.QueryKeyFrames(qi),
                                           spec.duration_seconds));
  }
  return Status::OK();
}

Result<RunResult> RunDetector(core::CopyDetector* detector, const StreamData& stream) {
  detector->ResetStream();
  Stopwatch timer;
  for (const auto& frame : stream.key_frames) {
    VCD_RETURN_IF_ERROR(detector->ProcessKeyFrame(frame));
  }
  VCD_RETURN_IF_ERROR(detector->Finish());
  RunResult r;
  r.cpu_seconds = timer.ElapsedSeconds();
  r.stats = detector->stats();
  r.num_matches = static_cast<int>(detector->matches().size());
  const int64_t w_frames =
      WindowFrames(detector->config().window_seconds, stream.fps);
  r.eval = core::EvaluateMatches(detector->matches(), stream.truth, w_frames);
  return r;
}

namespace {

/// Shared body of the two baseline drivers.
template <typename Matcher>
Result<RunResult> RunBaseline(Matcher* matcher, const Dataset& ds,
                              const StreamData& stream,
                              const features::FeatureOptions& feat,
                              double window_seconds_for_eval, int m) {
  auto extractor = features::DBlockFeatureExtractor::Create(feat);
  if (!extractor.ok()) return extractor.status();
  const int n = m < 0 ? ds.num_queries() : std::min(m, ds.num_queries());
  for (int qi = 0; qi < n; ++qi) {
    const ShortVideoSpec& spec = ds.query_spec(qi);
    VCD_RETURN_IF_ERROR(matcher->AddQuery(
        spec.id, baseline::ExtractFeatureSeq(*extractor, ds.QueryKeyFrames(qi)),
        spec.duration_seconds));
  }
  Stopwatch timer;
  for (const auto& frame : stream.key_frames) {
    matcher->ProcessKeyFrame(frame.frame_index, frame.timestamp,
                             extractor->Extract(frame));
  }
  RunResult r;
  r.cpu_seconds = timer.ElapsedSeconds();
  r.num_matches = static_cast<int>(matcher->matches().size());
  const int64_t w_frames = WindowFrames(window_seconds_for_eval, stream.fps);
  r.eval = core::EvaluateMatches(matcher->matches(), stream.truth, w_frames);
  return r;
}

}  // namespace

Result<RunResult> RunSeqBaseline(const Dataset& ds, const StreamData& stream,
                                 const baseline::SeqMatcherOptions& opts,
                                 const features::FeatureOptions& feat, int m) {
  auto matcher = baseline::SeqMatcher::Create(opts);
  if (!matcher.ok()) return matcher.status();
  // The sliding gap in seconds, for the position rule.
  const double key_spacing = stream.key_frames.size() > 1
                                 ? stream.key_frames[1].timestamp -
                                       stream.key_frames[0].timestamp
                                 : 0.5;
  return RunBaseline(&matcher.value(), ds, stream, feat,
                     opts.slide_gap * key_spacing, m);
}

Result<RunResult> RunWarpBaseline(const Dataset& ds, const StreamData& stream,
                                  const baseline::WarpMatcherOptions& opts,
                                  const features::FeatureOptions& feat, int m) {
  auto matcher = baseline::WarpMatcher::Create(opts);
  if (!matcher.ok()) return matcher.status();
  const double key_spacing = stream.key_frames.size() > 1
                                 ? stream.key_frames[1].timestamp -
                                       stream.key_frames[0].timestamp
                                 : 0.5;
  return RunBaseline(&matcher.value(), ds, stream, feat,
                     opts.slide_gap * key_spacing, m);
}

}  // namespace vcd::workload
