#include "workload/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/rng.h"
#include "video/codec_internal.h"
#include "video/synthetic.h"

namespace vcd::workload {
namespace {

using vcd::video::DcFrame;
using vcd::video::SceneModel;

/// Deterministic hash → uniform double in [0, 1).
double HashToUnit(uint64_t x) {
  SplitMix64 sm(x);
  return static_cast<double>(sm.Next() >> 11) * 0x1.0p-53;
}

/// Deterministic hash → approximately standard normal (Irwin–Hall of 4).
double HashToGaussian(uint64_t x) {
  SplitMix64 sm(x);
  double s = 0.0;
  for (int i = 0; i < 4; ++i) {
    s += static_cast<double>(sm.Next() >> 11) * 0x1.0p-53;
  }
  return (s - 2.0) * std::sqrt(3.0);  // variance 4/12 → scale to 1
}

/// A piece of the stream timeline.
struct Segment {
  double start = 0.0;     ///< stream seconds
  double duration = 0.0;
  const SceneModel* model = nullptr;
  double content_offset = 0.0;
  double content_fps = 29.97;  ///< the source material's frame grid
  const EditSpec* edit = nullptr;  ///< nullptr: no distortion (base or VS1)
  std::vector<std::pair<double, double>> playlist;  ///< reorder map
  int short_query_id = 0;  ///< >0 when this segment is an inserted short
};

/// Maps stream time inside \p seg to content time of its model.
///
/// Video content is made of discrete frames: whatever chain of edits a copy
/// went through, every one of its frames IS some frame of the source. The
/// time mapping therefore composes (a) the segment-reorder playlist, (b) the
/// re-encode frame grid (a PAL copy only has frames every 1/25 s), and (c) a
/// final snap to the source material's own frame grid.
double ContentTime(const Segment& seg, double stream_t) {
  double local = std::clamp(stream_t - seg.start, 0.0, seg.duration);
  double ct;
  if (!seg.playlist.empty()) {
    ct = seg.playlist.back().first + seg.playlist.back().second;  // fallback
    double cum = 0.0;
    for (const auto& [piece_start, piece_dur] : seg.playlist) {
      if (local < cum + piece_dur) {
        ct = piece_start + (local - cum);
        break;
      }
      cum += piece_dur;
    }
  } else {
    ct = seg.content_offset + local;
  }
  if (seg.edit != nullptr && seg.edit->source_fps > 0) {
    ct = std::floor(ct * seg.edit->source_fps) / seg.edit->source_fps;
  }
  // Content exists only on the source frame grid (the epsilon guards
  // against float rounding for times already on the grid).
  ct = std::floor(ct * seg.content_fps + 1e-6) / seg.content_fps;
  return ct;
}

/// Samples one DC map at stream time \p t under segment \p seg's
/// distortions, mimicking what Encoder+PartialDecoder produce.
void SampleDcMap(const Segment& seg, double t, int width, int height,
                 int64_t frame_index, DcFrame* out) {
  const int blocks_x = vcd::video::internal::PadTo8(width) / 8;
  const int blocks_y = vcd::video::internal::PadTo8(height) / 8;
  out->blocks_x = blocks_x;
  out->blocks_y = blocks_y;
  out->frame_index = frame_index;
  out->dc.assign(static_cast<size_t>(blocks_x) * blocks_y, 0.0f);
  const double ct = ContentTime(seg, t);
  const EditSpec* e = seg.edit;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      double sum = 0.0;
      for (int sy = 0; sy < 2; ++sy) {
        for (int sx = 0; sx < 2; ++sx) {
          double px = bx * 8 + 2 + sx * 4;
          double py = by * 8 + 2 + sy * 4;
          if (e != nullptr && e->sample_jitter > 0) {
            // Resolution-change resampling: sample positions shift by a
            // deterministic sub-block offset.
            const uint64_t h = e->seed ^ (static_cast<uint64_t>(bx) << 40) ^
                               (static_cast<uint64_t>(by) << 20) ^
                               static_cast<uint64_t>(sy * 2 + sx);
            px += (HashToUnit(h) - 0.5) * 2.0 * e->sample_jitter * 8.0;
            py += (HashToUnit(h ^ 0x1234567ULL) - 0.5) * 2.0 * e->sample_jitter * 8.0;
          }
          double nx = std::clamp(px / width, 0.0, 1.0);
          double ny = std::clamp(py / height, 0.0, 1.0);
          if (e != nullptr && e->crop_fraction > 0) {
            // Overscan crop of the re-encoded copy: the visible window is
            // the content's inner (1−2c) region, so the copy's normalized
            // coordinates map into it.
            nx = e->crop_fraction + nx * (1.0 - 2.0 * e->crop_fraction);
            ny = e->crop_fraction + ny * (1.0 - 2.0 * e->crop_fraction);
          }
          sum += seg.model->SampleLuma(ct, nx, ny);
        }
      }
      double mean = sum / 4.0;
      if (e != nullptr) {
        mean = 128.0 + (mean - 128.0) * e->contrast_gain + e->brightness_delta;
        if (e->noise_sigma > 0) {
          const uint64_t h = e->seed ^ (static_cast<uint64_t>(frame_index) << 24) ^
                             (static_cast<uint64_t>(by) * 977 + bx);
          // Block-mean noise: per-pixel noise attenuated by the 64-pixel
          // average (σ/8), like the pixel path.
          mean += HashToGaussian(h) * e->noise_sigma / 8.0;
        }
        mean = std::clamp(mean, 0.0, 255.0);
      }
      double dc = 8.0 * (mean - 128.0);
      // Edited copies are re-encoded: their DC passes a second, coarser
      // quantization, the dominant fidelity loss of real transcodes.
      const int step = vcd::video::internal::kDcQuantStep * (e != nullptr ? 2 : 1);
      dc = std::round(dc / step) * step;
      out->dc[static_cast<size_t>(by) * blocks_x + bx] = static_cast<float>(dc);
    }
  }
}

/// Builds the segment-reorder playlist for a short of \p duration seconds.
std::vector<std::pair<double, double>> MakePlaylist(double duration,
                                                    double granularity,
                                                    uint64_t seed) {
  std::vector<std::pair<double, double>> pieces;
  for (double t = 0; t < duration; t += granularity) {
    pieces.emplace_back(t, std::min(granularity, duration - t));
  }
  if (pieces.size() < 2) return {};
  Rng rng(seed);
  std::vector<size_t> order(pieces.size());
  std::iota(order.begin(), order.end(), 0);
  do {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Uniform(i)]);
    }
  } while (std::is_sorted(order.begin(), order.end()));
  std::vector<std::pair<double, double>> out;
  out.reserve(pieces.size());
  for (size_t i : order) out.push_back(pieces[i]);
  return out;
}

}  // namespace

DatasetOptions DatasetOptions::Scaled(double scale) const {
  DatasetOptions o = *this;
  o.num_shorts = std::max(1, static_cast<int>(std::lround(num_shorts * scale)));
  o.total_seconds = total_seconds * scale;
  return o;
}

Status DatasetOptions::Validate() const {
  if (num_shorts < 1) return Status::InvalidArgument("need at least one short");
  if (num_query_only < 0) return Status::InvalidArgument("num_query_only < 0");
  if (min_short_seconds <= 0 || max_short_seconds < min_short_seconds) {
    return Status::InvalidArgument("bad short duration range");
  }
  if (num_base_films < 1) return Status::InvalidArgument("need a base film");
  if (fps <= 0 || gop_size < 1 || width < 16 || height < 16) {
    return Status::InvalidArgument("bad stream encoding parameters");
  }
  if (total_seconds <= num_shorts * max_short_seconds) {
    return Status::InvalidArgument(
        "total_seconds too small for the requested shorts");
  }
  return Status::OK();
}

Result<Dataset> Dataset::Build(const DatasetOptions& opts) {
  VCD_RETURN_IF_ERROR(opts.Validate());
  Dataset ds;
  ds.opts_ = opts;
  Rng rng(opts.seed);
  const int total_queries = opts.num_shorts + opts.num_query_only;
  for (int i = 0; i < total_queries; ++i) {
    ShortVideoSpec spec;
    spec.id = i + 1;
    spec.content_seed = rng.Next();
    spec.duration_seconds =
        rng.UniformDouble(opts.min_short_seconds, opts.max_short_seconds);
    if (i < opts.num_shorts) {
      ds.shorts_.push_back(spec);
    } else {
      ds.query_only_.push_back(spec);
    }
    // VS2 distortions per query (also used by EditedQueryKeyFrames).
    EditSpec e;
    const double mag = rng.UniformDouble(0.4, 1.0);
    e.brightness_delta = (rng.Bernoulli(0.5) ? 1 : -1) * mag * opts.vs2_brightness_max;
    e.contrast_gain = rng.UniformDouble(1.0 - opts.vs2_contrast_spread,
                                        1.0 + opts.vs2_contrast_spread);
    e.noise_sigma = rng.UniformDouble(1.0, opts.vs2_noise_sigma_max);
    e.source_fps = opts.vs2_source_fps;
    e.sample_jitter = opts.vs2_jitter;
    e.crop_fraction = rng.UniformDouble(opts.vs2_crop_max / 3.0, opts.vs2_crop_max);
    e.reorder_segment_seconds =
        rng.UniformDouble(opts.vs2_reorder_min_seconds, opts.vs2_reorder_max_seconds);
    e.seed = rng.Next();
    ds.edits_.push_back(e);
  }
  for (int f = 0; f < opts.num_base_films; ++f) ds.base_seeds_.push_back(rng.Next());
  // Random insertion gaps: n+1 exponential weights normalized to the base
  // time budget.
  double inserted = 0.0;
  for (const auto& s : ds.shorts_) inserted += s.duration_seconds;
  const double base_total = opts.total_seconds - inserted;
  if (base_total <= 0) return Status::InvalidArgument("shorts overflow the stream");
  std::vector<double> weights(static_cast<size_t>(opts.num_shorts) + 1);
  double wsum = 0.0;
  for (auto& w : weights) {
    w = -std::log(1.0 - rng.UniformDouble());
    wsum += w;
  }
  for (auto& w : weights) w = w / wsum * base_total;
  ds.insert_gaps_ = std::move(weights);
  ds.insert_order_.resize(static_cast<size_t>(opts.num_shorts));
  std::iota(ds.insert_order_.begin(), ds.insert_order_.end(), 0);
  for (size_t i = ds.insert_order_.size(); i > 1; --i) {
    std::swap(ds.insert_order_[i - 1], ds.insert_order_[rng.Uniform(i)]);
  }
  return ds;
}

const ShortVideoSpec& Dataset::query_spec(int qi) const {
  VCD_CHECK(qi >= 0 && qi < num_queries(), "query index out of range");
  if (qi < num_shorts()) return shorts_[static_cast<size_t>(qi)];
  return query_only_[static_cast<size_t>(qi - num_shorts())];
}

const EditSpec& Dataset::edit_spec(int qi) const {
  VCD_CHECK(qi >= 0 && qi < num_queries(), "query index out of range");
  return edits_[static_cast<size_t>(qi)];
}

SceneModel Dataset::MakeShortModel(const ShortVideoSpec& spec) const {
  vcd::video::SceneStyle style;
  style.distinct_content = opts_.distinct_content;
  // +1 s slack so frame-rate snapping near the end stays in range.
  return SceneModel::Generate(spec.content_seed, spec.duration_seconds + 1.0, style);
}

std::vector<DcFrame> Dataset::QueryKeyFrames(int qi) const {
  const ShortVideoSpec& spec = query_spec(qi);
  const SceneModel model = MakeShortModel(spec);
  vcd::video::RenderOptions ro;
  ro.width = opts_.width;
  ro.height = opts_.height;
  ro.fps = opts_.fps;
  auto frames =
      vcd::video::RenderDcFrames(model, 0.0, spec.duration_seconds, ro, opts_.gop_size);
  VCD_CHECK(frames.ok(), frames.status().ToString());
  return std::move(frames).value();
}

std::vector<DcFrame> Dataset::EditedQueryKeyFrames(int qi) const {
  const ShortVideoSpec& spec = query_spec(qi);
  const EditSpec& edit = edits_[static_cast<size_t>(qi)];
  const SceneModel model = MakeShortModel(spec);
  Segment seg;
  seg.start = 0.0;
  seg.duration = spec.duration_seconds;
  seg.model = &model;
  seg.content_fps = opts_.fps;
  seg.edit = &edit;
  if (edit.reorder_segment_seconds > 0) {
    seg.playlist =
        MakePlaylist(spec.duration_seconds, edit.reorder_segment_seconds, edit.seed);
  }
  // The edited copy is re-encoded at the edit's frame rate (PAL).
  const double fps = edit.source_fps > 0 ? edit.source_fps : opts_.fps;
  const int64_t nframes =
      static_cast<int64_t>(std::floor(spec.duration_seconds * fps));
  std::vector<DcFrame> out;
  for (int64_t i = 0; i < nframes; i += opts_.gop_size) {
    DcFrame f;
    SampleDcMap(seg, static_cast<double>(i) / fps, opts_.width, opts_.height, i, &f);
    f.timestamp = static_cast<double>(i) / fps;
    out.push_back(std::move(f));
  }
  return out;
}

StreamData Dataset::BuildStream(StreamVariant variant) const {
  // Lay out the timeline: base gap, short, base gap, short, ... , base gap.
  const double base_total =
      std::accumulate(insert_gaps_.begin(), insert_gaps_.end(), 0.0);
  const double film_len = base_total / opts_.num_base_films;
  vcd::video::SceneStyle base_style;
  base_style.distinct_content = opts_.distinct_content;
  std::vector<SceneModel> base_models;
  base_models.reserve(base_seeds_.size());
  for (uint64_t s : base_seeds_) {
    base_models.push_back(SceneModel::Generate(s, film_len + 1.0, base_style));
  }
  std::vector<SceneModel> short_models;
  short_models.reserve(shorts_.size());
  for (const auto& spec : shorts_) short_models.push_back(MakeShortModel(spec));

  std::vector<Segment> segments;
  StreamData out;
  out.fps = opts_.fps;
  double stream_t = 0.0;
  double base_consumed = 0.0;
  auto emit_base = [&](double dur) {
    // A base chunk may span film boundaries; split accordingly.
    while (dur > 1e-9) {
      const int film = std::min(static_cast<int>(base_consumed / film_len),
                                opts_.num_base_films - 1);
      const double film_end = (film + 1) * film_len;
      const double piece = std::min(dur, std::max(film_end - base_consumed, 1e-3));
      Segment seg;
      seg.start = stream_t;
      seg.duration = piece;
      seg.model = &base_models[static_cast<size_t>(film)];
      seg.content_fps = opts_.fps;
      seg.content_offset = base_consumed - film * film_len;
      segments.push_back(std::move(seg));
      stream_t += piece;
      base_consumed += piece;
      dur -= piece;
    }
  };
  const double keyint = opts_.gop_size / opts_.fps;
  for (size_t i = 0; i < insert_order_.size(); ++i) {
    emit_base(insert_gaps_[i]);
    // Splice at the next key-frame boundary (closed-GOP splice points, as
    // broadcast ad-insertion does): the inserted copy's frames then line up
    // with the stream's GOP grid.
    const double pad = std::ceil(stream_t / keyint - 1e-9) * keyint - stream_t;
    if (pad > 1e-9) emit_base(pad);
    const int si = insert_order_[i];
    const ShortVideoSpec& spec = shorts_[static_cast<size_t>(si)];
    Segment seg;
    seg.start = stream_t;
    seg.duration = spec.duration_seconds;
    seg.model = &short_models[static_cast<size_t>(si)];
    seg.content_fps = opts_.fps;
    seg.short_query_id = spec.id;
    if (variant == StreamVariant::kVS2) {
      const EditSpec& edit = edits_[static_cast<size_t>(si)];
      seg.edit = &edit;
      if (edit.reorder_segment_seconds > 0) {
        seg.playlist = MakePlaylist(spec.duration_seconds,
                                    edit.reorder_segment_seconds, edit.seed);
      }
    }
    segments.push_back(std::move(seg));
    stream_t += spec.duration_seconds;
  }
  emit_base(insert_gaps_.back());

  out.total_frames = static_cast<int64_t>(std::floor(stream_t * opts_.fps));
  // Ground truth from the short segments.
  for (const Segment& seg : segments) {
    if (seg.short_query_id == 0) continue;
    core::GroundTruthEntry g;
    g.query_id = seg.short_query_id;
    g.begin_frame = static_cast<int64_t>(std::lround(seg.start * opts_.fps));
    g.end_frame =
        static_cast<int64_t>(std::lround((seg.start + seg.duration) * opts_.fps)) - 1;
    out.truth.push_back(g);
  }
  // Key frames on the stream's GOP grid.
  size_t seg_idx = 0;
  for (int64_t idx = 0; idx < out.total_frames; idx += opts_.gop_size) {
    const double t = static_cast<double>(idx) / opts_.fps;
    while (seg_idx + 1 < segments.size() &&
           t >= segments[seg_idx].start + segments[seg_idx].duration) {
      ++seg_idx;
    }
    DcFrame f;
    SampleDcMap(segments[seg_idx], t, opts_.width, opts_.height, idx, &f);
    f.timestamp = t;
    out.key_frames.push_back(std::move(f));
  }
  return out;
}

}  // namespace vcd::workload
