#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "baseline/seq_matcher.h"
#include "baseline/warp_matcher.h"
#include "core/detector.h"
#include "core/evaluation.h"
#include "workload/dataset.h"

/// \file experiment.h
/// Common drivers for the paper's experiments: subscribe the dataset's
/// queries, replay a doctored stream through a detector or baseline, time it
/// (the paper's CPU-time metric, first frame to last), and score
/// precision/recall with the position rule.

namespace vcd::workload {

/// Outcome of one detector run over one stream.
struct RunResult {
  double cpu_seconds = 0.0;        ///< end-to-end stream processing time
  core::EvalResult eval;           ///< precision/recall etc.
  core::DetectorStats stats;       ///< detector counters (empty for baselines)
  int num_matches = 0;
};

/// Subscribes the first \p m dataset queries (all when \p m < 0) to
/// \p detector, fingerprinting with the detector's own pipeline.
Status SubscribeQueries(const Dataset& ds, core::CopyDetector* detector, int m = -1);

/// Replays \p stream through \p detector, measuring CPU time, then
/// evaluates against the stream's ground truth.
Result<RunResult> RunDetector(core::CopyDetector* detector, const StreamData& stream);

/// Converts the basic-window length to frames (for the position rule).
int64_t WindowFrames(double window_seconds, double fps);

/// Baseline drivers: subscribe queries (feature sequences), replay, score.
/// \p w_frames_for_eval is the sliding-gap window converted to frames.
Result<RunResult> RunSeqBaseline(const Dataset& ds, const StreamData& stream,
                                 const baseline::SeqMatcherOptions& opts,
                                 const features::FeatureOptions& feat, int m = -1);
Result<RunResult> RunWarpBaseline(const Dataset& ds, const StreamData& stream,
                                  const baseline::WarpMatcherOptions& opts,
                                  const features::FeatureOptions& feat, int m = -1);

}  // namespace vcd::workload
