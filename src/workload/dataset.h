#pragma once

#include <cstdint>
#include <vector>

#include "core/match.h"
#include "util/status.h"
#include "video/partial_decoder.h"
#include "video/scene_model.h"

/// \file dataset.h
/// The paper's evaluation workload (§VI), rebuilt synthetically: a long
/// "doctored" broadcast stream made of base films with short videos
/// inserted at random positions. VS1 inserts the originals; VS2 inserts
/// copies altered in brightness/color, noise, resolution, frame rate
/// (NTSC→PAL) and temporal segment order. The inserted shorts double as the
/// continuous queries, and the builder records ground-truth positions.
///
/// Streams are produced as key-frame DC maps via the DC-domain fast path
/// (see DESIGN.md §2); the per-short *content* is a seeded `SceneModel`, so
/// queries and their in-stream copies share content exactly the way real
/// copies do, while every distortion perturbs the DC values realistically.

namespace vcd::workload {

/// One short video's identity.
struct ShortVideoSpec {
  int id = 0;                ///< query id (1-based)
  uint64_t content_seed = 0;
  double duration_seconds = 0.0;
};

/// The VS2 distortions drawn for one short.
struct EditSpec {
  double brightness_delta = 0.0;  ///< luma shift (levels)
  double contrast_gain = 1.0;     ///< luma gain around 128
  double noise_sigma = 0.0;       ///< additive Gaussian noise (levels)
  double source_fps = 0.0;        ///< re-encode frame rate (0 = keep)
  double sample_jitter = 0.0;     ///< spatial resample jitter, fraction of a block
  double crop_fraction = 0.0;     ///< overscan crop per edge (resolution change)
  double reorder_segment_seconds = 0.0;  ///< temporal reorder granularity (0 = none)
  uint64_t seed = 0;              ///< seed for noise/jitter/permutation
};

/// Workload configuration (paper defaults at scale 1).
struct DatasetOptions {
  int num_shorts = 200;             ///< inserted shorts (also the queries)
  int num_query_only = 0;           ///< extra queries that never appear
  double min_short_seconds = 30.0;
  double max_short_seconds = 300.0;
  int num_base_films = 5;
  double total_seconds = 12.0 * 3600.0;  ///< doctored stream length
  uint64_t seed = 42;

  /// Content regime: false = shared visual vocabulary (real-footage-like,
  /// coarse partitions collide across videos); true = fully independent
  /// compositions (unrelated videos share almost no cells — the regime
  /// where the Hash-Query index is maximally selective).
  bool distinct_content = false;

  // Stream encoding parameters (NTSC defaults).
  int width = 352;
  int height = 240;
  double fps = 29.97;
  int gop_size = 12;

  // VS2 distortion ranges.
  double vs2_brightness_max = 32.0;     ///< |delta| drawn in [0.4, 1]×this
  double vs2_contrast_spread = 0.2;     ///< gain in [1-s, 1+s]
  double vs2_noise_sigma_max = 5.0;
  double vs2_source_fps = 25.0;         ///< PAL re-encode
  double vs2_jitter = 0.15;             ///< resolution-change resample jitter
  double vs2_crop_max = 0.006;           ///< overscan crop drawn in [1/3, 1]×this
  double vs2_reorder_min_seconds = 5.0; ///< reorder granularity range
  double vs2_reorder_max_seconds = 15.0;

  /// Returns a copy scaled to `scale` of the paper's workload: the stream
  /// length and the number of inserted shorts shrink together, short
  /// durations are preserved.
  DatasetOptions Scaled(double scale) const;

  Status Validate() const;
};

/// Which doctored stream to build.
enum class StreamVariant {
  kVS1,  ///< originals inserted
  kVS2,  ///< edited + temporally reordered copies inserted
};

/// A built stream: key-frame DC maps plus ground truth.
struct StreamData {
  std::vector<vcd::video::DcFrame> key_frames;
  std::vector<core::GroundTruthEntry> truth;
  double fps = 0.0;
  int64_t total_frames = 0;

  double DurationSeconds() const {
    return fps > 0 ? static_cast<double>(total_frames) / fps : 0.0;
  }
};

/// \brief Builds queries and doctored streams from one seed.
class Dataset {
 public:
  /// Draws the short-video specs and base films. Fails on invalid options.
  static Result<Dataset> Build(const DatasetOptions& opts);

  /// Options in effect.
  const DatasetOptions& options() const { return opts_; }
  /// Number of inserted shorts.
  int num_shorts() const { return static_cast<int>(shorts_.size()); }
  /// Total number of queries (inserted + query-only).
  int num_queries() const {
    return num_shorts() + static_cast<int>(query_only_.size());
  }
  /// Spec of query \p qi in [0, num_queries()).
  const ShortVideoSpec& query_spec(int qi) const;

  /// Key-frame DC maps of query \p qi in its original (NTSC) encoding —
  /// what the subscriber registers with the detector.
  std::vector<vcd::video::DcFrame> QueryKeyFrames(int qi) const;

  /// Key-frame DC maps of the *edited standalone copy* of query \p qi (the
  /// A-vs-B sets of the Table II experiment).
  std::vector<vcd::video::DcFrame> EditedQueryKeyFrames(int qi) const;

  /// Builds the doctored stream \p variant (deterministic per options).
  StreamData BuildStream(StreamVariant variant) const;

  /// The VS2 edit drawn for query \p qi (exposed for tests).
  const EditSpec& edit_spec(int qi) const;

 private:
  Dataset() = default;

  vcd::video::SceneModel MakeShortModel(const ShortVideoSpec& spec) const;

  DatasetOptions opts_;
  std::vector<ShortVideoSpec> shorts_;
  std::vector<ShortVideoSpec> query_only_;
  std::vector<EditSpec> edits_;          ///< per query (inserted + query-only)
  std::vector<uint64_t> base_seeds_;     ///< one per base film
  std::vector<double> insert_gaps_;      ///< base-film seconds before each short
  std::vector<int> insert_order_;        ///< permutation of shorts on the stream
};

}  // namespace vcd::workload
