#include "obs/metrics.h"

#include <utility>

#include "util/check.h"
#include "util/json.h"

namespace vcd::obs {
namespace {

/// Metric names are lowercase snake_case identifiers: they must survive both
/// export formats unescaped. The `vcd_<subsystem>_<name>_<unit>` scheme is
/// enforced separately by tools/lint.sh (`vcd-obs-naming`); here we only
/// reject names that would corrupt the exposition syntax.
bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (name[0] < 'a' || name[0] > 'z') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string PromLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Prometheus HELP-text escaping: backslash and newline only.
std::string PromHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}` (empty string when there are no labels), with an
/// optional extra label appended (the histogram `le`).
std::string PromLabels(const std::vector<MetricLabel>& labels,
                       const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const MetricLabel& l : labels) {
    if (!first) out += ",";
    first = false;
    out += l.key;
    out += "=\"";
    out += PromLabelValue(l.value);
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key;
    out += "=\"";
    out += PromLabelValue(extra_value);
    out += "\"";
  }
  out += "}";
  return out;
}

/// `le=` rendering for bucket \p i: the inclusive upper bound, or "+Inf"
/// for the saturating last bucket.
std::string BucketLe(int i) {
  if (i >= Histogram::kNumBuckets - 1) return "+Inf";
  return std::to_string(Histogram::BucketUpperBound(i));
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instrument pointers cached in pipeline structs must
  // stay valid through static destruction. NOLINT(vcd-raw-new)
  static MetricsRegistry* g = new MetricsRegistry();  // NOLINT(vcd-raw-new)
  return *g;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& help,
    std::vector<MetricLabel> labels, MetricType type) {
  VCD_CHECK(ValidMetricName(name), "bad metric name: " + name);
  Key key{name, std::move(labels)};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    VCD_CHECK(it->second->type == type,
              "metric re-registered as a different type: " + name);
    return it->second.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->help = help;
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  Entry* raw = entry.get();
  entries_.emplace(std::move(key), std::move(entry));
  return raw;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          std::vector<MetricLabel> labels) {
  MutexLock lock(mu_);
  return FindOrCreate(name, help, std::move(labels), MetricType::kCounter)
      ->counter.get();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help,
                                      std::vector<MetricLabel> labels) {
  MutexLock lock(mu_);
  return FindOrCreate(name, help, std::move(labels), MetricType::kGauge)
      ->gauge.get();
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& help,
                                              std::vector<MetricLabel> labels) {
  MutexLock lock(mu_);
  return FindOrCreate(name, help, std::move(labels), MetricType::kHistogram)
      ->histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Collect() const {
  std::vector<MetricSnapshot> out;
  MutexLock lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = key.first;
    snap.labels = key.second;
    snap.help = entry->help;
    snap.type = entry->type;
    switch (entry->type) {
      case MetricType::kCounter:
        snap.value = entry->counter->Value();
        break;
      case MetricType::kGauge:
        snap.value = entry->gauge->Value();
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry->histogram;
        snap.count = h.Count();
        snap.sum = h.Sum();
        snap.buckets.resize(Histogram::kNumBuckets);
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          snap.buckets[i] = h.BucketCount(i);
        }
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;  // already sorted: entries_ is an ordered map
}

std::string MetricsRegistry::ToJson() const {
  const std::vector<MetricSnapshot> snaps = Collect();
  std::string out = "{\n  \"metrics\": [";
  for (size_t i = 0; i < snaps.size(); ++i) {
    const MetricSnapshot& s = snaps[i];
    if (i > 0) out += ",";
    out += "\n    {\n      \"name\": ";
    out += util::JsonQuote(s.name);
    out += ",\n      \"type\": \"";
    out += TypeName(s.type);
    out += "\",\n      \"help\": ";
    out += util::JsonQuote(s.help);
    if (!s.labels.empty()) {
      out += ",\n      \"labels\": {";
      for (size_t j = 0; j < s.labels.size(); ++j) {
        if (j > 0) out += ", ";
        out += util::JsonQuote(s.labels[j].key);
        out += ": ";
        out += util::JsonQuote(s.labels[j].value);
      }
      out += "}";
    }
    if (s.type == MetricType::kHistogram) {
      out += ",\n      \"count\": " + std::to_string(s.count);
      out += ",\n      \"sum\": " + std::to_string(s.sum);
      out += ",\n      \"buckets\": [";
      // Cumulative counts, sparse: only buckets with raw observations,
      // plus the +Inf bucket (== count) always.
      int64_t cumulative = 0;
      bool first_bucket = true;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        cumulative += s.buckets[b];
        const bool last = b == Histogram::kNumBuckets - 1;
        if (s.buckets[b] == 0 && !last) continue;
        if (!first_bucket) out += ", ";
        first_bucket = false;
        out += "{\"le\": ";
        out += util::JsonQuote(BucketLe(b));
        out += ", \"count\": " + std::to_string(cumulative) + "}";
      }
      out += "]";
    } else {
      out += ",\n      \"value\": " + std::to_string(s.value);
    }
    out += "\n    }";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  const std::vector<MetricSnapshot> snaps = Collect();
  std::string out;
  std::string prev_name;
  for (const MetricSnapshot& s : snaps) {
    if (s.name != prev_name) {
      // One HELP/TYPE header per metric family; labeled series of the same
      // name sort adjacently, so the header lands before the first row.
      out += "# HELP " + s.name + " " + PromHelp(s.help) + "\n";
      out += "# TYPE " + s.name + " " + TypeName(s.type) + "\n";
      prev_name = s.name;
    }
    if (s.type == MetricType::kHistogram) {
      int64_t cumulative = 0;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        cumulative += s.buckets[b];
        const bool last = b == Histogram::kNumBuckets - 1;
        if (s.buckets[b] == 0 && !last) continue;
        out += s.name + "_bucket" + PromLabels(s.labels, "le", BucketLe(b)) +
               " " + std::to_string(cumulative) + "\n";
      }
      out += s.name + "_sum" + PromLabels(s.labels) + " " +
             std::to_string(s.sum) + "\n";
      out += s.name + "_count" + PromLabels(s.labels) + " " +
             std::to_string(s.count) + "\n";
    } else {
      out += s.name + PromLabels(s.labels) + " " + std::to_string(s.value) +
             "\n";
    }
  }
  return out;
}

}  // namespace vcd::obs
