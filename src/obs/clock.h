#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

/// \file clock.h
/// Time source for the observability layer.
///
/// All span timers read `obs::NowNanos()` instead of calling the standard
/// clock directly. By default this is `std::chrono::steady_clock`; tests
/// install a `FakeClock` through `ScopedClockOverride`, which makes every
/// histogram produced by span timers bit-deterministic (the test decides
/// exactly how many nanoseconds each stage "took").
///
/// The override is a single global `std::atomic<Clock*>` read with relaxed
/// ordering on the fast path — one predictable-branch load when no override
/// is installed, which is what the <3% hot-path budget demands. Installing
/// or removing an override while spans are live in other threads is
/// supported (the pointer swap is atomic); tests that need deterministic
/// histograms additionally serialize their own observations.

namespace vcd::obs {

/// \brief Abstract monotonic time source, nanosecond resolution.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;
};

/// \brief Manually advanced clock for deterministic tests.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : nanos_(start_nanos) {}

  int64_t NowNanos() const override {
    return nanos_.load(std::memory_order_relaxed);
  }

  /// Moves the clock forward by \p delta nanoseconds.
  void Advance(int64_t delta) {
    nanos_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Jumps the clock to an absolute reading.
  void Set(int64_t nanos) { nanos_.store(nanos, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> nanos_;
};

namespace internal {
/// nullptr → real steady_clock; otherwise the installed override.
extern std::atomic<const Clock*> g_clock_override;
int64_t SteadyNowNanos();
}  // namespace internal

/// Current time in nanoseconds from the active clock (override or steady).
inline int64_t NowNanos() {
  const Clock* c = internal::g_clock_override.load(std::memory_order_relaxed);
  if (c == nullptr) return internal::SteadyNowNanos();
  return c->NowNanos();
}

/// \brief RAII installer of a test clock; restores the previous source on
/// destruction. Intended for tests — overrides are process-global.
class ScopedClockOverride {
 public:
  explicit ScopedClockOverride(const Clock* clock)
      : prev_(internal::g_clock_override.exchange(clock,
                                                  std::memory_order_relaxed)) {}
  ~ScopedClockOverride() {
    internal::g_clock_override.store(prev_, std::memory_order_relaxed);
  }

  ScopedClockOverride(const ScopedClockOverride&) = delete;
  ScopedClockOverride& operator=(const ScopedClockOverride&) = delete;

 private:
  const Clock* prev_;
};

}  // namespace vcd::obs
