#include "obs/pipeline_metrics.h"

#include <atomic>

#include "sketch/kernels/kernels.h"
#include "util/faultfx.h"

namespace vcd::obs {

DecoderMetrics DecoderMetrics::Create(MetricsRegistry* registry) {
  DecoderMetrics m;
  if (registry == nullptr) return m;
  m.key_frames_total = registry->RegisterCounter(
      "vcd_decoder_key_frames_total", "Key frames decoded");
  m.p_frames_skipped_total = registry->RegisterCounter(
      "vcd_decoder_p_frames_skipped_total", "Non-key frames skipped");
  m.corruption_events_total = registry->RegisterCounter(
      "vcd_decoder_corruption_events_total", "Corrupt frame headers seen");
  m.resync_scans_total = registry->RegisterCounter(
      "vcd_decoder_resync_scans_total", "Resync scans after corruption");
  m.bytes_skipped_total = registry->RegisterCounter(
      "vcd_decoder_bytes_skipped_total", "Bytes skipped while resyncing");
  m.degraded_frames_total = registry->RegisterCounter(
      "vcd_decoder_degraded_frames_total",
      "Frames emitted in degraded mode after corruption");
  m.resync_latency_ns = registry->RegisterHistogram(
      "vcd_decoder_resync_latency_ns", "Latency of one resync scan");
  return m;
}

DetectorMetrics DetectorMetrics::Create(MetricsRegistry* registry) {
  DetectorMetrics m;
  if (registry == nullptr) return m;
  m.windows_total = registry->RegisterCounter(
      "vcd_detector_windows_total", "Sliding windows processed");
  m.degraded_windows_total = registry->RegisterCounter(
      "vcd_detector_degraded_windows_total",
      "Windows skipped because they contained degraded frames");
  m.qos_skipped_windows_total = registry->RegisterCounter(
      "vcd_detector_qos_skipped_windows_total",
      "Windows skipped by the QoS degraded-mode probe knob");
  m.prune_hits_total = registry->RegisterCounter(
      "vcd_detector_prune_hits_total",
      "Candidate windows eliminated by Lemma-2 prefix pruning");
  m.prune_misses_total = registry->RegisterCounter(
      "vcd_detector_prune_misses_total",
      "Candidate windows that survived pruning and were fully evaluated");
  m.bitsig_builds_total = registry->RegisterCounter(
      "vcd_detector_bitsig_builds_total", "Bit signatures built from scratch");
  m.bitsig_ors_total = registry->RegisterCounter(
      "vcd_detector_bitsig_ors_total", "Incremental bit-signature OR-combines");
  m.sketch_combines_total = registry->RegisterCounter(
      "vcd_detector_sketch_combines_total", "Sketch combine operations");
  m.sketch_compares_total = registry->RegisterCounter(
      "vcd_detector_sketch_compares_total", "Sketch similarity comparisons");
  m.candidates_admitted_total = registry->RegisterCounter(
      "vcd_detector_candidates_admitted_total",
      "Windows admitted into candidate evaluation");
  m.candidates_expired_total = registry->RegisterCounter(
      "vcd_detector_candidates_expired_total",
      "Candidate entries retired as their windows slid out of range");
  m.matches_total = registry->RegisterCounter(
      "vcd_detector_matches_total", "Copy matches emitted");
  m.window_process_ns = registry->RegisterHistogram(
      "vcd_window_process_ns", "End-to-end latency of one window update");
  m.sketch_build_ns = registry->RegisterHistogram(
      "vcd_window_sketch_build_ns", "Building the window's sketch/signature");
  m.probe_ns = registry->RegisterHistogram(
      "vcd_window_probe_ns", "Index probes admitting candidate suffixes");
  m.combine_ns = registry->RegisterHistogram(
      "vcd_window_combine_ns", "OR-combine / sketch-combine step");
  m.test_ns = registry->RegisterHistogram(
      "vcd_window_test_ns", "Prune scan and similarity tests");
  return m;
}

namespace {
/// The unified drop family: one counter name, labeled by why the frame was
/// discarded. Registration is idempotent, so every bundle that needs a leg
/// gets the same instrument back.
Counter* DropCause(MetricsRegistry* registry, const char* cause) {
  return registry->RegisterCounter(
      "vcd_frames_dropped_total",
      "Frames discarded by the pipeline, labeled by cause",
      {{"cause", cause}});
}
}  // namespace

ExecutorMetrics ExecutorMetrics::Create(MetricsRegistry* registry) {
  ExecutorMetrics m;
  if (registry == nullptr) return m;
  m.frames_submitted_total = registry->RegisterCounter(
      "vcd_executor_frames_submitted_total", "Frames submitted to shards");
  m.dropped_backpressure = DropCause(registry, "backpressure");
  m.dropped_failover = DropCause(registry, "failover");
  m.dropped_deadline = DropCause(registry, "deadline");
  m.dropped_qos_shed = DropCause(registry, "qos_shed");
  m.watchdog_failovers_total = registry->RegisterCounter(
      "vcd_executor_watchdog_failovers_total",
      "Shards failed over by the watchdog");
  m.streams_open = registry->RegisterGauge(
      "vcd_executor_streams_open", "Streams currently open on the executor");
  return m;
}

ShardMetrics ShardMetrics::Create(MetricsRegistry* registry, int shard_id) {
  ShardMetrics m;
  if (registry == nullptr) return m;
  const std::vector<MetricLabel> labels = {
      {"shard", std::to_string(shard_id)}};
  m.frames_processed_total = registry->RegisterCounter(
      "vcd_shard_frames_processed_total", "Frames processed cleanly", labels);
  m.frames_rejected_total = registry->RegisterCounter(
      "vcd_shard_frames_rejected_total",
      "Frames rejected by the detector (corrupt or out of order)", labels);
  m.frames_degraded_total = registry->RegisterCounter(
      "vcd_shard_frames_degraded_total", "Degraded frames processed", labels);
  m.frames_quarantined_total = registry->RegisterCounter(
      "vcd_shard_frames_quarantined_total",
      "Frames discarded because their stream was quarantined", labels);
  m.frames_failed_total = registry->RegisterCounter(
      "vcd_shard_frames_failed_total",
      "Frames discarded because their stream had hard-failed", labels);
  m.quarantine_events_total = registry->RegisterCounter(
      "vcd_shard_quarantine_events_total",
      "Streams entering quarantine on this shard", labels);
  m.queue_depth = registry->RegisterGauge(
      "vcd_shard_queue_depth", "Frames waiting in the shard queue", labels);
  m.stream_lag_us = registry->RegisterGauge(
      "vcd_shard_stream_lag_us",
      "Stream-clock lag of the frame being processed, microseconds", labels);
  m.dropped_quarantine = DropCause(registry, "quarantine");
  m.dropped_failed = DropCause(registry, "failed");
  return m;
}

QosMetrics QosMetrics::Create(MetricsRegistry* registry, int num_shards) {
  QosMetrics m;
  if (registry == nullptr) return m;
  m.shard_state.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    m.shard_state.push_back(registry->RegisterGauge(
        "vcd_qos_state",
        "Overload governor state (0 normal, 1 recovering, 2 degraded, "
        "3 shedding)",
        {{"shard", std::to_string(s)}}));
  }
  for (int i = 0; i < 4; ++i) {
    // Governor ticks are the native unit here — a time suffix would lie
    // when --qos-tick-ms changes.
    m.dwell_ticks[i] = registry->RegisterHistogram(  // NOLINT(vcd-obs-naming)
        "vcd_qos_dwell_ticks",
        "Governor ticks a shard dwelt in a state before leaving it",
        {{"state", qos::QosStateName(static_cast<qos::QosState>(i))}});
  }
  for (int i = 0; i < 3; ++i) {
    m.frames_shed[i] = registry->RegisterCounter(
        "vcd_qos_frames_shed_total",
        "Frames shed by the priority-aware overload policy",
        {{"priority", qos::PriorityName(static_cast<qos::Priority>(i))}});
  }
  return m;
}

CkptMetrics CkptMetrics::Create(MetricsRegistry* registry) {
  CkptMetrics m;
  if (registry == nullptr) return m;
  m.checkpoints_total = registry->RegisterCounter(
      "vcd_ckpt_checkpoints_total", "Snapshots durably committed");
  m.checkpoint_failures_total = registry->RegisterCounter(
      "vcd_ckpt_checkpoint_failures_total",
      "Snapshot writes that failed before the manifest was updated");
  m.restores_total = registry->RegisterCounter(
      "vcd_ckpt_restores_total", "Successful snapshot restores");
  m.restore_corruption_total = registry->RegisterCounter(
      "vcd_ckpt_restore_corruption_total",
      "Snapshots skipped at restore as torn or CRC-corrupt");
  m.checkpoint_bytes = registry->RegisterGauge(
      "vcd_ckpt_checkpoint_bytes", "Size of the last snapshot written");
  m.checkpoint_epoch = registry->RegisterGauge(
      "vcd_ckpt_checkpoint_epoch", "Epoch of the last snapshot committed");
  m.checkpoint_duration_ns = registry->RegisterHistogram(
      "vcd_ckpt_checkpoint_duration_ns",
      "Wall time of one checkpoint save (encode + write + rename)");
  return m;
}

void SyncFaultfxMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (int i = 0; i < faultfx::kNumSites; ++i) {
    const auto site = static_cast<faultfx::Site>(i);
    const std::vector<MetricLabel> labels = {
        {"site", faultfx::SiteName(site)}};
    Gauge* hits = registry->RegisterGauge(
        "vcd_faultfx_hits", "Injection-site hits since last arm/reset",
        labels);
    Gauge* fires = registry->RegisterGauge(
        "vcd_faultfx_fires", "Injection-site fires since last arm/reset",
        labels);
    if (faultfx::kEnabled) {
      hits->Set(faultfx::Injector::Instance().hits(site));
      fires->Set(faultfx::Injector::Instance().fires(site));
    }
  }
}

void SyncKernelMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  namespace sk = vcd::sketch::kernels;
  const sk::KernelOps& active = sk::ActiveOps();
  for (int i = 0; i < sk::kNumIsa; ++i) {
    const auto isa = static_cast<sk::Isa>(i);
    if (!sk::IsaCompiled(isa)) continue;
    Gauge* g = registry->RegisterGauge(
        "vcd_kernel_active", "1 on the dispatched kernel ISA level",
        {{"isa", sk::IsaName(isa)}});
    g->Set(isa == active.isa ? 1 : 0);
  }
  const sk::KernelCounters& c = sk::Counters();
  const auto sync = [registry](const char* kernel, uint64_t calls,
                               uint64_t items) {
    const std::vector<MetricLabel> labels = {{"kernel", kernel}};
    registry
        ->RegisterGauge("vcd_kernel_calls",
                        "Kernel dispatches since process start", labels)
        ->Set(static_cast<int64_t>(calls));
    registry
        ->RegisterGauge("vcd_kernel_items",
                        "Slots/pairs processed by the kernel", labels)
        ->Set(static_cast<int64_t>(items));
  };
  const auto load = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  sync("sig_or_range", load(c.or_range_calls), load(c.or_range_pairs));
  sync("sig_num_equal_batch", load(c.num_equal_batch_calls),
       load(c.num_equal_batch_sigs));
  sync("sig_prune_scan", load(c.prune_scan_calls), load(c.prune_scan_calls));
  sync("sig_build", load(c.build_calls), load(c.build_calls));
  sync("sketch_combine_min", load(c.combine_min_calls),
       load(c.combine_min_calls));
  sync("sketch_num_equal", load(c.sketch_num_equal_calls),
       load(c.sketch_num_equal_calls));
}

}  // namespace vcd::obs
