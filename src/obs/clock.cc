#include "obs/clock.h"

namespace vcd::obs::internal {

std::atomic<const Clock*> g_clock_override{nullptr};

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace vcd::obs::internal
