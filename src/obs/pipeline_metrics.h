#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "qos/qos.h"

/// \file pipeline_metrics.h
/// The standard metric families each pipeline stage publishes, centralized
/// so the full inventory (and its naming) lives in one reviewable place.
///
/// Each struct is a bundle of cached instrument pointers. `Create(registry)`
/// registers every family member and returns live pointers;
/// `Create(nullptr)` returns an all-null bundle, which every consumer
/// treats as "observability detached" (the VCD_OBS_* macros and explicit
/// null checks make null instruments free). Registration is idempotent —
/// the registry dedupes on (name, labels) — so re-creating a bundle against
/// the same registry hands back the same instruments.

namespace vcd::obs {

/// PartialDecoder: per-stream ingest health.
struct DecoderMetrics {
  Counter* key_frames_total = nullptr;
  Counter* p_frames_skipped_total = nullptr;
  Counter* corruption_events_total = nullptr;
  Counter* resync_scans_total = nullptr;
  Counter* bytes_skipped_total = nullptr;
  Counter* degraded_frames_total = nullptr;
  Histogram* resync_latency_ns = nullptr;

  static DecoderMetrics Create(MetricsRegistry* registry);
};

/// CopyDetector: per-window hot-path counters and stage latencies.
struct DetectorMetrics {
  Counter* windows_total = nullptr;
  Counter* degraded_windows_total = nullptr;
  Counter* qos_skipped_windows_total = nullptr;
  Counter* prune_hits_total = nullptr;
  Counter* prune_misses_total = nullptr;
  Counter* bitsig_builds_total = nullptr;
  Counter* bitsig_ors_total = nullptr;
  Counter* sketch_combines_total = nullptr;
  Counter* sketch_compares_total = nullptr;
  Counter* candidates_admitted_total = nullptr;
  Counter* candidates_expired_total = nullptr;
  Counter* matches_total = nullptr;
  Histogram* window_process_ns = nullptr;
  Histogram* sketch_build_ns = nullptr;
  Histogram* probe_ns = nullptr;
  Histogram* combine_ns = nullptr;
  Histogram* test_ns = nullptr;

  static DetectorMetrics Create(MetricsRegistry* registry);
};

/// StreamExecutor: admission accounting and fleet-level gauges. These
/// counters are the registry-backed source of truth for `ExecutorStats`.
///
/// Every frame the pipeline discards is counted exactly once in the unified
/// drop family `vcd_frames_dropped_total{cause=...}` — the executor-side
/// causes live here; the health-machine causes (`quarantine`, `failed`)
/// are incremented by the shard workers (see ShardMetrics).
struct ExecutorMetrics {
  Counter* frames_submitted_total = nullptr;
  Counter* dropped_backpressure = nullptr;  ///< cause="backpressure"
  Counter* dropped_failover = nullptr;      ///< cause="failover"
  Counter* dropped_deadline = nullptr;      ///< cause="deadline"
  Counter* dropped_qos_shed = nullptr;      ///< cause="qos_shed"
  Counter* watchdog_failovers_total = nullptr;
  Gauge* streams_open = nullptr;

  static ExecutorMetrics Create(MetricsRegistry* registry);
};

/// One shard's worker-side accounting, labeled `shard="<id>"`.
struct ShardMetrics {
  Counter* frames_processed_total = nullptr;
  Counter* frames_rejected_total = nullptr;
  Counter* frames_degraded_total = nullptr;
  Counter* frames_quarantined_total = nullptr;
  Counter* frames_failed_total = nullptr;
  Counter* quarantine_events_total = nullptr;
  Gauge* queue_depth = nullptr;
  Gauge* stream_lag_us = nullptr;
  /// Health-machine legs of the unified drop family (shared across shards —
  /// the registry dedupes on (name, labels), so every shard's bundle holds
  /// the same instrument): `vcd_frames_dropped_total{cause="quarantine"}`
  /// and `{cause="failed"}`. Incremented alongside the per-shard
  /// frames_quarantined/_failed detail counters above.
  Counter* dropped_quarantine = nullptr;
  Counter* dropped_failed = nullptr;

  static ShardMetrics Create(MetricsRegistry* registry, int shard_id);
};

/// Overload governor (DESIGN.md §17): per-shard state gauges, per-state
/// dwell histograms, and priority-labeled shed counters.
struct QosMetrics {
  /// Numeric qos::QosState of each shard (`vcd_qos_state{shard="<id>"}`).
  std::vector<Gauge*> shard_state;
  /// Ticks a shard dwelt in a state before leaving it, labeled by the
  /// state it left (`vcd_qos_dwell_ticks{state=...}`); indexed by the
  /// numeric qos::QosState value.
  Histogram* dwell_ticks[4] = {nullptr, nullptr, nullptr, nullptr};
  /// Frames shed by the priority-aware policy, labeled by priority class
  /// (`vcd_qos_frames_shed_total{priority=...}`); indexed by the numeric
  /// qos::Priority value. Each shed frame is *also* counted once in
  /// `vcd_frames_dropped_total{cause="qos_shed"}`.
  Counter* frames_shed[3] = {nullptr, nullptr, nullptr};

  /// Empty (all-null, no per-shard gauges) when \p registry is null.
  static QosMetrics Create(MetricsRegistry* registry, int num_shards);
};

/// Checkpointer: durability accounting (DESIGN.md §16). `checkpoint_bytes`
/// is the size of the last snapshot written; `checkpoint_epoch` the last
/// epoch durably committed (0 until the first save).
struct CkptMetrics {
  Counter* checkpoints_total = nullptr;
  Counter* checkpoint_failures_total = nullptr;
  Counter* restores_total = nullptr;
  Counter* restore_corruption_total = nullptr;  ///< snapshots skipped as unreadable
  Gauge* checkpoint_bytes = nullptr;
  Gauge* checkpoint_epoch = nullptr;
  Histogram* checkpoint_duration_ns = nullptr;

  static CkptMetrics Create(MetricsRegistry* registry);
};

/// Publishes the faultfx injector's per-site hit/fire counts into
/// \p registry as gauges labeled `site="<name>"`. Gauges, not counters:
/// `Injector::Arm`/`Reset` reset the underlying counts, and a gauge mirrors
/// resets faithfully. Call at export time (vcdctl does, before each dump);
/// a no-op when \p registry is null. Registers zeroed gauges even when
/// faultfx is compiled out, so dashboards see the series either way.
void SyncFaultfxMetrics(MetricsRegistry* registry);

/// Publishes the SIMD kernel dispatch state into \p registry: which ISA
/// backend is active (`vcd_kernel_active{isa=...}`, 1 on the chosen level,
/// 0 on every other compiled level) and the process-global per-kernel call
/// counts (`vcd_kernel_calls`/`vcd_kernel_items` labeled `kernel="<op>"`),
/// as gauges mirroring the monotonic atomics in kernels::Counters(). Call
/// at export time (vcdctl metrics and the bench metrics sample do); a
/// no-op when \p registry is null.
void SyncKernelMetrics(MetricsRegistry* registry);

}  // namespace vcd::obs
