#pragma once

#include <string>

#include "obs/metrics.h"

/// \file pipeline_metrics.h
/// The standard metric families each pipeline stage publishes, centralized
/// so the full inventory (and its naming) lives in one reviewable place.
///
/// Each struct is a bundle of cached instrument pointers. `Create(registry)`
/// registers every family member and returns live pointers;
/// `Create(nullptr)` returns an all-null bundle, which every consumer
/// treats as "observability detached" (the VCD_OBS_* macros and explicit
/// null checks make null instruments free). Registration is idempotent —
/// the registry dedupes on (name, labels) — so re-creating a bundle against
/// the same registry hands back the same instruments.

namespace vcd::obs {

/// PartialDecoder: per-stream ingest health.
struct DecoderMetrics {
  Counter* key_frames_total = nullptr;
  Counter* p_frames_skipped_total = nullptr;
  Counter* corruption_events_total = nullptr;
  Counter* resync_scans_total = nullptr;
  Counter* bytes_skipped_total = nullptr;
  Counter* degraded_frames_total = nullptr;
  Histogram* resync_latency_ns = nullptr;

  static DecoderMetrics Create(MetricsRegistry* registry);
};

/// CopyDetector: per-window hot-path counters and stage latencies.
struct DetectorMetrics {
  Counter* windows_total = nullptr;
  Counter* degraded_windows_total = nullptr;
  Counter* prune_hits_total = nullptr;
  Counter* prune_misses_total = nullptr;
  Counter* bitsig_builds_total = nullptr;
  Counter* bitsig_ors_total = nullptr;
  Counter* sketch_combines_total = nullptr;
  Counter* sketch_compares_total = nullptr;
  Counter* candidates_admitted_total = nullptr;
  Counter* candidates_expired_total = nullptr;
  Counter* matches_total = nullptr;
  Histogram* window_process_ns = nullptr;
  Histogram* sketch_build_ns = nullptr;
  Histogram* probe_ns = nullptr;
  Histogram* combine_ns = nullptr;
  Histogram* test_ns = nullptr;

  static DetectorMetrics Create(MetricsRegistry* registry);
};

/// StreamExecutor: admission accounting and fleet-level gauges. These
/// counters are the registry-backed source of truth for `ExecutorStats`.
struct ExecutorMetrics {
  Counter* frames_submitted_total = nullptr;
  Counter* frames_dropped_backpressure_total = nullptr;
  Counter* frames_dropped_failover_total = nullptr;
  Counter* watchdog_failovers_total = nullptr;
  Gauge* streams_open = nullptr;

  static ExecutorMetrics Create(MetricsRegistry* registry);
};

/// One shard's worker-side accounting, labeled `shard="<id>"`.
struct ShardMetrics {
  Counter* frames_processed_total = nullptr;
  Counter* frames_rejected_total = nullptr;
  Counter* frames_degraded_total = nullptr;
  Counter* frames_quarantined_total = nullptr;
  Counter* frames_failed_total = nullptr;
  Counter* quarantine_events_total = nullptr;
  Gauge* queue_depth = nullptr;
  Gauge* stream_lag_us = nullptr;

  static ShardMetrics Create(MetricsRegistry* registry, int shard_id);
};

/// Checkpointer: durability accounting (DESIGN.md §16). `checkpoint_bytes`
/// is the size of the last snapshot written; `checkpoint_epoch` the last
/// epoch durably committed (0 until the first save).
struct CkptMetrics {
  Counter* checkpoints_total = nullptr;
  Counter* checkpoint_failures_total = nullptr;
  Counter* restores_total = nullptr;
  Counter* restore_corruption_total = nullptr;  ///< snapshots skipped as unreadable
  Gauge* checkpoint_bytes = nullptr;
  Gauge* checkpoint_epoch = nullptr;
  Histogram* checkpoint_duration_ns = nullptr;

  static CkptMetrics Create(MetricsRegistry* registry);
};

/// Publishes the faultfx injector's per-site hit/fire counts into
/// \p registry as gauges labeled `site="<name>"`. Gauges, not counters:
/// `Injector::Arm`/`Reset` reset the underlying counts, and a gauge mirrors
/// resets faithfully. Call at export time (vcdctl does, before each dump);
/// a no-op when \p registry is null. Registers zeroed gauges even when
/// faultfx is compiled out, so dashboards see the series either way.
void SyncFaultfxMetrics(MetricsRegistry* registry);

/// Publishes the SIMD kernel dispatch state into \p registry: which ISA
/// backend is active (`vcd_kernel_active{isa=...}`, 1 on the chosen level,
/// 0 on every other compiled level) and the process-global per-kernel call
/// counts (`vcd_kernel_calls`/`vcd_kernel_items` labeled `kernel="<op>"`),
/// as gauges mirroring the monotonic atomics in kernels::Counters(). Call
/// at export time (vcdctl metrics and the bench metrics sample do); a
/// no-op when \p registry is null.
void SyncKernelMetrics(MetricsRegistry* registry);

}  // namespace vcd::obs
