#pragma once

#include "obs/clock.h"
#include "obs/metrics.h"

/// \file span.h
/// Per-stage timing spans, compiled to no-ops when `VCD_OBS=OFF`.
///
/// Usage in pipeline code (never constructs SpanTimer directly):
///
///     void Decoder::Resync(...) {
///       VCD_OBS_SPAN(metrics_.resync_latency_ns);   // times to scope end
///       ...
///     }
///
/// Cost model (DESIGN.md §13):
///   - `VCD_OBS=ON`, instrument wired: two `NowNanos()` reads + one
///     histogram `Observe` (three relaxed atomic adds) per span.
///   - `VCD_OBS=ON`, instrument null (no registry attached): one null
///     check at construction, nothing at destruction.
///   - `VCD_OBS=OFF`: the macros expand to `((void)0)` — zero code, which
///     the `obs` leg of tools/check.sh keeps compiling.
///
/// `VCD_OBS_INC` / `VCD_OBS_ADD` / `VCD_OBS_SET` are the matching null-safe
/// counter/gauge wrappers for *optional* instrumentation. Accounting
/// counters that feed ExecutorStats are updated unconditionally in code
/// (not through these macros) because their values are part of the
/// pipeline's API contract in both build modes.

namespace vcd::obs {

/// Mirrors the build flag so tests can `GTEST_SKIP()` when the gated
/// instrumentation is compiled out.
#ifdef VCD_OBS_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// \brief RAII span: observes elapsed nanoseconds into a histogram at scope
/// exit. Null histogram → fully inert (no clock reads).
class SpanTimer {
 public:
  explicit SpanTimer(Histogram* h) : h_(h), t0_(h ? NowNanos() : 0) {}
  ~SpanTimer() {
    if (h_ != nullptr) h_->Observe(NowNanos() - t0_);
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  Histogram* h_;
  int64_t t0_;
};

}  // namespace vcd::obs

#ifdef VCD_OBS_ENABLED

#define VCD_OBS_CONCAT_INNER(a, b) a##b
#define VCD_OBS_CONCAT(a, b) VCD_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope into `hist` (a `Histogram*`, may be null).
#define VCD_OBS_SPAN(hist) \
  ::vcd::obs::SpanTimer VCD_OBS_CONCAT(vcd_obs_span_, __LINE__)(hist)

/// Null-safe `counter->Inc(n)`.
#define VCD_OBS_INC(counter, n)                                       \
  do {                                                                \
    ::vcd::obs::Counter* vcd_obs_c = (counter);                       \
    if (vcd_obs_c != nullptr) vcd_obs_c->Inc(n);                      \
  } while (0)

/// Null-safe `gauge->Add(n)`.
#define VCD_OBS_ADD(gauge, n)                                         \
  do {                                                                \
    ::vcd::obs::Gauge* vcd_obs_g = (gauge);                           \
    if (vcd_obs_g != nullptr) vcd_obs_g->Add(n);                      \
  } while (0)

/// Null-safe `gauge->Set(v)`.
#define VCD_OBS_SET(gauge, v)                                         \
  do {                                                                \
    ::vcd::obs::Gauge* vcd_obs_g = (gauge);                           \
    if (vcd_obs_g != nullptr) vcd_obs_g->Set(v);                      \
  } while (0)

/// Null-safe `hist->Observe(v)`.
#define VCD_OBS_OBSERVE(hist, v)                                      \
  do {                                                                \
    ::vcd::obs::Histogram* vcd_obs_h = (hist);                        \
    if (vcd_obs_h != nullptr) vcd_obs_h->Observe(v);                  \
  } while (0)

#else  // !VCD_OBS_ENABLED

#define VCD_OBS_SPAN(hist) ((void)0)
#define VCD_OBS_INC(counter, n) ((void)0)
#define VCD_OBS_ADD(gauge, n) ((void)0)
#define VCD_OBS_SET(gauge, v) ((void)0)
#define VCD_OBS_OBSERVE(hist, v) ((void)0)

#endif  // VCD_OBS_ENABLED
