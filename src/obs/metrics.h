#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file metrics.h
/// Lock-cheap metrics primitives and the process registry.
///
/// Design constraints (DESIGN.md §13):
///   - The *update* path (Inc/Set/Observe) is wait-free: relaxed atomic
///     adds, no locks, no allocation. It is safe to call from the per-window
///     hot path and from every shard worker concurrently.
///   - The *registration* path takes the registry mutex (TSA-annotated) and
///     is expected to run once at setup; registered instruments are never
///     deleted, so the returned pointers stay valid for the registry's
///     lifetime and can be cached in hot structs.
///   - `Collect()` reads each instrument with acquire-free relaxed loads.
///     Counters are monotone, so a snapshot is internally consistent in the
///     only sense that matters for monitoring: every value is one that the
///     instrument actually held, and re-collecting never goes backwards.
///   - Histograms use fixed log-2 bucket boundaries, which makes
///     `MergeFrom` associative and commutative (bucket-wise adds) — the
///     property the shard-merge tests pin down.
///
/// Naming scheme (enforced by tools/lint.sh rule `vcd-obs-naming`):
/// `vcd_<subsystem>_<name>_<unit>`; counters end in `_total`, histograms in
/// a unit suffix (`_ns`, `_us`, `_seconds`, `_bytes`). Gauges name a level
/// (`vcd_shard_queue_depth`).

namespace vcd::obs {

/// \brief Monotone counter. Wait-free increments; relaxed ordering.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Last-write-wins level. `Add` supports up/down adjustment.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Fixed log-2-bucket histogram for latency-style values.
///
/// Bucket `i` (0 < i < kNumBuckets-1) covers `[2^i, 2^(i+1))`; bucket 0
/// covers everything below 2 (negatives clamp to 0); the last bucket
/// saturates: every value at or above `2^(kNumBuckets-1)` lands there.
/// With nanosecond observations the top bucket starts at 2^39 ns ≈ 9.2
/// minutes — far beyond any per-stage latency this pipeline produces.
///
/// All mutators and readers are wait-free relaxed atomics, so concurrent
/// `Observe` vs `Collect` is race-free (TSan-exercised); a collected
/// (count, sum, buckets) triple may be torn *across* fields under
/// concurrent writes, which monitoring tolerates and tests avoid by
/// quiescing writers before asserting.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Negative values clamp to 0.
  void Observe(int64_t v) {
    const int b = BucketFor(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v < 0 ? 0 : v, std::memory_order_relaxed);
  }

  /// Adds \p other's contents into this histogram (bucket-wise), the shard
  /// merge primitive. Associative and commutative because the bucket
  /// boundaries are fixed.
  void MergeFrom(const Histogram& other) {
    for (int i = 0; i < kNumBuckets; ++i) {
      buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Index of the bucket \p v falls into.
  static int BucketFor(int64_t v) {
    if (v < 2) return 0;
    // 63 - clz(v) is floor(log2(v)); v >= 2 so the argument is nonzero.
    const int log2 = 63 - __builtin_clzll(static_cast<uint64_t>(v));
    return log2 < kNumBuckets - 1 ? log2 : kNumBuckets - 1;
  }

  /// Inclusive upper bound of bucket \p i (`2^(i+1) - 1`), or INT64_MAX for
  /// the saturating last bucket. Used for export `le=` labels.
  static int64_t BucketUpperBound(int i) {
    if (i >= kNumBuckets - 1) return INT64_MAX;
    return (int64_t{1} << (i + 1)) - 1;
  }

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// What kind of instrument a snapshot row came from.
enum class MetricType { kCounter, kGauge, kHistogram };

/// One `key="value"` pair attached to an instrument (e.g. `shard="3"`).
struct MetricLabel {
  std::string key;
  std::string value;

  bool operator==(const MetricLabel&) const = default;
  bool operator<(const MetricLabel& o) const {
    return key != o.key ? key < o.key : value < o.value;
  }
};

/// \brief Point-in-time reading of one instrument, as returned by
/// `MetricsRegistry::Collect()`. Rows are sorted by (name, labels) so the
/// export formats are byte-stable run to run.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<MetricLabel> labels;
  int64_t value = 0;  ///< counter / gauge reading
  // Histogram-only fields:
  int64_t count = 0;
  int64_t sum = 0;
  std::vector<int64_t> buckets;  ///< kNumBuckets cumulative-free raw counts
};

/// \brief Owns every instrument; hands out stable pointers.
///
/// `Global()` is the process registry the pipeline publishes into; tests
/// construct private instances for isolation. Registration dedupes on
/// (name, labels): asking twice returns the same instrument, so wiring code
/// can re-register idempotently. Re-registering a name as a different
/// instrument type is a VCD_CHECK failure (a programming error, not input).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Global();

  /// Registers (or finds) a counter. Pointer is valid for the registry's
  /// lifetime.
  Counter* RegisterCounter(const std::string& name, const std::string& help,
                           std::vector<MetricLabel> labels = {})
      VCD_EXCLUDES(mu_);

  /// Registers (or finds) a gauge.
  Gauge* RegisterGauge(const std::string& name, const std::string& help,
                       std::vector<MetricLabel> labels = {}) VCD_EXCLUDES(mu_);

  /// Registers (or finds) a histogram.
  Histogram* RegisterHistogram(const std::string& name, const std::string& help,
                               std::vector<MetricLabel> labels = {})
      VCD_EXCLUDES(mu_);

  /// Snapshot of every registered instrument, sorted by (name, labels).
  std::vector<MetricSnapshot> Collect() const VCD_EXCLUDES(mu_);

  /// Snapshot rendered as one JSON document (stable key order; see
  /// DESIGN.md §13 for the schema).
  std::string ToJson() const VCD_EXCLUDES(mu_);

  /// Snapshot in the Prometheus text exposition format (HELP/TYPE lines,
  /// cumulative `_bucket{le=...}` rows, `_sum`/`_count`).
  std::string ToPrometheusText() const VCD_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string help;
    MetricType type;
    // Exactly one of these is set, matching `type`.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, std::vector<MetricLabel>>;

  Entry* FindOrCreate(const std::string& name, const std::string& help,
                      std::vector<MetricLabel> labels, MetricType type)
      VCD_REQUIRES(mu_);

  // kMetricsRegistry: registration runs under the monitor or executor
  // control lock (detector construction); nothing is ever acquired while
  // this is held (DESIGN.md §14).
  mutable Mutex mu_{LockRank::kMetricsRegistry, "metrics_registry"};
  // std::map keeps (name, labels) ordered, which is what makes Collect()
  // output — and therefore both export formats — byte-stable.
  std::map<Key, std::unique_ptr<Entry>> entries_ VCD_GUARDED_BY(mu_);
};

}  // namespace vcd::obs
