#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"
#include "core/config.h"
#include "core/monitor.h"
#include "qos/qos.h"
#include "util/status.h"

/// \file state_codec.h
/// Encoding between the in-memory checkpoint state (core::StreamCkpt et al.)
/// and the snapshot container's section payloads (docs/FORMATS.md).
///
/// The codec is engine-agnostic: the serial StreamMonitor and the parallel
/// StreamExecutor both checkpoint through the same SnapshotState — serial
/// matches simply carry seq = 0 and next_seq = 1. A snapshot taken by one
/// engine restores onto the other, provided the detector parameters match
/// (CheckMeta rejects everything else with a typed error).

namespace vcd::ckpt {

/// A stream match tagged with its global submission sequence number
/// (parallel::SeqMatch's shape, mirrored here so vcd_ckpt does not depend
/// on vcd_parallel).
struct SnapshotMatch {
  uint64_t seq = 0;
  core::StreamMatch match;
};

/// One input file's ingest position in the vcdctl driver loop — what lets a
/// restored `vcdctl monitor` resume feeding each file at the exact key
/// frame the checkpoint cut at.
struct DriverFileState {
  std::string path;
  int64_t frames_fed = 0;  ///< key frames already consumed by the detector
  bool done = false;       ///< the file was fully fed before the checkpoint
  int stream_id = 0;       ///< executor/monitor stream carrying this file
};

/// \brief Everything one snapshot carries, decoded.
struct SnapshotState {
  uint64_t epoch = 0;  ///< stamped by the Checkpointer on save

  // META — the detector parameters the snapshot was taken under. Restore
  // refuses to proceed when these disagree with the running config: resumed
  // state under a different K or hash family would be silently wrong.
  int k = 0;
  uint64_t hash_seed = 0;
  double delta = 0.0;
  double window_seconds = 0.0;
  double lambda = 0.0;
  int representation = 0;  ///< core::Representation as int
  int order = 0;           ///< core::CombinationOrder as int

  /// QUERYDB — the serialized VCDQ image of the subscribed portfolio, kept
  /// verbatim so restore re-imports byte-identical query sketches.
  std::vector<uint8_t> query_db;

  // EXEC — id/sequence counters.
  int next_stream_id = 1;
  uint64_t next_seq = 1;

  /// STREAMS — every open stream: health machine + full detector state.
  std::vector<core::StreamCkpt> streams;

  /// MATCHES — the merged match log at the barrier, ascending seq.
  std::vector<SnapshotMatch> matches;

  /// DRIVER — vcdctl ingest positions (absent for library users).
  std::vector<DriverFileState> driver;

  /// QOS — the overload governor's per-shard hysteresis machines (absent
  /// when the governor is disabled or the snapshot predates the section),
  /// so a restore mid-Degraded resumes degraded instead of forgetting the
  /// overload and thrashing back into it.
  std::vector<qos::GovernorShardCkpt> qos;
};

/// Encodes \p state into the container sections (everything except epoch,
/// which EncodeSnapshot stamps into the header).
std::vector<Section> EncodeState(const SnapshotState& state);

/// Decodes a verified snapshot container. Typed Corruption on any
/// structural violation (truncated payloads, trailing bytes, out-of-range
/// counts); missing optional sections (DRIVER) decode to empty.
Result<SnapshotState> DecodeState(const Snapshot& snap);

/// Fills SnapshotState's META fields from \p config.
void StampMeta(const core::DetectorConfig& config, SnapshotState* state);

/// Rejects a snapshot whose detector parameters disagree with \p config —
/// FailedPrecondition naming the first mismatched field.
Status CheckMeta(const SnapshotState& state, const core::DetectorConfig& config);

}  // namespace vcd::ckpt
