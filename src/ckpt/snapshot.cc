#include "ckpt/snapshot.h"

#include <cstring>
#include <string>

#include "ckpt/byte_io.h"
#include "util/crc32c.h"
#include "util/faultfx.h"

namespace vcd::ckpt {

std::vector<uint8_t> EncodeSnapshot(uint64_t epoch,
                                    const std::vector<Section>& sections) {
  ByteWriter w;
  w.Bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.U32(kSnapshotFormatVersion);
  w.U64(epoch);
  w.U32(static_cast<uint32_t>(sections.size()));
  for (const Section& s : sections) {
    w.U32(s.id);
    w.U64(s.payload.size());
    // The CRC seeds with the LE section id before the payload, so a flipped
    // id bit — which would silently reassign the payload's meaning — fails
    // verification just like a flipped payload bit.
    const uint8_t id_le[4] = {
        static_cast<uint8_t>(s.id), static_cast<uint8_t>(s.id >> 8),
        static_cast<uint8_t>(s.id >> 16), static_cast<uint8_t>(s.id >> 24)};
    uint32_t crc = util::Crc32c(id_le, sizeof(id_le));
    crc = util::Crc32c(crc, s.payload.data(), s.payload.size());
    w.U32(crc);
    w.Bytes(s.payload.data(), s.payload.size());
  }
  std::vector<uint8_t> out = w.Take();
  if (faultfx::ShouldFire(faultfx::Site::kCkptCrcCorrupt, epoch) &&
      !out.empty()) {
    // Flip one bit past the header so the image fails CRC verification but
    // still parses far enough to look like a snapshot — the shape of a real
    // storage-layer corruption.
    out[out.size() / 2] ^= 0x01;
  }
  return out;
}

Result<Snapshot> DecodeSnapshot(const uint8_t* data, size_t size) {
  ByteReader r(data, size);
  uint8_t magic[4] = {0, 0, 0, 0};
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::Corruption("snapshot: bad magic");
  }
  const uint32_t version = r.U32();
  if (!r.ok()) return Status::Corruption("snapshot: truncated header");
  if (version == 0 || version > kSnapshotFormatVersion) {
    return Status::FailedPrecondition("snapshot: format version " +
                                      std::to_string(version) +
                                      " not supported (max " +
                                      std::to_string(kSnapshotFormatVersion) +
                                      ")");
  }
  Snapshot snap;
  snap.epoch = r.U64();
  const uint32_t count = r.U32();
  if (!r.ok()) return Status::Corruption("snapshot: truncated header");
  snap.sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Section s;
    s.id = r.U32();
    const uint64_t len = r.U64();
    const uint32_t want_crc = r.U32();
    if (!r.ok() || len > r.remaining()) {
      return Status::Corruption("snapshot: section " + std::to_string(i) +
                                " truncated");
    }
    s.payload.resize(static_cast<size_t>(len));
    r.Bytes(s.payload.data(), s.payload.size());
    const uint8_t id_le[4] = {
        static_cast<uint8_t>(s.id), static_cast<uint8_t>(s.id >> 8),
        static_cast<uint8_t>(s.id >> 16), static_cast<uint8_t>(s.id >> 24)};
    uint32_t got_crc = util::Crc32c(id_le, sizeof(id_le));
    got_crc = util::Crc32c(got_crc, s.payload.data(), s.payload.size());
    if (got_crc != want_crc) {
      return Status::Corruption("snapshot: section id " + std::to_string(s.id) +
                                " CRC mismatch");
    }
    snap.sections.push_back(std::move(s));
  }
  VCD_RETURN_IF_ERROR(r.Finish("snapshot"));
  return snap;
}

}  // namespace vcd::ckpt
