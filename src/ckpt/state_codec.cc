#include "ckpt/state_codec.h"

#include <string>
#include <utility>

#include "ckpt/byte_io.h"

namespace vcd::ckpt {

namespace {

// ---------------------------------------------------------------------------
// Shared sub-codecs. Every Decode* helper returns false on a structural
// violation (an overrun is latched by the reader and surfaced by Finish);
// element counts are validated against the remaining span before any
// allocation so a corrupt count field cannot trigger a huge reserve.

bool CountFits(const ByteReader& r, uint32_t count, size_t min_elem_size) {
  return static_cast<uint64_t>(count) * min_elem_size <= r.remaining();
}

void EncodeMatch(const core::Match& m, ByteWriter* w) {
  w->I32(m.query_id);
  w->I64(m.start_frame);
  w->I64(m.end_frame);
  w->F64(m.start_time);
  w->F64(m.end_time);
  w->F64(m.similarity);
}

void DecodeMatch(ByteReader* r, core::Match* m) {
  m->query_id = r->I32();
  m->start_frame = r->I64();
  m->end_frame = r->I64();
  m->start_time = r->F64();
  m->end_time = r->F64();
  m->similarity = r->F64();
}

void EncodeRaw(const RunningStats& s, ByteWriter* w) {
  const RunningStats::Raw raw = s.ToRaw();
  w->I64(raw.n);
  w->F64(raw.mean);
  w->F64(raw.m2);
  w->F64(raw.sum);
  w->F64(raw.min);
  w->F64(raw.max);
}

RunningStats DecodeRaw(ByteReader* r) {
  RunningStats::Raw raw;
  raw.n = r->I64();
  raw.mean = r->F64();
  raw.m2 = r->F64();
  raw.sum = r->F64();
  raw.min = r->F64();
  raw.max = r->F64();
  return RunningStats::FromRaw(raw);
}

void EncodeDetector(const core::DetectorCkptState& d, ByteWriter* w) {
  w->U8(d.saw_frame ? 1 : 0);
  w->F64(d.max_timestamp);

  const auto& a = d.assembler;
  w->U8(a.open ? 1 : 0);
  w->F64(a.window_start_time);
  w->I64(a.next_index);
  w->I64(a.acc.index);
  w->I64(a.acc.start_frame);
  w->I64(a.acc.end_frame);
  w->F64(a.acc.start_time);
  w->F64(a.acc.end_time);
  w->U8(a.acc.degraded ? 1 : 0);
  w->U32(static_cast<uint32_t>(a.acc.ids.size()));
  for (features::CellId id : a.acc.ids) w->U32(id);

  w->U32(static_cast<uint32_t>(d.queries.size()));
  for (const auto& q : d.queries) {
    w->I32(q.id);
    w->F64(q.suppress_until);
  }

  const core::DetectorStats& s = d.stats;
  w->I64(s.key_frames);
  w->I64(s.windows);
  w->I64(s.sketch_combines);
  w->I64(s.sketch_compares);
  w->I64(s.bitsig_ors);
  w->I64(s.bitsig_builds);
  w->I64(s.candidates_pruned);
  w->I64(s.degraded_frames);
  w->I64(s.degraded_windows);
  w->I64(s.out_of_order_frames);
  w->I64(s.qos_skipped_windows);
  EncodeRaw(s.signatures_per_window, w);
  EncodeRaw(s.candidates_per_window, w);
  EncodeRaw(s.pool_slots_per_window, w);

  w->U32(static_cast<uint32_t>(d.matches.size()));
  for (const core::Match& m : d.matches) EncodeMatch(m, w);

  w->U32(static_cast<uint32_t>(d.candidates.size()));
  for (const core::CkptCandidate& c : d.candidates) {
    w->I32(c.ladder_level);
    w->I32(c.num_windows);
    w->I64(c.start_frame);
    w->I64(c.end_frame);
    w->F64(c.start_time);
    w->F64(c.end_time);
    w->U32(static_cast<uint32_t>(c.sigs.size()));
    for (const auto& sig : c.sigs) {
      w->I32(sig.query_id);
      w->U32(static_cast<uint32_t>(sig.words.size()));
      for (uint64_t word : sig.words) w->U64(word);
    }
    w->U32(static_cast<uint32_t>(c.mins.size()));
    for (uint64_t v : c.mins) w->U64(v);
    w->U32(static_cast<uint32_t>(c.related_ids.size()));
    for (int id : c.related_ids) w->I32(id);
  }
}

bool DecodeDetector(ByteReader* r, core::DetectorCkptState* d) {
  d->saw_frame = r->U8() != 0;
  d->max_timestamp = r->F64();

  auto& a = d->assembler;
  a.open = r->U8() != 0;
  a.window_start_time = r->F64();
  a.next_index = r->I64();
  a.acc.index = r->I64();
  a.acc.start_frame = r->I64();
  a.acc.end_frame = r->I64();
  a.acc.start_time = r->F64();
  a.acc.end_time = r->F64();
  a.acc.degraded = r->U8() != 0;
  const uint32_t num_ids = r->U32();
  if (!CountFits(*r, num_ids, 4)) return false;
  a.acc.ids.resize(num_ids);
  for (uint32_t i = 0; i < num_ids; ++i) a.acc.ids[i] = r->U32();

  const uint32_t num_queries = r->U32();
  if (!CountFits(*r, num_queries, 12)) return false;
  d->queries.resize(num_queries);
  for (auto& q : d->queries) {
    q.id = r->I32();
    q.suppress_until = r->F64();
  }

  core::DetectorStats& s = d->stats;
  s.key_frames = r->I64();
  s.windows = r->I64();
  s.sketch_combines = r->I64();
  s.sketch_compares = r->I64();
  s.bitsig_ors = r->I64();
  s.bitsig_builds = r->I64();
  s.candidates_pruned = r->I64();
  s.degraded_frames = r->I64();
  s.degraded_windows = r->I64();
  s.out_of_order_frames = r->I64();
  s.qos_skipped_windows = r->I64();
  s.signatures_per_window = DecodeRaw(r);
  s.candidates_per_window = DecodeRaw(r);
  s.pool_slots_per_window = DecodeRaw(r);

  const uint32_t num_matches = r->U32();
  if (!CountFits(*r, num_matches, 44)) return false;
  d->matches.resize(num_matches);
  for (auto& m : d->matches) DecodeMatch(r, &m);

  const uint32_t num_cands = r->U32();
  if (!CountFits(*r, num_cands, 52)) return false;
  d->candidates.resize(num_cands);
  for (auto& c : d->candidates) {
    c.ladder_level = r->I32();
    c.num_windows = r->I32();
    c.start_frame = r->I64();
    c.end_frame = r->I64();
    c.start_time = r->F64();
    c.end_time = r->F64();
    const uint32_t num_sigs = r->U32();
    if (!CountFits(*r, num_sigs, 8)) return false;
    c.sigs.resize(num_sigs);
    for (auto& sig : c.sigs) {
      sig.query_id = r->I32();
      const uint32_t num_words = r->U32();
      if (!CountFits(*r, num_words, 8)) return false;
      sig.words.resize(num_words);
      for (auto& word : sig.words) word = r->U64();
    }
    const uint32_t num_mins = r->U32();
    if (!CountFits(*r, num_mins, 8)) return false;
    c.mins.resize(num_mins);
    for (auto& v : c.mins) v = r->U64();
    const uint32_t num_related = r->U32();
    if (!CountFits(*r, num_related, 4)) return false;
    c.related_ids.resize(num_related);
    for (auto& id : c.related_ids) id = r->I32();
  }
  return r->ok();
}

void EncodeStream(const core::StreamCkpt& s, ByteWriter* w) {
  w->I32(s.stream_id);
  w->Str(s.name);
  w->U64(s.matches_consumed);
  w->I32(s.health);
  w->I32(s.consecutive_faults);
  w->I32(s.consecutive_clean);
  w->I64(s.quarantine_remaining);
  w->I64(s.backoff_frames);
  w->F64(s.max_timestamp);
  w->U8(s.saw_timestamp ? 1 : 0);
  w->I32(s.priority);
  EncodeDetector(s.detector, w);
}

bool DecodeStream(ByteReader* r, core::StreamCkpt* s) {
  s->stream_id = r->I32();
  if (!r->Str(&s->name)) return false;
  s->matches_consumed = r->U64();
  s->health = r->I32();
  s->consecutive_faults = r->I32();
  s->consecutive_clean = r->I32();
  s->quarantine_remaining = r->I64();
  s->backoff_frames = r->I64();
  s->max_timestamp = r->F64();
  s->saw_timestamp = r->U8() != 0;
  s->priority = r->I32();
  return DecodeDetector(r, &s->detector);
}

}  // namespace

std::vector<Section> EncodeState(const SnapshotState& state) {
  std::vector<Section> sections;

  {
    ByteWriter w;
    w.I32(state.k);
    w.U64(state.hash_seed);
    w.F64(state.delta);
    w.F64(state.window_seconds);
    w.F64(state.lambda);
    w.I32(state.representation);
    w.I32(state.order);
    sections.push_back(Section{kSectionMeta, w.Take()});
  }

  sections.push_back(Section{kSectionQueryDb, state.query_db});

  {
    ByteWriter w;
    w.U32(static_cast<uint32_t>(state.streams.size()));
    for (const core::StreamCkpt& s : state.streams) EncodeStream(s, &w);
    sections.push_back(Section{kSectionStreams, w.Take()});
  }

  {
    ByteWriter w;
    w.U32(static_cast<uint32_t>(state.matches.size()));
    for (const SnapshotMatch& m : state.matches) {
      w.U64(m.seq);
      w.I32(m.match.stream_id);
      w.Str(m.match.stream_name);
      EncodeMatch(m.match.match, &w);
    }
    sections.push_back(Section{kSectionMatches, w.Take()});
  }

  {
    ByteWriter w;
    w.I32(state.next_stream_id);
    w.U64(state.next_seq);
    sections.push_back(Section{kSectionExec, w.Take()});
  }

  if (!state.driver.empty()) {
    ByteWriter w;
    w.U32(static_cast<uint32_t>(state.driver.size()));
    for (const DriverFileState& f : state.driver) {
      w.Str(f.path);
      w.I64(f.frames_fed);
      w.U8(f.done ? 1 : 0);
      w.I32(f.stream_id);
    }
    sections.push_back(Section{kSectionDriver, w.Take()});
  }

  if (!state.qos.empty()) {
    ByteWriter w;
    w.U32(static_cast<uint32_t>(state.qos.size()));
    for (const qos::GovernorShardCkpt& m : state.qos) {
      w.I32(m.state);
      w.I64(m.dwell_ticks);
      w.I32(m.escalate_streak);
      w.I32(m.recover_streak);
    }
    sections.push_back(Section{kSectionQos, w.Take()});
  }

  return sections;
}

Result<SnapshotState> DecodeState(const Snapshot& snap) {
  SnapshotState state;
  state.epoch = snap.epoch;

  const Section* meta = snap.Find(kSectionMeta);
  if (meta == nullptr) return Status::Corruption("snapshot: META section missing");
  {
    ByteReader r(meta->payload.data(), meta->payload.size());
    state.k = r.I32();
    state.hash_seed = r.U64();
    state.delta = r.F64();
    state.window_seconds = r.F64();
    state.lambda = r.F64();
    state.representation = r.I32();
    state.order = r.I32();
    VCD_RETURN_IF_ERROR(r.Finish("META section"));
  }

  const Section* qdb = snap.Find(kSectionQueryDb);
  if (qdb == nullptr) {
    return Status::Corruption("snapshot: QUERYDB section missing");
  }
  state.query_db = qdb->payload;

  const Section* streams = snap.Find(kSectionStreams);
  if (streams == nullptr) {
    return Status::Corruption("snapshot: STREAMS section missing");
  }
  {
    ByteReader r(streams->payload.data(), streams->payload.size());
    const uint32_t count = r.U32();
    if (!CountFits(r, count, 50)) {
      return Status::Corruption("STREAMS section: stream count out of range");
    }
    state.streams.resize(count);
    for (auto& s : state.streams) {
      if (!DecodeStream(&r, &s)) {
        return Status::Corruption("STREAMS section: malformed stream record");
      }
    }
    VCD_RETURN_IF_ERROR(r.Finish("STREAMS section"));
  }

  const Section* matches = snap.Find(kSectionMatches);
  if (matches == nullptr) {
    return Status::Corruption("snapshot: MATCHES section missing");
  }
  {
    ByteReader r(matches->payload.data(), matches->payload.size());
    const uint32_t count = r.U32();
    if (!CountFits(r, count, 60)) {
      return Status::Corruption("MATCHES section: match count out of range");
    }
    state.matches.resize(count);
    for (auto& m : state.matches) {
      m.seq = r.U64();
      m.match.stream_id = r.I32();
      if (!r.Str(&m.match.stream_name)) {
        return Status::Corruption("MATCHES section: malformed match record");
      }
      DecodeMatch(&r, &m.match.match);
    }
    VCD_RETURN_IF_ERROR(r.Finish("MATCHES section"));
  }

  const Section* exec = snap.Find(kSectionExec);
  if (exec == nullptr) return Status::Corruption("snapshot: EXEC section missing");
  {
    ByteReader r(exec->payload.data(), exec->payload.size());
    state.next_stream_id = r.I32();
    state.next_seq = r.U64();
    VCD_RETURN_IF_ERROR(r.Finish("EXEC section"));
  }

  // DRIVER is optional: library embedders checkpoint without it.
  if (const Section* driver = snap.Find(kSectionDriver)) {
    ByteReader r(driver->payload.data(), driver->payload.size());
    const uint32_t count = r.U32();
    if (!CountFits(r, count, 17)) {
      return Status::Corruption("DRIVER section: file count out of range");
    }
    state.driver.resize(count);
    for (auto& f : state.driver) {
      if (!r.Str(&f.path)) {
        return Status::Corruption("DRIVER section: malformed file record");
      }
      f.frames_fed = r.I64();
      f.done = r.U8() != 0;
      f.stream_id = r.I32();
    }
    VCD_RETURN_IF_ERROR(r.Finish("DRIVER section"));
  }

  // QOS is optional: absent when the governor is disabled, and from
  // snapshots written before the section existed.
  if (const Section* qos_sec = snap.Find(kSectionQos)) {
    ByteReader r(qos_sec->payload.data(), qos_sec->payload.size());
    const uint32_t count = r.U32();
    if (!CountFits(r, count, 20)) {
      return Status::Corruption("QOS section: shard count out of range");
    }
    state.qos.resize(count);
    for (auto& m : state.qos) {
      m.state = r.I32();
      m.dwell_ticks = r.I64();
      m.escalate_streak = r.I32();
      m.recover_streak = r.I32();
    }
    VCD_RETURN_IF_ERROR(r.Finish("QOS section"));
  }

  return state;
}

void StampMeta(const core::DetectorConfig& config, SnapshotState* state) {
  state->k = config.K;
  state->hash_seed = config.hash_seed;
  state->delta = config.delta;
  state->window_seconds = config.window_seconds;
  state->lambda = config.lambda;
  state->representation = static_cast<int>(config.representation);
  state->order = static_cast<int>(config.order);
}

Status CheckMeta(const SnapshotState& state, const core::DetectorConfig& config) {
  if (state.k != config.K) {
    return Status::FailedPrecondition(
        "snapshot K=" + std::to_string(state.k) +
        " does not match config K=" + std::to_string(config.K));
  }
  if (state.hash_seed != config.hash_seed) {
    return Status::FailedPrecondition(
        "snapshot hash seed does not match config hash seed");
  }
  if (state.delta != config.delta) {
    return Status::FailedPrecondition("snapshot delta does not match config");
  }
  if (state.window_seconds != config.window_seconds) {
    return Status::FailedPrecondition(
        "snapshot window length does not match config");
  }
  if (state.lambda != config.lambda) {
    return Status::FailedPrecondition("snapshot lambda does not match config");
  }
  if (state.representation != static_cast<int>(config.representation)) {
    return Status::FailedPrecondition(
        "snapshot representation does not match config");
  }
  if (state.order != static_cast<int>(config.order)) {
    return Status::FailedPrecondition(
        "snapshot combination order does not match config");
  }
  return Status::OK();
}

}  // namespace vcd::ckpt
