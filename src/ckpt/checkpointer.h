#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/state_codec.h"
#include "obs/pipeline_metrics.h"
#include "util/status.h"

/// \file checkpointer.h
/// Durable snapshot management for one checkpoint directory.
///
/// The directory holds numbered snapshot files (`ckpt-<epoch>.vck`) plus a
/// `MANIFEST` text file naming the complete ones, newest last
/// (docs/FORMATS.md). Both are written through util::AtomicFileWriter, so a
/// crash at any instant leaves either the old state or the new state — never
/// a half-written file that the reader trusts. The manifest keeps the last
/// two snapshots: if the newest turns out torn or CRC-corrupt at restore
/// (e.g. the storage layer lied about durability), LoadLatest falls back to
/// the previous entry with a logged warning instead of failing the restart.

namespace vcd::ckpt {

/// \brief Owner of one checkpoint directory: epoch allocation, atomic snapshot
/// writes, manifest-driven restores.
class Checkpointer {
 public:
  /// Opens (and if needed creates) checkpoint directory \p dir, reading the
  /// MANIFEST to learn the last committed epoch. \p registry receives the
  /// `vcd_ckpt_*` metric families; null detaches observability.
  static Result<Checkpointer> Open(const std::string& dir,
                                   obs::MetricsRegistry* registry = nullptr);

  /// The epoch the next Save will stamp (last committed + 1; 1 on a fresh
  /// directory).
  uint64_t next_epoch() const { return next_epoch_; }

  /// Encodes \p state, stamps the next epoch into it, writes the snapshot
  /// atomically and commits it to the MANIFEST (keeping this entry and the
  /// previous one; older snapshot files are deleted best-effort). On any
  /// error the manifest — and therefore what a restore would load — is
  /// unchanged, and the epoch is not consumed.
  Status Save(const SnapshotState& state);

  /// Loads the newest complete snapshot named by the MANIFEST. A torn,
  /// truncated or CRC-corrupt entry is skipped with a VCD_WARN (counted in
  /// `vcd_ckpt_restore_corruption_total`) and the previous entry is tried.
  /// NotFound when the manifest names nothing; Corruption when every named
  /// snapshot is unreadable.
  Result<SnapshotState> LoadLatest();

 private:
  struct ManifestEntry {
    uint64_t epoch = 0;
    std::string filename;
  };

  Checkpointer(std::string dir, obs::CkptMetrics metrics)
      : dir_(std::move(dir)), metrics_(metrics) {}

  /// Atomically rewrites the MANIFEST to name \p entries (oldest first).
  Status WriteManifest(const std::vector<ManifestEntry>& entries);

  std::string dir_;
  obs::CkptMetrics metrics_;
  uint64_t next_epoch_ = 1;
  /// Complete snapshots, oldest first, mirroring the on-disk MANIFEST.
  std::vector<ManifestEntry> entries_;
};

}  // namespace vcd::ckpt
