#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

/// \file byte_io.h
/// Bounds-checked little-endian byte stream primitives for the snapshot
/// codec (docs/FORMATS.md). The writer appends into a growable buffer; the
/// reader walks a read-only span and latches a failure flag on the first
/// out-of-bounds access instead of reading past the end — every decode loop
/// checks `ok()` (or the reader's Status) once at the end rather than after
/// every field, which keeps the codecs linear and impossible to overrun.

namespace vcd::ckpt {

/// \brief Append-only little-endian encoder.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  /// IEEE-754 bit pattern, little-endian — bit-exact round trip (NaN
  /// payloads and signed zeros included), which the restore-equivalence
  /// guarantee depends on.
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Length-prefixed string: u32 byte count + raw bytes.
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Bounds-checked little-endian decoder over a read-only span.
///
/// Reads past the end return zero values and latch `ok() == false`; no read
/// ever touches memory outside [data, data+size). Decoders call Finish()
/// once after the last field.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : p_(data), n_(size) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return p_[off_++];
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[off_ + static_cast<size_t>(i)]) << (8 * i);
    off_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[off_ + static_cast<size_t>(i)]) << (8 * i);
    off_ += 8;
    return v;
  }

  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool Bytes(void* out, size_t n) {
    if (!Need(n)) return false;
    std::memcpy(out, p_ + off_, n);
    off_ += n;
    return true;
  }

  /// Reads a u32-length-prefixed string. The length is validated against
  /// the remaining span *before* any allocation, so a corrupt length field
  /// cannot trigger a multi-gigabyte reserve.
  bool Str(std::string* out) {
    const uint32_t len = U32();
    if (!Need(len)) return false;
    out->assign(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return true;
  }

  /// True until the first out-of-bounds read.
  bool ok() const { return !failed_; }
  size_t remaining() const { return n_ - off_; }

  /// Corruption unless every read stayed in bounds AND the span was fully
  /// consumed — trailing garbage is as suspect as truncation.
  Status Finish(const char* what) const {
    if (failed_) {
      return Status::Corruption(std::string(what) + ": truncated payload");
    }
    if (off_ != n_) {
      return Status::Corruption(std::string(what) + ": " +
                                std::to_string(n_ - off_) +
                                " trailing bytes after payload");
    }
    return Status::OK();
  }

 private:
  bool Need(size_t n) {
    if (failed_ || n > n_ - off_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const uint8_t* p_;
  size_t n_;
  size_t off_ = 0;
  bool failed_ = false;
};

}  // namespace vcd::ckpt
