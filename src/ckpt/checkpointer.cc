#include "ckpt/checkpointer.h"

#include <errno.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "ckpt/snapshot.h"
#include "util/atomic_file.h"
#include "util/logging.h"

namespace vcd::ckpt {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "VCDMANIFEST 1";
/// Complete snapshots the manifest retains: the newest plus one fallback.
constexpr size_t kManifestKeep = 2;

std::string SnapshotFilename(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%016" PRIu64 ".vck", epoch);
  return buf;
}

}  // namespace

Result<Checkpointer> Checkpointer::Open(const std::string& dir,
                                        obs::MetricsRegistry* registry) {
  if (dir.empty()) return Status::InvalidArgument("checkpoint dir is empty");
  if (mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir " + dir + ": " + std::strerror(errno));
  }
  Checkpointer ckpt(dir, obs::CkptMetrics::Create(registry));

  std::string manifest;
  Status read = util::ReadFileToString(dir + "/" + kManifestName, &manifest);
  if (read.code() == StatusCode::kNotFound) return ckpt;  // fresh directory
  VCD_RETURN_IF_ERROR(read);

  std::istringstream in(manifest);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return Status::Corruption(dir + "/MANIFEST: bad header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    ManifestEntry entry;
    if (!(fields >> entry.epoch >> entry.filename)) {
      // One malformed line must not make every snapshot unreachable; skip
      // it loudly and keep whatever parses.
      VCD_WARN("MANIFEST: skipping malformed line: " << line);
      continue;
    }
    ckpt.entries_.push_back(std::move(entry));
  }
  if (!ckpt.entries_.empty()) {
    ckpt.next_epoch_ = ckpt.entries_.back().epoch + 1;
    if (ckpt.metrics_.checkpoint_epoch != nullptr) {
      ckpt.metrics_.checkpoint_epoch->Set(
          static_cast<double>(ckpt.entries_.back().epoch));
    }
  }
  return ckpt;
}

Status Checkpointer::WriteManifest(const std::vector<ManifestEntry>& entries) {
  std::ostringstream out;
  out << kManifestHeader << "\n";
  for (const ManifestEntry& e : entries) {
    out << e.epoch << " " << e.filename << "\n";
  }
  auto writer = util::AtomicFileWriter::Open(dir_ + "/" + kManifestName);
  if (!writer.ok()) return writer.status();
  VCD_RETURN_IF_ERROR(writer->Append(out.str()));
  return writer->Commit();
}

Status Checkpointer::Save(const SnapshotState& state) {
  const auto t0 = std::chrono::steady_clock::now();
  auto fail = [this](Status st) {
    if (metrics_.checkpoint_failures_total != nullptr) {
      metrics_.checkpoint_failures_total->Inc();
    }
    return st;
  };

  const uint64_t epoch = next_epoch_;
  const std::vector<uint8_t> image =
      EncodeSnapshot(epoch, EncodeState(state));
  const std::string filename = SnapshotFilename(epoch);

  auto writer = util::AtomicFileWriter::Open(dir_ + "/" + filename, epoch);
  if (!writer.ok()) return fail(writer.status());
  Status st = writer->Append(image.data(), image.size());
  if (st.ok()) st = writer->Commit();
  if (!st.ok()) return fail(st);

  // The snapshot file is durable; now commit it to the manifest. Until this
  // rename lands, a restore still loads the previous snapshot — the new
  // file is invisible, which is exactly the crash-consistency contract.
  std::vector<ManifestEntry> entries = entries_;
  entries.push_back(ManifestEntry{epoch, filename});
  std::vector<ManifestEntry> dropped;
  while (entries.size() > kManifestKeep) {
    dropped.push_back(entries.front());
    entries.erase(entries.begin());
  }
  st = WriteManifest(entries);
  if (!st.ok()) return fail(st);
  entries_ = std::move(entries);
  next_epoch_ = epoch + 1;

  // Best-effort cleanup of snapshots the manifest no longer names; a
  // leftover file is garbage, not a correctness problem.
  for (const ManifestEntry& e : dropped) {
    ::unlink((dir_ + "/" + e.filename).c_str());
  }

  const auto elapsed = std::chrono::steady_clock::now() - t0;
  if (metrics_.checkpoints_total != nullptr) {
    metrics_.checkpoints_total->Inc();
    metrics_.checkpoint_bytes->Set(static_cast<double>(image.size()));
    metrics_.checkpoint_epoch->Set(static_cast<double>(epoch));
    metrics_.checkpoint_duration_ns->Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  return Status::OK();
}

Result<SnapshotState> Checkpointer::LoadLatest() {
  if (entries_.empty()) {
    return Status::NotFound("no snapshot committed in " + dir_);
  }
  // Newest first; fall back on any unreadable entry.
  const auto try_load = [](const std::string& path) -> Result<SnapshotState> {
    std::string image;
    VCD_RETURN_IF_ERROR(util::ReadFileToString(path, &image));
    auto snap = DecodeSnapshot(reinterpret_cast<const uint8_t*>(image.data()),
                               image.size());
    if (!snap.ok()) return snap.status();
    return DecodeState(*snap);
  };
  for (size_t i = entries_.size(); i-- > 0;) {
    const ManifestEntry& entry = entries_[i];
    const std::string path = dir_ + "/" + entry.filename;
    Result<SnapshotState> state = try_load(path);
    if (state.ok() && state->epoch != entry.epoch) {
      state = Status::Corruption("snapshot epoch " +
                                 std::to_string(state->epoch) +
                                 " disagrees with manifest entry " +
                                 std::to_string(entry.epoch));
    }
    if (state.ok()) {
      if (metrics_.restores_total != nullptr) metrics_.restores_total->Inc();
      return state;
    }
    VCD_WARN(path << ": unreadable snapshot (" << state.status().ToString()
                  << "); falling back to previous manifest entry");
    if (metrics_.restore_corruption_total != nullptr) {
      metrics_.restore_corruption_total->Inc();
    }
  }
  return Status::Corruption("every snapshot named by " + dir_ +
                            "/MANIFEST is unreadable");
}

}  // namespace vcd::ckpt
