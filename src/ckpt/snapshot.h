#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

/// \file snapshot.h
/// The versioned, sectioned snapshot container (docs/FORMATS.md).
///
/// Layout, all integers little-endian:
///
///   magic          4 bytes  'V' 'C' 'K' '1'
///   format_version u32      currently 1
///   epoch          u64      monotonically increasing checkpoint epoch
///   section_count  u32
///   per section:
///     id           u32      see kSection* below
///     payload_len  u64
///     crc32c       u32      CRC-32C (Castagnoli) of the LE id bytes
///                           followed by the payload bytes (covering the id
///                           means a flipped id bit cannot silently
///                           reassign a payload's meaning)
///     payload      payload_len bytes
///
/// The container is deliberately dumb: it knows section ids and checksums,
/// not what the payloads mean (state_codec.h does). Decoding verifies every
/// section CRC and all length bounds; any violation — truncation from a torn
/// write, a flipped bit, trailing garbage — is a typed Corruption, never a
/// crash or an over-read.

namespace vcd::ckpt {

inline constexpr uint8_t kSnapshotMagic[4] = {'V', 'C', 'K', '1'};
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Section ids. Values are part of the on-disk format; never renumber.
inline constexpr uint32_t kSectionMeta = 1;     ///< detector parameters
inline constexpr uint32_t kSectionQueryDb = 2;  ///< embedded VCDQ bytes
inline constexpr uint32_t kSectionStreams = 3;  ///< per-stream monitor state
inline constexpr uint32_t kSectionMatches = 4;  ///< merged match log
inline constexpr uint32_t kSectionExec = 5;     ///< executor counters
inline constexpr uint32_t kSectionDriver = 6;   ///< vcdctl ingest positions
inline constexpr uint32_t kSectionQos = 7;      ///< overload-governor machines

/// One decoded section: id + raw payload (CRC already verified).
struct Section {
  uint32_t id = 0;
  std::vector<uint8_t> payload;
};

/// A decoded snapshot container.
struct Snapshot {
  uint64_t epoch = 0;
  std::vector<Section> sections;

  /// First section with \p id, or null.
  const Section* Find(uint32_t id) const {
    for (const Section& s : sections) {
      if (s.id == id) return &s;
    }
    return nullptr;
  }
};

/// Serializes \p sections under \p epoch. Under an armed
/// faultfx::Site::kCkptCrcCorrupt the encoded image is bit-flipped after
/// the checksums are computed — the file lands on disk corrupt, exactly
/// like a storage-layer flip, exercising the manifest fallback path.
std::vector<uint8_t> EncodeSnapshot(uint64_t epoch,
                                    const std::vector<Section>& sections);

/// Parses and verifies a snapshot image. Typed failures:
/// - Corruption: bad magic, truncated header/section, CRC mismatch,
///   trailing bytes;
/// - FailedPrecondition: format_version newer than this binary understands.
Result<Snapshot> DecodeSnapshot(const uint8_t* data, size_t size);

}  // namespace vcd::ckpt
