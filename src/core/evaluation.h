#pragma once

#include <vector>

#include "core/match.h"
#include "util/stats.h"

/// \file evaluation.h
/// Precision/recall scoring with the paper's position rule (§VI): a
/// detection of query Q at stream position Q.p is correct iff
/// `Q.begin + w ≤ Q.p ≤ Q.end + w`, where w is the basic window length in
/// frames. Precision is the fraction of correct detections; recall the
/// fraction of ground-truth insertions found by at least one correct
/// detection.

namespace vcd::core {

/// Per-run evaluation breakdown.
struct EvalResult {
  PrecisionRecall pr;
  int num_detections = 0;
  int num_correct = 0;
  int num_truth = 0;
  int num_truth_found = 0;
};

/// Scores \p matches against \p truth. \p w_frames is the basic window
/// length converted to frames. The detection position Q.p is the match's
/// end frame (the stream position at detection time).
EvalResult EvaluateMatches(const std::vector<Match>& matches,
                           const std::vector<GroundTruthEntry>& truth,
                           int64_t w_frames);

}  // namespace vcd::core
