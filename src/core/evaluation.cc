#include "core/evaluation.h"

namespace vcd::core {

EvalResult EvaluateMatches(const std::vector<Match>& matches,
                           const std::vector<GroundTruthEntry>& truth,
                           int64_t w_frames) {
  EvalResult r;
  r.num_detections = static_cast<int>(matches.size());
  r.num_truth = static_cast<int>(truth.size());
  std::vector<bool> found(truth.size(), false);
  for (const Match& m : matches) {
    const int64_t p = m.end_frame;
    bool correct = false;
    for (size_t t = 0; t < truth.size(); ++t) {
      const GroundTruthEntry& g = truth[t];
      if (g.query_id != m.query_id) continue;
      if (g.begin_frame + w_frames <= p && p <= g.end_frame + w_frames) {
        correct = true;
        found[t] = true;
        // A detection may fall into several overlapping truth intervals of
        // the same query; credit them all.
      }
    }
    if (correct) ++r.num_correct;
  }
  for (bool f : found) r.num_truth_found += f;
  r.pr.precision = r.num_detections > 0
                       ? static_cast<double>(r.num_correct) / r.num_detections
                       : 0.0;
  r.pr.recall = r.num_truth > 0
                    ? static_cast<double>(r.num_truth_found) / r.num_truth
                    : 0.0;
  return r;
}

}  // namespace vcd::core
