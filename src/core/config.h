#pragma once

#include <cstdint>

#include "features/fingerprint.h"
#include "qos/qos.h"
#include "util/status.h"

/// \file config.h
/// Configuration of the continuous copy detector. Defaults follow the
/// paper's Table I (K=800, d=5, u=4, δ=0.7, w=5 s, λ=2).

namespace vcd::obs {
class MetricsRegistry;
}  // namespace vcd::obs

namespace vcd::core {

/// How candidate/query similarity state is represented (paper §V).
enum class Representation {
  kSketch,  ///< raw K-min-hash arrays; comparisons cost O(K) array ops
  kBit,     ///< 2K-bit signatures per (candidate, query); popcount ops
};

/// How candidate sequences are combined (paper §IV-A, Fig. 2).
enum class CombinationOrder {
  kSequential,  ///< all suffix lengths 1..⌈λL/w⌉; accuracy-first
  kGeometric,   ///< geometrically spaced lengths; ⌈log⌉ combinations
};

/// Human-readable names (for bench output).
const char* RepresentationName(Representation r);
const char* CombinationOrderName(CombinationOrder o);

/// What a frame submission does when its shard's queue is at capacity
/// (parallel executor only; see parallel/executor.h).
enum class BackpressurePolicy {
  kBlock,       ///< the producer blocks until the shard catches up
  kDropNewest,  ///< the frame is discarded and counted in ExecutorStats
};

/// Human-readable name ("block"/"drop") for logs and CLI flags.
const char* BackpressurePolicyName(BackpressurePolicy p);

/// What a stream does when its frames arrive degraded (corrupt payloads,
/// decode errors, clock skew) — the per-stream health state machine of the
/// parallel executor (DESIGN.md §12).
enum class CorruptionPolicy {
  kSkip,        ///< keep processing; degraded windows skip sketching
  kQuarantine,  ///< repeated faults quarantine the stream, with exponential
                ///< backoff readmission
  kFail,        ///< the first fault fails the stream hard (sticky error)
};

/// Human-readable name ("skip"/"quarantine"/"fail") for logs and CLI flags.
const char* CorruptionPolicyName(CorruptionPolicy p);

/// Configuration of the parallel sharded stream executor
/// (parallel::StreamExecutor). Streams are sharded across worker threads
/// with stable per-stream affinity; each shard owns a bounded submission
/// queue.
struct ParallelConfig {
  /// Worker threads (= shards). 0 means std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Capacity of each shard's bounded submission queue (frames + commands).
  int queue_capacity = 256;
  /// Behaviour of ProcessKeyFrame when the shard queue is full.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Upper bound, in milliseconds, a kBlock submission may wait on a full
  /// shard queue before the frame is dropped with cause="deadline" — the
  /// escape hatch from a wedged consumer. 0 (default) = wait forever.
  /// Ignored under kDropNewest (which never waits).
  int push_deadline_ms = 0;

  /// Adaptive overload governor (DESIGN.md §17). Disabled by default; when
  /// `qos.enabled` the executor senses per-shard pressure and drives the
  /// Normal/Degraded/Shedding/Recovering state machine.
  qos::QosConfig qos;

  /// Per-stream reaction to degraded frames.
  CorruptionPolicy on_corruption = CorruptionPolicy::kSkip;
  /// Consecutive degraded frames before a stream turns kDegraded.
  int degraded_after_faults = 3;
  /// Consecutive degraded frames before a kQuarantine stream is
  /// quarantined (must be >= degraded_after_faults).
  int quarantine_after_faults = 8;
  /// Consecutive clean frames before a degraded stream is kHealthy again
  /// (also resets the quarantine backoff).
  int recover_after_frames = 16;
  /// Frames discarded by the first quarantine; doubles per re-quarantine
  /// up to quarantine_backoff_max_frames. Frame-count (not wall-clock)
  /// backoff keeps readmission deterministic under test.
  int quarantine_backoff_frames = 32;
  /// Upper bound of the exponential quarantine backoff.
  int quarantine_backoff_max_frames = 1024;

  /// Watchdog tick in milliseconds; > 0 starts a watchdog thread that
  /// fails over shards whose queue stops draining (and readmits them when
  /// they drain again). 0 disables the watchdog.
  int watchdog_ms = 0;

  /// Registry the executor and its shards publish metrics into (not owned;
  /// must outlive the executor). Null (default) makes the executor create a
  /// private registry — ExecutorStats reads through the registry, so one
  /// always exists; pass `&obs::MetricsRegistry::Global()` to export
  /// process-wide (vcdctl does).
  obs::MetricsRegistry* metrics = nullptr;

  /// Validates ranges.
  Status Validate() const;
};

/// Full detector configuration.
struct DetectorConfig {
  /// Frame fingerprinting (d, u, partition scheme).
  features::FingerprintOptions fingerprint;

  /// Number of min-hash functions K.
  int K = 800;
  /// Seed for the hash family (kept fixed between queries and stream!).
  uint64_t hash_seed = 0x5eed;

  /// Similarity threshold δ of Definition 1.
  double delta = 0.7;
  /// Basic window length w in seconds.
  double window_seconds = 5.0;
  /// Tempo-scaling bound λ: candidates longer than λL windows expire
  /// (the paper argues λ ≤ 2 after [28]).
  double lambda = 2.0;

  Representation representation = Representation::kBit;
  CombinationOrder order = CombinationOrder::kSequential;
  /// Use the Hash-Query index to find related queries (vs comparing all).
  bool use_index = true;
  /// Apply Lemma-2 pruning (ablation knob; on in the paper).
  bool enable_pruning = true;
  /// Run the per-window hot path on the flat arena/SoA candidate storage
  /// with batched signature kernels (SignaturePool/SketchPool) instead of
  /// the scalar per-object reference path. Both paths are semantically
  /// identical (property-tested); the pooled path performs zero heap
  /// allocations per steady-state window. Off = the scalar reference.
  bool use_pooled_kernels = true;

  /// After a query matches, suppress repeated reports of the same query for
  /// this many seconds of stream time. Negative = the query's own duration
  /// (default); 0 = report every matching candidate.
  double report_cooldown_seconds = -1.0;

  /// Debug validator: when set, every processed basic window is followed by
  /// a full CopyDetector::ValidateState() sweep (candidate expiry bound,
  /// sorted signature/related lists, bit-signature well-formedness) and any
  /// violation aborts via VCD_CHECK_OK. O(candidates × K) per window — for
  /// tests and debugging only, off by default.
  bool validate_state = false;

  /// Registry the detector publishes per-window counters and stage-latency
  /// histograms into (not owned; must outlive the detector). Null (default)
  /// detaches observability: no registration, no per-window publishing, no
  /// span clock reads.
  obs::MetricsRegistry* metrics = nullptr;

  /// Validates ranges.
  Status Validate() const;
};

}  // namespace vcd::core
