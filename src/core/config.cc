#include "core/config.h"

namespace vcd::core {

const char* RepresentationName(Representation r) {
  return r == Representation::kSketch ? "Sketch" : "Bit";
}

const char* CombinationOrderName(CombinationOrder o) {
  return o == CombinationOrder::kSequential ? "Sequential" : "Geometric";
}

const char* BackpressurePolicyName(BackpressurePolicy p) {
  return p == BackpressurePolicy::kBlock ? "block" : "drop";
}

const char* CorruptionPolicyName(CorruptionPolicy p) {
  switch (p) {
    case CorruptionPolicy::kSkip:
      return "skip";
    case CorruptionPolicy::kQuarantine:
      return "quarantine";
    case CorruptionPolicy::kFail:
      return "fail";
  }
  return "unknown";
}

Status ParallelConfig::Validate() const {
  if (num_threads < 0) return Status::InvalidArgument("num_threads must be >= 0");
  if (queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (degraded_after_faults < 1) {
    return Status::InvalidArgument("degraded_after_faults must be >= 1");
  }
  if (quarantine_after_faults < degraded_after_faults) {
    return Status::InvalidArgument(
        "quarantine_after_faults must be >= degraded_after_faults");
  }
  if (recover_after_frames < 1) {
    return Status::InvalidArgument("recover_after_frames must be >= 1");
  }
  if (quarantine_backoff_frames < 1) {
    return Status::InvalidArgument("quarantine_backoff_frames must be >= 1");
  }
  if (quarantine_backoff_max_frames < quarantine_backoff_frames) {
    return Status::InvalidArgument(
        "quarantine_backoff_max_frames must be >= quarantine_backoff_frames");
  }
  if (watchdog_ms < 0) return Status::InvalidArgument("watchdog_ms must be >= 0");
  if (push_deadline_ms < 0) {
    return Status::InvalidArgument("push_deadline_ms must be >= 0");
  }
  VCD_RETURN_IF_ERROR(qos.Validate());
  return Status::OK();
}

Status DetectorConfig::Validate() const {
  VCD_RETURN_IF_ERROR(fingerprint.feature.Validate());
  if (fingerprint.u < 1) return Status::InvalidArgument("u must be >= 1");
  if (K < 1) return Status::InvalidArgument("K must be >= 1");
  if (delta <= 0.0 || delta > 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1]");
  }
  if (window_seconds <= 0.0) {
    return Status::InvalidArgument("window_seconds must be positive");
  }
  if (lambda < 1.0) return Status::InvalidArgument("lambda must be >= 1");
  return Status::OK();
}

}  // namespace vcd::core
