#include "core/config.h"

namespace vcd::core {

const char* RepresentationName(Representation r) {
  return r == Representation::kSketch ? "Sketch" : "Bit";
}

const char* CombinationOrderName(CombinationOrder o) {
  return o == CombinationOrder::kSequential ? "Sequential" : "Geometric";
}

const char* BackpressurePolicyName(BackpressurePolicy p) {
  return p == BackpressurePolicy::kBlock ? "block" : "drop";
}

Status ParallelConfig::Validate() const {
  if (num_threads < 0) return Status::InvalidArgument("num_threads must be >= 0");
  if (queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  return Status::OK();
}

Status DetectorConfig::Validate() const {
  VCD_RETURN_IF_ERROR(fingerprint.feature.Validate());
  if (fingerprint.u < 1) return Status::InvalidArgument("u must be >= 1");
  if (K < 1) return Status::InvalidArgument("K must be >= 1");
  if (delta <= 0.0 || delta > 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1]");
  }
  if (window_seconds <= 0.0) {
    return Status::InvalidArgument("window_seconds must be positive");
  }
  if (lambda < 1.0) return Status::InvalidArgument("lambda must be >= 1");
  return Status::OK();
}

}  // namespace vcd::core
