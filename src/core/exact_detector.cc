#include "core/exact_detector.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace vcd::core {
namespace {

/// Union of two sorted distinct-id sets.
sketch::CellIdSet Union(const sketch::CellIdSet& a, const sketch::CellIdSet& b) {
  std::vector<features::CellId> merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.ids().begin(), a.ids().end(), b.ids().begin(), b.ids().end(),
                 std::back_inserter(merged));
  return sketch::CellIdSet::FromSequence(std::move(merged));
}

}  // namespace

Result<std::unique_ptr<ExactDetector>> ExactDetector::Create(
    const DetectorConfig& config) {
  VCD_RETURN_IF_ERROR(config.Validate());
  auto det = std::unique_ptr<ExactDetector>(new ExactDetector(config));
  auto fp = features::FrameFingerprinter::Create(config.fingerprint);
  if (!fp.ok()) return fp.status();
  det->fingerprinter_ =
      std::make_unique<features::FrameFingerprinter>(std::move(fp).value());
  auto assembler = stream::BasicWindowAssembler::Create(config.window_seconds);
  if (!assembler.ok()) return assembler.status();
  det->assembler_ =
      std::make_unique<stream::BasicWindowAssembler>(std::move(assembler).value());
  return det;
}

Status ExactDetector::AddQuery(int id,
                               const std::vector<vcd::video::DcFrame>& key_frames,
                               double duration_seconds) {
  if (key_frames.empty()) return Status::InvalidArgument("query has no key frames");
  if (duration_seconds <= 0) {
    const double span = key_frames.back().timestamp - key_frames.front().timestamp;
    const double spacing = key_frames.size() > 1
                               ? span / static_cast<double>(key_frames.size() - 1)
                               : config_.window_seconds;
    duration_seconds = span + spacing;
  }
  return AddQueryCells(id, fingerprinter_->FingerprintSequence(key_frames),
                       duration_seconds);
}

Status ExactDetector::AddQueryCells(int id, std::vector<features::CellId> ids,
                                    double duration_seconds) {
  if (ids.empty()) return Status::InvalidArgument("query has no frames");
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("query duration must be positive");
  }
  for (const Query& q : queries_) {
    if (q.id == id) return Status::AlreadyExists("query id " + std::to_string(id));
  }
  Query q;
  q.id = id;
  q.duration_seconds = duration_seconds;
  q.set = sketch::CellIdSet::FromSequence(std::move(ids));
  q.max_windows = std::max(
      1, static_cast<int>(std::ceil(config_.lambda * duration_seconds /
                                    config_.window_seconds)));
  global_max_windows_ = std::max(global_max_windows_, q.max_windows);
  queries_.push_back(std::move(q));
  return Status::OK();
}

Status ExactDetector::RemoveQuery(int id) {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i].id == id) {
      queries_.erase(queries_.begin() + static_cast<long>(i));
      global_max_windows_ = 1;
      for (const Query& q : queries_) {
        global_max_windows_ = std::max(global_max_windows_, q.max_windows);
      }
      return Status::OK();
    }
  }
  return Status::NotFound("query id " + std::to_string(id));
}

Status ExactDetector::ProcessKeyFrame(const vcd::video::DcFrame& frame) {
  return ProcessFingerprint(frame.frame_index, frame.timestamp,
                            fingerprinter_->Fingerprint(frame));
}

Status ExactDetector::ProcessFingerprint(int64_t frame_index, double timestamp,
                                         features::CellId id) {
  stream::BasicWindow done;
  if (assembler_->Add(frame_index, timestamp, id, &done)) ProcessWindow(done);
  return Status::OK();
}

Status ExactDetector::Finish() {
  stream::BasicWindow done;
  if (assembler_->Flush(&done)) ProcessWindow(done);
  return Status::OK();
}

void ExactDetector::ProcessWindow(const stream::BasicWindow& window) {
  const auto wset = sketch::CellIdSet::FromSequence(window.ids);
  for (Candidate& c : candidates_) {
    c.set = Union(c.set, wset);
    ++c.num_windows;
    c.end_frame = window.end_frame;
    c.end_time = window.end_time;
  }
  Candidate fresh;
  fresh.num_windows = 1;
  fresh.start_frame = window.start_frame;
  fresh.end_frame = window.end_frame;
  fresh.start_time = window.start_time;
  fresh.end_time = window.end_time;
  fresh.set = wset;
  candidates_.push_back(std::move(fresh));
  while (!candidates_.empty() &&
         candidates_.front().num_windows > global_max_windows_) {
    candidates_.pop_front();
  }
  for (const Candidate& c : candidates_) {
    for (Query& q : queries_) {
      if (c.num_windows > q.max_windows) continue;
      const double sim = c.set.Jaccard(q.set);
      if (sim < config_.delta) continue;
      const double cooldown = config_.report_cooldown_seconds < 0
                                  ? config_.lambda * q.duration_seconds
                                  : config_.report_cooldown_seconds;
      if (cooldown > 0 && c.end_time < q.suppress_until) continue;
      q.suppress_until = c.end_time + cooldown;
      Match m;
      m.query_id = q.id;
      m.start_frame = c.start_frame;
      m.end_frame = c.end_frame;
      m.start_time = c.start_time;
      m.end_time = c.end_time;
      m.similarity = sim;
      matches_.push_back(m);
    }
  }
}

double ExactDetector::BestSimilarity(int id) const {
  const Query* query = nullptr;
  for (const Query& q : queries_) {
    if (q.id == id) query = &q;
  }
  if (query == nullptr) return 0.0;
  double best = 0.0;
  for (const Candidate& c : candidates_) {
    best = std::max(best, c.set.Jaccard(query->set));
  }
  return best;
}

void ExactDetector::ResetStream() {
  assembler_ = std::make_unique<stream::BasicWindowAssembler>(
      stream::BasicWindowAssembler::Create(config_.window_seconds).value());
  candidates_.clear();
  matches_.clear();
  for (Query& q : queries_) q.suppress_until = -1.0;
}

}  // namespace vcd::core
