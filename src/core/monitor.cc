#include "core/monitor.h"

#include <string>

namespace vcd::core {

Result<std::unique_ptr<StreamMonitor>> StreamMonitor::Create(
    const DetectorConfig& config) {
  VCD_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<StreamMonitor>(new StreamMonitor(config));
}

Result<PreparedQuery> PrepareQuery(const DetectorConfig& config,
                                   const std::vector<vcd::video::DcFrame>& key_frames,
                                   double duration_seconds) {
  if (key_frames.empty()) return Status::InvalidArgument("query has no key frames");
  // Fingerprint + sketch once with a scratch detector-config pipeline so
  // every stream shares the identical query sketch.
  auto fp = features::FrameFingerprinter::Create(config.fingerprint);
  if (!fp.ok()) return fp.status();
  auto family = sketch::MinHashFamily::Create(config.K, config.hash_seed);
  if (!family.ok()) return family.status();
  sketch::Sketcher sketcher(&family.value());
  const auto cells = fp->FingerprintSequence(key_frames);
  if (duration_seconds <= 0) {
    const double span = key_frames.back().timestamp - key_frames.front().timestamp;
    const double spacing = key_frames.size() > 1
                               ? span / static_cast<double>(key_frames.size() - 1)
                               : config.window_seconds;
    duration_seconds = span + spacing;
  }
  PreparedQuery q;
  q.length_frames = static_cast<int>(cells.size());
  q.duration_seconds = duration_seconds;
  q.sketch = sketcher.FromSequence(cells);
  return q;
}

Status StreamMonitor::AddQuerySketchLocked(int id, const sketch::Sketch& sk,
                                           int length_frames,
                                           double duration_seconds) {
  if (sk.K() != config_.K) {
    return Status::InvalidArgument("sketch K does not match monitor config");
  }
  for (const PortfolioEntry& e : portfolio_) {
    if (e.id == id) return Status::AlreadyExists("query id " + std::to_string(id));
  }
  // Propagate to every open stream first so a failure leaves the portfolio
  // unchanged.
  for (auto& [sid, state] : streams_) {
    VCD_RETURN_IF_ERROR(
        state.detector->AddQuerySketch(id, sk, length_frames, duration_seconds));
  }
  portfolio_.push_back(PortfolioEntry{id, length_frames, duration_seconds, sk});
  return Status::OK();
}

Status StreamMonitor::AddQuerySketch(int id, const sketch::Sketch& sk,
                                     int length_frames, double duration_seconds) {
  MutexLock lock(mu_);
  return AddQuerySketchLocked(id, sk, length_frames, duration_seconds);
}

Status StreamMonitor::AddQuery(int id,
                               const std::vector<vcd::video::DcFrame>& key_frames,
                               double duration_seconds) {
  auto prepared = PrepareQuery(config_, key_frames, duration_seconds);
  if (!prepared.ok()) return prepared.status();
  return AddQuerySketch(id, prepared->sketch, prepared->length_frames,
                        prepared->duration_seconds);
}

Status StreamMonitor::ImportQueries(const QueryDb& db) {
  if (db.k != config_.K) {
    return Status::FailedPrecondition("query db K does not match monitor config");
  }
  if (db.hash_seed != config_.hash_seed) {
    return Status::FailedPrecondition("query db hash seed does not match config");
  }
  MutexLock lock(mu_);
  for (const StoredQuery& q : db.queries) {
    VCD_RETURN_IF_ERROR(
        AddQuerySketchLocked(q.id, q.sketch, q.length_frames, q.duration_seconds));
  }
  return Status::OK();
}

Status StreamMonitor::RemoveQuery(int id) {
  MutexLock lock(mu_);
  bool found = false;
  for (size_t i = 0; i < portfolio_.size(); ++i) {
    if (portfolio_[i].id == id) {
      portfolio_.erase(portfolio_.begin() + static_cast<long>(i));
      found = true;
      break;
    }
  }
  if (!found) return Status::NotFound("query id " + std::to_string(id));
  for (auto& [sid, state] : streams_) {
    VCD_RETURN_IF_ERROR(state.detector->RemoveQuery(id));
  }
  return Status::OK();
}

Result<int> StreamMonitor::OpenStream(std::string name) {
  MutexLock lock(mu_);
  auto det = CopyDetector::Create(config_);
  if (!det.ok()) return det.status();
  for (const PortfolioEntry& e : portfolio_) {
    VCD_RETURN_IF_ERROR((*det)->AddQuerySketch(e.id, e.sketch, e.length_frames,
                                               e.duration_seconds));
  }
  const int id = next_stream_id_++;
  StreamState state;
  state.name = std::move(name);
  state.detector = std::move(*det);
  streams_.emplace(id, std::move(state));
  return id;
}

void StreamMonitor::DrainMatches(int stream_id, StreamState* state) {
  const auto& ms = state->detector->matches();
  for (; state->matches_consumed < ms.size(); ++state->matches_consumed) {
    matches_.push_back(StreamMatch{stream_id, state->name,
                                   ms[state->matches_consumed]});
  }
}

Status StreamMonitor::ProcessKeyFrame(int stream_id,
                                      const vcd::video::DcFrame& frame) {
  MutexLock lock(mu_);
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return Status::NotFound("no such stream");
  VCD_RETURN_IF_ERROR(it->second.detector->ProcessKeyFrame(frame));
  DrainMatches(stream_id, &it->second);
  return Status::OK();
}

Status StreamMonitor::CloseStream(int stream_id) {
  MutexLock lock(mu_);
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return Status::NotFound("no such stream");
  VCD_RETURN_IF_ERROR(it->second.detector->Finish());
  DrainMatches(stream_id, &it->second);
  streams_.erase(it);
  return Status::OK();
}

Result<DetectorStats> StreamMonitor::StreamStats(int stream_id) const {
  MutexLock lock(mu_);
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) return Status::NotFound("no such stream");
  return it->second.detector->stats();
}

MonitorCkpt StreamMonitor::ExportCkpt() const {
  MutexLock lock(mu_);
  MonitorCkpt ckpt;
  ckpt.next_stream_id = next_stream_id_;
  for (const auto& [sid, state] : streams_) {
    StreamCkpt s;
    s.stream_id = sid;
    s.name = state.name;
    s.matches_consumed = state.matches_consumed;
    s.detector = state.detector->ExportCkptState();
    ckpt.streams.push_back(std::move(s));
  }
  ckpt.matches = matches_;
  return ckpt;
}

Status StreamMonitor::RestoreCkpt(const MonitorCkpt& ckpt) {
  MutexLock lock(mu_);
  if (!streams_.empty() || !matches_.empty()) {
    return Status::FailedPrecondition(
        "RestoreCkpt requires a monitor with no open streams or matches");
  }
  for (const StreamCkpt& s : ckpt.streams) {
    if (s.stream_id <= 0 || s.stream_id >= ckpt.next_stream_id) {
      return Status::Corruption("snapshot stream id " +
                                std::to_string(s.stream_id) +
                                " outside [1, next_stream_id)");
    }
    auto det = CopyDetector::Create(config_);
    if (!det.ok()) return det.status();
    for (const PortfolioEntry& e : portfolio_) {
      VCD_RETURN_IF_ERROR((*det)->AddQuerySketch(e.id, e.sketch, e.length_frames,
                                                 e.duration_seconds));
    }
    VCD_RETURN_IF_ERROR((*det)->RestoreCkptState(s.detector));
    StreamState state;
    state.name = s.name;
    state.detector = std::move(*det);
    state.matches_consumed = static_cast<size_t>(s.matches_consumed);
    if (state.matches_consumed > state.detector->matches().size()) {
      return Status::Corruption(
          "snapshot matches_consumed exceeds the stream's match count");
    }
    if (!streams_.emplace(s.stream_id, std::move(state)).second) {
      return Status::Corruption("duplicate stream id in snapshot");
    }
  }
  next_stream_id_ = ckpt.next_stream_id;
  matches_ = ckpt.matches;
  return Status::OK();
}

}  // namespace vcd::core
