#include "core/query_store.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace vcd::core {
namespace {

constexpr uint8_t kMagic[4] = {'V', 'C', 'D', 'Q'};
constexpr uint8_t kVersion = 1;
/// Upper bound on the sketch width the store accepts. Real deployments use
/// K in the tens-to-hundreds (paper §V-C); the cap exists so a corrupt K
/// field cannot drive multi-gigabyte allocations before the size check.
constexpr int kMaxK = 1 << 16;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int s = 24; s >= 0; s -= 8) out->push_back(static_cast<uint8_t>(v >> s));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) out->push_back(static_cast<uint8_t>(v >> s));
}

uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

Result<std::vector<uint8_t>> SerializeQueries(const QueryDb& db) {
  if (db.k < 1) return Status::InvalidArgument("K must be >= 1");
  if (db.k > kMaxK) {
    return Status::InvalidArgument("K " + std::to_string(db.k) +
                                   " exceeds store limit " +
                                   std::to_string(kMaxK));
  }
  if (db.queries.size() > static_cast<size_t>(UINT32_MAX)) {
    return Status::InvalidArgument("query count does not fit the u32 header");
  }
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  PutU32(&out, static_cast<uint32_t>(db.k));
  PutU64(&out, db.hash_seed);
  PutU32(&out, static_cast<uint32_t>(db.queries.size()));
  for (const StoredQuery& q : db.queries) {
    if (q.id < 0 || q.length_frames < 0) {
      return Status::InvalidArgument("negative id or length for query " +
                                     std::to_string(q.id));
    }
    if (q.sketch.K() != db.k) {
      return Status::InvalidArgument("sketch K mismatch for query " +
                                     std::to_string(q.id));
    }
    if (q.duration_seconds < 0) {
      return Status::InvalidArgument("negative duration for query " +
                                     std::to_string(q.id));
    }
    const double duration_ms = q.duration_seconds * 1000.0;
    if (duration_ms > static_cast<double>(UINT32_MAX)) {
      return Status::InvalidArgument("duration overflows u32 ms for query " +
                                     std::to_string(q.id));
    }
    PutU32(&out, static_cast<uint32_t>(q.id));
    PutU32(&out, static_cast<uint32_t>(q.length_frames));
    PutU32(&out, static_cast<uint32_t>(std::lround(duration_ms)));
    for (uint64_t v : q.sketch.mins) PutU64(&out, v);
  }
  return out;
}

Result<QueryDb> DeserializeQueries(const uint8_t* data, size_t size) {
  constexpr size_t kHeader = 4 + 1 + 4 + 8 + 4;
  if (size < kHeader) {
    return Status::Corruption("query store header truncated: " +
                              std::to_string(size) + " of " +
                              std::to_string(kHeader) + " bytes");
  }
  if (std::memcmp(data, kMagic, 4) != 0) return Status::Corruption("bad magic");
  if (data[4] != kVersion) {
    return Status::Corruption("unsupported store version " +
                              std::to_string(data[4]));
  }
  QueryDb db;
  const uint32_t raw_k = GetU32(data + 5);
  db.hash_seed = GetU64(data + 9);
  const uint32_t count = GetU32(data + 17);
  if (raw_k < 1 || raw_k > static_cast<uint32_t>(kMaxK)) {
    return Status::Corruption("implausible K " + std::to_string(raw_k) +
                              " (limit " + std::to_string(kMaxK) + ")");
  }
  db.k = static_cast<int>(raw_k);
  // Overflow-safe record accounting: divide the remaining bytes by the
  // record size instead of multiplying count * per_query, so a corrupt
  // count field cannot wrap the expected-size computation.
  const size_t per_query = 4 + 4 + 4 + static_cast<size_t>(db.k) * 8;
  const size_t body = size - kHeader;
  if (body / per_query < count) {
    return Status::Corruption(
        "query store truncated: header promises " + std::to_string(count) +
        " records of " + std::to_string(per_query) + " bytes but only " +
        std::to_string(body) + " payload bytes follow");
  }
  if (body % per_query != 0 || body / per_query != count) {
    return Status::Corruption(
        "trailing bytes after query records: " + std::to_string(body) +
        " payload bytes is not exactly " + std::to_string(count) +
        " records of " + std::to_string(per_query));
  }
  size_t pos = kHeader;
  db.queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    StoredQuery q;
    q.id = static_cast<int>(GetU32(data + pos));
    q.length_frames = static_cast<int>(GetU32(data + pos + 4));
    q.duration_seconds = static_cast<double>(GetU32(data + pos + 8)) / 1000.0;
    if (q.id < 0 || q.length_frames < 0) {
      return Status::Corruption("query record " + std::to_string(i) +
                                " has negative id or length");
    }
    pos += 12;
    q.sketch.mins.resize(static_cast<size_t>(db.k));
    for (int r = 0; r < db.k; ++r) {
      q.sketch.mins[static_cast<size_t>(r)] = GetU64(data + pos);
      pos += 8;
    }
    db.queries.push_back(std::move(q));
  }
  return db;
}

Status SaveQueriesFile(const QueryDb& db, const std::string& path) {
  auto bytes = SerializeQueries(db);
  if (!bytes.ok()) return bytes.status();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + path + " for writing");
  const size_t n = std::fwrite(bytes->data(), 1, bytes->size(), f);
  std::fclose(f);
  if (n != bytes->size()) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<QueryDb> LoadQueriesFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (len < 0) {
    std::fclose(f);
    return Status::Internal("cannot determine size of " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(len));
  const size_t n = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) return Status::Internal("short read from " + path);
  auto db = DeserializeQueries(bytes.data(), bytes.size());
  if (!db.ok()) return Status(db.status().code(),
                              path + ": " + db.status().message());
  return db;
}

}  // namespace vcd::core
