#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/query_store.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file monitor.h
/// Monitoring many *concurrent* video streams against one shared query
/// portfolio — the paper's deployment picture ("there are many concurrent
/// video streams and for each stream, there could be many continuous video
/// copy monitoring queries").
///
/// `StreamMonitor` owns the portfolio; every opened stream gets its own
/// detection state (candidate lists are inherently per-stream), and query
/// subscribe/unsubscribe propagates to all streams online.
///
/// ### Thread safety
/// `StreamMonitor` is *internally synchronized* on one annotated mutex
/// (`vcd::Mutex`, checked by Clang Thread Safety Analysis under
/// `VCD_WERROR`): every public method may be called from any thread, and
/// all of them serialize on `mu_` — the serial monitor stays a serial
/// engine, it just can no longer be corrupted by a stray concurrent call.
/// The accessors (`num_queries`, `num_open_streams`, `matches`,
/// `StreamStats`) return *snapshots by value*, never references into
/// internal containers, so a caller holding a result can never observe a
/// dangling or half-mutated view — the contract the parallel executor
/// (parallel/executor.h) relies on when it drives per-shard monitors'
/// building blocks from worker threads. For *scalable* multi-stream
/// processing use `parallel::StreamExecutor`, which shards streams across
/// worker threads (no shared lock on the frame path) and preserves this
/// class's semantics.

namespace vcd::core {

/// A match attributed to the stream it occurred on.
struct StreamMatch {
  int stream_id = 0;
  std::string stream_name;
  Match match;
};

/// \brief One monitored stream's full checkpointed state.
///
/// Shared by the serial StreamMonitor and the parallel executor's shards so
/// both engines write the same STREAMS snapshot section (docs/FORMATS.md):
/// the health-machine fields are live on shards and stay at their defaults
/// for serially monitored streams.
struct StreamCkpt {
  int stream_id = 0;
  std::string name;
  uint64_t matches_consumed = 0;
  /// Health machine (parallel/shard.h): state enum as int, fault/clean
  /// streaks, and the frame-count backoff "deadlines" — durations relative
  /// to the snapshot's persisted epoch, so a restored stream resumes its
  /// readmission countdown exactly where the crash interrupted it.
  int health = 0;
  int consecutive_faults = 0;
  int consecutive_clean = 0;
  int64_t quarantine_remaining = 0;
  int64_t backoff_frames = 0;
  double max_timestamp = 0.0;
  bool saw_timestamp = false;
  /// QoS priority class (qos::Priority as int) assigned at registration.
  /// Defaults to kNormal (1) for serially monitored streams and for
  /// snapshots written before the field existed.
  int priority = 1;
  DetectorCkptState detector;
};

/// \brief Checkpointed state of a whole StreamMonitor.
struct MonitorCkpt {
  int next_stream_id = 1;
  std::vector<StreamCkpt> streams;  ///< ascending stream_id
  std::vector<StreamMatch> matches;
};

/// A query prepared for subscription: the sketch of its key-frame cell
/// sequence plus the derived length/duration — everything a detector's
/// AddQuerySketch needs.
struct PreparedQuery {
  int length_frames = 0;
  double duration_seconds = 0.0;
  sketch::Sketch sketch;  // NOLINT(vcd-pooled-hotpath): per-query, cold
};

/// Fingerprints and sketches \p key_frames under \p config, inferring
/// \p duration_seconds from the timestamps when it is ≤ 0. Shared by the
/// serial monitor and the parallel executor so both subscribe *identical*
/// query sketches.
Result<PreparedQuery> PrepareQuery(const DetectorConfig& config,
                                   const std::vector<vcd::video::DcFrame>& key_frames,
                                   double duration_seconds);

/// \brief Fan-out facade: one query portfolio, many monitored streams.
class StreamMonitor {
 public:
  /// Creates a monitor; all streams share \p config.
  static Result<std::unique_ptr<StreamMonitor>> Create(const DetectorConfig& config);

  /// Subscribes a query (key-frame DC maps) on every stream, present and
  /// future.
  Status AddQuery(int id, const std::vector<vcd::video::DcFrame>& key_frames,
                  double duration_seconds = -1.0) VCD_EXCLUDES(mu_);

  /// Subscribes a pre-sketched query (e.g. from a loaded QueryDb whose K
  /// and hash seed match this monitor's config).
  Status AddQuerySketch(int id, const sketch::Sketch& sk, int length_frames,
                        double duration_seconds) VCD_EXCLUDES(mu_);

  /// Loads a persisted query database. Fails unless its hash-family
  /// parameters match the monitor's config.
  Status ImportQueries(const QueryDb& db) VCD_EXCLUDES(mu_);

  /// Unsubscribes a query everywhere.
  Status RemoveQuery(int id) VCD_EXCLUDES(mu_);

  /// Number of active queries (snapshot).
  int num_queries() const VCD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return static_cast<int>(portfolio_.size());
  }

  /// Opens a new monitored stream; returns its id.
  Result<int> OpenStream(std::string name) VCD_EXCLUDES(mu_);

  /// Flushes and closes a stream. Its matches remain readable.
  Status CloseStream(int stream_id) VCD_EXCLUDES(mu_);

  /// Number of currently open streams (snapshot).
  int num_open_streams() const VCD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return static_cast<int>(streams_.size());
  }

  /// Feeds one key frame of stream \p stream_id.
  Status ProcessKeyFrame(int stream_id, const vcd::video::DcFrame& frame)
      VCD_EXCLUDES(mu_);

  /// All matches so far, across open and closed streams, in arrival order.
  /// Returns a snapshot copy — safe to keep across later mutations.
  std::vector<StreamMatch> matches() const VCD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return matches_;
  }

  /// Detector stats for an open stream (snapshot copy).
  Result<DetectorStats> StreamStats(int stream_id) const VCD_EXCLUDES(mu_);

  /// \brief Exports every open stream's state plus the match log for a
  /// checkpoint. Safe between any two ProcessKeyFrame calls.
  MonitorCkpt ExportCkpt() const VCD_EXCLUDES(mu_);

  /// \brief Restores a checkpoint onto a fresh monitor.
  ///
  /// Preconditions: the portfolio has been re-imported (ImportQueries with
  /// the snapshot's embedded QueryDb) and no stream has been opened.
  /// Rebuilds each stream's detector and re-validates it; typed errors on
  /// mismatched config or malformed state.
  Status RestoreCkpt(const MonitorCkpt& ckpt) VCD_EXCLUDES(mu_);

 private:
  struct StreamState {
    std::string name;
    std::unique_ptr<CopyDetector> detector;
    size_t matches_consumed = 0;
  };
  struct PortfolioEntry {
    int id;
    int length_frames;
    double duration_seconds;
    sketch::Sketch sketch;  // NOLINT(vcd-pooled-hotpath): per-query, cold
  };

  explicit StreamMonitor(const DetectorConfig& config) : config_(config) {}

  /// AddQuerySketch body; requires mu_ held.
  Status AddQuerySketchLocked(int id, const sketch::Sketch& sk, int length_frames,
                              double duration_seconds) VCD_REQUIRES(mu_);

  /// Moves freshly produced matches of \p state into the global log.
  void DrainMatches(int stream_id, StreamState* state) VCD_REQUIRES(mu_);

  DetectorConfig config_;

  /// Guards the portfolio, the stream table and the match log. kMonitor:
  /// detector construction registers metrics (kMetricsRegistry) while this
  /// is held (DESIGN.md §14).
  mutable Mutex mu_{LockRank::kMonitor, "stream_monitor"};
  std::vector<PortfolioEntry> portfolio_ VCD_GUARDED_BY(mu_);
  std::map<int, StreamState> streams_ VCD_GUARDED_BY(mu_);
  int next_stream_id_ VCD_GUARDED_BY(mu_) = 1;
  std::vector<StreamMatch> matches_ VCD_GUARDED_BY(mu_);
};

}  // namespace vcd::core
