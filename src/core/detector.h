#pragma once

#include <memory>
#include <tuple>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/match.h"
#include "features/fingerprint.h"
#include "index/hash_query_index.h"
#include "sketch/bit_signature.h"
#include "sketch/minhash.h"
#include "stream/basic_window.h"
#include "stream/combiner.h"
#include "util/stats.h"
#include "util/status.h"
#include "video/partial_decoder.h"

/// \file detector.h
/// The continuous copy detector — the paper's full pipeline (§III–§V):
/// key-frame fingerprinting → basic-window min-hash sketches → (optionally
/// index-probed) related-query lists → candidate combination in Sequential
/// or Geometric order → bit-signature or raw-sketch similarity with Lemma-2
/// pruning → match reports.

namespace vcd::core {

/// Runtime counters exposed for the experiments.
struct DetectorStats {
  int64_t key_frames = 0;           ///< key frames consumed
  int64_t windows = 0;              ///< basic windows completed
  int64_t sketch_combines = 0;      ///< element-wise-min sketch merges
  int64_t sketch_compares = 0;      ///< full K-array sketch comparisons
  int64_t bitsig_ors = 0;           ///< bit-signature OR merges
  int64_t bitsig_builds = 0;        ///< signatures built from raw sketches
  int64_t candidates_pruned = 0;    ///< Lemma-2 removals
  RunningStats signatures_per_window;  ///< Fig. 10's memory metric
  RunningStats candidates_per_window;
};

/// \brief Detects copies of subscribed query videos on a key-frame stream.
///
/// Typical use:
/// ```
/// auto det = CopyDetector::Create(config);
/// det->AddQuery(1, query_key_frames);
/// for (DcFrame f : stream) det->ProcessKeyFrame(f);
/// det->Finish();
/// for (const Match& m : det->matches()) ...
/// ```
class CopyDetector {
 public:
  /// Creates a detector; fails on invalid config.
  static Result<std::unique_ptr<CopyDetector>> Create(const DetectorConfig& config);

  /// Subscribes a query from its key-frame DC maps. \p duration_seconds is
  /// the query's playback length L (used for the λL expiry bound and report
  /// cooldown); if ≤ 0 it is inferred from the key-frame timestamps.
  Status AddQuery(int id, const std::vector<vcd::video::DcFrame>& key_frames,
                  double duration_seconds = -1.0);

  /// Subscribes a query directly from cell ids (for tests and tools).
  Status AddQueryCells(int id, std::vector<features::CellId> ids,
                       double duration_seconds);

  /// Subscribes a query from a pre-computed sketch (e.g. one loaded from a
  /// persisted QueryDb). The sketch must come from the same hash family
  /// (equal K; the caller vouches for the seed).
  Status AddQuerySketch(int id, sketch::Sketch sk, int length_frames,
                        double duration_seconds);

  /// Exports the active queries as (id, length_frames, duration, sketch)
  /// tuples — the payload of a persistable QueryDb (see core/query_store.h;
  /// pair it with config().K and config().hash_seed).
  std::vector<std::tuple<int, int, double, sketch::Sketch>> ExportQueries() const;

  /// Unsubscribes a query. Candidates keep already-built state for it but
  /// stop matching it.
  Status RemoveQuery(int id);

  /// Number of subscribed queries.
  int num_queries() const { return static_cast<int>(queries_.size()); }

  /// Feeds one key frame of the monitored stream.
  Status ProcessKeyFrame(const vcd::video::DcFrame& frame);

  /// Feeds one already-fingerprinted key frame (for pre-fingerprinted
  /// streams and tests). \p frame_index is the position among all stream
  /// frames, \p timestamp in seconds.
  Status ProcessFingerprint(int64_t frame_index, double timestamp,
                            features::CellId id);

  /// Flushes the trailing partial basic window.
  Status Finish();

  /// Clears stream state and matches but keeps the subscribed queries.
  void ResetStream();

  /// All matches reported so far.
  const std::vector<Match>& matches() const { return matches_; }

  /// Runtime counters.
  const DetectorStats& stats() const { return stats_; }

  /// The configuration in effect.
  const DetectorConfig& config() const { return config_; }

  /// \brief Debug validator over all live candidate state.
  ///
  /// Checks, for every candidate in whichever combination structure is
  /// active: `1 ≤ num_windows ≤ ⌈λ·L_max/w⌉` (the global expiry bound —
  /// expired candidates must not survive a Step), signature lists strictly
  /// sorted by query ordinal with in-range ordinals, related-query lists
  /// strictly sorted, and every bit signature well-formed with K matching
  /// the config (BitSignature::Validate). Returns the first violation.
  /// Called from tests and, when config().validate_state is set, after
  /// every processed window.
  Status ValidateState() const;

  /// The fingerprinter (shared with dataset tooling so queries and stream
  /// use identical features).
  const features::FrameFingerprinter& fingerprinter() const { return *fingerprinter_; }

 private:
  /// One subscribed query.
  struct QueryRec {
    index::QueryInfo info;    ///< id and length in key frames
    double duration_seconds = 0.0;
    sketch::Sketch sketch;
    int max_windows = 0;      ///< ⌈λL/w⌉
    double suppress_until = -1.0;  ///< stream time before which reports are muted
    bool active = true;
  };

  /// Candidate payload for the Sketch representation.
  struct SketchCand {
    int num_windows = 0;
    int64_t start_frame = 0, end_frame = 0;
    double start_time = 0.0, end_time = 0.0;
    sketch::Sketch sketch;
    std::vector<int> related;  ///< query ordinals, sorted (empty when !use_index)
  };

  /// Candidate payload for the Bit representation.
  struct BitCand {
    struct Sig {
      int q = 0;  ///< query ordinal
      sketch::BitSignature sig;
    };
    int num_windows = 0;
    int64_t start_frame = 0, end_frame = 0;
    double start_time = 0.0, end_time = 0.0;
    std::vector<Sig> sigs;  ///< sorted by q
  };

  CopyDetector(const DetectorConfig& config, features::FrameFingerprinter fp,
               sketch::MinHashFamily family);

  /// Rebuilds the Hash-Query index from the active queries.
  Status RebuildIndex();

  /// Processes one completed basic window.
  void ProcessWindow(const stream::BasicWindow& window);

  /// Builds the fresh single-window Bit candidate for \p window.
  BitCand MakeBitCand(const stream::BasicWindow& window, const sketch::Sketch& wsk);
  /// Builds the fresh single-window Sketch candidate.
  SketchCand MakeSketchCand(const stream::BasicWindow& window,
                            const sketch::Sketch& wsk);

  /// Merges \p newer into \p older (Bit representation; union-OR of
  /// signature lists, missing sides treated as all-">" per §V-A).
  void MergeBit(BitCand& older, const BitCand& newer);
  /// Merges \p newer into \p older (Sketch representation).
  void MergeSketch(SketchCand& older, const SketchCand& newer);

  /// Tests a candidate against its related queries, emits matches, applies
  /// per-query expiry and Lemma-2 pruning. Returns true when the candidate
  /// still carries any live query state.
  bool TestBitCand(BitCand& c);
  bool TestSketchCand(SketchCand& c);

  /// Emits a match for query ordinal \p q unless muted.
  void EmitMatch(int q, int64_t start_frame, int64_t end_frame, double start_time,
                 double end_time, double sim);

  /// Records the per-window memory/candidate statistics.
  void RecordWindowStats();

  DetectorConfig config_;
  std::unique_ptr<features::FrameFingerprinter> fingerprinter_;
  sketch::MinHashFamily family_;
  sketch::Sketcher sketcher_;
  std::optional<stream::BasicWindowAssembler> assembler_;

  std::vector<QueryRec> queries_;
  std::optional<index::HashQueryIndex> index_;
  bool index_dirty_ = false;
  int global_max_windows_ = 1;

  stream::SequentialCandidates<BitCand> seq_bit_;
  stream::SequentialCandidates<SketchCand> seq_sketch_;
  stream::GeometricCandidates<BitCand> geo_bit_;
  stream::GeometricCandidates<SketchCand> geo_sketch_;

  std::vector<Match> matches_;
  DetectorStats stats_;
};

}  // namespace vcd::core
