#pragma once

#include <limits>
#include <memory>
#include <tuple>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/match.h"
#include "features/fingerprint.h"
#include "index/hash_query_index.h"
#include "obs/pipeline_metrics.h"
#include "sketch/bit_signature.h"
#include "sketch/minhash.h"
#include "sketch/signature_pool.h"
#include "sketch/sketch_pool.h"
#include "stream/basic_window.h"
#include "stream/combiner.h"
#include "util/stats.h"
#include "util/status.h"
#include "video/partial_decoder.h"

/// \file detector.h
/// The continuous copy detector — the paper's full pipeline (§III–§V):
/// key-frame fingerprinting → basic-window min-hash sketches → (optionally
/// index-probed) related-query lists → candidate combination in Sequential
/// or Geometric order → bit-signature or raw-sketch similarity with Lemma-2
/// pruning → match reports.

namespace vcd::core {

/// Runtime counters exposed for the experiments.
struct DetectorStats {
  int64_t key_frames = 0;           ///< key frames consumed
  int64_t windows = 0;              ///< basic windows completed
  int64_t sketch_combines = 0;      ///< element-wise-min sketch merges
  int64_t sketch_compares = 0;      ///< full K-array sketch comparisons
  int64_t bitsig_ors = 0;           ///< bit-signature OR merges
  int64_t bitsig_builds = 0;        ///< signatures built from raw sketches
  int64_t candidates_pruned = 0;    ///< Lemma-2 removals
  int64_t degraded_frames = 0;      ///< frames consumed without a fingerprint
  int64_t degraded_windows = 0;     ///< windows whose sketch was skipped
  int64_t out_of_order_frames = 0;  ///< frames demoted by the clock-skew guard
  /// Windows not combined/tested because the QoS degraded-mode probe knob
  /// (qos::DegradeKnobs::probe_every_n) skipped them. Distinct from
  /// degraded_windows: the input was fine, the governor chose not to spend
  /// the work.
  int64_t qos_skipped_windows = 0;
  RunningStats signatures_per_window;  ///< Fig. 10's memory metric
  RunningStats candidates_per_window;
  /// Live arena slots after each window (pooled path only; 0 otherwise) —
  /// the memory gauge of the flat candidate storage.
  RunningStats pool_slots_per_window;
};

/// \brief One candidate sequence materialized for checkpoint/restore.
///
/// The representation is config-agnostic: bit candidates carry their raw
/// signature words, sketch candidates their min-hash arrays, and query
/// references are *external* query ids (not ordinals), so a snapshot taken
/// on one pooled/scalar/kernel configuration restores onto any other with
/// the same detector parameters.
struct CkptCandidate {
  /// Geometric ladder slot index; -1 for sequential-order candidates.
  int32_t ladder_level = -1;
  int num_windows = 0;
  int64_t start_frame = 0, end_frame = 0;
  double start_time = 0.0, end_time = 0.0;
  /// Bit representation: one raw signature per related query.
  struct Sig {
    int query_id = 0;
    std::vector<uint64_t> words;  ///< BitVector layout, ⌈2K/64⌉ words
  };
  std::vector<Sig> sigs;         ///< sorted by query ordinal at export
  std::vector<uint64_t> mins;    ///< sketch representation: K min-hash values
  std::vector<int> related_ids;  ///< sketch+index: related query ids
};

/// \brief Full mid-stream detector state for checkpoint/restore.
///
/// Everything a fresh detector (same config, same queries re-added in the
/// same order) needs to continue producing byte-identical matches and
/// stats: the clock-skew guard, the partially accumulated basic window,
/// per-query report-cooldown deadlines, all counters/RunningStats, the
/// match log, and every live candidate.
struct DetectorCkptState {
  bool saw_frame = false;
  double max_timestamp = 0.0;
  stream::BasicWindowAssembler::CkptState assembler;
  struct QueryState {
    int id = 0;
    double suppress_until = -1.0;
  };
  std::vector<QueryState> queries;
  DetectorStats stats;
  std::vector<Match> matches;
  /// Sequential order: oldest-first. Geometric order: ascending ladder_level.
  std::vector<CkptCandidate> candidates;
};

/// \brief Detects copies of subscribed query videos on a key-frame stream.
///
/// Typical use:
/// ```
/// auto det = CopyDetector::Create(config);
/// det->AddQuery(1, query_key_frames);
/// for (DcFrame f : stream) det->ProcessKeyFrame(f);
/// det->Finish();
/// for (const Match& m : det->matches()) ...
/// ```
class CopyDetector {
 public:
  /// Creates a detector; fails on invalid config.
  static Result<std::unique_ptr<CopyDetector>> Create(const DetectorConfig& config);

  /// Subscribes a query from its key-frame DC maps. \p duration_seconds is
  /// the query's playback length L (used for the λL expiry bound and report
  /// cooldown); if ≤ 0 it is inferred from the key-frame timestamps.
  Status AddQuery(int id, const std::vector<vcd::video::DcFrame>& key_frames,
                  double duration_seconds = -1.0);

  /// Subscribes a query directly from cell ids (for tests and tools).
  Status AddQueryCells(int id, std::vector<features::CellId> ids,
                       double duration_seconds);

  /// Subscribes a query from a pre-computed sketch (e.g. one loaded from a
  /// persisted QueryDb). The sketch must come from the same hash family
  /// (equal K; the caller vouches for the seed).
  Status AddQuerySketch(int id, sketch::Sketch sk, int length_frames,
                        double duration_seconds);

  /// Exports the active queries as (id, length_frames, duration, sketch)
  /// tuples — the payload of a persistable QueryDb (see core/query_store.h;
  /// pair it with config().K and config().hash_seed).
  std::vector<std::tuple<int, int, double, sketch::Sketch>> ExportQueries() const;

  /// Unsubscribes a query. Candidates keep already-built state for it but
  /// stop matching it.
  Status RemoveQuery(int id);

  /// Number of subscribed queries.
  int num_queries() const { return static_cast<int>(queries_.size()); }

  /// Feeds one key frame of the monitored stream. A frame flagged
  /// `degraded` (or one whose timestamp runs backwards — clock skew)
  /// contributes no fingerprint: it advances the basic-window clock and
  /// marks the affected window degraded, so that window's sketch
  /// combination is skipped while candidate/arena state stays consistent.
  Status ProcessKeyFrame(const vcd::video::DcFrame& frame);

  /// Feeds one already-fingerprinted key frame (for pre-fingerprinted
  /// streams and tests). \p frame_index is the position among all stream
  /// frames, \p timestamp in seconds.
  Status ProcessFingerprint(int64_t frame_index, double timestamp,
                            features::CellId id);

  /// Feeds one degraded key frame: no fingerprint, the frame only advances
  /// the window clock and taints its basic window (see ProcessKeyFrame).
  Status ProcessDegraded(int64_t frame_index, double timestamp);

  /// Flushes the trailing partial basic window.
  Status Finish();

  /// Clears stream state and matches but keeps the subscribed queries.
  void ResetStream();

  /// All matches reported so far.
  const std::vector<Match>& matches() const { return matches_; }

  /// Runtime counters.
  const DetectorStats& stats() const { return stats_; }

  /// Applies (or withdraws, with a default-constructed knob set) the QoS
  /// degraded-mode quality/throughput trade. Deterministic: the knobs take
  /// effect at the next basic-window boundary, and identical knob/frame
  /// sequences produce identical output. Identity knobs (the default) leave
  /// the detector byte-identical to one that never saw this call.
  void SetDegrade(const qos::DegradeKnobs& knobs) { degrade_ = knobs; }

  /// The QoS degrade knobs currently in effect.
  const qos::DegradeKnobs& degrade() const { return degrade_; }

  /// The configuration in effect.
  const DetectorConfig& config() const { return config_; }

  /// \brief Debug validator over all live candidate state.
  ///
  /// Checks, for every candidate in whichever combination structure is
  /// active: `1 ≤ num_windows ≤ ⌈λ·L_max/w⌉` (the global expiry bound —
  /// expired candidates must not survive a Step), signature lists strictly
  /// sorted by query ordinal with in-range ordinals, related-query lists
  /// strictly sorted, and every bit signature well-formed with K matching
  /// the config (BitSignature::Validate). Returns the first violation.
  /// Called from tests and, when config().validate_state is set, after
  /// every processed window.
  Status ValidateState() const;

  /// \brief Materializes the full mid-stream state for a checkpoint.
  ///
  /// Pooled candidates are exported by live-slot walk (handles resolved to
  /// raw words/mins), so the snapshot is independent of arena layout and
  /// kernel ISA. Safe to call between any two ProcessKeyFrame calls.
  DetectorCkptState ExportCkptState() const;

  /// \brief Restores state captured by ExportCkptState.
  ///
  /// Preconditions: this detector is freshly created with the same
  /// parameters and the snapshot's queries were re-added in export order
  /// (so ordinals line up); no stream frame has been processed. Candidate
  /// arenas and free-lists are rebuilt by re-allocating each restored
  /// signature/sketch. Ends with a full ValidateState() sweep; rejects
  /// unknown query ids and malformed payloads with a typed Status.
  Status RestoreCkptState(const DetectorCkptState& state);

  /// The fingerprinter (shared with dataset tooling so queries and stream
  /// use identical features).
  const features::FrameFingerprinter& fingerprinter() const { return *fingerprinter_; }

 private:
  /// One subscribed query.
  struct QueryRec {
    index::QueryInfo info;    ///< id and length in key frames
    double duration_seconds = 0.0;
    sketch::Sketch sketch;  // NOLINT(vcd-pooled-hotpath): per-query, cold
    int max_windows = 0;      ///< ⌈λL/w⌉
    double suppress_until = -1.0;  ///< stream time before which reports are muted
    bool active = true;
  };

  /// Candidate payload for the Sketch representation (scalar reference
  /// path; the pooled hot path uses PooledSketchCand).
  struct SketchCand {
    int num_windows = 0;
    int64_t start_frame = 0, end_frame = 0;
    double start_time = 0.0, end_time = 0.0;
    sketch::Sketch sketch;  // NOLINT(vcd-pooled-hotpath): scalar reference
    std::vector<int> related;  ///< query ordinals, sorted (empty when !use_index)
  };

  /// Candidate payload for the Bit representation (scalar reference path).
  struct BitCand {
    struct Sig {
      int q = 0;  ///< query ordinal
      sketch::BitSignature sig;  // NOLINT(vcd-pooled-hotpath): scalar reference
    };
    int num_windows = 0;
    int64_t start_frame = 0, end_frame = 0;
    double start_time = 0.0, end_time = 0.0;
    std::vector<Sig> sigs;  ///< sorted by q
  };

  /// One (query ordinal, SignaturePool slot) pair of a pooled candidate.
  struct PooledSigRef {
    int q = 0;
    sketch::SignaturePool::Handle sig = sketch::SignaturePool::kInvalidHandle;
  };

  /// Bit-representation candidate on the pooled hot path: all signature
  /// bits live in sig_pool_; the candidate holds only slot handles.
  struct PooledBitCand {
    int num_windows = 0;
    int64_t start_frame = 0, end_frame = 0;
    double start_time = 0.0, end_time = 0.0;
    std::vector<PooledSigRef> sigs;  ///< sorted by q
  };

  /// Sketch-representation candidate on the pooled hot path: the min-hash
  /// array lives in sketch_pool_.
  struct PooledSketchCand {
    int num_windows = 0;
    int64_t start_frame = 0, end_frame = 0;
    double start_time = 0.0, end_time = 0.0;
    sketch::SketchPool::Handle sketch = sketch::SketchPool::kInvalidHandle;
    std::vector<int> related;  ///< query ordinals, sorted (empty when !use_index)
  };

  /// Reusable per-window working set of the pooled hot path. Every vector
  /// keeps its capacity across windows, so steady-state ProcessWindow
  /// performs zero heap allocations.
  struct WindowScratch {
    stream::BasicWindow window;        ///< assembler swap buffer
    // NOLINT(vcd-pooled-hotpath): single reused buffer, not per-candidate
    sketch::Sketch window_sketch;      ///< FromSequenceInto target
    index::ProbeScratch probe;         ///< index probe working set
    std::vector<index::PooledRelatedQuery> pooled_related;
    std::vector<index::QueryInfo> related_infos;
    std::vector<PooledSigRef> merge_sigs;    ///< MergePooledBit union buffer
    std::vector<sketch::SignaturePool::Handle> or_dst, or_src;
    std::vector<sketch::SignaturePool::Handle> handle_buf;
    std::vector<int> eq_buf, less_buf;       ///< NumEqualBatch outputs
    std::vector<uint8_t> prune_buf;          ///< PruneScan output
    std::vector<int> merge_or_idx;  ///< per merged sig: OR-queue index or -1
    std::vector<int> or_less;       ///< fused OrRange NumLess output
    std::vector<int> merge_related;          ///< related-set union buffer
    PooledBitCand bit_cum, bit_tmp;          ///< geometric suffix shells
    PooledSketchCand sketch_cum, sketch_tmp;
  };

  CopyDetector(const DetectorConfig& config, features::FrameFingerprinter fp,
               sketch::MinHashFamily family);

  /// Rebuilds the Hash-Query index from the active queries.
  Status RebuildIndex();

  /// Processes one completed basic window (dispatches to the pooled or the
  /// scalar reference path per config().use_pooled_kernels).
  void ProcessWindow(const stream::BasicWindow& window);
  /// Scalar reference body of ProcessWindow.
  void ProcessWindowScalar(const stream::BasicWindow& window);
  /// Pooled/batched body of ProcessWindow — allocation-free at steady state.
  void ProcessWindowPooled(const stream::BasicWindow& window);

  /// Builds the fresh single-window Bit candidate for \p window.
  BitCand MakeBitCand(const stream::BasicWindow& window, const sketch::Sketch& wsk);
  /// Builds the fresh single-window Sketch candidate.
  SketchCand MakeSketchCand(const stream::BasicWindow& window,
                            const sketch::Sketch& wsk);

  /// Merges \p newer into \p older (Bit representation; union-OR of
  /// signature lists, missing sides treated as all-">" per §V-A).
  void MergeBit(BitCand& older, const BitCand& newer);
  /// Merges \p newer into \p older (Sketch representation).
  void MergeSketch(SketchCand& older, const SketchCand& newer);

  /// Tests a candidate against its related queries, emits matches, applies
  /// per-query expiry and Lemma-2 pruning. Returns true when the candidate
  /// still carries any live query state.
  bool TestBitCand(BitCand& c);
  bool TestSketchCand(SketchCand& c);

  // --- pooled hot path ---------------------------------------------------

  /// Fills recycled shell \p c with the fresh single-window Bit candidate
  /// (signatures allocated from sig_pool_). Mirror of MakeBitCand.
  void InitPooledBitCand(PooledBitCand* c, const stream::BasicWindow& window,
                         const sketch::Sketch& wsk);
  /// Mirror of MakeSketchCand for the pooled path.
  void InitPooledSketchCand(PooledSketchCand* c,
                            const stream::BasicWindow& window,
                            const sketch::Sketch& wsk);
  /// Mirror of MergeBit using the OrRange/PruneScan slab kernels.
  void MergePooledBit(PooledBitCand& older, const PooledBitCand& newer);
  /// Mirror of MergeSketch using the strided CombineMin kernel.
  void MergePooledSketch(PooledSketchCand& older, const PooledSketchCand& newer);
  /// Mirror of TestBitCand using the NumEqualBatch slab kernel.
  bool TestPooledBitCand(PooledBitCand& c);
  /// Sequential-order batched test sweep: one NumEqualBatch over the
  /// flattened handles of every live candidate, then the per-candidate
  /// walks in container order (byte-identical to calling TestPooledBitCand
  /// per candidate, but the SIMD backend sees one long batch).
  void TestPooledBitSeqBatch();
  /// The per-candidate walk of TestPooledBitCand over precomputed
  /// NumEqual/NumLess counts (c.sigs.size() entries each).
  bool TestPooledBitCandCounted(PooledBitCand& c, const int* eq,
                                const int* less);
  /// Mirror of TestSketchCand against sketch_pool_ slots.
  bool TestPooledSketchCand(PooledSketchCand& c);
  /// Clones pooled candidate \p src into retired shell \p dst (fresh pool
  /// slots; used by the geometric suffix sweep).
  void AssignPooledBit(PooledBitCand* dst, const PooledBitCand& src);
  void AssignPooledSketch(PooledSketchCand* dst, const PooledSketchCand& src);
  /// Releases a pooled candidate's arena slots back to the pools and clears
  /// its lists (the container parks the shell for reuse afterwards).
  void RetirePooledBit(PooledBitCand* c);
  void RetirePooledSketch(PooledSketchCand* c);

  /// The λL window cap with the QoS degrade cap applied: min(global, knob)
  /// when the knob is set. Always <= global_max_windows_, so the expiry
  /// bound ValidateState checks still holds through degrade/recover cycles.
  int EffectiveMaxWindows() const {
    return degrade_.max_candidate_windows > 0 &&
                   degrade_.max_candidate_windows < global_max_windows_
               ? degrade_.max_candidate_windows
               : global_max_windows_;
  }

  /// Geometric suffix-sweep visit budget: 1 (newest block only) while the
  /// QoS degrade disabled the cumulative sweep, unlimited otherwise.
  int GeoMaxVisits() const {
    return degrade_.disable_geometric ? 1 : std::numeric_limits<int>::max();
  }

  /// O(1) id → ordinal lookup over active queries; -1 when absent.
  int OrdinalOf(int query_id) const {
    auto it = id_to_ordinal_.find(query_id);
    return it == id_to_ordinal_.end() ? -1 : it->second;
  }

  /// Emits a match for query ordinal \p q unless muted.
  void EmitMatch(int q, int64_t start_frame, int64_t end_frame, double start_time,
                 double end_time, double sim);

  /// Records the per-window memory/candidate statistics.
  void RecordWindowStats();

  /// Mirrors this window's stats_ deltas into the metrics registry (the
  /// `vcd_detector_*` counter family). One batch of relaxed counter adds
  /// per window — never per merge — to stay inside the hot-path overhead
  /// budget; allocation-free, preserving the pooled path's zero-alloc
  /// steady-state contract. No-op when config().metrics is null or the
  /// tree is built with VCD_OBS=OFF.
  void PublishWindowMetrics();

  /// stats_ fields already published by PublishWindowMetrics; next call
  /// publishes only the delta.
  struct PublishedStats {
    int64_t windows = 0;
    int64_t degraded_windows = 0;
    int64_t qos_skipped_windows = 0;
    int64_t bitsig_builds = 0;
    int64_t bitsig_ors = 0;
    int64_t sketch_combines = 0;
    int64_t sketch_compares = 0;
    int64_t candidates_pruned = 0;
    int64_t matches = 0;
    int64_t cand_count = 0;  ///< live candidates after the previous window
  };

  DetectorConfig config_;
  std::unique_ptr<features::FrameFingerprinter> fingerprinter_;
  sketch::MinHashFamily family_;
  sketch::Sketcher sketcher_;
  std::optional<stream::BasicWindowAssembler> assembler_;

  std::vector<QueryRec> queries_;
  /// Per-ordinal λL window cap, 0 once unsubscribed — a flat mirror of
  /// queries_[q].active/max_windows so the per-signature expiry check in the
  /// hot test loop reads a packed int array instead of the QueryRec structs.
  std::vector<int> query_window_cap_;
  /// id → ordinal of the *active* record with that id (ids of removed
  /// queries are erased; re-adding an id maps it to its new ordinal).
  std::unordered_map<int, int> id_to_ordinal_;
  std::optional<index::HashQueryIndex> index_;
  bool index_dirty_ = false;
  int global_max_windows_ = 1;
  /// Clock-skew guard: the highest timestamp seen on the stream. Frames
  /// arriving behind it are demoted to degraded (their fingerprint would
  /// land in the wrong basic window).
  double max_timestamp_ = 0.0;
  bool saw_frame_ = false;

  // Scalar reference combination structures.
  stream::SequentialCandidates<BitCand> seq_bit_;
  stream::SequentialCandidates<SketchCand> seq_sketch_;
  stream::GeometricCandidates<BitCand> geo_bit_;
  stream::GeometricCandidates<SketchCand> geo_sketch_;

  // Pooled combination structures and their arenas (hot path).
  stream::SequentialCandidates<PooledBitCand> pseq_bit_;
  stream::SequentialCandidates<PooledSketchCand> pseq_sketch_;
  stream::GeometricCandidates<PooledBitCand> pgeo_bit_;
  stream::GeometricCandidates<PooledSketchCand> pgeo_sketch_;
  std::optional<sketch::SignaturePool> sig_pool_;
  std::optional<sketch::SketchPool> sketch_pool_;
  WindowScratch scratch_;

  std::vector<Match> matches_;
  DetectorStats stats_;
  /// QoS degraded-mode knobs in effect (identity unless the overload
  /// governor pushed a degrade via SetDegrade).
  qos::DegradeKnobs degrade_;

  // Observability (see DESIGN.md §13). All-null when config_.metrics is
  // null; instrument pointers are cached here once at Create.
  obs::DetectorMetrics metrics_;
  PublishedStats published_;
  /// Live candidate count of the last RecordWindowStats sweep (reused by
  /// PublishWindowMetrics to derive admitted/expired deltas).
  int64_t last_cand_count_ = 0;
};

}  // namespace vcd::core
