#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/match.h"
#include "features/fingerprint.h"
#include "sketch/jaccard.h"
#include "stream/basic_window.h"
#include "util/status.h"
#include "video/partial_decoder.h"

/// \file exact_detector.h
/// The *exact* reference detector: Definition 2 evaluated with true set
/// intersection instead of min-hash estimation — the "membership test
/// method" of the paper's Table II experiment, run as a streaming engine.
///
/// It is O(m · |window|·log) per window with per-candidate sorted-set state,
/// so it does not scale like the sketch engine; its role is to serve as the
/// accuracy oracle against which the K-min-hash approximation is measured
/// (see bench_ablation_approx) and as a drop-in for small deployments where
/// exactness matters more than throughput.

namespace vcd::core {

/// \brief Streaming copy detector with exact Jaccard similarity.
///
/// Mirrors `CopyDetector`'s interface for the Sequential order: candidate
/// sequences at every suffix length up to ⌈λL/w⌉ windows, each carrying the
/// exact distinct-cell-id set of its span.
class ExactDetector {
 public:
  /// Creates a detector. Only `fingerprint`, `delta`, `window_seconds`,
  /// `lambda` and `report_cooldown_seconds` of \p config apply.
  static Result<std::unique_ptr<ExactDetector>> Create(const DetectorConfig& config);

  /// Subscribes a query from key-frame DC maps.
  Status AddQuery(int id, const std::vector<vcd::video::DcFrame>& key_frames,
                  double duration_seconds = -1.0);

  /// Subscribes a query from cell ids.
  Status AddQueryCells(int id, std::vector<features::CellId> ids,
                       double duration_seconds);

  /// Unsubscribes a query.
  Status RemoveQuery(int id);

  /// Feeds one key frame.
  Status ProcessKeyFrame(const vcd::video::DcFrame& frame);

  /// Feeds one already-fingerprinted key frame.
  Status ProcessFingerprint(int64_t frame_index, double timestamp,
                            features::CellId id);

  /// Flushes the trailing partial window.
  Status Finish();

  /// Matches reported so far.
  const std::vector<Match>& matches() const { return matches_; }

  /// Exact similarity of the best current candidate against query \p id
  /// (for approximation-quality studies); 0 when no candidate exists.
  double BestSimilarity(int id) const;

  /// Clears stream state, keeps queries.
  void ResetStream();

 private:
  struct Query {
    int id;
    double duration_seconds;
    sketch::CellIdSet set;
    int max_windows;
    double suppress_until = -1.0;
  };
  struct Candidate {
    int num_windows = 0;
    int64_t start_frame = 0, end_frame = 0;
    double start_time = 0.0, end_time = 0.0;
    sketch::CellIdSet set;
  };

  explicit ExactDetector(const DetectorConfig& config) : config_(config) {}

  void ProcessWindow(const stream::BasicWindow& window);

  DetectorConfig config_;
  std::unique_ptr<features::FrameFingerprinter> fingerprinter_;
  std::unique_ptr<stream::BasicWindowAssembler> assembler_;
  std::vector<Query> queries_;
  int global_max_windows_ = 1;
  std::deque<Candidate> candidates_;
  std::vector<Match> matches_;
};

}  // namespace vcd::core
