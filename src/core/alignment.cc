#include "core/alignment.h"

#include <algorithm>

#include "sketch/jaccard.h"

namespace vcd::core {
namespace {

using vcd::video::DcFrame;
using vcd::video::DetectedShot;
using vcd::video::ShotDetector;

/// Shot boundaries plus the per-shot distinct cell sets of a key-frame run.
struct ShotSets {
  std::vector<DetectedShot> shots;
  std::vector<sketch::CellIdSet> sets;
};

Result<ShotSets> Segment(const std::vector<DcFrame>& frames,
                         const features::FrameFingerprinter& fp,
                         const vcd::video::ShotDetectorOptions& opts) {
  auto det = ShotDetector::Create(opts);
  if (!det.ok()) return det.status();
  for (const DcFrame& f : frames) det->ProcessKeyFrame(f);
  det->Finish();
  ShotSets out;
  out.shots = det->shots();
  for (const DetectedShot& s : out.shots) {
    std::vector<features::CellId> cells;
    for (int64_t i = s.begin_key_frame; i <= s.end_key_frame; ++i) {
      cells.push_back(fp.Fingerprint(frames[static_cast<size_t>(i)]));
    }
    out.sets.push_back(sketch::CellIdSet::FromSequence(std::move(cells)));
  }
  return out;
}

}  // namespace

Result<MatchAligner> MatchAligner::Create(const AlignerOptions& opts) {
  VCD_RETURN_IF_ERROR(opts.fingerprint.feature.Validate());
  VCD_RETURN_IF_ERROR(opts.shots.Validate());
  if (opts.min_similarity < 0 || opts.min_similarity > 1) {
    return Status::InvalidArgument("min_similarity must be in [0, 1]");
  }
  return MatchAligner(opts);
}

Result<std::vector<AlignedSegment>> MatchAligner::Align(
    const std::vector<DcFrame>& stream_segment,
    const std::vector<DcFrame>& query_frames) const {
  if (stream_segment.empty() || query_frames.empty()) {
    return Status::InvalidArgument("both segments need key frames");
  }
  auto fp = features::FrameFingerprinter::Create(opts_.fingerprint);
  if (!fp.ok()) return fp.status();
  auto stream = Segment(stream_segment, *fp, opts_.shots);
  if (!stream.ok()) return stream.status();
  auto query = Segment(query_frames, *fp, opts_.shots);
  if (!query.ok()) return query.status();

  std::vector<AlignedSegment> out;
  out.reserve(stream->shots.size());
  for (size_t si = 0; si < stream->shots.size(); ++si) {
    AlignedSegment seg;
    seg.stream_begin = stream->shots[si].begin_time;
    seg.stream_end = stream->shots[si].end_time;
    double best = 0.0;
    size_t best_q = 0;
    for (size_t qi = 0; qi < query->shots.size(); ++qi) {
      const double sim = stream->sets[si].Jaccard(query->sets[qi]);
      if (sim > best) {
        best = sim;
        best_q = qi;
      }
    }
    if (best >= opts_.min_similarity) {
      seg.matched = true;
      seg.similarity = best;
      seg.query_begin = query->shots[best_q].begin_time;
      seg.query_end = query->shots[best_q].end_time;
    }
    out.push_back(seg);
  }
  return out;
}

bool MatchAligner::IsReordered(const std::vector<AlignedSegment>& segments) {
  double prev = -1.0;
  for (const AlignedSegment& s : segments) {
    if (!s.matched) continue;
    if (s.query_begin < prev) return true;
    prev = s.query_begin;
  }
  return false;
}

}  // namespace vcd::core
