#pragma once

#include <cstdint>
#include <vector>

/// \file match.h
/// Detection results and ground truth for evaluation (paper §VI).

namespace vcd::core {

/// \brief One reported copy detection.
struct Match {
  int query_id = 0;
  int64_t start_frame = 0;  ///< first stream frame of the matching candidate
  int64_t end_frame = 0;    ///< last stream frame (the detection position Q.p)
  double start_time = 0.0;  ///< seconds
  double end_time = 0.0;    ///< seconds
  double similarity = 0.0;  ///< estimated sim at detection time
};

/// \brief Where a query's content was actually inserted into the stream.
struct GroundTruthEntry {
  int query_id = 0;
  int64_t begin_frame = 0;  ///< Q.begin
  int64_t end_frame = 0;    ///< Q.end
};

}  // namespace vcd::core
