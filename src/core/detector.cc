#include "core/detector.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string>

#include "obs/span.h"
#include "util/logging.h"

namespace vcd::core {

CopyDetector::CopyDetector(const DetectorConfig& config,
                           features::FrameFingerprinter fp,
                           sketch::MinHashFamily family)
    : config_(config),
      fingerprinter_(std::make_unique<features::FrameFingerprinter>(std::move(fp))),
      family_(std::move(family)),
      sketcher_(&family_),
      metrics_(obs::DetectorMetrics::Create(config.metrics)) {}

Result<std::unique_ptr<CopyDetector>> CopyDetector::Create(const DetectorConfig& config) {
  VCD_RETURN_IF_ERROR(config.Validate());
  auto fp = features::FrameFingerprinter::Create(config.fingerprint);
  if (!fp.ok()) return fp.status();
  auto family = sketch::MinHashFamily::Create(config.K, config.hash_seed);
  if (!family.ok()) return family.status();
  auto det = std::unique_ptr<CopyDetector>(new CopyDetector(
      config, std::move(fp).value(), std::move(family).value()));
  auto assembler = stream::BasicWindowAssembler::Create(config.window_seconds);
  if (!assembler.ok()) return assembler.status();
  det->assembler_.emplace(std::move(assembler).value());
  det->sig_pool_.emplace(config.K);
  det->sketch_pool_.emplace(config.K);
  return det;
}

Status CopyDetector::AddQuery(int id, const std::vector<vcd::video::DcFrame>& key_frames,
                              double duration_seconds) {
  if (key_frames.empty()) return Status::InvalidArgument("query has no key frames");
  if (duration_seconds <= 0) {
    const double span =
        key_frames.back().timestamp - key_frames.front().timestamp;
    const double spacing = key_frames.size() > 1
                               ? span / static_cast<double>(key_frames.size() - 1)
                               : config_.window_seconds;
    duration_seconds = span + spacing;
  }
  return AddQueryCells(id, fingerprinter_->FingerprintSequence(key_frames),
                       duration_seconds);
}

Status CopyDetector::AddQueryCells(int id, std::vector<features::CellId> ids,
                                   double duration_seconds) {
  if (ids.empty()) return Status::InvalidArgument("query has no frames");
  return AddQuerySketch(id, sketcher_.FromSequence(ids),
                        static_cast<int>(ids.size()), duration_seconds);
}

Status CopyDetector::AddQuerySketch(int id, sketch::Sketch sk, int length_frames,
                                    double duration_seconds) {
  if (sk.K() != config_.K) {
    return Status::InvalidArgument("sketch K does not match detector config");
  }
  if (length_frames < 1) return Status::InvalidArgument("query has no frames");
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("query duration must be positive");
  }
  if (id_to_ordinal_.count(id) != 0) {
    return Status::AlreadyExists("query id " + std::to_string(id));
  }
  QueryRec rec;
  rec.info.id = id;
  rec.info.length_frames = length_frames;
  rec.duration_seconds = duration_seconds;
  rec.sketch = std::move(sk);
  rec.max_windows = std::max(
      1, static_cast<int>(std::ceil(config_.lambda * duration_seconds /
                                    config_.window_seconds)));
  if (config_.use_index && index_.has_value()) {
    VCD_RETURN_IF_ERROR(index_->Insert(rec.sketch, rec.info));
  } else {
    index_dirty_ = true;
  }
  global_max_windows_ = std::max(global_max_windows_, rec.max_windows);
  queries_.push_back(std::move(rec));
  query_window_cap_.push_back(queries_.back().max_windows);
  id_to_ordinal_[id] = static_cast<int>(queries_.size()) - 1;
  if (config_.use_pooled_kernels) {
    // Structural bound for the flattened cross-candidate sweep: a chain
    // holds at most global_max_windows_ + 1 live candidates, each carrying
    // at most one signature per query. Reserving at subscription time keeps
    // TestPooledBitSeqBatch allocation-free in steady state — stochastic
    // pruning makes the flat total fluctuate, so a warmup high-water mark
    // alone does not bound it.
    const size_t bound =
        static_cast<size_t>(global_max_windows_ + 1) * queries_.size();
    scratch_.handle_buf.reserve(bound);
    scratch_.eq_buf.reserve(bound);
    scratch_.less_buf.reserve(bound);
    // The union slow path of MergePooledBit only runs after a Lemma-2 prune
    // desyncs a candidate's query set — an event warmup may never see, so
    // these buffers cannot rely on a high-water mark. One entry per query
    // bounds the merge union.
    scratch_.merge_sigs.reserve(queries_.size());
    scratch_.merge_or_idx.reserve(queries_.size());
    scratch_.or_dst.reserve(queries_.size());
    scratch_.or_src.reserve(queries_.size());
    scratch_.or_less.reserve(queries_.size());
    scratch_.merge_related.reserve(queries_.size());
  }
  return Status::OK();
}

std::vector<std::tuple<int, int, double, sketch::Sketch>>
CopyDetector::ExportQueries() const {
  std::vector<std::tuple<int, int, double, sketch::Sketch>> out;
  for (const QueryRec& q : queries_) {
    if (!q.active) continue;
    out.emplace_back(q.info.id, q.info.length_frames, q.duration_seconds, q.sketch);
  }
  return out;
}

Status CopyDetector::RemoveQuery(int id) {
  auto it = id_to_ordinal_.find(id);
  if (it == id_to_ordinal_.end()) {
    return Status::NotFound("query id " + std::to_string(id));
  }
  QueryRec& q = queries_[static_cast<size_t>(it->second)];
  q.active = false;
  query_window_cap_[static_cast<size_t>(it->second)] = 0;
  id_to_ordinal_.erase(it);
  if (config_.use_index && index_.has_value()) {
    VCD_RETURN_IF_ERROR(index_->Remove(id));
  }
  global_max_windows_ = 1;
  for (const QueryRec& r : queries_) {
    if (r.active) global_max_windows_ = std::max(global_max_windows_, r.max_windows);
  }
  return Status::OK();
}

Status CopyDetector::RebuildIndex() {
  index_.reset();
  index_dirty_ = false;
  if (!config_.use_index) return Status::OK();
  std::vector<sketch::Sketch> sketches;
  std::vector<index::QueryInfo> infos;
  for (const QueryRec& q : queries_) {
    if (!q.active) continue;
    sketches.push_back(q.sketch);
    infos.push_back(q.info);
  }
  if (sketches.empty()) return Status::OK();
  auto idx = index::HashQueryIndex::Build(sketches, infos);
  if (!idx.ok()) return idx.status();
  index_.emplace(std::move(idx).value());
  return Status::OK();
}

Status CopyDetector::ProcessKeyFrame(const vcd::video::DcFrame& frame) {
  if (frame.degraded) return ProcessDegraded(frame.frame_index, frame.timestamp);
  return ProcessFingerprint(frame.frame_index, frame.timestamp,
                            fingerprinter_->Fingerprint(frame));
}

Status CopyDetector::ProcessFingerprint(int64_t frame_index, double timestamp,
                                        features::CellId id) {
  if (saw_frame_ && timestamp < max_timestamp_) {
    // Clock skew: a frame behind the stream clock would land its id in the
    // wrong basic window. Demote it to degraded instead of poisoning the
    // window sequence.
    ++stats_.out_of_order_frames;
    return ProcessDegraded(frame_index, timestamp);
  }
  if (index_dirty_) VCD_RETURN_IF_ERROR(RebuildIndex());
  saw_frame_ = true;
  max_timestamp_ = timestamp;
  ++stats_.key_frames;
  // The assembler swaps the completed window's id buffer into
  // scratch_.window, so the steady-state window cycle reuses two buffers
  // instead of allocating.
  if (assembler_->Add(frame_index, timestamp, id, &scratch_.window)) {
    ProcessWindow(scratch_.window);
  }
  return Status::OK();
}

Status CopyDetector::ProcessDegraded(int64_t frame_index, double timestamp) {
  if (index_dirty_) VCD_RETURN_IF_ERROR(RebuildIndex());
  // A skewed timestamp must not move the window clock backwards (or jump
  // it forward past genuine frames): clamp into the observed range.
  if (saw_frame_ && timestamp < max_timestamp_) timestamp = max_timestamp_;
  saw_frame_ = true;
  max_timestamp_ = timestamp;
  ++stats_.key_frames;
  ++stats_.degraded_frames;
  if (assembler_->AddDegraded(frame_index, timestamp, &scratch_.window)) {
    ProcessWindow(scratch_.window);
  }
  return Status::OK();
}

Status CopyDetector::Finish() {
  if (index_dirty_) VCD_RETURN_IF_ERROR(RebuildIndex());
  if (assembler_->Flush(&scratch_.window)) ProcessWindow(scratch_.window);
  return Status::OK();
}

void CopyDetector::ResetStream() {
  assembler_.emplace(
      stream::BasicWindowAssembler::Create(config_.window_seconds).value());
  seq_bit_.Clear();
  seq_sketch_.Clear();
  geo_bit_.Clear();
  geo_sketch_.Clear();
  const auto retire_bit = [&](PooledBitCand& c) { RetirePooledBit(&c); };
  const auto retire_sketch = [&](PooledSketchCand& c) { RetirePooledSketch(&c); };
  pseq_bit_.Clear(retire_bit);
  pseq_sketch_.Clear(retire_sketch);
  pgeo_bit_.Clear(retire_bit);
  pgeo_sketch_.Clear(retire_sketch);
  matches_.clear();
  stats_ = DetectorStats{};
  // Registry counters are cumulative across stream resets (a monitoring
  // registry never goes backwards); only the delta bookkeeping restarts.
  published_ = PublishedStats{};
  last_cand_count_ = 0;
  max_timestamp_ = 0.0;
  saw_frame_ = false;
  for (QueryRec& q : queries_) q.suppress_until = -1.0;
}

void CopyDetector::EmitMatch(int q, int64_t start_frame, int64_t end_frame,
                             double start_time, double end_time, double sim) {
  QueryRec& rec = queries_[static_cast<size_t>(q)];
  // Candidates containing the copy can stay above threshold until they
  // expire at λL, so the default mute interval covers that whole tail.
  const double cooldown = config_.report_cooldown_seconds < 0
                              ? config_.lambda * rec.duration_seconds
                              : config_.report_cooldown_seconds;
  if (cooldown > 0 && end_time < rec.suppress_until) return;
  rec.suppress_until = end_time + cooldown;
  Match m;
  m.query_id = rec.info.id;
  m.start_frame = start_frame;
  m.end_frame = end_frame;
  m.start_time = start_time;
  m.end_time = end_time;
  m.similarity = sim;
  matches_.push_back(m);
}

// --- scalar reference path --------------------------------------------------

CopyDetector::BitCand CopyDetector::MakeBitCand(const stream::BasicWindow& window,
                                                const sketch::Sketch& wsk) {
  BitCand c;
  c.num_windows = 1;
  c.start_frame = window.start_frame;
  c.end_frame = window.end_frame;
  c.start_time = window.start_time;
  c.end_time = window.end_time;
  if (config_.use_index) {
    if (!index_.has_value()) return c;
    std::vector<index::RelatedQuery> rl;
    {
      VCD_OBS_SPAN(metrics_.probe_ns);
      rl = index_->Probe(wsk, config_.delta, config_.enable_pruning);
    }
    stats_.bitsig_builds += static_cast<int64_t>(rl.size());
    c.sigs.reserve(rl.size());
    for (index::RelatedQuery& rq : rl) {
      const int q = OrdinalOf(rq.info.id);
      if (q < 0) continue;
      c.sigs.push_back(BitCand::Sig{q, std::move(rq.bitsig)});
    }
    std::sort(c.sigs.begin(), c.sigs.end(),
              [](const BitCand::Sig& a, const BitCand::Sig& b) { return a.q < b.q; });
  } else {
    for (size_t q = 0; q < queries_.size(); ++q) {
      if (!queries_[q].active) continue;
      // NOLINT(vcd-pooled-hotpath): scalar reference path
      sketch::BitSignature sig =
          sketch::BitSignature::FromSketches(wsk, queries_[q].sketch);
      ++stats_.bitsig_builds;
      if (config_.enable_pruning && !sig.SatisfiesLemma2(config_.delta)) {
        ++stats_.candidates_pruned;
        continue;
      }
      c.sigs.push_back(BitCand::Sig{static_cast<int>(q), std::move(sig)});
    }
  }
  return c;
}

CopyDetector::SketchCand CopyDetector::MakeSketchCand(const stream::BasicWindow& window,
                                                      const sketch::Sketch& wsk) {
  SketchCand c;
  c.num_windows = 1;
  c.start_frame = window.start_frame;
  c.end_frame = window.end_frame;
  c.start_time = window.start_time;
  c.end_time = window.end_time;
  c.sketch = wsk;
  if (config_.use_index && index_.has_value()) {
    std::vector<index::QueryInfo> rel;
    {
      VCD_OBS_SPAN(metrics_.probe_ns);
      rel = index_->ProbeRelated(wsk);
    }
    c.related.reserve(rel.size());
    for (const index::QueryInfo& info : rel) {
      const int q = OrdinalOf(info.id);
      if (q >= 0) c.related.push_back(q);
    }
    std::sort(c.related.begin(), c.related.end());
  }
  return c;
}

void CopyDetector::MergeBit(BitCand& older, const BitCand& newer) {
  // Union-merge the signature lists (both sorted by ordinal). A query
  // present on one side only keeps that side's bits: the missing side
  // contributes the all-">" signature, which ORs to nothing (§V-A).
  std::vector<BitCand::Sig> merged;
  merged.reserve(older.sigs.size() + newer.sigs.size());
  size_t i = 0, j = 0;
  while (i < older.sigs.size() || j < newer.sigs.size()) {
    BitCand::Sig out;
    if (j >= newer.sigs.size() ||
        (i < older.sigs.size() && older.sigs[i].q < newer.sigs[j].q)) {
      out = std::move(older.sigs[i++]);
    } else if (i >= older.sigs.size() || newer.sigs[j].q < older.sigs[i].q) {
      out = newer.sigs[j++];
    } else {
      out = std::move(older.sigs[i++]);
      out.sig.OrWith(newer.sigs[j++].sig);
      ++stats_.bitsig_ors;
    }
    if (config_.enable_pruning && !out.sig.SatisfiesLemma2(config_.delta)) {
      ++stats_.candidates_pruned;
      continue;
    }
    merged.push_back(std::move(out));
  }
  older.sigs = std::move(merged);
  older.num_windows += newer.num_windows;
  older.end_frame = newer.end_frame;
  older.end_time = newer.end_time;
}

void CopyDetector::MergeSketch(SketchCand& older, const SketchCand& newer) {
  sketch::Sketcher::Combine(&older.sketch, newer.sketch);
  ++stats_.sketch_combines;
  if (config_.use_index) {
    std::vector<int> merged;
    merged.reserve(older.related.size() + newer.related.size());
    std::set_union(older.related.begin(), older.related.end(), newer.related.begin(),
                   newer.related.end(), std::back_inserter(merged));
    older.related = std::move(merged);
  }
  older.num_windows += newer.num_windows;
  older.end_frame = newer.end_frame;
  older.end_time = newer.end_time;
}

bool CopyDetector::TestBitCand(BitCand& c) {
  size_t out = 0;
  for (size_t i = 0; i < c.sigs.size(); ++i) {
    BitCand::Sig& s = c.sigs[i];
    const QueryRec& q = queries_[static_cast<size_t>(s.q)];
    if (!q.active) continue;                       // unsubscribed: drop
    if (c.num_windows > q.max_windows) continue;   // per-query λL expiry
    if (config_.enable_pruning && !s.sig.SatisfiesLemma2(config_.delta)) {
      ++stats_.candidates_pruned;
      continue;
    }
    const double sim = s.sig.Similarity();
    if (sim >= config_.delta) {
      EmitMatch(s.q, c.start_frame, c.end_frame, c.start_time, c.end_time, sim);
    }
    if (out != i) c.sigs[out] = std::move(s);
    ++out;
  }
  c.sigs.resize(out);
  return !c.sigs.empty();
}

bool CopyDetector::TestSketchCand(SketchCand& c) {
  auto test_one = [&](int q_ord) {
    const QueryRec& q = queries_[static_cast<size_t>(q_ord)];
    if (!q.active) return;
    if (c.num_windows > q.max_windows) return;
    ++stats_.sketch_compares;
    const double sim = sketch::Sketcher::Similarity(c.sketch, q.sketch);
    if (sim >= config_.delta) {
      EmitMatch(q_ord, c.start_frame, c.end_frame, c.start_time, c.end_time, sim);
    }
  };
  if (config_.use_index) {
    for (int q : c.related) test_one(q);
  } else {
    for (size_t q = 0; q < queries_.size(); ++q) test_one(static_cast<int>(q));
  }
  return true;
}

// --- pooled hot path --------------------------------------------------------


void CopyDetector::InitPooledBitCand(PooledBitCand* c,
                                     const stream::BasicWindow& window,
                                     const sketch::Sketch& wsk) {
  c->num_windows = 1;
  c->start_frame = window.start_frame;
  c->end_frame = window.end_frame;
  c->start_time = window.start_time;
  c->end_time = window.end_time;
  c->sigs.clear();
  sketch::SignaturePool& pool = *sig_pool_;
  if (config_.use_index) {
    if (!index_.has_value()) return;
    {
      VCD_OBS_SPAN(metrics_.probe_ns);
      index_->ProbeInto(wsk, config_.delta, config_.enable_pruning, &pool,
                        &scratch_.probe, &scratch_.pooled_related);
    }
    stats_.bitsig_builds += static_cast<int64_t>(scratch_.pooled_related.size());
    for (const index::PooledRelatedQuery& rq : scratch_.pooled_related) {
      const int q = OrdinalOf(rq.info.id);
      if (q < 0) {
        pool.Free(rq.sig);
        continue;
      }
      c->sigs.push_back(PooledSigRef{q, rq.sig});
    }
    std::sort(c->sigs.begin(), c->sigs.end(),
              [](const PooledSigRef& a, const PooledSigRef& b) { return a.q < b.q; });
  } else {
    for (size_t q = 0; q < queries_.size(); ++q) {
      if (!queries_[q].active) continue;
      const sketch::SignaturePool::Handle h = pool.Allocate();
      pool.BuildFromSketches(h, wsk, queries_[q].sketch);
      ++stats_.bitsig_builds;
      if (config_.enable_pruning && !pool.SatisfiesLemma2(h, config_.delta)) {
        ++stats_.candidates_pruned;
        pool.Free(h);
        continue;
      }
      c->sigs.push_back(PooledSigRef{static_cast<int>(q), h});
    }
  }
}

void CopyDetector::InitPooledSketchCand(PooledSketchCand* c,
                                        const stream::BasicWindow& window,
                                        const sketch::Sketch& wsk) {
  c->num_windows = 1;
  c->start_frame = window.start_frame;
  c->end_frame = window.end_frame;
  c->start_time = window.start_time;
  c->end_time = window.end_time;
  c->related.clear();
  c->sketch = sketch_pool_->Allocate();  // shell arrives retired (kInvalid)
  sketch_pool_->Assign(c->sketch, wsk);
  if (config_.use_index && index_.has_value()) {
    {
      VCD_OBS_SPAN(metrics_.probe_ns);
      index_->ProbeRelatedInto(wsk, &scratch_.probe, &scratch_.related_infos);
    }
    for (const index::QueryInfo& info : scratch_.related_infos) {
      const int q = OrdinalOf(info.id);
      if (q >= 0) c->related.push_back(q);
    }
    std::sort(c->related.begin(), c->related.end());
  }
}

void CopyDetector::MergePooledBit(PooledBitCand& older, const PooledBitCand& newer) {
  sketch::SignaturePool& pool = *sig_pool_;
  // Fast path: at steady state both candidates usually track the same query
  // set (always, without an index), making the union-merge the identity on
  // older.sigs with every pair OR'd. Detect that with one cheap ordinal
  // sweep and skip the merged-buffer bookkeeping — kernel call, prune
  // decisions and stats are identical to the general path below.
  bool same_queries = older.sigs.size() == newer.sigs.size();
  for (size_t t = 0; same_queries && t < older.sigs.size(); ++t) {
    same_queries = older.sigs[t].q == newer.sigs[t].q;
  }
  if (same_queries) {
    const size_t n = older.sigs.size();
    std::vector<sketch::SignaturePool::Handle>& dst = scratch_.or_dst;
    std::vector<sketch::SignaturePool::Handle>& src = scratch_.or_src;
    dst.clear();
    src.clear();
    for (size_t t = 0; t < n; ++t) {
      dst.push_back(older.sigs[t].sig);
      src.push_back(newer.sigs[t].sig);
    }
    stats_.bitsig_ors += static_cast<int64_t>(n);
    if (!config_.enable_pruning) {
      pool.OrRange(dst.data(), src.data(), n);
    } else {
      std::vector<int>& less = scratch_.or_less;
      less.resize(n);
      pool.OrRange(dst.data(), src.data(), n, less.data());
      const double max_less =
          static_cast<double>(config_.K) * (1.0 - config_.delta) + 1e-9;
      size_t out = 0;
      for (size_t t = 0; t < n; ++t) {
        if (static_cast<double>(less[t]) > max_less) {
          ++stats_.candidates_pruned;
          pool.Free(older.sigs[t].sig);
        } else {
          older.sigs[out++] = older.sigs[t];
        }
      }
      older.sigs.resize(out);
    }
    older.num_windows += newer.num_windows;
    older.end_frame = newer.end_frame;
    older.end_time = newer.end_time;
    return;
  }
  // Union-merge into the scratch buffer: common ordinals are queued for one
  // batched OrRange pass; newer-only entries are cloned (the newer candidate
  // keeps ownership of its own slots and is retired by its container).
  std::vector<PooledSigRef>& merged = scratch_.merge_sigs;
  std::vector<sketch::SignaturePool::Handle>& or_dst = scratch_.or_dst;
  std::vector<sketch::SignaturePool::Handle>& or_src = scratch_.or_src;
  std::vector<int>& or_idx = scratch_.merge_or_idx;
  const bool pruning = config_.enable_pruning;
  merged.clear();
  or_dst.clear();
  or_src.clear();
  if (pruning) or_idx.clear();
  size_t i = 0, j = 0;
  while (i < older.sigs.size() || j < newer.sigs.size()) {
    if (j >= newer.sigs.size() ||
        (i < older.sigs.size() && older.sigs[i].q < newer.sigs[j].q)) {
      if (pruning) or_idx.push_back(-1);
      merged.push_back(older.sigs[i++]);
    } else if (i >= older.sigs.size() || newer.sigs[j].q < older.sigs[i].q) {
      const PooledSigRef& s = newer.sigs[j++];
      if (pruning) or_idx.push_back(-1);
      merged.push_back(PooledSigRef{s.q, pool.Clone(s.sig)});
    } else {
      PooledSigRef out = older.sigs[i++];
      if (pruning) or_idx.push_back(static_cast<int>(or_dst.size()));
      or_dst.push_back(out.sig);
      or_src.push_back(newer.sigs[j++].sig);
      ++stats_.bitsig_ors;
      merged.push_back(out);
    }
  }
  if (!pruning) {
    pool.OrRange(or_dst.data(), or_src.data(), or_dst.size());
  } else {
    // Fused pass: the OR kernel hands back NumLess of each combined slot,
    // so the Lemma-2 merge scan costs no extra slab traversal. Non-OR'd
    // entries (cloned newer-only / carried older-only) are scanned
    // individually — the same prune decision PruneScan would make.
    std::vector<int>& or_less = scratch_.or_less;
    or_less.resize(or_dst.size());
    pool.OrRange(or_dst.data(), or_src.data(), or_dst.size(), or_less.data());
    const double max_less =
        static_cast<double>(config_.K) * (1.0 - config_.delta) + 1e-9;
    size_t out = 0;
    for (size_t t = 0; t < merged.size(); ++t) {
      const int oi = or_idx[t];
      const int less = oi >= 0 ? or_less[static_cast<size_t>(oi)]
                               : pool.NumLess(merged[t].sig);
      if (static_cast<double>(less) > max_less) {
        ++stats_.candidates_pruned;
        pool.Free(merged[t].sig);
      } else {
        merged[out++] = merged[t];
      }
    }
    merged.resize(out);
  }
  older.sigs.swap(merged);
  older.num_windows += newer.num_windows;
  older.end_frame = newer.end_frame;
  older.end_time = newer.end_time;
}

void CopyDetector::MergePooledSketch(PooledSketchCand& older,
                                     const PooledSketchCand& newer) {
  sketch_pool_->CombineMin(older.sketch, newer.sketch);
  ++stats_.sketch_combines;
  if (config_.use_index) {
    std::vector<int>& merged = scratch_.merge_related;
    merged.clear();
    std::set_union(older.related.begin(), older.related.end(),
                   newer.related.begin(), newer.related.end(),
                   std::back_inserter(merged));
    older.related.swap(merged);
  }
  older.num_windows += newer.num_windows;
  older.end_frame = newer.end_frame;
  older.end_time = newer.end_time;
}

bool CopyDetector::TestPooledBitCand(PooledBitCand& c) {
  sketch::SignaturePool& pool = *sig_pool_;
  const size_t n = c.sigs.size();
  std::vector<sketch::SignaturePool::Handle>& hs = scratch_.handle_buf;
  std::vector<int>& eq = scratch_.eq_buf;
  std::vector<int>& less = scratch_.less_buf;
  hs.clear();
  for (const PooledSigRef& s : c.sigs) hs.push_back(s.sig);
  eq.resize(n);
  less.resize(n);
  pool.NumEqualBatch(hs.data(), n, eq.data(), less.data());
  return TestPooledBitCandCounted(c, eq.data(), less.data());
}

void CopyDetector::TestPooledBitSeqBatch() {
  // Cross-candidate batched sweep for the sequential-bit order: flatten
  // every live candidate's slot handles into ONE NumEqualBatch call — the
  // SIMD backend evaluates 4–8 slots per vector pass and prefetches ahead
  // across candidate boundaries — then run the per-candidate walks over the
  // precomputed counts in the same order as the per-candidate path, so
  // match emission, expiry and prune decisions are byte-identical.
  sketch::SignaturePool& pool = *sig_pool_;
  std::vector<sketch::SignaturePool::Handle>& hs = scratch_.handle_buf;
  std::vector<int>& eq = scratch_.eq_buf;
  std::vector<int>& less = scratch_.less_buf;
  hs.clear();
  pseq_bit_.ForEach([&](PooledBitCand& c) {
    for (const PooledSigRef& s : c.sigs) hs.push_back(s.sig);
  });
  eq.resize(hs.size());
  less.resize(hs.size());
  pool.NumEqualBatch(hs.data(), hs.size(), eq.data(), less.data());
  size_t off = 0;
  pseq_bit_.ForEach([&](PooledBitCand& c) {
    const size_t n = c.sigs.size();
    TestPooledBitCandCounted(c, eq.data() + off, less.data() + off);
    off += n;
  });
}

bool CopyDetector::TestPooledBitCandCounted(PooledBitCand& c, const int* eq,
                                            const int* less) {
  sketch::SignaturePool& pool = *sig_pool_;
  const size_t n = c.sigs.size();
  // Same arithmetic as BitSignature::SatisfiesLemma2 / Similarity.
  const double less_bound =
      static_cast<double>(config_.K) * (1.0 - config_.delta) + 1e-9;
  const int* caps = query_window_cap_.data();
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    PooledSigRef& s = c.sigs[i];
    // caps[q] is 0 once unsubscribed, so one packed-array compare covers
    // both the active check and the per-query λL expiry.
    if (c.num_windows > caps[s.q]) {
      pool.Free(s.sig);  // unsubscribed or past per-query λL expiry: drop
      continue;
    }
    if (config_.enable_pruning && static_cast<double>(less[i]) > less_bound) {
      ++stats_.candidates_pruned;
      pool.Free(s.sig);
      continue;
    }
    const double sim = static_cast<double>(eq[i]) / config_.K;
    if (sim >= config_.delta) {
      EmitMatch(s.q, c.start_frame, c.end_frame, c.start_time, c.end_time, sim);
    }
    if (out != i) c.sigs[out] = s;
    ++out;
  }
  c.sigs.resize(out);
  return !c.sigs.empty();
}

bool CopyDetector::TestPooledSketchCand(PooledSketchCand& c) {
  auto test_one = [&](int q_ord) {
    const QueryRec& q = queries_[static_cast<size_t>(q_ord)];
    if (!q.active) return;
    if (c.num_windows > q.max_windows) return;
    ++stats_.sketch_compares;
    const double sim = sketch_pool_->SimilarityAgainst(c.sketch, q.sketch);
    if (sim >= config_.delta) {
      EmitMatch(q_ord, c.start_frame, c.end_frame, c.start_time, c.end_time, sim);
    }
  };
  if (config_.use_index) {
    for (int q : c.related) test_one(q);
  } else {
    for (size_t q = 0; q < queries_.size(); ++q) test_one(static_cast<int>(q));
  }
  return true;
}

void CopyDetector::AssignPooledBit(PooledBitCand* dst, const PooledBitCand& src) {
  dst->num_windows = src.num_windows;
  dst->start_frame = src.start_frame;
  dst->end_frame = src.end_frame;
  dst->start_time = src.start_time;
  dst->end_time = src.end_time;
  dst->sigs.clear();
  for (const PooledSigRef& s : src.sigs) {
    dst->sigs.push_back(PooledSigRef{s.q, sig_pool_->Clone(s.sig)});
  }
}

void CopyDetector::AssignPooledSketch(PooledSketchCand* dst,
                                      const PooledSketchCand& src) {
  dst->num_windows = src.num_windows;
  dst->start_frame = src.start_frame;
  dst->end_frame = src.end_frame;
  dst->start_time = src.start_time;
  dst->end_time = src.end_time;
  dst->sketch = sketch_pool_->Allocate();  // shell arrives retired
  sketch_pool_->Copy(dst->sketch, src.sketch);
  dst->related.assign(src.related.begin(), src.related.end());
}

void CopyDetector::RetirePooledBit(PooledBitCand* c) {
  for (const PooledSigRef& s : c->sigs) sig_pool_->Free(s.sig);
  c->sigs.clear();
}

void CopyDetector::RetirePooledSketch(PooledSketchCand* c) {
  if (c->sketch != sketch::SketchPool::kInvalidHandle) {
    sketch_pool_->Free(c->sketch);
    c->sketch = sketch::SketchPool::kInvalidHandle;
  }
  c->related.clear();
}

// --- per-window dispatch ----------------------------------------------------

void CopyDetector::ProcessWindow(const stream::BasicWindow& window) {
  VCD_OBS_SPAN(metrics_.window_process_ns);
  const int64_t window_index = stats_.windows;  // 0-based, pre-increment
  ++stats_.windows;
  if (window.degraded) {
    // The window's id set is incomplete: a sketch of it would be garbage
    // and an OR into candidate signatures is irreversible. Skip combination
    // entirely — candidates neither absorb this window nor advance, and
    // the arenas/index are untouched, so ValidateState holds unchanged.
    ++stats_.degraded_windows;
  } else if (degrade_.probe_every_n > 1 &&
             window_index % degrade_.probe_every_n != 0) {
    // QoS degraded mode: probe only every Nth window. Skipping follows the
    // degraded-window path — candidates neither absorb nor advance — so
    // every invariant ValidateState checks holds unchanged; the counter is
    // separate because the input was fine, the governor chose not to spend
    // the work. Keyed off the deterministic window index, never wall time.
    ++stats_.qos_skipped_windows;
  } else if (config_.use_pooled_kernels) {
    ProcessWindowPooled(window);
  } else {
    ProcessWindowScalar(window);
  }
  RecordWindowStats();
  PublishWindowMetrics();
  if (config_.validate_state) VCD_CHECK_OK(ValidateState());
}

void CopyDetector::ProcessWindowScalar(const stream::BasicWindow& window) {
  // Stage spans are per *window*, not per merge — the combine span covers
  // the whole Step; the test span covers the full candidate sweep (in the
  // geometric order that sweep interleaves suffix merges with tests, so
  // its combine share lands in the test span — documented in DESIGN.md §13).
  // NOLINT(vcd-pooled-hotpath): scalar reference path
  sketch::Sketch wsk;
  {
    VCD_OBS_SPAN(metrics_.sketch_build_ns);
    wsk = sketcher_.FromSequence(window.ids);
  }
  const bool bit = config_.representation == Representation::kBit;
  const bool seq = config_.order == CombinationOrder::kSequential;
  const int eff_max = EffectiveMaxWindows();
  const int geo_visits = GeoMaxVisits();
  if (bit) {
    BitCand fresh = MakeBitCand(window, wsk);
    if (seq) {
      {
        VCD_OBS_SPAN(metrics_.combine_ns);
        seq_bit_.Step(std::move(fresh), eff_max,
                      [&](BitCand& older, const BitCand& newer) {
                        MergeBit(older, newer);
                      });
      }
      VCD_OBS_SPAN(metrics_.test_ns);
      seq_bit_.ForEach([&](BitCand& c) { TestBitCand(c); });
      seq_bit_.RemoveIf([](const BitCand& c) { return c.sigs.empty(); });
    } else {
      {
        VCD_OBS_SPAN(metrics_.combine_ns);
        geo_bit_.Step(std::move(fresh), eff_max,
                      [&](BitCand& older, const BitCand& newer) {
                        MergeBit(older, newer);
                      });
      }
      VCD_OBS_SPAN(metrics_.test_ns);
      geo_bit_.VisitSuffixes(
          eff_max, [](const BitCand& c) { return c; },
          [&](BitCand& older, const BitCand& newer) { MergeBit(older, newer); },
          [&](BitCand& c) { TestBitCand(c); }, geo_visits);
      // Blocks are kept even when all their signatures prune away: their
      // window spans still participate in suffix-length accounting.
    }
  } else {
    SketchCand fresh = MakeSketchCand(window, wsk);
    if (seq) {
      {
        VCD_OBS_SPAN(metrics_.combine_ns);
        seq_sketch_.Step(std::move(fresh), eff_max,
                         [&](SketchCand& older, const SketchCand& newer) {
                           MergeSketch(older, newer);
                         });
      }
      VCD_OBS_SPAN(metrics_.test_ns);
      seq_sketch_.ForEach([&](SketchCand& c) { TestSketchCand(c); });
    } else {
      {
        VCD_OBS_SPAN(metrics_.combine_ns);
        geo_sketch_.Step(std::move(fresh), eff_max,
                         [&](SketchCand& older, const SketchCand& newer) {
                           MergeSketch(older, newer);
                         });
      }
      VCD_OBS_SPAN(metrics_.test_ns);
      geo_sketch_.VisitSuffixes(
          eff_max, [](const SketchCand& c) { return c; },
          [&](SketchCand& older, const SketchCand& newer) {
            MergeSketch(older, newer);
          },
          [&](SketchCand& c) { TestSketchCand(c); }, geo_visits);
    }
  }
}

void CopyDetector::ProcessWindowPooled(const stream::BasicWindow& window) {
  // Span placement mirrors ProcessWindowScalar: combine covers Step, test
  // covers the candidate sweep (which, in geometric order, interleaves
  // suffix merges).
  {
    VCD_OBS_SPAN(metrics_.sketch_build_ns);
    sketcher_.FromSequenceInto(window.ids, &scratch_.window_sketch);
  }
  const sketch::Sketch& wsk = scratch_.window_sketch;
  const bool bit = config_.representation == Representation::kBit;
  const bool seq = config_.order == CombinationOrder::kSequential;
  const int eff_max = EffectiveMaxWindows();
  const int geo_visits = GeoMaxVisits();
  if (bit) {
    const auto init = [&](PooledBitCand& c) { InitPooledBitCand(&c, window, wsk); };
    const auto merge = [&](PooledBitCand& older, const PooledBitCand& newer) {
      MergePooledBit(older, newer);
    };
    const auto retire = [&](PooledBitCand& c) { RetirePooledBit(&c); };
    if (seq) {
      {
        VCD_OBS_SPAN(metrics_.combine_ns);
        pseq_bit_.Step(eff_max, init, merge, retire);
      }
      VCD_OBS_SPAN(metrics_.test_ns);
      TestPooledBitSeqBatch();
      pseq_bit_.RemoveIf([](const PooledBitCand& c) { return c.sigs.empty(); },
                         retire);
    } else {
      {
        VCD_OBS_SPAN(metrics_.combine_ns);
        pgeo_bit_.Step(eff_max, init, merge, retire);
      }
      VCD_OBS_SPAN(metrics_.test_ns);
      pgeo_bit_.VisitSuffixesInto(
          eff_max, &scratch_.bit_cum, &scratch_.bit_tmp,
          [&](PooledBitCand& dst, const PooledBitCand& src) {
            AssignPooledBit(&dst, src);
          },
          merge, [&](PooledBitCand& c) { TestPooledBitCand(c); }, retire,
          geo_visits);
      // Blocks are kept even when all their signatures prune away, exactly
      // as on the scalar path.
    }
  } else {
    const auto init = [&](PooledSketchCand& c) {
      InitPooledSketchCand(&c, window, wsk);
    };
    const auto merge = [&](PooledSketchCand& older, const PooledSketchCand& newer) {
      MergePooledSketch(older, newer);
    };
    const auto retire = [&](PooledSketchCand& c) { RetirePooledSketch(&c); };
    if (seq) {
      {
        VCD_OBS_SPAN(metrics_.combine_ns);
        pseq_sketch_.Step(eff_max, init, merge, retire);
      }
      VCD_OBS_SPAN(metrics_.test_ns);
      pseq_sketch_.ForEach([&](PooledSketchCand& c) { TestPooledSketchCand(c); });
    } else {
      {
        VCD_OBS_SPAN(metrics_.combine_ns);
        pgeo_sketch_.Step(eff_max, init, merge, retire);
      }
      VCD_OBS_SPAN(metrics_.test_ns);
      pgeo_sketch_.VisitSuffixesInto(
          eff_max, &scratch_.sketch_cum, &scratch_.sketch_tmp,
          [&](PooledSketchCand& dst, const PooledSketchCand& src) {
            AssignPooledSketch(&dst, src);
          },
          merge, [&](PooledSketchCand& c) { TestPooledSketchCand(c); }, retire,
          geo_visits);
    }
  }
}

void CopyDetector::RecordWindowStats() {
  int64_t sig_count = 0;
  int64_t cand_count = 0;
  const bool bit = config_.representation == Representation::kBit;
  const bool seq = config_.order == CombinationOrder::kSequential;
  const bool pooled = config_.use_pooled_kernels;
  const auto count_bit = [&](const auto& c) {
    sig_count += static_cast<int64_t>(c.sigs.size());
    ++cand_count;
  };
  const auto count_sketch = [&](const auto& c) {
    sig_count += config_.use_index ? static_cast<int64_t>(c.related.size())
                                   : static_cast<int64_t>(queries_.size());
    ++cand_count;
  };
  if (bit && seq) {
    if (pooled) {
      pseq_bit_.ForEach(count_bit);
    } else {
      seq_bit_.ForEach(count_bit);
    }
  } else if (bit && !seq) {
    if (pooled) {
      pgeo_bit_.ForEach(count_bit);
    } else {
      geo_bit_.ForEach(count_bit);
    }
  } else if (!bit && seq) {
    if (pooled) {
      pseq_sketch_.ForEach(count_sketch);
    } else {
      seq_sketch_.ForEach(count_sketch);
    }
  } else {
    if (pooled) {
      pgeo_sketch_.ForEach(count_sketch);
    } else {
      geo_sketch_.ForEach(count_sketch);
    }
  }
  stats_.signatures_per_window.Add(static_cast<double>(sig_count));
  stats_.candidates_per_window.Add(static_cast<double>(cand_count));
  last_cand_count_ = cand_count;
  int64_t slots = 0;
  if (pooled) {
    slots = bit ? static_cast<int64_t>(sig_pool_->live_count())
                : static_cast<int64_t>(sketch_pool_->live_count());
  }
  stats_.pool_slots_per_window.Add(static_cast<double>(slots));
}

void CopyDetector::PublishWindowMetrics() {
  // One delta batch per window. Derived purely from stats_ and the
  // candidate census, both of which are identical across the pooled and
  // scalar paths (pinned by the pooled-equivalence and metrics-equivalence
  // tests), so the published counters are path-independent too.
  if (!obs::kEnabled || metrics_.windows_total == nullptr) return;
  const auto delta = [](int64_t now, int64_t* prev) {
    const int64_t d = now - *prev;
    *prev = now;
    return d;
  };
  metrics_.windows_total->Inc(delta(stats_.windows, &published_.windows));
  const int64_t degraded =
      delta(stats_.degraded_windows, &published_.degraded_windows);
  metrics_.degraded_windows_total->Inc(degraded);
  const int64_t qos_skipped =
      delta(stats_.qos_skipped_windows, &published_.qos_skipped_windows);
  if (metrics_.qos_skipped_windows_total != nullptr) {
    metrics_.qos_skipped_windows_total->Inc(qos_skipped);
  }
  const int64_t builds = delta(stats_.bitsig_builds, &published_.bitsig_builds);
  metrics_.bitsig_builds_total->Inc(builds);
  const int64_t ors = delta(stats_.bitsig_ors, &published_.bitsig_ors);
  metrics_.bitsig_ors_total->Inc(ors);
  metrics_.sketch_combines_total->Inc(
      delta(stats_.sketch_combines, &published_.sketch_combines));
  metrics_.sketch_compares_total->Inc(
      delta(stats_.sketch_compares, &published_.sketch_compares));
  const int64_t pruned =
      delta(stats_.candidates_pruned, &published_.candidates_pruned);
  metrics_.prune_hits_total->Inc(pruned);
  // A "miss" is a signature build/extend that pruning did not eliminate —
  // the work Lemma 2 failed to save this window.
  const int64_t misses = builds + ors - pruned;
  metrics_.prune_misses_total->Inc(misses > 0 ? misses : 0);
  metrics_.matches_total->Inc(
      delta(static_cast<int64_t>(matches_.size()), &published_.matches));
  // Candidate churn: every combined window admits exactly one fresh
  // candidate; whatever the census lost beyond that retired (expired at
  // λL, pruned empty, or absorbed by a merge). Degraded and QoS-skipped
  // windows admit nothing — combination never ran.
  const int64_t admitted = (degraded > 0 || qos_skipped > 0) ? 0 : 1;
  metrics_.candidates_admitted_total->Inc(admitted);
  const int64_t expired =
      published_.cand_count + admitted - last_cand_count_;
  metrics_.candidates_expired_total->Inc(expired > 0 ? expired : 0);
  published_.cand_count = last_cand_count_;
}

Status CopyDetector::ValidateState() const {
  // The packed window-cap mirror must track queries_ exactly: the hot test
  // loop trusts it for both the active check and the λL expiry bound.
  if (query_window_cap_.size() != queries_.size()) {
    return Status::Internal("query_window_cap_ size out of sync with queries_");
  }
  for (size_t q = 0; q < queries_.size(); ++q) {
    const int expect = queries_[q].active ? queries_[q].max_windows : 0;
    if (query_window_cap_[q] != expect) {
      return Status::Internal("query_window_cap_[" + std::to_string(q) +
                              "] out of sync with its QueryRec");
    }
  }
  const auto check_span = [&](int num_windows) -> Status {
    if (num_windows < 1 || num_windows > global_max_windows_) {
      return Status::Internal("candidate num_windows " + std::to_string(num_windows) +
                              " outside [1, " + std::to_string(global_max_windows_) +
                              "] (λL expiry bound)");
    }
    return Status::OK();
  };
  const auto check_ordinals = [&](int q, int prev_q) -> Status {
    if (q < 0 || q >= static_cast<int>(queries_.size())) {
      return Status::Internal("signature for out-of-range query ordinal " +
                              std::to_string(q));
    }
    if (q <= prev_q) {
      return Status::Internal("signature list not strictly sorted by ordinal");
    }
    return Status::OK();
  };
  const auto check_bit = [&](const BitCand& c) -> Status {
    VCD_RETURN_IF_ERROR(check_span(c.num_windows));
    int prev_q = -1;
    for (const BitCand::Sig& s : c.sigs) {
      VCD_RETURN_IF_ERROR(check_ordinals(s.q, prev_q));
      prev_q = s.q;
      if (s.sig.K() != config_.K) {
        return Status::Internal("bit signature K does not match config");
      }
      VCD_RETURN_IF_ERROR(s.sig.Validate());
    }
    return Status::OK();
  };
  const auto check_sketch = [&](const SketchCand& c) -> Status {
    VCD_RETURN_IF_ERROR(check_span(c.num_windows));
    if (c.sketch.K() != config_.K) {
      return Status::Internal("candidate sketch K does not match config");
    }
    int prev_q = -1;
    for (int q : c.related) {
      if (q < 0 || q >= static_cast<int>(queries_.size())) {
        return Status::Internal("related list has out-of-range query ordinal " +
                                std::to_string(q));
      }
      if (q <= prev_q) {
        return Status::Internal("related list not strictly sorted");
      }
      prev_q = q;
    }
    return Status::OK();
  };
  // Pooled candidates: every referenced slot must be live, well-formed when
  // materialized, and — counted across all candidates — account for exactly
  // the pools' live slots (no leaked and no doubly-owned handles).
  size_t bit_handles = 0;
  size_t sketch_handles = 0;
  const auto check_pooled_bit = [&](const PooledBitCand& c) -> Status {
    VCD_RETURN_IF_ERROR(check_span(c.num_windows));
    int prev_q = -1;
    for (const PooledSigRef& s : c.sigs) {
      VCD_RETURN_IF_ERROR(check_ordinals(s.q, prev_q));
      prev_q = s.q;
      if (!sig_pool_->IsLive(s.sig)) {
        return Status::Internal("pooled candidate references a dead signature slot");
      }
      VCD_RETURN_IF_ERROR(sig_pool_->ToBitSignature(s.sig).Validate());
      ++bit_handles;
    }
    return Status::OK();
  };
  const auto check_pooled_sketch = [&](const PooledSketchCand& c) -> Status {
    VCD_RETURN_IF_ERROR(check_span(c.num_windows));
    if (!sketch_pool_->IsLive(c.sketch)) {
      return Status::Internal("pooled candidate references a dead sketch slot");
    }
    ++sketch_handles;
    int prev_q = -1;
    for (int q : c.related) {
      if (q < 0 || q >= static_cast<int>(queries_.size())) {
        return Status::Internal("related list has out-of-range query ordinal " +
                                std::to_string(q));
      }
      if (q <= prev_q) {
        return Status::Internal("related list not strictly sorted");
      }
      prev_q = q;
    }
    return Status::OK();
  };

  for (size_t i = 0; i < seq_bit_.size(); ++i) {
    VCD_RETURN_IF_ERROR(check_bit(seq_bit_.at(i)));
  }
  for (const auto& slot : geo_bit_.ladder()) {
    if (slot.has_value()) VCD_RETURN_IF_ERROR(check_bit(*slot));
  }
  for (size_t i = 0; i < seq_sketch_.size(); ++i) {
    VCD_RETURN_IF_ERROR(check_sketch(seq_sketch_.at(i)));
  }
  for (const auto& slot : geo_sketch_.ladder()) {
    if (slot.has_value()) VCD_RETURN_IF_ERROR(check_sketch(*slot));
  }
  for (size_t i = 0; i < pseq_bit_.size(); ++i) {
    VCD_RETURN_IF_ERROR(check_pooled_bit(pseq_bit_.at(i)));
  }
  for (const auto& slot : pgeo_bit_.ladder()) {
    if (slot.has_value()) VCD_RETURN_IF_ERROR(check_pooled_bit(*slot));
  }
  for (size_t i = 0; i < pseq_sketch_.size(); ++i) {
    VCD_RETURN_IF_ERROR(check_pooled_sketch(pseq_sketch_.at(i)));
  }
  for (const auto& slot : pgeo_sketch_.ladder()) {
    if (slot.has_value()) VCD_RETURN_IF_ERROR(check_pooled_sketch(*slot));
  }
  if (sig_pool_.has_value()) {
    VCD_RETURN_IF_ERROR(sig_pool_->Validate());
    if (bit_handles != sig_pool_->live_count()) {
      return Status::Internal(
          "signature pool live count " + std::to_string(sig_pool_->live_count()) +
          " does not match " + std::to_string(bit_handles) +
          " handles held by candidates");
    }
  }
  if (sketch_pool_.has_value()) {
    VCD_RETURN_IF_ERROR(sketch_pool_->Validate());
    if (sketch_handles != sketch_pool_->live_count()) {
      return Status::Internal(
          "sketch pool live count " + std::to_string(sketch_pool_->live_count()) +
          " does not match " + std::to_string(sketch_handles) +
          " handles held by candidates");
    }
  }
  if (index_.has_value()) VCD_RETURN_IF_ERROR(index_->Validate());
  return Status::OK();
}

// --- checkpoint/restore -----------------------------------------------------

DetectorCkptState CopyDetector::ExportCkptState() const {
  DetectorCkptState st;
  st.saw_frame = saw_frame_;
  st.max_timestamp = max_timestamp_;
  st.assembler = assembler_->ExportCkpt();
  for (const QueryRec& q : queries_) {
    if (!q.active) continue;
    st.queries.push_back(DetectorCkptState::QueryState{q.info.id, q.suppress_until});
  }
  st.stats = stats_;
  st.matches = matches_;

  const auto base_of = [](const auto& c, int32_t level) {
    CkptCandidate out;
    out.ladder_level = level;
    out.num_windows = c.num_windows;
    out.start_frame = c.start_frame;
    out.end_frame = c.end_frame;
    out.start_time = c.start_time;
    out.end_time = c.end_time;
    return out;
  };
  const auto words_of = [](const sketch::BitSignature& sig) {
    const BitVector& bits = sig.bits();
    return std::vector<uint64_t>(bits.words(), bits.words() + bits.num_words());
  };
  const auto export_bit = [&](const BitCand& c, int32_t level) {
    CkptCandidate out = base_of(c, level);
    for (const BitCand::Sig& s : c.sigs) {
      out.sigs.push_back(CkptCandidate::Sig{
          queries_[static_cast<size_t>(s.q)].info.id, words_of(s.sig)});
    }
    st.candidates.push_back(std::move(out));
  };
  const auto export_pbit = [&](const PooledBitCand& c, int32_t level) {
    CkptCandidate out = base_of(c, level);
    for (const PooledSigRef& s : c.sigs) {
      out.sigs.push_back(CkptCandidate::Sig{
          queries_[static_cast<size_t>(s.q)].info.id,
          words_of(sig_pool_->ToBitSignature(s.sig))});
    }
    st.candidates.push_back(std::move(out));
  };
  const auto export_sketch = [&](const SketchCand& c, int32_t level) {
    CkptCandidate out = base_of(c, level);
    out.mins = c.sketch.mins;
    for (int q : c.related) {
      out.related_ids.push_back(queries_[static_cast<size_t>(q)].info.id);
    }
    st.candidates.push_back(std::move(out));
  };
  const auto export_psketch = [&](const PooledSketchCand& c, int32_t level) {
    CkptCandidate out = base_of(c, level);
    out.mins = sketch_pool_->ToSketch(c.sketch).mins;
    for (int q : c.related) {
      out.related_ids.push_back(queries_[static_cast<size_t>(q)].info.id);
    }
    st.candidates.push_back(std::move(out));
  };
  const auto export_ladder = [&](const auto& geo, const auto& fn) {
    const auto& ladder = geo.ladder();
    for (size_t lv = 0; lv < ladder.size(); ++lv) {
      if (ladder[lv].has_value()) fn(*ladder[lv], static_cast<int32_t>(lv));
    }
  };

  const bool bit = config_.representation == Representation::kBit;
  const bool seq = config_.order == CombinationOrder::kSequential;
  if (config_.use_pooled_kernels) {
    if (bit && seq) {
      for (size_t i = 0; i < pseq_bit_.size(); ++i) export_pbit(pseq_bit_.at(i), -1);
    } else if (bit) {
      export_ladder(pgeo_bit_, export_pbit);
    } else if (seq) {
      for (size_t i = 0; i < pseq_sketch_.size(); ++i) {
        export_psketch(pseq_sketch_.at(i), -1);
      }
    } else {
      export_ladder(pgeo_sketch_, export_psketch);
    }
  } else {
    if (bit && seq) {
      for (size_t i = 0; i < seq_bit_.size(); ++i) export_bit(seq_bit_.at(i), -1);
    } else if (bit) {
      export_ladder(geo_bit_, export_bit);
    } else if (seq) {
      for (size_t i = 0; i < seq_sketch_.size(); ++i) {
        export_sketch(seq_sketch_.at(i), -1);
      }
    } else {
      export_ladder(geo_sketch_, export_sketch);
    }
  }
  return st;
}

Status CopyDetector::RestoreCkptState(const DetectorCkptState& st) {
  if (saw_frame_ || stats_.key_frames != 0 || !matches_.empty()) {
    return Status::FailedPrecondition(
        "RestoreCkptState requires a detector that has seen no stream frames");
  }
  for (const DetectorCkptState::QueryState& qs : st.queries) {
    const int q = OrdinalOf(qs.id);
    if (q < 0) {
      return Status::FailedPrecondition(
          "snapshot references query id " + std::to_string(qs.id) +
          " which is not subscribed on this detector");
    }
    queries_[static_cast<size_t>(q)].suppress_until = qs.suppress_until;
  }
  saw_frame_ = st.saw_frame;
  max_timestamp_ = st.max_timestamp;
  assembler_->RestoreCkpt(st.assembler);
  stats_ = st.stats;
  matches_ = st.matches;

  const bool bit = config_.representation == Representation::kBit;
  const bool seq = config_.order == CombinationOrder::kSequential;
  const bool pooled = config_.use_pooled_kernels;
  // Signatures are 2K bits (two relation bits per hash position, §V-A).
  const size_t sig_words = (2 * static_cast<size_t>(config_.K) + 63) / 64;
  int32_t prev_level = -1;
  int64_t restored = 0;
  for (const CkptCandidate& c : st.candidates) {
    if (seq != (c.ladder_level < 0)) {
      return Status::Corruption(
          "snapshot candidate order does not match the configured "
          "combination order");
    }
    if (!seq) {
      if (c.ladder_level <= prev_level) {
        return Status::Corruption("snapshot ladder levels not ascending");
      }
      prev_level = c.ladder_level;
    }
    if (bit) {
      if (!c.mins.empty()) {
        return Status::Corruption("bit-representation snapshot carries sketch mins");
      }
      for (const CkptCandidate::Sig& s : c.sigs) {
        if (s.words.size() != sig_words) {
          return Status::Corruption(
              "snapshot signature has " + std::to_string(s.words.size()) +
              " words, expected " + std::to_string(sig_words));
        }
      }
      if (pooled) {
        PooledBitCand out;
        out.num_windows = c.num_windows;
        out.start_frame = c.start_frame;
        out.end_frame = c.end_frame;
        out.start_time = c.start_time;
        out.end_time = c.end_time;
        for (const CkptCandidate::Sig& s : c.sigs) {
          const int q = OrdinalOf(s.query_id);
          if (q < 0) continue;  // query removed since the snapshot
          const sketch::SignaturePool::Handle h = sig_pool_->Allocate();
          for (size_t w = 0; w < sig_words; ++w) {
            sig_pool_->word(h, w) = s.words[w];
          }
          out.sigs.push_back(PooledSigRef{q, h});
        }
        if (seq) {
          pseq_bit_.RestoreBack(std::move(out));
        } else {
          auto& ladder = pgeo_bit_.ladder();
          if (ladder.size() <= static_cast<size_t>(c.ladder_level)) {
            ladder.resize(static_cast<size_t>(c.ladder_level) + 1);
          }
          ladder[static_cast<size_t>(c.ladder_level)] = std::move(out);
        }
      } else {
        BitCand out;
        out.num_windows = c.num_windows;
        out.start_frame = c.start_frame;
        out.end_frame = c.end_frame;
        out.start_time = c.start_time;
        out.end_time = c.end_time;
        for (const CkptCandidate::Sig& s : c.sigs) {
          const int q = OrdinalOf(s.query_id);
          if (q < 0) continue;
          out.sigs.push_back(BitCand::Sig{
              q, sketch::BitSignature::FromRawWords(config_.K, s.words.data(),
                                                    s.words.size())});
        }
        if (seq) {
          seq_bit_.RestoreBack(std::move(out));
        } else {
          auto& ladder = geo_bit_.ladder();
          if (ladder.size() <= static_cast<size_t>(c.ladder_level)) {
            ladder.resize(static_cast<size_t>(c.ladder_level) + 1);
          }
          ladder[static_cast<size_t>(c.ladder_level)] = std::move(out);
        }
      }
    } else {
      if (!c.sigs.empty()) {
        return Status::Corruption(
            "sketch-representation snapshot carries bit signatures");
      }
      if (c.mins.size() != static_cast<size_t>(config_.K)) {
        return Status::Corruption(
            "snapshot sketch has " + std::to_string(c.mins.size()) +
            " mins, expected K=" + std::to_string(config_.K));
      }
      std::vector<int> related;
      for (int id : c.related_ids) {
        const int q = OrdinalOf(id);
        if (q >= 0) related.push_back(q);
      }
      std::sort(related.begin(), related.end());
      if (pooled) {
        PooledSketchCand out;
        out.num_windows = c.num_windows;
        out.start_frame = c.start_frame;
        out.end_frame = c.end_frame;
        out.start_time = c.start_time;
        out.end_time = c.end_time;
        sketch::Sketch sk;  // NOLINT(vcd-pooled-hotpath): restore, cold
        sk.mins = c.mins;
        out.sketch = sketch_pool_->Allocate();
        sketch_pool_->Assign(out.sketch, sk);
        out.related = std::move(related);
        if (seq) {
          pseq_sketch_.RestoreBack(std::move(out));
        } else {
          auto& ladder = pgeo_sketch_.ladder();
          if (ladder.size() <= static_cast<size_t>(c.ladder_level)) {
            ladder.resize(static_cast<size_t>(c.ladder_level) + 1);
          }
          ladder[static_cast<size_t>(c.ladder_level)] = std::move(out);
        }
      } else {
        SketchCand out;
        out.num_windows = c.num_windows;
        out.start_frame = c.start_frame;
        out.end_frame = c.end_frame;
        out.start_time = c.start_time;
        out.end_time = c.end_time;
        out.sketch.mins = c.mins;
        out.related = std::move(related);
        if (seq) {
          seq_sketch_.RestoreBack(std::move(out));
        } else {
          auto& ladder = geo_sketch_.ladder();
          if (ladder.size() <= static_cast<size_t>(c.ladder_level)) {
            ladder.resize(static_cast<size_t>(c.ladder_level) + 1);
          }
          ladder[static_cast<size_t>(c.ladder_level)] = std::move(out);
        }
      }
    }
    ++restored;
  }

  // Metrics republish from here: the fresh process's obs counters cover
  // post-restore activity only, while stats_ carry the full-run totals the
  // equivalence tests compare.
  published_.windows = stats_.windows;
  published_.degraded_windows = stats_.degraded_windows;
  published_.bitsig_builds = stats_.bitsig_builds;
  published_.bitsig_ors = stats_.bitsig_ors;
  published_.sketch_combines = stats_.sketch_combines;
  published_.sketch_compares = stats_.sketch_compares;
  published_.candidates_pruned = stats_.candidates_pruned;
  published_.matches = static_cast<int64_t>(matches_.size());
  published_.cand_count = restored;
  last_cand_count_ = restored;
  return ValidateState();
}

}  // namespace vcd::core
