#include "core/detector.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "util/logging.h"

namespace vcd::core {

CopyDetector::CopyDetector(const DetectorConfig& config,
                           features::FrameFingerprinter fp,
                           sketch::MinHashFamily family)
    : config_(config),
      fingerprinter_(std::make_unique<features::FrameFingerprinter>(std::move(fp))),
      family_(std::move(family)),
      sketcher_(&family_) {}

Result<std::unique_ptr<CopyDetector>> CopyDetector::Create(const DetectorConfig& config) {
  VCD_RETURN_IF_ERROR(config.Validate());
  auto fp = features::FrameFingerprinter::Create(config.fingerprint);
  if (!fp.ok()) return fp.status();
  auto family = sketch::MinHashFamily::Create(config.K, config.hash_seed);
  if (!family.ok()) return family.status();
  auto det = std::unique_ptr<CopyDetector>(new CopyDetector(
      config, std::move(fp).value(), std::move(family).value()));
  auto assembler = stream::BasicWindowAssembler::Create(config.window_seconds);
  if (!assembler.ok()) return assembler.status();
  det->assembler_.emplace(std::move(assembler).value());
  return det;
}

Status CopyDetector::AddQuery(int id, const std::vector<vcd::video::DcFrame>& key_frames,
                              double duration_seconds) {
  if (key_frames.empty()) return Status::InvalidArgument("query has no key frames");
  if (duration_seconds <= 0) {
    const double span =
        key_frames.back().timestamp - key_frames.front().timestamp;
    const double spacing = key_frames.size() > 1
                               ? span / static_cast<double>(key_frames.size() - 1)
                               : config_.window_seconds;
    duration_seconds = span + spacing;
  }
  return AddQueryCells(id, fingerprinter_->FingerprintSequence(key_frames),
                       duration_seconds);
}

Status CopyDetector::AddQueryCells(int id, std::vector<features::CellId> ids,
                                   double duration_seconds) {
  if (ids.empty()) return Status::InvalidArgument("query has no frames");
  return AddQuerySketch(id, sketcher_.FromSequence(ids),
                        static_cast<int>(ids.size()), duration_seconds);
}

Status CopyDetector::AddQuerySketch(int id, sketch::Sketch sk, int length_frames,
                                    double duration_seconds) {
  if (sk.K() != config_.K) {
    return Status::InvalidArgument("sketch K does not match detector config");
  }
  if (length_frames < 1) return Status::InvalidArgument("query has no frames");
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("query duration must be positive");
  }
  for (const QueryRec& q : queries_) {
    if (q.info.id == id && q.active) {
      return Status::AlreadyExists("query id " + std::to_string(id));
    }
  }
  QueryRec rec;
  rec.info.id = id;
  rec.info.length_frames = length_frames;
  rec.duration_seconds = duration_seconds;
  rec.sketch = std::move(sk);
  rec.max_windows = std::max(
      1, static_cast<int>(std::ceil(config_.lambda * duration_seconds /
                                    config_.window_seconds)));
  if (config_.use_index && index_.has_value()) {
    VCD_RETURN_IF_ERROR(index_->Insert(rec.sketch, rec.info));
  } else {
    index_dirty_ = true;
  }
  global_max_windows_ = std::max(global_max_windows_, rec.max_windows);
  queries_.push_back(std::move(rec));
  return Status::OK();
}

std::vector<std::tuple<int, int, double, sketch::Sketch>>
CopyDetector::ExportQueries() const {
  std::vector<std::tuple<int, int, double, sketch::Sketch>> out;
  for (const QueryRec& q : queries_) {
    if (!q.active) continue;
    out.emplace_back(q.info.id, q.info.length_frames, q.duration_seconds, q.sketch);
  }
  return out;
}

Status CopyDetector::RemoveQuery(int id) {
  for (QueryRec& q : queries_) {
    if (q.info.id == id && q.active) {
      q.active = false;
      if (config_.use_index && index_.has_value()) {
        VCD_RETURN_IF_ERROR(index_->Remove(id));
      }
      global_max_windows_ = 1;
      for (const QueryRec& r : queries_) {
        if (r.active) global_max_windows_ = std::max(global_max_windows_, r.max_windows);
      }
      return Status::OK();
    }
  }
  return Status::NotFound("query id " + std::to_string(id));
}

Status CopyDetector::RebuildIndex() {
  index_.reset();
  index_dirty_ = false;
  if (!config_.use_index) return Status::OK();
  std::vector<sketch::Sketch> sketches;
  std::vector<index::QueryInfo> infos;
  for (const QueryRec& q : queries_) {
    if (!q.active) continue;
    sketches.push_back(q.sketch);
    infos.push_back(q.info);
  }
  if (sketches.empty()) return Status::OK();
  auto idx = index::HashQueryIndex::Build(sketches, infos);
  if (!idx.ok()) return idx.status();
  index_.emplace(std::move(idx).value());
  return Status::OK();
}

Status CopyDetector::ProcessKeyFrame(const vcd::video::DcFrame& frame) {
  return ProcessFingerprint(frame.frame_index, frame.timestamp,
                            fingerprinter_->Fingerprint(frame));
}

Status CopyDetector::ProcessFingerprint(int64_t frame_index, double timestamp,
                                        features::CellId id) {
  if (index_dirty_) VCD_RETURN_IF_ERROR(RebuildIndex());
  ++stats_.key_frames;
  stream::BasicWindow done;
  if (assembler_->Add(frame_index, timestamp, id, &done)) {
    ProcessWindow(done);
  }
  return Status::OK();
}

Status CopyDetector::Finish() {
  if (index_dirty_) VCD_RETURN_IF_ERROR(RebuildIndex());
  stream::BasicWindow done;
  if (assembler_->Flush(&done)) ProcessWindow(done);
  return Status::OK();
}

void CopyDetector::ResetStream() {
  assembler_.emplace(
      stream::BasicWindowAssembler::Create(config_.window_seconds).value());
  seq_bit_.Clear();
  seq_sketch_.Clear();
  geo_bit_.Clear();
  geo_sketch_.Clear();
  matches_.clear();
  stats_ = DetectorStats{};
  for (QueryRec& q : queries_) q.suppress_until = -1.0;
}

void CopyDetector::EmitMatch(int q, int64_t start_frame, int64_t end_frame,
                             double start_time, double end_time, double sim) {
  QueryRec& rec = queries_[static_cast<size_t>(q)];
  // Candidates containing the copy can stay above threshold until they
  // expire at λL, so the default mute interval covers that whole tail.
  const double cooldown = config_.report_cooldown_seconds < 0
                              ? config_.lambda * rec.duration_seconds
                              : config_.report_cooldown_seconds;
  if (cooldown > 0 && end_time < rec.suppress_until) return;
  rec.suppress_until = end_time + cooldown;
  Match m;
  m.query_id = rec.info.id;
  m.start_frame = start_frame;
  m.end_frame = end_frame;
  m.start_time = start_time;
  m.end_time = end_time;
  m.similarity = sim;
  matches_.push_back(m);
}

CopyDetector::BitCand CopyDetector::MakeBitCand(const stream::BasicWindow& window,
                                                const sketch::Sketch& wsk) {
  BitCand c;
  c.num_windows = 1;
  c.start_frame = window.start_frame;
  c.end_frame = window.end_frame;
  c.start_time = window.start_time;
  c.end_time = window.end_time;
  if (config_.use_index) {
    if (!index_.has_value()) return c;
    std::vector<index::RelatedQuery> rl =
        index_->Probe(wsk, config_.delta, config_.enable_pruning);
    stats_.bitsig_builds += static_cast<int64_t>(rl.size());
    c.sigs.reserve(rl.size());
    for (index::RelatedQuery& rq : rl) {
      // Map query id back to its ordinal.
      for (size_t q = 0; q < queries_.size(); ++q) {
        if (queries_[q].active && queries_[q].info.id == rq.info.id) {
          c.sigs.push_back(BitCand::Sig{static_cast<int>(q), std::move(rq.bitsig)});
          break;
        }
      }
    }
    std::sort(c.sigs.begin(), c.sigs.end(),
              [](const BitCand::Sig& a, const BitCand::Sig& b) { return a.q < b.q; });
  } else {
    for (size_t q = 0; q < queries_.size(); ++q) {
      if (!queries_[q].active) continue;
      sketch::BitSignature sig =
          sketch::BitSignature::FromSketches(wsk, queries_[q].sketch);
      ++stats_.bitsig_builds;
      if (config_.enable_pruning && !sig.SatisfiesLemma2(config_.delta)) {
        ++stats_.candidates_pruned;
        continue;
      }
      c.sigs.push_back(BitCand::Sig{static_cast<int>(q), std::move(sig)});
    }
  }
  return c;
}

CopyDetector::SketchCand CopyDetector::MakeSketchCand(const stream::BasicWindow& window,
                                                      const sketch::Sketch& wsk) {
  SketchCand c;
  c.num_windows = 1;
  c.start_frame = window.start_frame;
  c.end_frame = window.end_frame;
  c.start_time = window.start_time;
  c.end_time = window.end_time;
  c.sketch = wsk;
  if (config_.use_index && index_.has_value()) {
    std::vector<index::QueryInfo> rel = index_->ProbeRelated(wsk);
    c.related.reserve(rel.size());
    for (const index::QueryInfo& info : rel) {
      for (size_t q = 0; q < queries_.size(); ++q) {
        if (queries_[q].active && queries_[q].info.id == info.id) {
          c.related.push_back(static_cast<int>(q));
          break;
        }
      }
    }
    std::sort(c.related.begin(), c.related.end());
  }
  return c;
}

void CopyDetector::MergeBit(BitCand& older, const BitCand& newer) {
  // Union-merge the signature lists (both sorted by ordinal). A query
  // present on one side only keeps that side's bits: the missing side
  // contributes the all-">" signature, which ORs to nothing (§V-A).
  std::vector<BitCand::Sig> merged;
  merged.reserve(older.sigs.size() + newer.sigs.size());
  size_t i = 0, j = 0;
  while (i < older.sigs.size() || j < newer.sigs.size()) {
    BitCand::Sig out;
    if (j >= newer.sigs.size() ||
        (i < older.sigs.size() && older.sigs[i].q < newer.sigs[j].q)) {
      out = std::move(older.sigs[i++]);
    } else if (i >= older.sigs.size() || newer.sigs[j].q < older.sigs[i].q) {
      out = newer.sigs[j++];
    } else {
      out = std::move(older.sigs[i++]);
      out.sig.OrWith(newer.sigs[j++].sig);
      ++stats_.bitsig_ors;
    }
    if (config_.enable_pruning && !out.sig.SatisfiesLemma2(config_.delta)) {
      ++stats_.candidates_pruned;
      continue;
    }
    merged.push_back(std::move(out));
  }
  older.sigs = std::move(merged);
  older.num_windows += newer.num_windows;
  older.end_frame = newer.end_frame;
  older.end_time = newer.end_time;
}

void CopyDetector::MergeSketch(SketchCand& older, const SketchCand& newer) {
  sketch::Sketcher::Combine(&older.sketch, newer.sketch);
  ++stats_.sketch_combines;
  if (config_.use_index) {
    std::vector<int> merged;
    merged.reserve(older.related.size() + newer.related.size());
    std::set_union(older.related.begin(), older.related.end(), newer.related.begin(),
                   newer.related.end(), std::back_inserter(merged));
    older.related = std::move(merged);
  }
  older.num_windows += newer.num_windows;
  older.end_frame = newer.end_frame;
  older.end_time = newer.end_time;
}

bool CopyDetector::TestBitCand(BitCand& c) {
  size_t out = 0;
  for (size_t i = 0; i < c.sigs.size(); ++i) {
    BitCand::Sig& s = c.sigs[i];
    const QueryRec& q = queries_[static_cast<size_t>(s.q)];
    if (!q.active) continue;                       // unsubscribed: drop
    if (c.num_windows > q.max_windows) continue;   // per-query λL expiry
    if (config_.enable_pruning && !s.sig.SatisfiesLemma2(config_.delta)) {
      ++stats_.candidates_pruned;
      continue;
    }
    const double sim = s.sig.Similarity();
    if (sim >= config_.delta) {
      EmitMatch(s.q, c.start_frame, c.end_frame, c.start_time, c.end_time, sim);
    }
    if (out != i) c.sigs[out] = std::move(s);
    ++out;
  }
  c.sigs.resize(out);
  return !c.sigs.empty();
}

bool CopyDetector::TestSketchCand(SketchCand& c) {
  auto test_one = [&](int q_ord) {
    const QueryRec& q = queries_[static_cast<size_t>(q_ord)];
    if (!q.active) return;
    if (c.num_windows > q.max_windows) return;
    ++stats_.sketch_compares;
    const double sim = sketch::Sketcher::Similarity(c.sketch, q.sketch);
    if (sim >= config_.delta) {
      EmitMatch(q_ord, c.start_frame, c.end_frame, c.start_time, c.end_time, sim);
    }
  };
  if (config_.use_index) {
    for (int q : c.related) test_one(q);
  } else {
    for (size_t q = 0; q < queries_.size(); ++q) test_one(static_cast<int>(q));
  }
  return true;
}

void CopyDetector::RecordWindowStats() {
  int64_t sig_count = 0;
  int64_t cand_count = 0;
  const bool bit = config_.representation == Representation::kBit;
  const bool seq = config_.order == CombinationOrder::kSequential;
  if (bit && seq) {
    for (const BitCand& c : seq_bit_.candidates()) {
      sig_count += static_cast<int64_t>(c.sigs.size());
      ++cand_count;
    }
  } else if (bit && !seq) {
    for (const auto& slot : geo_bit_.ladder()) {
      if (!slot.has_value()) continue;
      sig_count += static_cast<int64_t>(slot->sigs.size());
      ++cand_count;
    }
  } else if (!bit && seq) {
    for (const SketchCand& c : seq_sketch_.candidates()) {
      sig_count += config_.use_index ? static_cast<int64_t>(c.related.size())
                                     : static_cast<int64_t>(queries_.size());
      ++cand_count;
    }
  } else {
    for (const auto& slot : geo_sketch_.ladder()) {
      if (!slot.has_value()) continue;
      sig_count += config_.use_index ? static_cast<int64_t>(slot->related.size())
                                     : static_cast<int64_t>(queries_.size());
      ++cand_count;
    }
  }
  stats_.signatures_per_window.Add(static_cast<double>(sig_count));
  stats_.candidates_per_window.Add(static_cast<double>(cand_count));
}

void CopyDetector::ProcessWindow(const stream::BasicWindow& window) {
  ++stats_.windows;
  const sketch::Sketch wsk = sketcher_.FromSequence(window.ids);
  const bool bit = config_.representation == Representation::kBit;
  const bool seq = config_.order == CombinationOrder::kSequential;
  if (bit) {
    BitCand fresh = MakeBitCand(window, wsk);
    if (seq) {
      seq_bit_.Step(std::move(fresh), global_max_windows_,
                    [&](BitCand& older, const BitCand& newer) {
                      MergeBit(older, newer);
                    });
      for (BitCand& c : seq_bit_.candidates()) TestBitCand(c);
      seq_bit_.RemoveIf([](const BitCand& c) { return c.sigs.empty(); });
    } else {
      geo_bit_.Step(std::move(fresh), global_max_windows_,
                    [&](BitCand& older, const BitCand& newer) {
                      MergeBit(older, newer);
                    });
      geo_bit_.VisitSuffixes(
          global_max_windows_, [](const BitCand& c) { return c; },
          [&](BitCand& older, const BitCand& newer) { MergeBit(older, newer); },
          [&](BitCand& c) { TestBitCand(c); });
      // Blocks are kept even when all their signatures prune away: their
      // window spans still participate in suffix-length accounting.
    }
  } else {
    SketchCand fresh = MakeSketchCand(window, wsk);
    if (seq) {
      seq_sketch_.Step(std::move(fresh), global_max_windows_,
                       [&](SketchCand& older, const SketchCand& newer) {
                         MergeSketch(older, newer);
                       });
      for (SketchCand& c : seq_sketch_.candidates()) TestSketchCand(c);
    } else {
      geo_sketch_.Step(std::move(fresh), global_max_windows_,
                       [&](SketchCand& older, const SketchCand& newer) {
                         MergeSketch(older, newer);
                       });
      geo_sketch_.VisitSuffixes(
          global_max_windows_, [](const SketchCand& c) { return c; },
          [&](SketchCand& older, const SketchCand& newer) {
            MergeSketch(older, newer);
          },
          [&](SketchCand& c) { TestSketchCand(c); });
    }
  }
  RecordWindowStats();
  if (config_.validate_state) VCD_CHECK_OK(ValidateState());
}

Status CopyDetector::ValidateState() const {
  const auto check_span = [&](int num_windows) -> Status {
    if (num_windows < 1 || num_windows > global_max_windows_) {
      return Status::Internal("candidate num_windows " + std::to_string(num_windows) +
                              " outside [1, " + std::to_string(global_max_windows_) +
                              "] (λL expiry bound)");
    }
    return Status::OK();
  };
  const auto check_bit = [&](const BitCand& c) -> Status {
    VCD_RETURN_IF_ERROR(check_span(c.num_windows));
    int prev_q = -1;
    for (const BitCand::Sig& s : c.sigs) {
      if (s.q < 0 || s.q >= static_cast<int>(queries_.size())) {
        return Status::Internal("signature for out-of-range query ordinal " +
                                std::to_string(s.q));
      }
      if (s.q <= prev_q) {
        return Status::Internal("signature list not strictly sorted by ordinal");
      }
      prev_q = s.q;
      if (s.sig.K() != config_.K) {
        return Status::Internal("bit signature K does not match config");
      }
      VCD_RETURN_IF_ERROR(s.sig.Validate());
    }
    return Status::OK();
  };
  const auto check_sketch = [&](const SketchCand& c) -> Status {
    VCD_RETURN_IF_ERROR(check_span(c.num_windows));
    if (c.sketch.K() != config_.K) {
      return Status::Internal("candidate sketch K does not match config");
    }
    int prev_q = -1;
    for (int q : c.related) {
      if (q < 0 || q >= static_cast<int>(queries_.size())) {
        return Status::Internal("related list has out-of-range query ordinal " +
                                std::to_string(q));
      }
      if (q <= prev_q) {
        return Status::Internal("related list not strictly sorted");
      }
      prev_q = q;
    }
    return Status::OK();
  };

  for (const BitCand& c : seq_bit_.candidates()) VCD_RETURN_IF_ERROR(check_bit(c));
  for (const auto& slot : geo_bit_.ladder()) {
    if (slot.has_value()) VCD_RETURN_IF_ERROR(check_bit(*slot));
  }
  for (const SketchCand& c : seq_sketch_.candidates()) {
    VCD_RETURN_IF_ERROR(check_sketch(c));
  }
  for (const auto& slot : geo_sketch_.ladder()) {
    if (slot.has_value()) VCD_RETURN_IF_ERROR(check_sketch(*slot));
  }
  if (index_.has_value()) VCD_RETURN_IF_ERROR(index_->Validate());
  return Status::OK();
}

}  // namespace vcd::core
