#pragma once

#include <memory>
#include <vector>

#include "features/fingerprint.h"
#include "util/status.h"
#include "video/partial_decoder.h"
#include "video/shot_detector.h"

/// \file alignment.h
/// Post-detection edit forensics: once a copy is detected, reconstruct *how*
/// the original was re-edited — which query segment each stream segment came
/// from — the paper's motivating use case ("authors of the videos would like
/// to know how their work have been edited and used by others").
///
/// Both sides are segmented into shots in the compressed domain; each stream
/// shot is matched to the query shot with the highest cell-set Jaccard.
/// Reordering then shows up as a non-monotone query-time sequence.

namespace vcd::core {

/// One stream shot aligned to its source query shot.
struct AlignedSegment {
  double stream_begin = 0.0;  ///< seconds within the analyzed stream segment
  double stream_end = 0.0;
  double query_begin = 0.0;   ///< seconds within the query
  double query_end = 0.0;
  double similarity = 0.0;    ///< cell-set Jaccard of the two shots
  bool matched = false;       ///< false: no query shot reached the threshold
};

/// Aligner configuration.
struct AlignerOptions {
  features::FingerprintOptions fingerprint;
  vcd::video::ShotDetectorOptions shots;
  /// Minimum shot-to-shot Jaccard to accept an alignment.
  double min_similarity = 0.25;
};

/// \brief Shot-level aligner between a matched stream segment and a query.
class MatchAligner {
 public:
  /// Creates an aligner; validates options.
  static Result<MatchAligner> Create(const AlignerOptions& opts = {});

  /// Aligns the key frames of a matched stream segment against the query's
  /// key frames. Returns one entry per detected stream shot, in stream
  /// order; `matched == false` entries are stream shots with no plausible
  /// source in the query (e.g. spliced-in foreign material).
  Result<std::vector<AlignedSegment>> Align(
      const std::vector<vcd::video::DcFrame>& stream_segment,
      const std::vector<vcd::video::DcFrame>& query_frames) const;

  /// True when the aligned query times are non-monotone — the detected copy
  /// was temporally reordered.
  static bool IsReordered(const std::vector<AlignedSegment>& segments);

 private:
  explicit MatchAligner(const AlignerOptions& opts) : opts_(opts) {}

  AlignerOptions opts_;
};

}  // namespace vcd::core
