#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sketch/minhash.h"
#include "util/status.h"

/// \file query_store.h
/// Persistence for subscribed query databases.
///
/// Query sketches are min-hashed offline (paper §V-C); a monitoring service
/// computes them once and ships them to every monitor node. The store keeps
/// the hash-family parameters (K, seed) alongside the sketches because
/// sketches are only comparable under the *same* family.
///
/// Binary layout (big-endian):
///   magic 'VCDQ' | version u8 | K u32 | hash_seed u64 | count u32 |
///   per query: id i32 | length_frames i32 | duration_ms u32 | K × u64 mins

namespace vcd::core {

/// One persisted query.
struct StoredQuery {
  int id = 0;
  int length_frames = 0;
  double duration_seconds = 0.0;
  sketch::Sketch sketch;  // NOLINT(vcd-pooled-hotpath): per-query, cold
};

/// A persisted query database.
struct QueryDb {
  int k = 0;
  uint64_t hash_seed = 0;
  std::vector<StoredQuery> queries;
};

/// Serializes \p db. Fails if any sketch's K differs from db.k.
Result<std::vector<uint8_t>> SerializeQueries(const QueryDb& db);

/// Parses a serialized query database.
Result<QueryDb> DeserializeQueries(const uint8_t* data, size_t size);

/// Writes \p db to \p path.
Status SaveQueriesFile(const QueryDb& db, const std::string& path);

/// Reads a query database from \p path.
Result<QueryDb> LoadQueriesFile(const std::string& path);

}  // namespace vcd::core
