#include "util/cpu.h"

#include <cstdlib>

namespace vcd::util {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

bool CpuHasPopcnt() { return __builtin_cpu_supports("popcnt"); }

bool CpuHasAvx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
}

bool CpuHasAvx512Kernels() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vpopcntdq");
}

bool CpuHasNeon() { return false; }

#elif defined(__aarch64__)

bool CpuHasPopcnt() { return false; }
bool CpuHasAvx2() { return false; }
bool CpuHasAvx512Kernels() { return false; }
// Advanced SIMD is architecturally mandatory on AArch64.
bool CpuHasNeon() { return true; }

#else

bool CpuHasPopcnt() { return false; }
bool CpuHasAvx2() { return false; }
bool CpuHasAvx512Kernels() { return false; }
bool CpuHasNeon() { return false; }

#endif

std::optional<std::string> GetEnv(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

}  // namespace vcd::util
