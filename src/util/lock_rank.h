#pragma once

/// \file lock_rank.h
/// The process-wide lock hierarchy (DESIGN.md §14).
///
/// Every `vcd::Mutex` in library code names one of these ranks at
/// construction (enforced by tools/lint.sh rule `vcd-lock-rank`). The rule
/// is strict descent: a thread may acquire a mutex only while every mutex it
/// already holds has a *strictly higher* rank. Equal ranks never nest —
/// peers of the same rank (per-shard queues, per-executor registries) are
/// only ever taken sequentially, and banning equal-rank nesting is what
/// makes the ordering a total order instead of a per-pair convention.
///
/// Outermost (acquired first) to innermost (acquired last):
///
///   kExecutorControl > kShard > kQueue > kMonitor > kQos > kHealth
///                    > kMetricsRegistry > kLeaf
///
/// Two enforcement layers consume these ranks:
///   - Static: `VCD_ACQUIRED_BEFORE`/`VCD_ACQUIRED_AFTER` annotations on the
///     declarations, checked by Clang's `-Wthread-safety-beta` (a build
///     break under `VCD_WERROR`/`VCD_LINT`); the negative-compile ctest
///     `lint.lock_order_negative_compile` pins that the analysis fires.
///   - Runtime: under `VCD_DEADLOCK_CHECK` (CMake; ON in Debug and
///     sanitizer builds) `Mutex::Lock`/`TryLock` maintain a per-thread
///     held-lock stack and `VCD_CHECK`-fail on any rank inversion or
///     self-recursive acquisition — the GCC/production backstop for
///     orderings the Clang analysis cannot see across objects.

namespace vcd {

/// Named rank of a mutex in the global lock order. Higher numeric value =
/// acquired earlier (outer); a lock may only be acquired while all held
/// locks have strictly greater rank.
enum class LockRank : int {
  /// Innermost leaves: internally-synchronized utilities that never call
  /// out while holding their lock (faultfx::Injector).
  kLeaf = 10,
  /// obs::MetricsRegistry registration/collection. Below every pipeline
  /// lock: detector construction registers instruments while the monitor
  /// or executor control mutex is held.
  kMetricsRegistry = 20,
  /// Reserved for the per-stream health machine (DESIGN.md §12). Today its
  /// state is confined to the owning shard's worker thread and needs no
  /// mutex; the rank pins where one would sit if that ever changes.
  kHealth = 30,
  /// Per-shard QoS shed gate (stream priority map + weighted-round-robin
  /// shed counters). Taken briefly on the frame submission path while the
  /// governor has the shard in Shedding, and by the control plane when a
  /// stream registers its priority; never held across a queue push.
  kQos = 35,
  /// core::StreamMonitor's portfolio/stream-table mutex.
  kMonitor = 40,
  /// parallel::BoundedMpscQueue submission-queue mutexes. Taken while the
  /// executor control mutex (command fan-out) or the watchdog mutex
  /// (stall snapshots) is held, never the other way around.
  kQueue = 50,
  /// Shard-level control state: the executor's watchdog stop/wakeup mutex,
  /// which is held across per-shard queue-depth snapshots.
  kShard = 60,
  /// The executor control plane (portfolio, merged log, orphans). The
  /// outermost lock in the process: control-plane calls fan commands out
  /// into every shard queue while holding it.
  kExecutorControl = 70,
};

/// Human-readable rank name ("kQueue", ...) for checker failure reports.
inline const char* LockRankName(LockRank r) {
  switch (r) {
    case LockRank::kLeaf:
      return "kLeaf";
    case LockRank::kMetricsRegistry:
      return "kMetricsRegistry";
    case LockRank::kHealth:
      return "kHealth";
    case LockRank::kQos:
      return "kQos";
    case LockRank::kMonitor:
      return "kMonitor";
    case LockRank::kQueue:
      return "kQueue";
    case LockRank::kShard:
      return "kShard";
    case LockRank::kExecutorControl:
      return "kExecutorControl";
  }
  return "<invalid rank>";
}

}  // namespace vcd
