#pragma once

#include <chrono>
#include <cstdint>

/// \file stopwatch.h
/// Wall-clock timing for experiment drivers.

namespace vcd {

/// \brief A simple monotonic stopwatch.
///
/// Used by the benchmark harness to time end-to-end stream processing (the
/// paper's "CPU time" metric, measured from the first to the last frame).
class Stopwatch {
 public:
  /// Creates a running stopwatch.
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vcd
