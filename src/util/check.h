#pragma once

#include <sstream>

/// \file check.h
/// Invariant-checking macros with formatted failure messages.
///
/// `VCD_CHECK(cond)` / `VCD_CHECK(cond, msg << streamed)` aborts with the
/// failing expression, an optional streamed message and the source location
/// in **all** build types — use it for invariants whose violation means the
/// process must not continue (corrupt index state, broken lock discipline).
/// `VCD_DCHECK` compiles away under NDEBUG — use it on hot paths.
///
/// The comparison forms (`VCD_CHECK_EQ(a, b)`, …) additionally print both
/// operand values, so a failure report carries the data needed to debug it:
///
/// ```
/// CHECK failed: rows_[r].size() == m (799 vs 800) — HQ row truncated
/// ```
///
/// `VCD_CHECK_OK(status_expr)` is the Status-flavored form: it fails with
/// the status's ToString(). All macros evaluate their operands exactly once.

namespace vcd::internal {

/// Logs \p msg at error level with \p file:\p line and aborts.
[[noreturn]] void CheckFail(const char* file, int line, const std::string& msg);

}  // namespace vcd::internal

/// Hard invariant check; aborts with a message on violation (all builds).
/// Usage: `VCD_CHECK(cond)` or `VCD_CHECK(cond, "context " << value)`.
#define VCD_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream _vcd_oss;                                        \
      _vcd_oss << "CHECK failed: " #cond;                                 \
      __VA_OPT__(_vcd_oss << " — " << __VA_ARGS__;)                       \
      ::vcd::internal::CheckFail(__FILE__, __LINE__, _vcd_oss.str());     \
    }                                                                     \
  } while (0)

/// Checks that a `Status`-returning expression is OK; aborts with the
/// status text otherwise.
#define VCD_CHECK_OK(expr, ...)                                           \
  do {                                                                    \
    const auto& _vcd_st = (expr);                                         \
    if (!_vcd_st.ok()) {                                                  \
      std::ostringstream _vcd_oss;                                        \
      _vcd_oss << "CHECK failed: " #expr " — " << _vcd_st.ToString();     \
      __VA_OPT__(_vcd_oss << " — " << __VA_ARGS__;)                       \
      ::vcd::internal::CheckFail(__FILE__, __LINE__, _vcd_oss.str());     \
    }                                                                     \
  } while (0)

/// Shared body of the binary comparison checks; prints both values.
#define VCD_CHECK_OP(op, a, b, ...)                                       \
  do {                                                                    \
    const auto& _vcd_a = (a);                                             \
    const auto& _vcd_b = (b);                                             \
    if (!(_vcd_a op _vcd_b)) {                                            \
      std::ostringstream _vcd_oss;                                        \
      _vcd_oss << "CHECK failed: " #a " " #op " " #b " (" << _vcd_a       \
               << " vs " << _vcd_b << ")";                                \
      __VA_OPT__(_vcd_oss << " — " << __VA_ARGS__;)                       \
      ::vcd::internal::CheckFail(__FILE__, __LINE__, _vcd_oss.str());     \
    }                                                                     \
  } while (0)

#define VCD_CHECK_EQ(a, b, ...) VCD_CHECK_OP(==, a, b, __VA_ARGS__)
#define VCD_CHECK_NE(a, b, ...) VCD_CHECK_OP(!=, a, b, __VA_ARGS__)
#define VCD_CHECK_LT(a, b, ...) VCD_CHECK_OP(<, a, b, __VA_ARGS__)
#define VCD_CHECK_LE(a, b, ...) VCD_CHECK_OP(<=, a, b, __VA_ARGS__)
#define VCD_CHECK_GT(a, b, ...) VCD_CHECK_OP(>, a, b, __VA_ARGS__)
#define VCD_CHECK_GE(a, b, ...) VCD_CHECK_OP(>=, a, b, __VA_ARGS__)

#ifndef NDEBUG
#define VCD_DCHECK(cond, ...) VCD_CHECK(cond, __VA_ARGS__)
#define VCD_DCHECK_OK(expr, ...) VCD_CHECK_OK(expr, __VA_ARGS__)
#define VCD_DCHECK_EQ(a, b, ...) VCD_CHECK_EQ(a, b, __VA_ARGS__)
#define VCD_DCHECK_NE(a, b, ...) VCD_CHECK_NE(a, b, __VA_ARGS__)
#define VCD_DCHECK_LT(a, b, ...) VCD_CHECK_LT(a, b, __VA_ARGS__)
#define VCD_DCHECK_LE(a, b, ...) VCD_CHECK_LE(a, b, __VA_ARGS__)
#define VCD_DCHECK_GT(a, b, ...) VCD_CHECK_GT(a, b, __VA_ARGS__)
#define VCD_DCHECK_GE(a, b, ...) VCD_CHECK_GE(a, b, __VA_ARGS__)
#else
#define VCD_DCHECK(cond, ...) \
  do {                        \
  } while (0)
#define VCD_DCHECK_OK(expr, ...) \
  do {                           \
  } while (0)
#define VCD_DCHECK_EQ(a, b, ...) \
  do {                           \
  } while (0)
#define VCD_DCHECK_NE(a, b, ...) \
  do {                           \
  } while (0)
#define VCD_DCHECK_LT(a, b, ...) \
  do {                           \
  } while (0)
#define VCD_DCHECK_LE(a, b, ...) \
  do {                           \
  } while (0)
#define VCD_DCHECK_GT(a, b, ...) \
  do {                           \
  } while (0)
#define VCD_DCHECK_GE(a, b, ...) \
  do {                           \
  } while (0)
#endif
