#pragma once

#include <string>
#include <vector>

/// \file table_printer.h
/// Fixed-width table rendering for the benchmark harness, so every bench
/// binary prints rows in the same layout as the paper's tables/figures.

namespace vcd {

/// \brief Collects rows of string cells and prints them as an aligned table.
class TablePrinter {
 public:
  /// Creates a table with the given column \p headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the cell count should match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the whole table (header, rule, rows) to a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

  /// Formats a double with \p precision decimals.
  static std::string Fmt(double v, int precision = 3);
  /// Formats an integer.
  static std::string Fmt(int64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vcd
