#pragma once

#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// Error-handling primitives for the vcdstream public API.
///
/// Following the conventions of storage-engine C++ (RocksDB-style), fallible
/// operations in the public API return a `vcd::Status`, or a `vcd::Result<T>`
/// when they also produce a value. Exceptions are not thrown across the API
/// boundary.

namespace vcd {

/// Status codes for fallible operations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,       ///< malformed bit stream or sketch payload
  kAlreadyExists,
  kFailedPrecondition,
  kUnavailable,      ///< transiently unreachable (e.g. a failed-over shard)
  kInternal,
};

/// \brief The outcome of a fallible operation: a code plus a human-readable
/// message. `Status::OK()` is the success value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// Returns the success status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with \p msg.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns a NotFound status with \p msg.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an OutOfRange status with \p msg.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a Corruption status with \p msg.
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  /// Returns an AlreadyExists status with \p msg.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns a FailedPrecondition status with \p msg.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Returns an Unavailable status with \p msg — a transient condition the
  /// caller may retry (e.g. a shard the watchdog has failed over).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Returns an Internal status with \p msg.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The message (empty for OK).
  const std::string& message() const { return msg_; }

  /// Renders "<CODE>: <message>" for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Either a value of type T or an error Status.
///
/// `Result<T>` is the return type of fallible factories. Check `ok()` before
/// dereferencing; accessing the value of an errored result aborts in debug
/// builds via the underlying std::variant discipline.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from an error status.
  Result(Status status) : v_(std::move(status)) {}  // NOLINT

  /// True iff this holds a value.
  bool ok() const { return std::holds_alternative<T>(v_); }
  /// The error status; OK() if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }
  /// The contained value. Requires ok().
  T& value() & { return std::get<T>(v_); }
  /// \copydoc value
  const T& value() const& { return std::get<T>(v_); }
  /// Moves the contained value out. Requires ok().
  T&& value() && { return std::get<T>(std::move(v_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace vcd

/// Propagates a non-OK status to the caller.
#define VCD_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::vcd::Status _st = (expr);                      \
    if (!_st.ok()) return _st;                       \
  } while (0)
