#include "util/status.h"

namespace vcd {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace vcd
