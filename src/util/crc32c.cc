#include "util/crc32c.h"

#include <array>

namespace vcd::util {
namespace {

// 8 slice tables, generated once at first use. Table 0 is the classic
// reflected CRC-32C byte table; table t extends a byte t positions deeper,
// letting the main loop fold 8 input bytes per iteration.
struct Tables {
  uint32_t t[8][256];
};

const Tables& GetTables() {
  static const Tables tables = [] {
    Tables tb{};
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      tb.t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = tb.t[0][i];
      for (int s = 1; s < 8; ++s) {
        crc = tb.t[0][crc & 0xFF] ^ (crc >> 8);
        tb.t[s][i] = crc;
      }
    }
    return tb;
  }();
  return tables;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte alignment keeps the sliced loop's 8-byte
  // loads aligned (not required for correctness, but free to do).
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][(lo >> 24) & 0xFF] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace vcd::util
