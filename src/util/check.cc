#include "util/check.h"

#include <cstdlib>

#include "util/logging.h"

namespace vcd::internal {

void CheckFail(const char* file, int line, const std::string& msg) {
  LogMessage(LogLevel::kError, file, line, msg);
  std::abort();
}

}  // namespace vcd::internal
