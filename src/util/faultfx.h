#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file faultfx.h
/// Deterministic fault injection for the ingestion path.
///
/// A small registry of named *injection sites* is compiled into the decoder,
/// the shard workers and the submission queues. Each site asks the global
/// `Injector` whether the current hit should "fire"; when it does, the site
/// simulates a failure (a corrupt frame header, a decode error, a full
/// queue, a stalled worker, a skewed clock). Tests arm sites with a `Plan`
/// and then assert the pipeline survives: no crash, no sanitizer report,
/// unaffected streams byte-identical to a no-fault run.
///
/// ### Determinism
/// The fire decision for a hit is a pure SplitMix64-style hash of
/// `(plan.seed, key, per-(site,key) hit ordinal)` — no wall clock, no global
/// RNG state shared across sites. Two runs that present the same hit
/// sequence per key make identical decisions, which is what lets the
/// fault-matrix test pin exact outcomes. The `key` is whatever stable
/// identity the site has at hand (stream id, shard id, or 0), so faults can
/// be targeted at one stream while its neighbours stay clean even when
/// shard threads interleave.
///
/// ### Release builds
/// Unless the tree is configured with `-DVCD_FAULTFX=ON` (which defines
/// `VCD_FAULTFX_ENABLED`), `faultfx::ShouldFire(...)` is an inline constant
/// `false`: every call site folds away and release binaries carry no
/// injection overhead. `faultfx::kEnabled` lets tests `GTEST_SKIP()` when
/// the sites are compiled out.

namespace vcd::faultfx {

/// Registered injection sites (one per simulated failure mode).
enum class Site {
  kBitstreamCorruption = 0,  ///< PartialDecoder: frame header reads garbage
  kDecodeError,              ///< entropy decode fails mid-frame
  kQueueOverflow,            ///< shard submission queue pretends to be full
  kShardStall,               ///< shard worker stops draining for a while
  kClockSkew,                ///< frame timestamps are perturbed
  kCkptWriteError,           ///< AtomicFileWriter: write(2) fails outright
  kCkptShortWrite,           ///< AtomicFileWriter: write(2) lands only half
  kCkptRenameError,          ///< AtomicFileWriter: commit rename fails
  kCkptCrcCorrupt,           ///< snapshot reader: payload bytes perturbed
};
inline constexpr int kNumSites = 9;

/// Human-readable site name (for logs and test output).
const char* SiteName(Site site);

#ifdef VCD_FAULTFX_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// \brief How an armed site decides to fire.
struct Plan {
  uint64_t seed = 0;        ///< decision-hash seed (reproducibility anchor)
  double probability = 1.0; ///< chance an eligible hit fires, in [0, 1]
  int64_t skip_first = 0;   ///< hits per key that are never eligible
  int64_t max_fires = -1;   ///< total fire cap across keys; -1 = unbounded
  double magnitude = 0.0;   ///< site-specific: stall ms, skew seconds, ...
  uint64_t key_filter = 0;  ///< only hits with this key fire; 0 = any key
};

/// \brief Process-wide injection-site registry.
///
/// Internally synchronized (a leaf mutex taken only inside this class);
/// safe to call from shard workers, producers and the watchdog
/// concurrently. Hit/fire counters keep counting even for disarmed sites,
/// so tests can assert a site was actually reached.
class Injector {
 public:
  /// The process-wide instance.
  static Injector& Instance();

  /// Arms \p site with \p plan (replacing any previous plan) and resets its
  /// counters.
  void Arm(Site site, const Plan& plan) VCD_EXCLUDES(mu_);

  /// Disarms \p site; subsequent hits never fire (but are still counted).
  void Disarm(Site site) VCD_EXCLUDES(mu_);

  /// Disarms every site and resets all counters.
  void Reset() VCD_EXCLUDES(mu_);

  /// Records a hit of \p site for \p key and returns true when the armed
  /// plan says this hit fires. When it fires and \p magnitude is non-null,
  /// the plan's magnitude is written there.
  bool ShouldFire(Site site, uint64_t key = 0, double* magnitude = nullptr)
      VCD_EXCLUDES(mu_);

  /// Total hits recorded at \p site since it was last armed/reset.
  int64_t hits(Site site) const VCD_EXCLUDES(mu_);

  /// Total fires at \p site since it was last armed/reset.
  int64_t fires(Site site) const VCD_EXCLUDES(mu_);

 private:
  struct SiteState {
    bool armed = false;
    Plan plan;
    int64_t hits = 0;
    int64_t fires = 0;
    std::map<uint64_t, int64_t> hits_by_key;
  };

  Injector() = default;

  // kLeaf: ShouldFire is called from decode, submit and worker paths with
  // arbitrary pipeline locks held; this class never calls out while holding
  // its lock (DESIGN.md §14).
  mutable Mutex mu_{LockRank::kLeaf, "faultfx_injector"};
  SiteState sites_[kNumSites] VCD_GUARDED_BY(mu_);
};

#ifdef VCD_FAULTFX_ENABLED
/// Injection-site entry point: records a hit, returns the fire decision.
inline bool ShouldFire(Site site, uint64_t key = 0, double* magnitude = nullptr) {
  return Injector::Instance().ShouldFire(site, key, magnitude);
}
#else
/// Compiled-out entry point: a constant, the call site folds away.
inline bool ShouldFire(Site /*site*/, uint64_t /*key*/ = 0,
                       double* /*magnitude*/ = nullptr) {
  return false;
}
#endif

/// \brief RAII arming of one site for a test scope; disarms on destruction.
class ScopedFault {
 public:
  ScopedFault(Site site, const Plan& plan) : site_(site) {
    Injector::Instance().Arm(site_, plan);
  }
  ~ScopedFault() { Injector::Instance().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  Site site_;
};

}  // namespace vcd::faultfx
