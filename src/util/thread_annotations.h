#pragma once

/// \file thread_annotations.h
/// Portable wrappers for Clang's Thread Safety Analysis attributes.
///
/// The macros expand to `__attribute__((...))` under Clang (where
/// `-Wthread-safety` turns locking-discipline violations into compile
/// diagnostics, and `-Werror=thread-safety` into build breaks — see the
/// `VCD_WERROR`/`VCD_LINT` CMake options) and to nothing elsewhere, so
/// annotated code builds unchanged with GCC/MSVC.
///
/// Usage pattern (see util/mutex.h for the annotated mutex itself):
/// ```
/// vcd::Mutex mu_;
/// std::vector<int> items_ VCD_GUARDED_BY(mu_);
/// void AppendLocked(int v) VCD_REQUIRES(mu_);   // caller must hold mu_
/// int Count() const VCD_EXCLUDES(mu_);          // takes mu_ itself
/// ```

#if defined(__clang__) && (!defined(SWIG))
#define VCD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VCD_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a type as a lockable capability (classes like Mutex).
#define VCD_CAPABILITY(x) VCD_THREAD_ANNOTATION(capability(x))

/// Declares a scoped-lock type (acquires in ctor, releases in dtor).
#define VCD_SCOPED_CAPABILITY VCD_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define VCD_GUARDED_BY(x) VCD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define VCD_PT_GUARDED_BY(x) VCD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define VCD_REQUIRES(...) \
  VCD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held *shared* on entry.
#define VCD_REQUIRES_SHARED(...) \
  VCD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capabilities (held on exit, not on entry).
#define VCD_ACQUIRE(...) \
  VCD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capabilities (held on entry, not on exit).
#define VCD_RELEASE(...) \
  VCD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capabilities iff it returns the given value.
#define VCD_TRY_ACQUIRE(...) \
  VCD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capabilities held (it takes them).
#define VCD_EXCLUDES(...) VCD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define VCD_ASSERT_CAPABILITY(x) \
  VCD_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define VCD_RETURN_CAPABILITY(x) VCD_THREAD_ANNOTATION(lock_returned(x))

/// Documents lock-ordering: this capability is acquired after the listed.
#define VCD_ACQUIRED_AFTER(...) VCD_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Documents lock-ordering: this capability is acquired before the listed.
#define VCD_ACQUIRED_BEFORE(...) VCD_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Opts a function out of the analysis (use sparingly; say why).
#define VCD_NO_THREAD_SAFETY_ANALYSIS \
  VCD_THREAD_ANNOTATION(no_thread_safety_analysis)
