#include "util/logging.h"

namespace vcd {
namespace internal {

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", kNames[static_cast<int>(level)], base, line,
               msg.c_str());
}

}  // namespace internal
}  // namespace vcd
