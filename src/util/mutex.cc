#include "util/mutex.h"

#ifdef VCD_DEADLOCK_CHECK_ENABLED

#include <sstream>

#include "util/check.h"

/// \file mutex.cc
/// Runtime half of the deadlock-freedom pass (DESIGN.md §14): a per-thread
/// held-lock stack consulted on every `vcd::Mutex` acquisition.
///
/// Compiled only under VCD_DEADLOCK_CHECK (CMake; ON in Debug and sanitizer
/// builds). The stack is a small fixed-size thread_local array — no
/// allocation, no global state, no locks of its own, so the checker cannot
/// itself deadlock and is safe inside sanitizer runtimes. Depth is bounded
/// by the hierarchy: strict rank descent means a thread can hold at most one
/// lock per distinct rank, and kMaxHeld leaves generous headroom over the
/// seven ranks of util/lock_rank.h.

namespace vcd::deadlock {

namespace {

constexpr int kMaxHeld = 16;

thread_local const Mutex* t_held[kMaxHeld];
thread_local int t_held_count = 0;

/// Renders the calling thread's held stack, outermost first, e.g.
/// `"executor.control"(kExecutorControl) -> "mpsc_queue"(kQueue)`.
std::string HeldStackString() {
  if (t_held_count == 0) return "<empty>";
  std::ostringstream oss;
  for (int i = 0; i < t_held_count; ++i) {
    if (i > 0) oss << " -> ";
    oss << '"' << t_held[i]->name() << "\"(" << LockRankName(t_held[i]->rank())
        << ')';
  }
  return oss.str();
}

}  // namespace

void CheckAcquire(const Mutex& mu) {
  for (int i = 0; i < t_held_count; ++i) {
    const Mutex* held = t_held[i];
    VCD_CHECK(held != &mu, "deadlock: self-recursive acquisition of lock \""
                               << mu.name() << "\" (" << LockRankName(mu.rank())
                               << "); held stack: " << HeldStackString());
    VCD_CHECK(static_cast<int>(mu.rank()) < static_cast<int>(held->rank()),
              "deadlock: lock-order inversion acquiring \""
                  << mu.name() << "\" (" << LockRankName(mu.rank())
                  << ") while holding \"" << held->name() << "\" ("
                  << LockRankName(held->rank())
                  << "); ranks must strictly descend — held stack: "
                  << HeldStackString());
  }
}

void RecordAcquired(const Mutex& mu) {
  VCD_CHECK(t_held_count < kMaxHeld,
            "deadlock checker: held-lock stack overflow acquiring \""
                << mu.name() << "\"; held stack: " << HeldStackString());
  t_held[t_held_count++] = &mu;
}

void RecordReleased(const Mutex& mu) {
  // Search from the top: releases are LIFO in practice (MutexLock), but
  // hand-rolled Lock/Unlock pairs may interleave, which is legal.
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i] != &mu) continue;
    for (int j = i; j + 1 < t_held_count; ++j) t_held[j] = t_held[j + 1];
    --t_held_count;
    return;
  }
  VCD_CHECK(false, "deadlock checker: lock \""
                       << mu.name() << "\" (" << LockRankName(mu.rank())
                       << ") released by a thread that does not hold it "
                          "(double unlock, or unlocked off-thread); held "
                          "stack: "
                       << HeldStackString());
}

void AssertHeld(const Mutex& mu) {
  VCD_CHECK(Holds(mu), "deadlock checker: CondVar wait on lock \""
                           << mu.name() << "\" (" << LockRankName(mu.rank())
                           << ") which the calling thread does not hold; "
                              "held stack: "
                           << HeldStackString());
}

int HeldCount() { return t_held_count; }

bool Holds(const Mutex& mu) {
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i] == &mu) return true;
  }
  return false;
}

}  // namespace vcd::deadlock

#endif  // VCD_DEADLOCK_CHECK_ENABLED
