#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

/// \file mutex.h
/// Annotated, rank-checked mutex primitives.
///
/// `vcd::Mutex` wraps `std::mutex` and carries the `capability` attribute, so
/// members declared `VCD_GUARDED_BY(mu_)` are machine-checked: with
/// `-Werror=thread-safety` (CMake `VCD_WERROR`/`VCD_LINT`, Clang only) an
/// access without the lock held is a build break, not a latent race.
/// `MutexLock` is the scoped guard the analysis understands; `CondVar` pairs
/// with `Mutex` for wait/notify (the analysis has no native condvar model,
/// so `Wait` is annotated as requiring the mutex and re-establishes it).
///
/// Every mutex additionally names a `LockRank` (util/lock_rank.h) placing it
/// in the process-wide lock hierarchy of DESIGN.md §14. Under the
/// `VCD_DEADLOCK_CHECK` CMake option (ON in Debug and sanitizer builds)
/// `Lock()`/`TryLock()` maintain a per-thread held-lock stack and
/// `VCD_CHECK`-fail on rank inversion, equal-rank nesting, self-recursive
/// acquisition, or release from a thread that does not hold the lock —
/// printing both lock names and the held stack. When the option is OFF the
/// bookkeeping compiles out entirely: `sizeof(Mutex) == sizeof(std::mutex)`
/// and `Lock()`/`Unlock()` are the bare `std::mutex` calls (pinned by the
/// `BM_VcdMutexLockUnlock` microbench against the raw-`std::mutex` baseline).
///
/// Raw `std::mutex`/`std::lock_guard`/`std::condition_variable` are banned
/// outside this file (tools/lint.sh rule `vcd-annotated-mutex`), and every
/// `vcd::Mutex` declared in library code must name its rank (rule
/// `vcd-lock-rank`).

namespace vcd {

class CondVar;
class Mutex;

namespace deadlock {

#ifdef VCD_DEADLOCK_CHECK_ENABLED
inline constexpr bool kEnabled = true;

/// VCD_CHECK-fails when acquiring \p mu would invert the lock order or
/// self-recurse; call before blocking on the underlying mutex so a bug
/// reports instead of deadlocking.
void CheckAcquire(const Mutex& mu);

/// Pushes \p mu onto the calling thread's held-lock stack.
void RecordAcquired(const Mutex& mu);

/// Removes \p mu from the calling thread's held-lock stack; VCD_CHECK-fails
/// when this thread does not hold it (double unlock, or a lock released on
/// a different thread than acquired it).
void RecordReleased(const Mutex& mu);

/// VCD_CHECK-fails unless the calling thread holds \p mu (CondVar guard).
void AssertHeld(const Mutex& mu);

/// Number of vcd::Mutex locks the calling thread currently holds.
int HeldCount();

/// True when the calling thread holds \p mu.
bool Holds(const Mutex& mu);
#else
inline constexpr bool kEnabled = false;

inline void CheckAcquire(const Mutex&) {}
inline void RecordAcquired(const Mutex&) {}
inline void RecordReleased(const Mutex&) {}
inline void AssertHeld(const Mutex&) {}
inline int HeldCount() { return 0; }
inline bool Holds(const Mutex&) { return false; }
#endif

}  // namespace deadlock

/// \brief Annotated standard mutex (a Clang TSA "capability") with a named
/// position in the lock hierarchy.
class VCD_CAPABILITY("mutex") Mutex {
 public:
  /// A mutex at \p rank, identified as \p name in checker failure reports.
  /// \p name must outlive the mutex (string literals in practice).
#ifdef VCD_DEADLOCK_CHECK_ENABLED
  constexpr explicit Mutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
#else
  constexpr explicit Mutex(LockRank /*rank*/, const char* /*name*/) {}
#endif

  /// Unranked leaf mutex, for tests and scratch code; library declarations
  /// name a rank (tools/lint.sh rule `vcd-lock-rank`).
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the lock is held. Under VCD_DEADLOCK_CHECK, first fails
  /// fast on rank inversion or self-recursion instead of deadlocking.
  void Lock() VCD_ACQUIRE() {
    deadlock::CheckAcquire(*this);
    mu_.lock();
    deadlock::RecordAcquired(*this);
  }

  /// Releases the lock. Under VCD_DEADLOCK_CHECK, fails when the calling
  /// thread does not hold it.
  void Unlock() VCD_RELEASE() {
    deadlock::RecordReleased(*this);
    mu_.unlock();
  }

  /// Acquires the lock iff it returns true. An out-of-order or
  /// self-recursive TryLock is still a checker failure: `std::mutex`
  /// try_lock is undefined when the caller already holds the lock, and a
  /// trylock taken against the hierarchy hides an ordering bug that the
  /// blocking path would hit eventually.
  bool TryLock() VCD_TRY_ACQUIRE(true) {
    deadlock::CheckAcquire(*this);
    if (!mu_.try_lock()) return false;
    deadlock::RecordAcquired(*this);
    return true;
  }

  /// This mutex's rank in the hierarchy (kLeaf when the checker is off).
#ifdef VCD_DEADLOCK_CHECK_ENABLED
  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }
#else
  LockRank rank() const { return LockRank::kLeaf; }
  const char* name() const { return "<unchecked>"; }
#endif

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef VCD_DEADLOCK_CHECK_ENABLED
  const LockRank rank_ = LockRank::kLeaf;
  const char* const name_ = "<unnamed>";
#endif
};

/// \brief RAII guard over a `Mutex` (a Clang TSA "scoped capability").
class VCD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VCD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() VCD_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with `Mutex`.
///
/// `Wait` must be called with the mutex held (annotated `VCD_REQUIRES`); it
/// atomically releases the mutex while blocked and re-acquires it before
/// returning, exactly like `std::condition_variable::wait`.
///
/// The held-lock stack of VCD_DEADLOCK_CHECK deliberately keeps the mutex
/// recorded across the wait: the waiter re-holds it before `Wait`/`WaitFor`
/// returns, the adopt/release dance on the underlying `std::unique_lock` is
/// invisible to callers, and a blocked thread acquires nothing — so its
/// stack entry stays accurate at every point the checker can observe
/// (pinned by CondVarTest.WaitForKeepsHeldLockStack).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Releases \p mu, blocks until notified, re-acquires \p mu.
  void Wait(Mutex& mu) VCD_REQUIRES(mu) VCD_NO_THREAD_SAFETY_ANALYSIS {
    deadlock::AssertHeld(mu);
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// Waits until `pred()` holds. \p pred runs with \p mu held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) VCD_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Releases \p mu and blocks until notified or \p timeout elapses, then
  /// re-acquires \p mu. Returns false on timeout (the periodic-wakeup
  /// primitive of the shard watchdog).
  bool WaitFor(Mutex& mu, std::chrono::milliseconds timeout)
      VCD_REQUIRES(mu) VCD_NO_THREAD_SAFETY_ANALYSIS {
    deadlock::AssertHeld(mu);
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();  // the caller still owns the mutex
    return st == std::cv_status::no_timeout;
  }

  /// Wakes one waiter.
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes all waiters.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vcd
