#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

/// \file mutex.h
/// Annotated mutex primitives for Clang Thread Safety Analysis.
///
/// `vcd::Mutex` wraps `std::mutex` and carries the `capability` attribute, so
/// members declared `VCD_GUARDED_BY(mu_)` are machine-checked: with
/// `-Werror=thread-safety` (CMake `VCD_WERROR`/`VCD_LINT`, Clang only) an
/// access without the lock held is a build break, not a latent race.
/// `MutexLock` is the scoped guard the analysis understands; `CondVar` pairs
/// with `Mutex` for wait/notify (the analysis has no native condvar model,
/// so `Wait` is annotated as requiring the mutex and re-establishes it).
///
/// All library code with locked state uses these instead of raw
/// `std::mutex`/`std::lock_guard` (enforced by tools/lint.sh).

namespace vcd {

class CondVar;

/// \brief Annotated standard mutex (a Clang TSA "capability").
class VCD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the lock is held.
  void Lock() VCD_ACQUIRE() { mu_.lock(); }

  /// Releases the lock.
  void Unlock() VCD_RELEASE() { mu_.unlock(); }

  /// Acquires the lock iff it returns true.
  bool TryLock() VCD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII guard over a `Mutex` (a Clang TSA "scoped capability").
class VCD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VCD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() VCD_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with `Mutex`.
///
/// `Wait` must be called with the mutex held (annotated `VCD_REQUIRES`); it
/// atomically releases the mutex while blocked and re-acquires it before
/// returning, exactly like `std::condition_variable::wait`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Releases \p mu, blocks until notified, re-acquires \p mu.
  void Wait(Mutex& mu) VCD_REQUIRES(mu) VCD_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// Waits until `pred()` holds. \p pred runs with \p mu held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) VCD_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Releases \p mu and blocks until notified or \p timeout elapses, then
  /// re-acquires \p mu. Returns false on timeout (the periodic-wakeup
  /// primitive of the shard watchdog).
  bool WaitFor(Mutex& mu, std::chrono::milliseconds timeout)
      VCD_REQUIRES(mu) VCD_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();  // the caller still owns the mutex
    return st == std::cv_status::no_timeout;
  }

  /// Wakes one waiter.
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes all waiters.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vcd
