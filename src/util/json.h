#pragma once

#include <string>

/// \file json.h
/// Minimal JSON string escaping shared by every JSON producer in the tree
/// (BenchJsonWriter, obs::MetricsRegistry::ToJson). One escaper, one set of
/// rules:
///   - `"` and `\` are backslash-escaped,
///   - `\n` / `\t` / `\r` use their short forms,
///   - other control bytes < 0x20 become `\u00XX`,
///   - everything else — including UTF-8 multi-byte sequences — passes
///     through untouched.

namespace vcd::util {

/// Escapes \p s for use inside a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

/// Returns \p s as a quoted JSON string literal, escaped.
std::string JsonQuote(const std::string& s);

}  // namespace vcd::util
