#include "util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/faultfx.h"

namespace vcd::util {
namespace {

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " failed for " + path + ": " +
         std::strerror(errno);
}

// Directory part of \p path ("." when the path has no slash) — the rename
// target's directory must be fsynced for the new directory entry to be
// durable.
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return Status::Internal(Errno("open(dir)", dir));
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) return Status::Internal(Errno("fsync(dir)", dir));
  return Status::OK();
}

}  // namespace

Result<AtomicFileWriter> AtomicFileWriter::Open(const std::string& final_path,
                                                uint64_t fault_key) {
  const std::string tmp =
      final_path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(Errno("open", tmp));
  }
  return AtomicFileWriter(final_path, tmp, fd, fault_key);
}

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&& other) noexcept
    : final_path_(std::move(other.final_path_)),
      tmp_path_(std::move(other.tmp_path_)),
      fd_(other.fd_),
      fault_key_(other.fault_key_) {
  other.fd_ = -1;
}

AtomicFileWriter& AtomicFileWriter::operator=(
    AtomicFileWriter&& other) noexcept {
  if (this != &other) {
    Abort();
    final_path_ = std::move(other.final_path_);
    tmp_path_ = std::move(other.tmp_path_);
    fd_ = other.fd_;
    fault_key_ = other.fault_key_;
    other.fd_ = -1;
  }
  return *this;
}

AtomicFileWriter::~AtomicFileWriter() { Abort(); }

Status AtomicFileWriter::Append(const void* data, size_t n) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("AtomicFileWriter already finished");
  }
  if (faultfx::ShouldFire(faultfx::Site::kCkptWriteError, fault_key_)) {
    Abort();
    return Status::Internal("injected write error for " + tmp_path_);
  }
  // A short write leaves the prefix on disk — exactly the torn-file shape a
  // power cut produces. The writer reports it (so the checkpoint is retried
  // later) and the temp file never reaches the final name.
  if (n > 0 &&
      faultfx::ShouldFire(faultfx::Site::kCkptShortWrite, fault_key_)) {
    const size_t half = n / 2;
    (void)!::write(fd_, data, half);
    Abort();
    return Status::Internal("injected short write for " + tmp_path_);
  }
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd_, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::Internal(Errno("write", tmp_path_));
      Abort();
      return st;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("AtomicFileWriter already finished");
  }
  if (::fsync(fd_) != 0) {
    const Status st = Status::Internal(Errno("fsync", tmp_path_));
    Abort();
    return st;
  }
  ::close(fd_);
  fd_ = -1;
  if (faultfx::ShouldFire(faultfx::Site::kCkptRenameError, fault_key_)) {
    ::unlink(tmp_path_.c_str());
    return Status::Internal("injected rename error for " + final_path_);
  }
  if (::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    const Status st = Status::Internal(Errno("rename", final_path_));
    ::unlink(tmp_path_.c_str());
    return st;
  }
  return FsyncDir(DirOf(final_path_));
}

void AtomicFileWriter::Abort() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  ::unlink(tmp_path_.c_str());
}

Status ReadFileToString(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(Errno("open", path));
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::Internal(Errno("read", path));
      ::close(fd);
      return st;
    }
    if (r == 0) break;
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace vcd::util
