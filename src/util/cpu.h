#pragma once

#include <optional>
#include <string>

/// \file cpu.h
/// Runtime CPU feature detection and environment lookup for the SIMD kernel
/// dispatcher (DESIGN.md §15).
///
/// The queries wrap `__builtin_cpu_supports` on x86-64 GCC/Clang and answer
/// false everywhere else, so callers can probe unconditionally. Each ISA
/// predicate requires *every* subfeature the corresponding kernel TU is
/// compiled with — e.g. `CpuHasAvx512Kernels` demands F/BW/VL/DQ plus
/// VPOPCNTDQ, not bare AVX-512F — so "supported" always means "this binary's
/// kernel for that level can execute".

namespace vcd::util {

/// True if the CPU executes the POPCNT instruction.
bool CpuHasPopcnt();

/// True if the CPU executes AVX2 (and POPCNT, which the AVX2 kernel TU also
/// assumes).
bool CpuHasAvx2();

/// True if the CPU executes the AVX-512 subset the kernel TU is built with:
/// F + BW + VL + DQ + VPOPCNTDQ.
bool CpuHasAvx512Kernels();

/// True when compiled for AArch64 with NEON (Advanced SIMD is baseline
/// there, so this is a compile-time fact).
bool CpuHasNeon();

/// Returns the value of environment variable \p name, or nullopt when it is
/// unset. An empty string counts as set.
std::optional<std::string> GetEnv(const char* name);

}  // namespace vcd::util
