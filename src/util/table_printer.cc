#include "util/table_printer.h"

#include <cstdio>
#include <sstream>

namespace vcd {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace vcd
