#pragma once

#include <cstdint>

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (hash seeding, synthetic video
/// content, workload doctoring) draw from these generators so that every
/// experiment is exactly reproducible from a single seed.

namespace vcd {

/// SplitMix64 — used to expand a single user seed into generator state and to
/// derive independent sub-seeds for hash functions.
class SplitMix64 {
 public:
  /// Creates a generator seeded with \p seed.
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — fast, high-quality general-purpose generator used for all
/// synthetic-content and workload randomness.
class Rng {
 public:
  /// Creates a generator whose state is expanded from \p seed via SplitMix64.
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  /// Returns the next 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). \p bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    // Lemire's multiply-and-shift rejection-free bounded generation is
    // overkill here; a simple threshold rejection keeps the distribution
    // exactly uniform.
    uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Returns a uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Returns a uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Returns a sample from N(0, 1) via the polar Box–Muller method.
  double Gaussian();

  /// Returns true with probability \p p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace vcd
