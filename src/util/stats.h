#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

/// \file stats.h
/// Streaming statistics accumulators used by the evaluation and memory
/// accounting in the benchmark harness.

namespace vcd {

/// \brief Welford-style running mean/variance/min/max accumulator.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator into this one, as if all of \p other's
  /// observations had been Add()ed here (parallel combination of Welford
  /// state, Chan et al.). Used to aggregate per-stream stats across shards.
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const int64_t n = n_ + other.n_;
    const double delta = other.mean_ - mean_;
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / static_cast<double>(n);
    n_ = n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Number of observations.
  int64_t count() const { return n_; }
  /// Arithmetic mean (0 if empty).
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sum of observations.
  double sum() const { return sum_; }
  /// Sample variance (0 if fewer than two observations).
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  /// Sample standard deviation.
  double stddev() const { return std::sqrt(variance()); }
  /// Minimum observation (+inf if empty).
  double min() const { return min_; }
  /// Maximum observation (-inf if empty).
  double max() const { return max_; }

  /// \brief The full Welford state, exposed for checkpoint serialization.
  ///
  /// `FromRaw(s.ToRaw())` reproduces the accumulator bit-for-bit, so stats
  /// restored from a snapshot continue exactly where the interrupted run
  /// left off (pinned by the restore-equivalence tests).
  struct Raw {
    int64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  /// Snapshot of the internal state.
  Raw ToRaw() const { return Raw{n_, mean_, m2_, sum_, min_, max_}; }

  /// Rebuilds an accumulator from a Raw snapshot.
  static RunningStats FromRaw(const Raw& r) {
    RunningStats s;
    s.n_ = r.n;
    s.mean_ = r.mean;
    s.m2_ = r.m2;
    s.sum_ = r.sum;
    s.min_ = r.min;
    s.max_ = r.max;
    return s;
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Precision/recall pair, the paper's effectiveness metrics (§VI).
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;

  /// F1 harmonic mean; 0 when both components are 0.
  double F1() const {
    double s = precision + recall;
    return s > 0 ? 2.0 * precision * recall / s : 0.0;
  }
};

}  // namespace vcd
