#pragma once

#include <cstddef>
#include <cstdint>

/// \file crc32c.h
/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over byte ranges.
///
/// Used by the snapshot format (docs/FORMATS.md) to detect torn or
/// bit-rotted sections. A portable slice-by-8 table implementation — the
/// checkpoint path hashes a few megabytes at most, far off the hot path, so
/// no SSE4.2 dispatch is warranted (and src/sketch/kernels/ is the only
/// directory allowed intrinsics by the `vcd-simd-guard` lint rule).

namespace vcd::util {

/// Extends CRC-32C \p crc (state from a previous call, or 0 to start) over
/// \p n bytes at \p data. The returned value is the finalized checksum and
/// may also be passed back in to continue hashing.
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

/// One-shot convenience: CRC-32C of \p n bytes at \p data.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32c(0, data, n);
}

}  // namespace vcd::util
