#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

/// \file aligned_buffer.h
/// A growable `uint64_t` buffer whose storage is always 64-byte (cache-line)
/// aligned.
///
/// `std::vector` gives no alignment guarantee beyond `alignof(uint64_t)`,
/// which is not enough for the SoA signature slabs: the SIMD kernels
/// (DESIGN.md §15) rely on every 8-lane word row starting on its own cache
/// line, and `SignaturePool::Validate` asserts the invariant. Growth is
/// amortized (capacity doubling) and newly exposed words are zero-filled,
/// matching the `std::vector<uint64_t>::resize(n, 0)` semantics the pools
/// were written against. The buffer never shrinks its capacity.

namespace vcd::util {

/// \brief 64-byte-aligned growable array of `uint64_t`.
class AlignedWordBuf {
 public:
  /// Alignment of `data()`, in bytes. One x86 cache line.
  static constexpr size_t kAlignBytes = 64;

  AlignedWordBuf() = default;
  AlignedWordBuf(const AlignedWordBuf&) = delete;
  AlignedWordBuf& operator=(const AlignedWordBuf&) = delete;

  AlignedWordBuf(AlignedWordBuf&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        cap_(std::exchange(other.cap_, 0)) {}

  AlignedWordBuf& operator=(AlignedWordBuf&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      cap_ = std::exchange(other.cap_, 0);
    }
    return *this;
  }

  ~AlignedWordBuf() { Release(); }

  /// Number of valid words.
  size_t size() const { return size_; }
  /// Words allocated (size() ≤ capacity()).
  size_t capacity() const { return cap_; }
  /// 64-byte-aligned storage (nullptr when capacity() == 0).
  uint64_t* data() { return data_; }
  /// \copydoc data
  const uint64_t* data() const { return data_; }

  /// Grows (or logically shrinks) to \p n words. Newly exposed words are
  /// zero. Growth may move the storage; capacity never shrinks.
  void resize(size_t n) {
    if (n > cap_) Grow(n);
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(uint64_t));
    size_ = n;
  }

 private:
  void Grow(size_t n) {
    size_t cap = cap_ == 0 ? 64 : cap_ * 2;
    if (cap < n) cap = n;
    auto* grown = static_cast<uint64_t*>(
        ::operator new(cap * sizeof(uint64_t), std::align_val_t{kAlignBytes}));
    if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(uint64_t));
    Release();
    data_ = grown;
    cap_ = cap;
  }

  void Release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlignBytes});
      data_ = nullptr;
    }
    cap_ = 0;
  }

  uint64_t* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
};

}  // namespace vcd::util
