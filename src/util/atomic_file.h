#pragma once

#include <string>

#include "util/status.h"

/// \file atomic_file.h
/// Crash-safe whole-file replacement: write to a temp file in the target
/// directory, fsync, rename over the destination, fsync the directory.
///
/// A reader that follows the MANIFEST protocol (docs/FORMATS.md) therefore
/// never observes a half-written file: either the rename happened and the
/// new content is durable, or the old content (or nothing) is still there.
/// Under `-DVCD_FAULTFX=ON` the writer carries three injection sites —
/// `kCkptWriteError`, `kCkptShortWrite`, `kCkptRenameError` — so the
/// checkpoint tests can prove torn and failed writes are contained.

namespace vcd::util {

/// \brief Writes a file atomically: all-or-nothing from a reader's view.
///
/// Usage: Open → Append* → Commit. If Commit is never reached (error or
/// crash), the destination is untouched; the destructor unlinks the temp
/// file. Not thread-safe; one writer per destination path at a time.
class AtomicFileWriter {
 public:
  /// Starts an atomic write of \p final_path. The temp file is created in
  /// the same directory (required for rename(2) atomicity). \p fault_key
  /// tags the faultfx hits so tests can target one destination.
  static Result<AtomicFileWriter> Open(const std::string& final_path,
                                       uint64_t fault_key = 0);

  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  ~AtomicFileWriter();

  /// Appends \p n bytes to the temp file.
  Status Append(const void* data, size_t n);

  /// \copydoc Append
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }

  /// Fsyncs the temp file, renames it over the destination, and fsyncs the
  /// containing directory. After an OK return the new content is durable
  /// under the final path. On error the destination is untouched and the
  /// temp file has been removed.
  Status Commit();

  /// Abandons the write and removes the temp file. Safe to call twice;
  /// implied by the destructor when Commit was not reached.
  void Abort();

 private:
  AtomicFileWriter(std::string final_path, std::string tmp_path, int fd,
                   uint64_t fault_key)
      : final_path_(std::move(final_path)),
        tmp_path_(std::move(tmp_path)),
        fd_(fd),
        fault_key_(fault_key) {}

  std::string final_path_;
  std::string tmp_path_;
  int fd_ = -1;  ///< -1 once committed, aborted, or moved from
  uint64_t fault_key_ = 0;
};

/// Reads all of \p path into \p out. Typed errors: NotFound when the file
/// does not exist, Internal on I/O failure.
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace vcd::util
