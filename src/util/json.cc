#include "util/json.h"

#include <cstdio>

namespace vcd::util {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  out += JsonEscape(s);
  out += '"';
  return out;
}

}  // namespace vcd::util
