#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "util/check.h"

/// \file logging.h
/// Minimal leveled logging. The assertion macros (`VCD_CHECK`,
/// `VCD_DCHECK`, and the comparison/status forms) live in util/check.h,
/// re-exported here so existing includes keep working.

namespace vcd {

/// Log severity levels.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace internal {

/// Process-wide minimum level; messages below it are dropped.
LogLevel& MinLogLevel();

/// Emits one formatted log line to stderr.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

}  // namespace internal

/// Sets the process-wide minimum log level.
inline void SetMinLogLevel(LogLevel level) { internal::MinLogLevel() = level; }

}  // namespace vcd

#define VCD_LOG(level, msg)                                                         \
  do {                                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::vcd::internal::MinLogLevel())) { \
      std::ostringstream _oss;                                                      \
      _oss << msg;                                                                  \
      ::vcd::internal::LogMessage(level, __FILE__, __LINE__, _oss.str());           \
    }                                                                               \
  } while (0)

#define VCD_DEBUG(msg) VCD_LOG(::vcd::LogLevel::kDebug, msg)
#define VCD_INFO(msg) VCD_LOG(::vcd::LogLevel::kInfo, msg)
#define VCD_WARN(msg) VCD_LOG(::vcd::LogLevel::kWarn, msg)
#define VCD_ERROR(msg) VCD_LOG(::vcd::LogLevel::kError, msg)
