#include "util/faultfx.h"

namespace vcd::faultfx {

namespace {

/// SplitMix64 finalizer over the (seed, key, ordinal) triple — the pure
/// function behind every fire decision.
uint64_t DecisionHash(uint64_t seed, uint64_t key, uint64_t ordinal) {
  uint64_t z = seed ^ (key * 0x9e3779b97f4a7c15ULL) ^
               (ordinal + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* SiteName(Site site) {
  switch (site) {
    case Site::kBitstreamCorruption:
      return "bitstream-corruption";
    case Site::kDecodeError:
      return "decode-error";
    case Site::kQueueOverflow:
      return "queue-overflow";
    case Site::kShardStall:
      return "shard-stall";
    case Site::kClockSkew:
      return "clock-skew";
    case Site::kCkptWriteError:
      return "ckpt-write-error";
    case Site::kCkptShortWrite:
      return "ckpt-short-write";
    case Site::kCkptRenameError:
      return "ckpt-rename-error";
    case Site::kCkptCrcCorrupt:
      return "ckpt-crc-corrupt";
  }
  return "unknown";
}

Injector& Injector::Instance() {
  static Injector instance;
  return instance;
}

void Injector::Arm(Site site, const Plan& plan) {
  MutexLock lock(mu_);
  SiteState& s = sites_[static_cast<int>(site)];
  s = SiteState{};
  s.armed = true;
  s.plan = plan;
}

void Injector::Disarm(Site site) {
  MutexLock lock(mu_);
  sites_[static_cast<int>(site)].armed = false;
}

void Injector::Reset() {
  MutexLock lock(mu_);
  for (SiteState& s : sites_) s = SiteState{};
}

bool Injector::ShouldFire(Site site, uint64_t key, double* magnitude) {
  MutexLock lock(mu_);
  SiteState& s = sites_[static_cast<int>(site)];
  ++s.hits;
  const int64_t ordinal = s.hits_by_key[key]++;
  if (!s.armed) return false;
  if (s.plan.key_filter != 0 && key != s.plan.key_filter) return false;
  if (ordinal < s.plan.skip_first) return false;
  if (s.plan.max_fires >= 0 && s.fires >= s.plan.max_fires) return false;
  if (s.plan.probability < 1.0) {
    const uint64_t h = DecisionHash(s.plan.seed, key, static_cast<uint64_t>(ordinal));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
    if (u >= s.plan.probability) return false;
  }
  ++s.fires;
  if (magnitude != nullptr) *magnitude = s.plan.magnitude;
  return true;
}

int64_t Injector::hits(Site site) const {
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].hits;
}

int64_t Injector::fires(Site site) const {
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].fires;
}

}  // namespace vcd::faultfx
