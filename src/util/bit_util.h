#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

/// \file bit_util.h
/// Bit-level helpers and a dense bit vector used by the bit-signature
/// representation (paper §V-A).

namespace vcd {

/// Number of set bits in \p x.
inline int PopCount64(uint64_t x) { return std::popcount(x); }

/// \brief A fixed-length dense bit vector backed by 64-bit words.
///
/// The bit-vector signature of a candidate sequence against a query is 2K
/// bits (Definition 3); combining candidates is a word-wise OR and similarity
/// evaluation is a masked popcount (Lemma 1). This class provides exactly
/// those operations.
class BitVector {
 public:
  /// Creates an all-zero vector of \p nbits bits.
  explicit BitVector(size_t nbits = 0) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  /// Number of bits.
  size_t size() const { return nbits_; }
  /// Number of backing 64-bit words.
  size_t num_words() const { return words_.size(); }
  /// Read access to backing words.
  const uint64_t* words() const { return words_.data(); }
  /// Mutable access to backing words.
  uint64_t* mutable_words() { return words_.data(); }

  /// Sets bit \p i to 1.
  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  /// Clears bit \p i.
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  /// Value of bit \p i.
  bool Get(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  /// Sets all bits to zero.
  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Word-wise OR of \p other into this vector. Sizes must match.
  void OrWith(const BitVector& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// Total number of set bits.
  int CountOnes() const {
    int n = 0;
    for (uint64_t w : words_) n += PopCount64(w);
    return n;
  }

  /// Number of set bits among bits whose index is ≡ \p parity (mod 2).
  /// Used by Lemma 1: `n0` = zeros on even positions, `n1` = ones on odd
  /// positions of the 2K-bit signature.
  int CountOnesWithParity(int parity) const {
    // Even-position mask 0x5555..., odd-position mask 0xAAAA...
    const uint64_t mask = (parity == 0) ? 0x5555555555555555ULL : 0xAAAAAAAAAAAAAAAAULL;
    int n = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i] & mask;
      if (i + 1 == words_.size() && (nbits_ & 63) != 0) {
        w &= (uint64_t{1} << (nbits_ & 63)) - 1;
      }
      n += PopCount64(w);
    }
    return n;
  }

  bool operator==(const BitVector& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

 private:
  size_t nbits_;
  std::vector<uint64_t> words_;
};

}  // namespace vcd
