#include "qos/governor.h"

#include <cstring>

#include "util/logging.h"

namespace vcd::qos {

const char* QosStateName(QosState s) {
  switch (s) {
    case QosState::kNormal:
      return "normal";
    case QosState::kRecovering:
      return "recovering";
    case QosState::kDegraded:
      return "degraded";
    case QosState::kShedding:
      return "shedding";
  }
  return "unknown";
}

const char* PriorityName(Priority p) {
  switch (p) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "unknown";
}

bool ParsePriority(const char* name, Priority* out) {
  if (std::strcmp(name, "high") == 0) {
    *out = Priority::kHigh;
  } else if (std::strcmp(name, "normal") == 0) {
    *out = Priority::kNormal;
  } else if (std::strcmp(name, "low") == 0) {
    *out = Priority::kLow;
  } else {
    return false;
  }
  return true;
}

Status QosConfig::Validate() const {
  if (tick_ms < 0) return Status::InvalidArgument("qos tick_ms must be >= 0");
  if (!(recover_watermark >= 0.0 && recover_watermark <= 1.0)) {
    return Status::InvalidArgument("qos recover_watermark must be in [0, 1]");
  }
  if (!(degrade_watermark > 0.0 && degrade_watermark <= 1.0)) {
    return Status::InvalidArgument("qos degrade_watermark must be in (0, 1]");
  }
  if (!(shed_watermark > 0.0 && shed_watermark <= 1.0)) {
    return Status::InvalidArgument("qos shed_watermark must be in (0, 1]");
  }
  if (recover_watermark >= degrade_watermark) {
    return Status::InvalidArgument(
        "qos recover_watermark must be < degrade_watermark (hysteresis gap)");
  }
  if (degrade_watermark > shed_watermark) {
    return Status::InvalidArgument(
        "qos degrade_watermark must be <= shed_watermark");
  }
  if (degrade_lag_us < 0 || shed_lag_us < 0) {
    return Status::InvalidArgument("qos lag thresholds must be >= 0");
  }
  if (escalate_dwell_ticks < 1) {
    return Status::InvalidArgument("qos escalate_dwell_ticks must be >= 1");
  }
  if (recover_dwell_ticks < 1) {
    return Status::InvalidArgument("qos recover_dwell_ticks must be >= 1");
  }
  if (degrade.probe_every_n < 1) {
    return Status::InvalidArgument("qos degrade probe_every_n must be >= 1");
  }
  if (degrade.max_candidate_windows < 0) {
    return Status::InvalidArgument(
        "qos degrade max_candidate_windows must be >= 0");
  }
  return Status::OK();
}

Governor::Governor(const QosConfig& config, int num_shards)
    : config_(config) {
  VCD_CHECK(num_shards >= 0, "negative shard count");
  shards_.resize(static_cast<size_t>(num_shards));
}

bool Governor::TickShard(Machine* m, const ShardSample& s,
                         Transition* t) const {
  const double fill =
      s.queue_capacity == 0
          ? 0.0
          : static_cast<double>(s.queue_depth) /
                static_cast<double>(s.queue_capacity);
  const bool degrade_hot =
      fill >= config_.degrade_watermark ||
      (config_.degrade_lag_us > 0 && s.stream_lag_us >= config_.degrade_lag_us);
  const bool shed_hot =
      fill >= config_.shed_watermark ||
      (config_.shed_lag_us > 0 && s.stream_lag_us >= config_.shed_lag_us);
  const bool calm = fill <= config_.recover_watermark && !degrade_hot;

  ++m->dwell;
  QosState next = m->state;
  switch (m->state) {
    case QosState::kNormal:
      // Hot streaks escalate; anything else resets the streak — a single
      // cool tick restarts the dwell clock, which is the anti-flap rule.
      m->escalate_streak = degrade_hot ? m->escalate_streak + 1 : 0;
      m->recover_streak = 0;
      if (m->escalate_streak >= config_.escalate_dwell_ticks) {
        next = QosState::kDegraded;
      }
      break;
    case QosState::kRecovering:
      m->escalate_streak = degrade_hot ? m->escalate_streak + 1 : 0;
      m->recover_streak = calm ? m->recover_streak + 1 : 0;
      if (m->escalate_streak >= config_.escalate_dwell_ticks) {
        next = QosState::kDegraded;  // relapse under returning load
      } else if (m->recover_streak >= config_.recover_dwell_ticks) {
        next = QosState::kNormal;
      }
      break;
    case QosState::kDegraded:
      m->escalate_streak = shed_hot ? m->escalate_streak + 1 : 0;
      m->recover_streak = calm ? m->recover_streak + 1 : 0;
      if (m->escalate_streak >= config_.escalate_dwell_ticks) {
        next = QosState::kShedding;
      } else if (m->recover_streak >= config_.recover_dwell_ticks) {
        next = QosState::kRecovering;
      }
      break;
    case QosState::kShedding:
      // De-escalation from Shedding only needs the shed condition gone (not
      // full calm): drop back to Degraded and let its own hysteresis decide
      // whether pressure is truly over.
      m->recover_streak = shed_hot ? 0 : m->recover_streak + 1;
      m->escalate_streak = 0;
      if (m->recover_streak >= config_.recover_dwell_ticks) {
        next = QosState::kDegraded;
      }
      break;
  }

  if (next == m->state) return false;
  t->from = m->state;
  t->to = next;
  t->dwell_ticks = m->dwell;
  m->state = next;
  m->dwell = 0;
  m->escalate_streak = 0;
  m->recover_streak = 0;
  return true;
}

int Governor::Tick(const std::vector<ShardSample>& samples,
                   std::vector<Transition>* transitions) {
  int fired = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardSample sample = i < samples.size() ? samples[i] : ShardSample{};
    Transition t;
    t.shard = static_cast<int>(i);
    if (TickShard(&shards_[i], sample, &t)) {
      ++fired;
      if (transitions != nullptr) transitions->push_back(t);
    }
  }
  return fired;
}

QosState Governor::shard_state(int shard) const {
  VCD_CHECK(shard >= 0 && shard < num_shards(), "shard out of range");
  return shards_[static_cast<size_t>(shard)].state;
}

int64_t Governor::shard_dwell_ticks(int shard) const {
  VCD_CHECK(shard >= 0 && shard < num_shards(), "shard out of range");
  return shards_[static_cast<size_t>(shard)].dwell;
}

QosState Governor::global_state() const {
  QosState g = QosState::kNormal;
  for (const Machine& m : shards_) {
    if (static_cast<int>(m.state) > static_cast<int>(g)) g = m.state;
  }
  return g;
}

std::vector<GovernorShardCkpt> Governor::ExportCkpt() const {
  std::vector<GovernorShardCkpt> out;
  out.reserve(shards_.size());
  for (const Machine& m : shards_) {
    GovernorShardCkpt c;
    c.state = static_cast<int32_t>(m.state);
    c.dwell_ticks = m.dwell;
    c.escalate_streak = m.escalate_streak;
    c.recover_streak = m.recover_streak;
    out.push_back(c);
  }
  return out;
}

void Governor::RestoreCkpt(const std::vector<GovernorShardCkpt>& ckpt) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i >= ckpt.size()) {
      shards_[i] = Machine{};
      continue;
    }
    const GovernorShardCkpt& c = ckpt[i];
    Machine m;
    m.state = (c.state >= 0 && c.state <= 3) ? static_cast<QosState>(c.state)
                                             : QosState::kNormal;
    m.dwell = c.dwell_ticks < 0 ? 0 : c.dwell_ticks;
    m.escalate_streak = c.escalate_streak < 0 ? 0 : c.escalate_streak;
    m.recover_streak = c.recover_streak < 0 ? 0 : c.recover_streak;
    shards_[i] = m;
  }
}

}  // namespace vcd::qos
