#pragma once

#include <cstdint>
#include <vector>

#include "qos/qos.h"

/// \file governor.h
/// The overload governor's hysteresis state machine (DESIGN.md §17).
///
/// `Governor` is a pure, single-threaded state machine: the executor (or a
/// test) feeds it one `Tick` of per-shard pressure samples and reads back
/// per-shard states and the transitions that fired. It owns no threads, no
/// locks and no clocks — dwell is counted in ticks, so every trajectory is
/// a deterministic function of the sample sequence. The executor wraps it
/// in a governor thread (or exposes TickQos() for deterministic tests) and
/// translates its outputs into detector knob fan-out and shed gates.

namespace vcd::qos {

/// One shard's pressure sample for a governor tick.
struct ShardSample {
  size_t queue_depth = 0;     ///< current submission-queue occupancy
  size_t queue_capacity = 1;  ///< its capacity (fill = depth / capacity)
  int64_t stream_lag_us = 0;  ///< max stream lag across the shard's streams
};

/// A state change that fired during a Tick, for metrics (per-state dwell
/// histograms) and logs.
struct Transition {
  int shard = 0;
  QosState from = QosState::kNormal;
  QosState to = QosState::kNormal;
  int64_t dwell_ticks = 0;  ///< ticks spent in `from` before leaving it
};

/// \brief Per-shard hysteresis state machines + the global max-severity
/// aggregate.
class Governor {
 public:
  /// A governor over \p num_shards shards. \p config must already be
  /// validated (QosConfig::Validate).
  Governor(const QosConfig& config, int num_shards);

  /// Advances every shard machine one tick against \p samples (one per
  /// shard; missing trailing samples count as idle). Appends fired
  /// transitions to \p transitions when non-null. Returns the number of
  /// transitions fired.
  int Tick(const std::vector<ShardSample>& samples,
           std::vector<Transition>* transitions);

  /// Current state of shard \p shard.
  QosState shard_state(int shard) const;

  /// Ticks shard \p shard has spent in its current state.
  int64_t shard_dwell_ticks(int shard) const;

  /// Max-severity state across all shards.
  QosState global_state() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Exports every shard machine for a checkpoint.
  std::vector<GovernorShardCkpt> ExportCkpt() const;

  /// Restores shard machines from \p ckpt. Entries beyond num_shards are
  /// ignored; missing entries leave the shard in Normal — so a snapshot
  /// taken at a different shard count restores conservatively rather than
  /// failing.
  void RestoreCkpt(const std::vector<GovernorShardCkpt>& ckpt);

 private:
  struct Machine {
    QosState state = QosState::kNormal;
    int64_t dwell = 0;         ///< ticks in the current state
    int escalate_streak = 0;   ///< consecutive hot ticks
    int recover_streak = 0;    ///< consecutive calm ticks
  };

  /// Advances one machine; returns true (and fills *t) when it transitions.
  bool TickShard(Machine* m, const ShardSample& s, Transition* t) const;

  QosConfig config_;
  std::vector<Machine> shards_;
};

}  // namespace vcd::qos
