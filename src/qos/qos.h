#pragma once

#include <cstdint>

#include "util/status.h"

/// \file qos.h
/// Types of the adaptive overload governor (DESIGN.md §17): the per-shard
/// QoS state machine's states, per-stream priority classes, the degraded-mode
/// detector knobs, and the governor configuration with its pressure
/// watermarks and dwell-time hysteresis.
///
/// The governor exists so the system bends under sustained overload instead
/// of stalling producers or dropping frames blindly: in Degraded it trades
/// detection quality for throughput via explicit deterministic knobs; in
/// Shedding it drops frames by priority class, never starving high-priority
/// streams. All knobs default to identity — a governor that never leaves
/// Normal is byte-identical to no governor at all (pinned by test).

namespace vcd::qos {

/// Per-shard (and global) overload state. Numeric order is severity order:
/// the global state is the max across shards, and tests assert that degrade
/// knobs are active iff severity >= kDegraded.
///
///   Normal --sustained pressure--> Degraded --more pressure--> Shedding
///   Shedding --pressure eases--> Degraded --sustained calm--> Recovering
///   Recovering --sustained calm--> Normal   (relapse: --> Degraded)
enum class QosState : int {
  kNormal = 0,      ///< full-quality detection, nothing shed
  kRecovering = 1,  ///< pressure gone, dwelling before declaring Normal
  kDegraded = 2,    ///< degrade knobs active, nothing shed
  kShedding = 3,    ///< degrade knobs active + priority-aware frame sheds
};

/// Human-readable state name ("normal"/"recovering"/"degraded"/"shedding").
const char* QosStateName(QosState s);

/// Per-stream priority class, set at stream registration. Order matters:
/// lower numeric value = more important = shed less (monotone shed ordering
/// by priority is property-tested).
enum class Priority : int {
  kHigh = 0,    ///< never shed
  kNormal = 1,  ///< sheds 1 of every 2 frames while Shedding
  kLow = 2,     ///< sheds 3 of every 4 frames while Shedding
};

/// Human-readable priority name ("high"/"normal"/"low").
const char* PriorityName(Priority p);

/// Parses "high"/"normal"/"low" into \p out; false on anything else.
bool ParsePriority(const char* name, Priority* out);

/// Deterministic weighted-round-robin shed decision: whether the frame with
/// 0-based per-stream submission sequence \p seq is shed for a stream of
/// class \p p while its shard is in Shedding. The modular patterns make the
/// shed fraction monotone in priority (high 0 <= normal 1/2 <= low 3/4) and
/// guarantee every class still makes progress — even kLow admits every 4th
/// frame, so no stream is fully starved.
inline bool ShouldShed(Priority p, uint64_t seq) {
  switch (p) {
    case Priority::kHigh:
      return false;
    case Priority::kNormal:
      return (seq % 2) == 1;
    case Priority::kLow:
      return (seq % 4) != 0;
  }
  return false;
}

/// Detection-quality knobs the executor pushes into every CopyDetector when
/// a shard enters Degraded (and withdraws on recovery). Defaults are
/// identity: applying a default-constructed DegradeKnobs changes nothing.
/// Every knob is deterministic — degraded output is a pure function of the
/// input frame sequence and the knob values, never of wall-clock timing.
struct DegradeKnobs {
  /// Combine/test only every Nth basic window; the in-between windows still
  /// extend candidate state timestamps but skip the similarity sweep and
  /// are counted in DetectorStats::qos_skipped_windows. 1 = every window.
  int probe_every_n = 1;
  /// Tighter per-query cap on live candidate windows: the effective cap is
  /// min(ceil(lambda*L/w), this). The Sequential combiner expires the
  /// oldest windows past the cap, exactly like a shorter query. 0 = off.
  int max_candidate_windows = 0;
  /// Suppress the Geometric order's cumulative suffix sweep down to the
  /// newest block only (the cheapest probe that can still match recent
  /// copies). No effect on the Sequential order.
  bool disable_geometric = false;

  /// True when every knob is at its identity value.
  bool IsIdentity() const {
    return probe_every_n == 1 && max_candidate_windows == 0 &&
           !disable_geometric;
  }

  friend bool operator==(const DegradeKnobs& a, const DegradeKnobs& b) {
    return a.probe_every_n == b.probe_every_n &&
           a.max_candidate_windows == b.max_candidate_windows &&
           a.disable_geometric == b.disable_geometric;
  }
  friend bool operator!=(const DegradeKnobs& a, const DegradeKnobs& b) {
    return !(a == b);
  }
};

/// Governor configuration: pressure watermarks (fractions of shard queue
/// capacity), optional lag thresholds, and dwell-time hysteresis.
///
/// A shard's fill pressure is queue_depth / queue_capacity. Escalation
/// requires the pressure to hold above a watermark for escalate_dwell_ticks
/// consecutive ticks; de-escalation requires it to hold below for
/// recover_dwell_ticks — so a single spike or dip never flaps the state.
struct QosConfig {
  /// Master switch. Off = no governor thread, no sensing, no knobs.
  bool enabled = false;
  /// Governor tick period in milliseconds; > 0 starts a governor thread in
  /// the executor. 0 = no thread: ticks only happen via
  /// StreamExecutor::TickQos(), the deterministic mode tests drive.
  int tick_ms = 0;

  /// Fill fraction at/above which a Normal/Recovering shard escalates to
  /// Degraded (after dwell).
  double degrade_watermark = 0.5;
  /// Fill fraction at/above which a Degraded shard escalates to Shedding.
  double shed_watermark = 0.85;
  /// Fill fraction at/below which pressure counts as gone (recovery path).
  double recover_watermark = 0.25;

  /// Stream lag (newest submitted − newest processed frame timestamp, µs)
  /// at/above which a shard counts as Degraded-hot even with a shallow
  /// queue. 0 disables the lag signal.
  int64_t degrade_lag_us = 0;
  /// Lag at/above which a Degraded shard counts as Shedding-hot. 0 = off.
  int64_t shed_lag_us = 0;

  /// Consecutive hot ticks before an escalation fires.
  int escalate_dwell_ticks = 2;
  /// Consecutive calm ticks before a de-escalation fires.
  int recover_dwell_ticks = 4;

  /// Knobs applied while a shard is Degraded or Shedding.
  DegradeKnobs degrade;

  /// Validates ranges (watermark ordering, positive dwells, knob ranges).
  Status Validate() const;
};

/// Per-shard governor state carried through checkpoint/restore, so a
/// restored executor resumes mid-Degraded instead of re-learning the
/// overload from scratch (ckpt section QOS).
struct GovernorShardCkpt {
  int32_t state = 0;            ///< QosState numeric value
  int64_t dwell_ticks = 0;      ///< ticks spent in the current state
  int32_t escalate_streak = 0;  ///< consecutive hot ticks so far
  int32_t recover_streak = 0;   ///< consecutive calm ticks so far
};

}  // namespace vcd::qos
