#include "stream/basic_window.h"

namespace vcd::stream {

Result<BasicWindowAssembler> BasicWindowAssembler::Create(double window_seconds) {
  if (window_seconds <= 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  return BasicWindowAssembler(window_seconds);
}

void BasicWindowAssembler::Emit(BasicWindow* out) {
  acc_.index = next_index_++;
  *out = std::move(acc_);
  acc_ = BasicWindow{};
  open_ = false;
}

bool BasicWindowAssembler::Add(int64_t frame_index, double timestamp,
                               features::CellId id, BasicWindow* out) {
  bool emitted = false;
  if (open_ && timestamp >= window_start_time_ + window_seconds_) {
    Emit(out);
    emitted = true;
  }
  if (!open_) {
    open_ = true;
    window_start_time_ = timestamp;
    acc_.start_frame = frame_index;
    acc_.start_time = timestamp;
  }
  acc_.end_frame = frame_index;
  acc_.end_time = timestamp;
  acc_.ids.push_back(id);
  return emitted;
}

bool BasicWindowAssembler::Flush(BasicWindow* out) {
  if (!open_ || acc_.ids.empty()) return false;
  Emit(out);
  return true;
}

}  // namespace vcd::stream
