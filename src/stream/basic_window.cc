#include "stream/basic_window.h"

namespace vcd::stream {

Result<BasicWindowAssembler> BasicWindowAssembler::Create(double window_seconds) {
  if (window_seconds <= 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  return BasicWindowAssembler(window_seconds);
}

void BasicWindowAssembler::Emit(BasicWindow* out) {
  acc_.index = next_index_++;
  // Swap the id buffers instead of moving: a caller that reuses one
  // BasicWindow across calls hands its capacity back to the accumulator,
  // making the steady-state window cycle allocation-free.
  out->index = acc_.index;
  out->start_frame = acc_.start_frame;
  out->end_frame = acc_.end_frame;
  out->start_time = acc_.start_time;
  out->end_time = acc_.end_time;
  out->degraded = acc_.degraded;
  out->ids.swap(acc_.ids);
  acc_.ids.clear();
  acc_.degraded = false;
  open_ = false;
}

bool BasicWindowAssembler::AdvanceWindow(int64_t frame_index, double timestamp,
                                         BasicWindow* out) {
  bool emitted = false;
  if (open_ && timestamp >= window_start_time_ + window_seconds_) {
    Emit(out);
    emitted = true;
  }
  if (!open_) {
    open_ = true;
    window_start_time_ = timestamp;
    acc_.start_frame = frame_index;
    acc_.start_time = timestamp;
  }
  acc_.end_frame = frame_index;
  acc_.end_time = timestamp;
  return emitted;
}

bool BasicWindowAssembler::Add(int64_t frame_index, double timestamp,
                               features::CellId id, BasicWindow* out) {
  const bool emitted = AdvanceWindow(frame_index, timestamp, out);
  acc_.ids.push_back(id);
  return emitted;
}

bool BasicWindowAssembler::AddDegraded(int64_t frame_index, double timestamp,
                                       BasicWindow* out) {
  const bool emitted = AdvanceWindow(frame_index, timestamp, out);
  acc_.degraded = true;
  return emitted;
}

bool BasicWindowAssembler::Flush(BasicWindow* out) {
  if (!open_ || (acc_.ids.empty() && !acc_.degraded)) return false;
  Emit(out);
  return true;
}

}  // namespace vcd::stream
