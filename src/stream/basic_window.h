#pragma once

#include <cstdint>
#include <vector>

#include "features/grid_pyramid.h"
#include "util/status.h"

/// \file basic_window.h
/// Segmentation of the incoming key-frame signature stream into fixed-length
/// *basic windows* of w seconds (paper §IV-A) — the unit from which candidate
/// sequences of every length are assembled.

namespace vcd::stream {

/// \brief One completed basic window: the cell ids of its key frames plus
/// its position on the stream.
struct BasicWindow {
  int64_t index = 0;        ///< running window number (0-based)
  int64_t start_frame = 0;  ///< first stream frame covered
  int64_t end_frame = 0;    ///< last stream frame covered (inclusive)
  double start_time = 0.0;  ///< seconds
  double end_time = 0.0;    ///< seconds
  /// True when any frame of the window was degraded (corrupt payload,
  /// clock skew): its id set is incomplete, so the detector must not
  /// sketch or combine it (DESIGN.md §12).
  bool degraded = false;
  std::vector<features::CellId> ids;
};

/// \brief Accumulates per-key-frame signatures and emits basic windows on
/// w-second boundaries.
class BasicWindowAssembler {
 public:
  /// Creates an assembler with window length \p window_seconds (> 0).
  static Result<BasicWindowAssembler> Create(double window_seconds);

  /// Window length w in seconds.
  double window_seconds() const { return window_seconds_; }

  /// Adds one key-frame signature. When the frame's timestamp crosses the
  /// current window boundary the completed window is moved into \p out and
  /// true is returned (the new frame opens the next window).
  bool Add(int64_t frame_index, double timestamp, features::CellId id,
           BasicWindow* out);

  /// Adds one *degraded* key frame: advances the window span exactly like
  /// Add but contributes no cell id and marks the accumulating window
  /// degraded (its id set would be incomplete). Window-boundary semantics
  /// are identical to Add, so degraded and clean streams stay aligned.
  bool AddDegraded(int64_t frame_index, double timestamp, BasicWindow* out);

  /// Emits the trailing partial window, if any. Returns false when empty.
  bool Flush(BasicWindow* out);

  /// Number of windows emitted so far.
  int64_t windows_emitted() const { return next_index_; }

  /// \brief Mid-stream assembler phase, exposed for checkpoint/restore.
  ///
  /// Captures the partially accumulated window verbatim, so a restored
  /// assembler emits the exact window sequence (indices, spans, id sets)
  /// the interrupted one would have.
  struct CkptState {
    bool open = false;
    double window_start_time = 0.0;
    BasicWindow acc;
    int64_t next_index = 0;
  };

  /// Snapshot of the current phase.
  CkptState ExportCkpt() const {
    return CkptState{open_, window_start_time_, acc_, next_index_};
  }

  /// Restores a phase previously captured by ExportCkpt.
  void RestoreCkpt(CkptState state) {
    open_ = state.open;
    window_start_time_ = state.window_start_time;
    acc_ = std::move(state.acc);
    next_index_ = state.next_index;
  }

 private:
  explicit BasicWindowAssembler(double w) : window_seconds_(w) {}

  /// Moves the accumulating window into \p out and resets the accumulator.
  void Emit(BasicWindow* out);

  /// Shared boundary logic of Add/AddDegraded: emits on a w-second
  /// crossing, opens/extends the accumulating window. Returns whether a
  /// window was emitted into \p out.
  bool AdvanceWindow(int64_t frame_index, double timestamp, BasicWindow* out);

  double window_seconds_;
  bool open_ = false;
  double window_start_time_ = 0.0;
  BasicWindow acc_;
  int64_t next_index_ = 0;
};

}  // namespace vcd::stream
