#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

/// \file combiner.h
/// The two candidate-sequence combination orders of paper §IV-A (Fig. 2).
///
/// Candidates grow by absorbing each newly completed basic window.
/// *Sequential order* maintains one candidate per start window — every
/// suffix of the recent stream of length 1..⌈λL/w⌉ windows — at the cost of
/// ⌈λL/w⌉ combinations per arriving window. *Geometric order* maintains a
/// binary-counter ladder of candidates whose sizes are powers of two, so an
/// arriving window triggers at most ⌈log i⌉ merges; fewer candidate lengths
/// are materialized, which trades recall for speed exactly as the paper
/// describes.
///
/// The candidate payload type `C` must expose an `int num_windows` member;
/// merging of payloads (sketch element-wise min, or bit-signature OR) is
/// supplied by the caller.
///
/// ### Recycling
/// Both containers support an in-place protocol for payloads that hold
/// arena handles (see sketch/signature_pool.h) or want to reuse buffer
/// capacity: `Step(max_windows, init, merge, retire)` builds the fresh
/// candidate inside a recycled shell (`init(C&)` must fully overwrite it),
/// and every candidate the container drops is passed to `retire(C&)` —
/// which must release external resources such as pool handles — before its
/// shell is parked for reuse. Shells keep their vector capacities, so the
/// steady-state window cycle performs no heap allocation.

namespace vcd::stream {

/// \brief Sequential order: every suffix of recent windows is a candidate.
///
/// Candidates are kept oldest-first; window counts decrease from front to
/// back, so expiry is a pop-front loop. Storage is a flat vector with a
/// head index (compacted amortized-O(1)), never a per-node allocation.
template <typename C>
class SequentialCandidates {
 public:
  /// Number of live candidates.
  size_t size() const { return buf_.size() - head_; }
  /// True when no candidate is live.
  bool empty() const { return size() == 0; }
  /// Live candidate \p i, oldest (longest) first.
  C& at(size_t i) { return buf_[head_ + i]; }
  /// \copydoc at
  const C& at(size_t i) const { return buf_[head_ + i]; }

  /// Calls \p fn on every live candidate, oldest first.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = head_; i < buf_.size(); ++i) fn(buf_[i]);
  }
  /// \copydoc ForEach
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = head_; i < buf_.size(); ++i) fn(buf_[i]);
  }

  /// Absorbs a fresh single-window candidate: merges it into every live
  /// candidate (oldest first), appends it, and expires candidates that now
  /// exceed \p max_windows. `merge(into, fresh)` must also advance
  /// `into.num_windows`.
  template <typename MergeFn>
  void Step(C fresh, int max_windows, MergeFn&& merge) {
    Step(
        max_windows, [&](C& slot) { slot = std::move(fresh); },
        std::forward<MergeFn>(merge), [](C&) {});
  }

  /// In-place Step: `init(C&)` fills a recycled shell with the fresh
  /// single-window candidate (it must overwrite every field); `retire(C&)`
  /// is called on each candidate dropped by expiry before its shell is
  /// parked for reuse.
  template <typename InitFn, typename MergeFn, typename RetireFn>
  void Step(int max_windows, InitFn&& init, MergeFn&& merge, RetireFn&& retire) {
    C fresh = TakeShell();
    init(fresh);
    for (size_t i = head_; i < buf_.size(); ++i) merge(buf_[i], fresh);
    buf_.push_back(std::move(fresh));
    while (!empty() && buf_[head_].num_windows > max_windows) {
      retire(buf_[head_]);
      spares_.push_back(std::move(buf_[head_]));
      ++head_;
    }
    MaybeCompact();
  }

  /// Removes candidates for which \p pred returns true; \p retire is called
  /// on each removed candidate before its shell is parked.
  template <typename Pred, typename RetireFn>
  void RemoveIf(Pred&& pred, RetireFn&& retire) {
    size_t out = head_;
    for (size_t i = head_; i < buf_.size(); ++i) {
      if (pred(buf_[i])) {
        retire(buf_[i]);
        spares_.push_back(std::move(buf_[i]));
      } else {
        if (out != i) buf_[out] = std::move(buf_[i]);
        ++out;
      }
    }
    buf_.resize(out);
    MaybeCompact();
  }

  /// \copydoc RemoveIf
  template <typename Pred>
  void RemoveIf(Pred&& pred) {
    RemoveIf(std::forward<Pred>(pred), [](C&) {});
  }

  /// Drops all state (including recycled shells); \p retire sees every
  /// live candidate first.
  template <typename RetireFn>
  void Clear(RetireFn&& retire) {
    for (size_t i = head_; i < buf_.size(); ++i) retire(buf_[i]);
    buf_.clear();
    spares_.clear();
    head_ = 0;
  }

  /// \copydoc Clear
  void Clear() {
    Clear([](C&) {});
  }

  /// Appends a fully constructed candidate behind the current newest one —
  /// checkpoint restore only. Candidates must be restored oldest-first
  /// (export order) so the front-to-back num_windows ordering that expiry
  /// relies on is preserved.
  void RestoreBack(C&& c) { buf_.push_back(std::move(c)); }

 private:
  C TakeShell() {
    if (spares_.empty()) return C{};
    C shell = std::move(spares_.back());
    spares_.pop_back();
    return shell;
  }

  /// Slides the live range back to the buffer front once the dead prefix
  /// dominates — amortized O(1) moves per Step, no deallocation.
  void MaybeCompact() {
    if (head_ >= 32 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<C> buf_;     ///< live candidates are buf_[head_..)
  size_t head_ = 0;
  std::vector<C> spares_;  ///< retired shells kept for capacity reuse
};

/// \brief Geometric order: a binary-counter ladder of power-of-two sized
/// candidates; at most ⌈log i⌉ merges per arriving window.
template <typename C>
class GeometricCandidates {
 public:
  /// Absorbs a fresh single-window candidate, carrying merges up the ladder.
  /// `merge(older, newer)` merges `newer` into `older` (which precedes it on
  /// the stream) and must accumulate `num_windows`. Ladder levels whose
  /// capacity 2^level exceeds \p max_windows are dropped (expiry).
  template <typename MergeFn>
  void Step(C fresh, int max_windows, MergeFn&& merge) {
    Step(
        max_windows, [&](C& slot) { slot = std::move(fresh); },
        std::forward<MergeFn>(merge), [](C&) {});
  }

  /// In-place Step: `init(C&)` fills a recycled shell with the fresh
  /// single-window candidate; `retire(C&)` is called on every candidate the
  /// ladder drops — the absorbed (newer) side of each carry merge, and an
  /// expired carry — before its shell is parked for reuse.
  template <typename InitFn, typename MergeFn, typename RetireFn>
  void Step(int max_windows, InitFn&& init, MergeFn&& merge, RetireFn&& retire) {
    C carry = TakeShell();
    init(carry);
    size_t level = 0;
    for (;;) {
      if (level >= ladder_.size()) ladder_.resize(level + 1);
      if (!ladder_[level].has_value()) {
        if (carry.num_windows > max_windows) {  // expired before placement
          retire(carry);
          spares_.push_back(std::move(carry));
          return;
        }
        ladder_[level] = std::move(carry);
        return;
      }
      // The resident candidate is older (covers earlier windows); the carry
      // extends it to the present.
      C older = std::move(*ladder_[level]);
      ladder_[level].reset();
      merge(older, carry);
      retire(carry);
      spares_.push_back(std::move(carry));
      carry = std::move(older);
      ++level;
    }
  }

  /// \brief Visits the cumulative suffix candidates (Fig. 2): the newest
  /// block, then that block extended by the next-older block, and so on —
  /// the sequences "ending now" with geometrically spaced lengths that
  /// Geometric order actually tests.
  ///
  /// `copy(c)` clones a stored block; `merge(older, newer)` is the same
  /// merge as Step; `visit(c)` is called on each cumulative candidate.
  /// Visiting stops once a cumulative candidate would exceed
  /// \p max_windows, or after \p max_visits candidates were visited —
  /// `max_visits = 1` is the QoS degraded mode that probes only the newest
  /// block (qos::DegradeKnobs::disable_geometric).
  template <typename CopyFn, typename MergeFn, typename VisitFn>
  void VisitSuffixes(int max_windows, CopyFn&& copy, MergeFn&& merge,
                     VisitFn&& visit,
                     int max_visits = std::numeric_limits<int>::max()) const {
    if (max_visits <= 0) return;
    std::optional<C> cum;
    int visited = 0;
    for (const auto& slot : ladder_) {
      if (!slot.has_value()) continue;
      if (!cum.has_value()) {
        cum = copy(*slot);
      } else {
        if (slot->num_windows + cum->num_windows > max_windows) break;
        C older = copy(*slot);
        merge(older, *cum);
        cum = std::move(older);
      }
      if (cum->num_windows > max_windows) break;
      visit(*cum);
      if (++visited >= max_visits) break;
    }
  }

  /// VisitSuffixes against caller-owned scratch: `assign(dst, src)` clones
  /// stored block \p src into shell \p dst (the shell arrives retired —
  /// external resources released, buffers reusable); `retire(C&)` releases
  /// a shell's external resources. Using two shells (\p cum and \p tmp)
  /// makes the whole sweep allocation-free for arena-backed payloads.
  template <typename AssignFn, typename MergeFn, typename VisitFn,
            typename RetireFn>
  void VisitSuffixesInto(int max_windows, C* cum, C* tmp, AssignFn&& assign,
                         MergeFn&& merge, VisitFn&& visit, RetireFn&& retire,
                         int max_visits = std::numeric_limits<int>::max())
      const {
    if (max_visits <= 0) return;
    bool have = false;
    int visited = 0;
    for (const auto& slot : ladder_) {
      if (!slot.has_value()) continue;
      if (!have) {
        assign(*cum, *slot);
        have = true;
      } else {
        if (slot->num_windows + cum->num_windows > max_windows) break;
        assign(*tmp, *slot);
        merge(*tmp, *cum);
        retire(*cum);
        std::swap(*cum, *tmp);
      }
      if (cum->num_windows > max_windows) break;
      visit(*cum);
      if (++visited >= max_visits) break;
    }
    if (have) retire(*cum);
  }

  /// Live candidates (unordered across levels; level index grows with size).
  std::vector<std::optional<C>>& ladder() { return ladder_; }
  /// \copydoc ladder
  const std::vector<std::optional<C>>& ladder() const { return ladder_; }

  /// Calls \p fn on every live candidate.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& slot : ladder_) {
      if (slot.has_value()) fn(*slot);
    }
  }

  /// Removes candidates for which \p pred returns true; \p retire is called
  /// on each removed candidate.
  template <typename Pred, typename RetireFn>
  void RemoveIf(Pred&& pred, RetireFn&& retire) {
    for (auto& slot : ladder_) {
      if (slot.has_value() && pred(*slot)) {
        retire(*slot);
        spares_.push_back(std::move(*slot));
        slot.reset();
      }
    }
  }

  /// \copydoc RemoveIf
  template <typename Pred>
  void RemoveIf(Pred&& pred) {
    RemoveIf(std::forward<Pred>(pred), [](C&) {});
  }

  /// Number of live candidates.
  size_t size() const {
    size_t n = 0;
    for (const auto& slot : ladder_) n += slot.has_value();
    return n;
  }

  /// Drops all state (including recycled shells); \p retire sees every
  /// live candidate first.
  template <typename RetireFn>
  void Clear(RetireFn&& retire) {
    for (auto& slot : ladder_) {
      if (slot.has_value()) retire(*slot);
    }
    ladder_.clear();
    spares_.clear();
  }

  /// \copydoc Clear
  void Clear() {
    Clear([](C&) {});
  }

 private:
  C TakeShell() {
    if (spares_.empty()) return C{};
    C shell = std::move(spares_.back());
    spares_.pop_back();
    return shell;
  }

  std::vector<std::optional<C>> ladder_;
  std::vector<C> spares_;  ///< retired shells kept for capacity reuse
};

}  // namespace vcd::stream
