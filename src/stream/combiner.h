#pragma once

#include <deque>
#include <optional>
#include <vector>

/// \file combiner.h
/// The two candidate-sequence combination orders of paper §IV-A (Fig. 2).
///
/// Candidates grow by absorbing each newly completed basic window.
/// *Sequential order* maintains one candidate per start window — every
/// suffix of the recent stream of length 1..⌈λL/w⌉ windows — at the cost of
/// ⌈λL/w⌉ combinations per arriving window. *Geometric order* maintains a
/// binary-counter ladder of candidates whose sizes are powers of two, so an
/// arriving window triggers at most ⌈log i⌉ merges; fewer candidate lengths
/// are materialized, which trades recall for speed exactly as the paper
/// describes.
///
/// The candidate payload type `C` must expose an `int num_windows` member;
/// merging of payloads (sketch element-wise min, or bit-signature OR) is
/// supplied by the caller.

namespace vcd::stream {

/// \brief Sequential order: every suffix of recent windows is a candidate.
///
/// Candidates are kept oldest-first; window counts decrease from front to
/// back, so expiry is a pop-front loop.
template <typename C>
class SequentialCandidates {
 public:
  /// Absorbs a fresh single-window candidate: merges it into every live
  /// candidate (oldest first), appends it, and expires candidates that now
  /// exceed \p max_windows. `merge(into, fresh)` must also advance
  /// `into.num_windows`.
  template <typename MergeFn>
  void Step(C fresh, int max_windows, MergeFn&& merge) {
    for (C& c : candidates_) merge(c, fresh);
    candidates_.push_back(std::move(fresh));
    while (!candidates_.empty() && candidates_.front().num_windows > max_windows) {
      candidates_.pop_front();
    }
  }

  /// Live candidates, oldest (longest) first.
  std::deque<C>& candidates() { return candidates_; }
  /// \copydoc candidates
  const std::deque<C>& candidates() const { return candidates_; }

  /// Removes candidates for which \p pred returns true.
  template <typename Pred>
  void RemoveIf(Pred&& pred) {
    std::erase_if(candidates_, pred);
  }

  /// Drops all state.
  void Clear() { candidates_.clear(); }

 private:
  std::deque<C> candidates_;
};

/// \brief Geometric order: a binary-counter ladder of power-of-two sized
/// candidates; at most ⌈log i⌉ merges per arriving window.
template <typename C>
class GeometricCandidates {
 public:
  /// Absorbs a fresh single-window candidate, carrying merges up the ladder.
  /// `merge(older, newer)` merges `newer` into `older` (which precedes it on
  /// the stream) and must accumulate `num_windows`. Ladder levels whose
  /// capacity 2^level exceeds \p max_windows are dropped (expiry).
  template <typename MergeFn>
  void Step(C fresh, int max_windows, MergeFn&& merge) {
    size_t level = 0;
    C carry = std::move(fresh);
    for (;;) {
      if (level >= ladder_.size()) ladder_.resize(level + 1);
      if (!ladder_[level].has_value()) {
        if (carry.num_windows > max_windows) return;  // expired before placement
        ladder_[level] = std::move(carry);
        return;
      }
      // The resident candidate is older (covers earlier windows); the carry
      // extends it to the present.
      C older = std::move(*ladder_[level]);
      ladder_[level].reset();
      merge(older, carry);
      carry = std::move(older);
      ++level;
    }
  }

  /// \brief Visits the cumulative suffix candidates (Fig. 2): the newest
  /// block, then that block extended by the next-older block, and so on —
  /// the sequences "ending now" with geometrically spaced lengths that
  /// Geometric order actually tests.
  ///
  /// `copy(c)` clones a stored block; `merge(older, newer)` is the same
  /// merge as Step; `visit(c)` is called on each cumulative candidate.
  /// Visiting stops once a cumulative candidate would exceed
  /// \p max_windows.
  template <typename CopyFn, typename MergeFn, typename VisitFn>
  void VisitSuffixes(int max_windows, CopyFn&& copy, MergeFn&& merge,
                     VisitFn&& visit) const {
    std::optional<C> cum;
    for (const auto& slot : ladder_) {
      if (!slot.has_value()) continue;
      if (!cum.has_value()) {
        cum = copy(*slot);
      } else {
        if (slot->num_windows + cum->num_windows > max_windows) break;
        C older = copy(*slot);
        merge(older, *cum);
        cum = std::move(older);
      }
      if (cum->num_windows > max_windows) break;
      visit(*cum);
    }
  }

  /// Live candidates (unordered across levels; level index grows with size).
  std::vector<std::optional<C>>& ladder() { return ladder_; }
  /// \copydoc ladder
  const std::vector<std::optional<C>>& ladder() const { return ladder_; }

  /// Calls \p fn on every live candidate.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& slot : ladder_) {
      if (slot.has_value()) fn(*slot);
    }
  }

  /// Removes candidates for which \p pred returns true.
  template <typename Pred>
  void RemoveIf(Pred&& pred) {
    for (auto& slot : ladder_) {
      if (slot.has_value() && pred(*slot)) slot.reset();
    }
  }

  /// Number of live candidates.
  size_t size() const {
    size_t n = 0;
    for (const auto& slot : ladder_) n += slot.has_value();
    return n;
  }

  /// Drops all state.
  void Clear() { ladder_.clear(); }

 private:
  std::vector<std::optional<C>> ladder_;
};

}  // namespace vcd::stream
