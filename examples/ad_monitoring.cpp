/// \file ad_monitoring.cpp
/// The paper's motivating scenario: an advertising agency pays for prime-time
/// slots and wants proof its spots actually aired — untampered and in full.
///
/// This example monitors a simulated broadcast day for a portfolio of ad
/// spots, prints an airing log as detections stream in, and closes with a
/// per-advertiser airing report (expected vs observed airings).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/detector.h"
#include "util/logging.h"
#include "workload/dataset.h"
#include "workload/experiment.h"

using namespace vcd;

namespace {

struct AdSpot {
  int query_id;
  std::string advertiser;
};

std::string Hms(double seconds) {
  int s = static_cast<int>(seconds);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", s / 3600, (s / 60) % 60, s % 60);
  return buf;
}

}  // namespace

int main() {
  // A 20-minute "broadcast" with 6 ad spots of 20-40 s spliced in between
  // programming. (A real deployment would feed the partial decoder from the
  // broadcast bit stream; here the workload builder plays that role.)
  workload::DatasetOptions opts;
  opts.num_shorts = 6;
  opts.min_short_seconds = 20;
  opts.max_short_seconds = 40;
  opts.total_seconds = 20 * 60;
  opts.seed = 2026;
  auto ds = workload::Dataset::Build(opts);
  VCD_CHECK(ds.ok(), ds.status().ToString());

  const char* kAdvertisers[] = {"Acme Cola", "Northwind Air",  "Tailspin Toys",
                                "Fabrikam",  "Contoso Motors", "Litware Foods"};
  std::vector<AdSpot> spots;
  for (int i = 0; i < ds->num_shorts(); ++i) {
    spots.push_back(AdSpot{ds->query_spec(i).id, kAdvertisers[i % 6]});
  }

  // The monitoring service runs the paper's default configuration; ads are
  // short, so a finer basic window sharpens airing timestamps.
  core::DetectorConfig config;
  config.window_seconds = 4.0;
  auto det = core::CopyDetector::Create(config);
  VCD_CHECK(det.ok(), det.status().ToString());
  VCD_CHECK(workload::SubscribeQueries(*ds, det->get()).ok(), "subscribe");

  std::printf("ad portfolio under monitoring:\n");
  for (const AdSpot& s : spots) {
    std::printf("  query %d -> %s (%.0f s spot)\n", s.query_id, s.advertiser.c_str(),
                ds->query_spec(s.query_id - 1).duration_seconds);
  }

  // The broadcaster airs the original spots (VS1): every airing should be
  // caught, positioned, and attributed.
  workload::StreamData stream = ds->BuildStream(workload::StreamVariant::kVS1);
  std::printf("\nmonitoring %.0f minutes of broadcast (%zu key frames)...\n\n",
              stream.DurationSeconds() / 60.0, stream.key_frames.size());

  size_t reported = 0;
  for (const auto& frame : stream.key_frames) {
    VCD_CHECK((*det)->ProcessKeyFrame(frame).ok(), "process");
    // Print detections as they arrive — this is a *continuous* monitor.
    while (reported < (*det)->matches().size()) {
      const core::Match& m = (*det)->matches()[reported++];
      const AdSpot& spot = spots[static_cast<size_t>(m.query_id - 1)];
      std::printf("[%s] ON AIR: %-14s (query %d, sim %.2f, airing window %s-%s)\n",
                  Hms(m.end_time).c_str(), spot.advertiser.c_str(), m.query_id,
                  m.similarity, Hms(m.start_time).c_str(), Hms(m.end_time).c_str());
    }
  }
  VCD_CHECK((*det)->Finish().ok(), "finish");

  // Airing report: expected exactly one airing per spot.
  std::map<int, int> airings;
  for (const core::Match& m : (*det)->matches()) ++airings[m.query_id];
  std::printf("\nairing report:\n");
  int missing = 0;
  for (const AdSpot& s : spots) {
    const int n = airings.count(s.query_id) ? airings[s.query_id] : 0;
    std::printf("  %-14s expected 1, observed %d  %s\n", s.advertiser.c_str(), n,
                n >= 1 ? "OK" : "** MISSING **");
    missing += (n == 0);
  }
  const auto eval = core::EvaluateMatches(
      (*det)->matches(), stream.truth,
      workload::WindowFrames(config.window_seconds, stream.fps));
  std::printf("\nprecision %.2f, recall %.2f over %d ground-truth airings\n",
              eval.pr.precision, eval.pr.recall, eval.num_truth);
  return missing == 0 ? 0 : 1;
}
