/// \file live_stats.cpp
/// Operational view of the VDSMS: subscribe a mixed query portfolio, stream
/// a half-hour of doctored video, and print a rolling dashboard of the
/// engine's internals — throughput (× real time), candidate-list occupancy,
/// bit signatures held (the paper's memory metric), Lemma-2 prune counts —
/// plus a demonstration of online query subscribe/unsubscribe mid-stream.

#include <cstdio>

#include "core/detector.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "workload/dataset.h"
#include "workload/experiment.h"

using namespace vcd;

int main() {
  workload::DatasetOptions opts;
  opts.num_shorts = 8;
  opts.num_query_only = 4;  // queries that never air (should stay silent)
  opts.min_short_seconds = 25;
  opts.max_short_seconds = 60;
  opts.total_seconds = 30 * 60;
  opts.seed = 99;
  auto ds = workload::Dataset::Build(opts);
  VCD_CHECK(ds.ok(), ds.status().ToString());

  core::DetectorConfig config;  // paper defaults: K=800, δ=0.7, w=5 s, BitIndex
  auto det = core::CopyDetector::Create(config);
  VCD_CHECK(det.ok(), det.status().ToString());
  // Start with only half the portfolio; the rest subscribes online later.
  VCD_CHECK(workload::SubscribeQueries(*ds, det->get(), 6).ok(), "subscribe");

  workload::StreamData stream = ds->BuildStream(workload::StreamVariant::kVS2);
  std::printf(
      "stream: %.1f min, %zu key frames | %d queries subscribed (%d will join "
      "mid-stream)\n\n",
      stream.DurationSeconds() / 60.0, stream.key_frames.size(), 6,
      ds->num_queries() - 6);
  std::printf("%8s %10s %9s %11s %9s %8s %8s\n", "t", "keyframes", "windows",
              "signatures", "cands", "pruned", "matches");

  Stopwatch clock;
  const double report_every = 180.0;  // dashboard rows every 3 stream-minutes
  double next_report = report_every;
  bool joined = false;
  size_t i = 0;
  for (const auto& frame : stream.key_frames) {
    VCD_CHECK((*det)->ProcessKeyFrame(frame).ok(), "process");
    ++i;
    if (!joined && frame.timestamp > stream.DurationSeconds() / 2) {
      // Online subscription: the rest of the portfolio joins mid-stream
      // (binary-search insert into every index row, §V-C.1).
      for (int q = 6; q < ds->num_queries(); ++q) {
        VCD_CHECK((*det)->AddQuery(ds->query_spec(q).id, ds->QueryKeyFrames(q),
                                   ds->query_spec(q).duration_seconds)
                      .ok(),
                  "online add");
      }
      std::printf("%8.0fs  -- %d queries subscribed online --\n", frame.timestamp,
                  ds->num_queries() - 6);
      joined = true;
    }
    if (frame.timestamp >= next_report) {
      const auto& st = (*det)->stats();
      std::printf("%7.0fs %10lld %9lld %11.1f %9.1f %8lld %8zu\n", frame.timestamp,
                  static_cast<long long>(st.key_frames),
                  static_cast<long long>(st.windows),
                  st.signatures_per_window.mean(), st.candidates_per_window.mean(),
                  static_cast<long long>(st.candidates_pruned),
                  (*det)->matches().size());
      next_report += report_every;
    }
  }
  VCD_CHECK((*det)->Finish().ok(), "finish");
  const double wall = clock.ElapsedSeconds();

  std::printf("\ndetections:\n");
  for (const auto& m : (*det)->matches()) {
    std::printf("  query %2d at t=[%7.1f, %7.1f] s  sim=%.2f\n", m.query_id,
                m.start_time, m.end_time, m.similarity);
  }
  const auto eval = core::EvaluateMatches(
      (*det)->matches(), stream.truth,
      workload::WindowFrames(config.window_seconds, stream.fps));
  std::printf(
      "\nprocessed %.1f min of stream in %.2f s (%.0fx real time) | precision "
      "%.2f recall %.2f\n",
      stream.DurationSeconds() / 60.0, wall, stream.DurationSeconds() / wall,
      eval.pr.precision, eval.pr.recall);
  std::printf("memory: avg %.1f bit signatures x 2K bits = %.1f KB in C_L\n",
              (*det)->stats().signatures_per_window.mean(),
              (*det)->stats().signatures_per_window.mean() * 2 * config.K / 8.0 /
                  1024.0);
  return 0;
}
