/// \file tampered_rebroadcast.cpp
/// The copyright-enforcement scenario: a pirate channel rebroadcasts a
/// protected clip after editing it to dodge detection — color/brightness
/// shifted, noise added, re-encoded at PAL frame rate, and the scenes
/// *reordered*. This example runs the full pixel-domain pipeline (synthetic
/// pixels → MPEG-like encoder → bit stream → partial decoder → detector) and
/// contrasts our set-similarity detector with the rigid `Seq` baseline,
/// which the reordering defeats.

#include <cstdio>

#include "baseline/seq_matcher.h"
#include "core/alignment.h"
#include "core/detector.h"
#include "util/logging.h"
#include "video/codec.h"
#include "video/edit.h"
#include "video/partial_decoder.h"
#include "video/scene_model.h"
#include "video/synthetic.h"

using namespace vcd;
using namespace vcd::video;

namespace {

constexpr int kW = 176, kH = 120;
constexpr double kFps = 12.0;
constexpr int kGop = 6;

VideoBuffer Render(const SceneModel& m, double t0, double secs) {
  RenderOptions ro;
  ro.width = kW;
  ro.height = kH;
  ro.fps = kFps;
  auto v = RenderVideo(m, t0, secs, ro);
  VCD_CHECK(v.ok(), v.status().ToString());
  return std::move(v).value();
}

std::vector<DcFrame> EncodeAndExtract(const VideoBuffer& v) {
  CodecParams p;
  p.width = kW;
  p.height = kH;
  p.fps = kFps;
  p.gop_size = kGop;
  p.quantizer = 4;
  auto bytes = Encoder::EncodeVideo(v, p);
  VCD_CHECK(bytes.ok(), bytes.status().ToString());
  std::printf("  encoded %zu frames -> %.1f KB bit stream\n", v.frames.size(),
              static_cast<double>(bytes->size()) / 1024.0);
  auto dcs = PartialDecoder::ExtractAll(*bytes);
  VCD_CHECK(dcs.ok(), dcs.status().ToString());
  return std::move(dcs).value();
}

}  // namespace

int main() {
  std::printf("1. producing the protected 20 s clip...\n");
  SceneModel clip_model = SceneModel::Generate(777, 22.0);
  VideoBuffer original = Render(clip_model, 0.0, 20.0);
  auto query_frames = EncodeAndExtract(original);

  std::printf("2. the pirate edits a copy (brightness, color, contrast, noise,\n");
  std::printf("   resize round-trip, PAL re-encode, scene reordering)...\n");
  VideoBuffer pirated = AdjustBrightness(original, 9);
  pirated = AdjustColor(pirated, 14, -8);
  pirated = AdjustContrast(pirated, 1.07);
  pirated = AddGaussianNoise(pirated, 2.0, 1234);
  pirated = Resize(pirated, 144, 96).value();
  pirated = Resize(pirated, kW, kH).value();
  pirated = ResampleFps(pirated, 10.0).value();
  pirated = ResampleFps(pirated, kFps).value();
  pirated = ReorderSegments(pirated, 5.0, 4321);

  std::printf("3. the pirate channel airs 25 s of its own content, the tampered\n");
  std::printf("   clip, then 12 s more...\n");
  SceneModel channel_model = SceneModel::Generate(888, 45.0);
  VideoBuffer broadcast = Render(channel_model, 0.0, 25.0);
  AppendFrames(pirated, &broadcast);
  AppendFrames(Render(channel_model, 30.0, 12.0), &broadcast);
  auto stream_frames = EncodeAndExtract(broadcast);

  std::printf("4. monitoring with the continuous copy detector...\n");
  core::DetectorConfig config;
  config.K = 400;
  config.window_seconds = 3.0;
  config.delta = 0.6;
  auto det = core::CopyDetector::Create(config);
  VCD_CHECK(det.ok(), det.status().ToString());
  VCD_CHECK((*det)->AddQuery(1, query_frames, 20.0).ok(), "add query");
  for (const auto& f : stream_frames) {
    VCD_CHECK((*det)->ProcessKeyFrame(f).ok(), "process");
  }
  VCD_CHECK((*det)->Finish().ok(), "finish");

  if ((*det)->matches().empty()) {
    std::printf("   -> no detection (unexpected)\n");
  }
  for (const auto& m : (*det)->matches()) {
    std::printf("   -> TAMPERED COPY DETECTED at t=[%.1f, %.1f] s, similarity %.2f\n",
                m.start_time, m.end_time, m.similarity);
  }

  std::printf("5. edit forensics: aligning the detected copy to the original...\n");
  if (!(*det)->matches().empty()) {
    const core::Match& m = (*det)->matches()[0];
    // Cut the matched interval's key frames out of the stream.
    std::vector<DcFrame> segment;
    for (const auto& f : stream_frames) {
      if (f.frame_index >= m.start_frame && f.frame_index <= m.end_frame) {
        DcFrame local = f;
        local.timestamp -= m.start_time;
        local.frame_index -= m.start_frame;
        segment.push_back(std::move(local));
      }
    }
    auto aligner = core::MatchAligner::Create().value();
    auto segs = aligner.Align(segment, query_frames);
    if (segs.ok()) {
      for (const auto& seg : *segs) {
        if (seg.matched) {
          std::printf("   stream %5.1f-%5.1fs  <-  original %5.1f-%5.1fs (sim %.2f)\n",
                      m.start_time + seg.stream_begin, m.start_time + seg.stream_end,
                      seg.query_begin, seg.query_end, seg.similarity);
        } else {
          std::printf("   stream %5.1f-%5.1fs  <-  (no source: foreign material)\n",
                      m.start_time + seg.stream_begin, m.start_time + seg.stream_end);
        }
      }
      std::printf("   verdict: copy %s temporally reordered\n",
                  core::MatchAligner::IsReordered(*segs) ? "WAS" : "was not");
    }
  }

  std::printf("6. the rigid Seq baseline on the same stream (same features)...\n");
  auto feat_opts = features::FeatureOptions();
  auto extractor = features::DBlockFeatureExtractor::Create(feat_opts).value();
  baseline::SeqMatcherOptions seq_opts;
  seq_opts.distance_threshold = 0.06;
  auto seq = baseline::SeqMatcher::Create(seq_opts).value();
  VCD_CHECK(seq.AddQuery(1, baseline::ExtractFeatureSeq(extractor, query_frames), 20.0).ok(),
            "seq add");
  for (const auto& f : stream_frames) {
    seq.ProcessKeyFrame(f.frame_index, f.timestamp, extractor.Extract(f));
  }
  if (seq.matches().empty()) {
    std::printf("   -> Seq found nothing: frame-by-frame alignment cannot survive\n");
    std::printf("      the scene reordering (the paper's §VI-E result).\n");
  } else {
    for (const auto& m : seq.matches()) {
      std::printf("   -> Seq matched at t=[%.1f, %.1f] (sim %.2f)\n", m.start_time,
                  m.end_time, m.similarity);
    }
  }
  return (*det)->matches().empty() ? 1 : 0;
}
