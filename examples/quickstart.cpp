/// \file quickstart.cpp
/// Minimal end-to-end tour of the public API:
///  1. build a small doctored stream (base content + two inserted shorts),
///  2. subscribe the shorts as continuous queries,
///  3. replay the stream through the CopyDetector,
///  4. print the detections next to the ground truth.

#include <cstdio>

#include "core/detector.h"
#include "core/evaluation.h"
#include "workload/dataset.h"
#include "workload/experiment.h"

using namespace vcd;

int main() {
  // A small workload: ~8 minutes of stream with 3 inserted shorts.
  workload::DatasetOptions opts;
  opts.num_shorts = 3;
  opts.min_short_seconds = 30;
  opts.max_short_seconds = 60;
  opts.total_seconds = 8 * 60;
  opts.seed = 21;
  auto ds = workload::Dataset::Build(opts);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  // Detector with the paper's default parameters (Table I).
  core::DetectorConfig config;  // K=800, d=5, u=4, delta=0.7, w=5s, BitIndex
  auto det = core::CopyDetector::Create(config);
  if (!det.ok()) {
    std::fprintf(stderr, "detector: %s\n", det.status().ToString().c_str());
    return 1;
  }

  // Subscribe every short as a continuous query.
  if (auto st = workload::SubscribeQueries(*ds, det->get()); !st.ok()) {
    std::fprintf(stderr, "subscribe: %s\n", st.ToString().c_str());
    return 1;
  }

  // Build the VS2 stream: copies are color/brightness-altered, noisy,
  // re-encoded at PAL frame rate, and temporally reordered.
  workload::StreamData stream = ds->BuildStream(workload::StreamVariant::kVS2);
  std::printf("stream: %.1f s, %zu key frames, %zu insertions\n",
              stream.DurationSeconds(), stream.key_frames.size(),
              stream.truth.size());

  auto run = workload::RunDetector(det->get(), stream);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("\nground truth:\n");
  for (const auto& g : stream.truth) {
    std::printf("  query %d inserted at frames [%lld, %lld] (t=%.1fs)\n", g.query_id,
                static_cast<long long>(g.begin_frame),
                static_cast<long long>(g.end_frame),
                static_cast<double>(g.begin_frame) / stream.fps);
  }
  std::printf("\ndetections:\n");
  for (const auto& m : (*det)->matches()) {
    std::printf("  query %d detected at t=[%.1f, %.1f]s  sim=%.3f\n", m.query_id,
                m.start_time, m.end_time, m.similarity);
  }
  std::printf(
      "\nprocessed in %.3f s | precision=%.3f recall=%.3f (%d detections)\n",
      run->cpu_seconds, run->eval.pr.precision, run->eval.pr.recall,
      run->eval.num_detections);
  return 0;
}
