/// \file bench_fig10.cc
/// Reproduces **Figure 10**: memory efficiency of BitIndex/Sequential on
/// VS2, measured as the average number of bit signatures maintained in the
/// candidate list — (a) vs similarity threshold δ (0.5–0.9), (b) vs basic
/// window size w (5–20 s) (paper §VI-D).
///
/// Expected shape: the signature count drops as δ grows (Lemma-2 pruning
/// bites earlier) and drops as w grows (fewer, more distinctive windows).

#include <cstdio>

#include "bench_common.h"

using namespace vcd;
using namespace vcd::bench;

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.08);
  auto ds = BuildDataset(bo);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Figure 10: average number of bit signatures (BitIndex/Seq, VS2)",
              bo, *ds);

  workload::StreamData vs2 = ds->BuildStream(workload::StreamVariant::kVS2);
  QueryBank bank(&*ds);

  std::printf("(a) vs similarity threshold delta (w = 5 s)\n");
  TablePrinter ta({"delta", "avg signatures", "max", "avg KB (2K-bit sigs)"});
  for (double delta : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    core::DetectorConfig c = Table1Config();
    c.delta = delta;
    auto det = core::CopyDetector::Create(c);
    VCD_CHECK(det.ok(), det.status().ToString());
    auto run = RunMethod(det->get(), &bank, vs2, -1);
    VCD_CHECK(run.ok(), run.status().ToString());
    const double avg = run->stats.signatures_per_window.mean();
    ta.AddRow({TablePrinter::Fmt(delta, 1), TablePrinter::Fmt(avg, 1),
               TablePrinter::Fmt(run->stats.signatures_per_window.max(), 0),
               TablePrinter::Fmt(avg * 2 * c.K / 8.0 / 1024.0, 1)});
  }
  ta.Print();

  std::printf("\n(b) vs basic window size w (delta = 0.7)\n");
  TablePrinter tb({"w (s)", "avg signatures", "max", "avg KB (2K-bit sigs)"});
  for (double w : {5.0, 10.0, 15.0, 20.0}) {
    core::DetectorConfig c = Table1Config();
    c.window_seconds = w;
    auto det = core::CopyDetector::Create(c);
    VCD_CHECK(det.ok(), det.status().ToString());
    auto run = RunMethod(det->get(), &bank, vs2, -1);
    VCD_CHECK(run.ok(), run.status().ToString());
    const double avg = run->stats.signatures_per_window.mean();
    tb.AddRow({TablePrinter::Fmt(w, 0), TablePrinter::Fmt(avg, 1),
               TablePrinter::Fmt(run->stats.signatures_per_window.max(), 0),
               TablePrinter::Fmt(avg * 2 * c.K / 8.0 / 1024.0, 1)});
  }
  tb.Print();
  std::printf(
      "\nexpected shape: signature count decreases with delta (earlier\n"
      "Lemma-2 pruning) and decreases with w.\n");
  return 0;
}
