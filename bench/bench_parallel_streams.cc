/// \file bench_parallel_streams.cc
/// Throughput of the parallel sharded stream executor vs. the serial
/// StreamMonitor: frames/sec over S concurrent synthetic streams as a
/// function of worker-thread count.
///
/// Usage:
///   bench_parallel_streams [--streams=8] [--frames=2000] [--k=800]
///                          [--queries=20] [--threads=1,2,4,8] [--seed=42]
///                          [--json=BENCH_parallel.json]
///
/// Besides the human-oriented table, every run writes the same rows as a
/// machine-readable JSON document (default BENCH_parallel.json; --json= with
/// an empty value disables it).
///
/// Every configuration processes the *same* precomputed DC-frame streams
/// (content generation is excluded from the timed region), so the table
/// isolates executor scaling. The serial row is the StreamMonitor baseline;
/// speedup is relative to the 1-thread executor row.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/monitor.h"
#include "parallel/executor.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace vcd;

namespace {

struct Options {
  int streams = 8;
  int frames = 2000;  ///< key frames per stream
  int k = 800;
  int queries = 20;
  uint64_t seed = 42;
  std::vector<int> threads = {1, 2, 4, 8};
  std::string json_path = "BENCH_parallel.json";  ///< empty = no JSON output
};

Options ParseOptions(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--streams=", 10) == 0) o.streams = std::atoi(a + 10);
    else if (std::strncmp(a, "--frames=", 9) == 0) o.frames = std::atoi(a + 9);
    else if (std::strncmp(a, "--k=", 4) == 0) o.k = std::atoi(a + 4);
    else if (std::strncmp(a, "--queries=", 10) == 0) o.queries = std::atoi(a + 10);
    else if (std::strncmp(a, "--seed=", 7) == 0)
      o.seed = static_cast<uint64_t>(std::atoll(a + 7));
    else if (std::strncmp(a, "--json=", 7) == 0) o.json_path = a + 7;
    else if (std::strncmp(a, "--threads=", 10) == 0) {
      o.threads.clear();
      for (const char* p = a + 10; *p != '\0';) {
        o.threads.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", a);
      std::exit(2);
    }
  }
  return o;
}

/// A synthetic key frame whose fingerprint varies with \p fill.
video::DcFrame MakeFrame(int64_t slot, float fill) {
  video::DcFrame f;
  f.blocks_x = 22;
  f.blocks_y = 18;
  f.frame_index = slot * 12;
  f.timestamp = static_cast<double>(slot) / 2.5;
  f.dc.resize(static_cast<size_t>(f.blocks_x * f.blocks_y));
  for (size_t i = 0; i < f.dc.size(); ++i) {
    f.dc[i] = 8.0f * 60.0f * std::sin(0.7f * fill + 0.13f * static_cast<float>(i));
  }
  return f;
}

core::DetectorConfig MakeConfig(const Options& o) {
  core::DetectorConfig c;
  c.K = o.k;
  c.window_seconds = 5.0;
  c.delta = 0.7;
  return c;
}

/// Per-stream content: mostly stream-specific background with an embedded
/// copy of one query so the match path is exercised too.
std::vector<std::vector<video::DcFrame>> BuildStreams(const Options& o) {
  std::vector<std::vector<video::DcFrame>> streams(static_cast<size_t>(o.streams));
  for (int s = 0; s < o.streams; ++s) {
    auto& frames = streams[static_cast<size_t>(s)];
    frames.reserve(static_cast<size_t>(o.frames));
    const int copy_at = o.frames / 3 + 11 * s;
    for (int i = 0; i < o.frames; ++i) {
      float fill;
      if (i >= copy_at && i < copy_at + 40) {
        fill = 1000.0f + static_cast<float>(s % 2 == 0 ? i - copy_at : 0);
      } else {
        fill = static_cast<float>(s) * 37.0f + static_cast<float>(i % 23);
      }
      frames.push_back(MakeFrame(i, fill));
    }
  }
  return streams;
}

std::vector<sketch::Sketch> BuildQuerySketches(const Options& o,
                                               const core::DetectorConfig& c) {
  auto fam = sketch::MinHashFamily::Create(c.K, c.hash_seed).value();
  sketch::Sketcher sk(&fam);
  Rng rng(o.seed);
  std::vector<sketch::Sketch> out;
  // Query 1 is the embedded copy segment (so the match/report path runs);
  // the rest are background portfolio load that never matches.
  std::vector<video::DcFrame> copy_frames;
  for (int i = 0; i < 40; ++i) {
    copy_frames.push_back(MakeFrame(i, 1000.0f + static_cast<float>(i)));
  }
  out.push_back(core::PrepareQuery(c, copy_frames, 16.0).value().sketch);
  for (int q = 1; q < o.queries; ++q) {
    std::vector<features::CellId> ids;
    for (int i = 0; i < 40; ++i) {
      ids.push_back(static_cast<features::CellId>(rng.Uniform(5000)));
    }
    out.push_back(sk.FromSequence(ids));
  }
  return out;
}

struct RunResult {
  double seconds = 0.0;
  size_t matches = 0;
  double busy_seconds = 0.0;   ///< summed over shards (executor only)
  size_t queue_high_water = 0;
};

/// One timed run: subscribe queries, open all streams, feed frames
/// round-robin (the arrival pattern of concurrent live streams), close.
template <typename Api>
RunResult Feed(Api& api, const Options& o,
               const std::vector<std::vector<video::DcFrame>>& streams,
               const std::vector<sketch::Sketch>& queries) {
  RunResult r;
  for (int q = 0; q < o.queries; ++q) {
    auto st = api.AddQuerySketch(q + 1, queries[static_cast<size_t>(q)], 40, 16.0);
    if (!st.ok()) {
      std::fprintf(stderr, "AddQuerySketch: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  std::vector<int> ids;
  for (int s = 0; s < o.streams; ++s) {
    ids.push_back(api.OpenStream("stream-" + std::to_string(s)).value());
  }
  Stopwatch sw;
  for (int i = 0; i < o.frames; ++i) {
    for (int s = 0; s < o.streams; ++s) {
      (void)api.ProcessKeyFrame(ids[static_cast<size_t>(s)],
                                streams[static_cast<size_t>(s)][static_cast<size_t>(i)]);
    }
  }
  for (int id : ids) (void)api.CloseStream(id);
  r.seconds = sw.ElapsedSeconds();
  r.matches = api.matches().size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = ParseOptions(argc, argv);
  const core::DetectorConfig config = MakeConfig(o);
  std::printf("# parallel sharded stream executor: %d streams x %d key frames, "
              "K=%d, %d queries\n",
              o.streams, o.frames, o.k, o.queries);
  const auto streams = BuildStreams(o);
  const auto queries = BuildQuerySketches(o, config);
  const double total_frames = static_cast<double>(o.streams) * o.frames;

  TablePrinter table({"executor", "threads", "seconds", "frames/sec", "speedup",
                      "matches", "busy s", "q high-water"});

  using bench::BenchJsonWriter;
  BenchJsonWriter json("parallel_streams");
  json.AddMeta("streams", BenchJsonWriter::Num(int64_t{o.streams}));
  json.AddMeta("frames_per_stream", BenchJsonWriter::Num(int64_t{o.frames}));
  json.AddMeta("k", BenchJsonWriter::Num(int64_t{o.k}));
  json.AddMeta("queries", BenchJsonWriter::Num(int64_t{o.queries}));
  json.AddMeta("seed", BenchJsonWriter::Num(static_cast<int64_t>(o.seed)));

  auto mon = core::StreamMonitor::Create(config).value();
  const RunResult serial = Feed(*mon, o, streams, queries);
  table.AddRow({"serial", "-", TablePrinter::Fmt(serial.seconds),
                TablePrinter::Fmt(total_frames / serial.seconds, 0), "-",
                std::to_string(serial.matches), "-", "-"});
  json.AddRow({{"executor", BenchJsonWriter::Str("serial")},
               {"threads", BenchJsonWriter::Num(int64_t{0})},
               {"seconds", BenchJsonWriter::Num(serial.seconds)},
               {"fps", BenchJsonWriter::Num(total_frames / serial.seconds)},
               {"speedup", "null"},
               {"matches", BenchJsonWriter::Num(static_cast<int64_t>(serial.matches))},
               {"busy_seconds", "null"},
               {"queue_high_water", "null"}});

  double base_fps = 0.0;
  for (int threads : o.threads) {
    core::ParallelConfig pc;
    pc.num_threads = threads;
    pc.queue_capacity = 512;
    pc.backpressure = core::BackpressurePolicy::kBlock;
    auto exec = parallel::StreamExecutor::Create(config, pc).value();
    RunResult r = Feed(*exec, o, streams, queries);
    const parallel::ExecutorStats es = exec->Stats();
    for (const auto& sh : es.shards) {
      r.busy_seconds += sh.busy_seconds;
      r.queue_high_water = std::max(r.queue_high_water, sh.queue_high_water);
    }
    const double fps = total_frames / r.seconds;
    if (base_fps == 0.0) base_fps = fps;
    if (r.matches != serial.matches) {
      std::fprintf(stderr, "WARNING: match count diverged (%zu vs serial %zu)\n",
                   r.matches, serial.matches);
    }
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", fps / base_fps);
    table.AddRow({"sharded", std::to_string(threads), TablePrinter::Fmt(r.seconds),
                  TablePrinter::Fmt(fps, 0), speedup, std::to_string(r.matches),
                  TablePrinter::Fmt(r.busy_seconds),
                  std::to_string(r.queue_high_water)});
    json.AddRow(
        {{"executor", BenchJsonWriter::Str("sharded")},
         {"threads", BenchJsonWriter::Num(int64_t{threads})},
         {"seconds", BenchJsonWriter::Num(r.seconds)},
         {"fps", BenchJsonWriter::Num(fps)},
         {"speedup", BenchJsonWriter::Num(fps / base_fps)},
         {"matches", BenchJsonWriter::Num(static_cast<int64_t>(r.matches))},
         {"busy_seconds", BenchJsonWriter::Num(r.busy_seconds)},
         {"queue_high_water",
          BenchJsonWriter::Num(static_cast<int64_t>(r.queue_high_water))}});
  }
  table.Print();
  if (!o.json_path.empty()) {
    Status st = json.WriteFile(o.json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "JSON output: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", o.json_path.c_str());
  }
  return 0;
}
