/// \file bench_fig6.cc
/// Reproduces **Figure 6**: CPU time of stream processing vs the number of
/// hash functions K (100–3000), for the Sketch and Bit representations under
/// Sequential and Geometric combination orders, on VS1 with the query index
/// maintained (paper §VI-B).
///
/// Expected shape: Sketch cost grows steeply with K (array compares/combines
/// are O(K)); Bit stays nearly flat (probe + popcounts); Geometric is much
/// faster than Sequential for Sketch, only marginally for Bit.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace vcd;
using namespace vcd::bench;

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.04);
  // The paper's default m = 200 queries: query-only extras keep m at 200
  // even when the stream itself is scaled down.
  auto probe = BuildDataset(bo, 0, /*max_short_seconds=*/120.0);
  VCD_CHECK(probe.ok(), probe.status().ToString());
  const int extras = std::max(0, 200 - probe->num_shorts());
  auto ds = BuildDataset(bo, extras, /*max_short_seconds=*/120.0);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Figure 6: CPU time vs number of hash functions K (VS1)", bo, *ds);

  workload::StreamData vs1 = ds->BuildStream(workload::StreamVariant::kVS1);
  QueryBank bank(&*ds);

  const int ks[] = {100, 200, 400, 800, 1600, 3000};
  TablePrinter table({"K", "Sketch/Seq (s)", "Sketch/Geo (s)", "Bit/Seq (s)",
                      "Bit/Geo (s)"});
  for (int k : ks) {
    std::vector<std::string> row = {TablePrinter::Fmt(int64_t{k})};
    for (auto repr : {core::Representation::kSketch, core::Representation::kBit}) {
      for (auto order :
           {core::CombinationOrder::kSequential, core::CombinationOrder::kGeometric}) {
        core::DetectorConfig c = Table1Config();
        c.K = k;
        c.representation = repr;
        c.order = order;
        auto det = core::CopyDetector::Create(c);
        VCD_CHECK(det.ok(), det.status().ToString());
        auto run = RunMethod(det->get(), &bank, vs1, -1);
        VCD_CHECK(run.ok(), run.status().ToString());
        row.push_back(TablePrinter::Fmt(run->cpu_seconds, 3));
      }
    }
    // Reorder to Sketch/Seq, Sketch/Geo, Bit/Seq, Bit/Geo (already is).
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nexpected shape: Sketch grows steeply with K; Bit nearly flat;\n"
      "Geometric << Sequential for Sketch, marginal for Bit.\n");
  return 0;
}
