/// \file bench_fig14.cc
/// Reproduces **Figure 14**: precision and recall of the Seq baseline [1]
/// on VS2 as its distance threshold varies (paper §VI-E).
///
/// Expected shape: tightening the threshold raises precision, but recall
/// collapses (below ~30 % before precision reaches 50 % in the paper) —
/// rigid frame-by-frame alignment cannot survive temporal reordering.

#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace vcd;
using namespace vcd::bench;

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.06);
  auto ds = BuildDataset(bo, 0, /*max_short_seconds=*/150.0);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Figure 14: Seq[1] precision/recall vs distance threshold (VS2)",
              bo, *ds);

  workload::StreamData vs2 = ds->BuildStream(workload::StreamVariant::kVS2);
  features::FeatureOptions feat;
  const double key_spacing =
      vs2.key_frames.size() > 1
          ? vs2.key_frames[1].timestamp - vs2.key_frames[0].timestamp
          : 0.4;
  const int gap = std::max(1, static_cast<int>(std::lround(5.0 / key_spacing)));

  TablePrinter table({"threshold", "precision", "recall", "detections"});
  for (double thr : {0.02, 0.04, 0.06, 0.08, 0.12, 0.16, 0.20, 0.25}) {
    baseline::SeqMatcherOptions o;
    o.distance_threshold = thr;
    o.slide_gap = gap;
    auto run = workload::RunSeqBaseline(*ds, vs2, o, feat);
    VCD_CHECK(run.ok(), run.status().ToString());
    table.AddRow({TablePrinter::Fmt(thr, 2),
                  TablePrinter::Fmt(run->eval.pr.precision, 3),
                  TablePrinter::Fmt(run->eval.pr.recall, 3),
                  TablePrinter::Fmt(int64_t{run->eval.num_detections})});
  }
  table.Print();
  std::printf(
      "\nexpected shape: precision rises as the threshold tightens while\n"
      "recall collapses — rigid alignment fails on reordered copies.\n");
  return 0;
}
