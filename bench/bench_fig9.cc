/// \file bench_fig9.cc
/// Reproduces **Figure 9**: CPU time vs the number of continuous queries m
/// (10–200) for Sketch/Bit × Index/NoIndex, under both combination orders,
/// on VS1 (paper §VI-C).
///
/// Expected shape: the no-index methods grow roughly linearly with m; the
/// indexed methods stay nearly flat; in Geometric order, SketchIndex beats
/// even BitNoIndex once m ≳ 100.
///
/// The run is repeated in two content regimes. With a *shared visual
/// vocabulary* (default workload), many queries are weakly related to every
/// window, so the related-query tracking itself scales with m and the
/// index's advantage compresses. With *distinct content*, unrelated videos
/// share almost no cells and the index probe touches only genuinely related
/// queries — the regime the paper's Fig. 9 shows.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace vcd;
using namespace vcd::bench;

namespace {

void RunRegime(const BenchOptions& bo, bool distinct) {
  auto probe = BuildDataset(bo, 0, 90.0, distinct);
  VCD_CHECK(probe.ok(), probe.status().ToString());
  const int extras = std::max(0, 200 - probe->num_shorts());
  auto ds = BuildDataset(bo, extras, 90.0, distinct);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  std::printf("### content regime: %s ###\n",
              distinct ? "distinct compositions (selective index)"
                       : "shared visual vocabulary (default workload)");
  PrintBanner("Figure 9: CPU time vs number of queries m (VS1)", bo, *ds);

  workload::StreamData vs1 = ds->BuildStream(workload::StreamVariant::kVS1);
  QueryBank bank(&*ds);

  const int ms[] = {10, 25, 50, 100, 150, 200};
  for (auto order :
       {core::CombinationOrder::kSequential, core::CombinationOrder::kGeometric}) {
    std::printf("--- %s order ---\n", core::CombinationOrderName(order));
    TablePrinter table({"m", "SketchNoIndex (s)", "SketchIndex (s)",
                        "BitNoIndex (s)", "BitIndex (s)"});
    for (int m : ms) {
      if (m > ds->num_queries()) break;
      std::vector<std::string> row = {TablePrinter::Fmt(int64_t{m})};
      for (auto repr : {core::Representation::kSketch, core::Representation::kBit}) {
        for (bool use_index : {false, true}) {
          core::DetectorConfig c = Table1Config();
          c.representation = repr;
          c.use_index = use_index;
          c.order = order;
          auto det = core::CopyDetector::Create(c);
          VCD_CHECK(det.ok(), det.status().ToString());
          auto run = RunMethod(det->get(), &bank, vs1, m);
          VCD_CHECK(run.ok(), run.status().ToString());
          row.push_back(TablePrinter::Fmt(run->cpu_seconds, 3));
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.04);
  RunRegime(bo, /*distinct=*/true);
  RunRegime(bo, /*distinct=*/false);
  std::printf(
      "expected shape (distinct regime): NoIndex methods grow ~linearly in m;\n"
      "indexed methods nearly flat; SketchIndex < BitNoIndex at large m in\n"
      "Geometric order. The shared-vocabulary regime compresses the gap\n"
      "because weakly related queries must be tracked regardless.\n");
  return 0;
}
