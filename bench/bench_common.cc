#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/json.h"

namespace vcd::bench {

BenchOptions BenchOptions::Parse(int argc, char** argv, double default_scale) {
  BenchOptions bo;
  bo.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      bo.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      bo.seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--scale=F] [--seed=N]\n", argv[0]);
      std::exit(0);
    }
  }
  if (bo.scale <= 0) {
    std::fprintf(stderr, "invalid --scale\n");
    std::exit(1);
  }
  return bo;
}

const std::vector<vcd::video::DcFrame>& QueryBank::Frames(int qi) {
  auto it = frames_.find(qi);
  if (it == frames_.end()) {
    it = frames_.emplace(qi, ds_->QueryKeyFrames(qi)).first;
  }
  return it->second;
}

const std::vector<QueryCells>& QueryBank::Cells(
    const features::FingerprintOptions& opts) {
  const auto key = std::make_tuple(opts.feature.d, opts.u, static_cast<int>(opts.scheme));
  auto it = cells_.find(key);
  if (it != cells_.end()) return it->second;
  auto fp = features::FrameFingerprinter::Create(opts);
  VCD_CHECK(fp.ok(), fp.status().ToString());
  std::vector<QueryCells> out;
  out.reserve(static_cast<size_t>(ds_->num_queries()));
  for (int qi = 0; qi < ds_->num_queries(); ++qi) {
    QueryCells qc;
    qc.id = ds_->query_spec(qi).id;
    qc.duration_seconds = ds_->query_spec(qi).duration_seconds;
    qc.cells = fp->FingerprintSequence(Frames(qi));
    out.push_back(std::move(qc));
  }
  return cells_.emplace(key, std::move(out)).first->second;
}

Result<workload::Dataset> BuildDataset(const BenchOptions& bo, int num_query_only,
                                       double max_short_seconds,
                                       bool distinct_content) {
  workload::DatasetOptions opts;
  opts.max_short_seconds = max_short_seconds;
  opts.distinct_content = distinct_content;
  opts = opts.Scaled(bo.scale);
  opts.num_query_only = num_query_only;
  opts.seed = bo.seed;
  // At small scales the inserted shorts must still fit between base
  // content; trim the maximum short length so they occupy at most ~60 % of
  // the stream.
  const double cap = 0.6 * opts.total_seconds / opts.num_shorts;
  if (opts.max_short_seconds > cap) {
    opts.max_short_seconds = std::max(cap, opts.min_short_seconds + 1.0);
    if (opts.max_short_seconds <= opts.min_short_seconds) {
      opts.min_short_seconds = opts.max_short_seconds / 2.0;
    }
  }
  return workload::Dataset::Build(opts);
}

core::DetectorConfig Table1Config() {
  core::DetectorConfig c;
  c.K = 800;
  c.fingerprint.feature.d = 5;
  c.fingerprint.u = 4;
  c.delta = 0.7;
  c.window_seconds = 5.0;
  c.lambda = 2.0;
  c.representation = core::Representation::kBit;
  c.order = core::CombinationOrder::kSequential;
  c.use_index = true;
  return c;
}

Result<workload::RunResult> RunMethod(core::CopyDetector* det, QueryBank* bank,
                                      const workload::StreamData& stream, int m) {
  const auto& cells = bank->Cells(det->config().fingerprint);
  const int n = m < 0 ? static_cast<int>(cells.size())
                      : std::min<int>(m, static_cast<int>(cells.size()));
  for (int q = 0; q < n; ++q) {
    VCD_RETURN_IF_ERROR(
        det->AddQueryCells(cells[static_cast<size_t>(q)].id,
                           cells[static_cast<size_t>(q)].cells,
                           cells[static_cast<size_t>(q)].duration_seconds));
  }
  return workload::RunDetector(det, stream);
}

std::string MethodName(const core::DetectorConfig& c) {
  std::string s = core::RepresentationName(c.representation);
  s += c.use_index ? "Index" : "NoIndex";
  s += "/";
  s += core::CombinationOrderName(c.order);
  return s;
}

void BenchJsonWriter::AddMeta(const std::string& key, const std::string& rendered) {
  meta_.emplace_back(key, rendered);
}

void BenchJsonWriter::AddRow(
    std::vector<std::pair<std::string, std::string>> fields) {
  rows_.push_back(std::move(fields));
}

std::string BenchJsonWriter::Str(const std::string& s) {
  return util::JsonQuote(s);
}

std::string BenchJsonWriter::Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string BenchJsonWriter::Num(int64_t v) { return std::to_string(v); }

std::string BenchJsonWriter::Bool(bool b) { return b ? "true" : "false"; }

Status BenchJsonWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path);
  const auto emit_object = [&out](
      const std::vector<std::pair<std::string, std::string>>& fields,
      const char* indent) {
    out << "{";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out << ",";
      out << "\n" << indent << "  " << Str(fields[i].first) << ": "
          << fields[i].second;
    }
    out << "\n" << indent << "}";
  };
  out << "{\n  \"bench\": " << Str(name_) << ",\n  \"meta\": ";
  emit_object(meta_, "  ");
  out << ",\n  \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out << ",";
    out << "\n    ";
    emit_object(rows_[r], "    ");
  }
  out << "\n  ]\n}\n";
  out.close();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

void PrintBanner(const char* title, const BenchOptions& bo,
                 const workload::Dataset& ds) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "workload: scale=%.3f of the paper's 12h/200-short setup -> %d inserted "
      "shorts (+%d query-only), stream %.1f min, seed=%llu\n\n",
      bo.scale, ds.num_shorts(), ds.num_queries() - ds.num_shorts(),
      ds.options().total_seconds / 60.0, static_cast<unsigned long long>(bo.seed));
}

}  // namespace vcd::bench
