/// \file bench_ablation_approx.cc
/// Ablation: how much accuracy does the K-min-hash approximation give up
/// against the *exact* membership-test engine (Definition 2 evaluated with
/// true set intersection), and at what cost?
///
/// For each K, both engines run over the same VS2 stream with the same
/// queries. Reported per K: each engine's precision/recall, the CPU-time
/// ratio, and the mean absolute similarity error of the sketch estimate at
/// the matched positions.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/exact_detector.h"
#include "util/stopwatch.h"

using namespace vcd;
using namespace vcd::bench;

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.05);
  // The exact engine's cost grows with m (every candidate compares a full
  // set against every query), so the comparison runs at the paper's m=200.
  auto probe = BuildDataset(bo);
  VCD_CHECK(probe.ok(), probe.status().ToString());
  const int extras = std::max(0, 200 - probe->num_shorts());
  auto ds = BuildDataset(bo, extras);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Ablation: K-min-hash approximation vs the exact engine (VS2)", bo,
              *ds);

  workload::StreamData vs2 = ds->BuildStream(workload::StreamVariant::kVS2);
  QueryBank bank(&*ds);
  const int64_t w_frames = workload::WindowFrames(5.0, vs2.fps);

  // Exact engine: one run (K-independent).
  core::DetectorConfig base = Table1Config();
  auto exact = core::ExactDetector::Create(base);
  VCD_CHECK(exact.ok(), exact.status().ToString());
  for (const QueryCells& q : bank.Cells(base.fingerprint)) {
    VCD_CHECK((*exact)->AddQueryCells(q.id, q.cells, q.duration_seconds).ok(),
              "exact add");
  }
  Stopwatch exact_timer;
  for (const auto& f : vs2.key_frames) {
    VCD_CHECK((*exact)->ProcessKeyFrame(f).ok(), "exact feed");
  }
  VCD_CHECK((*exact)->Finish().ok(), "exact finish");
  const double exact_secs = exact_timer.ElapsedSeconds();
  const auto exact_eval =
      core::EvaluateMatches((*exact)->matches(), vs2.truth, w_frames);
  std::printf("exact engine: %.3f s, precision %.3f, recall %.3f, %d detections\n\n",
              exact_secs, exact_eval.pr.precision, exact_eval.pr.recall,
              exact_eval.num_detections);

  TablePrinter table({"K", "sketch p", "sketch r", "sketch (s)", "speedup",
                      "mean |sim err| @match"});
  for (int k : {50, 100, 200, 400, 800, 1600}) {
    core::DetectorConfig c = base;
    c.K = k;
    auto det = core::CopyDetector::Create(c);
    VCD_CHECK(det.ok(), det.status().ToString());
    auto run = RunMethod(det->get(), &bank, vs2, -1);
    VCD_CHECK(run.ok(), run.status().ToString());
    // Similarity error: pair sketch matches with exact matches of the same
    // query whose positions overlap, compare reported similarities.
    double err_sum = 0;
    int err_n = 0;
    for (const auto& sm : (*det)->matches()) {
      for (const auto& em : (*exact)->matches()) {
        if (em.query_id != sm.query_id) continue;
        if (sm.end_frame < em.start_frame || em.end_frame < sm.start_frame) continue;
        err_sum += std::fabs(sm.similarity - em.similarity);
        ++err_n;
        break;
      }
    }
    table.AddRow({TablePrinter::Fmt(int64_t{k}),
                  TablePrinter::Fmt(run->eval.pr.precision, 3),
                  TablePrinter::Fmt(run->eval.pr.recall, 3),
                  TablePrinter::Fmt(run->cpu_seconds, 3),
                  TablePrinter::Fmt(exact_secs / run->cpu_seconds, 1) + "x",
                  err_n > 0 ? TablePrinter::Fmt(err_sum / err_n, 3) : "-"});
  }
  table.Print();
  std::printf(
      "\nexpected shape: the sketch engine approaches the exact engine's\n"
      "precision/recall as K grows while the similarity error shrinks like\n"
      "1/sqrt(K); the exact engine pays O(set) work per candidate per window.\n");
  return 0;
}
