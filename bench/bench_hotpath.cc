/// \file bench_hotpath.cc
/// End-to-end per-window hot-path benchmark: windows/second and heap
/// allocations/window for the pooled (flat arena + batched slab kernels)
/// versus scalar (per-object) candidate paths, over
/// {Sequential, Geometric} × {Bit, Sketch} at K ∈ {16, 64, 256}.
///
/// The workload is a no-index, low-δ configuration with 40 subscribed
/// queries, which keeps every query's state alive in every candidate —
/// the densest steady-state combination load (≈ Q·⌈λL/w⌉ signatures per
/// window) — so the numbers isolate combination/test kernel cost rather
/// than match emission. Allocations are counted by a global operator
/// new/delete hook; the pooled path must report 0 per steady-state window.
///
/// Flags: --quick (short measurement, for CI smoke), --json=PATH (machine
/// readable output via BenchJsonWriter), --metrics-json=PATH (a sample
/// observability snapshot from a short metrics-attached run — the measured
/// runs themselves stay metrics-detached so the numbers are unperturbed).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ckpt/snapshot.h"
#include "ckpt/state_codec.h"
#include "core/detector.h"
#include "parallel/executor.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "sketch/kernels/kernels.h"
#include "util/logging.h"
#include "util/rng.h"

// --- counting allocator hook ------------------------------------------------
// Counts every global heap allocation in the process. Relaxed ordering: the
// bench is single-threaded; the counter only needs to be exact between the
// snapshot points.

namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<size_t>(align), size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<size_t>(align), size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace vcd;
using features::CellId;

constexpr double kKeyFps = 2.5;     // key-frame slots per second
constexpr int kSlotsPerWindow = 10; // window_seconds 4.0 at 2.5 slots/s
constexpr int kNumQueries = 40;
// 48 s per query → ⌈λL/w⌉ = 24 live windows per candidate chain. Long-lived
// candidates make merge/test work dominate over (path-independent) signature
// builds, as with the paper's minutes-long queries.
constexpr int kQueryCells = 240;
constexpr double kQuerySeconds = 96.0;

struct RunSpec {
  core::Representation rep;
  core::CombinationOrder order;
  int K;
  bool pooled;
};

struct RunResult {
  double windows_per_sec = 0.0;
  double allocs_per_window = 0.0;
  int64_t windows = 0;
  double sigs_per_window = 0.0;
};

std::vector<CellId> RandomIds(Rng* rng, size_t n, uint32_t lo, uint32_t hi) {
  std::vector<CellId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(lo + static_cast<CellId>(rng->Uniform(hi - lo)));
  }
  return out;
}

RunResult RunOne(const RunSpec& spec, const std::vector<CellId>& stream,
                 const std::vector<std::vector<CellId>>& queries,
                 int warm_windows, int meas_windows, int reps) {
  core::DetectorConfig c;
  c.K = spec.K;
  c.window_seconds = 4.0;
  // Stream content is disjoint from query content, so no window ever
  // matches, and δ is low enough that the Lemma-2 threshold (NumLess >
  // K(1−δ)) almost never fires on unrelated content: the prune scan runs
  // every window but candidate state stays near-maximal and constant, so
  // the pooled arenas reach their high-water mark during warmup and the
  // measured phase is allocation-free. (At K=16 the threshold needs all 16
  // relations to be "less" — P≈2⁻¹⁶ per signature test — so rare prunes DO
  // fire mid-measurement; the detector pre-reserves its merge scratch at
  // subscription time precisely so that event allocates nothing.)
  c.delta = 0.05;
  c.lambda = 2.0;
  c.representation = spec.rep;
  c.order = spec.order;
  c.use_index = false;
  c.enable_pruning = true;
  c.use_pooled_kernels = spec.pooled;
  auto det = core::CopyDetector::Create(c).value();
  for (size_t q = 0; q < queries.size(); ++q) {
    VCD_CHECK(det->AddQueryCells(static_cast<int>(q) + 1, queries[q],
                                 kQuerySeconds)
                  .ok(),
              "add query");
  }

  int64_t slot = 0;
  const auto feed = [&](int64_t n_slots) {
    const int64_t end = slot + n_slots;
    for (; slot < end; ++slot) {
      VCD_CHECK(det->ProcessFingerprint(
                       slot * 12, static_cast<double>(slot) / kKeyFps,
                       stream[static_cast<size_t>(slot) % stream.size()])
                    .ok(),
                "feed");
    }
  };

  feed(static_cast<int64_t>(warm_windows) * kSlotsPerWindow);

  // Best-of-reps on time (shields against external machine noise); worst-of
  // on allocations (a single stray allocation in any rep must show).
  RunResult r;
  double best_secs = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const int64_t windows_before = det->stats().windows;
    const int64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    feed(static_cast<int64_t>(meas_windows) * kSlotsPerWindow);
    const auto t1 = std::chrono::steady_clock::now();
    const int64_t allocs_after = g_alloc_count.load(std::memory_order_relaxed);
    const int64_t windows = det->stats().windows - windows_before;
    VCD_CHECK(windows > 0, "no windows measured");
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double apw = static_cast<double>(allocs_after - allocs_before) /
                       static_cast<double>(windows);
    if (rep == 0 || secs < best_secs) {
      best_secs = secs;
      r.windows = windows;
      r.windows_per_sec = static_cast<double>(windows) / secs;
    }
    if (apw > r.allocs_per_window) r.allocs_per_window = apw;
  }
  r.sigs_per_window = det->stats().signatures_per_window.mean();
  return r;
}

/// Runs a short pooled Sequential-Bit K=64 pass with a private registry
/// attached to the detector and writes the registry's JSON document to
/// \p path. Used by CI to archive a sample observability snapshot; kept
/// separate from the measured runs so attaching the registry can never
/// perturb the benchmark numbers or the 0-alloc contract.
bool WriteMetricsSample(const std::string& path,
                        const std::vector<CellId>& stream,
                        const std::vector<std::vector<CellId>>& queries) {
  obs::MetricsRegistry registry;
  core::DetectorConfig c;
  c.K = 64;
  c.window_seconds = 4.0;
  c.delta = 0.05;
  c.lambda = 2.0;
  c.representation = core::Representation::kBit;
  c.order = core::CombinationOrder::kSequential;
  c.use_index = false;
  c.enable_pruning = true;
  c.use_pooled_kernels = true;
  c.metrics = &registry;
  auto det = core::CopyDetector::Create(c).value();
  for (size_t q = 0; q < queries.size(); ++q) {
    VCD_CHECK(det->AddQueryCells(static_cast<int>(q) + 1, queries[q],
                                 kQuerySeconds)
                  .ok(),
              "add query");
  }
  constexpr int64_t kSampleSlots = 40 * kSlotsPerWindow;
  for (int64_t slot = 0; slot < kSampleSlots; ++slot) {
    VCD_CHECK(det->ProcessFingerprint(
                     slot * 12, static_cast<double>(slot) / kKeyFps,
                     stream[static_cast<size_t>(slot) % stream.size()])
                  .ok(),
              "feed");
  }
  VCD_CHECK(det->Finish().ok(), "finish");
  obs::SyncKernelMetrics(&registry);

  const std::string doc = registry.ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return (std::fclose(f) == 0) && ok;
}

/// Measures the intake pause a checkpoint barrier imposes at steady state:
/// exporting the detector's full candidate/window state and encoding the
/// snapshot container (sections + CRCs). Disk I/O is deliberately excluded —
/// it varies with the filesystem, while export+encode is the CPU cost every
/// checkpoint pays with intake stopped. Returns the best-of-\p reps pause in
/// milliseconds for a warmed-up pooled Sequential-Bit K=64 detector — the
/// same configuration the headline speedup row uses.
double MeasureCheckpointPauseMs(const std::vector<CellId>& stream,
                                const std::vector<std::vector<CellId>>& queries,
                                int warm_windows, int reps) {
  core::DetectorConfig c;
  c.K = 64;
  c.window_seconds = 4.0;
  c.delta = 0.05;
  c.lambda = 2.0;
  c.representation = core::Representation::kBit;
  c.order = core::CombinationOrder::kSequential;
  c.use_index = false;
  c.enable_pruning = true;
  c.use_pooled_kernels = true;
  auto det = core::CopyDetector::Create(c).value();
  for (size_t q = 0; q < queries.size(); ++q) {
    VCD_CHECK(det->AddQueryCells(static_cast<int>(q) + 1, queries[q],
                                 kQuerySeconds)
                  .ok(),
              "add query");
  }
  const int64_t warm_slots =
      static_cast<int64_t>(warm_windows) * kSlotsPerWindow;
  for (int64_t slot = 0; slot < warm_slots; ++slot) {
    VCD_CHECK(det->ProcessFingerprint(
                     slot * 12, static_cast<double>(slot) / kKeyFps,
                     stream[static_cast<size_t>(slot) % stream.size()])
                  .ok(),
              "feed");
  }

  double best_ms = 0.0;
  for (int rep = 0; rep < reps + 1; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    ckpt::SnapshotState state;
    ckpt::StampMeta(c, &state);
    state.streams.resize(1);
    state.streams[0].stream_id = 1;
    state.streams[0].name = "bench";
    state.streams[0].detector = det->ExportCkptState();
    const std::vector<uint8_t> image =
        ckpt::EncodeSnapshot(static_cast<uint64_t>(rep) + 1,
                             ckpt::EncodeState(state));
    const auto t1 = std::chrono::steady_clock::now();
    VCD_CHECK(!image.empty(), "empty snapshot image");
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    // The first pass pays one-time allocation warmup for the codec buffers;
    // skip it, then keep the best of the remaining reps.
    if (rep == 0) continue;
    if (rep == 1 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

/// Measures the relative wall-clock overhead the QoS governor (DESIGN.md
/// §17) adds to the parallel frame path while it stays idle: one stream fed
/// through a single-shard StreamExecutor with the governor off versus
/// enabled with a 1 ms sensing tick and watermarks/dwell it can never cross.
/// The enabled-idle run pays exactly the always-on costs — the per-submit
/// shed-gate check and the periodic pressure sampling — which the ≤1%%
/// budget in tools/bench_diff.py gates. Interleaved best-of-\p reps pairs
/// (plus one discarded warmup pair) shield against machine noise; returns
/// max(0, overhead) as a percentage.
double MeasureQosGovernorOverheadPct(int frames, int reps) {
  core::DetectorConfig c;
  c.K = 64;
  c.window_seconds = 4.0;
  c.delta = 0.05;
  c.use_pooled_kernels = true;

  const auto run_ms = [&](bool qos_on) {
    core::ParallelConfig pc;
    pc.num_threads = 1;
    pc.queue_capacity = 256;
    pc.backpressure = core::BackpressurePolicy::kBlock;
    if (qos_on) {
      pc.qos.enabled = true;
      // Production sensing cadence (the vcdctl default). An aggressive
      // 1 ms tick would measure timer-thread context switches on small
      // machines instead of the frame-path cost this gate bounds.
      pc.qos.tick_ms = 50;
      pc.qos.escalate_dwell_ticks = 1000000;
    }
    auto exec = parallel::StreamExecutor::Create(c, pc).value();
    const int sid = exec->OpenStream("bench").value();
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t slot = 0; slot < frames; ++slot) {
      video::DcFrame f;
      f.blocks_x = 6;
      f.blocks_y = 6;
      f.frame_index = slot * 12;
      f.timestamp = static_cast<double>(slot) / kKeyFps;
      f.dc.resize(36);
      for (size_t i = 0; i < 36; ++i) {
        f.dc[i] = static_cast<float>((slot * 7 + static_cast<int64_t>(i)) % 255);
      }
      VCD_CHECK(exec->ProcessKeyFrame(sid, std::move(f)).ok(), "feed");
    }
    VCD_CHECK(exec->Drain().ok(), "drain");
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };

  // Min of per-pair ratios, not ratio of per-arm mins: on a loaded or
  // single-core machine each ~tens-of-ms run carries scheduler jitter, and
  // pairing keeps both arms inside the same jitter regime. A real frame-path
  // regression shows up in every pair; noise only inflates single pairs.
  double best_ratio = 0.0;
  for (int rep = 0; rep < reps + 1; ++rep) {
    const double off = run_ms(false);
    const double on = run_ms(true);
    if (rep == 0) continue;  // one-time warmup (thread spawn, allocator)
    if (off <= 0.0) continue;
    const double ratio = on / off;
    if (best_ratio == 0.0 || ratio < best_ratio) best_ratio = ratio;
  }
  if (best_ratio <= 0.0) return 0.0;
  const double pct = (best_ratio - 1.0) * 100.0;
  return pct > 0.0 ? pct : 0.0;
}

const char* OrderName(core::CombinationOrder o) {
  return o == core::CombinationOrder::kSequential ? "Sequential" : "Geometric";
}

const char* RepName(core::Representation r) {
  return r == core::Representation::kBit ? "Bit" : "Sketch";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  std::string metrics_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      metrics_json_path = argv[i] + 15;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json=PATH] [--metrics-json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  // Warmup must outlast capacity convergence: candidate shells recycle
  // through a spare pool, and each shell's vectors individually grow to
  // their steady-state capacity before the hot path goes allocation-free.
  const int warm_windows = quick ? 80 : 120;
  const int meas_windows = quick ? 60 : 200;
  const int reps = quick ? 1 : 3;

  Rng rng(20080615);
  std::vector<std::vector<CellId>> queries;
  for (int q = 0; q < kNumQueries; ++q) {
    queries.push_back(RandomIds(&rng, kQueryCells, 0, 2048));
  }
  // Background drawn from a disjoint id range: deterministic, and no
  // min-hash position ever compares equal against a query.
  const std::vector<CellId> stream = RandomIds(&rng, 20000, 4096, 60000);

  bench::BenchJsonWriter json("hotpath");
  json.AddMeta("kernel_isa",
               bench::BenchJsonWriter::Str(sketch::kernels::ActiveOps().name));
  json.AddMeta("queries", bench::BenchJsonWriter::Num(int64_t{kNumQueries}));
  json.AddMeta("warm_windows", bench::BenchJsonWriter::Num(int64_t{warm_windows}));
  json.AddMeta("meas_windows", bench::BenchJsonWriter::Num(int64_t{meas_windows}));
  json.AddMeta("reps", bench::BenchJsonWriter::Num(int64_t{reps}));
  json.AddMeta("quick", bench::BenchJsonWriter::Bool(quick));

  std::printf(
      "bench_hotpath: %d queries, %d measured windows per run%s, "
      "kernel backend: %s\n",
      kNumQueries, meas_windows, quick ? " (quick)" : "",
      sketch::kernels::ActiveOps().name);
  std::printf("%-11s %-7s %5s %7s | %13s %13s %9s | %8s\n", "order", "rep",
              "K", "path", "windows/s", "alloc/win", "sig/win", "speedup");

  bool pooled_alloc_free = true;
  double seqbit64_scalar = 0.0, seqbit64_pooled = 0.0;
  for (core::CombinationOrder order : {core::CombinationOrder::kSequential,
                                       core::CombinationOrder::kGeometric}) {
    for (core::Representation rep :
         {core::Representation::kBit, core::Representation::kSketch}) {
      for (int k : {16, 64, 256}) {
        double scalar_wps = 0.0;
        for (bool pooled : {false, true}) {
          const RunSpec spec{rep, order, k, pooled};
          const RunResult r =
              RunOne(spec, stream, queries, warm_windows, meas_windows, reps);
          if (pooled && r.allocs_per_window != 0.0) pooled_alloc_free = false;
          if (!pooled) scalar_wps = r.windows_per_sec;
          if (order == core::CombinationOrder::kSequential &&
              rep == core::Representation::kBit && k == 64) {
            (pooled ? seqbit64_pooled : seqbit64_scalar) = r.windows_per_sec;
          }
          std::printf("%-11s %-7s %5d %7s | %13.1f %13.2f %9.1f | %7.2fx\n",
                      OrderName(order), RepName(rep), k,
                      pooled ? "pooled" : "scalar", r.windows_per_sec,
                      r.allocs_per_window, r.sigs_per_window,
                      pooled && scalar_wps > 0 ? r.windows_per_sec / scalar_wps
                                               : 1.0);
          json.AddRow({
              {"order", bench::BenchJsonWriter::Str(OrderName(order))},
              {"representation", bench::BenchJsonWriter::Str(RepName(rep))},
              {"K", bench::BenchJsonWriter::Num(int64_t{k})},
              {"pooled", bench::BenchJsonWriter::Bool(pooled)},
              {"windows_per_sec", bench::BenchJsonWriter::Num(r.windows_per_sec)},
              {"allocs_per_window",
               bench::BenchJsonWriter::Num(r.allocs_per_window)},
              {"signatures_per_window",
               bench::BenchJsonWriter::Num(r.sigs_per_window)},
              {"windows", bench::BenchJsonWriter::Num(r.windows)},
          });
        }
      }
    }
  }

  const double speedup =
      seqbit64_scalar > 0 ? seqbit64_pooled / seqbit64_scalar : 0.0;
  const double ckpt_pause_ms =
      MeasureCheckpointPauseMs(stream, queries, warm_windows, reps);
  std::printf("\nSequential-Bit K=64: scalar %.1f w/s, pooled %.1f w/s "
              "(%.2fx); pooled steady-state allocations/window: %s\n",
              seqbit64_scalar, seqbit64_pooled, speedup,
              pooled_alloc_free ? "0 (all runs)" : "NONZERO");
  std::printf("checkpoint pause (export+encode, steady state): %.3f ms\n",
              ckpt_pause_ms);
  const double qos_overhead_pct =
      MeasureQosGovernorOverheadPct(quick ? 6000 : 16000, reps + 2);
  std::printf("qos governor overhead (enabled-idle vs off): %.2f%%\n",
              qos_overhead_pct);
  json.AddMeta("seqbit64_speedup", bench::BenchJsonWriter::Num(speedup));
  json.AddMeta("pooled_alloc_free",
               bench::BenchJsonWriter::Bool(pooled_alloc_free));
  json.AddMeta("checkpoint_pause_ms",
               bench::BenchJsonWriter::Num(ckpt_pause_ms));
  json.AddMeta("qos_governor_overhead_pct",
               bench::BenchJsonWriter::Num(qos_overhead_pct));

  if (!json_path.empty()) {
    const Status s = json.WriteFile(json_path);
    if (!s.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!metrics_json_path.empty()) {
    if (!WriteMetricsSample(metrics_json_path, stream, queries)) {
      std::fprintf(stderr, "failed to write %s\n", metrics_json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_json_path.c_str());
  }
  // The smoke contract for CI: the pooled hot path must stay allocation-free.
  return pooled_alloc_free ? 0 : 1;
}
