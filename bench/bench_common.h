#pragma once

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "workload/dataset.h"
#include "workload/experiment.h"

/// \file bench_common.h
/// Shared plumbing for the per-table/figure experiment drivers. Every bench
/// binary accepts `--scale=<f>` (fraction of the paper's 12-hour / 200-short
/// workload to run) and `--seed=<n>`, prints the effective workload, and
/// emits rows in the layout of the paper's table or figure.

namespace vcd::bench {

/// Command-line options common to all drivers.
struct BenchOptions {
  double scale;
  uint64_t seed = 42;

  /// Parses `--scale=` / `--seed=` from argv, with \p default_scale.
  static BenchOptions Parse(int argc, char** argv, double default_scale);
};

/// The fingerprinted cell sequence of one query.
struct QueryCells {
  int id = 0;
  std::vector<features::CellId> cells;
  double duration_seconds = 0.0;
};

/// \brief Renders each query's key frames once and fingerprints them on
/// demand per fingerprint configuration (cached).
class QueryBank {
 public:
  explicit QueryBank(const workload::Dataset* ds) : ds_(ds) {}

  /// Cells of all queries under \p opts.
  const std::vector<QueryCells>& Cells(const features::FingerprintOptions& opts);

  /// Key frames of query \p qi (rendered once, cached).
  const std::vector<vcd::video::DcFrame>& Frames(int qi);

 private:
  const workload::Dataset* ds_;
  std::map<int, std::vector<vcd::video::DcFrame>> frames_;
  std::map<std::tuple<int, int, int>, std::vector<QueryCells>> cells_;
};

/// Builds the paper's workload at the given scale. \p num_query_only adds
/// extra never-inserted queries (for m sweeps beyond the inserted count).
/// \p max_short_seconds trims query lengths for memory-heavy sweeps.
/// \p distinct_content selects the independent-composition content regime.
Result<workload::Dataset> BuildDataset(const BenchOptions& bo, int num_query_only = 0,
                                       double max_short_seconds = 300.0,
                                       bool distinct_content = false);

/// Detector defaults per the paper's Table I.
core::DetectorConfig Table1Config();

/// Subscribes the first \p m queries from \p bank (cells under the
/// detector's own fingerprint options) and replays \p stream.
Result<workload::RunResult> RunMethod(core::CopyDetector* det, QueryBank* bank,
                                      const workload::StreamData& stream, int m);

/// "Sketch"/"Bit" + "Index"/"NoIndex" + order, as used in figure legends.
std::string MethodName(const core::DetectorConfig& c);

/// \brief Machine-readable benchmark output: accumulates metadata and result
/// rows and writes them as one JSON document
/// `{"bench": ..., "meta": {...}, "rows": [{...}, ...]}` so sweeps can be
/// diffed and plotted without re-parsing the human-oriented tables.
///
/// Values are passed pre-rendered through Str()/Num()/Bool(), which keeps
/// the writer a dumb serializer with no variant type.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name) : name_(std::move(bench_name)) {}

  /// Adds one `"key": value` pair to the meta object. \p rendered must come
  /// from Str()/Num()/Bool().
  void AddMeta(const std::string& key, const std::string& rendered);

  /// Adds one result row of already-rendered `(key, value)` fields.
  void AddRow(std::vector<std::pair<std::string, std::string>> fields);

  /// Writes the document to \p path (overwrites).
  Status WriteFile(const std::string& path) const;

  /// JSON string literal with escaping.
  static std::string Str(const std::string& s);
  /// JSON number (finite doubles; non-finite renders as null).
  static std::string Num(double v);
  static std::string Num(int64_t v);
  static std::string Bool(bool b);

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// Prints the standard bench banner.
void PrintBanner(const char* title, const BenchOptions& bo,
                 const workload::Dataset& ds);

}  // namespace vcd::bench
