/// \file bench_fig13.cc
/// Reproduces **Figure 13**: the accuracy companion of Fig. 12 — precision
/// and recall of the Bit method on the temporally reedited VS2 stream, as
/// the basic window size varies (paper §VI-E).
///
/// Expected shape: Bit keeps both precision and recall high on reordered
/// copies across window sizes (contrast with Figs. 14/15).

#include <cstdio>

#include "bench_common.h"

using namespace vcd;
using namespace vcd::bench;

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.08);
  auto ds = BuildDataset(bo);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Figure 13: accuracy of Bit on reordered copies (VS2)", bo, *ds);

  workload::StreamData vs2 = ds->BuildStream(workload::StreamVariant::kVS2);
  QueryBank bank(&*ds);

  TablePrinter table({"w (s)", "delta", "precision", "recall"});
  for (double w : {5.0, 10.0, 15.0, 20.0}) {
    for (double delta : {0.6, 0.7}) {
      core::DetectorConfig c = Table1Config();
      c.window_seconds = w;
      c.delta = delta;
      auto det = core::CopyDetector::Create(c);
      VCD_CHECK(det.ok(), det.status().ToString());
      auto run = RunMethod(det->get(), &bank, vs2, -1);
      VCD_CHECK(run.ok(), run.status().ToString());
      table.AddRow({TablePrinter::Fmt(w, 0), TablePrinter::Fmt(delta, 1),
                    TablePrinter::Fmt(run->eval.pr.precision, 3),
                    TablePrinter::Fmt(run->eval.pr.recall, 3)});
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: high precision and recall on temporally reordered\n"
      "copies across window sizes.\n");
  return 0;
}
