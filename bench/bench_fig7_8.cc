/// \file bench_fig7_8.cc
/// Reproduces **Figures 7 and 8**: precision (Fig. 7) and recall (Fig. 8) of
/// the Bit method vs the number of hash functions K (10–2000), at several
/// similarity thresholds δ, for Sequential and Geometric orders, on VS2.
///
/// Expected shape: precision rises with K then plateaus (≈ K ≥ 1000); recall
/// stays flat or drops slightly with K. Geometric order shows higher
/// precision at low δ and lower recall at high δ than Sequential.

#include <cstdio>

#include "bench_common.h"

using namespace vcd;
using namespace vcd::bench;

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.08);
  auto ds = BuildDataset(bo);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Figures 7/8: precision & recall vs K (Bit, VS2)", bo, *ds);

  workload::StreamData vs2 = ds->BuildStream(workload::StreamVariant::kVS2);
  QueryBank bank(&*ds);

  const int ks[] = {10, 50, 100, 200, 400, 800, 1600, 2000};
  const double deltas[] = {0.5, 0.6, 0.7, 0.8};
  for (auto order :
       {core::CombinationOrder::kSequential, core::CombinationOrder::kGeometric}) {
    std::printf("--- %s order ---\n", core::CombinationOrderName(order));
    TablePrinter table({"K", "p(d=0.5)", "r(d=0.5)", "p(d=0.6)", "r(d=0.6)",
                        "p(d=0.7)", "r(d=0.7)", "p(d=0.8)", "r(d=0.8)"});
    for (int k : ks) {
      std::vector<std::string> row = {TablePrinter::Fmt(int64_t{k})};
      for (double delta : deltas) {
        core::DetectorConfig c = Table1Config();
        c.K = k;
        c.delta = delta;
        c.order = order;
        auto det = core::CopyDetector::Create(c);
        VCD_CHECK(det.ok(), det.status().ToString());
        auto run = RunMethod(det->get(), &bank, vs2, -1);
        VCD_CHECK(run.ok(), run.status().ToString());
        row.push_back(TablePrinter::Fmt(run->eval.pr.precision, 3));
        row.push_back(TablePrinter::Fmt(run->eval.pr.recall, 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "expected shape: precision rises with K then plateaus; recall flat or\n"
      "slightly decreasing; Geometric has higher precision at low delta and\n"
      "lower recall at high delta.\n");
  return 0;
}
