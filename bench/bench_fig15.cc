/// \file bench_fig15.cc
/// Reproduces **Figure 15**: precision and recall of the Warp baseline [6]
/// on VS2 as its distance threshold and warping width r vary (paper §VI-E).
///
/// Expected shape: warping tolerates local temporal variation (slightly
/// better than Seq) but still degrades badly under wholesale segment
/// reordering; larger r helps only marginally while costing CPU.

#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace vcd;
using namespace vcd::bench;

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.04);
  auto ds = BuildDataset(bo, 0, /*max_short_seconds=*/120.0);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Figure 15: Warp[6] precision/recall vs threshold and r (VS2)",
              bo, *ds);

  workload::StreamData vs2 = ds->BuildStream(workload::StreamVariant::kVS2);
  features::FeatureOptions feat;
  const double key_spacing =
      vs2.key_frames.size() > 1
          ? vs2.key_frames[1].timestamp - vs2.key_frames[0].timestamp
          : 0.4;
  const int gap = std::max(1, static_cast<int>(std::lround(5.0 / key_spacing)));

  for (int r : {5, 10}) {
    std::printf("--- warping width r = %d ---\n", r);
    TablePrinter table({"threshold", "precision", "recall", "detections"});
    for (double thr : {0.02, 0.04, 0.06, 0.08, 0.12, 0.16, 0.20}) {
      baseline::WarpMatcherOptions o;
      o.warp_width = r;
      o.distance_threshold = thr;
      o.slide_gap = gap;
      auto run = workload::RunWarpBaseline(*ds, vs2, o, feat);
      VCD_CHECK(run.ok(), run.status().ToString());
      table.AddRow({TablePrinter::Fmt(thr, 2),
                    TablePrinter::Fmt(run->eval.pr.precision, 3),
                    TablePrinter::Fmt(run->eval.pr.recall, 3),
                    TablePrinter::Fmt(int64_t{run->eval.num_detections})});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "expected shape: better than Seq on local drift but still poor on\n"
      "reordered copies; larger r changes little at much higher CPU cost.\n");
  return 0;
}
