/// \file bench_micro_ops.cc
/// Micro-benchmarks of the primitive costs the paper's Eq. 4 is built from:
/// C_comp and C_comb for the raw-sketch and bit-signature representations,
/// min-hash sketching of a basic window, and the Hash-Query index probe.
/// Also benches the Lemma-2 pruning ablation at the detector level.

#include <benchmark/benchmark.h>

#include <mutex>  // NOLINT(vcd-annotated-mutex): baseline for the vcd::Mutex overhead pin

#include <string>

#include "core/detector.h"
#include "util/logging.h"
#include "index/hash_query_index.h"
#include "sketch/bit_signature.h"
#include "sketch/kernels/kernels.h"
#include "sketch/minhash.h"
#include "sketch/signature_pool.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace {

using namespace vcd;
using features::CellId;
using sketch::BitSignature;
using sketch::MinHashFamily;
using sketch::Sketch;
using sketch::Sketcher;

std::vector<CellId> RandomIds(Rng* rng, size_t n, uint32_t universe = 10240) {
  std::vector<CellId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<CellId>(rng->Uniform(universe)));
  }
  return out;
}

void BM_SketchWindow(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(1);
  auto ids = RandomIds(&rng, 12);  // one 5 s basic window of key frames
  for (auto _ : state) {
    benchmark::DoNotOptimize(sk.FromSequence(ids));
  }
}
BENCHMARK(BM_SketchWindow)->Arg(100)->Arg(800)->Arg(3000);

void BM_SketchCompare(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(2);
  Sketch a = sk.FromSequence(RandomIds(&rng, 30));
  Sketch b = sk.FromSequence(RandomIds(&rng, 30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sketcher::Similarity(a, b));
  }
}
BENCHMARK(BM_SketchCompare)->Arg(100)->Arg(800)->Arg(3000);

void BM_SketchCombine(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(3);
  Sketch a = sk.FromSequence(RandomIds(&rng, 30));
  Sketch b = sk.FromSequence(RandomIds(&rng, 30));
  for (auto _ : state) {
    Sketch tmp = a;
    Sketcher::Combine(&tmp, b);
    benchmark::DoNotOptimize(tmp);
  }
}
BENCHMARK(BM_SketchCombine)->Arg(100)->Arg(800)->Arg(3000);

void BM_BitSimilarity(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(4);
  BitSignature sig = BitSignature::FromSketches(sk.FromSequence(RandomIds(&rng, 30)),
                                                sk.FromSequence(RandomIds(&rng, 30)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig.Similarity());
  }
}
BENCHMARK(BM_BitSimilarity)->Arg(100)->Arg(800)->Arg(3000);

void BM_BitOrCombine(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(5);
  Sketch q = sk.FromSequence(RandomIds(&rng, 30));
  BitSignature a = BitSignature::FromSketches(sk.FromSequence(RandomIds(&rng, 30)), q);
  BitSignature b = BitSignature::FromSketches(sk.FromSequence(RandomIds(&rng, 30)), q);
  for (auto _ : state) {
    BitSignature tmp = a;
    tmp.OrWith(b);
    benchmark::DoNotOptimize(tmp);
  }
}
BENCHMARK(BM_BitOrCombine)->Arg(100)->Arg(800)->Arg(3000);

void BM_BuildBitSignature(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(6);
  Sketch a = sk.FromSequence(RandomIds(&rng, 30));
  Sketch q = sk.FromSequence(RandomIds(&rng, 30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitSignature::FromSketches(a, q));
  }
}
BENCHMARK(BM_BuildBitSignature)->Arg(100)->Arg(800)->Arg(3000);

void BM_IndexProbe(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 800;
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(7);
  std::vector<Sketch> sketches;
  std::vector<index::QueryInfo> infos;
  for (int q = 0; q < m; ++q) {
    sketches.push_back(sk.FromSequence(RandomIds(&rng, 80)));
    infos.push_back(index::QueryInfo{q + 1, 80});
  }
  auto idx = index::HashQueryIndex::Build(sketches, infos).value();
  Sketch w = sk.FromSequence(RandomIds(&rng, 12));
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Probe(w, 0.7));
  }
}
BENCHMARK(BM_IndexProbe)->Arg(10)->Arg(50)->Arg(200);

void BM_BruteForceRelate(benchmark::State& state) {
  // The no-index equivalent of a probe: build a signature per query.
  const int m = static_cast<int>(state.range(0));
  const int k = 800;
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(8);
  std::vector<Sketch> sketches;
  for (int q = 0; q < m; ++q) sketches.push_back(sk.FromSequence(RandomIds(&rng, 80)));
  Sketch w = sk.FromSequence(RandomIds(&rng, 12));
  for (auto _ : state) {
    int related = 0;
    for (const Sketch& qs : sketches) {
      BitSignature sig = BitSignature::FromSketches(w, qs);
      related += sig.SatisfiesLemma2(0.7);
    }
    benchmark::DoNotOptimize(related);
  }
}
BENCHMARK(BM_BruteForceRelate)->Arg(10)->Arg(50)->Arg(200);

void BM_IndexInsert(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 800;
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(9);
  std::vector<Sketch> sketches;
  std::vector<index::QueryInfo> infos;
  for (int q = 0; q < m; ++q) {
    sketches.push_back(sk.FromSequence(RandomIds(&rng, 80)));
    infos.push_back(index::QueryInfo{q + 1, 80});
  }
  Sketch extra = sk.FromSequence(RandomIds(&rng, 80));
  for (auto _ : state) {
    state.PauseTiming();
    auto idx = index::HashQueryIndex::Build(sketches, infos).value();
    state.ResumeTiming();
    benchmark::DoNotOptimize(idx.Insert(extra, index::QueryInfo{m + 1, 80}));
  }
}
BENCHMARK(BM_IndexInsert)->Arg(50)->Arg(200);

// --- slab kernels vs per-object signature ops ------------------------------
// Each BM_Pool* / BM_Obj* pair does the same logical work over a fixed
// candidate set: the Obj variant dispatches per BitSignature object (one
// heap vector each), the Pool variant runs the SignaturePool batch kernel
// over a contiguous slab. Arg is K; the candidate set is 256 signatures.

constexpr size_t kPoolBenchSigs = 256;

struct PoolBenchFixture {
  sketch::SignaturePool pool;
  std::vector<sketch::SignaturePool::Handle> dst;
  std::vector<sketch::SignaturePool::Handle> src;
  std::vector<BitSignature> obj_dst;
  std::vector<BitSignature> obj_src;

  explicit PoolBenchFixture(int k) : pool(k) {
    auto fam = MinHashFamily::Create(k).value();
    Sketcher sk(&fam);
    Rng rng(11);
    Sketch q = sk.FromSequence(RandomIds(&rng, 30));
    for (size_t i = 0; i < kPoolBenchSigs; ++i) {
      Sketch a = sk.FromSequence(RandomIds(&rng, 30));
      Sketch b = sk.FromSequence(RandomIds(&rng, 30));
      dst.push_back(pool.Allocate());
      pool.BuildFromSketches(dst.back(), a, q);
      src.push_back(pool.Allocate());
      pool.BuildFromSketches(src.back(), b, q);
      obj_dst.push_back(BitSignature::FromSketches(a, q));
      obj_src.push_back(BitSignature::FromSketches(b, q));
    }
  }
};

void BM_ObjOrLoop(benchmark::State& state) {
  PoolBenchFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (size_t i = 0; i < kPoolBenchSigs; ++i) f.obj_dst[i].OrWith(f.obj_src[i]);
    benchmark::DoNotOptimize(f.obj_dst.data());
  }
}
BENCHMARK(BM_ObjOrLoop)->Arg(100)->Arg(800)->Arg(3000);

void BM_PoolOrRange(benchmark::State& state) {
  PoolBenchFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    f.pool.OrRange(f.dst.data(), f.src.data(), kPoolBenchSigs);
    benchmark::DoNotOptimize(f.pool.word(f.dst[0], 0));
  }
}
BENCHMARK(BM_PoolOrRange)->Arg(100)->Arg(800)->Arg(3000);

void BM_PoolOrRangeFused(benchmark::State& state) {
  // The merge-path variant: OR plus NumLess of the result in one pass.
  PoolBenchFixture f(static_cast<int>(state.range(0)));
  std::vector<int> less(kPoolBenchSigs);
  for (auto _ : state) {
    f.pool.OrRange(f.dst.data(), f.src.data(), kPoolBenchSigs, less.data());
    benchmark::DoNotOptimize(less.data());
  }
}
BENCHMARK(BM_PoolOrRangeFused)->Arg(100)->Arg(800)->Arg(3000);

void BM_ObjNumEqualLoop(benchmark::State& state) {
  PoolBenchFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    int sum = 0;
    for (size_t i = 0; i < kPoolBenchSigs; ++i) sum += f.obj_dst[i].NumEqual();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ObjNumEqualLoop)->Arg(100)->Arg(800)->Arg(3000);

void BM_PoolNumEqualBatch(benchmark::State& state) {
  PoolBenchFixture f(static_cast<int>(state.range(0)));
  std::vector<int> eq(kPoolBenchSigs);
  std::vector<int> less(kPoolBenchSigs);
  for (auto _ : state) {
    f.pool.NumEqualBatch(f.dst.data(), kPoolBenchSigs, eq.data(), less.data());
    benchmark::DoNotOptimize(eq.data());
  }
}
BENCHMARK(BM_PoolNumEqualBatch)->Arg(100)->Arg(800)->Arg(3000);

void BM_ObjLemma2Loop(benchmark::State& state) {
  PoolBenchFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    int viable = 0;
    for (size_t i = 0; i < kPoolBenchSigs; ++i) {
      viable += f.obj_dst[i].SatisfiesLemma2(0.7);
    }
    benchmark::DoNotOptimize(viable);
  }
}
BENCHMARK(BM_ObjLemma2Loop)->Arg(100)->Arg(800)->Arg(3000);

void BM_PoolPruneScan(benchmark::State& state) {
  PoolBenchFixture f(static_cast<int>(state.range(0)));
  std::vector<uint8_t> prune(kPoolBenchSigs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.pool.PruneScan(f.dst.data(), kPoolBenchSigs, 0.7, prune.data()));
  }
}
BENCHMARK(BM_PoolPruneScan)->Arg(100)->Arg(800)->Arg(3000);

void BM_ObjSignatureLifecycle(benchmark::State& state) {
  // Candidate birth/death cost: construct-from-sketches then destroy.
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(12);
  Sketch a = sk.FromSequence(RandomIds(&rng, 30));
  Sketch q = sk.FromSequence(RandomIds(&rng, 30));
  for (auto _ : state) {
    BitSignature sig = BitSignature::FromSketches(a, q);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_ObjSignatureLifecycle)->Arg(100)->Arg(800)->Arg(3000);

void BM_PoolSignatureLifecycle(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(12);
  Sketch a = sk.FromSequence(RandomIds(&rng, 30));
  Sketch q = sk.FromSequence(RandomIds(&rng, 30));
  sketch::SignaturePool pool(k);
  pool.Free(pool.Allocate());  // pre-grow so the loop hits the free-list path
  for (auto _ : state) {
    const auto h = pool.Allocate();
    pool.BuildFromSketches(h, a, q);
    benchmark::DoNotOptimize(pool.word(h, 0));
    pool.Free(h);
  }
}
BENCHMARK(BM_PoolSignatureLifecycle)->Arg(100)->Arg(800)->Arg(3000);

/// Lemma-2 pruning ablation: a short synthetic stream through BitNoIndex
/// with pruning on vs off.
void BM_DetectorPruning(benchmark::State& state) {
  const bool pruning = state.range(0) != 0;
  Rng rng(10);
  std::vector<CellId> stream_ids = RandomIds(&rng, 600, 9000);
  std::vector<std::vector<CellId>> queries;
  for (int q = 0; q < 20; ++q) queries.push_back(RandomIds(&rng, 60, 9000));
  for (auto _ : state) {
    core::DetectorConfig c;
    c.K = 400;
    c.window_seconds = 4.0;
    c.representation = core::Representation::kBit;
    c.use_index = false;
    c.enable_pruning = pruning;
    auto det = core::CopyDetector::Create(c).value();
    for (size_t q = 0; q < queries.size(); ++q) {
      VCD_CHECK(det->AddQueryCells(static_cast<int>(q) + 1, queries[q], 24.0).ok(),
                "add");
    }
    for (size_t i = 0; i < stream_ids.size(); ++i) {
      VCD_CHECK(det->ProcessFingerprint(static_cast<int64_t>(i) * 12,
                                        static_cast<double>(i) / 2.5, stream_ids[i])
                    .ok(),
                "feed");
    }
    benchmark::DoNotOptimize(det->stats().windows);
  }
}
BENCHMARK(BM_DetectorPruning)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Uncontended lock/unlock: raw std::mutex baseline vs the annotated, ranked
// vcd::Mutex. In release builds VCD_DEADLOCK_CHECK compiles the held-stack
// bookkeeping out, so these two must be indistinguishable — this pair is
// the zero-overhead pin for the runtime deadlock checker (DESIGN.md §14).
void BM_StdMutexLockUnlock(benchmark::State& state) {
  // NOLINT(vcd-annotated-mutex): deliberate raw baseline
  std::mutex mu;
  for (auto _ : state) {
    mu.lock();
    benchmark::DoNotOptimize(&mu);
    mu.unlock();
  }
}
BENCHMARK(BM_StdMutexLockUnlock);

void BM_VcdMutexLockUnlock(benchmark::State& state) {
  Mutex mu{LockRank::kLeaf, "bench.micro"};
  for (auto _ : state) {
    mu.Lock();
    benchmark::DoNotOptimize(&mu);
    mu.Unlock();
  }
}
BENCHMARK(BM_VcdMutexLockUnlock);

// --- kernel dispatch ladder ------------------------------------------------
// BM_Kernel<op>/<isa> runs the same batch kernel over a pool constructed
// with each compiled-and-supported backend's ops table, so one run shows
// the whole ladder (scalar → popcnt → avx2 → avx512) side by side.
// Registered from main() — SupportedIsas() is a runtime CPU probe, not a
// compile-time list, so these cannot be static BENCHMARK() instances.
//
// Unlike PoolBenchFixture (whose interleaved dst/src allocation exercises
// the gather fallback), dst and src are each one consecutive ascending
// handle run — the steady-state detector layout the run-detected aligned
// fast path is built for.

struct KernelBenchFixture {
  sketch::SignaturePool pool;
  std::vector<sketch::SignaturePool::Handle> dst;
  std::vector<sketch::SignaturePool::Handle> src;
  std::vector<int> eq, less;
  std::vector<uint8_t> prune;

  KernelBenchFixture(int k, const sketch::kernels::KernelOps* ops)
      : pool(k, ops), eq(kPoolBenchSigs), less(kPoolBenchSigs),
        prune(kPoolBenchSigs) {
    auto fam = MinHashFamily::Create(k).value();
    Sketcher sk(&fam);
    Rng rng(13);
    Sketch q = sk.FromSequence(RandomIds(&rng, 30));
    for (size_t i = 0; i < kPoolBenchSigs; ++i) dst.push_back(pool.Allocate());
    for (size_t i = 0; i < kPoolBenchSigs; ++i) src.push_back(pool.Allocate());
    for (size_t i = 0; i < kPoolBenchSigs; ++i) {
      pool.BuildFromSketches(dst[i], sk.FromSequence(RandomIds(&rng, 30)), q);
      pool.BuildFromSketches(src[i], sk.FromSequence(RandomIds(&rng, 30)), q);
    }
  }
};

void BM_KernelNumEqualBatch(benchmark::State& state,
                            const sketch::kernels::KernelOps* ops) {
  KernelBenchFixture f(static_cast<int>(state.range(0)), ops);
  for (auto _ : state) {
    f.pool.NumEqualBatch(f.dst.data(), kPoolBenchSigs, f.eq.data(),
                         f.less.data());
    benchmark::DoNotOptimize(f.eq.data());
  }
}

void BM_KernelOrRangeFused(benchmark::State& state,
                           const sketch::kernels::KernelOps* ops) {
  KernelBenchFixture f(static_cast<int>(state.range(0)), ops);
  for (auto _ : state) {
    f.pool.OrRange(f.dst.data(), f.src.data(), kPoolBenchSigs, f.less.data());
    benchmark::DoNotOptimize(f.less.data());
  }
}

void BM_KernelPruneScan(benchmark::State& state,
                        const sketch::kernels::KernelOps* ops) {
  KernelBenchFixture f(static_cast<int>(state.range(0)), ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.pool.PruneScan(f.dst.data(), kPoolBenchSigs,
                                              0.7, f.prune.data()));
  }
}

void BM_KernelBuildFromSketches(benchmark::State& state,
                                const sketch::kernels::KernelOps* ops) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(14);
  Sketch a = sk.FromSequence(RandomIds(&rng, 30));
  Sketch q = sk.FromSequence(RandomIds(&rng, 30));
  sketch::SignaturePool pool(k, ops);
  const auto h = pool.Allocate();
  for (auto _ : state) {
    pool.BuildFromSketches(h, a, q);
    benchmark::DoNotOptimize(pool.word(h, 0));
  }
}

void RegisterKernelLadder() {
  using Fn = void (*)(benchmark::State&, const sketch::kernels::KernelOps*);
  const struct { const char* name; Fn fn; } kOps[] = {
      {"BM_KernelNumEqualBatch", &BM_KernelNumEqualBatch},
      {"BM_KernelOrRangeFused", &BM_KernelOrRangeFused},
      {"BM_KernelPruneScan", &BM_KernelPruneScan},
      {"BM_KernelBuildFromSketches", &BM_KernelBuildFromSketches},
  };
  for (const auto& op : kOps) {
    for (sketch::kernels::Isa isa : sketch::kernels::SupportedIsas()) {
      const sketch::kernels::KernelOps* ops = sketch::kernels::OpsForIsa(isa);
      const std::string name =
          std::string(op.name) + "/" + sketch::kernels::IsaName(isa);
      benchmark::RegisterBenchmark(name.c_str(), op.fn, ops)
          ->Arg(100)->Arg(800)->Arg(3000);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterKernelLadder();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
