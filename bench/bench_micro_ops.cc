/// \file bench_micro_ops.cc
/// Micro-benchmarks of the primitive costs the paper's Eq. 4 is built from:
/// C_comp and C_comb for the raw-sketch and bit-signature representations,
/// min-hash sketching of a basic window, and the Hash-Query index probe.
/// Also benches the Lemma-2 pruning ablation at the detector level.

#include <benchmark/benchmark.h>

#include "core/detector.h"
#include "util/logging.h"
#include "index/hash_query_index.h"
#include "sketch/bit_signature.h"
#include "sketch/minhash.h"
#include "util/rng.h"

namespace {

using namespace vcd;
using features::CellId;
using sketch::BitSignature;
using sketch::MinHashFamily;
using sketch::Sketch;
using sketch::Sketcher;

std::vector<CellId> RandomIds(Rng* rng, size_t n, uint32_t universe = 10240) {
  std::vector<CellId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<CellId>(rng->Uniform(universe)));
  }
  return out;
}

void BM_SketchWindow(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(1);
  auto ids = RandomIds(&rng, 12);  // one 5 s basic window of key frames
  for (auto _ : state) {
    benchmark::DoNotOptimize(sk.FromSequence(ids));
  }
}
BENCHMARK(BM_SketchWindow)->Arg(100)->Arg(800)->Arg(3000);

void BM_SketchCompare(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(2);
  Sketch a = sk.FromSequence(RandomIds(&rng, 30));
  Sketch b = sk.FromSequence(RandomIds(&rng, 30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sketcher::Similarity(a, b));
  }
}
BENCHMARK(BM_SketchCompare)->Arg(100)->Arg(800)->Arg(3000);

void BM_SketchCombine(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(3);
  Sketch a = sk.FromSequence(RandomIds(&rng, 30));
  Sketch b = sk.FromSequence(RandomIds(&rng, 30));
  for (auto _ : state) {
    Sketch tmp = a;
    Sketcher::Combine(&tmp, b);
    benchmark::DoNotOptimize(tmp);
  }
}
BENCHMARK(BM_SketchCombine)->Arg(100)->Arg(800)->Arg(3000);

void BM_BitSimilarity(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(4);
  BitSignature sig = BitSignature::FromSketches(sk.FromSequence(RandomIds(&rng, 30)),
                                                sk.FromSequence(RandomIds(&rng, 30)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig.Similarity());
  }
}
BENCHMARK(BM_BitSimilarity)->Arg(100)->Arg(800)->Arg(3000);

void BM_BitOrCombine(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(5);
  Sketch q = sk.FromSequence(RandomIds(&rng, 30));
  BitSignature a = BitSignature::FromSketches(sk.FromSequence(RandomIds(&rng, 30)), q);
  BitSignature b = BitSignature::FromSketches(sk.FromSequence(RandomIds(&rng, 30)), q);
  for (auto _ : state) {
    BitSignature tmp = a;
    tmp.OrWith(b);
    benchmark::DoNotOptimize(tmp);
  }
}
BENCHMARK(BM_BitOrCombine)->Arg(100)->Arg(800)->Arg(3000);

void BM_BuildBitSignature(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(6);
  Sketch a = sk.FromSequence(RandomIds(&rng, 30));
  Sketch q = sk.FromSequence(RandomIds(&rng, 30));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitSignature::FromSketches(a, q));
  }
}
BENCHMARK(BM_BuildBitSignature)->Arg(100)->Arg(800)->Arg(3000);

void BM_IndexProbe(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 800;
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(7);
  std::vector<Sketch> sketches;
  std::vector<index::QueryInfo> infos;
  for (int q = 0; q < m; ++q) {
    sketches.push_back(sk.FromSequence(RandomIds(&rng, 80)));
    infos.push_back(index::QueryInfo{q + 1, 80});
  }
  auto idx = index::HashQueryIndex::Build(sketches, infos).value();
  Sketch w = sk.FromSequence(RandomIds(&rng, 12));
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Probe(w, 0.7));
  }
}
BENCHMARK(BM_IndexProbe)->Arg(10)->Arg(50)->Arg(200);

void BM_BruteForceRelate(benchmark::State& state) {
  // The no-index equivalent of a probe: build a signature per query.
  const int m = static_cast<int>(state.range(0));
  const int k = 800;
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(8);
  std::vector<Sketch> sketches;
  for (int q = 0; q < m; ++q) sketches.push_back(sk.FromSequence(RandomIds(&rng, 80)));
  Sketch w = sk.FromSequence(RandomIds(&rng, 12));
  for (auto _ : state) {
    int related = 0;
    for (const Sketch& qs : sketches) {
      BitSignature sig = BitSignature::FromSketches(w, qs);
      related += sig.SatisfiesLemma2(0.7);
    }
    benchmark::DoNotOptimize(related);
  }
}
BENCHMARK(BM_BruteForceRelate)->Arg(10)->Arg(50)->Arg(200);

void BM_IndexInsert(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = 800;
  auto fam = MinHashFamily::Create(k).value();
  Sketcher sk(&fam);
  Rng rng(9);
  std::vector<Sketch> sketches;
  std::vector<index::QueryInfo> infos;
  for (int q = 0; q < m; ++q) {
    sketches.push_back(sk.FromSequence(RandomIds(&rng, 80)));
    infos.push_back(index::QueryInfo{q + 1, 80});
  }
  Sketch extra = sk.FromSequence(RandomIds(&rng, 80));
  for (auto _ : state) {
    state.PauseTiming();
    auto idx = index::HashQueryIndex::Build(sketches, infos).value();
    state.ResumeTiming();
    benchmark::DoNotOptimize(idx.Insert(extra, index::QueryInfo{m + 1, 80}));
  }
}
BENCHMARK(BM_IndexInsert)->Arg(50)->Arg(200);

/// Lemma-2 pruning ablation: a short synthetic stream through BitNoIndex
/// with pruning on vs off.
void BM_DetectorPruning(benchmark::State& state) {
  const bool pruning = state.range(0) != 0;
  Rng rng(10);
  std::vector<CellId> stream_ids = RandomIds(&rng, 600, 9000);
  std::vector<std::vector<CellId>> queries;
  for (int q = 0; q < 20; ++q) queries.push_back(RandomIds(&rng, 60, 9000));
  for (auto _ : state) {
    core::DetectorConfig c;
    c.K = 400;
    c.window_seconds = 4.0;
    c.representation = core::Representation::kBit;
    c.use_index = false;
    c.enable_pruning = pruning;
    auto det = core::CopyDetector::Create(c).value();
    for (size_t q = 0; q < queries.size(); ++q) {
      VCD_CHECK(det->AddQueryCells(static_cast<int>(q) + 1, queries[q], 24.0).ok(),
                "add");
    }
    for (size_t i = 0; i < stream_ids.size(); ++i) {
      VCD_CHECK(det->ProcessFingerprint(static_cast<int64_t>(i) * 12,
                                        static_cast<double>(i) / 2.5, stream_ids[i])
                    .ok(),
                "feed");
    }
    benchmark::DoNotOptimize(det->stats().windows);
  }
}
BENCHMARK(BM_DetectorPruning)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
