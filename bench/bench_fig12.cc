/// \file bench_fig12.cc
/// Reproduces **Figure 12**: CPU time of our Bit method vs the Seq [1] and
/// Warp [6] baselines as the basic window (sliding gap) size varies, on VS2
/// (paper §VI-E). All methods share the compressed-domain features.
///
/// Expected shape: Bit is fastest at every window size; Warp's cost grows
/// with the warping width r.

#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace vcd;
using namespace vcd::bench;

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.025);
  // All methods carry the paper's full continuous-query load (m = 200); the
  // baselines' cost scales with m·L, which is the regime Fig. 12 compares.
  auto probe = BuildDataset(bo, 0, /*max_short_seconds=*/120.0);
  VCD_CHECK(probe.ok(), probe.status().ToString());
  const int extras = std::max(0, 200 - probe->num_shorts());
  auto ds = BuildDataset(bo, extras, /*max_short_seconds=*/120.0);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Figure 12: CPU time, Bit vs Seq[1] vs Warp[6] (VS2)", bo, *ds);

  workload::StreamData vs2 = ds->BuildStream(workload::StreamVariant::kVS2);
  QueryBank bank(&*ds);
  features::FeatureOptions feat;  // d = 5 defaults, shared by the baselines

  // Key-frame spacing, to convert the window size into a sliding gap.
  const double key_spacing =
      vs2.key_frames.size() > 1
          ? vs2.key_frames[1].timestamp - vs2.key_frames[0].timestamp
          : 0.4;

  // Two sliding regimes for the baselines. With the gap equal to the basic
  // window (w seconds of key frames) the baselines do very little work; the
  // frame-by-frame regime (gap = 1 key frame, Hampapur's original sliding)
  // is where their m·L cost per position bites.
  for (bool fine : {false, true}) {
    std::printf("--- baseline sliding gap: %s ---\n",
                fine ? "1 key frame (frame-by-frame regime)"
                     : "one basic window (w)");
    TablePrinter table(
        {"w (s)", "Bit (s)", "Seq (s)", "Warp r=5 (s)", "Warp r=10 (s)"});
    for (double w : {5.0, 10.0, 15.0, 20.0}) {
      std::vector<std::string> row = {TablePrinter::Fmt(w, 0)};
      {
        core::DetectorConfig c = Table1Config();
        c.window_seconds = w;
        auto det = core::CopyDetector::Create(c);
        VCD_CHECK(det.ok(), det.status().ToString());
        auto run = RunMethod(det->get(), &bank, vs2, -1);
        VCD_CHECK(run.ok(), run.status().ToString());
        row.push_back(TablePrinter::Fmt(run->cpu_seconds, 3));
      }
      const int gap =
          fine ? 1 : std::max(1, static_cast<int>(std::lround(w / key_spacing)));
      {
        baseline::SeqMatcherOptions o;
        o.slide_gap = gap;
        o.distance_threshold = 0.08;
        auto run = workload::RunSeqBaseline(*ds, vs2, o, feat);
        VCD_CHECK(run.ok(), run.status().ToString());
        row.push_back(TablePrinter::Fmt(run->cpu_seconds, 3));
      }
      for (int r : {5, 10}) {
        baseline::WarpMatcherOptions o;
        o.slide_gap = gap;
        o.warp_width = r;
        o.distance_threshold = 0.08;
        auto run = workload::RunWarpBaseline(*ds, vs2, o, feat);
        VCD_CHECK(run.ok(), run.status().ToString());
        row.push_back(TablePrinter::Fmt(run->cpu_seconds, 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "expected shape: in the frame-by-frame regime Bit is fastest and Warp\n"
      "cost grows with r; with a full-window gap the baselines skip most of\n"
      "their work (at the accuracy cost Figs. 14/15 show).\n");
  return 0;
}
