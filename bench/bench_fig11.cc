/// \file bench_fig11.cc
/// Reproduces **Figure 11**: precision and recall of BitIndex/Sequential vs
/// the basic window size w (5–20 s) on VS1 and VS2 (paper §VI-D).
///
/// Expected shape: both precision and recall decrease as w grows (longer
/// windows blur candidate boundaries and lengthen candidate sequences).

#include <cstdio>

#include "bench_common.h"

using namespace vcd;
using namespace vcd::bench;

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.08);
  auto ds = BuildDataset(bo);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Figure 11: precision/recall vs basic window size w", bo, *ds);

  QueryBank bank(&*ds);
  for (auto variant : {workload::StreamVariant::kVS1, workload::StreamVariant::kVS2}) {
    const bool vs1 = variant == workload::StreamVariant::kVS1;
    std::printf("--- %s ---\n", vs1 ? "VS1 (original copies)" : "VS2 (edited copies)");
    workload::StreamData stream = ds->BuildStream(variant);
    TablePrinter table({"w (s)", "precision", "recall", "detections"});
    for (double w : {5.0, 8.0, 12.0, 16.0, 20.0}) {
      core::DetectorConfig c = Table1Config();
      c.window_seconds = w;
      auto det = core::CopyDetector::Create(c);
      VCD_CHECK(det.ok(), det.status().ToString());
      auto run = RunMethod(det->get(), &bank, stream, -1);
      VCD_CHECK(run.ok(), run.status().ToString());
      table.AddRow({TablePrinter::Fmt(w, 0),
                    TablePrinter::Fmt(run->eval.pr.precision, 3),
                    TablePrinter::Fmt(run->eval.pr.recall, 3),
                    TablePrinter::Fmt(int64_t{run->eval.num_detections})});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("expected shape: precision and recall decline as w grows.\n");
  return 0;
}
