/// \file bench_table2.cc
/// Reproduces **Table II**: precision (p) and recall (r) of the grid–pyramid
/// partition for u ∈ [2,7] × d ∈ [3,7], using the exact membership test
/// (Definition 2, no min-hash): each original short A[i] queries the edited
/// set B; B[j] is retrieved when sim(A[i], B[j]) ≥ δ, and the only relevant
/// item is B[i].
///
/// Also prints the §III-A partition-scheme ablation (grid vs pyramid vs
/// grid–pyramid at the default d=5, u=4 granularity equivalents).

#include <cstdio>

#include "bench_common.h"
#include "sketch/jaccard.h"

using namespace vcd;
using namespace vcd::bench;

namespace {

struct PR {
  double p, r;
};

/// Runs the membership-test retrieval for one fingerprint configuration.
PR MembershipTest(const std::vector<std::vector<features::CellId>>& a_cells,
                  const std::vector<std::vector<features::CellId>>& b_cells,
                  double delta) {
  const int n = static_cast<int>(a_cells.size());
  std::vector<sketch::CellIdSet> a_sets, b_sets;
  for (int i = 0; i < n; ++i) {
    a_sets.push_back(sketch::CellIdSet::FromSequence(a_cells[static_cast<size_t>(i)]));
    b_sets.push_back(sketch::CellIdSet::FromSequence(b_cells[static_cast<size_t>(i)]));
  }
  int retrieved = 0, correct = 0, found = 0;
  for (int i = 0; i < n; ++i) {
    bool self = false;
    for (int j = 0; j < n; ++j) {
      if (a_sets[static_cast<size_t>(i)].Jaccard(b_sets[static_cast<size_t>(j)]) >= delta) {
        ++retrieved;
        if (i == j) {
          ++correct;
          self = true;
        }
      }
    }
    found += self;
  }
  PR pr;
  pr.p = retrieved > 0 ? static_cast<double>(correct) / retrieved : 0.0;
  pr.r = n > 0 ? static_cast<double>(found) / n : 0.0;
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions bo = BenchOptions::Parse(argc, argv, /*default_scale=*/0.15);
  auto ds = BuildDataset(bo, 0, /*max_short_seconds=*/180.0);
  VCD_CHECK(ds.ok(), ds.status().ToString());
  PrintBanner("Table II: precision/recall of the space partition (u x d)", bo, *ds);

  const double delta = 0.7;
  const int n = ds->num_shorts();
  // Render key frames of the original (A) and edited (B) copies once.
  std::vector<std::vector<vcd::video::DcFrame>> a_frames, b_frames;
  for (int i = 0; i < n; ++i) {
    a_frames.push_back(ds->QueryKeyFrames(i));
    b_frames.push_back(ds->EditedQueryKeyFrames(i));
  }

  auto run_config = [&](const features::FingerprintOptions& opts) {
    auto fp = features::FrameFingerprinter::Create(opts);
    VCD_CHECK(fp.ok(), fp.status().ToString());
    std::vector<std::vector<features::CellId>> a_cells, b_cells;
    for (int i = 0; i < n; ++i) {
      a_cells.push_back(fp->FingerprintSequence(a_frames[static_cast<size_t>(i)]));
      b_cells.push_back(fp->FingerprintSequence(b_frames[static_cast<size_t>(i)]));
    }
    return MembershipTest(a_cells, b_cells, delta);
  };

  TablePrinter table({"d \\ u", "2", "3", "4", "5", "6", "7"});
  for (int d = 3; d <= 7; ++d) {
    std::vector<std::string> row = {TablePrinter::Fmt(int64_t{d})};
    for (int u = 2; u <= 7; ++u) {
      features::FingerprintOptions opts;
      opts.feature.d = d;
      opts.u = u;
      PR pr = run_config(opts);
      row.push_back("p=" + TablePrinter::Fmt(pr.p, 3) + " r=" + TablePrinter::Fmt(pr.r, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\npartition-scheme ablation (d=5), delta=%.1f:\n", delta);
  TablePrinter ab({"scheme", "cells", "precision", "recall"});
  struct Case {
    const char* name;
    features::PartitionScheme scheme;
    int u;
  };
  for (const Case& c :
       {Case{"pyramid-only", features::PartitionScheme::kPyramid, 4},
        Case{"grid-only u=4", features::PartitionScheme::kGrid, 4},
        Case{"grid-only u=6", features::PartitionScheme::kGrid, 6},
        Case{"grid-pyramid u=4", features::PartitionScheme::kGridPyramid, 4}}) {
    features::FingerprintOptions opts;
    opts.feature.d = 5;
    opts.u = c.u;
    opts.scheme = c.scheme;
    auto fp = features::FrameFingerprinter::Create(opts);
    VCD_CHECK(fp.ok(), fp.status().ToString());
    PR pr = run_config(opts);
    ab.AddRow({c.name, TablePrinter::Fmt(static_cast<int64_t>(fp->num_cells())),
               TablePrinter::Fmt(pr.p, 3), TablePrinter::Fmt(pr.r, 3)});
  }
  ab.Print();
  return 0;
}
