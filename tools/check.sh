#!/usr/bin/env bash
# Build + test matrix: plain, ThreadSanitizer, AddressSanitizer,
# UndefinedBehaviorSanitizer, lint.
#
# Usage:
#   tools/check.sh           # run the full matrix
#   tools/check.sh plain     # just the plain build + ctest
#   tools/check.sh tsan      # just the TSan build + ctest
#   tools/check.sh asan      # just the ASan build + ctest
#   tools/check.sh ubsan     # just the UBSan build + ctest
#                            # (-fno-sanitize-recover=all: any UB aborts)
#   tools/check.sh lint      # just tools/lint.sh (tidy/format legs skip
#                            # with a notice when the LLVM tools are absent)
#   tools/check.sh faultfx   # -DVCD_FAULTFX=ON build + ctest: arms the
#                            # fault-injection sites so the fault-matrix
#                            # tests run instead of skipping
#   tools/check.sh faultfx-tsan  # fault matrix under ThreadSanitizer
#   tools/check.sh faultfx-asan  # fault matrix under ASan
#   tools/check.sh overload-soak # QoS governor tests (incl. the seeded
#                            # 2x-overload soak) repeated SOAK_REPEATS
#                            # times under TSan with faultfx armed
#   tools/check.sh obs       # -DVCD_OBS=OFF build + ctest: proves the
#                            # instrumentation macros compile to no-ops and
#                            # that every test still passes without them
#   tools/check.sh kernels   # plain build, then one full ctest pass per
#                            # kernel backend this host supports, forced
#                            # process-wide via VCD_KERNEL_ISA — proves the
#                            # whole suite, not just the equivalence tests,
#                            # holds under every dispatch level
#
# Sanitizer builds skip benches/examples (VCD_BUILD_BENCH/EXAMPLES=OFF) —
# the tests are the contract; the benches are timing tools. They also force
# -DVCD_DEADLOCK_CHECK=ON (AUTO already resolves that way under a
# sanitizer; the explicit flag keeps it true even if the default changes),
# so every sanitizer run exercises the runtime lock-rank checker
# (DESIGN.md §14). The faultfx sanitizer legs are not part of `all` (CI
# runs them as a separate job); plain faultfx is.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MATRIX="${1:-all}"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
  echo "=== [$name] OK ==="
}

case "$MATRIX" in
  plain|all) run_config plain build ;;&
  tsan|all)
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      run_config tsan build-tsan -DVCD_SANITIZE=thread \
        -DVCD_DEADLOCK_CHECK=ON \
        -DVCD_BUILD_BENCH=OFF -DVCD_BUILD_EXAMPLES=OFF ;;&
  asan|all)
    ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
      run_config asan build-asan -DVCD_SANITIZE=address \
        -DVCD_DEADLOCK_CHECK=ON \
        -DVCD_BUILD_BENCH=OFF -DVCD_BUILD_EXAMPLES=OFF ;;&
  ubsan|all)
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
      run_config ubsan build-ubsan -DVCD_SANITIZE=undefined \
        -DVCD_DEADLOCK_CHECK=ON \
        -DVCD_BUILD_BENCH=OFF -DVCD_BUILD_EXAMPLES=OFF ;;&
  lint|all)
    echo "=== [lint] tools/lint.sh ==="
    bash tools/lint.sh
    echo "=== [lint] OK ===" ;;&
  faultfx|all)
    run_config faultfx build-faultfx -DVCD_FAULTFX=ON \
      -DVCD_BUILD_BENCH=OFF -DVCD_BUILD_EXAMPLES=OFF ;;&
  obs|all)
    run_config obs build-obs -DVCD_OBS=OFF \
      -DVCD_BUILD_BENCH=OFF -DVCD_BUILD_EXAMPLES=OFF ;;&
  kernels)
    # Not part of `all`: the forced-ISA sweep re-runs the whole suite once
    # per backend, which triples-to-quadruples runtime. CI runs the cheap
    # levels as a matrix job; run this leg locally after kernel changes.
    run_config kernels-build build
    for isa in $(./build/tools/vcdctl kernels \
                   | awk 'NR > 1 && $3 == "yes" { print $1 }'); do
      echo "=== [kernels] ctest with VCD_KERNEL_ISA=$isa ==="
      (cd build && VCD_KERNEL_ISA="$isa" ctest --output-on-failure -j "$JOBS")
      echo "=== [kernels] $isa OK ==="
    done ;;&
  faultfx-tsan)
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      run_config faultfx-tsan build-faultfx-tsan -DVCD_FAULTFX=ON \
        -DVCD_SANITIZE=thread -DVCD_DEADLOCK_CHECK=ON \
        -DVCD_BUILD_BENCH=OFF -DVCD_BUILD_EXAMPLES=OFF ;;&
  faultfx-asan)
    ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
      run_config faultfx-asan build-faultfx-asan -DVCD_FAULTFX=ON \
        -DVCD_SANITIZE=address -DVCD_DEADLOCK_CHECK=ON \
        -DVCD_BUILD_BENCH=OFF -DVCD_BUILD_EXAMPLES=OFF ;;&
  overload-soak)
    # Not part of `all`: CI's dedicated overload job. One faultfx+TSan pass
    # of the full suite already runs in the fault-matrix job; this leg
    # instead re-runs the QoS governor/executor tests — including the
    # seeded 2x-overload soak with its mid-Degraded checkpoint/restore —
    # many times under ThreadSanitizer. The governor's sense → transition →
    # apply path is schedule-dependent, and one lucky interleaving proves
    # nothing.
    echo "=== [overload-soak] configure ==="
    cmake -B build-faultfx-tsan -S . -DVCD_FAULTFX=ON \
      -DVCD_SANITIZE=thread -DVCD_DEADLOCK_CHECK=ON \
      -DVCD_BUILD_BENCH=OFF -DVCD_BUILD_EXAMPLES=OFF
    echo "=== [overload-soak] build ==="
    cmake --build build-faultfx-tsan -j "$JOBS"
    echo "=== [overload-soak] ctest x${SOAK_REPEATS:-10} ==="
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      ctest --test-dir build-faultfx-tsan --output-on-failure -j "$JOBS" \
        -R '^(GovernorTest|QosExecutorTest)\.' \
        --repeat "until-fail:${SOAK_REPEATS:-10}"
    echo "=== [overload-soak] OK ===" ;;&
  plain|tsan|asan|ubsan|lint|faultfx|obs|kernels|faultfx-tsan|faultfx-asan|overload-soak|all) ;;
  *) echo "unknown matrix entry: $MATRIX" \
     "(want plain|tsan|asan|ubsan|lint|faultfx|obs|kernels|faultfx-tsan|faultfx-asan|overload-soak|all)" >&2
     exit 2 ;;
esac
