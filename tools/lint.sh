#!/usr/bin/env bash
# Project lint: clang-tidy + clang-format + grep-based project rules.
#
# Usage:
#   tools/lint.sh            # run every available leg
#   tools/lint.sh grep       # just the (always-available) project grep lint
#   tools/lint.sh tidy       # just clang-tidy
#   tools/lint.sh format     # just the clang-format check
#
# clang-tidy and clang-format are optional: legs whose tool is absent are
# skipped with a notice (this container ships GCC only). The grep lint and
# the thread-safety negative-compile probe need no LLVM tools and always run.
# Override tool discovery with CLANG_TIDY=/path and CLANG_FORMAT=/path.
# LINT_REQUIRE_TOOLS=1 turns a missing tool into a failure instead of a
# skip — CI sets this so the tidy/format legs can never silently self-skip.
set -uo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
LEG="${1:-all}"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
FAILED=0

# Find a tool by env override, bare name, versioned names, or LLVM prefixes.
find_tool() {
  local envval="$1" name="$2"
  if [ -n "$envval" ]; then echo "$envval"; return; fi
  local cand
  for cand in "$name" "$name-18" "$name-17" "$name-16" "$name-15" "$name-14"; do
    if command -v "$cand" >/dev/null 2>&1; then echo "$cand"; return; fi
  done
  for cand in /usr/lib/llvm-*/bin/"$name"; do
    if [ -x "$cand" ]; then echo "$cand"; return; fi
  done
  echo ""
}

# Library + tool sources; tests get the format check but lighter grep rules.
lib_sources() {
  find src tools bench -name '*.cc' -o -name '*.h' | sort
}
all_sources() {
  find src tools bench tests -name '*.cc' -o -name '*.h' | sort
}

run_grep_lint() {
  echo "=== [lint:grep] project rules ==="
  local bad

  # Rule 1: no raw new/delete in library code — ownership goes through
  # std::unique_ptr / containers. The factory idiom
  # `std::unique_ptr<T>(new T(...))` (private ctor, make_unique can't reach)
  # is allowed when the wrap is on the same line; anything else needs an
  # explicit `NOLINT(vcd-raw-new)`.
  bad=$(grep -nE '(^|[^[:alnum:]_])(new|delete)[[:space:]]+[A-Za-z_]' \
        $(find src -name '*.cc' -o -name '*.h') \
        | grep -vE '//.*(new|delete)' | grep -vE 'placement new' \
        | grep -vE '(unique_ptr|shared_ptr)<[^>]*>\(new ' \
        | grep -vE 'NOLINT\(vcd-raw-new\)' || true)
  if [ -n "$bad" ]; then
    echo "FAIL: raw new/delete in library code (use unique_ptr/containers):"
    echo "$bad"
    FAILED=1
  fi

  # Rule 2: no naked std::thread outside src/parallel/ — all concurrency
  # flows through StreamExecutor. `std::thread::hardware_concurrency()` is
  # fine anywhere, hence the [^:] after the type name.
  bad=$(grep -nE 'std::thread[^:]' \
        $(find src -path src/parallel -prune -o \( -name '*.cc' -o -name '*.h' \) -print) \
        | grep -vE '//' || true)
  if [ -n "$bad" ]; then
    echo "FAIL: naked std::thread outside src/parallel/:"
    echo "$bad"
    FAILED=1
  fi

  # Rule 3: no std::cout in library code — the library reports through
  # Status and vcd::Log*; stdout belongs to the tools/ binaries.
  bad=$(grep -nE 'std::cout' $(find src -name '*.cc' -o -name '*.h') || true)
  if [ -n "$bad" ]; then
    echo "FAIL: std::cout in library code (use logging or return data):"
    echo "$bad"
    FAILED=1
  fi

  # Rule 4: the per-window hot path (src/core/, src/stream/) must not grow
  # new owning signature/sketch objects — candidate state lives in
  # SignaturePool/SketchPool slabs and is referenced by handle. Flags
  # `new BitSignature` and by-value BitSignature/Sketch declarations;
  # legitimate owners (per-query records, reused scratch buffers, the
  # scalar reference path) carry `NOLINT(vcd-pooled-hotpath)` with a reason
  # on the same or preceding line.
  bad=$(grep -nE '(sketch::)?(BitSignature|Sketch)[[:space:]]+[A-Za-z_]+[[:space:]]*[;={]|new[[:space:]]+(sketch::)?BitSignature' \
        $(find src/core src/stream -name '*.cc' -o -name '*.h') \
        | grep -vE '//.*(BitSignature|Sketch)' \
        | grep -vE 'NOLINT\(vcd-pooled-hotpath\)' || true)
  if [ -n "$bad" ]; then
    while IFS= read -r hit; do
      local file line
      file="${hit%%:*}"
      line="${hit#*:}"; line="${line%%:*}"
      if [ "$line" -gt 1 ] && sed -n "$((line - 1))p" "$file" \
           | grep -qE 'NOLINT\(vcd-pooled-hotpath\)'; then
        continue
      fi
      if [ -z "${rule4_failed:-}" ]; then
        echo "FAIL: owning BitSignature/Sketch on the pooled hot path" \
             "(use SignaturePool/SketchPool handles, or annotate" \
             "NOLINT(vcd-pooled-hotpath) with a reason):"
        rule4_failed=1
        FAILED=1
      fi
      echo "$hit"
    done <<< "$bad"
  fi


  # Rule 5: no process-killing calls in library code — corrupted *input* is
  # a Status (kCorruption), never a crash; only the VCD_CHECK failure path in
  # src/util/check.{h,cc} may abort on broken *invariants*. Annotate a
  # deliberate exception with `NOLINT(vcd-no-abort)` and a reason.
  bad=$(grep -nE '(^|[^[:alnum:]_:.])(std::)?(abort|exit|_Exit|quick_exit)[[:space:]]*\(' \
        $(find src \( -path src/util/check.h -o -path src/util/check.cc \) \
          -prune -o \( -name '*.cc' -o -name '*.h' \) -print) \
        | grep -vE '//.*(abort|exit)' \
        | grep -vE 'NOLINT\(vcd-no-abort\)' || true)
  if [ -n "$bad" ]; then
    echo "FAIL: abort()/exit() in library code (return a Status; only" \
         "src/util/check.{h,cc} may abort, or annotate NOLINT(vcd-no-abort)):"
    echo "$bad"
    FAILED=1
  fi

  # Rule 6 (vcd-obs-naming): metric names registered from library/tool/bench
  # code follow the DESIGN.md §13 scheme — `vcd_[a-z0-9_]+`, counters end in
  # `_total`, histograms end in a unit suffix (_ns|_us|_seconds|_bytes).
  # The registry itself (src/obs/metrics.{h,cc}) is excluded: it declares the
  # Register* API rather than calling it. Annotate a deliberate exception
  # with `NOLINT(vcd-obs-naming)` on the registering line.
  bad=$(awk '
    /NOLINT\(vcd-obs-naming\)/ { pending = ""; next }
    /Register(Counter|Gauge|Histogram)[ \t]*\(/ {
      pending = "counter"
      if (index($0, "RegisterGauge")) pending = "gauge"
      else if (index($0, "RegisterHistogram")) pending = "histogram"
      pline = FNR; pfile = FILENAME; buf = $0
    }
    pending != "" {
      if (FNR > pline || FILENAME != pfile) buf = buf $0
      if (buf ~ /"/) {
        name = buf
        sub(/^[^"]*"/, "", name); sub(/".*$/, "", name)
        ok = (name ~ /^vcd_[a-z0-9_]+$/)
        if (pending == "counter" && name !~ /_total$/) ok = 0
        if (pending == "histogram" && name !~ /(_ns|_us|_seconds|_bytes)$/) ok = 0
        if (!ok) {
          printf "%s:%d: %s name \"%s\" violates vcd-obs-naming\n", \
                 pfile, pline, pending, name
          fail = 1
        }
        pending = ""
      } else if (FNR - pline > 2 || FILENAME != pfile) {
        pending = ""
      }
    }
    END { exit fail }
  ' $(find src tools bench \
        \( -path src/obs/metrics.h -o -path src/obs/metrics.cc \) -prune \
        -o \( -name '*.cc' -o -name '*.h' \) -print) || true)
  if [ -n "$bad" ]; then
    echo "FAIL: metric names off the vcd_<subsystem>_<name>[_unit] scheme" \
         "(counters end _total; histograms end _ns/_us/_seconds/_bytes):"
    echo "$bad"
    FAILED=1
  fi

  # Rule 7 (vcd-annotated-mutex): no raw std synchronization primitives in
  # library code — locking goes through vcd::Mutex/MutexLock/CondVar
  # (src/util/mutex.h), which carry the TSA annotations and the runtime
  # deadlock checker (DESIGN.md §14). Only mutex.h itself may name the std
  # types (it wraps them). Annotate a deliberate exception with
  # `NOLINT(vcd-annotated-mutex)` and a reason.
  bad=$(grep -nE 'std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|unique_lock|scoped_lock|condition_variable)' \
        $(find src -path src/util/mutex.h -prune -o \( -name '*.cc' -o -name '*.h' \) -print) \
        | grep -vE '^[^:]*:[0-9]+:[[:space:]]*(//|\*|///)' \
        | grep -vE 'NOLINT\(vcd-annotated-mutex\)' || true)
  if [ -n "$bad" ]; then
    echo "FAIL: raw std:: synchronization primitive outside src/util/mutex.h" \
         "(use vcd::Mutex/MutexLock/CondVar, or annotate" \
         "NOLINT(vcd-annotated-mutex) with a reason):"
    echo "$bad"
    FAILED=1
  fi

  # Rule 8 (vcd-lock-rank): every vcd::Mutex declared in library code names
  # its LockRank (and a human-readable name), so the runtime deadlock
  # checker can order it. A bare `Mutex mu_;` silently defaults to kLeaf,
  # which hides it from hierarchy review. The brace-init may wrap to the
  # next line (VCD_ACQUIRED_AFTER between name and initializer). Annotate a
  # deliberate exception with `NOLINT(vcd-lock-rank)` on the same or
  # preceding line.
  bad=$(awk '
    /NOLINT\(vcd-lock-rank\)/ { skip_next = 1; next }
    pending {
      if ($0 !~ /LockRank::k/) {
        printf "%s:%d: vcd::Mutex declared without a LockRank\n", pfile, pline
        fail = 1
      }
      pending = 0
    }
    /(^|[ \t])Mutex[ \t]+[A-Za-z_]+/ && !/MutexLock|Mutex[ \t]*&|class[ \t]/ \
      && !/^[ \t]*(\/\/|\*|\/\/\/)/ {
      if (skip_next) { skip_next = 0; next }
      if ($0 ~ /LockRank::k/) next
      # Initializer may continue on the following line.
      pending = 1; pline = FNR; pfile = FILENAME
      next
    }
    { skip_next = 0 }
    END {
      if (pending) {
        printf "%s:%d: vcd::Mutex declared without a LockRank\n", pfile, pline
        fail = 1
      }
      exit fail
    }
  ' $(find src -path src/util/mutex.h -prune \
        -o \( -name '*.cc' -o -name '*.h' \) -print) || true)
  if [ -n "$bad" ]; then
    echo "FAIL: vcd::Mutex declaration without a named LockRank (rank every" \
         "lock per src/util/lock_rank.h, or annotate NOLINT(vcd-lock-rank)):"
    echo "$bad"
    FAILED=1
  fi

  # Rule 9 (vcd-simd-guard): raw SIMD intrinsics live ONLY under
  # src/sketch/kernels/ — everything else goes through the KernelOps
  # dispatch table (DESIGN.md §15), so ISA assumptions can't leak into code
  # that runs on every machine. Flags intrinsic headers (immintrin & co.)
  # and _mm/_mm256/_mm512/NEON vq* calls. Annotate a deliberate exception
  # with `NOLINT(vcd-simd-guard)` and a reason.
  bad=$(grep -nE '#[[:space:]]*include[[:space:]]*<(immintrin|x86intrin|emmintrin|smmintrin|tmmintrin|nmmintrin|wmmintrin|avxintrin|arm_neon)\.h>|(^|[^[:alnum:]_])_mm(256|512)?_[a-z0-9_]+[[:space:]]*\(' \
        $(find src tools bench \
            -path src/sketch/kernels -prune \
            -o \( -name '*.cc' -o -name '*.h' \) -print) \
        | grep -vE '^[^:]*:[0-9]+:[[:space:]]*(//|\*|///)' \
        | grep -vE 'NOLINT\(vcd-simd-guard\)' || true)
  if [ -n "$bad" ]; then
    echo "FAIL: raw SIMD intrinsics outside src/sketch/kernels/ (dispatch" \
         "through kernels::KernelOps, or annotate NOLINT(vcd-simd-guard)):"
    echo "$bad"
    FAILED=1
  fi

  echo "=== [lint:grep] done ==="
}

run_tidy() {
  local tidy
  tidy=$(find_tool "${CLANG_TIDY:-}" clang-tidy)
  if [ -z "$tidy" ]; then
    if [ "${LINT_REQUIRE_TOOLS:-0}" = "1" ]; then
      echo "=== [lint:tidy] FAIL: clang-tidy not found and LINT_REQUIRE_TOOLS=1 ==="
      FAILED=1
      return
    fi
    echo "=== [lint:tidy] SKIPPED: clang-tidy not found (set CLANG_TIDY=...) ==="
    return
  fi
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "=== [lint:tidy] configuring $BUILD_DIR for compile_commands.json ==="
    cmake -B "$BUILD_DIR" -S . >/dev/null
  fi
  echo "=== [lint:tidy] $tidy over src/ tools/ bench/ tests/ ==="
  local rc=0
  # xargs -P parallelises across TUs; clang-tidy reads .clang-tidy itself.
  find src tools bench tests -name '*.cc' | sort \
    | xargs -P "$JOBS" -n 4 "$tidy" -p "$BUILD_DIR" --quiet || rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL: clang-tidy reported errors"
    FAILED=1
  fi
  echo "=== [lint:tidy] done ==="
}

run_format() {
  local fmt
  fmt=$(find_tool "${CLANG_FORMAT:-}" clang-format)
  if [ -z "$fmt" ]; then
    if [ "${LINT_REQUIRE_TOOLS:-0}" = "1" ]; then
      echo "=== [lint:format] FAIL: clang-format not found and LINT_REQUIRE_TOOLS=1 ==="
      FAILED=1
      return
    fi
    echo "=== [lint:format] SKIPPED: clang-format not found (set CLANG_FORMAT=...) ==="
    return
  fi
  echo "=== [lint:format] $fmt --dry-run ==="
  local rc=0
  all_sources | xargs "$fmt" --dry-run -Werror || rc=$?
  if [ $rc -ne 0 ]; then
    echo "FAIL: formatting drift — run: $(all_sources | head -1 >/dev/null; echo "$fmt -i \$(git ls-files '*.cc' '*.h')")"
    FAILED=1
  fi
  echo "=== [lint:format] done ==="
}

case "$LEG" in
  grep) run_grep_lint ;;
  tidy) run_tidy ;;
  format) run_format ;;
  all)
    run_grep_lint
    run_tidy
    run_format
    ;;
  *) echo "unknown lint leg: $LEG (want grep|tidy|format|all)" >&2; exit 2 ;;
esac

if [ "$FAILED" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
