/// \file vcdctl.cc
/// Command-line front end to the vcdstream library: generate synthetic
/// video, encode/decode/inspect VCDS bit streams, fingerprint, detect shot
/// cuts, build query databases, and run copy detection over stream files.
///
/// Usage:
///   vcdctl generate --seed N --seconds S --out clip.y4m [--fps F --w W --h H]
///   vcdctl encode in.y4m out.vcds [--quantizer Q --gop G --fps F]
///   vcdctl decode in.vcds out.y4m
///   vcdctl info in.vcds
///   vcdctl fingerprint in.vcds [--d D --u U]
///   vcdctl shots in.vcds
///   vcdctl build-queries out.vcdq id1=a.vcds [id2=b.vcds ...] [--k K]
///   vcdctl monitor queries.vcdq stream1.vcds [stream2.vcds ...]
///           [--delta D --window W --threads N --queue C --backpressure block|drop]
///           [--on-corruption skip|quarantine|fail --watchdog-ms N]
///           [--metrics-out FILE --metrics-interval-ms N]
///           [--kernel scalar|popcnt|avx2|avx512|neon]
///           [--checkpoint-dir DIR --checkpoint-interval-ms N --restore]
///           [--throttle-ms N]
///           [--qos --qos-tick-ms N --push-deadline-ms N]
///           [--priority-map IDX=high|normal|low[,...]]
///           [--degrade-policy probe=N,cap=N,nogeo]
///   vcdctl metrics [--format=json|prom]
///   vcdctl kernels

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpointer.h"
#include "core/monitor.h"
#include "core/query_store.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "parallel/executor.h"
#include "sketch/kernels/kernels.h"
#include "features/fingerprint.h"
#include "video/codec.h"
#include "video/partial_decoder.h"
#include "video/scene_model.h"
#include "video/shot_detector.h"
#include "video/synthetic.h"
#include "video/y4m.h"

using namespace vcd;

namespace {

/// Parsed --key value options plus positional arguments.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  static Args Parse(int argc, char** argv, int first) {
    Args a;
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        std::string key = argv[i] + 2;
        std::string value = "1";
        const size_t eq = key.find('=');
        if (eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          value = argv[++i];
        }
        a.options[key] = value;
      } else {
        a.positional.push_back(argv[i]);
      }
    }
    return a;
  }

  double Num(const std::string& key, double def) const {
    auto it = options.find(key);
    return it == options.end() ? def : std::atof(it->second.c_str());
  }
  std::string Str(const std::string& key, const std::string& def) const {
    auto it = options.find(key);
    return it == options.end() ? def : it->second;
  }
};

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(len > 0 ? len : 0));
  const size_t n = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) return Status::Internal("short read from " + path);
  return bytes;
}

Status WriteFile(const std::vector<uint8_t>& bytes, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + path + " for writing");
  const size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) return Status::Internal("short write to " + path);
  return Status::OK();
}

int CmdGenerate(const Args& a) {
  const std::string out = a.Str("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate requires --out\n");
    return 2;
  }
  const double seconds = a.Num("seconds", 10.0);
  video::SceneModel model = video::SceneModel::Generate(
      static_cast<uint64_t>(a.Num("seed", 1)), seconds + 1.0);
  video::RenderOptions ro;
  ro.width = static_cast<int>(a.Num("w", 352));
  ro.height = static_cast<int>(a.Num("h", 240));
  ro.fps = a.Num("fps", 29.97);
  auto clip = video::RenderVideo(model, 0.0, seconds, ro);
  if (!clip.ok()) return Fail(clip.status());
  if (Status st = video::WriteY4mFile(*clip, out); !st.ok()) return Fail(st);
  std::printf("wrote %zu frames (%dx%d @ %.2f fps) to %s\n", clip->frames.size(),
              ro.width, ro.height, ro.fps, out.c_str());
  return 0;
}

int CmdEncode(const Args& a) {
  if (a.positional.size() != 2) {
    std::fprintf(stderr, "usage: vcdctl encode in.y4m out.vcds\n");
    return 2;
  }
  auto clip = video::ReadY4mFile(a.positional[0]);
  if (!clip.ok()) return Fail(clip.status());
  video::CodecParams p;
  p.width = clip->frames.empty() ? 0 : clip->frames[0].width();
  p.height = clip->frames.empty() ? 0 : clip->frames[0].height();
  p.fps = a.Num("fps", clip->fps);
  p.gop_size = static_cast<int>(a.Num("gop", 12));
  p.quantizer = static_cast<int>(a.Num("quantizer", 4));
  auto bytes = video::Encoder::EncodeVideo(*clip, p);
  if (!bytes.ok()) return Fail(bytes.status());
  if (Status st = WriteFile(*bytes, a.positional[1]); !st.ok()) return Fail(st);
  std::printf("encoded %zu frames -> %.1f KB (%s)\n", clip->frames.size(),
              static_cast<double>(bytes->size()) / 1024.0, a.positional[1].c_str());
  return 0;
}

int CmdDecode(const Args& a) {
  if (a.positional.size() != 2) {
    std::fprintf(stderr, "usage: vcdctl decode in.vcds out.y4m\n");
    return 2;
  }
  auto bytes = ReadFile(a.positional[0]);
  if (!bytes.ok()) return Fail(bytes.status());
  auto clip = video::Decoder::DecodeVideo(*bytes);
  if (!clip.ok()) return Fail(clip.status());
  if (Status st = video::WriteY4mFile(*clip, a.positional[1]); !st.ok()) {
    return Fail(st);
  }
  std::printf("decoded %zu frames to %s\n", clip->frames.size(),
              a.positional[1].c_str());
  return 0;
}

int CmdInfo(const Args& a) {
  if (a.positional.size() != 1) {
    std::fprintf(stderr, "usage: vcdctl info in.vcds\n");
    return 2;
  }
  auto bytes = ReadFile(a.positional[0]);
  if (!bytes.ok()) return Fail(bytes.status());
  video::PartialDecoder pd;
  if (Status st = pd.Open(bytes->data(), bytes->size()); !st.ok()) return Fail(st);
  const auto& h = pd.header();
  int key_frames = 0;
  video::DcFrame f;
  int64_t last_index = -1;
  while (pd.NextKeyFrame(&f).ok()) {
    ++key_frames;
    last_index = f.frame_index;
  }
  std::printf("%s: %dx%d @ %.3f fps, GOP %d, quantizer %d\n",
              a.positional[0].c_str(), h.width, h.height, h.fps, h.gop_size,
              h.quantizer);
  std::printf("  %.1f KB, %d key frames, ~%lld frames (%.1f s)\n",
              static_cast<double>(bytes->size()) / 1024.0, key_frames,
              static_cast<long long>(last_index + h.gop_size),
              h.fps > 0 ? static_cast<double>(last_index + h.gop_size) / h.fps : 0.0);
  return 0;
}

int CmdFingerprint(const Args& a) {
  if (a.positional.size() != 1) {
    std::fprintf(stderr, "usage: vcdctl fingerprint in.vcds\n");
    return 2;
  }
  auto bytes = ReadFile(a.positional[0]);
  if (!bytes.ok()) return Fail(bytes.status());
  auto frames = video::PartialDecoder::ExtractAll(*bytes);
  if (!frames.ok()) return Fail(frames.status());
  features::FingerprintOptions opts;
  opts.feature.d = static_cast<int>(a.Num("d", 5));
  opts.u = static_cast<int>(a.Num("u", 4));
  auto fp = features::FrameFingerprinter::Create(opts);
  if (!fp.ok()) return Fail(fp.status());
  for (const auto& frame : *frames) {
    std::printf("%8.2fs  frame %-8lld cell %u\n", frame.timestamp,
                static_cast<long long>(frame.frame_index), fp->Fingerprint(frame));
  }
  return 0;
}

int CmdShots(const Args& a) {
  if (a.positional.size() != 1) {
    std::fprintf(stderr, "usage: vcdctl shots in.vcds\n");
    return 2;
  }
  auto bytes = ReadFile(a.positional[0]);
  if (!bytes.ok()) return Fail(bytes.status());
  auto frames = video::PartialDecoder::ExtractAll(*bytes);
  if (!frames.ok()) return Fail(frames.status());
  auto det = video::ShotDetector::Create();
  if (!det.ok()) return Fail(det.status());
  for (const auto& frame : *frames) det->ProcessKeyFrame(frame);
  det->Finish();
  for (size_t i = 0; i < det->shots().size(); ++i) {
    const auto& s = det->shots()[i];
    std::printf("shot %2zu: %7.2fs - %7.2fs (key frames %lld..%lld)\n", i + 1,
                s.begin_time, s.end_time, static_cast<long long>(s.begin_key_frame),
                static_cast<long long>(s.end_key_frame));
  }
  return 0;
}

int CmdBuildQueries(const Args& a) {
  if (a.positional.size() < 2) {
    std::fprintf(stderr, "usage: vcdctl build-queries out.vcdq id=clip.vcds ...\n");
    return 2;
  }
  core::DetectorConfig config;
  config.K = static_cast<int>(a.Num("k", 800));
  auto det = core::CopyDetector::Create(config);
  if (!det.ok()) return Fail(det.status());
  for (size_t i = 1; i < a.positional.size(); ++i) {
    const std::string& spec = a.positional[i];
    const size_t eq = spec.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "expected id=path, got %s\n", spec.c_str());
      return 2;
    }
    const int id = std::atoi(spec.substr(0, eq).c_str());
    auto bytes = ReadFile(spec.substr(eq + 1));
    if (!bytes.ok()) return Fail(bytes.status());
    auto frames = video::PartialDecoder::ExtractAll(*bytes);
    if (!frames.ok()) return Fail(frames.status());
    if (Status st = (*det)->AddQuery(id, *frames); !st.ok()) return Fail(st);
  }
  core::QueryDb db;
  db.k = config.K;
  db.hash_seed = config.hash_seed;
  for (auto& [id, len, dur, sk] : (*det)->ExportQueries()) {
    db.queries.push_back(core::StoredQuery{id, len, dur, std::move(sk)});
  }
  if (Status st = core::SaveQueriesFile(db, a.positional[0]); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %zu queries (K=%d) to %s\n", db.queries.size(), db.k,
              a.positional[0].c_str());
  return 0;
}

/// Renders the process-global registry (faultfx gauges synced first) in
/// \p format and writes it to \p path, or to stdout when \p path is empty
/// or "-". The file is rewritten whole on every call, so a periodic dump
/// always leaves a complete document behind.
Status DumpMetrics(const std::string& format, const std::string& path) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::SyncFaultfxMetrics(&reg);
  obs::SyncKernelMetrics(&reg);
  const std::string text =
      format == "prom" ? reg.ToPrometheusText() : reg.ToJson();
  if (path.empty() || path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return Status::OK();
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (n != text.size()) return Status::Internal("short write to " + path);
  return Status::OK();
}

void MetricsUsage() {
  std::fprintf(stderr, "usage: vcdctl metrics [--format=json|prom]\n");
}

int CmdMetrics(const Args& a) {
  const std::string format = a.Str("format", "json");
  if (format != "json" && format != "prom") {
    std::fprintf(stderr, "error: --format must be json or prom (got %s)\n",
                 format.c_str());
    MetricsUsage();
    return 2;
  }
  if (Status st = DumpMetrics(format, a.Str("out", "")); !st.ok()) {
    return Fail(st);
  }
  return 0;
}

void PrintMatches(const std::vector<core::StreamMatch>& matches) {
  for (const core::StreamMatch& m : matches) {
    std::printf("MATCH query %d on %s at t=[%.1f, %.1f]s sim=%.3f\n",
                m.match.query_id, m.stream_name.c_str(), m.match.start_time,
                m.match.end_time, m.match.similarity);
  }
  std::printf("%zu matches total\n", matches.size());
}

/// Set by SIGTERM/SIGINT: the monitor loops stop intake at the next frame
/// boundary, take a final checkpoint (when a checkpoint dir is configured),
/// flush metrics and exit 0 — without flushing trailing windows, so a later
/// --restore continues the interrupted streams mid-window.
volatile std::sig_atomic_t g_drain_requested = 0;

void OnDrainSignal(int /*signo*/) { g_drain_requested = 1; }

/// Checkpoint/restore options of `vcdctl monitor` (validated before any
/// file I/O in CmdMonitor).
struct CkptOptions {
  std::string dir;       ///< empty = checkpointing disabled
  int interval_ms = 0;   ///< 0 = only the final/drain checkpoint
  bool restore = false;  ///< resume from the latest snapshot in dir
  int throttle_ms = 0;   ///< per-cycle sleep (crash-recovery harness aid)
};

/// One monitored input file's driver position (mirrors
/// ckpt::DriverFileState so a snapshot can resume the feed loop exactly).
struct DriverPos {
  std::string path;
  int64_t frames_fed = 0;
  bool done = false;
  int stream_id = 0;
};

std::vector<ckpt::DriverFileState> ToDriverSection(
    const std::vector<DriverPos>& pos) {
  std::vector<ckpt::DriverFileState> out;
  out.reserve(pos.size());
  for (const DriverPos& p : pos) {
    out.push_back(ckpt::DriverFileState{p.path, p.frames_fed, p.done,
                                        p.stream_id});
  }
  return out;
}

/// Parses a --priority-map spec `IDX=CLASS[,IDX=CLASS...]`, where IDX is
/// the 1-based position of a stream file on the command line and CLASS is
/// high|normal|low. Files not named default to normal. InvalidArgument on
/// malformed entries, unknown classes, or indices outside [1, num_files].
Status ParsePriorityMap(const std::string& spec, size_t num_files,
                        std::map<size_t, qos::Priority>* out) {
  if (spec.empty()) return Status::OK();
  size_t start = 0;
  for (;;) {
    size_t end = spec.find(',', start);
    const bool last = end == std::string::npos;
    if (last) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return Status::InvalidArgument("--priority-map entry '" + entry +
                                     "' is not IDX=high|normal|low");
    }
    const std::string idx_str = entry.substr(0, eq);
    const std::string cls = entry.substr(eq + 1);
    char* endp = nullptr;
    const long idx = std::strtol(idx_str.c_str(), &endp, 10);
    if (endp == idx_str.c_str() || *endp != '\0' || idx < 1 ||
        static_cast<size_t>(idx) > num_files) {
      return Status::InvalidArgument(
          "--priority-map index '" + idx_str + "' out of range (1.." +
          std::to_string(num_files) + ")");
    }
    qos::Priority p;
    if (!qos::ParsePriority(cls.c_str(), &p)) {
      return Status::InvalidArgument("--priority-map class '" + cls +
                                     "' must be high, normal or low");
    }
    (*out)[static_cast<size_t>(idx)] = p;
    if (last) break;
    start = end + 1;
  }
  return Status::OK();
}

/// Parses a --degrade-policy spec, a comma list of `probe=N` (combine only
/// every Nth basic window), `cap=N` (per-stream candidate-window cap) and
/// `nogeo` (disable the Geometric combination order while degraded).
Status ParseDegradePolicy(const std::string& spec, qos::DegradeKnobs* out) {
  if (spec.empty()) return Status::OK();
  size_t start = 0;
  for (;;) {
    size_t end = spec.find(',', start);
    const bool last = end == std::string::npos;
    if (last) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    const size_t eq = entry.find('=');
    if (entry == "nogeo") {
      out->disable_geometric = true;
    } else if (eq != std::string::npos && eq > 0 && eq + 1 < entry.size()) {
      const std::string key = entry.substr(0, eq);
      const std::string val = entry.substr(eq + 1);
      char* endp = nullptr;
      const long n = std::strtol(val.c_str(), &endp, 10);
      if (endp == val.c_str() || *endp != '\0') {
        return Status::InvalidArgument("--degrade-policy value '" + val +
                                       "' is not an integer");
      }
      if (key == "probe") {
        if (n < 1) {
          return Status::InvalidArgument("--degrade-policy probe must be >= 1");
        }
        out->probe_every_n = static_cast<int>(n);
      } else if (key == "cap") {
        if (n < 0) {
          return Status::InvalidArgument("--degrade-policy cap must be >= 0");
        }
        out->max_candidate_windows = static_cast<int>(n);
      } else {
        return Status::InvalidArgument("--degrade-policy key '" + key +
                                       "' is not probe, cap or nogeo");
      }
    } else {
      return Status::InvalidArgument("--degrade-policy entry '" + entry +
                                     "' is not probe=N, cap=N or nogeo");
    }
    if (last) break;
    start = end + 1;
  }
  return Status::OK();
}

/// Builds the governor config from already-validated monitor flags. With
/// --qos but no --degrade-policy, Degraded mode defaults to probing every
/// 2nd window with the Geometric order off.
qos::QosConfig BuildQosConfig(const Args& a) {
  qos::QosConfig qc;
  qc.enabled = a.options.count("qos") > 0;
  qc.tick_ms = static_cast<int>(a.Num("qos-tick-ms", 50));
  const std::string dp = a.Str("degrade-policy", "");
  if (dp.empty()) {
    qc.degrade.probe_every_n = 2;
    qc.degrade.disable_geometric = true;
  } else {
    (void)ParseDegradePolicy(dp, &qc.degrade);  // validated in CmdMonitor
  }
  return qc;
}

/// Validates a restored snapshot against this invocation: detector
/// parameters, the query db named on the command line, and the stream file
/// list must all agree with the checkpointed run.
Status CheckRestoredState(const ckpt::SnapshotState& state,
                          const core::DetectorConfig& config,
                          const core::QueryDb& positional_db,
                          const std::vector<DriverPos>& pos) {
  VCD_RETURN_IF_ERROR(ckpt::CheckMeta(state, config));
  if (positional_db.k != state.k ||
      positional_db.hash_seed != state.hash_seed) {
    return Status::FailedPrecondition(
        "query db on the command line uses a different hash family than the "
        "snapshot");
  }
  if (state.driver.empty()) {
    return Status::FailedPrecondition(
        "snapshot carries no driver state (not written by vcdctl monitor?)");
  }
  if (state.driver.size() != pos.size()) {
    return Status::FailedPrecondition(
        "snapshot was taken over " + std::to_string(state.driver.size()) +
        " stream files but " + std::to_string(pos.size()) + " were given");
  }
  for (size_t i = 0; i < pos.size(); ++i) {
    if (state.driver[i].path != pos[i].path) {
      return Status::FailedPrecondition(
          "stream file " + std::to_string(i + 1) + " is " + pos[i].path +
          " but the snapshot recorded " + state.driver[i].path);
    }
  }
  return Status::OK();
}

/// Loads the restore snapshot and applies its driver positions to \p pos.
Result<ckpt::SnapshotState> LoadRestoreState(
    ckpt::Checkpointer* ckpt, const core::DetectorConfig& config,
    const core::QueryDb& positional_db, std::vector<DriverPos>* pos) {
  auto state = ckpt->LoadLatest();
  if (!state.ok()) return state.status();
  VCD_RETURN_IF_ERROR(CheckRestoredState(*state, config, positional_db, *pos));
  for (size_t i = 0; i < pos->size(); ++i) {
    (*pos)[i].frames_fed = state->driver[i].frames_fed;
    (*pos)[i].done = state->driver[i].done;
    (*pos)[i].stream_id = state->driver[i].stream_id;
  }
  return state;
}

/// Advances \p pd past the \p n key frames a restored run already consumed.
Status SkipKeyFrames(video::PartialDecoder* pd, int64_t n,
                     const std::string& path) {
  video::DcFrame f;
  for (int64_t i = 0; i < n; ++i) {
    if (Status st = pd->NextKeyFrame(&f); !st.ok()) {
      return Status::FailedPrecondition(
          path + ": ran out of key frames replaying to the checkpoint "
                 "position (file changed since the snapshot?): " +
          st.ToString());
    }
  }
  return Status::OK();
}

/// Parallel path of `vcdctl monitor`: streams are opened on the sharded
/// executor and fed round-robin (the arrival pattern of concurrent live
/// feeds), so different files progress on different worker threads.
///
/// Checkpoints are taken only at the TOP of a round-robin cycle, so every
/// live file has fed the same number of frames and a resumed run repeats
/// the exact submission interleaving (and hence sequence numbering) the
/// uninterrupted run would have used — the property the byte-identical
/// match-output guarantee rests on.
int MonitorParallel(const Args& a, const core::DetectorConfig& config,
                    const core::QueryDb& db,
                    const std::vector<uint8_t>& db_bytes,
                    const CkptOptions& copt, int threads) {
  core::ParallelConfig pc;
  pc.num_threads = threads;
  pc.queue_capacity = static_cast<int>(a.Num("queue", 256));
  const std::string bp = a.Str("backpressure", "block");
  if (bp == "drop") {
    pc.backpressure = core::BackpressurePolicy::kDropNewest;
  } else if (bp == "block") {
    pc.backpressure = core::BackpressurePolicy::kBlock;
  } else {
    std::fprintf(stderr, "error: --backpressure must be block or drop (got %s)\n",
                 bp.c_str());
    return 2;
  }
  const std::string oc = a.Str("on-corruption", "skip");
  if (oc == "quarantine") {
    pc.on_corruption = core::CorruptionPolicy::kQuarantine;
  } else if (oc == "fail") {
    pc.on_corruption = core::CorruptionPolicy::kFail;
  } else {
    pc.on_corruption = core::CorruptionPolicy::kSkip;
  }
  pc.watchdog_ms = static_cast<int>(a.Num("watchdog-ms", 0));
  pc.push_deadline_ms = static_cast<int>(a.Num("push-deadline-ms", 0));
  if (a.options.count("qos") > 0) pc.qos = BuildQosConfig(a);
  std::map<size_t, qos::Priority> priority_map;
  if (Status st = ParsePriorityMap(a.Str("priority-map", ""),
                                   a.positional.size() - 1, &priority_map);
      !st.ok()) {
    return Fail(st);  // unreachable: CmdMonitor validated the spec pre-I/O
  }
  // --metrics-out publishes the whole pipeline (decoder, detector, shards,
  // executor) through the process-global registry; without it the executor
  // keeps its own private registry and nothing extra is wired.
  const std::string metrics_out = a.Str("metrics-out", "");
  const int metrics_interval_ms =
      static_cast<int>(a.Num("metrics-interval-ms", 0));
  if (!metrics_out.empty()) pc.metrics = &obs::MetricsRegistry::Global();
  auto exec = parallel::StreamExecutor::Create(config, pc);
  if (!exec.ok()) return Fail(exec.status());

  std::unique_ptr<ckpt::Checkpointer> ckptr;
  if (!copt.dir.empty()) {
    auto c = ckpt::Checkpointer::Open(
        copt.dir, metrics_out.empty() ? nullptr : &obs::MetricsRegistry::Global());
    if (!c.ok()) return Fail(c.status());
    ckptr = std::make_unique<ckpt::Checkpointer>(std::move(*c));
  }

  std::vector<DriverPos> pos;
  for (size_t s = 1; s < a.positional.size(); ++s) {
    pos.push_back(DriverPos{a.positional[s], 0, false, 0});
  }

  if (copt.restore) {
    auto state = LoadRestoreState(ckptr.get(), config, db, &pos);
    if (!state.ok()) return Fail(state.status());
    auto embedded = core::DeserializeQueries(state->query_db.data(),
                                             state->query_db.size());
    if (!embedded.ok()) return Fail(embedded.status());
    if (Status st = (*exec)->ImportQueries(*embedded); !st.ok()) return Fail(st);
    parallel::ExecutorCkpt ec;
    ec.next_stream_id = state->next_stream_id;
    ec.next_seq = state->next_seq;
    ec.streams = std::move(state->streams);
    ec.matches.reserve(state->matches.size());
    for (const ckpt::SnapshotMatch& m : state->matches) {
      ec.matches.push_back(parallel::SeqMatch{m.seq, m.match});
    }
    ec.qos = std::move(state->qos);
    if (Status st = (*exec)->RestoreCkpt(ec); !st.ok()) return Fail(st);
    std::printf("restored checkpoint epoch %llu (%zu streams, %zu matches)\n",
                static_cast<unsigned long long>(state->epoch),
                ec.streams.size(), ec.matches.size());
  } else {
    if (Status st = (*exec)->ImportQueries(db); !st.ok()) return Fail(st);
  }
  std::printf("monitoring with %d queries (K=%d, delta=%.2f, w=%.0fs, "
              "%d threads, queue %d, %s, on-corruption %s)\n",
              (*exec)->num_queries(), config.K, config.delta,
              config.window_seconds, (*exec)->num_shards(), pc.queue_capacity,
              core::BackpressurePolicyName(pc.backpressure),
              core::CorruptionPolicyName(pc.on_corruption));

  /// Quiesces the executor and commits one snapshot; failures are logged
  /// and counted, never fatal — a broken disk must not kill detection.
  const auto take_checkpoint = [&]() {
    auto ec = (*exec)->Checkpoint();
    if (!ec.ok()) {
      std::fprintf(stderr, "warning: checkpoint barrier failed: %s\n",
                   ec.status().ToString().c_str());
      return;
    }
    ckpt::SnapshotState state;
    ckpt::StampMeta(config, &state);
    state.query_db = db_bytes;
    state.next_stream_id = ec->next_stream_id;
    state.next_seq = ec->next_seq;
    state.streams = std::move(ec->streams);
    state.matches.reserve(ec->matches.size());
    for (const parallel::SeqMatch& m : ec->matches) {
      state.matches.push_back(ckpt::SnapshotMatch{m.seq, m.match});
    }
    state.driver = ToDriverSection(pos);
    state.qos = std::move(ec->qos);
    if (Status st = ckptr->Save(state); !st.ok()) {
      std::fprintf(stderr, "warning: checkpoint save failed: %s\n",
                   st.ToString().c_str());
    }
  };

  std::vector<std::vector<uint8_t>> bytes;       // keeps decoder storage alive
  std::vector<video::PartialDecoder> decoders(pos.size());
  for (size_t i = 0; i < pos.size(); ++i) {
    if (pos[i].done) {
      bytes.emplace_back();
      continue;
    }
    auto b = ReadFile(pos[i].path);
    if (!b.ok()) return Fail(b.status());
    bytes.push_back(std::move(*b));
    // skip/quarantine tolerate corrupt input: the decoder resynchronizes
    // and emits degraded frames instead of failing the whole run.
    decoders[i].set_resync_on_corruption(pc.on_corruption !=
                                         core::CorruptionPolicy::kFail);
    if (!metrics_out.empty()) {
      decoders[i].set_metrics(&obs::MetricsRegistry::Global());
    }
    if (Status st = decoders[i].Open(bytes.back().data(), bytes.back().size());
        !st.ok()) {
      return Fail(st);
    }
    if (pos[i].stream_id > 0) {
      // Restored stream: replay the decoder to the checkpointed position.
      if (Status st = SkipKeyFrames(&decoders[i], pos[i].frames_fed, pos[i].path);
          !st.ok()) {
        return Fail(st);
      }
    } else {
      auto prio = priority_map.find(i + 1);  // --priority-map is 1-based
      auto sid = (*exec)->OpenStream(pos[i].path,
                                     prio != priority_map.end()
                                         ? prio->second
                                         : qos::Priority::kNormal);
      if (!sid.ok()) return Fail(sid.status());
      pos[i].stream_id = *sid;
    }
  }
  bool any = true;
  video::DcFrame f;
  const int64_t interval_ns = static_cast<int64_t>(metrics_interval_ms) * 1000000;
  int64_t next_dump_ns = interval_ns > 0 ? obs::NowNanos() + interval_ns : 0;
  const int64_t ckpt_interval_ns =
      static_cast<int64_t>(copt.interval_ms) * 1000000;
  int64_t next_ckpt_ns =
      (ckptr != nullptr && ckpt_interval_ns > 0) ? obs::NowNanos() + ckpt_interval_ns
                                                 : 0;
  while (any) {
    // Cycle top: every live file has fed the same number of frames — the
    // only point where a snapshot resumes with an identical interleaving.
    if (g_drain_requested) {
      if (ckptr != nullptr) take_checkpoint();
      if (!metrics_out.empty()) {
        if (Status st = DumpMetrics("json", metrics_out); !st.ok()) {
          return Fail(st);
        }
      }
      std::printf("drain requested; stopped intake%s\n",
                  ckptr != nullptr ? " after final checkpoint" : "");
      return 0;
    }
    if (next_ckpt_ns > 0 && obs::NowNanos() >= next_ckpt_ns) {
      take_checkpoint();
      next_ckpt_ns = obs::NowNanos() + ckpt_interval_ns;
    }
    any = false;
    for (size_t i = 0; i < decoders.size(); ++i) {
      if (pos[i].done) continue;
      if (Status st = decoders[i].NextKeyFrame(&f); !st.ok()) {
        if (st.code() != StatusCode::kNotFound) {
          std::fprintf(stderr, "warning: %s: %s; stream stopped\n",
                       pos[i].path.c_str(), st.ToString().c_str());
        }
        pos[i].done = true;
        continue;
      }
      any = true;
      if (Status st = (*exec)->ProcessKeyFrame(pos[i].stream_id, std::move(f));
          !st.ok()) {
        return Fail(st);
      }
      ++pos[i].frames_fed;
    }
    if (copt.throttle_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(copt.throttle_ms));
    }
    if (interval_ns > 0 && obs::NowNanos() >= next_dump_ns) {
      if (Status st = DumpMetrics("json", metrics_out); !st.ok()) return Fail(st);
      next_dump_ns = obs::NowNanos() + interval_ns;
    }
  }
  for (DriverPos& p : pos) {
    if (p.stream_id <= 0) continue;
    if (Status st = (*exec)->CloseStream(p.stream_id); !st.ok()) return Fail(st);
    p.stream_id = 0;
  }
  if (Status st = (*exec)->Drain(); !st.ok()) return Fail(st);
  // Final checkpoint after the close/drain so a restored run of a finished
  // job reports the complete match log instead of re-feeding anything.
  if (ckptr != nullptr) take_checkpoint();
  // Final dump so the file reflects the fully drained run even when the
  // feed finished between two periodic intervals (or none was requested).
  if (!metrics_out.empty()) {
    if (Status st = DumpMetrics("json", metrics_out); !st.ok()) return Fail(st);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  PrintMatches((*exec)->matches());
  const parallel::ExecutorStats stats = (*exec)->Stats();
  int64_t degraded = 0, quarantined = 0, quarantine_events = 0;
  for (const auto& sh : stats.shards) {
    std::printf("shard %d: %lld frames, busy %.3fs, queue high-water %zu\n",
                sh.shard_id, static_cast<long long>(sh.frames_processed),
                sh.busy_seconds, sh.queue_high_water);
    degraded += sh.frames_degraded;
    quarantined += sh.frames_quarantined;
    quarantine_events += sh.quarantine_events;
  }
  if (stats.frames_dropped_backpressure > 0) {
    std::printf("%lld frames dropped by backpressure\n",
                static_cast<long long>(stats.frames_dropped_backpressure));
  }
  if (stats.frames_dropped_failover > 0) {
    std::printf("%lld frames dropped by shard failover\n",
                static_cast<long long>(stats.frames_dropped_failover));
  }
  if (stats.frames_dropped_deadline > 0) {
    std::printf("%lld frames dropped on the push deadline\n",
                static_cast<long long>(stats.frames_dropped_deadline));
  }
  if (stats.frames_shed > 0) {
    std::printf("%lld frames shed by the qos governor\n",
                static_cast<long long>(stats.frames_shed));
  }
  if (degraded > 0) {
    std::printf("%lld frames processed degraded\n",
                static_cast<long long>(degraded));
  }
  if (quarantine_events > 0) {
    std::printf("%lld frames discarded over %lld quarantine events\n",
                static_cast<long long>(quarantined),
                static_cast<long long>(quarantine_events));
  }
  return 0;
}

/// Serial path of `vcdctl monitor`: one StreamMonitor, files fed to
/// completion one after another. Checkpoints are taken between key frames
/// (every frame boundary is a consistent cut of a serial engine); the
/// snapshot's DRIVER section records each file's feed position so a
/// restored run resumes mid-file.
int MonitorSerial(const Args& a, const core::DetectorConfig& config,
                  const core::QueryDb& db, const std::vector<uint8_t>& db_bytes,
                  const CkptOptions& copt, const std::string& oc,
                  const std::string& metrics_out) {
  auto mon = core::StreamMonitor::Create(config);
  if (!mon.ok()) return Fail(mon.status());

  std::unique_ptr<ckpt::Checkpointer> ckptr;
  if (!copt.dir.empty()) {
    auto c = ckpt::Checkpointer::Open(
        copt.dir, metrics_out.empty() ? nullptr : &obs::MetricsRegistry::Global());
    if (!c.ok()) return Fail(c.status());
    ckptr = std::make_unique<ckpt::Checkpointer>(std::move(*c));
  }

  std::vector<DriverPos> pos;
  for (size_t s = 1; s < a.positional.size(); ++s) {
    pos.push_back(DriverPos{a.positional[s], 0, false, 0});
  }

  if (copt.restore) {
    auto state = LoadRestoreState(ckptr.get(), config, db, &pos);
    if (!state.ok()) return Fail(state.status());
    auto embedded = core::DeserializeQueries(state->query_db.data(),
                                             state->query_db.size());
    if (!embedded.ok()) return Fail(embedded.status());
    if (Status st = (*mon)->ImportQueries(*embedded); !st.ok()) return Fail(st);
    core::MonitorCkpt mc;
    mc.next_stream_id = state->next_stream_id;
    mc.streams = std::move(state->streams);
    mc.matches.reserve(state->matches.size());
    for (const ckpt::SnapshotMatch& m : state->matches) {
      mc.matches.push_back(m.match);
    }
    if (Status st = (*mon)->RestoreCkpt(mc); !st.ok()) return Fail(st);
    std::printf("restored checkpoint epoch %llu (%zu streams, %zu matches)\n",
                static_cast<unsigned long long>(state->epoch),
                mc.streams.size(), mc.matches.size());
  } else {
    if (Status st = (*mon)->ImportQueries(db); !st.ok()) return Fail(st);
  }
  std::printf("monitoring with %d queries (K=%d, delta=%.2f, w=%.0fs)\n",
              (*mon)->num_queries(), config.K, config.delta, config.window_seconds);

  /// Snapshots the monitor between two key frames; failures are logged and
  /// counted, never fatal.
  const auto take_checkpoint = [&]() {
    core::MonitorCkpt mc = (*mon)->ExportCkpt();
    ckpt::SnapshotState state;
    ckpt::StampMeta(config, &state);
    state.query_db = db_bytes;
    state.next_stream_id = mc.next_stream_id;
    state.next_seq = 1;  // the serial engine has no submission sequencing
    state.streams = std::move(mc.streams);
    state.matches.reserve(mc.matches.size());
    for (const core::StreamMatch& m : mc.matches) {
      state.matches.push_back(ckpt::SnapshotMatch{0, m});
    }
    state.driver = ToDriverSection(pos);
    if (Status st = ckptr->Save(state); !st.ok()) {
      std::fprintf(stderr, "warning: checkpoint save failed: %s\n",
                   st.ToString().c_str());
    }
  };
  /// Stop-intake drain: final checkpoint, metrics flush, exit 0 — streams
  /// are deliberately NOT closed, so no trailing window is flushed and a
  /// --restore resumes mid-stream.
  const auto drain = [&]() -> int {
    if (ckptr != nullptr) take_checkpoint();
    if (!metrics_out.empty()) {
      if (Status st = DumpMetrics("json", metrics_out); !st.ok()) {
        return Fail(st);
      }
    }
    std::printf("drain requested; stopped intake%s\n",
                ckptr != nullptr ? " after final checkpoint" : "");
    return 0;
  };

  const int64_t ckpt_interval_ns =
      static_cast<int64_t>(copt.interval_ms) * 1000000;
  int64_t next_ckpt_ns =
      (ckptr != nullptr && ckpt_interval_ns > 0) ? obs::NowNanos() + ckpt_interval_ns
                                                 : 0;
  for (size_t i = 0; i < pos.size(); ++i) {
    if (pos[i].done) continue;
    auto bytes = ReadFile(pos[i].path);
    if (!bytes.ok()) return Fail(bytes.status());
    video::PartialDecoder pd;
    pd.set_resync_on_corruption(oc != "fail");
    if (!metrics_out.empty()) pd.set_metrics(&obs::MetricsRegistry::Global());
    if (Status st = pd.Open(bytes->data(), bytes->size()); !st.ok()) return Fail(st);
    if (pos[i].stream_id > 0) {
      // Restored stream: replay the decoder to the checkpointed position.
      if (Status st = SkipKeyFrames(&pd, pos[i].frames_fed, pos[i].path);
          !st.ok()) {
        return Fail(st);
      }
    } else {
      auto sid = (*mon)->OpenStream(pos[i].path);
      if (!sid.ok()) return Fail(sid.status());
      pos[i].stream_id = *sid;
    }
    video::DcFrame f;
    Status next;
    while (true) {
      if (g_drain_requested) return drain();
      if (next_ckpt_ns > 0 && obs::NowNanos() >= next_ckpt_ns) {
        take_checkpoint();
        next_ckpt_ns = obs::NowNanos() + ckpt_interval_ns;
      }
      if (!(next = pd.NextKeyFrame(&f)).ok()) break;
      if (Status st = (*mon)->ProcessKeyFrame(pos[i].stream_id, f); !st.ok()) {
        return Fail(st);
      }
      ++pos[i].frames_fed;
      if (copt.throttle_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(copt.throttle_ms));
      }
    }
    if (next.code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "warning: %s: %s; stream stopped\n",
                   pos[i].path.c_str(), next.ToString().c_str());
    }
    if (Status st = (*mon)->CloseStream(pos[i].stream_id); !st.ok()) {
      return Fail(st);
    }
    pos[i].done = true;
    pos[i].stream_id = 0;
  }
  // Final checkpoint so a restored run of a finished job reports the
  // complete match log without re-feeding anything.
  if (ckptr != nullptr) take_checkpoint();
  // Serial path: only the decoders publish (StreamMonitor predates the
  // registry); one dump at the end keeps the flag meaningful regardless of
  // --threads.
  if (!metrics_out.empty()) {
    if (Status st = DumpMetrics("json", metrics_out); !st.ok()) return Fail(st);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  PrintMatches((*mon)->matches());
  return 0;
}

/// Lists every kernel ISA level with its compiled/supported state and marks
/// the level dispatch would pick (or was forced to via VCD_KERNEL_ISA).
int CmdKernels(const Args&) {
  namespace sk = sketch::kernels;
  const sk::KernelOps& active = sk::ActiveOps();
  std::printf("%-8s %-9s %-10s %s\n", "isa", "compiled", "supported",
              "active");
  for (int i = 0; i < sk::kNumIsa; ++i) {
    const auto isa = static_cast<sk::Isa>(i);
    std::printf("%-8s %-9s %-10s %s\n", sk::IsaName(isa),
                sk::IsaCompiled(isa) ? "yes" : "no",
                sk::IsaSupported(isa) ? "yes" : "no",
                isa == active.isa ? "*" : "");
  }
  return 0;
}

void MonitorUsage() {
  std::fprintf(stderr,
               "usage: vcdctl monitor queries.vcdq stream.vcds ... "
               "[--delta D --window W --threads N --queue C "
               "--backpressure block|drop "
               "--on-corruption skip|quarantine|fail --watchdog-ms N "
               "--metrics-out FILE --metrics-interval-ms N "
               "--kernel scalar|popcnt|avx2|avx512|neon "
               "--checkpoint-dir DIR --checkpoint-interval-ms N --restore "
               "--throttle-ms N "
               "--qos --qos-tick-ms N --push-deadline-ms N "
               "--priority-map IDX=high|normal|low[,...] "
               "--degrade-policy probe=N,cap=N,nogeo]\n");
}

int CmdMonitor(const Args& a) {
  if (a.positional.size() < 2) {
    MonitorUsage();
    return 2;
  }
  // All flag validation happens before any file I/O, so a bad invocation
  // fails fast with a usage message instead of a missing-file error.
  const int threads = static_cast<int>(a.Num("threads", 0));
  if (threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0 (got %d)\n", threads);
    MonitorUsage();
    return 2;
  }
  const int queue = static_cast<int>(a.Num("queue", 256));
  if (queue < 1) {
    std::fprintf(stderr, "error: --queue must be >= 1 (got %d)\n", queue);
    MonitorUsage();
    return 2;
  }
  const std::string bp = a.Str("backpressure", "block");
  if (bp != "block" && bp != "drop") {
    std::fprintf(stderr, "error: --backpressure must be block or drop (got %s)\n",
                 bp.c_str());
    MonitorUsage();
    return 2;
  }
  const std::string oc = a.Str("on-corruption", "skip");
  if (oc != "skip" && oc != "quarantine" && oc != "fail") {
    std::fprintf(stderr,
                 "error: --on-corruption must be skip, quarantine or fail "
                 "(got %s)\n",
                 oc.c_str());
    MonitorUsage();
    return 2;
  }
  const int watchdog_ms = static_cast<int>(a.Num("watchdog-ms", 0));
  if (watchdog_ms < 0) {
    std::fprintf(stderr, "error: --watchdog-ms must be >= 0 (got %d)\n",
                 watchdog_ms);
    MonitorUsage();
    return 2;
  }
  const std::string metrics_out = a.Str("metrics-out", "");
  const int metrics_interval_ms =
      static_cast<int>(a.Num("metrics-interval-ms", 0));
  if (metrics_interval_ms < 0) {
    std::fprintf(stderr, "error: --metrics-interval-ms must be >= 0 (got %d)\n",
                 metrics_interval_ms);
    MonitorUsage();
    return 2;
  }
  if (metrics_interval_ms > 0 && metrics_out.empty()) {
    std::fprintf(stderr,
                 "error: --metrics-interval-ms requires --metrics-out\n");
    MonitorUsage();
    return 2;
  }
  const std::string kernel = a.Str("kernel", "");
  if (!kernel.empty()) {
    // ForceIsa rejects unknown names and levels this CPU/build can't run;
    // validated here so a typo'd --kernel exits with usage, not a crash or
    // a silent fallback after files were already opened.
    if (Status st = sketch::kernels::ForceIsa(kernel); !st.ok()) {
      std::fprintf(stderr, "error: --kernel: %s\n", st.ToString().c_str());
      MonitorUsage();
      return 2;
    }
  }
  CkptOptions copt;
  copt.dir = a.Str("checkpoint-dir", "");
  copt.interval_ms = static_cast<int>(a.Num("checkpoint-interval-ms", 0));
  copt.restore = a.options.count("restore") > 0;
  copt.throttle_ms = static_cast<int>(a.Num("throttle-ms", 0));
  if (copt.interval_ms < 0) {
    std::fprintf(stderr, "error: --checkpoint-interval-ms must be >= 0 (got %d)\n",
                 copt.interval_ms);
    MonitorUsage();
    return 2;
  }
  if (copt.interval_ms > 0 && copt.dir.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint-interval-ms requires --checkpoint-dir\n");
    MonitorUsage();
    return 2;
  }
  if (copt.restore && copt.dir.empty()) {
    std::fprintf(stderr, "error: --restore requires --checkpoint-dir\n");
    MonitorUsage();
    return 2;
  }
  if (copt.throttle_ms < 0) {
    std::fprintf(stderr, "error: --throttle-ms must be >= 0 (got %d)\n",
                 copt.throttle_ms);
    MonitorUsage();
    return 2;
  }
  const bool qos_on = a.options.count("qos") > 0;
  const int push_deadline_ms = static_cast<int>(a.Num("push-deadline-ms", 0));
  if (push_deadline_ms < 0) {
    std::fprintf(stderr, "error: --push-deadline-ms must be >= 0 (got %d)\n",
                 push_deadline_ms);
    MonitorUsage();
    return 2;
  }
  if (push_deadline_ms > 0 && threads <= 0) {
    std::fprintf(stderr, "error: --push-deadline-ms requires --threads >= 1\n");
    MonitorUsage();
    return 2;
  }
  if (!qos_on && (a.options.count("qos-tick-ms") > 0 ||
                  a.options.count("priority-map") > 0 ||
                  a.options.count("degrade-policy") > 0)) {
    std::fprintf(stderr,
                 "error: --qos-tick-ms/--priority-map/--degrade-policy "
                 "require --qos\n");
    MonitorUsage();
    return 2;
  }
  if (qos_on) {
    if (threads <= 0) {
      std::fprintf(stderr,
                   "error: --qos requires --threads >= 1 (the governor runs "
                   "on the parallel executor)\n");
      MonitorUsage();
      return 2;
    }
    std::map<size_t, qos::Priority> pmap;
    if (Status st = ParsePriorityMap(a.Str("priority-map", ""),
                                     a.positional.size() - 1, &pmap);
        !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      MonitorUsage();
      return 2;
    }
    qos::DegradeKnobs knobs;
    if (Status st = ParseDegradePolicy(a.Str("degrade-policy", ""), &knobs);
        !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      MonitorUsage();
      return 2;
    }
    if (Status st = BuildQosConfig(a).Validate(); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      MonitorUsage();
      return 2;
    }
  }
  auto db = core::LoadQueriesFile(a.positional[0]);
  if (!db.ok()) return Fail(db.status());
  // The raw query-db bytes are embedded in every snapshot so a restore
  // re-imports byte-identical sketches regardless of later edits to the
  // .vcdq named on the resumed command line.
  auto db_bytes = ReadFile(a.positional[0]);
  if (!db_bytes.ok()) return Fail(db_bytes.status());
  core::DetectorConfig config;
  config.K = db->k;
  config.hash_seed = db->hash_seed;
  config.delta = a.Num("delta", 0.7);
  config.window_seconds = a.Num("window", 5.0);
  std::signal(SIGINT, OnDrainSignal);
  std::signal(SIGTERM, OnDrainSignal);
  if (threads > 0) return MonitorParallel(a, config, *db, *db_bytes, copt, threads);
  return MonitorSerial(a, config, *db, *db_bytes, copt, oc, metrics_out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: vcdctl <generate|encode|decode|info|fingerprint|shots|"
                 "build-queries|monitor|metrics|kernels> ...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = Args::Parse(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "encode") return CmdEncode(args);
  if (cmd == "decode") return CmdDecode(args);
  if (cmd == "info") return CmdInfo(args);
  if (cmd == "fingerprint") return CmdFingerprint(args);
  if (cmd == "shots") return CmdShots(args);
  if (cmd == "build-queries") return CmdBuildQueries(args);
  if (cmd == "monitor") return CmdMonitor(args);
  if (cmd == "metrics") return CmdMetrics(args);
  if (cmd == "kernels") return CmdKernels(args);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
