#!/usr/bin/env python3
"""Compares two BENCH_hotpath.json documents and fails on regression.

Usage:
  bench_diff.py BASELINE.json CURRENT.json [--max-regress FRAC] [--ratio]

Rows are matched on (order, representation, K, pooled) and compared by
windows_per_sec. Two modes:

  absolute (default)  every matched row's windows/sec must be at least
                      (1 - FRAC) x the baseline row. Meaningful only when
                      both documents come from the same machine — use for
                      local before/after runs.

  --ratio             compares the pooled/scalar windows-per-sec ratio per
                      (order, representation, K) instead of raw rates. The
                      ratio divides out absolute machine speed, so this is
                      the mode CI uses against the checked-in baseline
                      (tests/data/hotpath_baseline.json), which was
                      recorded on different hardware.

FRAC defaults to 0.10 (a >10% regression fails). Rows present in only one
document are reported but never fail the diff (new configurations must not
need a baseline edit to land). The current document's pooled_alloc_free
meta must be true in both modes — losing the zero-allocation contract is a
regression regardless of speed.

checkpoint_pause_ms meta (the steady-state intake pause of one checkpoint
barrier, export+encode): when the baseline records it, the current document
must too — dropping the measurement is a regression in both modes. The
value itself is compared only in absolute (same-machine) mode, with a
0.25 ms absolute grace on top of FRAC so timer noise on sub-millisecond
pauses cannot flake the gate.

qos_governor_overhead_pct meta (the relative cost of an enabled-but-idle
overload governor on the executor frame path): when the baseline records
it, the current document must too, and — because a percentage of the same
run on the same machine is already machine-relative — the value is gated
in both modes against a fixed 1% budget.

Exit codes: 0 ok, 1 regression, 2 usage.
"""

import json
import sys

# The idle QoS governor's frame-path overhead budget, in percent.
QOS_OVERHEAD_LIMIT_PCT = 1.0


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"bench_diff: cannot read {path}: {e}\n")
        sys.exit(2)
    if doc.get("bench") != "hotpath" or "rows" not in doc:
        sys.stderr.write(f"bench_diff: {path} is not a hotpath bench document\n")
        sys.exit(2)
    return doc


def row_key(row, with_pooled=True):
    key = (row.get("order"), row.get("representation"), row.get("K"))
    return key + (row.get("pooled"),) if with_pooled else key


def by_key(doc, with_pooled=True):
    return {row_key(r, with_pooled): r for r in doc["rows"]}


def ratios(doc):
    """(order, rep, K) -> pooled windows/sec divided by scalar windows/sec."""
    out = {}
    rows = by_key(doc)
    for (order, rep, k, pooled), row in rows.items():
        if not pooled:
            continue
        scalar = rows.get((order, rep, k, False))
        if scalar and scalar.get("windows_per_sec", 0) > 0:
            out[(order, rep, k)] = (
                row["windows_per_sec"] / scalar["windows_per_sec"]
            )
    return out


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = [a for a in argv[1:] if a.startswith("--")]
    max_regress = 0.10
    ratio_mode = False
    for f in flags:
        if f == "--ratio":
            ratio_mode = True
        elif f.startswith("--max-regress="):
            try:
                max_regress = float(f.split("=", 1)[1])
            except ValueError:
                sys.stderr.write(f"bench_diff: bad {f}\n")
                return 2
        else:
            sys.stderr.write(f"bench_diff: unknown flag {f}\n{__doc__}")
            return 2
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 2

    base_doc, cur_doc = load(args[0]), load(args[1])
    base_isa = base_doc.get("meta", {}).get("kernel_isa", "?")
    cur_isa = cur_doc.get("meta", {}).get("kernel_isa", "?")
    mode = "ratio (pooled/scalar)" if ratio_mode else "absolute windows/sec"
    print(f"bench_diff: {mode}, max regression {max_regress:.0%}")
    print(f"  baseline: {args[0]} (kernel {base_isa})")
    print(f"  current:  {args[1]} (kernel {cur_isa})")

    failed = []
    if ratio_mode:
        base, cur = ratios(base_doc), ratios(cur_doc)
        for key in sorted(base, key=str):
            if key not in cur:
                print(f"  MISSING {key} (baseline-only; not failing)")
                continue
            change = cur[key] / base[key] - 1.0
            status = "ok"
            if cur[key] < base[key] * (1.0 - max_regress):
                status = "REGRESSION"
                failed.append(key)
            order, rep, k = key
            print(
                f"  {status:>10}  {order}-{rep} K={k}: speedup "
                f"{base[key]:.2f}x -> {cur[key]:.2f}x ({change:+.1%})"
            )
        for key in sorted(set(cur) - set(base), key=str):
            print(f"  NEW {key} (current-only; not failing)")
    else:
        base, cur = by_key(base_doc), by_key(cur_doc)
        for key in sorted(base, key=str):
            if key not in cur:
                print(f"  MISSING {key} (baseline-only; not failing)")
                continue
            b = base[key].get("windows_per_sec", 0.0)
            c = cur[key].get("windows_per_sec", 0.0)
            if b <= 0:
                continue
            change = c / b - 1.0
            status = "ok"
            if c < b * (1.0 - max_regress):
                status = "REGRESSION"
                failed.append(key)
            order, rep, k, pooled = key
            path = "pooled" if pooled else "scalar"
            print(
                f"  {status:>10}  {order}-{rep} K={k} {path}: "
                f"{b:.0f} -> {c:.0f} w/s ({change:+.1%})"
            )
        for key in sorted(set(cur) - set(base), key=str):
            print(f"  NEW {key} (current-only; not failing)")

    if cur_doc.get("meta", {}).get("pooled_alloc_free") is not True:
        print("  REGRESSION  pooled_alloc_free is not true in current")
        failed.append("pooled_alloc_free")

    base_pause = base_doc.get("meta", {}).get("checkpoint_pause_ms")
    cur_pause = cur_doc.get("meta", {}).get("checkpoint_pause_ms")
    if base_pause is not None:
        if not isinstance(cur_pause, (int, float)):
            print("  REGRESSION  checkpoint_pause_ms missing in current")
            failed.append("checkpoint_pause_ms")
        elif ratio_mode:
            # Cross-machine: absolute pause is not comparable; presence is.
            print(
                f"          ok  checkpoint_pause_ms: {base_pause:.3f} -> "
                f"{cur_pause:.3f} ms (not gated across machines)"
            )
        else:
            limit = base_pause * (1.0 + max_regress) + 0.25
            status = "ok" if cur_pause <= limit else "REGRESSION"
            if status == "REGRESSION":
                failed.append("checkpoint_pause_ms")
            print(
                f"  {status:>10}  checkpoint_pause_ms: {base_pause:.3f} -> "
                f"{cur_pause:.3f} ms (limit {limit:.3f})"
            )

    base_qos = base_doc.get("meta", {}).get("qos_governor_overhead_pct")
    cur_qos = cur_doc.get("meta", {}).get("qos_governor_overhead_pct")
    if base_qos is not None:
        if not isinstance(cur_qos, (int, float)):
            print("  REGRESSION  qos_governor_overhead_pct missing in current")
            failed.append("qos_governor_overhead_pct")
        else:
            # Already machine-relative (a percentage of the same run on the
            # same box), so unlike the pause it is gated in BOTH modes: the
            # idle governor must cost at most QOS_OVERHEAD_LIMIT_PCT.
            status = "ok" if cur_qos <= QOS_OVERHEAD_LIMIT_PCT else "REGRESSION"
            if status == "REGRESSION":
                failed.append("qos_governor_overhead_pct")
            print(
                f"  {status:>10}  qos_governor_overhead_pct: {base_qos:.2f} -> "
                f"{cur_qos:.2f} % (limit {QOS_OVERHEAD_LIMIT_PCT:.2f})"
            )

    if failed:
        print(f"bench_diff: FAIL ({len(failed)} regression(s))")
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
