#include "stream/combiner.h"

#include <gtest/gtest.h>

#include <vector>

namespace vcd::stream {
namespace {

/// Test payload: tracks which window indices it covers.
struct Cand {
  int num_windows = 0;
  int first = 0, last = 0;  // covered window index range
};

Cand Fresh(int i) { return Cand{1, i, i}; }

void Merge(Cand& older, const Cand& newer) {
  EXPECT_EQ(older.last + 1, newer.first) << "merge must join adjacent spans";
  older.num_windows += newer.num_windows;
  older.last = newer.last;
}

TEST(SequentialCandidatesTest, AllSuffixLengthsPresent) {
  SequentialCandidates<Cand> seq;
  const int max_windows = 5;
  for (int i = 0; i < 10; ++i) {
    seq.Step(Fresh(i), max_windows, Merge);
    // After window i, candidates are the suffixes ending at i with lengths
    // 1..min(i+1, max).
    const int expect = std::min(i + 1, max_windows);
    ASSERT_EQ(static_cast<int>(seq.size()), expect) << "window " << i;
    for (size_t j = 0; j < seq.size(); ++j) {
      const Cand& c = seq.at(j);
      EXPECT_EQ(c.last, i);
      EXPECT_EQ(c.num_windows, expect - static_cast<int>(j));
      EXPECT_EQ(c.first, i - c.num_windows + 1);
    }
  }
}

TEST(SequentialCandidatesTest, ExpiryDropsOldest) {
  SequentialCandidates<Cand> seq;
  for (int i = 0; i < 4; ++i) seq.Step(Fresh(i), 3, Merge);
  seq.ForEach([](const Cand& c) { EXPECT_LE(c.num_windows, 3); });
}

TEST(SequentialCandidatesTest, RemoveIf) {
  SequentialCandidates<Cand> seq;
  for (int i = 0; i < 5; ++i) seq.Step(Fresh(i), 10, Merge);
  seq.RemoveIf([](const Cand& c) { return c.num_windows % 2 == 0; });
  seq.ForEach([](const Cand& c) { EXPECT_EQ(c.num_windows % 2, 1); });
}

TEST(SequentialCandidatesTest, Clear) {
  SequentialCandidates<Cand> seq;
  seq.Step(Fresh(0), 5, Merge);
  seq.Clear();
  EXPECT_TRUE(seq.empty());
}

// --- in-place recycling protocol -------------------------------------------

/// Payload with an external "resource" flag so tests can assert retire is
/// called exactly once per dropped candidate before shell reuse.
struct RCand {
  int num_windows = 0;
  int first = 0, last = 0;
  bool owns = false;  ///< simulated external resource (e.g. pool handle)
};

TEST(SequentialCandidatesTest, InPlaceStepMatchesValueStep) {
  SequentialCandidates<Cand> value_seq;
  SequentialCandidates<RCand> inplace_seq;
  int retired = 0;
  for (int i = 0; i < 20; ++i) {
    value_seq.Step(Fresh(i), 6, Merge);
    inplace_seq.Step(
        6,
        [&](RCand& c) {
          c.num_windows = 1;
          c.first = c.last = i;
          c.owns = true;
        },
        [](RCand& older, const RCand& newer) {
          EXPECT_EQ(older.last + 1, newer.first);
          older.num_windows += newer.num_windows;
          older.last = newer.last;
        },
        [&](RCand& c) {
          EXPECT_TRUE(c.owns) << "retire must see a live candidate";
          c.owns = false;
          ++retired;
        });
    ASSERT_EQ(value_seq.size(), inplace_seq.size());
    for (size_t j = 0; j < value_seq.size(); ++j) {
      EXPECT_EQ(value_seq.at(j).num_windows, inplace_seq.at(j).num_windows);
      EXPECT_EQ(value_seq.at(j).first, inplace_seq.at(j).first);
      EXPECT_EQ(value_seq.at(j).last, inplace_seq.at(j).last);
      EXPECT_TRUE(inplace_seq.at(j).owns);
    }
  }
  // Windows 0..19 with max 6: windows 0..13 produced an expiry each.
  EXPECT_EQ(retired, 14);
}

TEST(SequentialCandidatesTest, RemoveIfRetiresDropped) {
  SequentialCandidates<RCand> seq;
  for (int i = 0; i < 5; ++i) {
    seq.Step(
        100,
        [&](RCand& c) {
          c = RCand{1, i, i, true};
        },
        [](RCand& older, const RCand& newer) {
          older.num_windows += newer.num_windows;
          older.last = newer.last;
        },
        [](RCand& c) { c.owns = false; });
  }
  int retired = 0;
  seq.RemoveIf([](const RCand& c) { return c.num_windows % 2 == 0; },
               [&](RCand& c) {
                 EXPECT_TRUE(c.owns);
                 c.owns = false;
                 ++retired;
               });
  EXPECT_EQ(retired, 2);  // lengths 2 and 4 dropped
  seq.ForEach([](const RCand& c) { EXPECT_TRUE(c.owns); });
  retired = 0;
  seq.Clear([&](RCand& c) {
    c.owns = false;
    ++retired;
  });
  EXPECT_EQ(retired, 3);
  EXPECT_TRUE(seq.empty());
}

TEST(GeometricCandidatesTest, InPlaceStepMatchesValueStep) {
  GeometricCandidates<Cand> value_geo;
  GeometricCandidates<RCand> inplace_geo;
  for (int i = 0; i < 29; ++i) {
    value_geo.Step(Fresh(i), 8, Merge);
    inplace_geo.Step(
        8,
        [&](RCand& c) {
          c.num_windows = 1;
          c.first = c.last = i;
          c.owns = true;
        },
        [](RCand& older, const RCand& newer) {
          EXPECT_EQ(older.last + 1, newer.first);
          older.num_windows += newer.num_windows;
          older.last = newer.last;
        },
        [](RCand& c) {
          EXPECT_TRUE(c.owns);
          c.owns = false;
        });
    ASSERT_EQ(value_geo.ladder().size(), inplace_geo.ladder().size());
    for (size_t l = 0; l < value_geo.ladder().size(); ++l) {
      ASSERT_EQ(value_geo.ladder()[l].has_value(),
                inplace_geo.ladder()[l].has_value());
      if (!value_geo.ladder()[l].has_value()) continue;
      EXPECT_EQ(value_geo.ladder()[l]->num_windows,
                inplace_geo.ladder()[l]->num_windows);
      EXPECT_EQ(value_geo.ladder()[l]->first, inplace_geo.ladder()[l]->first);
      EXPECT_EQ(value_geo.ladder()[l]->last, inplace_geo.ladder()[l]->last);
      EXPECT_TRUE(inplace_geo.ladder()[l]->owns);
    }
  }
}

TEST(GeometricCandidatesTest, VisitSuffixesIntoMatchesVisitSuffixes) {
  GeometricCandidates<Cand> geo;
  for (int i = 0; i < 13; ++i) geo.Step(Fresh(i), 1000, Merge);
  std::vector<Cand> copied;
  geo.VisitSuffixes(
      1000, [](const Cand& c) { return c; },
      [](Cand& older, const Cand& newer) {
        older.num_windows += newer.num_windows;
        older.last = newer.last;
      },
      [&](const Cand& c) { copied.push_back(c); });
  std::vector<Cand> inplace;
  Cand cum, tmp;
  int retired = 0;
  geo.VisitSuffixesInto(
      1000, &cum, &tmp,
      [](Cand& dst, const Cand& src) { dst = src; },
      [](Cand& older, const Cand& newer) {
        older.num_windows += newer.num_windows;
        older.last = newer.last;
      },
      [&](const Cand& c) { inplace.push_back(c); }, [&](Cand&) { ++retired; });
  ASSERT_EQ(copied.size(), inplace.size());
  for (size_t i = 0; i < copied.size(); ++i) {
    EXPECT_EQ(copied[i].num_windows, inplace[i].num_windows);
    EXPECT_EQ(copied[i].first, inplace[i].first);
    EXPECT_EQ(copied[i].last, inplace[i].last);
  }
  // Every intermediate cum plus the final one must have been retired.
  EXPECT_EQ(retired, static_cast<int>(inplace.size()));
}

TEST(GeometricCandidatesTest, BinaryCounterSizes) {
  GeometricCandidates<Cand> geo;
  for (int i = 0; i < 16; ++i) geo.Step(Fresh(i), 1000, Merge);
  // 16 windows = 0b10000: one block of 16 at level 4.
  int live = 0;
  for (size_t level = 0; level < geo.ladder().size(); ++level) {
    if (geo.ladder()[level].has_value()) {
      ++live;
      EXPECT_EQ(geo.ladder()[level]->num_windows, 1 << level);
    }
  }
  EXPECT_EQ(live, 1);
  EXPECT_EQ(geo.size(), 1u);
}

TEST(GeometricCandidatesTest, CounterValueMatchesWindowCount) {
  GeometricCandidates<Cand> geo;
  const int n = 13;  // 0b1101
  for (int i = 0; i < n; ++i) geo.Step(Fresh(i), 1000, Merge);
  int total = 0;
  for (const auto& slot : geo.ladder()) {
    if (slot.has_value()) total += slot->num_windows;
  }
  EXPECT_EQ(total, n);
  EXPECT_EQ(geo.size(), 3u);  // bits set in 13
}

TEST(GeometricCandidatesTest, BlocksAreContiguousNewestFirst) {
  GeometricCandidates<Cand> geo;
  const int n = 13;
  for (int i = 0; i < n; ++i) geo.Step(Fresh(i), 1000, Merge);
  // Level order is newest (smallest) to oldest (largest); spans must tile
  // [0, n) in reverse.
  int expected_last = n - 1;
  for (const auto& slot : geo.ladder()) {
    if (!slot.has_value()) continue;
    EXPECT_EQ(slot->last, expected_last);
    expected_last = slot->first - 1;
  }
  EXPECT_EQ(expected_last, -1);
}

TEST(GeometricCandidatesTest, VisitSuffixesYieldsSuffixSpans) {
  GeometricCandidates<Cand> geo;
  const int n = 13;
  for (int i = 0; i < n; ++i) geo.Step(Fresh(i), 1000, Merge);
  std::vector<Cand> visited;
  geo.VisitSuffixes(
      1000, [](const Cand& c) { return c; },
      [](Cand& older, const Cand& newer) {
        EXPECT_EQ(older.last + 1, newer.first);
        older.num_windows += newer.num_windows;
        older.last = newer.last;
      },
      [&](const Cand& c) { visited.push_back(c); });
  ASSERT_FALSE(visited.empty());
  // Every visited candidate ends at the latest window and lengths grow.
  int prev = 0;
  for (const Cand& c : visited) {
    EXPECT_EQ(c.last, n - 1);
    EXPECT_EQ(c.first, n - c.num_windows);
    EXPECT_GT(c.num_windows, prev);
    prev = c.num_windows;
  }
  // The largest suffix covers everything.
  EXPECT_EQ(visited.back().num_windows, n);
}

TEST(GeometricCandidatesTest, VisitSuffixesHonorsMaxWindows) {
  GeometricCandidates<Cand> geo;
  for (int i = 0; i < 16; ++i) geo.Step(Fresh(i), 1000, Merge);
  geo.Step(Fresh(16), 1000, Merge);  // blocks: 16 @L4, 1 @L0
  std::vector<int> lengths;
  geo.VisitSuffixes(
      8, [](const Cand& c) { return c; },
      [](Cand& older, const Cand& newer) {
        older.num_windows += newer.num_windows;
        older.last = newer.last;
      },
      [&](const Cand& c) { lengths.push_back(c.num_windows); });
  // Only the length-1 suffix fits under max_windows = 8.
  ASSERT_EQ(lengths.size(), 1u);
  EXPECT_EQ(lengths[0], 1);
}

TEST(GeometricCandidatesTest, ExpiryDropsOversizedCarry) {
  GeometricCandidates<Cand> geo;
  // max_windows = 4: merging to a block of 8 must drop it.
  for (int i = 0; i < 8; ++i) geo.Step(Fresh(i), 4, Merge);
  for (const auto& slot : geo.ladder()) {
    if (slot.has_value()) {
      EXPECT_LE(slot->num_windows, 4);
    }
  }
}

TEST(GeometricCandidatesTest, LogarithmicLiveCount) {
  GeometricCandidates<Cand> geo;
  for (int i = 0; i < 1000; ++i) geo.Step(Fresh(i), 1 << 20, Merge);
  // popcount(1000) = 6 live blocks; never more than log2(1000)+1.
  EXPECT_LE(geo.size(), 10u);
  EXPECT_EQ(geo.size(), 6u);
}

TEST(GeometricCandidatesTest, RemoveIfAndClear) {
  GeometricCandidates<Cand> geo;
  for (int i = 0; i < 7; ++i) geo.Step(Fresh(i), 100, Merge);
  geo.RemoveIf([](const Cand& c) { return c.num_windows == 2; });
  for (const auto& slot : geo.ladder()) {
    if (slot.has_value()) {
      EXPECT_NE(slot->num_windows, 2);
    }
  }
  geo.Clear();
  EXPECT_EQ(geo.size(), 0u);
}

TEST(GeometricCandidatesTest, ForEachVisitsAllLive) {
  GeometricCandidates<Cand> geo;
  for (int i = 0; i < 7; ++i) geo.Step(Fresh(i), 100, Merge);
  int count = 0;
  geo.ForEach([&](Cand&) { ++count; });
  EXPECT_EQ(count, 3);  // popcount(7)
}

}  // namespace
}  // namespace vcd::stream
