#include "stream/basic_window.h"

#include <gtest/gtest.h>

namespace vcd::stream {
namespace {

TEST(BasicWindowAssemblerTest, CreateValidation) {
  EXPECT_TRUE(BasicWindowAssembler::Create(5.0).ok());
  EXPECT_FALSE(BasicWindowAssembler::Create(0.0).ok());
  EXPECT_FALSE(BasicWindowAssembler::Create(-1.0).ok());
}

TEST(BasicWindowAssemblerTest, EmitsOnBoundaryCrossing) {
  auto a = BasicWindowAssembler::Create(1.0).value();
  BasicWindow w;
  // Frames at 0.0, 0.4, 0.8 stay in the first window.
  EXPECT_FALSE(a.Add(0, 0.0, 10, &w));
  EXPECT_FALSE(a.Add(12, 0.4, 11, &w));
  EXPECT_FALSE(a.Add(24, 0.8, 12, &w));
  // Frame at 1.0 crosses: the first window is emitted.
  ASSERT_TRUE(a.Add(30, 1.0, 13, &w));
  EXPECT_EQ(w.index, 0);
  EXPECT_EQ(w.start_frame, 0);
  EXPECT_EQ(w.end_frame, 24);
  EXPECT_EQ(w.ids, (std::vector<features::CellId>{10, 11, 12}));
  EXPECT_DOUBLE_EQ(w.start_time, 0.0);
  EXPECT_DOUBLE_EQ(w.end_time, 0.8);
}

TEST(BasicWindowAssemblerTest, FlushEmitsTrailingPartial) {
  auto a = BasicWindowAssembler::Create(1.0).value();
  BasicWindow w;
  a.Add(0, 0.0, 1, &w);
  a.Add(12, 0.4, 2, &w);
  ASSERT_TRUE(a.Flush(&w));
  EXPECT_EQ(w.ids.size(), 2u);
  EXPECT_EQ(w.index, 0);
  // Nothing left after flush.
  EXPECT_FALSE(a.Flush(&w));
}

TEST(BasicWindowAssemblerTest, FlushOnEmptyIsFalse) {
  auto a = BasicWindowAssembler::Create(1.0).value();
  BasicWindow w;
  EXPECT_FALSE(a.Flush(&w));
}

TEST(BasicWindowAssemblerTest, IndicesIncrement) {
  auto a = BasicWindowAssembler::Create(1.0).value();
  BasicWindow w;
  int emitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Add(i, i * 0.25, static_cast<features::CellId>(i), &w)) {
      EXPECT_EQ(w.index, emitted);
      ++emitted;
    }
  }
  // 100 frames at 0.25 s spacing = 24.75 s ⇒ 24 complete windows emitted.
  EXPECT_EQ(emitted, 24);
  ASSERT_TRUE(a.Flush(&w));
  EXPECT_EQ(w.index, 24);
  EXPECT_EQ(a.windows_emitted(), 25);
}

TEST(BasicWindowAssemblerTest, WindowsPartitionTheStream) {
  auto a = BasicWindowAssembler::Create(2.0).value();
  BasicWindow w;
  std::vector<BasicWindow> windows;
  for (int i = 0; i < 50; ++i) {
    if (a.Add(i, i * 0.3, static_cast<features::CellId>(i % 7), &w)) {
      windows.push_back(w);
    }
  }
  if (a.Flush(&w)) windows.push_back(w);
  // Every frame appears in exactly one window, in order.
  size_t total = 0;
  int64_t prev_end = -1;
  for (const auto& win : windows) {
    EXPECT_GT(win.start_frame, prev_end);
    EXPECT_GE(win.end_frame, win.start_frame);
    prev_end = win.end_frame;
    total += win.ids.size();
  }
  EXPECT_EQ(total, 50u);
}

TEST(BasicWindowAssemblerTest, SparseFramesOnePerWindow) {
  // Frames 3 s apart with w = 1 s: every frame closes the previous window.
  auto a = BasicWindowAssembler::Create(1.0).value();
  BasicWindow w;
  EXPECT_FALSE(a.Add(0, 0.0, 1, &w));
  EXPECT_TRUE(a.Add(90, 3.0, 2, &w));
  EXPECT_EQ(w.ids.size(), 1u);
  EXPECT_TRUE(a.Add(180, 6.0, 3, &w));
  EXPECT_EQ(w.ids.size(), 1u);
}

TEST(BasicWindowAssemblerTest, NonZeroStartTime) {
  auto a = BasicWindowAssembler::Create(1.0).value();
  BasicWindow w;
  EXPECT_FALSE(a.Add(300, 10.0, 1, &w));
  EXPECT_FALSE(a.Add(312, 10.4, 2, &w));
  ASSERT_TRUE(a.Add(330, 11.0, 3, &w));
  EXPECT_DOUBLE_EQ(w.start_time, 10.0);
  EXPECT_EQ(w.start_frame, 300);
}

}  // namespace
}  // namespace vcd::stream
