#include "features/fingerprint.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <cmath>
#include <set>

#include "util/rng.h"
#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd::features {
namespace {

using vcd::video::DcFrame;
using vcd::video::RenderDcFrames;
using vcd::video::RenderOptions;
using vcd::video::SceneModel;

std::vector<DcFrame> KeyFrames(uint64_t seed, double seconds, double fps = 29.97,
                               double noise = 0.0, uint64_t noise_seed = 1) {
  SceneModel m = SceneModel::Generate(seed, seconds + 1.0);
  RenderOptions ro;
  ro.fps = fps;
  ro.noise_sigma = noise;
  ro.noise_seed = noise_seed;
  auto frames = RenderDcFrames(m, 0.0, seconds, ro, 12);
  VCD_CHECK(frames.ok(), "render failed");
  return std::move(frames).value();
}

TEST(FrameFingerprinterTest, CreateValidation) {
  FingerprintOptions o;
  EXPECT_TRUE(FrameFingerprinter::Create(o).ok());
  o.feature.d = 0;
  EXPECT_FALSE(FrameFingerprinter::Create(o).ok());
  o = FingerprintOptions();
  o.u = 0;
  EXPECT_FALSE(FrameFingerprinter::Create(o).ok());
}

TEST(FrameFingerprinterTest, NumCellsMatchesPartition) {
  FingerprintOptions o;  // d=5, u=4 defaults
  auto fp = FrameFingerprinter::Create(o).value();
  EXPECT_EQ(fp.num_cells(), 2ull * 5 * 1024);
}

TEST(FrameFingerprinterTest, IdsWithinRange) {
  auto fp = FrameFingerprinter::Create(FingerprintOptions()).value();
  auto ids = fp.FingerprintSequence(KeyFrames(3, 10.0));
  ASSERT_FALSE(ids.empty());
  for (CellId id : ids) EXPECT_LT(id, fp.num_cells());
}

TEST(FrameFingerprinterTest, DeterministicPipeline) {
  auto fp = FrameFingerprinter::Create(FingerprintOptions()).value();
  auto a = fp.FingerprintSequence(KeyFrames(5, 8.0));
  auto b = fp.FingerprintSequence(KeyFrames(5, 8.0));
  EXPECT_EQ(a, b);
}

TEST(FrameFingerprinterTest, DifferentContentDifferentSignatures) {
  auto fp = FrameFingerprinter::Create(FingerprintOptions()).value();
  auto a = fp.FingerprintSequence(KeyFrames(10, 10.0));
  auto b = fp.FingerprintSequence(KeyFrames(11, 10.0));
  int same = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) same += (a[i] == b[i]);
  EXPECT_LT(static_cast<double>(same) / static_cast<double>(n), 0.5);
}

TEST(FrameFingerprinterTest, CopiesAtDifferentFpsShareMostSignatures) {
  // The robustness property everything rests on: the same content sampled
  // at NTSC and PAL rates maps to heavily overlapping cell-id sets.
  auto fp = FrameFingerprinter::Create(FingerprintOptions()).value();
  auto ntsc = fp.FingerprintSequence(KeyFrames(21, 30.0, 29.97));
  auto pal = fp.FingerprintSequence(KeyFrames(21, 30.0, 25.0));
  std::set<CellId> sa(ntsc.begin(), ntsc.end()), sb(pal.begin(), pal.end());
  size_t inter = 0;
  for (CellId id : sa) inter += sb.count(id);
  const double jaccard =
      static_cast<double>(inter) / static_cast<double>(sa.size() + sb.size() - inter);
  EXPECT_GT(jaccard, 0.6) << "|A∩B|=" << inter;
}

TEST(FrameFingerprinterTest, NoisyCopyStillOverlaps) {
  auto fp = FrameFingerprinter::Create(FingerprintOptions()).value();
  auto clean = fp.FingerprintSequence(KeyFrames(23, 30.0, 29.97));
  auto noisy = fp.FingerprintSequence(KeyFrames(23, 30.0, 29.97, 3.0, 77));
  std::set<CellId> sa(clean.begin(), clean.end()), sb(noisy.begin(), noisy.end());
  size_t inter = 0;
  for (CellId id : sa) inter += sb.count(id);
  const double jaccard =
      static_cast<double>(inter) / static_cast<double>(sa.size() + sb.size() - inter);
  EXPECT_GT(jaccard, 0.5);
}

/// Parameterized sweep over (d, u): pipeline stays well-formed everywhere.
class FingerprintSweepTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FingerprintSweepTest, ValidIdsAcrossParameterSpace) {
  auto [d, u] = GetParam();
  FingerprintOptions o;
  o.feature.d = d;
  o.u = u;
  auto fp = FrameFingerprinter::Create(o);
  ASSERT_TRUE(fp.ok()) << "d=" << d << " u=" << u;
  auto ids = fp->FingerprintSequence(KeyFrames(31, 5.0));
  for (CellId id : ids) EXPECT_LT(id, fp->num_cells());
  EXPECT_EQ(fp->num_cells(),
            2ull * d * static_cast<uint64_t>(std::pow(u, d)) + 0ull);
}

INSTANTIATE_TEST_SUITE_P(
    DU, FingerprintSweepTest,
    ::testing::Values(std::pair{3, 2}, std::pair{3, 7}, std::pair{4, 4},
                      std::pair{5, 2}, std::pair{5, 4}, std::pair{5, 7},
                      std::pair{6, 3}, std::pair{7, 2}, std::pair{7, 4}));

}  // namespace
}  // namespace vcd::features
