#include "features/grid_pyramid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"

namespace vcd::features {
namespace {

TEST(GridPyramidTest, CreateValidation) {
  EXPECT_TRUE(GridPyramidPartition::Create(5, 4).ok());
  EXPECT_FALSE(GridPyramidPartition::Create(0, 4).ok());
  EXPECT_FALSE(GridPyramidPartition::Create(5, 0).ok());
  // u^d overflow of the 32-bit cell space.
  EXPECT_FALSE(GridPyramidPartition::Create(20, 10).ok());
}

TEST(GridPyramidTest, CellCounts) {
  auto gp = GridPyramidPartition::Create(5, 4, PartitionScheme::kGridPyramid).value();
  EXPECT_EQ(gp.num_cells(), 2ull * 5 * 1024);  // 2*d*u^d
  auto g = GridPyramidPartition::Create(5, 4, PartitionScheme::kGrid).value();
  EXPECT_EQ(g.num_cells(), 1024ull);
  auto p = GridPyramidPartition::Create(5, 4, PartitionScheme::kPyramid).value();
  EXPECT_EQ(p.num_cells(), 10ull);
}

TEST(GridPyramidTest, GridOrderRowMajor) {
  auto gp = GridPyramidPartition::Create(2, 4, PartitionScheme::kGrid).value();
  // f = (0.1, 0.6): slices (0, 2) → index 0*4+2 = 2.
  EXPECT_EQ(gp.Assign({0.1f, 0.6f}), 2u);
  // f = (0.9, 0.9): slices (3, 3) → 15.
  EXPECT_EQ(gp.Assign({0.9f, 0.9f}), 15u);
}

TEST(GridPyramidTest, BoundaryValueOneStaysInLastSlice) {
  auto gp = GridPyramidPartition::Create(1, 4, PartitionScheme::kGrid).value();
  EXPECT_EQ(gp.Assign({1.0f}), 3u);
}

TEST(GridPyramidTest, OutOfRangeValuesClamped) {
  auto gp = GridPyramidPartition::Create(2, 4, PartitionScheme::kGrid).value();
  EXPECT_EQ(gp.Assign({-0.5f, 2.0f}), gp.Assign({0.0f, 1.0f}));
}

TEST(GridPyramidTest, PyramidOrderBelowAndAbove) {
  auto gp = GridPyramidPartition::Create(3, 1, PartitionScheme::kPyramid).value();
  // Whole space is one cell centered at (0.5, 0.5, 0.5).
  // Deviation maximal on dim 1, below center → O_p = 1.
  EXPECT_EQ(gp.Assign({0.5f, 0.1f, 0.5f}), 1u);
  // Deviation maximal on dim 1, above center → O_p = 1 + d = 4.
  EXPECT_EQ(gp.Assign({0.5f, 0.9f, 0.5f}), 4u);
  // Deviation maximal on dim 2, below → 2.
  EXPECT_EQ(gp.Assign({0.55f, 0.55f, 0.2f}), 2u);
}

TEST(GridPyramidTest, PyramidTieBreaksToLowestDim) {
  auto gp = GridPyramidPartition::Create(2, 1, PartitionScheme::kPyramid).value();
  // Equal deviation on both dims, both above → j_max = 0, O_p = 2.
  EXPECT_EQ(gp.Assign({0.8f, 0.8f}), 2u);
}

TEST(GridPyramidTest, CombinedIdFormula) {
  const int d = 2, u = 4;
  auto gp = GridPyramidPartition::Create(d, u, PartitionScheme::kGridPyramid).value();
  std::vector<float> f = {0.30f, 0.70f};
  const uint64_t og = gp.GridOrder(f);
  const int op = gp.PyramidOrder(f, gp.GridCellCenter(f));
  EXPECT_EQ(gp.Assign(f), 2ull * d * og + static_cast<uint64_t>(op));
}

TEST(GridPyramidTest, AllIdsWithinRange) {
  Rng rng(3);
  for (auto scheme : {PartitionScheme::kGrid, PartitionScheme::kPyramid,
                      PartitionScheme::kGridPyramid}) {
    auto gp = GridPyramidPartition::Create(5, 4, scheme).value();
    for (int t = 0; t < 2000; ++t) {
      std::vector<float> f(5);
      for (auto& v : f) v = static_cast<float>(rng.UniformDouble());
      EXPECT_LT(gp.Assign(f), gp.num_cells());
    }
  }
}

TEST(GridPyramidTest, ManyCellsActuallyUsed) {
  Rng rng(5);
  auto gp = GridPyramidPartition::Create(3, 4, PartitionScheme::kGridPyramid).value();
  std::set<CellId> seen;
  for (int t = 0; t < 20000; ++t) {
    std::vector<float> f(3);
    for (auto& v : f) v = static_cast<float>(rng.UniformDouble());
    seen.insert(gp.Assign(f));
  }
  // 2*3*64 = 384 cells; uniform sampling should hit most of them.
  EXPECT_GT(seen.size(), 300u);
}

TEST(GridPyramidTest, GridCellCenterIsInsideCell) {
  auto gp = GridPyramidPartition::Create(4, 5).value();
  std::vector<float> f = {0.11f, 0.49f, 0.72f, 0.98f};
  auto center = gp.GridCellCenter(f);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(center[j], f[j], 1.0f / 5.0f);
  }
}

TEST(GridPyramidTest, PyramidOrderInsensitiveToNonArgmaxPerturbation) {
  // The paper's §III-A claim, verbatim: "Unless the value j_max is changed,
  // variances of other values will not affect the pyramid cell id." We
  // perturb every non-argmax dimension arbitrarily — as long as it stays in
  // its grid slice and below the dominant deviation, the cell id is
  // unchanged. A pure-grid refinement of matched granularity has no such
  // safe region.
  Rng rng(7);
  auto gp = GridPyramidPartition::Create(5, 4, PartitionScheme::kGridPyramid).value();
  int checked = 0;
  for (int t = 0; t < 2000; ++t) {
    std::vector<float> f(5);
    for (auto& v : f) v = static_cast<float>(rng.UniformDouble(0.02, 0.98));
    const auto center = gp.GridCellCenter(f);
    // Identify the dominant dimension and its deviation.
    int jmax = 0;
    float dev = -1;
    for (int j = 0; j < 5; ++j) {
      const float d = std::fabs(f[static_cast<size_t>(j)] - center[static_cast<size_t>(j)]);
      if (d > dev) {
        dev = d;
        jmax = j;
      }
    }
    if (dev < 0.02f) continue;  // no clear dominant direction; skip
    std::vector<float> g = f;
    for (int j = 0; j < 5; ++j) {
      if (j == jmax) continue;
      // Move dimension j anywhere within (center - dev, center + dev),
      // clipped to its grid slice.
      const float lo = std::max(center[static_cast<size_t>(j)] - dev * 0.95f,
                                center[static_cast<size_t>(j)] - 0.124f);
      const float hi = std::min(center[static_cast<size_t>(j)] + dev * 0.95f,
                                center[static_cast<size_t>(j)] + 0.124f);
      g[static_cast<size_t>(j)] = static_cast<float>(rng.UniformDouble(lo, hi));
    }
    EXPECT_EQ(gp.Assign(f), gp.Assign(g)) << "trial " << t;
    ++checked;
  }
  EXPECT_GT(checked, 1000);
}

TEST(GridPyramidTest, GridPyramidRefinesGrid) {
  // id / 2d recovers the grid order: the combined partition is a strict
  // refinement of the grid partition.
  Rng rng(9);
  auto gp = GridPyramidPartition::Create(5, 4, PartitionScheme::kGridPyramid).value();
  auto grid = GridPyramidPartition::Create(5, 4, PartitionScheme::kGrid).value();
  for (int t = 0; t < 2000; ++t) {
    std::vector<float> f(5);
    for (auto& v : f) v = static_cast<float>(rng.UniformDouble());
    EXPECT_EQ(gp.Assign(f) / 10, grid.Assign(f));
  }
}

TEST(GridPyramidTest, DeterministicAssign) {
  auto gp = GridPyramidPartition::Create(5, 4).value();
  std::vector<float> f = {0.1f, 0.9f, 0.3f, 0.5f, 0.7f};
  EXPECT_EQ(gp.Assign(f), gp.Assign(f));
}

}  // namespace
}  // namespace vcd::features
