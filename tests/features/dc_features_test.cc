#include "features/dc_features.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace vcd::features {
namespace {

using vcd::video::DcFrame;

/// Builds a DC frame whose blocks in 3×3 region (r, c) all hold the value
/// `values[r*3+c]` (values given as block means in [0,255]).
DcFrame MakeFrame(const std::vector<float>& region_means, int blocks_x = 12,
                  int blocks_y = 9) {
  DcFrame f;
  f.blocks_x = blocks_x;
  f.blocks_y = blocks_y;
  f.dc.resize(static_cast<size_t>(blocks_x) * blocks_y);
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      const int r = std::min(by * 3 / blocks_y, 2);
      const int c = std::min(bx * 3 / blocks_x, 2);
      f.dc[static_cast<size_t>(by) * blocks_x + bx] =
          8.0f * (region_means[static_cast<size_t>(r) * 3 + c] - 128.0f);
    }
  }
  return f;
}

TEST(FeatureOptionsTest, Validation) {
  FeatureOptions o;
  EXPECT_TRUE(o.Validate().ok());
  EXPECT_EQ(o.D(), 9);
  o.d = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.d = 10;
  EXPECT_FALSE(o.Validate().ok());
  o = FeatureOptions();
  o.grid_rows = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(DBlockFeatureExtractorTest, RegionAveragesExact) {
  std::vector<float> means = {10, 20, 30, 40, 50, 60, 70, 80, 90};
  DcFrame f = MakeFrame(means);
  FeatureOptions o;
  o.d = 9;
  auto ex = DBlockFeatureExtractor::Create(o).value();
  auto avg = ex.RegionAverages(f);
  ASSERT_EQ(avg.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_NEAR(avg[static_cast<size_t>(i)], 8.0f * (means[static_cast<size_t>(i)] - 128.0f), 1e-3)
        << "region " << i;
  }
}

TEST(DBlockFeatureExtractorTest, NormalizationSpansUnitInterval) {
  std::vector<float> means = {10, 20, 30, 40, 50, 60, 70, 80, 90};
  DcFrame f = MakeFrame(means);
  FeatureOptions o;
  o.d = 9;
  auto ex = DBlockFeatureExtractor::Create(o).value();
  auto feat = ex.Extract(f);
  float mn = 1e9f, mx = -1e9f;
  for (float v : feat) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_FLOAT_EQ(mn, 0.0f);
  EXPECT_FLOAT_EQ(mx, 1.0f);
}

TEST(DBlockFeatureExtractorTest, Eq1AffineInvariance) {
  // Eq. 1 min-max normalization makes features invariant to brightness
  // shifts and contrast scaling — the paper's core robustness claim.
  std::vector<float> means = {30, 90, 60, 120, 45, 75, 150, 100, 50};
  std::vector<float> shifted(9), scaled(9);
  for (int i = 0; i < 9; ++i) {
    shifted[static_cast<size_t>(i)] = means[static_cast<size_t>(i)] + 25.0f;
    scaled[static_cast<size_t>(i)] = 128.0f + (means[static_cast<size_t>(i)] - 128.0f) * 0.7f;
  }
  FeatureOptions o;
  o.d = 7;
  auto ex = DBlockFeatureExtractor::Create(o).value();
  auto f0 = ex.Extract(MakeFrame(means));
  auto f1 = ex.Extract(MakeFrame(shifted));
  auto f2 = ex.Extract(MakeFrame(scaled));
  for (size_t i = 0; i < f0.size(); ++i) {
    EXPECT_NEAR(f0[i], f1[i], 1e-4) << "brightness shift changed feature " << i;
    EXPECT_NEAR(f0[i], f2[i], 1e-4) << "contrast scale changed feature " << i;
  }
}

TEST(DBlockFeatureExtractorTest, FlatFrameMapsToCenter) {
  std::vector<float> means(9, 100.0f);
  FeatureOptions o;
  o.d = 5;
  auto ex = DBlockFeatureExtractor::Create(o).value();
  auto feat = ex.Extract(MakeFrame(means));
  for (float v : feat) EXPECT_FLOAT_EQ(v, 0.5f);
}

TEST(DBlockFeatureExtractorTest, SelectionIsDeterministicPrefix) {
  // Feature vectors for d and d' < d must agree on the shared prefix order.
  std::vector<float> means = {10, 90, 45, 30, 70, 55, 20, 60, 80};
  DcFrame f = MakeFrame(means);
  FeatureOptions o5;
  o5.d = 5;
  FeatureOptions o7;
  o7.d = 7;
  auto e5 = DBlockFeatureExtractor::Create(o5).value();
  auto e7 = DBlockFeatureExtractor::Create(o7).value();
  auto f5 = e5.Extract(f);
  auto f7 = e7.Extract(f);
  for (size_t i = 0; i < f5.size(); ++i) EXPECT_FLOAT_EQ(f5[i], f7[i]);
}

TEST(DBlockFeatureExtractorTest, CenterRegionSelectedFirst) {
  // With d=1 only the center region (index 4 of the 3×3 grid) is kept.
  std::vector<float> means = {0, 0, 0, 0, 200, 0, 0, 0, 0};
  FeatureOptions o;
  o.d = 1;
  auto ex = DBlockFeatureExtractor::Create(o).value();
  auto feat = ex.Extract(MakeFrame(means));
  ASSERT_EQ(feat.size(), 1u);
  EXPECT_FLOAT_EQ(feat[0], 1.0f);  // center is the max region
}

TEST(DBlockFeatureExtractorTest, UnevenBlockGridCovered) {
  // blocks_x=10, blocks_y=7 do not divide by 3; every block must still land
  // in exactly one region (averages finite, no crash).
  Rng rng(5);
  DcFrame f;
  f.blocks_x = 10;
  f.blocks_y = 7;
  f.dc.resize(70);
  for (auto& v : f.dc) v = static_cast<float>(rng.UniformDouble(-800, 800));
  FeatureOptions o;
  o.d = 9;
  auto ex = DBlockFeatureExtractor::Create(o).value();
  auto avg = ex.RegionAverages(f);
  for (float v : avg) EXPECT_TRUE(std::isfinite(v));
}

TEST(DBlockFeatureExtractorTest, OrdinalOrderSurvivesMildNoise) {
  // The ordinal pattern of region averages is the paper's stability claim:
  // small perturbations rarely flip the argmax region.
  Rng rng(7);
  int argmax_flips = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> means(9);
    for (auto& v : means) v = static_cast<float>(rng.UniformDouble(40, 200));
    std::vector<float> noisy = means;
    for (auto& v : noisy) v += static_cast<float>(rng.Gaussian() * 1.5);
    auto argmax = [](const std::vector<float>& v) {
      return std::max_element(v.begin(), v.end()) - v.begin();
    };
    if (argmax(means) != argmax(noisy)) ++argmax_flips;
  }
  EXPECT_LT(argmax_flips, trials / 10);
}

}  // namespace
}  // namespace vcd::features
