/// \file export_test.cc
/// Golden-string tests for both export formats. Every histogram observation
/// is driven through a SpanTimer against a FakeClock, so the rendered
/// documents are bit-deterministic: stable (name, labels) ordering from the
/// registry map, sparse cumulative buckets with a trailing +Inf, and the
/// exact escaping rules of each format.

#include <gtest/gtest.h>

#include <string>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace vcd::obs {
namespace {

TEST(ExportTest, EmptyRegistry) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.ToJson(), "{\n  \"metrics\": [\n  ]\n}\n");
  EXPECT_EQ(reg.ToPrometheusText(), "");
}

/// Builds the canonical three-instrument registry used by both golden
/// tests. Span durations are dictated by the FakeClock: 5ns, 5ns, 1ns,
/// 1024ns — landing in buckets 2, 2, 0 and 10.
void Populate(MetricsRegistry* reg) {
  reg->RegisterCounter("vcd_test_frames_total", "Frames \"seen\" so far.")
      ->Inc(3);
  reg->RegisterGauge("vcd_test_queue_depth", "Depth.", {{"shard", "0"}})
      ->Set(7);
  Histogram* h = reg->RegisterHistogram("vcd_test_span_ns", "Span.");
  FakeClock clock(1000);
  ScopedClockOverride override(&clock);
  for (const int64_t d : {5, 5, 1, 1024}) {
    SpanTimer span(h);
    clock.Advance(d);
  }
}

TEST(ExportTest, GoldenJson) {
  MetricsRegistry reg;
  Populate(&reg);
  const std::string expected =
      "{\n"
      "  \"metrics\": [\n"
      "    {\n"
      "      \"name\": \"vcd_test_frames_total\",\n"
      "      \"type\": \"counter\",\n"
      "      \"help\": \"Frames \\\"seen\\\" so far.\",\n"
      "      \"value\": 3\n"
      "    },\n"
      "    {\n"
      "      \"name\": \"vcd_test_queue_depth\",\n"
      "      \"type\": \"gauge\",\n"
      "      \"help\": \"Depth.\",\n"
      "      \"labels\": {\"shard\": \"0\"},\n"
      "      \"value\": 7\n"
      "    },\n"
      "    {\n"
      "      \"name\": \"vcd_test_span_ns\",\n"
      "      \"type\": \"histogram\",\n"
      "      \"help\": \"Span.\",\n"
      "      \"count\": 4,\n"
      "      \"sum\": 1035,\n"
      "      \"buckets\": [{\"le\": \"1\", \"count\": 1}, "
      "{\"le\": \"7\", \"count\": 3}, {\"le\": \"2047\", \"count\": 4}, "
      "{\"le\": \"+Inf\", \"count\": 4}]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(reg.ToJson(), expected);
}

TEST(ExportTest, GoldenPrometheus) {
  MetricsRegistry reg;
  Populate(&reg);
  const std::string expected =
      "# HELP vcd_test_frames_total Frames \"seen\" so far.\n"
      "# TYPE vcd_test_frames_total counter\n"
      "vcd_test_frames_total 3\n"
      "# HELP vcd_test_queue_depth Depth.\n"
      "# TYPE vcd_test_queue_depth gauge\n"
      "vcd_test_queue_depth{shard=\"0\"} 7\n"
      "# HELP vcd_test_span_ns Span.\n"
      "# TYPE vcd_test_span_ns histogram\n"
      "vcd_test_span_ns_bucket{le=\"1\"} 1\n"
      "vcd_test_span_ns_bucket{le=\"7\"} 3\n"
      "vcd_test_span_ns_bucket{le=\"2047\"} 4\n"
      "vcd_test_span_ns_bucket{le=\"+Inf\"} 4\n"
      "vcd_test_span_ns_sum 1035\n"
      "vcd_test_span_ns_count 4\n";
  EXPECT_EQ(reg.ToPrometheusText(), expected);
}

TEST(ExportTest, PrometheusLabelValueEscaping) {
  MetricsRegistry reg;
  reg.RegisterGauge("vcd_test_level", "L.", {{"path", "a\\b\"c\nd"}})->Set(1);
  const std::string expected =
      "# HELP vcd_test_level L.\n"
      "# TYPE vcd_test_level gauge\n"
      "vcd_test_level{path=\"a\\\\b\\\"c\\nd\"} 1\n";
  EXPECT_EQ(reg.ToPrometheusText(), expected);
}

TEST(ExportTest, PrometheusHelpEscaping) {
  MetricsRegistry reg;
  reg.RegisterCounter("vcd_test_a_total", "line\nbreak \\ slash")->Inc(1);
  const std::string expected =
      "# HELP vcd_test_a_total line\\nbreak \\\\ slash\n"
      "# TYPE vcd_test_a_total counter\n"
      "vcd_test_a_total 1\n";
  EXPECT_EQ(reg.ToPrometheusText(), expected);
}

TEST(ExportTest, JsonLabelEscaping) {
  MetricsRegistry reg;
  reg.RegisterGauge("vcd_test_level", "L.", {{"path", "a\"b\nc"}})->Set(2);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"labels\": {\"path\": \"a\\\"b\\nc\"}"),
            std::string::npos)
      << json;
}

TEST(ExportTest, LabeledFamilySharesOneHeader) {
  MetricsRegistry reg;
  reg.RegisterCounter("vcd_test_a_total", "A.", {{"shard", "0"}})->Inc(1);
  reg.RegisterCounter("vcd_test_a_total", "A.", {{"shard", "1"}})->Inc(2);
  const std::string expected =
      "# HELP vcd_test_a_total A.\n"
      "# TYPE vcd_test_a_total counter\n"
      "vcd_test_a_total{shard=\"0\"} 1\n"
      "vcd_test_a_total{shard=\"1\"} 2\n";
  EXPECT_EQ(reg.ToPrometheusText(), expected);
}

TEST(ExportTest, SpanAgainstFakeClockIsBitDeterministic) {
  // Two identical FakeClock-driven runs render byte-identical documents —
  // the determinism contract every golden test above relies on.
  const auto render = [] {
    MetricsRegistry reg;
    Populate(&reg);
    return reg.ToJson() + reg.ToPrometheusText();
  };
  EXPECT_EQ(render(), render());
}

TEST(ExportTest, NullHistogramSpanIsInert) {
  // A span over a null instrument must not read the clock at all; with no
  // override installed this would otherwise hit the real steady clock.
  FakeClock clock(0);
  ScopedClockOverride override(&clock);
  {
    SpanTimer span(nullptr);
    clock.Advance(100);
  }
  // Nothing to assert beyond "did not crash"; the real check is that a
  // wired histogram still sees exactly the advance.
  Histogram h;
  {
    SpanTimer span(&h);
    clock.Advance(100);
  }
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.Sum(), 100);
}

}  // namespace
}  // namespace vcd::obs
