/// \file metrics_test.cc
/// Unit contract of the metrics primitives: log-2 histogram bucket
/// boundaries, overflow saturation, property-style merge associativity and
/// commutativity (fixed boundaries make MergeFrom a bucket-wise add), and
/// the registry's dedupe/type-check semantics.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace vcd::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds everything below 2, including clamped negatives.
  EXPECT_EQ(Histogram::BucketFor(-100), 0);
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 0);
  // Bucket i (0 < i < last) covers [2^i, 2^(i+1)).
  EXPECT_EQ(Histogram::BucketFor(2), 1);
  EXPECT_EQ(Histogram::BucketFor(3), 1);
  EXPECT_EQ(Histogram::BucketFor(4), 2);
  EXPECT_EQ(Histogram::BucketFor(7), 2);
  EXPECT_EQ(Histogram::BucketFor(8), 3);
  EXPECT_EQ(Histogram::BucketFor(1024), 10);
  EXPECT_EQ(Histogram::BucketFor(2047), 10);
  EXPECT_EQ(Histogram::BucketFor(2048), 11);
  // Every power of two starts its own bucket up to the saturating last one.
  for (int i = 1; i < Histogram::kNumBuckets - 1; ++i) {
    EXPECT_EQ(Histogram::BucketFor(int64_t{1} << i), i) << "2^" << i;
    EXPECT_EQ(Histogram::BucketFor((int64_t{1} << (i + 1)) - 1), i)
        << "2^" << (i + 1) << " - 1";
  }
}

TEST(HistogramTest, BucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 2047);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 2),
            (int64_t{1} << (Histogram::kNumBuckets - 1)) - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            std::numeric_limits<int64_t>::max());
}

TEST(HistogramTest, OverflowSaturatesIntoLastBucket) {
  Histogram h;
  h.Observe(int64_t{1} << (Histogram::kNumBuckets - 1));  // first saturating value
  h.Observe(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets - 1), 2);
  EXPECT_EQ(h.Count(), 2);
}

TEST(HistogramTest, NegativeObservationsClampToZeroInSum) {
  Histogram h;
  h.Observe(-50);
  h.Observe(10);
  EXPECT_EQ(h.Count(), 2);
  EXPECT_EQ(h.Sum(), 10);  // the -50 contributed 0
  EXPECT_EQ(h.BucketCount(0), 1);
}

/// Fills \p h with \p n pseudo-random observations drawn from \p rng,
/// spanning every magnitude class including the saturating bucket.
void FillRandom(Histogram* h, Rng* rng, int n) {
  for (int i = 0; i < n; ++i) {
    const int shift = static_cast<int>(rng->Uniform(62));
    h->Observe(static_cast<int64_t>(rng->Uniform(3)) << shift);
  }
}

void ExpectSame(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_EQ(a.Sum(), b.Sum());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(a.BucketCount(i), b.BucketCount(i)) << "bucket " << i;
  }
}

TEST(HistogramTest, MergeIsCommutative) {
  // Property-style over several seeds: merge(A<-B) == merge(B<-A) when both
  // sides start from the same pair of histograms.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng_a(seed), rng_b(seed + 100);
    Histogram ab_a, ba_b;  // "A then merge B" vs "B then merge A"
    Histogram a2, b2;      // fresh copies with identical contents
    {
      Rng ra(seed), rb(seed + 100);
      FillRandom(&ab_a, &rng_a, 200);
      FillRandom(&a2, &ra, 200);
      FillRandom(&ba_b, &rng_b, 150);
      FillRandom(&b2, &rb, 150);
    }
    ab_a.MergeFrom(b2);   // A + B
    ba_b.MergeFrom(a2);   // B + A
    ExpectSame(ab_a, ba_b);
  }
}

TEST(HistogramTest, MergeIsAssociative) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    // Two independent builds of the same A, B, C contents.
    Histogram a1, b1, c1, a2, b2, c2;
    {
      Rng ra(seed), rb(seed + 17), rc(seed + 34);
      FillRandom(&a1, &ra, 120);
      FillRandom(&b1, &rb, 90);
      FillRandom(&c1, &rc, 60);
    }
    {
      Rng ra(seed), rb(seed + 17), rc(seed + 34);
      FillRandom(&a2, &ra, 120);
      FillRandom(&b2, &rb, 90);
      FillRandom(&c2, &rc, 60);
    }
    // (A + B) + C
    a1.MergeFrom(b1);
    a1.MergeFrom(c1);
    // A + (B + C)
    b2.MergeFrom(c2);
    a2.MergeFrom(b2);
    ExpectSame(a1, a2);
  }
}

TEST(HistogramTest, MergePreservesTotalCount) {
  Histogram a, b;
  Rng ra(5), rb(6);
  FillRandom(&a, &ra, 100);
  FillRandom(&b, &rb, 50);
  const int64_t expect = a.Count() + b.Count();
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), expect);
  int64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) bucket_total += a.BucketCount(i);
  EXPECT_EQ(bucket_total, expect);
}

TEST(RegistryTest, RegistrationDedupesOnNameAndLabels) {
  MetricsRegistry reg;
  Counter* a = reg.RegisterCounter("vcd_test_frames_total", "help");
  Counter* b = reg.RegisterCounter("vcd_test_frames_total", "help");
  EXPECT_EQ(a, b) << "same (name, labels) must return the same instrument";
  Counter* labeled =
      reg.RegisterCounter("vcd_test_frames_total", "help", {{"shard", "0"}});
  EXPECT_NE(a, labeled) << "different labels are a different series";
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3);
  EXPECT_EQ(labeled->Value(), 0);
}

TEST(RegistryTest, CollectIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.RegisterGauge("vcd_test_b_depth", "b")->Set(2);
  reg.RegisterCounter("vcd_test_a_total", "a")->Inc(1);
  reg.RegisterHistogram("vcd_test_c_ns", "c")->Observe(5);
  reg.RegisterCounter("vcd_test_a_total", "a", {{"shard", "1"}})->Inc(7);
  const std::vector<MetricSnapshot> snaps = reg.Collect();
  ASSERT_EQ(snaps.size(), 4u);
  // (name, labels) order: unlabeled sorts before labeled for equal names.
  EXPECT_EQ(snaps[0].name, "vcd_test_a_total");
  EXPECT_TRUE(snaps[0].labels.empty());
  EXPECT_EQ(snaps[0].value, 1);
  EXPECT_EQ(snaps[1].name, "vcd_test_a_total");
  ASSERT_EQ(snaps[1].labels.size(), 1u);
  EXPECT_EQ(snaps[1].labels[0].value, "1");
  EXPECT_EQ(snaps[1].value, 7);
  EXPECT_EQ(snaps[2].name, "vcd_test_b_depth");
  EXPECT_EQ(snaps[2].type, MetricType::kGauge);
  EXPECT_EQ(snaps[3].name, "vcd_test_c_ns");
  EXPECT_EQ(snaps[3].type, MetricType::kHistogram);
  EXPECT_EQ(snaps[3].count, 1);
  EXPECT_EQ(snaps[3].sum, 5);
}

TEST(RegistryDeathTest, TypeMismatchReRegistrationIsFatal) {
  MetricsRegistry reg;
  reg.RegisterCounter("vcd_test_frames_total", "help");
  EXPECT_DEATH(reg.RegisterGauge("vcd_test_frames_total", "help"),
               "different type");
}

TEST(RegistryDeathTest, InvalidNameIsFatal) {
  MetricsRegistry reg;
  EXPECT_DEATH(reg.RegisterCounter("Bad-Name", "help"), "bad metric name");
}

}  // namespace
}  // namespace vcd::obs
