/// \file metrics_equivalence_test.cc
/// The pooled and scalar hot paths must publish identical *semantic*
/// counters (windows, builds, ORs, prune hits/misses, combines, compares,
/// candidate admissions/expiries, matches) over identical schedules — the
/// observability analogue of the pooled byte-equivalence contract. Timing
/// histograms are excluded: only wall-clock differs between the paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/detector.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/check.h"
#include "util/rng.h"

namespace vcd::core {
namespace {

using features::CellId;

constexpr double kKeyFps = 2.5;

std::vector<CellId> RandomContent(Rng* rng, size_t n, uint32_t lo, uint32_t hi) {
  std::vector<CellId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(lo + static_cast<CellId>(rng->Uniform(hi - lo)));
  }
  return out;
}

/// Runs one fixed schedule with \p config publishing into a private
/// registry, and returns every counter series as name → value.
std::map<std::string, int64_t> RunAndCollect(DetectorConfig config) {
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  Rng rng(424242);
  const std::vector<CellId> query1 = RandomContent(&rng, 40, 0, 1000);
  const std::vector<CellId> query2 = RandomContent(&rng, 30, 1000, 2000);

  auto det = CopyDetector::Create(config).value();
  VCD_CHECK(det->AddQueryCells(1, query1, 16.0).ok(), "add q1");
  VCD_CHECK(det->AddQueryCells(2, query2, 12.0).ok(), "add q2");

  int64_t slot = 0;
  const auto feed = [&](const std::vector<CellId>& ids) {
    for (CellId id : ids) {
      VCD_CHECK(det->ProcessFingerprint(slot * 12,
                                        static_cast<double>(slot) / kKeyFps, id)
                    .ok(),
                "feed");
      ++slot;
    }
  };
  feed(RandomContent(&rng, 50, 5000, 9000));
  feed(query1);  // embedded copy
  feed(RandomContent(&rng, 25, 5000, 9000));
  feed(query2);  // second copy
  feed(RandomContent(&rng, 30, 5000, 9000));
  VCD_CHECK(det->Finish().ok(), "finish");

  std::map<std::string, int64_t> counters;
  for (const obs::MetricSnapshot& s : registry.Collect()) {
    if (s.type == obs::MetricType::kCounter) counters[s.name] = s.value;
  }
  return counters;
}

class MetricsEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kEnabled) {
      GTEST_SKIP() << "detector metrics compiled out (build with -DVCD_OBS=ON)";
    }
  }
};

TEST_F(MetricsEquivalenceTest, PooledAndScalarPublishIdenticalCounters) {
  for (const Representation rep : {Representation::kBit, Representation::kSketch}) {
    DetectorConfig config;
    config.K = 128;
    config.window_seconds = 4.0;
    config.delta = 0.65;
    config.representation = rep;

    config.use_pooled_kernels = false;
    const std::map<std::string, int64_t> scalar = RunAndCollect(config);
    config.use_pooled_kernels = true;
    const std::map<std::string, int64_t> pooled = RunAndCollect(config);

    ASSERT_FALSE(scalar.empty());
    EXPECT_GT(scalar.at("vcd_detector_windows_total"), 0);
    EXPECT_GT(scalar.at("vcd_detector_matches_total"), 0)
        << "schedule must produce matches for the comparison to bite";
    // Whole-map comparison: same series names AND same values.
    EXPECT_EQ(pooled, scalar)
        << "pooled vs scalar counter divergence (representation "
        << static_cast<int>(rep) << ")";
  }
}

TEST_F(MetricsEquivalenceTest, CountersMirrorDetectorStats) {
  // The registry series are per-window delta publications of DetectorStats;
  // after Finish they must agree exactly with the struct the detector
  // reports, for every stat that has a series.
  DetectorConfig config;
  config.K = 128;
  config.window_seconds = 4.0;
  config.delta = 0.65;
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  Rng rng(7);
  const std::vector<CellId> query = RandomContent(&rng, 40, 0, 1000);
  auto det = CopyDetector::Create(config).value();
  ASSERT_TRUE(det->AddQueryCells(1, query, 16.0).ok());
  int64_t slot = 0;
  for (CellId id : RandomContent(&rng, 60, 5000, 9000)) {
    ASSERT_TRUE(det->ProcessFingerprint(slot * 12,
                                        static_cast<double>(slot) / kKeyFps, id)
                    .ok());
    ++slot;
  }
  for (CellId id : query) {
    ASSERT_TRUE(det->ProcessFingerprint(slot * 12,
                                        static_cast<double>(slot) / kKeyFps, id)
                    .ok());
    ++slot;
  }
  ASSERT_TRUE(det->Finish().ok());

  std::map<std::string, int64_t> counters;
  for (const obs::MetricSnapshot& s : registry.Collect()) {
    if (s.type == obs::MetricType::kCounter) counters[s.name] = s.value;
  }
  const DetectorStats& st = det->stats();
  EXPECT_EQ(counters.at("vcd_detector_windows_total"), st.windows);
  EXPECT_EQ(counters.at("vcd_detector_degraded_windows_total"),
            st.degraded_windows);
  EXPECT_EQ(counters.at("vcd_detector_bitsig_builds_total"), st.bitsig_builds);
  EXPECT_EQ(counters.at("vcd_detector_bitsig_ors_total"), st.bitsig_ors);
  EXPECT_EQ(counters.at("vcd_detector_sketch_combines_total"),
            st.sketch_combines);
  EXPECT_EQ(counters.at("vcd_detector_sketch_compares_total"),
            st.sketch_compares);
  EXPECT_EQ(counters.at("vcd_detector_prune_hits_total"), st.candidates_pruned);
  EXPECT_EQ(counters.at("vcd_detector_matches_total"),
            static_cast<int64_t>(det->matches().size()));
  // The candidate census balances: everything admitted was either expired
  // or is still live at Finish.
  EXPECT_GE(counters.at("vcd_detector_candidates_admitted_total"),
            counters.at("vcd_detector_candidates_expired_total"));
}

}  // namespace
}  // namespace vcd::core
