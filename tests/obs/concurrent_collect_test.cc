/// \file concurrent_collect_test.cc
/// Collect() racing live writers. The update path is wait-free relaxed
/// atomics and the registry mutex only guards the entry map, so concurrent
/// Observe/Inc vs Collect/ToJson must be data-race-free — this test exists
/// to run under TSan (tools/check.sh tsan leg) and to pin the monotonicity
/// guarantee: successive collections of a counter never go backwards.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace vcd::obs {
namespace {

TEST(ConcurrentCollectTest, WritersVsCollectors) {
  MetricsRegistry reg;
  Counter* counter = reg.RegisterCounter("vcd_test_ops_total", "ops");
  Gauge* gauge = reg.RegisterGauge("vcd_test_level", "level");
  Histogram* hist = reg.RegisterHistogram("vcd_test_latency_ns", "lat");

  constexpr int kWriters = 4;
  constexpr int kIterations = 20000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kIterations; ++i) {
        counter->Inc();
        gauge->Set(i);
        hist->Observe((int64_t{1} << (i % 24)) + w);
      }
    });
  }

  // One collector snapshots while registration also continues: late
  // registration racing Collect is the executor-opens-a-stream case.
  std::thread collector([&] {
    int64_t last = 0;
    int rounds = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<MetricSnapshot> snaps = reg.Collect();
      for (const MetricSnapshot& s : snaps) {
        if (s.name == "vcd_test_ops_total") {
          EXPECT_GE(s.value, last) << "counter went backwards";
          last = s.value;
        }
      }
      const std::string json = reg.ToJson();
      EXPECT_FALSE(json.empty());
      if (++rounds % 16 == 0) {
        reg.RegisterCounter("vcd_test_late_total",
                            "registered mid-collection");
      }
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  collector.join();

  // Writers quiesced: the final snapshot is exact.
  EXPECT_EQ(counter->Value(), int64_t{kWriters} * kIterations);
  EXPECT_EQ(hist->Count(), int64_t{kWriters} * kIterations);
  int64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += hist->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, hist->Count());
}

TEST(ConcurrentCollectTest, ParallelMergeMatchesSerialMerge) {
  // Shard-style merge under concurrency: N threads each fill a private
  // histogram and merge it into a shared one; the result must equal the
  // serial merge of the same parts (associativity + atomic adds).
  constexpr int kParts = 8;
  std::vector<Histogram> parts(kParts);
  for (int p = 0; p < kParts; ++p) {
    for (int i = 0; i < 1000; ++i) {
      parts[static_cast<size_t>(p)].Observe((p + 1) * i);
    }
  }
  Histogram parallel_merged;
  {
    std::vector<std::thread> threads;
    threads.reserve(kParts);
    for (int p = 0; p < kParts; ++p) {
      threads.emplace_back(
          [&parallel_merged, &parts, p] {
            parallel_merged.MergeFrom(parts[static_cast<size_t>(p)]);
          });
    }
    for (std::thread& t : threads) t.join();
  }
  Histogram serial_merged;
  for (const Histogram& p : parts) serial_merged.MergeFrom(p);
  EXPECT_EQ(parallel_merged.Count(), serial_merged.Count());
  EXPECT_EQ(parallel_merged.Sum(), serial_merged.Sum());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(parallel_merged.BucketCount(i), serial_merged.BucketCount(i));
  }
}

}  // namespace
}  // namespace vcd::obs
