/// \file properties_test.cc
/// Cross-module property tests: the statistical and algebraic invariants
/// the paper's correctness rests on, checked over randomized inputs.

#include <gtest/gtest.h>

#include <set>

#include "features/fingerprint.h"
#include "index/hash_query_index.h"
#include "sketch/bit_signature.h"
#include "sketch/jaccard.h"
#include "sketch/minhash.h"
#include "util/rng.h"

namespace vcd {
namespace {

using features::CellId;
using sketch::BitSignature;
using sketch::MinHashFamily;
using sketch::Sketch;
using sketch::Sketcher;

std::vector<CellId> RandomIds(Rng* rng, size_t n, uint32_t universe) {
  std::vector<CellId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<CellId>(rng->Uniform(universe)));
  }
  return out;
}

/// Property: splitting a sequence at ANY point and combining the two part
/// sketches equals the whole sequence's sketch (Property 1, arbitrary cut).
TEST(PropertyTest, SketchCombineAtArbitraryCuts) {
  Rng rng(101);
  auto fam = MinHashFamily::Create(64).value();
  Sketcher sk(&fam);
  for (int trial = 0; trial < 25; ++trial) {
    auto seq = RandomIds(&rng, 2 + rng.Uniform(100), 5000);
    const Sketch whole = sk.FromSequence(seq);
    const size_t cut = 1 + rng.Uniform(seq.size() - 1);
    Sketch left = sk.FromSequence({seq.begin(), seq.begin() + static_cast<long>(cut)});
    const Sketch right =
        sk.FromSequence({seq.begin() + static_cast<long>(cut), seq.end()});
    Sketcher::Combine(&left, right);
    EXPECT_EQ(left, whole) << "cut " << cut;
  }
}

/// Property: combining in any association order gives the same sketch
/// (min is associative and commutative).
TEST(PropertyTest, SketchCombineAssociative) {
  Rng rng(103);
  auto fam = MinHashFamily::Create(32).value();
  Sketcher sk(&fam);
  auto a = sk.FromSequence(RandomIds(&rng, 20, 3000));
  auto b = sk.FromSequence(RandomIds(&rng, 20, 3000));
  auto c = sk.FromSequence(RandomIds(&rng, 20, 3000));
  Sketch ab = a;
  Sketcher::Combine(&ab, b);
  Sketch ab_c = ab;
  Sketcher::Combine(&ab_c, c);
  Sketch bc = b;
  Sketcher::Combine(&bc, c);
  Sketch a_bc = a;
  Sketcher::Combine(&a_bc, bc);
  EXPECT_EQ(ab_c, a_bc);
}

/// Property: element-wise-min combination is commutative (Property 1) —
/// with associativity, the algebraic fact that lets the parallel executor's
/// shards build window sketches independently and merge them in any
/// completion order without changing the result. Fuzzed over seeded random
/// sketches of varying K and set size.
TEST(PropertyTest, SketchCombineCommutative) {
  Rng rng(137);
  for (int trial = 0; trial < 40; ++trial) {
    const int k = 8 + static_cast<int>(rng.Uniform(120));
    auto fam = MinHashFamily::Create(k, rng.Next()).value();
    Sketcher sk(&fam);
    const Sketch a = sk.FromSequence(RandomIds(&rng, 1 + rng.Uniform(60), 4000));
    const Sketch b = sk.FromSequence(RandomIds(&rng, 1 + rng.Uniform(60), 4000));
    Sketch ab = a;
    Sketcher::Combine(&ab, b);
    Sketch ba = b;
    Sketcher::Combine(&ba, a);
    EXPECT_EQ(ab, ba) << "trial " << trial << " k=" << k;
  }
}

/// Property: bit-signature OR (Def. 3) is associative and commutative —
/// the same out-of-order-merge guarantee for the Bit representation.
TEST(PropertyTest, BitSignatureOrAssociativeCommutative) {
  Rng rng(139);
  for (int trial = 0; trial < 40; ++trial) {
    const int k = 8 + static_cast<int>(rng.Uniform(72));
    auto fam = MinHashFamily::Create(k, rng.Next()).value();
    Sketcher sk(&fam);
    const Sketch query = sk.FromSequence(RandomIds(&rng, 30, 2500));
    const BitSignature s1 = BitSignature::FromSketches(
        sk.FromSequence(RandomIds(&rng, 1 + rng.Uniform(20), 2500)), query);
    const BitSignature s2 = BitSignature::FromSketches(
        sk.FromSequence(RandomIds(&rng, 1 + rng.Uniform(20), 2500)), query);
    const BitSignature s3 = BitSignature::FromSketches(
        sk.FromSequence(RandomIds(&rng, 1 + rng.Uniform(20), 2500)), query);
    // Commutativity.
    BitSignature s12 = s1;
    s12.OrWith(s2);
    BitSignature s21 = s2;
    s21.OrWith(s1);
    EXPECT_TRUE(s12 == s21) << "trial " << trial;
    // Associativity.
    BitSignature left = s12;
    left.OrWith(s3);
    BitSignature s23 = s2;
    s23.OrWith(s3);
    BitSignature right = s1;
    right.OrWith(s23);
    EXPECT_TRUE(left == right) << "trial " << trial;
  }
}

/// Property: bit-signature OR distributes over multi-way combination — the
/// signature of an n-way combined candidate equals the OR of the n parts'
/// signatures, for any n.
TEST(PropertyTest, BitSignatureMultiWayOr) {
  Rng rng(107);
  auto fam = MinHashFamily::Create(48).value();
  Sketcher sk(&fam);
  for (int trial = 0; trial < 20; ++trial) {
    const int parts = 2 + static_cast<int>(rng.Uniform(6));
    Sketch query = sk.FromSequence(RandomIds(&rng, 30, 2000));
    Sketch combined = sk.Empty();
    BitSignature orsig(48);
    for (int p = 0; p < parts; ++p) {
      Sketch part = sk.FromSequence(RandomIds(&rng, 10, 2000));
      Sketcher::Combine(&combined, part);
      BitSignature psig = BitSignature::FromSketches(part, query);
      orsig.OrWith(psig);
    }
    EXPECT_TRUE(orsig == BitSignature::FromSketches(combined, query));
  }
}

/// Property: Lemma 2 is a true upper-bound filter — no candidate that can
/// still reach similarity δ against the query is ever pruned, for any
/// extension of the candidate.
TEST(PropertyTest, Lemma2NeverPrunesFutureMatches) {
  Rng rng(109);
  auto fam = MinHashFamily::Create(40).value();
  Sketcher sk(&fam);
  const double delta = 0.6;
  for (int trial = 0; trial < 40; ++trial) {
    Sketch query = sk.FromSequence(RandomIds(&rng, 25, 1500));
    Sketch cand = sk.FromSequence(RandomIds(&rng, 10, 1500));
    BitSignature sig = BitSignature::FromSketches(cand, query);
    if (sig.SatisfiesLemma2(delta)) continue;  // not pruned; nothing to check
    // The candidate was pruned. Extend it arbitrarily (including with the
    // query's own content — the best case) and verify it can never match.
    Sketch best = cand;
    Sketcher::Combine(&best, query);
    EXPECT_LT(Sketcher::Similarity(best, query), delta)
        << "pruned candidate could still have matched";
  }
}

/// Property: min-hash similarity is reorder-invariant over windows — the
/// estimate for a stream segment does not depend on the order its windows
/// arrive in (the core robustness claim, end to end).
TEST(PropertyTest, WindowOrderInvariance) {
  Rng rng(113);
  auto fam = MinHashFamily::Create(64).value();
  Sketcher sk(&fam);
  auto w1 = RandomIds(&rng, 12, 4000);
  auto w2 = RandomIds(&rng, 12, 4000);
  auto w3 = RandomIds(&rng, 12, 4000);
  Sketch fwd = sk.FromSequence(w1);
  Sketcher::Combine(&fwd, sk.FromSequence(w2));
  Sketcher::Combine(&fwd, sk.FromSequence(w3));
  Sketch rev = sk.FromSequence(w3);
  Sketcher::Combine(&rev, sk.FromSequence(w1));
  Sketcher::Combine(&rev, sk.FromSequence(w2));
  EXPECT_EQ(fwd, rev);
}

/// Property: the index probe plus per-query signatures is consistent with
/// computing everything by brute force, across many random worlds.
TEST(PropertyTest, IndexProbeEquivalenceSweep) {
  Rng rng(127);
  for (int world = 0; world < 5; ++world) {
    const int k = 8 + static_cast<int>(rng.Uniform(56));
    const int m = 2 + static_cast<int>(rng.Uniform(30));
    auto fam = MinHashFamily::Create(k, rng.Next()).value();
    Sketcher sk(&fam);
    std::vector<Sketch> sketches;
    std::vector<index::QueryInfo> infos;
    for (int q = 0; q < m; ++q) {
      sketches.push_back(sk.FromSequence(RandomIds(&rng, 20, 400)));
      infos.push_back(index::QueryInfo{q + 1, 50});
    }
    auto idx = index::HashQueryIndex::Build(sketches, infos).value();
    ASSERT_TRUE(idx.Validate().ok());
    Sketch w = sk.FromSequence(RandomIds(&rng, 15, 400));
    auto rl = idx.Probe(w, 0.7, false);
    std::set<int> got;
    for (const auto& rq : rl) {
      got.insert(rq.info.id);
      EXPECT_TRUE(rq.bitsig ==
                  BitSignature::FromSketches(w, sketches[static_cast<size_t>(rq.info.id - 1)]));
    }
    std::set<int> expect;
    for (int q = 0; q < m; ++q) {
      if (Sketcher::NumEqual(w, sketches[static_cast<size_t>(q)]) > 0) {
        expect.insert(q + 1);
      }
    }
    EXPECT_EQ(got, expect) << "world " << world << " k=" << k << " m=" << m;
  }
}

/// Property: the fingerprint pipeline is scale-consistent — doubling the
/// resolution of a DC map (same content) keeps the cell id, because region
/// averages and Eq. 1 are resolution-independent.
TEST(PropertyTest, FingerprintResolutionInvariance) {
  Rng rng(131);
  auto fp = features::FrameFingerprinter::Create(features::FingerprintOptions()).value();
  int agree = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    // Build a low-res DC map, then an exactly block-doubled version.
    video::DcFrame small;
    small.blocks_x = 6;
    small.blocks_y = 6;
    small.dc.resize(36);
    for (auto& v : small.dc) v = static_cast<float>(rng.UniformInt(-96, 96)) * 8;
    video::DcFrame big;
    big.blocks_x = 12;
    big.blocks_y = 12;
    big.dc.resize(144);
    for (int y = 0; y < 12; ++y) {
      for (int x = 0; x < 12; ++x) {
        big.dc[static_cast<size_t>(y) * 12 + x] =
            small.dc[static_cast<size_t>(y / 2) * 6 + x / 2];
      }
    }
    agree += (fp.Fingerprint(small) == fp.Fingerprint(big));
  }
  EXPECT_EQ(agree, trials);
}

}  // namespace
}  // namespace vcd
