/// \file pipeline_test.cc
/// Full-pipeline integration tests through the *real* compressed-domain
/// path: synthetic pixels → MPEG-like encoder → bit stream → partial
/// decoder → fingerprints → detector. No DC fast path anywhere.

#include <gtest/gtest.h>

#include "util/logging.h"

#include "core/detector.h"
#include "core/evaluation.h"
#include "video/codec.h"
#include "video/edit.h"
#include "video/partial_decoder.h"
#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd {
namespace {

using video::CodecParams;
using video::DcFrame;
using video::Encoder;
using video::Frame;
using video::PartialDecoder;
using video::RenderOptions;
using video::SceneModel;
using video::VideoBuffer;

constexpr int kW = 176;
constexpr int kH = 120;
constexpr double kFps = 12.0;
constexpr int kGop = 6;

VideoBuffer Render(const SceneModel& model, double t0, double seconds) {
  RenderOptions ro;
  ro.width = kW;
  ro.height = kH;
  ro.fps = kFps;
  auto v = video::RenderVideo(model, t0, seconds, ro);
  VCD_CHECK(v.ok(), "render");
  return std::move(v).value();
}

std::vector<DcFrame> EncodeAndExtract(const VideoBuffer& video, int quantizer = 4) {
  CodecParams p;
  p.width = video.frames[0].width();
  p.height = video.frames[0].height();
  p.fps = video.fps;
  p.gop_size = kGop;
  p.quantizer = quantizer;
  auto bytes = Encoder::EncodeVideo(video, p);
  VCD_CHECK(bytes.ok(), "encode");
  auto dcs = PartialDecoder::ExtractAll(*bytes);
  VCD_CHECK(dcs.ok(), "partial decode");
  return std::move(dcs).value();
}

core::DetectorConfig PipelineConfig() {
  core::DetectorConfig c;
  c.K = 400;
  c.window_seconds = 3.0;
  c.delta = 0.6;
  return c;
}

TEST(PipelineTest, DetectsCopyThroughRealCodec) {
  // Query: a 12 s clip. Stream: 20 s background, the clip, 10 s background,
  // all rendered as pixels and pushed through the codec.
  SceneModel query_model = SceneModel::Generate(1001, 14.0);
  SceneModel bg_model = SceneModel::Generate(2002, 40.0);

  VideoBuffer query_clip = Render(query_model, 0.0, 12.0);
  VideoBuffer stream = Render(bg_model, 0.0, 20.0);
  video::AppendFrames(Render(query_model, 0.0, 12.0), &stream);
  video::AppendFrames(Render(bg_model, 25.0, 10.0), &stream);

  auto det = core::CopyDetector::Create(PipelineConfig()).value();
  ASSERT_TRUE(det->AddQuery(1, EncodeAndExtract(query_clip), 12.0).ok());
  auto stream_dcs = EncodeAndExtract(stream);
  for (const auto& f : stream_dcs) ASSERT_TRUE(det->ProcessKeyFrame(f).ok());
  ASSERT_TRUE(det->Finish().ok());

  const int64_t begin = static_cast<int64_t>(20.0 * kFps);
  const int64_t end = static_cast<int64_t>(32.0 * kFps);
  bool found = false;
  for (const auto& m : det->matches()) {
    if (m.query_id == 1 && m.end_frame >= begin && m.end_frame <= end + 40) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << det->matches().size() << " matches";
}

TEST(PipelineTest, DetectsCopyAcrossRequantization) {
  // The copy is re-encoded at a much coarser quantizer — DC features and
  // ordinal structure must survive.
  SceneModel query_model = SceneModel::Generate(3003, 14.0);
  SceneModel bg_model = SceneModel::Generate(4004, 40.0);

  VideoBuffer query_clip = Render(query_model, 0.0, 12.0);
  VideoBuffer stream = Render(bg_model, 0.0, 15.0);
  video::AppendFrames(Render(query_model, 0.0, 12.0), &stream);
  video::AppendFrames(Render(bg_model, 20.0, 8.0), &stream);

  auto det = core::CopyDetector::Create(PipelineConfig()).value();
  ASSERT_TRUE(det->AddQuery(1, EncodeAndExtract(query_clip, /*quantizer=*/2), 12.0).ok());
  auto stream_dcs = EncodeAndExtract(stream, /*quantizer=*/12);
  for (const auto& f : stream_dcs) ASSERT_TRUE(det->ProcessKeyFrame(f).ok());
  ASSERT_TRUE(det->Finish().ok());
  bool found = false;
  for (const auto& m : det->matches()) found |= (m.query_id == 1);
  EXPECT_TRUE(found);
}

TEST(PipelineTest, DetectsEditedAndReorderedCopy) {
  // Full VS2-style attack in pixel space: brightness, color, contrast,
  // noise, resize round trip, PAL resample, segment reorder — then encode.
  SceneModel query_model = SceneModel::Generate(5005, 20.0);
  SceneModel bg_model = SceneModel::Generate(6006, 40.0);

  // Brightness and contrast stay in the non-clipping regime: once bright
  // pixels clip, the frame maximum shifts and Eq. 1's min-max normalization
  // is no longer affine — a real limitation of the paper's features that
  // tests/video probes separately.
  VideoBuffer original = Render(query_model, 0.0, 18.0);
  VideoBuffer copy = video::AdjustBrightness(original, 8);
  copy = video::AdjustColor(copy, 12, -9);
  copy = video::AdjustContrast(copy, 1.08);
  copy = video::AddGaussianNoise(copy, 2.0, 77);
  copy = video::Resize(copy, 144, 96).value();
  copy = video::Resize(copy, kW, kH).value();
  copy = video::ResampleFps(copy, 10.0).value();
  copy = video::ResampleFps(copy, kFps).value();
  copy = video::ReorderSegments(copy, 6.0, 88);

  VideoBuffer stream = Render(bg_model, 0.0, 15.0);
  video::AppendFrames(copy, &stream);
  video::AppendFrames(Render(bg_model, 20.0, 8.0), &stream);

  auto det = core::CopyDetector::Create(PipelineConfig()).value();
  ASSERT_TRUE(det->AddQuery(1, EncodeAndExtract(original), 18.0).ok());
  auto stream_dcs = EncodeAndExtract(stream);
  for (const auto& f : stream_dcs) ASSERT_TRUE(det->ProcessKeyFrame(f).ok());
  ASSERT_TRUE(det->Finish().ok());
  bool found = false;
  for (const auto& m : det->matches()) found |= (m.query_id == 1);
  EXPECT_TRUE(found);
}

TEST(PipelineTest, UnrelatedContentNotDetected) {
  SceneModel query_model = SceneModel::Generate(7007, 14.0);
  SceneModel bg_model = SceneModel::Generate(8008, 45.0);

  VideoBuffer query_clip = Render(query_model, 0.0, 12.0);
  VideoBuffer stream = Render(bg_model, 0.0, 40.0);

  core::DetectorConfig c = PipelineConfig();
  c.delta = 0.7;
  auto det = core::CopyDetector::Create(c).value();
  ASSERT_TRUE(det->AddQuery(1, EncodeAndExtract(query_clip), 12.0).ok());
  for (const auto& f : EncodeAndExtract(stream)) {
    ASSERT_TRUE(det->ProcessKeyFrame(f).ok());
  }
  ASSERT_TRUE(det->Finish().ok());
  EXPECT_TRUE(det->matches().empty());
}

}  // namespace
}  // namespace vcd
