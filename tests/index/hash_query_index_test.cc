#include "index/hash_query_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace vcd::index {
namespace {

using sketch::BitSignature;
using sketch::MinHashFamily;
using sketch::Sketch;
using sketch::Sketcher;

/// Builds m random query sketches over a small id universe so equal
/// min-hash values actually occur.
std::vector<Sketch> RandomSketches(const MinHashFamily& fam, int m, Rng* rng,
                                   int set_size = 30, uint32_t universe = 500) {
  Sketcher sk(&fam);
  std::vector<Sketch> out;
  for (int q = 0; q < m; ++q) {
    std::vector<features::CellId> ids;
    for (int i = 0; i < set_size; ++i) {
      ids.push_back(static_cast<features::CellId>(rng->Uniform(universe)));
    }
    out.push_back(sk.FromSequence(ids));
  }
  return out;
}

std::vector<QueryInfo> Infos(int m) {
  std::vector<QueryInfo> infos;
  for (int q = 0; q < m; ++q) infos.push_back(QueryInfo{q + 1, 100 + q});
  return infos;
}

TEST(HashQueryIndexTest, BuildValidation) {
  auto fam = MinHashFamily::Create(8).value();
  Rng rng(1);
  auto sketches = RandomSketches(fam, 3, &rng);
  EXPECT_FALSE(HashQueryIndex::Build({}, {}).ok());
  EXPECT_FALSE(HashQueryIndex::Build(sketches, Infos(2)).ok());
  auto dup = Infos(3);
  dup[2].id = dup[0].id;
  EXPECT_EQ(HashQueryIndex::Build(sketches, dup).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(HashQueryIndex::Build(sketches, Infos(3)).ok());
}

TEST(HashQueryIndexTest, BuildInvariants) {
  auto fam = MinHashFamily::Create(32).value();
  Rng rng(3);
  auto idx = HashQueryIndex::Build(RandomSketches(fam, 20, &rng), Infos(20)).value();
  EXPECT_EQ(idx.K(), 32);
  EXPECT_EQ(idx.num_queries(), 20);
  EXPECT_TRUE(idx.Validate().ok());
}

TEST(HashQueryIndexTest, ValidateReportsCorruptedRowOrder) {
  auto fam = MinHashFamily::Create(16).value();
  Rng rng(11);
  auto idx = HashQueryIndex::Build(RandomSketches(fam, 8, &rng), Infos(8)).value();
  ASSERT_TRUE(idx.Validate().ok());
  // Push the first entry of row 2 above its neighbour: rows must stay sorted
  // by value, so Validate has to notice.
  idx.CorruptValueForTest(2, 0, ~uint64_t{0});
  EXPECT_FALSE(idx.Validate().ok());
}

TEST(HashQueryIndexTest, ValidateReportsBrokenUpLink) {
  auto fam = MinHashFamily::Create(16).value();
  Rng rng(12);
  auto idx = HashQueryIndex::Build(RandomSketches(fam, 8, &rng), Infos(8)).value();
  ASSERT_TRUE(idx.Validate().ok());
  // Point one up link outside the row: the up/down chains must mirror.
  idx.CorruptUpLinkForTest(1, 0, 9999);
  EXPECT_FALSE(idx.Validate().ok());
}

TEST(HashQueryIndexTest, QuerySketchRoundTrip) {
  auto fam = MinHashFamily::Create(16).value();
  Rng rng(5);
  auto sketches = RandomSketches(fam, 10, &rng);
  auto idx = HashQueryIndex::Build(sketches, Infos(10)).value();
  for (int q = 0; q < 10; ++q) {
    auto got = idx.QuerySketch(q + 1);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, sketches[static_cast<size_t>(q)]) << "query " << q + 1;
  }
  EXPECT_EQ(idx.QuerySketch(999).status().code(), StatusCode::kNotFound);
}

TEST(HashQueryIndexTest, ProbeFindsExactDuplicate) {
  auto fam = MinHashFamily::Create(64).value();
  Rng rng(7);
  auto sketches = RandomSketches(fam, 15, &rng);
  auto idx = HashQueryIndex::Build(sketches, Infos(15)).value();
  // Probing with query 4's own sketch must return it with similarity 1.
  auto rl = idx.Probe(sketches[3], 0.7);
  bool found = false;
  for (const RelatedQuery& rq : rl) {
    if (rq.info.id == 4) {
      found = true;
      EXPECT_DOUBLE_EQ(rq.bitsig.Similarity(), 1.0);
      EXPECT_EQ(rq.info.length_frames, 103);
    }
  }
  EXPECT_TRUE(found);
}

TEST(HashQueryIndexTest, ProbeMatchesBruteForceWithoutPruning) {
  // Without pruning, probe must return exactly the queries sharing at least
  // one min-hash value, each with the full signature FromSketches would
  // build.
  auto fam = MinHashFamily::Create(48).value();
  Rng rng(11);
  auto sketches = RandomSketches(fam, 25, &rng, 40, 300);
  auto idx = HashQueryIndex::Build(sketches, Infos(25)).value();
  Sketcher sk(&fam);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<features::CellId> wids;
    for (int i = 0; i < 25; ++i) {
      wids.push_back(static_cast<features::CellId>(rng.Uniform(300)));
    }
    Sketch w = sk.FromSequence(wids);
    auto rl = idx.Probe(w, 0.7, /*enable_pruning=*/false);
    std::set<int> got;
    for (const RelatedQuery& rq : rl) {
      got.insert(rq.info.id);
      BitSignature expect = BitSignature::FromSketches(w, sketches[static_cast<size_t>(rq.info.id - 1)]);
      EXPECT_TRUE(rq.bitsig == expect) << "query " << rq.info.id;
    }
    std::set<int> expect_ids;
    for (int q = 0; q < 25; ++q) {
      if (Sketcher::NumEqual(w, sketches[static_cast<size_t>(q)]) > 0) {
        expect_ids.insert(q + 1);
      }
    }
    EXPECT_EQ(got, expect_ids) << "trial " << trial;
  }
}

TEST(HashQueryIndexTest, PruningOnlyRemovesLemma2Violators) {
  auto fam = MinHashFamily::Create(48).value();
  Rng rng(13);
  auto sketches = RandomSketches(fam, 25, &rng, 40, 300);
  auto idx = HashQueryIndex::Build(sketches, Infos(25)).value();
  Sketcher sk(&fam);
  std::vector<features::CellId> wids;
  for (int i = 0; i < 25; ++i) {
    wids.push_back(static_cast<features::CellId>(rng.Uniform(300)));
  }
  Sketch w = sk.FromSequence(wids);
  const double delta = 0.5;
  auto pruned = idx.Probe(w, delta, true);
  auto full = idx.Probe(w, delta, false);
  // Every survivor satisfies Lemma 2 and appears in the unpruned list.
  std::set<int> full_ids;
  for (const auto& rq : full) full_ids.insert(rq.info.id);
  for (const auto& rq : pruned) {
    EXPECT_TRUE(rq.bitsig.SatisfiesLemma2(delta));
    EXPECT_TRUE(full_ids.count(rq.info.id));
  }
  // Every unpruned entry that satisfies Lemma 2 must have survived.
  std::set<int> pruned_ids;
  for (const auto& rq : pruned) pruned_ids.insert(rq.info.id);
  for (const auto& rq : full) {
    if (rq.bitsig.SatisfiesLemma2(delta)) {
      EXPECT_TRUE(pruned_ids.count(rq.info.id)) << "query " << rq.info.id;
    }
  }
}

TEST(HashQueryIndexTest, ProbeRelatedMatchesBruteForce) {
  auto fam = MinHashFamily::Create(32).value();
  Rng rng(17);
  auto sketches = RandomSketches(fam, 20, &rng, 40, 200);
  auto idx = HashQueryIndex::Build(sketches, Infos(20)).value();
  Sketcher sk(&fam);
  std::vector<features::CellId> wids;
  for (int i = 0; i < 30; ++i) {
    wids.push_back(static_cast<features::CellId>(rng.Uniform(200)));
  }
  Sketch w = sk.FromSequence(wids);
  auto rel = idx.ProbeRelated(w);
  std::set<int> got;
  for (const auto& info : rel) got.insert(info.id);
  std::set<int> expect;
  for (int q = 0; q < 20; ++q) {
    if (Sketcher::NumEqual(w, sketches[static_cast<size_t>(q)]) > 0) expect.insert(q + 1);
  }
  EXPECT_EQ(got, expect);
}

TEST(HashQueryIndexTest, InsertMaintainsInvariantsAndProbe) {
  auto fam = MinHashFamily::Create(24).value();
  Rng rng(19);
  auto sketches = RandomSketches(fam, 10, &rng, 30, 200);
  const auto infos = Infos(10);
  auto idx = HashQueryIndex::Build({sketches.begin(), sketches.begin() + 8},
                                   {infos.begin(), infos.begin() + 8})
                 .value();
  ASSERT_TRUE(idx.Insert(sketches[8], QueryInfo{9, 108}).ok());
  ASSERT_TRUE(idx.Insert(sketches[9], QueryInfo{10, 109}).ok());
  EXPECT_EQ(idx.num_queries(), 10);
  EXPECT_TRUE(idx.Validate().ok());
  // The incrementally built index behaves like a batch-built one.
  auto batch = HashQueryIndex::Build(sketches, Infos(10)).value();
  auto w = sketches[9];
  auto a = idx.Probe(w, 0.7, false);
  auto b = batch.Probe(w, 0.7, false);
  std::set<int> ia, ib;
  for (const auto& rq : a) ia.insert(rq.info.id);
  for (const auto& rq : b) ib.insert(rq.info.id);
  EXPECT_EQ(ia, ib);
}

TEST(HashQueryIndexTest, InsertDuplicateIdRejected) {
  auto fam = MinHashFamily::Create(8).value();
  Rng rng(23);
  auto sketches = RandomSketches(fam, 3, &rng);
  auto idx = HashQueryIndex::Build(sketches, Infos(3)).value();
  EXPECT_EQ(idx.Insert(sketches[0], QueryInfo{1, 5}).code(),
            StatusCode::kAlreadyExists);
}

TEST(HashQueryIndexTest, InsertWrongKRejected) {
  auto fam8 = MinHashFamily::Create(8).value();
  auto fam16 = MinHashFamily::Create(16).value();
  Rng rng(29);
  auto idx = HashQueryIndex::Build(RandomSketches(fam8, 3, &rng), Infos(3)).value();
  auto wrong = RandomSketches(fam16, 1, &rng);
  EXPECT_EQ(idx.Insert(wrong[0], QueryInfo{99, 5}).code(),
            StatusCode::kInvalidArgument);
}

TEST(HashQueryIndexTest, RemoveMaintainsInvariants) {
  auto fam = MinHashFamily::Create(24).value();
  Rng rng(31);
  auto sketches = RandomSketches(fam, 12, &rng, 30, 200);
  auto idx = HashQueryIndex::Build(sketches, Infos(12)).value();
  ASSERT_TRUE(idx.Remove(5).ok());
  ASSERT_TRUE(idx.Remove(12).ok());
  ASSERT_TRUE(idx.Remove(1).ok());
  EXPECT_EQ(idx.num_queries(), 9);
  EXPECT_TRUE(idx.Validate().ok());
  EXPECT_EQ(idx.Remove(5).code(), StatusCode::kNotFound);
  // Removed queries never come back from probes.
  auto rl = idx.Probe(sketches[4], 0.0, false);
  for (const auto& rq : rl) EXPECT_NE(rq.info.id, 5);
  // Remaining queries are still probed correctly.
  auto rl2 = idx.Probe(sketches[2], 0.7, false);
  bool found = false;
  for (const auto& rq : rl2) found |= (rq.info.id == 3);
  EXPECT_TRUE(found);
}

TEST(HashQueryIndexTest, InsertRemoveChurnStressKeepsInvariants) {
  auto fam = MinHashFamily::Create(16).value();
  Rng rng(37);
  auto sketches = RandomSketches(fam, 40, &rng, 20, 150);
  const auto infos = Infos(40);
  auto idx = HashQueryIndex::Build({sketches.begin(), sketches.begin() + 5},
                                   {infos.begin(), infos.begin() + 5})
                 .value();
  std::set<int> live = {1, 2, 3, 4, 5};
  for (int step = 0; step < 100; ++step) {
    if (rng.Bernoulli(0.5) && live.size() < 40) {
      // Insert a random non-live query.
      int q = 1 + static_cast<int>(rng.Uniform(40));
      if (live.count(q)) continue;
      ASSERT_TRUE(idx.Insert(sketches[static_cast<size_t>(q - 1)],
                             QueryInfo{q, 100 + q})
                      .ok());
      live.insert(q);
    } else if (live.size() > 1) {
      int pick = static_cast<int>(rng.Uniform(live.size()));
      auto it = live.begin();
      std::advance(it, pick);
      ASSERT_TRUE(idx.Remove(*it).ok());
      live.erase(it);
    }
    ASSERT_TRUE(idx.Validate().ok()) << "step " << step;
    ASSERT_EQ(idx.num_queries(), static_cast<int>(live.size()));
  }
}

TEST(HashQueryIndexTest, SingleQueryIndex) {
  auto fam = MinHashFamily::Create(8).value();
  Rng rng(41);
  auto sketches = RandomSketches(fam, 1, &rng);
  auto idx = HashQueryIndex::Build(sketches, {QueryInfo{7, 42}}).value();
  EXPECT_TRUE(idx.Validate().ok());
  auto rl = idx.Probe(sketches[0], 0.7);
  ASSERT_EQ(rl.size(), 1u);
  EXPECT_EQ(rl[0].info.id, 7);
  EXPECT_DOUBLE_EQ(rl[0].bitsig.Similarity(), 1.0);
}

TEST(HashQueryIndexTest, KEqualsOneWorks) {
  auto fam = MinHashFamily::Create(1).value();
  Rng rng(43);
  auto sketches = RandomSketches(fam, 5, &rng, 10, 50);
  auto idx = HashQueryIndex::Build(sketches, Infos(5)).value();
  EXPECT_TRUE(idx.Validate().ok());
  auto rl = idx.Probe(sketches[0], 0.5, false);
  bool found = false;
  for (const auto& rq : rl) found |= rq.info.id == 1;
  EXPECT_TRUE(found);
}


TEST(HashQueryIndexTest, EveryQueryFindsItselfPerfectly) {
  // Probing with each indexed query's own sketch returns that query with a
  // similarity-1 signature, across many sizes.
  auto fam = MinHashFamily::Create(40).value();
  Rng rng(47);
  for (int m : {1, 2, 7, 33}) {
    auto sketches = RandomSketches(fam, m, &rng, 25, 400);
    auto idx = HashQueryIndex::Build(sketches, Infos(m)).value();
    for (int q = 0; q < m; ++q) {
      auto rl = idx.Probe(sketches[static_cast<size_t>(q)], 0.9);
      bool self = false;
      for (const RelatedQuery& rq : rl) {
        if (rq.info.id == q + 1) {
          self = true;
          EXPECT_DOUBLE_EQ(rq.bitsig.Similarity(), 1.0);
        }
      }
      EXPECT_TRUE(self) << "m=" << m << " q=" << q;
    }
  }
}

TEST(HashQueryIndexTest, ColCacheSurvivesChurn) {
  // The cached row-0 column must stay consistent through arbitrary
  // insert/remove interleavings (checked by Validate' col rules).
  auto fam = MinHashFamily::Create(12).value();
  Rng rng(53);
  auto sketches = RandomSketches(fam, 20, &rng, 15, 100);
  const auto infos = Infos(20);
  auto idx = HashQueryIndex::Build({sketches.begin(), sketches.begin() + 10},
                                   {infos.begin(), infos.begin() + 10})
                 .value();
  for (int q = 10; q < 20; ++q) {
    ASSERT_TRUE(idx.Insert(sketches[static_cast<size_t>(q)],
                           QueryInfo{q + 1, 100 + q})
                    .ok());
    ASSERT_TRUE(idx.Remove(q - 9).ok());
    ASSERT_TRUE(idx.Validate().ok()) << "after churn step " << q;
  }
  EXPECT_EQ(idx.num_queries(), 10);
}

}  // namespace
}  // namespace vcd::index
