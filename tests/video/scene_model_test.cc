#include "video/scene_model.h"

#include <gtest/gtest.h>

namespace vcd::video {
namespace {

TEST(SceneModelTest, DeterministicPerSeed) {
  SceneModel a = SceneModel::Generate(42, 60.0);
  SceneModel b = SceneModel::Generate(42, 60.0);
  for (double t : {0.0, 1.7, 13.3, 59.0}) {
    for (double x : {0.1, 0.5, 0.9}) {
      EXPECT_FLOAT_EQ(a.SampleLuma(t, x, 0.3), b.SampleLuma(t, x, 0.3));
    }
  }
}

TEST(SceneModelTest, DifferentSeedsDiffer) {
  SceneModel a = SceneModel::Generate(1, 30.0);
  SceneModel b = SceneModel::Generate(2, 30.0);
  int diff = 0;
  for (double t = 0; t < 30.0; t += 2.3) {
    if (a.SampleLuma(t, 0.5, 0.5) != b.SampleLuma(t, 0.5, 0.5)) ++diff;
  }
  EXPECT_GT(diff, 5);
}

TEST(SceneModelTest, ShotsCoverDuration) {
  SceneModel m = SceneModel::Generate(7, 120.0);
  ASSERT_FALSE(m.shots().empty());
  EXPECT_EQ(m.shots().front().start, 0.0);
  double end = 0;
  for (size_t i = 0; i < m.shots().size(); ++i) {
    const Shot& s = m.shots()[i];
    EXPECT_NEAR(s.start, end, 1e-9) << "shot " << i << " not contiguous";
    end = s.start + s.duration;
  }
  EXPECT_GE(end, 120.0);
}

TEST(SceneModelTest, ShotDurationsWithinStyle) {
  SceneStyle style;
  style.min_shot_seconds = 1.0;
  style.max_shot_seconds = 3.0;
  SceneModel m = SceneModel::Generate(11, 60.0, style);
  for (const Shot& s : m.shots()) {
    EXPECT_GE(s.duration, 1.0);
    EXPECT_LE(s.duration, 3.0);
  }
}

TEST(SceneModelTest, SamplesInNominalRanges) {
  SceneModel m = SceneModel::Generate(13, 30.0);
  for (double t = 0; t < 30.0; t += 0.7) {
    for (double x = 0.05; x < 1.0; x += 0.19) {
      for (double y = 0.05; y < 1.0; y += 0.23) {
        float yv, cb, cr;
        m.Sample(t, x, y, &yv, &cb, &cr);
        EXPECT_GE(yv, 16.0f);
        EXPECT_LE(yv, 235.0f);
        EXPECT_GE(cb, 16.0f);
        EXPECT_LE(cb, 240.0f);
        EXPECT_GE(cr, 16.0f);
        EXPECT_LE(cr, 240.0f);
      }
    }
  }
}

TEST(SceneModelTest, ContentIsFunctionOfTimeNotFrameIndex) {
  // Sampling at the same instant must agree no matter how we got there —
  // the property that makes frame-rate re-encodes true copies.
  SceneModel m = SceneModel::Generate(17, 30.0);
  const double t = 12.345;
  EXPECT_FLOAT_EQ(m.SampleLuma(t, 0.4, 0.6), m.SampleLuma(t, 0.4, 0.6));
}

TEST(SceneModelTest, ContentVariesSpatially) {
  SceneModel m = SceneModel::Generate(19, 30.0);
  // Some spatial variation must exist inside a shot (gradient + blobs).
  float a = m.SampleLuma(5.0, 0.1, 0.1);
  float b = m.SampleLuma(5.0, 0.9, 0.9);
  float c = m.SampleLuma(5.0, 0.5, 0.5);
  EXPECT_TRUE(a != b || b != c);
}

TEST(SceneModelTest, ContentVariesAcrossShots) {
  SceneModel m = SceneModel::Generate(23, 60.0);
  ASSERT_GE(m.shots().size(), 2u);
  const Shot& s0 = m.shots()[0];
  const Shot& s1 = m.shots()[1];
  float a = m.SampleLuma(s0.start + 0.1, 0.5, 0.5);
  float b = m.SampleLuma(s1.start + 0.1, 0.5, 0.5);
  // Not guaranteed different in theory, but overwhelmingly so.
  EXPECT_NE(a, b);
}

TEST(SceneModelTest, OutOfRangeTimeClamps) {
  SceneModel m = SceneModel::Generate(29, 10.0);
  EXPECT_NO_FATAL_FAILURE(m.SampleLuma(-1.0, 0.5, 0.5));
  EXPECT_NO_FATAL_FAILURE(m.SampleLuma(1e6, 0.5, 0.5));
}

TEST(SceneModelDeathTest, NonPositiveDurationChecks) {
  EXPECT_DEATH(SceneModel::Generate(1, 0.0), "duration");
}

}  // namespace
}  // namespace vcd::video
